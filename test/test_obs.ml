(* Tests for the Probe observability layer: metrics merge algebra, the
   no-sink bit-identity guarantee, per-worker collector merging across
   domain counts, collector span accounting (incl. crashes), and the
   structure of the Perfetto trace-event export. *)

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Metrics} *)

let test_metrics_basics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "steps" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  checki "counter value" 5 (Obs.Metrics.value c);
  checkb "get-or-create returns the same counter" true
    (Obs.Metrics.counter m "steps" == c);
  let h = Obs.Metrics.histogram ~limits:[| 1; 2; 4 |] m "per_trial" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 5; 100 ];
  let sn = Obs.Metrics.snapshot m in
  (match List.assoc_opt "per_trial" sn.Obs.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
      check
        Alcotest.(array int)
        "bucket counts" [| 2; 1; 1; 2 |] hs.Obs.Metrics.hs_counts;
      checki "n" 6 hs.Obs.Metrics.hs_n;
      checki "sum" 111 hs.Obs.Metrics.hs_sum;
      checki "min" 0 hs.Obs.Metrics.hs_min;
      checki "max" 100 hs.Obs.Metrics.hs_max);
  Alcotest.check_raises "counter/histogram kind clash"
    (Invalid_argument "Metrics.histogram: \"steps\" is a counter") (fun () ->
      ignore (Obs.Metrics.histogram m "steps"))

let registry_with pairs hist_vals =
  let m = Obs.Metrics.create () in
  List.iter (fun (name, v) -> Obs.Metrics.add (Obs.Metrics.counter m name) v) pairs;
  List.iter
    (fun v -> Obs.Metrics.observe (Obs.Metrics.histogram m "h") v)
    hist_vals;
  Obs.Metrics.snapshot m

let test_metrics_merge_associative () =
  let a = registry_with [ ("x", 1); ("y", 2) ] [ 3; 9 ] in
  let b = registry_with [ ("y", 5); ("z", 7) ] [ 1 ] in
  let c = registry_with [ ("x", 10) ] [ 4000; 2 ] in
  let left = Obs.Metrics.merge (Obs.Metrics.merge a b) c in
  let right = Obs.Metrics.merge a (Obs.Metrics.merge b c) in
  checkb "merge associative" true (left = right);
  checkb "empty is left identity" true
    (Obs.Metrics.merge Obs.Metrics.empty_snapshot a = a);
  checkb "empty is right identity" true
    (Obs.Metrics.merge a Obs.Metrics.empty_snapshot = a);
  checkb "merge commutative" true
    (Obs.Metrics.merge a b = Obs.Metrics.merge b a);
  match List.assoc_opt "y" left.Obs.Metrics.counters with
  | Some v -> checki "summed counter" 7 v
  | None -> Alcotest.fail "merged counter missing"

(* {1 Bit-identity: probing must never change the execution} *)

let run_target ?probe_sink ~seed () =
  let go () =
    let mem = Sim.Memory.create () in
    let progs =
      Rtas.Probe_target.rr_classic.Rtas.Probe_target.pt_programs mem ~n:16
        ~k:8
    in
    let sched = Sim.Sched.create ~record_trace:true ~seed progs in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed);
    ( Sim.Sched.results sched,
      Sim.Sched.time sched,
      Sim.Sched.max_rmrs sched,
      List.map Sim.Op.event_to_string (Sim.Sched.trace sched) )
  in
  match probe_sink with None -> go () | Some s -> Obs.with_sink s go

let test_probed_run_bit_identical () =
  let seed = 0xB17L in
  let r_plain, t_plain, m_plain, trace_plain = run_target ~seed () in
  let collector = Obs.Collector.create () in
  let chrome = Obs.Chrome_trace.create () in
  let r_probed, t_probed, m_probed, trace_probed =
    run_target
      ~probe_sink:
        (Obs.tee (Obs.Collector.sink collector) (Obs.Chrome_trace.sink chrome))
      ~seed ()
  in
  check
    Alcotest.(array (option int))
    "results identical" r_plain r_probed;
  checki "total steps identical" t_plain t_probed;
  checki "max rmrs identical" m_plain m_probed;
  check Alcotest.(list string) "traces identical" trace_plain trace_probed;
  (* The probed run actually observed the execution. *)
  let sn = Obs.Collector.snapshot collector in
  checki "collector saw every step" t_plain sn.Obs.Collector.sn_steps;
  checki "collector saw every finish + crash" 8
    (sn.Obs.Collector.sn_finishes + sn.Obs.Collector.sn_crashes);
  checkb "trace has events" true (Obs.Chrome_trace.n_events chrome > 0)

let test_reset_with_sink_bit_identical () =
  let seed = 0xA5EEDL in
  let r_fresh, t_fresh, m_fresh, trace_fresh = run_target ~seed () in
  let collector = Obs.Collector.create () in
  let r, t, m, trace =
    Obs.with_sink (Obs.Collector.sink collector) (fun () ->
        let mem = Sim.Memory.create () in
        let progs =
          Rtas.Probe_target.rr_classic.Rtas.Probe_target.pt_programs mem ~n:16
            ~k:8
        in
        let sched = Sim.Sched.create ~record_trace:true ~seed:1L progs in
        Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:1L);
        (* Reuse the arena: the second (reset) run must match a fresh
           probed run bit for bit, and the trace only covers it. *)
        Sim.Memory.reset mem;
        Sim.Sched.reset ~seed sched progs;
        Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed);
        ( Sim.Sched.results sched,
          Sim.Sched.time sched,
          Sim.Sched.max_rmrs sched,
          List.map Sim.Op.event_to_string (Sim.Sched.trace sched) ))
  in
  check Alcotest.(array (option int)) "results identical" r_fresh r;
  checki "total steps identical" t_fresh t;
  checki "max rmrs identical" m_fresh m;
  check Alcotest.(list string) "post-reset trace = fresh trace" trace_fresh
    trace

(* {1 Engine.run_probed: per-worker collectors merge domain-independently} *)

let probed_batch ~domains =
  let _stats, collectors =
    Engine.run_probed ~domains ~chunk:2 ~trials:12 ~seed:0xFEEDL
      ~probe:(fun () ->
        let c = Obs.Collector.create () in
        (c, Obs.Collector.sink c))
      ~local:(fun c -> c)
      (fun c ~trial:_ ~seed ->
        let mem = Sim.Memory.create () in
        let progs =
          Rtas.Probe_target.chain.Rtas.Probe_target.pt_programs mem ~n:16 ~k:6
        in
        let sched = Sim.Sched.create ~seed progs in
        Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed);
        let winners = Obs.Metrics.counter (Obs.Collector.metrics c) "winners" in
        for pid = 0 to Sim.Sched.n sched - 1 do
          if Sim.Sched.result sched pid = Some 1 then Obs.Metrics.incr winners
        done)
  in
  List.fold_left Obs.Collector.merge Obs.Collector.empty_snapshot
    (List.map Obs.Collector.snapshot collectors)

let test_run_probed_domain_independent () =
  let sn1 = probed_batch ~domains:1 in
  let sn3 = probed_batch ~domains:3 in
  checkb "batch saw work" true (sn1.Obs.Collector.sn_steps > 0);
  checkb "merged snapshots equal across domain counts" true (sn1 = sn3);
  match
    List.assoc_opt "winners" sn1.Obs.Collector.sn_metrics.Obs.Metrics.counters
  with
  | Some w -> checki "one winner per trial" 12 w
  | None -> Alcotest.fail "winners counter missing"

let test_collector_merge_associative () =
  let sn = probed_batch ~domains:1 in
  let e = Obs.Collector.empty_snapshot in
  checkb "empty left identity" true (Obs.Collector.merge e sn = sn);
  checkb "empty right identity" true (Obs.Collector.merge sn e = sn);
  checkb "self-merge doubles steps" true
    ((Obs.Collector.merge sn sn).Obs.Collector.sn_steps
    = 2 * sn.Obs.Collector.sn_steps)

(* {1 Collector span accounting on a handcrafted program} *)

let test_collector_attribution () =
  let collector = Obs.Collector.create () in
  Obs.with_sink (Obs.Collector.sink collector) (fun () ->
      let mem = Sim.Memory.create () in
      let r = Sim.Register.create ~name:"r" mem in
      let program ctx =
        let pid = Sim.Ctx.pid ctx in
        Obs.enter ~pid "outer";
        Sim.Ctx.write ctx r 1;
        Obs.enter ~pid "inner";
        ignore (Sim.Ctx.read ctx r);
        ignore (Sim.Ctx.read ctx r);
        Obs.leave ~pid "inner";
        Sim.Ctx.write ctx r 2;
        Obs.leave ~pid "outer";
        0
      in
      let sched = Sim.Sched.create ~seed:1L [| program |] in
      Sim.Sched.run sched (Sim.Adversary.round_robin ()));
  let sn = Obs.Collector.snapshot collector in
  let phase name =
    match
      List.find_opt
        (fun p -> p.Obs.Collector.ps_phase = name)
        sn.Obs.Collector.sn_phases
    with
    | Some p -> p
    | None -> Alcotest.fail ("missing phase " ^ name)
  in
  let outer = phase "outer" and inner = phase "inner" in
  (* Leaf attribution: the two reads inside "inner" belong to it, the
     two writes outside it to "outer". *)
  checki "outer calls" 1 outer.Obs.Collector.ps_calls;
  checki "outer steps" 2 outer.Obs.Collector.ps_steps;
  checki "outer writes" 2 outer.Obs.Collector.ps_writes;
  checki "inner calls" 1 inner.Obs.Collector.ps_calls;
  checki "inner steps" 2 inner.Obs.Collector.ps_steps;
  (* First read after a write by the same pid is cached: 0 RMRs. *)
  checki "inner rmrs" 0 inner.Obs.Collector.ps_rmrs;
  checki "outer rmrs" 2 outer.Obs.Collector.ps_rmrs;
  check
    Alcotest.(array (float 1e-9))
    "inner per-span steps sample" [| 2.0 |]
    inner.Obs.Collector.ps_step_samples;
  checki "nothing unattributed" 0
    (phase "(unattributed)").Obs.Collector.ps_steps

let test_collector_unclosed_on_crash () =
  let collector = Obs.Collector.create () in
  Obs.with_sink (Obs.Collector.sink collector) (fun () ->
      let mem = Sim.Memory.create () in
      let r = Sim.Register.create ~name:"r" mem in
      let program ctx =
        Obs.enter ~pid:(Sim.Ctx.pid ctx) "doomed";
        ignore (Sim.Ctx.read ctx r);
        ignore (Sim.Ctx.read ctx r);
        Obs.leave ~pid:(Sim.Ctx.pid ctx) "doomed";
        0
      in
      let sched = Sim.Sched.create ~seed:1L [| program |] in
      Sim.Sched.step sched 0;
      Sim.Sched.crash sched 0);
  let sn = Obs.Collector.snapshot collector in
  match sn.Obs.Collector.sn_phases with
  | _ ->
      let doomed =
        List.find
          (fun p -> p.Obs.Collector.ps_phase = "doomed")
          sn.Obs.Collector.sn_phases
      in
      checki "no clean calls" 0 doomed.Obs.Collector.ps_calls;
      checki "one unclosed span" 1 doomed.Obs.Collector.ps_unclosed;
      checki "steps still attributed" 1 doomed.Obs.Collector.ps_steps;
      checki "no per-span sample for crashed span" 0
        (Array.length doomed.Obs.Collector.ps_step_samples);
      checki "crash seen" 1 sn.Obs.Collector.sn_crashes

(* {1 Perfetto export: JSON validity and span structure}

   A miniature JSON parser — no JSON library in the tree — that accepts
   exactly the standard grammar; enough to assert the exporter emits
   well-formed documents with the fields Perfetto requires. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
              advance ();
              Buffer.add_char b c;
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let any = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            any := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !any then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    Jnum (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Jarr (elements [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let mem key = function Jobj kvs -> List.assoc_opt key kvs | _ -> None

let test_chrome_trace_structure () =
  let chrome = Obs.Chrome_trace.create () in
  Obs.with_sink (Obs.Chrome_trace.sink chrome) (fun () ->
      let mem = Sim.Memory.create () in
      let progs =
        Rtas.Probe_target.rr_classic.Rtas.Probe_target.pt_programs mem ~n:8
          ~k:4
      in
      let sched = Sim.Sched.create ~seed:3L progs in
      Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:3L));
  let doc =
    match parse_json (Obs.Chrome_trace.to_string chrome) with
    | doc -> doc
    | exception Bad msg -> Alcotest.fail ("invalid JSON: " ^ msg)
  in
  let events =
    match mem "traceEvents" doc with
    | Some (Jarr evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  checkb "has events" true (events <> []);
  (* Perfetto essentials: every event carries ph/ts/pid/tid with the
     right types, and B/E spans nest (LIFO per track). *)
  let stacks : (float, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  List.iter
    (fun ev ->
      let ph =
        match mem "ph" ev with
        | Some (Jstr p) -> p
        | _ -> Alcotest.fail "event without ph"
      in
      (match (mem "ts" ev, mem "pid" ev, mem "tid" ev) with
      | Some (Jnum _), Some (Jnum _), Some (Jnum _) -> ()
      | _ -> Alcotest.fail "event missing ts/pid/tid number");
      let name =
        match mem "name" ev with
        | Some (Jstr s) -> s
        | _ -> Alcotest.fail "event without name"
      in
      let tid = match mem "tid" ev with Some (Jnum t) -> t | _ -> 0.0 in
      match ph with
      | "B" -> stack tid := name :: !(stack tid)
      | "E" -> (
          match !(stack tid) with
          | top :: rest ->
              check Alcotest.string "spans nest (E matches its B)" top name;
              stack tid := rest
          | [] -> Alcotest.fail "E without open B")
      | "i" | "M" -> ()
      | other -> Alcotest.fail ("unexpected ph " ^ other))
    events;
  Hashtbl.iter
    (fun _ s -> checki "all spans closed" 0 (List.length !s))
    stacks;
  let phases =
    List.filter_map
      (fun ev ->
        match (mem "ph" ev, mem "name" ev) with
        | Some (Jstr "B"), Some (Jstr name) -> Some name
        | _ -> None)
      events
  in
  checkb "rr_tree span present" true (List.mem "rr_tree" phases)

let test_chrome_trace_crash_closes_spans () =
  let chrome = Obs.Chrome_trace.create () in
  Obs.with_sink (Obs.Chrome_trace.sink chrome) (fun () ->
      let mem = Sim.Memory.create () in
      let r = Sim.Register.create ~name:"r" mem in
      let program ctx =
        Obs.enter ~pid:(Sim.Ctx.pid ctx) "doomed";
        ignore (Sim.Ctx.read ctx r);
        ignore (Sim.Ctx.read ctx r);
        0
      in
      let sched = Sim.Sched.create ~seed:1L [| program |] in
      Sim.Sched.step sched 0;
      Sim.Sched.crash sched 0);
  match parse_json (Obs.Chrome_trace.to_string chrome) with
  | exception Bad msg -> Alcotest.fail ("invalid JSON: " ^ msg)
  | doc -> (
      match mem "traceEvents" doc with
      | Some (Jarr evs) ->
          let count ph =
            List.length
              (List.filter (fun ev -> mem "ph" ev = Some (Jstr ph)) evs)
          in
          checki "crashed span closed by exporter" (count "B") (count "E")
      | _ -> Alcotest.fail "missing traceEvents")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and histograms" `Quick
            test_metrics_basics;
          Alcotest.test_case "merge is associative/commutative" `Quick
            test_metrics_merge_associative;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "probed run = plain run" `Quick
            test_probed_run_bit_identical;
          Alcotest.test_case "probed reset run = fresh run" `Quick
            test_reset_with_sink_bit_identical;
        ] );
      ( "engine",
        [
          Alcotest.test_case "run_probed merges domain-independently" `Quick
            test_run_probed_domain_independent;
          Alcotest.test_case "collector merge algebra" `Quick
            test_collector_merge_associative;
        ] );
      ( "collector",
        [
          Alcotest.test_case "leaf attribution" `Quick
            test_collector_attribution;
          Alcotest.test_case "crash leaves unclosed span" `Quick
            test_collector_unclosed_on_crash;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "valid JSON, fields, nesting" `Quick
            test_chrome_trace_structure;
          Alcotest.test_case "crash closes open spans" `Quick
            test_chrome_trace_crash_closes_spans;
        ] );
    ]
