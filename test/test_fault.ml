(* Tests for the fault-injection subsystem: declarative fault plans,
   the watchdog, and the chaos runners. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* The same tiny program the scheduler tests use: read, write back
   value + pid + 1, return the value read. *)
let incr_prog reg ctx =
  let v = Sim.Ctx.read ctx reg in
  Sim.Ctx.write ctx reg (v + Sim.Ctx.pid ctx + 1);
  v

let incr_sched k =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  Sim.Sched.create (Array.init k (fun _ -> incr_prog reg))

let count_crashed sched =
  let c = ref 0 in
  for pid = 0 to Sim.Sched.n sched - 1 do
    if Sim.Sched.status sched pid = Sim.Sched.Crashed then incr c
  done;
  !c

(* {1 Plan: syntax} *)

let test_plan_round_trip () =
  let plan =
    [
      Fault.Plan.crash_after ~pid:2 ~steps:5;
      Fault.Plan.crash_at ~pid:0 ~time:9;
      Fault.Plan.storm 0.02;
      Fault.Plan.storm ~max_crashes:3 0.5;
      Fault.Plan.stall ~pid:1 ~from_time:10 ~until_time:40;
      Fault.Plan.halt_at 200;
    ]
  in
  let s = Fault.Plan.to_string plan in
  match Fault.Plan.of_string s with
  | Ok plan' -> checkb "round trip" true (plan = plan')
  | Error msg -> Alcotest.fail msg

let test_plan_parse_examples () =
  (match Fault.Plan.of_string "crash:2@5, storm:0.1, halt@100" with
  | Ok [ _; _; _ ] -> ()
  | Ok _ -> Alcotest.fail "expected three actions"
  | Error msg -> Alcotest.fail msg);
  checkb "empty plan parses" true (Fault.Plan.of_string "" = Ok []);
  checkb "garbage rejected" true
    (match Fault.Plan.of_string "explode:3" with Error _ -> true | Ok _ -> false);
  checkb "bad number rejected" true
    (match Fault.Plan.of_string "crash:x@1" with Error _ -> true | Ok _ -> false)

(* {1 Plan: apply semantics} *)

let test_plan_crash_after () =
  (* Same behaviour as [Adversary.with_crashes [(0, 1)]]. *)
  let sched = incr_sched 2 in
  let adv =
    Fault.Plan.apply
      [ Fault.Plan.crash_after ~pid:0 ~steps:1 ]
      (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checkb "p0 crashed" true (Sim.Sched.status sched 0 = Sim.Sched.Crashed);
  checki "p0 took exactly 1 step" 1 (Sim.Sched.steps sched 0);
  checkb "p1 finished" true (Sim.Sched.result sched 1 <> None)

let test_plan_crash_at () =
  let sched = incr_sched 2 in
  let adv =
    Fault.Plan.apply
      [ Fault.Plan.crash_at ~pid:1 ~time:0 ]
      (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checkb "p1 crashed before stepping" true
    (Sim.Sched.status sched 1 = Sim.Sched.Crashed && Sim.Sched.steps sched 1 = 0);
  checkb "p0 finished" true (Sim.Sched.result sched 0 <> None)

let test_plan_halt_at () =
  let sched = incr_sched 3 in
  let adv =
    Fault.Plan.apply [ Fault.Plan.halt_at 3 ] (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checki "stopped at time 3" 3 (Sim.Sched.time sched);
  checkb "somebody was cut off" true
    (Array.exists Option.is_none (Sim.Sched.results sched))

let test_plan_stall () =
  (* Stalling p0 for the first few decisions hands the schedule to p1. *)
  let sched = incr_sched 2 in
  let adv =
    Fault.Plan.apply
      [ Fault.Plan.stall ~pid:0 ~from_time:0 ~until_time:4 ]
      (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checki "p1 ran first" 1 (Sim.Sched.first_step_time sched 1);
  checkb "p0 only ran after p1 finished" true
    (Sim.Sched.first_step_time sched 0 > Sim.Sched.finish_time sched 1);
  checkb "both finished (a stall is never a deadlock)" true
    (Array.for_all Option.is_some (Sim.Sched.results sched))

let test_plan_storm_default_budget () =
  (* A certain storm kills processes at every decision, but never the
     last one: with the default n-1 budget exactly one process
     survives and finishes. *)
  let sched = incr_sched 4 in
  let adv =
    Fault.Plan.apply ~seed:5L [ Fault.Plan.storm 1.0 ]
      (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checki "n-1 crashed" 3 (count_crashed sched);
  checki "one survivor finished" 1
    (Array.fold_left
       (fun a r -> if Option.is_some r then a + 1 else a)
       0
       (Sim.Sched.results sched))

let test_plan_storm_explicit_budget () =
  let sched = incr_sched 4 in
  let adv =
    Fault.Plan.apply ~seed:5L
      [ Fault.Plan.storm ~max_crashes:1 1.0 ]
      (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checki "exactly one crash" 1 (count_crashed sched);
  checki "three finished" 3
    (Array.fold_left
       (fun a r -> if Option.is_some r then a + 1 else a)
       0
       (Sim.Sched.results sched))

let test_plan_reproducible () =
  (* The same seed gives the same faults. *)
  let crashed_set () =
    let sched = incr_sched 4 in
    let adv =
      Fault.Plan.apply ~seed:77L [ Fault.Plan.storm 0.5 ]
        (Sim.Adversary.round_robin ())
    in
    Sim.Sched.run sched adv;
    List.init 4 (fun pid -> Sim.Sched.status sched pid = Sim.Sched.Crashed)
  in
  checkb "deterministic" true (crashed_set () = crashed_set ())

(* {1 Adversary.random_crashes budget (the Plan.storm special case)} *)

let test_random_crashes_default_budget () =
  let sched = incr_sched 4 in
  let adv =
    Sim.Adversary.random_crashes ~seed:3L ~crash_prob:1.0
      (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checki "at most n-1 crashes, survivor lives" 3 (count_crashed sched);
  checkb "survivor finished" true
    (Array.exists Option.is_some (Sim.Sched.results sched))

let test_random_crashes_explicit_budget () =
  let sched = incr_sched 4 in
  let adv =
    Sim.Adversary.random_crashes ~max_crashes:2 ~seed:3L ~crash_prob:1.0
      (Sim.Adversary.round_robin ())
  in
  Sim.Sched.run sched adv;
  checki "bounded by max_crashes" 2 (count_crashed sched)

(* {1 Watchdog} *)

let test_watchdog_first_attempt () =
  match Fault.Watchdog.run ~seed:42L (fun ~seed -> seed) with
  | Ok { Fault.Watchdog.value; seed_used; attempt; _ } ->
      checkb "used the caller's seed" true (value = 42L && seed_used = 42L);
      checki "first attempt" 0 attempt
  | Error _ -> Alcotest.fail "expected success"

let test_watchdog_retries_then_succeeds () =
  let calls = ref 0 in
  match
    Fault.Watchdog.run ~retries:3 ~seed:42L (fun ~seed ->
        incr calls;
        if !calls <= 2 then failwith "flaky";
        seed)
  with
  | Ok { Fault.Watchdog.attempt; seed_used; _ } ->
      checki "two failures then success" 3 !calls;
      checki "third attempt" 2 attempt;
      checkb "rotated off the caller's seed" true (seed_used <> 42L)
  | Error _ -> Alcotest.fail "expected eventual success"

let test_watchdog_gives_up () =
  match Fault.Watchdog.run ~retries:1 ~seed:42L (fun ~seed:_ -> failwith "always") with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
      checki "attempts" 2 f.Fault.Watchdog.attempts;
      checki "all seeds reported" 2 (List.length f.Fault.Watchdog.seeds_tried);
      checkb "first seed is the caller's" true
        (List.hd f.Fault.Watchdog.seeds_tried = 42L);
      checkb "reason is the raise" true
        (match f.Fault.Watchdog.last_reason with
        | Fault.Watchdog.Raised _ -> true
        | Fault.Watchdog.Timed_out _ -> false)

let test_watchdog_rotation_deterministic () =
  let seeds () =
    match
      Fault.Watchdog.run ~retries:2 ~seed:9L (fun ~seed:_ -> failwith "always")
    with
    | Error f -> f.Fault.Watchdog.seeds_tried
    | Ok _ -> assert false
  in
  checkb "same rotation both times" true (seeds () = seeds ())

let test_watchdog_timeout () =
  match
    Fault.Watchdog.run ~timeout:0.005 ~retries:0 ~seed:1L (fun ~seed:_ ->
        Unix.sleepf 0.02)
  with
  | Ok _ -> Alcotest.fail "expected a timeout failure"
  | Error f ->
      checkb "timed out" true
        (match f.Fault.Watchdog.last_reason with
        | Fault.Watchdog.Timed_out t -> t > 0.005
        | Fault.Watchdog.Raised _ -> false)

(* {1 Chaos smoke (simulated and multicore)} *)

let test_chaos_smoke () =
  let r =
    Fault.Chaos.run_point ~mode:Fault.Chaos.Tas ~algorithm:"log*" ~n:8 ~k:4
      ~crash_prob:0.3 ~trials:8 ~seed:11L ()
  in
  checki "all trials ran" 8 r.Fault.Chaos.trials;
  checki "no violations" 0 r.Fault.Chaos.violations;
  checki "no timeouts" 0 r.Fault.Chaos.timeouts;
  checkb "storm actually crashed somebody" true (r.Fault.Chaos.crashes > 0)

let test_chaos_le_mode () =
  let r =
    Fault.Chaos.run_point ~mode:Fault.Chaos.Le ~algorithm:"tournament" ~n:8
      ~k:4 ~crash_prob:0.1 ~trials:5 ~seed:7L ()
  in
  checki "no violations" 0 r.Fault.Chaos.violations

let test_chaos_plan_override () =
  (* An explicit plan replaces the storm: crash p0 after its first step
     in every trial. *)
  let r =
    Fault.Chaos.run_point
      ~plan:[ Fault.Plan.crash_after ~pid:0 ~steps:1 ]
      ~mode:Fault.Chaos.Tas ~algorithm:"log*" ~n:8 ~k:4 ~crash_prob:0.0
      ~trials:4 ~seed:3L ()
  in
  checki "one crash per trial" 4 r.Fault.Chaos.crashes;
  checki "no violations" 0 r.Fault.Chaos.violations

let test_mc_chaos_smoke () =
  let r =
    Fault.Mc_chaos.run_point ~impl:"native" ~k:4 ~crash_prob:0.4 ~trials:4
      ~seed:13L ()
  in
  checki "all trials ran" 4 r.Fault.Mc_chaos.trials;
  checki "no violations" 0 r.Fault.Mc_chaos.violations;
  checkb "everyone accounted for" true
    (r.Fault.Mc_chaos.participants + r.Fault.Mc_chaos.crashed_participants
    = 4 * 4)

let () =
  Alcotest.run "fault"
    [
      ( "plan-syntax",
        [
          Alcotest.test_case "round trip" `Quick test_plan_round_trip;
          Alcotest.test_case "parse examples" `Quick test_plan_parse_examples;
        ] );
      ( "plan-apply",
        [
          Alcotest.test_case "crash after steps" `Quick test_plan_crash_after;
          Alcotest.test_case "crash at time" `Quick test_plan_crash_at;
          Alcotest.test_case "halt at time" `Quick test_plan_halt_at;
          Alcotest.test_case "stall window" `Quick test_plan_stall;
          Alcotest.test_case "storm n-1 budget" `Quick
            test_plan_storm_default_budget;
          Alcotest.test_case "storm explicit budget" `Quick
            test_plan_storm_explicit_budget;
          Alcotest.test_case "reproducible" `Quick test_plan_reproducible;
        ] );
      ( "random-crashes",
        [
          Alcotest.test_case "default n-1 budget" `Quick
            test_random_crashes_default_budget;
          Alcotest.test_case "explicit budget" `Quick
            test_random_crashes_explicit_budget;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "first attempt" `Quick test_watchdog_first_attempt;
          Alcotest.test_case "retries then succeeds" `Quick
            test_watchdog_retries_then_succeeds;
          Alcotest.test_case "gives up with seeds" `Quick test_watchdog_gives_up;
          Alcotest.test_case "deterministic rotation" `Quick
            test_watchdog_rotation_deterministic;
          Alcotest.test_case "timeout" `Quick test_watchdog_timeout;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "simulated smoke" `Quick test_chaos_smoke;
          Alcotest.test_case "leader-election mode" `Quick test_chaos_le_mode;
          Alcotest.test_case "plan override" `Quick test_chaos_plan_override;
          Alcotest.test_case "multicore smoke" `Quick test_mc_chaos_smoke;
        ] );
    ]
