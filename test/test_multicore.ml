(* Tests for the real-multicore (Atomic/Domain) implementations.

   These exercise the algorithms across true parallel domains; the
   adversary is the OS scheduler, so assertions are safety properties
   plus single-run liveness. Domain counts are kept small.

   Contender identity is everywhere a [slot] in [0 .. n-1]; algorithms
   that need nonzero splitter ids derive them internally. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Run [k] domains, each evaluating [body slot rng], and return results. *)
let run_domains ~k body =
  let domains =
    List.init k (fun slot ->
        Domain.spawn (fun () ->
            let rng =
              Random.State.make [| slot * 7919; 42; Hashtbl.hash slot |]
            in
            body slot rng))
  in
  List.map Domain.join domains

let test_mc_le2_single_thread () =
  (* Sequential: first caller wins, second loses. *)
  for _ = 1 to 50 do
    let le = Multicore.Mc_le2.create () in
    let rng = Random.State.make [| 1 |] in
    let a = Multicore.Mc_le2.elect le rng ~slot:0 in
    let b = Multicore.Mc_le2.elect le rng ~slot:1 in
    checkb "first wins" true a;
    checkb "second loses" false b
  done

let test_mc_le2_parallel () =
  for _ = 1 to 100 do
    let le = Multicore.Mc_le2.create () in
    let results =
      run_domains ~k:2 (fun slot rng -> Multicore.Mc_le2.elect le rng ~slot)
    in
    let winners = List.length (List.filter Fun.id results) in
    checki "exactly one winner" 1 winners
  done

let test_mc_le2_solo () =
  let le = Multicore.Mc_le2.create () in
  let rng = Random.State.make [| 3 |] in
  checkb "solo wins" true (Multicore.Mc_le2.elect le rng ~slot:1)

let test_mc_tournament_parallel () =
  List.iter
    (fun k ->
      for _ = 1 to 50 do
        let le = Multicore.Mc_tournament.create ~n:k in
        let results =
          run_domains ~k (fun slot rng ->
              Multicore.Mc_tournament.elect le rng ~slot)
        in
        let winners = List.length (List.filter Fun.id results) in
        checki "exactly one winner" 1 winners
      done)
    [ 2; 3; 4 ]

let test_mc_tournament_sequential () =
  let le = Multicore.Mc_tournament.create ~n:4 in
  let rng = Random.State.make [| 5 |] in
  let results =
    List.init 4 (fun slot -> Multicore.Mc_tournament.elect le rng ~slot)
  in
  checki "one winner" 1 (List.length (List.filter Fun.id results))

let test_mc_sift_parallel () =
  for _ = 1 to 50 do
    let le = Multicore.Mc_sift.create ~n:4 in
    let results =
      run_domains ~k:4 (fun slot rng -> Multicore.Mc_sift.elect le rng ~slot)
    in
    let winners = List.length (List.filter Fun.id results) in
    checki "exactly one winner" 1 winners
  done

let test_mc_sift_solo () =
  let le = Multicore.Mc_sift.create ~n:64 in
  let rng = Random.State.make [| 7 |] in
  checkb "solo wins" true (Multicore.Mc_sift.elect le rng ~slot:13)

let test_mc_splitter_solo () =
  let sp = Multicore.Mc_splitter.create () in
  checkb "solo stops" true
    (Multicore.Mc_splitter.split sp ~slot:5 = Multicore.Mc_splitter.S)

let test_mc_splitter_parallel () =
  for _ = 1 to 100 do
    let sp = Multicore.Mc_splitter.create () in
    let results =
      run_domains ~k:3 (fun slot _rng -> Multicore.Mc_splitter.split sp ~slot)
    in
    let count v = List.length (List.filter (fun r -> r = v) results) in
    checkb "at most one S" true (count Multicore.Mc_splitter.S <= 1);
    checkb "not all L" true (count Multicore.Mc_splitter.L <= 2);
    checkb "not all R" true (count Multicore.Mc_splitter.R <= 2)
  done

let test_mc_elim_parallel () =
  for _ = 1 to 50 do
    let le = Multicore.Mc_elim.create ~n:4 in
    let results =
      run_domains ~k:4 (fun slot rng -> Multicore.Mc_elim.elect le rng ~slot)
    in
    checki "exactly one winner" 1 (List.length (List.filter Fun.id results))
  done

let test_mc_elim_sequential () =
  let le = Multicore.Mc_elim.create ~n:4 in
  let rng = Random.State.make [| 9 |] in
  let results = List.init 4 (fun slot -> Multicore.Mc_elim.elect le rng ~slot) in
  checki "one winner" 1 (List.length (List.filter Fun.id results))

let tas_impls =
  [
    ("tournament", fun () -> Multicore.Mc_tas.of_tournament ~n:4);
    ("sift", fun () -> Multicore.Mc_tas.of_sift ~n:4);
    ("elim", fun () -> Multicore.Mc_tas.of_elim ~n:4);
    ("rr-lean", fun () -> Multicore.Mc_tas.of_rr_lean ~n:4);
    ("native", fun () -> Multicore.Mc_tas.native ());
  ]

let test_mc_tas_unique_zero (name, make) () =
  ignore name;
  for _ = 1 to 50 do
    let tas = make () in
    let results =
      run_domains ~k:4 (fun slot rng -> Multicore.Mc_tas.apply tas rng ~slot)
    in
    let zeros = List.length (List.filter (fun r -> r = 0) results) in
    checki "exactly one 0" 1 zeros;
    checki "others get 1" 3 (List.length (List.filter (fun r -> r = 1) results))
  done

let test_mc_tas_le2_pair () =
  for _ = 1 to 100 do
    let tas = Multicore.Mc_tas.of_le2 () in
    let results =
      run_domains ~k:2 (fun slot rng -> Multicore.Mc_tas.apply tas rng ~slot)
    in
    checki "exactly one 0" 1 (List.length (List.filter (fun r -> r = 0) results))
  done

let test_mc_tas_sequential_semantics () =
  let tas = Multicore.Mc_tas.of_tournament ~n:4 in
  let rng = Random.State.make [| 11 |] in
  checki "first gets 0" 0 (Multicore.Mc_tas.apply tas rng ~slot:0);
  checki "second gets 1" 1 (Multicore.Mc_tas.apply tas rng ~slot:1);
  checki "third gets 1" 1 (Multicore.Mc_tas.apply tas rng ~slot:2)

(* --- Differential backend test ---------------------------------------

   Both backends of a functorized election are the same algorithm, so
   under any schedule in which each contender runs to completion before
   the next starts, the outcome vector is determined by the contender
   order alone: the first contender meets only fresh splitters / duels
   and wins, everyone after it loses to state the winner left behind —
   whatever either backend's coins say. The simulator run under a
   run-to-completion adversary must therefore produce bit-for-bit the
   outcome vector of the Atomic_mem run executed sequentially in the
   same order, for every seed and every contender permutation. *)

let permutation rng k =
  let order = Array.init k Fun.id in
  for i = k - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

(* Schedule the runnable pid that comes earliest in [order]; since a
   scheduled process stays the earliest until it finishes, this runs
   order.(0) to completion, then order.(1), etc. *)
let seq_order_adversary order =
  let rank = Array.make (Array.length order) 0 in
  Array.iteri (fun i pid -> rank.(pid) <- i) order;
  Sim.Adversary.adaptive "seq-order" (fun v ->
      let best = ref v.Sim.Sched.runnable.(0) in
      Array.iter
        (fun pid -> if rank.(pid) < rank.(!best) then best := pid)
        v.Sim.Sched.runnable;
      Sim.Sched.Schedule !best)

let sim_outcomes entry ~k ~order ~seed =
  let mem = Sim.Memory.create () in
  let le = entry.Rtas.Registry.make mem ~n:k in
  let sched = Sim.Sched.create ~seed (Leaderelect.Le.programs le ~k) in
  Sim.Sched.run sched (seq_order_adversary order);
  Array.map (fun r -> r = Some 1) (Sim.Sched.results sched)

let atomic_outcomes make_mc ~k ~order ~seed =
  let le = make_mc ~n:k in
  let results = Array.make k false in
  Array.iter
    (fun slot ->
      let rng = Random.State.make [| Int64.to_int seed; slot; 0x5EED |] in
      results.(slot) <- Multicore.Mc_le.elect le rng ~slot)
    order;
  results

let test_differential entry make_mc () =
  let k = 4 in
  for seed_int = 1 to 120 do
    let seed = Int64.of_int (seed_int * 7919) in
    let order = permutation (Random.State.make [| seed_int; 0xD1FF |]) k in
    let sim = sim_outcomes entry ~k ~order ~seed in
    let atomic = atomic_outcomes make_mc ~k ~order ~seed in
    checkb "backends agree" true (sim = atomic);
    let winners a = Array.to_list a |> List.filter Fun.id |> List.length in
    checki "sim: exactly one winner" 1 (winners sim);
    checki "atomic: exactly one winner" 1 (winners atomic);
    checkb "first in order wins" true atomic.(order.(0))
  done

let differential_cases =
  List.filter_map
    (fun (e : Rtas.Registry.entry) ->
      Option.map
        (fun make_mc ->
          Alcotest.test_case e.Rtas.Registry.name `Quick
            (test_differential e make_mc))
        e.Rtas.Registry.make_mc)
    Rtas.Registry.all

let test_registry_backends_present () =
  let with_mc =
    List.filter
      (fun (e : Rtas.Registry.entry) -> e.Rtas.Registry.make_mc <> None)
      Rtas.Registry.all
  in
  checkb "at least 4 dual-backend entries" true (List.length with_mc >= 4);
  List.iter
    (fun (e : Rtas.Registry.entry) ->
      let le = (Option.get e.Rtas.Registry.make_mc) ~n:4 in
      checkb "mc name matches registry" true
        (Multicore.Mc_le.name le = e.Rtas.Registry.name);
      checkb "allocates registers" true (Multicore.Mc_le.registers le > 0))
    with_mc

let () =
  Alcotest.run "multicore"
    [
      ( "le2",
        [
          Alcotest.test_case "sequential" `Quick test_mc_le2_single_thread;
          Alcotest.test_case "parallel" `Quick test_mc_le2_parallel;
          Alcotest.test_case "solo" `Quick test_mc_le2_solo;
        ] );
      ( "tournament",
        [
          Alcotest.test_case "parallel" `Quick test_mc_tournament_parallel;
          Alcotest.test_case "sequential" `Quick test_mc_tournament_sequential;
        ] );
      ( "sift",
        [
          Alcotest.test_case "parallel" `Quick test_mc_sift_parallel;
          Alcotest.test_case "solo" `Quick test_mc_sift_solo;
        ] );
      ( "splitter",
        [
          Alcotest.test_case "solo" `Quick test_mc_splitter_solo;
          Alcotest.test_case "parallel" `Quick test_mc_splitter_parallel;
        ] );
      ( "elim",
        [
          Alcotest.test_case "parallel" `Quick test_mc_elim_parallel;
          Alcotest.test_case "sequential" `Quick test_mc_elim_sequential;
        ] );
      ( "rr-lean",
        [
          Alcotest.test_case "parallel" `Quick (fun () ->
              for _ = 1 to 50 do
                let le = Multicore.Mc_rr_lean.create ~n:4 in
                let results =
                  run_domains ~k:4 (fun slot rng ->
                      Multicore.Mc_rr_lean.elect le rng ~slot)
                in
                checki "exactly one winner" 1
                  (List.length (List.filter Fun.id results))
              done);
          Alcotest.test_case "larger crowd" `Quick (fun () ->
              for _ = 1 to 10 do
                let le = Multicore.Mc_rr_lean.create ~n:8 in
                let results =
                  run_domains ~k:8 (fun slot rng ->
                      Multicore.Mc_rr_lean.elect le rng ~slot)
                in
                checki "exactly one winner" 1
                  (List.length (List.filter Fun.id results))
              done);
          Alcotest.test_case "solo" `Quick (fun () ->
              let le = Multicore.Mc_rr_lean.create ~n:8 in
              let rng = Random.State.make [| 21 |] in
              checkb "solo wins" true (Multicore.Mc_rr_lean.elect le rng ~slot:3));
          Alcotest.test_case "sequential" `Quick (fun () ->
              let le = Multicore.Mc_rr_lean.create ~n:4 in
              let rng = Random.State.make [| 23 |] in
              let results =
                List.init 4 (fun slot ->
                    Multicore.Mc_rr_lean.elect le rng ~slot)
              in
              checki "one winner" 1 (List.length (List.filter Fun.id results)));
        ] );
      ( "tas",
        List.map
          (fun (name, make) ->
            Alcotest.test_case name `Quick (test_mc_tas_unique_zero (name, make)))
          tas_impls
        @ [
            Alcotest.test_case "le2 pair" `Quick test_mc_tas_le2_pair;
            Alcotest.test_case "sequential semantics" `Quick
              test_mc_tas_sequential_semantics;
          ] );
      ("differential", differential_cases);
      ( "registry",
        [
          Alcotest.test_case "dual backends" `Quick
            test_registry_backends_present;
        ] );
    ]
