(* Differential tests for the flat execution kernel.

   The kernel's whole contract is bit-identity with the effect-handler
   simulator: same seeds + same schedule => same winner, same
   per-process results, same flip stream ((time, pid, bound, outcome)
   for every draw). Satellite 1 of ISSUE 7: 120 seeds per
   flat-registered election under run-to-completion schedules, plus
   random-oblivious and round-robin schedule parity, arena-reuse
   identity, and domain-count independence of flat Engine batches. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Frng vs Sim.Rng -------------------------------------------------- *)

let test_frng_parity () =
  let seeds = [ 0L; 1L; 0x5EEDL; 0xDEADBEEFL; Int64.min_int; -1L ] in
  List.iter
    (fun seed ->
      let s = Sim.Rng.create seed and f = Flatsim.Frng.create seed in
      for i = 1 to 2_000 do
        let bound = 1 + (i mod 97) in
        checki "int draw" (Sim.Rng.int s bound) (Flatsim.Frng.int f bound)
      done;
      (* interleave geometric draws on the same stream *)
      for _ = 1 to 2_000 do
        checki "geometric draw"
          (Sim.Rng.geometric_capped s 9)
          (Flatsim.Frng.geometric_capped f 9)
      done;
      Sim.Rng.reseed s 42L;
      Flatsim.Frng.reseed f 42L;
      for _ = 1 to 200 do
        checki "after reseed" (Sim.Rng.int s 1_000_000) (Flatsim.Frng.int f 1_000_000)
      done)
    seeds

(* --- Outcome extraction ----------------------------------------------- *)

let flip_events sched =
  List.filter_map
    (function
      | Sim.Op.Flip { time; pid; bound; outcome } ->
          Some (time, pid, bound, outcome)
      | _ -> None)
    (Sim.Sched.trace sched)

(* Same run-to-completion schedule as PR 5's differential test: the
   runnable pid earliest in [order] runs until it finishes. *)
let seq_order_adversary order =
  let rank = Array.make (Array.length order) 0 in
  Array.iteri (fun i pid -> rank.(pid) <- i) order;
  Sim.Adversary.adaptive "seq-order" (fun v ->
      let best = ref v.Sim.Sched.runnable.(0) in
      Array.iter
        (fun pid -> if rank.(pid) < rank.(!best) then best := pid)
        v.Sim.Sched.runnable;
      Sim.Sched.Schedule !best)

let permutation rng k =
  let order = Array.init k Fun.id in
  for i = k - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  order

type schedule = Seq of int array | Random of int64 | Rr

let effect_run programs ~seed ~schedule =
  let sched = Sim.Sched.create ~seed ~record_trace:true programs in
  (match schedule with
  | Seq order -> Sim.Sched.run sched (seq_order_adversary order)
  | Random aseed -> Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:aseed)
  | Rr -> Sim.Sched.run sched (Sim.Adversary.round_robin ()));
  (Sim.Sched.results sched, flip_events sched, Sim.Sched.time sched)

let flat_run m ~schedule =
  (match schedule with
  | Seq order -> Flatsim.Machine.run_seq m ~order
  | Random aseed -> Flatsim.Machine.run_random m ~seed:aseed
  | Rr -> Flatsim.Machine.run_rr m);
  (Flatsim.Machine.results m, Flatsim.Machine.flip_log m, Flatsim.Machine.time m)

let check_equal ~ctx (e_res, e_flips, e_time) (f_res, f_flips, f_time) =
  checkb (ctx ^ ": results identical") true (e_res = f_res);
  checkb (ctx ^ ": flip streams identical") true (e_flips = f_flips);
  checki (ctx ^ ": total steps identical") e_time f_time

let effect_election entry ~k ~seed ~schedule =
  let mem = Sim.Memory.create () in
  let le = entry.Rtas.Registry.make mem ~n:k in
  effect_run (Leaderelect.Le.programs le ~k) ~seed ~schedule

(* --- Satellite 1: 120-seed flat-vs-effect differential ---------------- *)

let test_differential (entry : Rtas.Registry.entry) () =
  let make_flat = Option.get entry.Rtas.Registry.make_flat in
  let k = 4 in
  (* One machine reused across all 120 seeds: the differential also
     exercises the reset discipline. *)
  let m = Flatsim.Machine.create ~record_flips:true ~procs:k (make_flat ~n:k) in
  for seed_int = 1 to 120 do
    let seed = Int64.of_int (seed_int * 7919) in
    let order = permutation (Random.State.make [| seed_int; 0xD1FF |]) k in
    let schedule = Seq order in
    let e = effect_election entry ~k ~seed ~schedule in
    Flatsim.Machine.reset ~seed m;
    let f = flat_run m ~schedule in
    check_equal ~ctx:(Printf.sprintf "seed %d" seed_int) e f;
    let e_res, _, _ = e in
    checki "exactly one winner" 1
      (Array.fold_left (fun a r -> if r = Some 1 then a + 1 else a) 0 e_res)
  done

(* Schedule parity beyond run-to-completion: the random-oblivious and
   round-robin loops inside the kernel must replicate the adversary
   decision procedures draw-for-draw. *)
let test_schedule_parity (entry : Rtas.Registry.entry) () =
  let make_flat = Option.get entry.Rtas.Registry.make_flat in
  List.iter
    (fun k ->
      let m =
        Flatsim.Machine.create ~record_flips:true ~procs:k (make_flat ~n:k)
      in
      for seed_int = 1 to 30 do
        let seed = Sim.Rng.derive (Int64.of_int seed_int) ~stream:0 in
        let aseed = Sim.Rng.derive (Int64.of_int seed_int) ~stream:1 in
        List.iter
          (fun schedule ->
            let e = effect_election entry ~k ~seed ~schedule in
            Flatsim.Machine.reset ~seed m;
            let f = flat_run m ~schedule in
            check_equal ~ctx:(Printf.sprintf "k=%d seed %d" k seed_int) e f)
          [ Random aseed; Rr ]
      done)
    [ 2; 5; 8 ]

(* The 2-process TAS base: doorway around a duel, ports by pid. *)
let effect_tas ~seed ~schedule =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2.create mem in
  let tas =
    Primitives.Tas.create mem ~elect:(fun ctx ->
        Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
  in
  effect_run (Array.init 2 (fun _ ctx -> Primitives.Tas.apply tas ctx)) ~seed
    ~schedule

let test_tas2_differential () =
  let m = Flatsim.Machine.create ~record_flips:true ~procs:2 Flatsim.Programs.tas2 in
  for seed_int = 1 to 120 do
    let seed = Int64.of_int (seed_int * 7919) in
    let aseed = Sim.Rng.derive seed ~stream:1 in
    List.iter
      (fun schedule ->
        let e = effect_tas ~seed ~schedule in
        Flatsim.Machine.reset ~seed m;
        let f = flat_run m ~schedule in
        check_equal ~ctx:(Printf.sprintf "tas2 seed %d" seed_int) e f;
        let e_res, _, _ = e in
        checki "exactly one 0 (TAS winner)" 1
          (Array.fold_left (fun a r -> if r = Some 0 then a + 1 else a) 0 e_res))
      [ Seq [| 0; 1 |]; Seq [| 1; 0 |]; Random aseed; Rr ]
  done

(* The bench's GE-round workload: one Figure-1 GroupElect round. *)
let test_ge_round_differential () =
  let n = 64 and k = 16 in
  let m =
    Flatsim.Machine.create ~record_flips:true ~procs:k
      (Flatsim.Programs.ge_round ~n)
  in
  for seed_int = 1 to 120 do
    let seed = Int64.of_int (seed_int * 7919) in
    let aseed = Sim.Rng.derive seed ~stream:1 in
    let mem = Sim.Memory.create () in
    let ge = Groupelect.Ge_logstar.create mem ~n in
    let e =
      effect_run
        (Array.init k (fun _ ctx -> if ge.Groupelect.Ge.elect ctx then 1 else 0))
        ~seed ~schedule:(Random aseed)
    in
    Flatsim.Machine.reset ~seed m;
    let f = flat_run m ~schedule:(Random aseed) in
    check_equal ~ctx:(Printf.sprintf "ge_round seed %d" seed_int) e f
  done

(* --- Arena reuse: reset runs are identical to fresh machines ---------- *)

let test_reset_identity () =
  List.iter
    (fun (entry : Rtas.Registry.entry) ->
      let make_flat = Option.get entry.Rtas.Registry.make_flat in
      let k = 6 in
      let reused =
        Flatsim.Machine.create ~record_flips:true ~procs:k (make_flat ~n:k)
      in
      for seed_int = 1 to 25 do
        let seed = Int64.of_int ((seed_int * 37) + 5) in
        let fresh =
          Flatsim.Machine.create ~seed ~record_flips:true ~procs:k
            (make_flat ~n:k)
        in
        Flatsim.Machine.run_random fresh ~seed:(Sim.Rng.derive seed ~stream:1);
        Flatsim.Machine.reset ~seed reused;
        Flatsim.Machine.run_random reused ~seed:(Sim.Rng.derive seed ~stream:1);
        checkb "reused = fresh (results)" true
          (Flatsim.Machine.results fresh = Flatsim.Machine.results reused);
        checkb "reused = fresh (flips)" true
          (Flatsim.Machine.flip_log fresh = Flatsim.Machine.flip_log reused)
      done)
    (Rtas.Registry.flat ())

(* Shrinking resets: a capacity-c machine reset to fewer procs behaves
   like a fresh machine of that size (the service driver's per-round
   contender counts). *)
let test_reset_shrink () =
  let prog = Flatsim.Programs.tournament ~n:8 in
  let reused = Flatsim.Machine.create ~record_flips:true ~procs:8 prog in
  for seed_int = 1 to 25 do
    let seed = Int64.of_int (seed_int * 131) in
    let k = 2 + (seed_int mod 7) in
    let fresh = Flatsim.Machine.create ~seed ~record_flips:true ~procs:k prog in
    Flatsim.Machine.run_rr fresh;
    Flatsim.Machine.reset ~seed ~procs:k reused;
    Flatsim.Machine.run_rr reused;
    checki "active procs" k (Flatsim.Machine.procs reused);
    checkb "shrunk reset = fresh (results)" true
      (Flatsim.Machine.results fresh = Flatsim.Machine.results reused);
    checkb "shrunk reset = fresh (flips)" true
      (Flatsim.Machine.flip_log fresh = Flatsim.Machine.flip_log reused)
  done

(* --- Engine dispatch: flat trials are domain-count independent -------- *)

let flat_engine_outcomes ~domains ~trials =
  let prog = Flatsim.Programs.logstar ~n:8 in
  let out = Array.make trials (-1) in
  let (_ : Engine.worker_stats array) =
    Engine.run_into ~domains ~trials ~seed:0xF1A7L
      ~local:(fun () -> Flatsim.Machine.create ~procs:8 prog)
      (fun m ~trial ~seed ->
        Flatsim.Machine.reset ~seed:(Sim.Rng.derive seed ~stream:0) m;
        Flatsim.Machine.run_random m ~seed:(Sim.Rng.derive seed ~stream:1);
        let w = ref (-1) in
        for pid = 0 to 7 do
          if Flatsim.Machine.result m pid = Some 1 then w := pid
        done;
        out.(trial) <- !w)
  in
  out

let test_engine_domain_independence () =
  let one = flat_engine_outcomes ~domains:1 ~trials:64 in
  let two = flat_engine_outcomes ~domains:2 ~trials:64 in
  Array.iter (fun w -> checkb "has a winner" true (w >= 0)) one;
  checkb "1-domain = 2-domain" true (one = two)

(* --- The kernel's zero-allocation claim ------------------------------- *)

let test_zero_allocation_steady_state () =
  let prog = Flatsim.Programs.logstar ~n:32 in
  let m = Flatsim.Machine.create ~procs:32 prog in
  let trial seed =
    Flatsim.Machine.reset ~seed m;
    Flatsim.Machine.run_random m ~seed:(Sim.Rng.derive seed ~stream:1)
  in
  (* Warm up, then measure: steady-state trials must allocate nothing
     (the minor-words delta of 50 trials stays under one small
     constant's worth of incidental allocation). *)
  for i = 1 to 10 do
    trial (Int64.of_int i)
  done;
  let s0 = (Gc.quick_stat ()).Gc.minor_words in
  for i = 1 to 50 do
    trial (Int64.of_int i)
  done;
  let dw = (Gc.quick_stat ()).Gc.minor_words -. s0 in
  checkb
    (Printf.sprintf "steady-state trials allocate nothing (got %.1f words)" dw)
    true
    (dw < 100.0)

let differential_cases =
  List.map
    (fun (e : Rtas.Registry.entry) ->
      Alcotest.test_case e.Rtas.Registry.name `Quick (test_differential e))
    (Rtas.Registry.flat ())

let schedule_cases =
  List.map
    (fun (e : Rtas.Registry.entry) ->
      Alcotest.test_case e.Rtas.Registry.name `Quick (test_schedule_parity e))
    (Rtas.Registry.flat ())

let test_flat_registry_coverage () =
  let names = Rtas.Registry.flat_names () in
  List.iter
    (fun required ->
      checkb (required ^ " is flat-registered") true (List.mem required names))
    [ "tournament"; "log*"; "sift" ]

let () =
  Alcotest.run "flatsim"
    [
      ("frng", [ Alcotest.test_case "parity with Sim.Rng" `Quick test_frng_parity ]);
      ("differential-120", differential_cases);
      ("schedule-parity", schedule_cases);
      ( "base-cases",
        [
          Alcotest.test_case "tas2" `Quick test_tas2_differential;
          Alcotest.test_case "ge_round" `Quick test_ge_round_differential;
        ] );
      ( "arena-reuse",
        [
          Alcotest.test_case "reset = fresh" `Quick test_reset_identity;
          Alcotest.test_case "shrinking reset" `Quick test_reset_shrink;
        ] );
      ( "engine",
        [
          Alcotest.test_case "domain independence" `Quick
            test_engine_domain_independence;
        ] );
      ( "gc",
        [
          Alcotest.test_case "zero steady-state allocation" `Quick
            test_zero_allocation_steady_state;
        ] );
      ( "registry",
        [
          Alcotest.test_case "hot elections flat-registered" `Quick
            test_flat_registry_coverage;
        ] );
    ]
