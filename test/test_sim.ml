(* Tests for the shared-memory simulator substrate. *)

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Sim.Rng.next a) (Sim.Rng.next b)
  done

let test_rng_seeds_differ () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.next a <> Sim.Rng.next b then differs := true
  done;
  checkb "streams differ" true !differs

let test_rng_int_bounds () =
  let r = Sim.Rng.create 7L in
  for bound = 1 to 50 do
    for _ = 1 to 100 do
      let v = Sim.Rng.int r bound in
      checkb "in range" true (v >= 0 && v < bound)
    done
  done

let test_rng_int_invalid () =
  let r = Sim.Rng.create 7L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_rng_copy_independent () =
  let a = Sim.Rng.create 9L in
  ignore (Sim.Rng.next a);
  let b = Sim.Rng.copy a in
  let va = Sim.Rng.next a in
  let vb = Sim.Rng.next b in
  check Alcotest.int64 "copy continues identically" va vb;
  ignore (Sim.Rng.next a);
  (* advancing [a] further must not touch [b] *)
  let va2 = Sim.Rng.next a and vb2 = Sim.Rng.next b in
  checkb "then they diverge in position" true (va2 <> vb2 || va2 = vb2)

let test_rng_float_range () =
  let r = Sim.Rng.create 11L in
  for _ = 1 to 1000 do
    let f = Sim.Rng.float r in
    checkb "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_bool_balanced () =
  let r = Sim.Rng.create 13L in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Sim.Rng.bool r then incr trues
  done;
  checkb "roughly balanced" true (abs (!trues - (n / 2)) < n / 10)

let test_rng_geometric_support () =
  let r = Sim.Rng.create 17L in
  for _ = 1 to 2000 do
    let v = Sim.Rng.geometric_capped r 8 in
    checkb "support" true (v >= 1 && v <= 8)
  done

let test_rng_geometric_distribution () =
  (* Pr(x = 1) = 1/2; mean is < 2. *)
  let r = Sim.Rng.create 19L in
  let n = 20_000 in
  let ones = ref 0 and sum = ref 0 in
  for _ = 1 to n do
    let v = Sim.Rng.geometric_capped r 20 in
    if v = 1 then incr ones;
    sum := !sum + v
  done;
  let p1 = float_of_int !ones /. float_of_int n in
  checkb "Pr(x=1) ~ 0.5" true (abs_float (p1 -. 0.5) < 0.02);
  let mean = float_of_int !sum /. float_of_int n in
  checkb "mean ~ 2" true (abs_float (mean -. 2.0) < 0.1)

let test_rng_geometric_cap () =
  let r = Sim.Rng.create 21L in
  for _ = 1 to 100 do
    checki "l=1 always 1" 1 (Sim.Rng.geometric_capped r 1)
  done

let test_rng_derive_adjacent_disjoint () =
  (* Adjacent derived streams back the per-trial seeds of the engine:
     stream t and stream t+1 must not share any outputs in a long
     prefix, or neighbouring trials would be correlated. *)
  let seed = 0x0E17A5EEDL in
  let prefix = 512 in
  for stream = 0 to 7 do
    let a = Sim.Rng.create (Sim.Rng.derive seed ~stream) in
    let b = Sim.Rng.create (Sim.Rng.derive seed ~stream:(stream + 1)) in
    let seen = Hashtbl.create (2 * prefix) in
    for _ = 1 to prefix do
      Hashtbl.replace seen (Sim.Rng.next a) ()
    done;
    let overlap = ref 0 in
    for _ = 1 to prefix do
      if Hashtbl.mem seen (Sim.Rng.next b) then incr overlap
    done;
    checki
      (Printf.sprintf "streams %d and %d share no outputs" stream (stream + 1))
      0 !overlap
  done

let test_rng_reseed_matches_fresh () =
  (* Arena reuse depends on [reseed] being indistinguishable from
     [create]: a generator that ran arbitrarily long, once reseeded,
     must replay exactly the fresh stream. *)
  let used = Sim.Rng.create 99L in
  for _ = 1 to 1234 do
    ignore (Sim.Rng.next used)
  done;
  Sim.Rng.reseed used 42L;
  let fresh = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "reseeded replays fresh stream" (Sim.Rng.next fresh)
      (Sim.Rng.next used)
  done

(* {1 Memory and registers} *)

let test_memory_counts () =
  let mem = Sim.Memory.create () in
  checki "empty" 0 (Sim.Memory.allocated mem);
  let _r1 = Sim.Register.create mem in
  let _r2 = Sim.Register.create mem in
  checki "two" 2 (Sim.Memory.allocated mem)

let test_register_initial () =
  let mem = Sim.Memory.create () in
  let r = Sim.Register.create mem in
  checki "initial value" 0 (Sim.Register.read r);
  checki "no writer" (-1) r.Sim.Register.last_writer

let test_register_write () =
  let mem = Sim.Memory.create () in
  let r = Sim.Register.create mem in
  Sim.Register.write r ~writer:3 42;
  checki "value" 42 (Sim.Register.read r);
  checki "writer" 3 r.Sim.Register.last_writer

let test_register_ids_unique () =
  let mem = Sim.Memory.create () in
  let rs = List.init 10 (fun _ -> Sim.Register.create mem) in
  let ids = List.map (fun (r : Sim.Register.t) -> r.Sim.Register.id) rs in
  checki "all distinct" 10 (List.length (List.sort_uniq compare ids))

let test_memory_reset () =
  let mem = Sim.Memory.create () in
  let r1 = Sim.Register.create mem in
  let r2 = Sim.Register.create mem in
  Sim.Register.write r1 ~writer:3 42;
  Sim.Register.write r2 ~writer:5 7;
  Sim.Memory.reset mem;
  checki "r1 back to initial" 0 (Sim.Register.read r1);
  checki "r1 writer cleared" (-1) r1.Sim.Register.last_writer;
  checki "r2 back to initial" 0 (Sim.Register.read r2);
  checki "ids survive reset" 2 (Sim.Memory.allocated mem);
  (* Registers allocated after a reset still enrol for the next one. *)
  let r3 = Sim.Register.create mem in
  Sim.Register.write r3 ~writer:1 9;
  Sim.Memory.reset mem;
  checki "late register also reset" 0 (Sim.Register.read r3)

(* {1 Scheduler} *)

(* A tiny program: read a register, add own pid, write it back, return
   the value read. *)
let incr_prog reg ctx =
  let v = Sim.Ctx.read ctx reg in
  Sim.Ctx.write ctx reg (v + Sim.Ctx.pid ctx + 1);
  v

let test_sched_round_robin () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create (Array.init 3 (fun _ -> incr_prog reg)) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  (* Round-robin interleaves all three reads before any write, so every
     process writes [0 + pid + 1] and the last writer is p2. *)
  checki "last write wins" 3 (Sim.Register.read reg);
  for pid = 0 to 2 do
    checki "each took 2 steps" 2 (Sim.Sched.steps sched pid)
  done;
  checki "total time" 6 (Sim.Sched.time sched)

let test_sched_sequential_results () =
  (* Under round-robin p0 reads first (sees 0), all three read before any
     write completes... round-robin order: p0 read, p1 read, p2 read, p0
     write, p1 write, p2 write: all read 0. *)
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create (Array.init 3 (fun _ -> incr_prog reg)) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  Array.iter
    (fun r -> checki "read 0" 0 (Option.get r))
    (Sim.Sched.results sched)

let test_sched_fixed_schedule () =
  (* Run p0 fully first, then p1: p1 must observe p0's write. *)
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create (Array.init 2 (fun _ -> incr_prog reg)) in
  Sim.Sched.run sched (Sim.Adversary.fixed_schedule [| 0; 0; 1; 1 |]);
  checki "p0 saw 0" 0 (Option.get (Sim.Sched.result sched 0));
  checki "p1 saw p0's write" 1 (Option.get (Sim.Sched.result sched 1))

let test_sched_fixed_schedule_halts () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create (Array.init 2 (fun _ -> incr_prog reg)) in
  Sim.Sched.run sched (Sim.Adversary.fixed_schedule [| 0; 0 |]);
  checkb "p0 finished" true (Sim.Sched.result sched 0 <> None);
  checkb "p1 crashed" true (Sim.Sched.status sched 1 = Sim.Sched.Crashed)

let test_sched_crash () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create (Array.init 2 (fun _ -> incr_prog reg)) in
  Sim.Sched.crash sched 0;
  checkb "crashed" true (Sim.Sched.status sched 0 = Sim.Sched.Crashed);
  Alcotest.check_raises "cannot step crashed"
    (Invalid_argument "Sched.step: process is not running") (fun () ->
      Sim.Sched.step sched 0);
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "p1 unaffected, saw 0" 0 (Option.get (Sim.Sched.result sched 1))

let test_sched_pending_before_step () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create [| incr_prog reg |] in
  (match Sim.Sched.pending sched 0 with
  | Some { Sim.Op.kind = Sim.Op.Read; reg = r } ->
      checki "poised at the register" reg.Sim.Register.id r.Sim.Register.id
  | _ -> Alcotest.fail "expected pending read");
  Sim.Sched.step sched 0;
  (match Sim.Sched.pending sched 0 with
  | Some { Sim.Op.kind = Sim.Op.Write v; _ } -> checki "pending write value" 1 v
  | _ -> Alcotest.fail "expected pending write")

let test_view_filtering () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create ~name:"secret" mem in
  let prog ctx = Sim.Ctx.write ctx reg 7; 0 in
  let sched = Sim.Sched.create [| prog |] in
  let open Sim.Sched in
  let v_adaptive = (view sched Adaptive).pending_of 0 in
  checkb "adaptive sees kind" true (v_adaptive.view_kind = Some `Write);
  checkb "adaptive sees reg" true (v_adaptive.view_reg <> None);
  checkb "adaptive sees value" true (v_adaptive.view_value = Some 7);
  let v_loc = (view sched Location_oblivious).pending_of 0 in
  checkb "loc-obl sees kind" true (v_loc.view_kind = Some `Write);
  checkb "loc-obl hides reg" true (v_loc.view_reg = None);
  checkb "loc-obl sees value" true (v_loc.view_value = Some 7);
  let v_rw = (view sched Rw_oblivious).pending_of 0 in
  checkb "rw-obl hides kind" true (v_rw.view_kind = None);
  checkb "rw-obl sees reg" true (v_rw.view_reg <> None);
  checkb "rw-obl hides value" true (v_rw.view_value = None);
  let v_obl = (view sched Oblivious).pending_of 0 in
  checkb "oblivious hides all" true
    (v_obl.view_kind = None && v_obl.view_reg = None && v_obl.view_value = None)

let test_trace_recording () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create ~record_trace:true [| incr_prog reg |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  let events = Sim.Sched.trace sched in
  let steps =
    List.filter (function Sim.Op.Step _ -> true | _ -> false) events
  in
  checki "two steps traced" 2 (List.length steps);
  let finishes =
    List.filter (function Sim.Op.Finish _ -> true | _ -> false) events
  in
  checki "one finish" 1 (List.length finishes)

let test_trace_off_by_default () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create [| incr_prog reg |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "no trace" 0 (List.length (Sim.Sched.trace sched))

let test_flips_recorded () =
  let prog ctx = Sim.Ctx.flip ctx 2 + Sim.Ctx.flip ctx 2 in
  let sched = Sim.Sched.create ~record_trace:true [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "two flips counted" 2 (Sim.Sched.flips sched 0);
  checki "no shared steps" 0 (Sim.Sched.steps sched 0)

let test_flip_oracle () =
  let prog ctx = Sim.Ctx.flip ctx 10 in
  let oracle ~pid:_ ~bound:_ = Some 7 in
  let sched = Sim.Sched.create ~flip_oracle:oracle [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "oracle controls flip" 7 (Option.get (Sim.Sched.result sched 0))

let test_first_and_finish_times () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create (Array.init 2 (fun _ -> incr_prog reg)) in
  Sim.Sched.run sched (Sim.Adversary.fixed_schedule ~then_halt:false [| 1; 1; 0; 0 |]);
  checki "p1 started first" 1 (Sim.Sched.first_step_time sched 1);
  checki "p1 finished at 2" 2 (Sim.Sched.finish_time sched 1);
  checki "p0 started at 3" 3 (Sim.Sched.first_step_time sched 0)

let test_with_crashes () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let sched = Sim.Sched.create (Array.init 2 (fun _ -> incr_prog reg)) in
  let adv = Sim.Adversary.with_crashes [ (0, 1) ] (Sim.Adversary.round_robin ()) in
  Sim.Sched.run sched adv;
  checkb "p0 crashed after 1 step" true (Sim.Sched.status sched 0 = Sim.Sched.Crashed);
  checki "p0 took exactly 1 step" 1 (Sim.Sched.steps sched 0);
  checkb "p1 finished" true (Sim.Sched.result sched 1 <> None)

let test_max_total_steps () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let rec spin ctx = ignore (Sim.Ctx.read ctx reg); spin ctx in
  let sched = Sim.Sched.create [| spin |] in
  checkb "livelock detected" true
    (try
       Sim.Sched.run ~max_total_steps:100 sched (Sim.Adversary.round_robin ());
       false
     with Failure _ -> true)

let test_max_total_steps_boundary () =
  (* The bound is inclusive: an execution needing exactly N steps
     succeeds with [~max_total_steps:N] and trips the guard at N-1. *)
  let run_with bound =
    let mem = Sim.Memory.create () in
    let reg = Sim.Register.create mem in
    let prog ctx =
      for _ = 1 to 100 do
        ignore (Sim.Ctx.read ctx reg)
      done;
      0
    in
    let sched = Sim.Sched.create [| prog |] in
    Sim.Sched.run ~max_total_steps:bound sched (Sim.Adversary.round_robin ());
    Sim.Sched.steps sched 0
  in
  checki "exactly the bound is allowed" 100 (run_with 100);
  checkb "needing one more step fails" true
    (try
       ignore (run_with 99);
       false
     with Failure _ -> true)

(* {1 Arena reuse: reset-and-rerun is bit-identical to fresh} *)

(* A racy randomized workload: every process flips, writes its draw,
   reads a neighbour and returns a value mixing both — so results are
   sensitive to the RNG stream, the schedule, and leftover register
   state alike. *)
let reuse_progs regs n =
  Array.init n (fun pid ctx ->
      let draw = Sim.Ctx.flip ctx 1000 in
      Sim.Ctx.write ctx regs.(pid) (draw + 1);
      let seen = Sim.Ctx.read ctx regs.((pid + 1) mod n) in
      (draw * 10_000) + seen)

let reuse_fingerprint sched n =
  List.init n (fun pid ->
      ( Sim.Sched.result sched pid,
        Sim.Sched.steps sched pid,
        Sim.Sched.flips sched pid,
        Sim.Sched.rmrs sched pid ))

let test_sched_reset_bit_identical () =
  let n = 8 in
  let fresh_run seed =
    let mem = Sim.Memory.create () in
    let regs = Array.init n (fun _ -> Sim.Register.create mem) in
    let sched = Sim.Sched.create ~seed (reuse_progs regs n) in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed);
    reuse_fingerprint sched n
  in
  (* One arena, reset per trial — the engine's hot-path pattern. *)
  let mem = Sim.Memory.create () in
  let regs = Array.init n (fun _ -> Sim.Register.create mem) in
  let progs = reuse_progs regs n in
  let sched = Sim.Sched.create progs in
  let reused_run seed =
    Sim.Memory.reset mem;
    Sim.Sched.reset ~seed sched progs;
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed);
    reuse_fingerprint sched n
  in
  List.iter
    (fun seed ->
      checkb
        (Printf.sprintf "seed %Ld: reused arena matches fresh system" seed)
        true
        (fresh_run seed = reused_run seed))
    [ 1L; 2L; 3L; 0xDEADL; 0x5EEDL ]

let test_sched_reset_process_count_mismatch () =
  let mem = Sim.Memory.create () in
  let regs = Array.init 4 (fun _ -> Sim.Register.create mem) in
  let sched = Sim.Sched.create (reuse_progs regs 4) in
  checkb "reset rejects a different process count" true
    (try
       Sim.Sched.reset sched (reuse_progs regs 2);
       false
     with Invalid_argument _ -> true)

(* {1 RMR accounting (cache-coherent model)} *)

let test_rmr_cached_reads_free () =
  let mem = Sim.Memory.create () in
  let r = Sim.Register.create mem in
  let prog ctx =
    ignore (Sim.Ctx.read ctx r);
    ignore (Sim.Ctx.read ctx r);
    ignore (Sim.Ctx.read ctx r);
    0
  in
  let sched = Sim.Sched.create [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "three steps" 3 (Sim.Sched.steps sched 0);
  checki "one RMR: later reads hit the cache" 1 (Sim.Sched.rmrs sched 0)

let test_rmr_write_invalidates () =
  (* p0 reads (cache), p1 writes (invalidate), p0 reads again: 2 RMRs. *)
  let mem = Sim.Memory.create () in
  let r = Sim.Register.create mem in
  let progs =
    [|
      (fun ctx ->
        ignore (Sim.Ctx.read ctx r);
        ignore (Sim.Ctx.read ctx r);
        0);
      (fun ctx -> Sim.Ctx.write ctx r 7; 0);
    |]
  in
  let sched = Sim.Sched.create progs in
  Sim.Sched.run sched (Sim.Adversary.fixed_schedule ~then_halt:false [| 0; 1; 0 |]);
  checki "p0: both reads remote" 2 (Sim.Sched.rmrs sched 0);
  checki "p1: one write RMR" 1 (Sim.Sched.rmrs sched 1)

let test_rmr_writes_always_count () =
  let mem = Sim.Memory.create () in
  let r = Sim.Register.create mem in
  let prog ctx =
    Sim.Ctx.write ctx r 1;
    Sim.Ctx.write ctx r 2;
    ignore (Sim.Ctx.read ctx r);
    0
  in
  let sched = Sim.Sched.create [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  (* Two writes are RMRs; the read hits the writer's own cached copy. *)
  checki "two RMRs" 2 (Sim.Sched.rmrs sched 0)

let test_rmr_max () =
  let mem = Sim.Memory.create () in
  let r = Sim.Register.create mem in
  let progs =
    Array.init 3 (fun i ctx ->
        for _ = 0 to i do
          Sim.Ctx.write ctx r i
        done;
        0)
  in
  let sched = Sim.Sched.create progs in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "max over processes" 3 (Sim.Sched.max_rmrs sched)

(* {1 Visibility (Section 5 relations)} *)

let visibility_trace () =
  (* p0 writes r0; p1 reads r0 (sees p0); p2 reads a fresh register
     (sees nobody). *)
  let mem = Sim.Memory.create () in
  let r0 = Sim.Register.create mem and r1 = Sim.Register.create mem in
  let progs =
    [|
      (fun ctx -> Sim.Ctx.write ctx r0 5; 0);
      (fun ctx -> Sim.Ctx.read ctx r0);
      (fun ctx -> Sim.Ctx.read ctx r1);
    |]
  in
  let sched = Sim.Sched.create ~record_trace:true progs in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  Sim.Sched.trace sched

let test_visibility_sees () =
  let trace = visibility_trace () in
  Alcotest.(check (list (pair int int)))
    "p1 sees p0 only" [ (1, 0) ] (Sim.Visibility.sees trace)

let test_visibility_groups () =
  let trace = visibility_trace () in
  let reps = Sim.Visibility.groups ~n:3 trace in
  checki "p0 and p1 grouped" reps.(0) reps.(1);
  checkb "p2 alone" true (reps.(2) <> reps.(0));
  checki "two groups" 2 (Sim.Visibility.group_count ~n:3 trace)

let test_visibility_saw_nobody () =
  let trace = visibility_trace () in
  Alcotest.(check (list int))
    "only p0 and p2 saw nobody" [ 0; 2 ]
    (Sim.Visibility.saw_nobody ~n:3 trace)

let test_visibility_empty_trace () =
  checki "n singletons" 4 (Sim.Visibility.group_count ~n:4 []);
  Alcotest.(check (list int))
    "all saw nobody" [ 0; 1; 2; 3 ]
    (Sim.Visibility.saw_nobody ~n:4 [])

let test_visibility_own_writes_invisible () =
  (* Reading your own write does not make you "see" anyone. *)
  let mem = Sim.Memory.create () in
  let r = Sim.Register.create mem in
  let prog ctx =
    Sim.Ctx.write ctx r 1;
    Sim.Ctx.read ctx r
  in
  let sched = Sim.Sched.create ~record_trace:true [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  Alcotest.(check (list (pair int int)))
    "no sightings" []
    (Sim.Visibility.sees (Sim.Sched.trace sched))

(* {1 Explorer} *)

let test_explore_counts () =
  (* One process, one flip with bound 2, depth 2: the root run plus one
     run per flip outcome (the flip is the only choice point besides the
     single-choice scheduling points). *)
  let programs () = [| (fun ctx -> Sim.Ctx.flip ctx 2) |] in
  let seen = ref [] in
  let n =
    Sim.Explore.explore ~depth:4 ~programs
      ~check:(fun sched ->
        seen := Option.get (Sim.Sched.result sched 0) :: !seen)
      ()
  in
  checkb "explored several paths" true (n >= 3);
  checkb "both outcomes seen" true
    (List.mem 0 !seen && List.mem 1 !seen)

let test_explore_schedules () =
  (* Two processes racing to write: exploration must produce executions
     where each wins the race. *)
  let outcomes = ref [] in
  let programs () =
    let mem = Sim.Memory.create () in
    let reg = Sim.Register.create mem in
    Array.init 2 (fun _ ctx ->
        let v = Sim.Ctx.read ctx reg in
        if v = 0 then Sim.Ctx.write ctx reg (Sim.Ctx.pid ctx + 1);
        v)
  in
  let _ =
    Sim.Explore.explore ~depth:6 ~programs
      ~check:(fun sched ->
        outcomes :=
          (Option.get (Sim.Sched.result sched 0),
           Option.get (Sim.Sched.result sched 1))
          :: !outcomes)
      ()
  in
  checkb "p1 sometimes sees p0's write" true (List.exists (fun (_, b) -> b > 0) !outcomes);
  checkb "p0 sometimes sees p1's write" true (List.exists (fun (a, _) -> a > 0) !outcomes);
  checkb "sometimes neither sees" true (List.mem (0, 0) !outcomes)

(* A deliberately unsafe 2-process duel (the pre-fix Le2 with win
   threshold -2): the checker must find and shrink a two-winner
   execution. *)
let buggy_duel_programs () =
  let mem = Sim.Memory.create () in
  let a = Sim.Register.create mem and b = Sim.Register.create mem in
  Array.init 2 (fun port ctx ->
      let mine, other = if port = 0 then (a, b) else (b, a) in
      let rec loop pos =
        let o = Sim.Ctx.read ctx other in
        if o >= pos + 2 then 0
        else if o <= pos - 2 then 1
        else begin
          let pos' = pos + (if Sim.Ctx.flip_bool ctx then 1 else 0) in
          if pos' > pos then Sim.Ctx.write ctx mine pos';
          loop pos'
        end
      in
      loop 0)

let two_winner_check sched =
  let winners =
    Array.fold_left
      (fun a r -> if r = Some 1 then a + 1 else a)
      0 (Sim.Sched.results sched)
  in
  if winners > 1 then failwith "two winners"

let test_find_violation_on_buggy_protocol () =
  match
    Sim.Explore.find_violation ~depth:12 ~programs:buggy_duel_programs
      ~check:two_winner_check ()
  with
  | None -> Alcotest.fail "expected to find the two-winner violation"
  | Some v ->
      checkb "message mentions the failure" true
        (let m = v.Sim.Explore.message in
         String.length m > 0);
      checkb "found within bounded executions" true (v.Sim.Explore.executions > 0);
      (* The shrunk path must still reproduce the violation via replay. *)
      let sched =
        Sim.Explore.replay ~path:v.Sim.Explore.path
          ~programs:buggy_duel_programs ()
      in
      checkb "replay reproduces" true
        (try
           two_winner_check sched;
           false
         with Failure _ -> true)

(* {2 Crash-aware exploration} *)

let test_explore_crash_budget () =
  (* With [max_crashes = 1] some explored executions crash a process,
     and none crashes more than the budget. *)
  let programs () =
    let mem = Sim.Memory.create () in
    let reg = Sim.Register.create mem in
    Array.init 3 (fun _ -> incr_prog reg)
  in
  let crashed_runs = ref 0 and over_budget = ref false in
  let n =
    Sim.Explore.explore ~depth:4 ~max_crashes:1 ~programs
      ~check:(fun sched ->
        let c = ref 0 in
        for pid = 0 to 2 do
          if Sim.Sched.status sched pid = Sim.Sched.Crashed then incr c
        done;
        if !c > 0 then incr crashed_runs;
        if !c > 1 then over_budget := true)
      ()
  in
  checkb "explored" true (n > 10);
  checkb "some runs crash a process" true (!crashed_runs > 0);
  checkb "never beyond the budget" false !over_budget

let test_explore_no_crashes_by_default () =
  (* [max_crashes] defaults to 0: choice-point numbering and arity are
     exactly the crash-free ones, and nobody ever crashes. *)
  let programs () =
    let mem = Sim.Memory.create () in
    let reg = Sim.Register.create mem in
    Array.init 2 (fun _ -> incr_prog reg)
  in
  let _ =
    Sim.Explore.explore ~depth:4 ~programs
      ~check:(fun sched ->
        for pid = 0 to 1 do
          checkb "no crash" false (Sim.Sched.status sched pid = Sim.Sched.Crashed)
        done)
      ()
  in
  ()

(* A deliberately broken handoff protocol with a {e crash-only} safety
   bug: p0 announces itself then spins until p1's signal arrives; p1
   just signals. Crash-free every fair execution terminates, but if p1
   crashes before writing, p0 spins forever — a lost wakeup only
   crash-aware exploration can expose (as a blown step budget). This is
   precisely the failure mode RatRace's backup structure guards
   against. *)
let handoff_programs () =
  let mem = Sim.Memory.create () in
  let a = Sim.Register.create mem and b = Sim.Register.create mem in
  [|
    (fun ctx ->
      Sim.Ctx.write ctx a 1;
      let rec wait () = if Sim.Ctx.read ctx b = 0 then wait () else 0 in
      wait ());
    (fun ctx ->
      Sim.Ctx.write ctx b 1;
      0);
  |]

let test_find_violation_crash_only_bug () =
  (* Without crashes the protocol is fine in the bounded space... *)
  checkb "no crash-free violation" true
    (Sim.Explore.find_violation ~depth:4 ~max_total_steps:400
       ~programs:handoff_programs
       ~check:(fun _ -> ())
       ()
    = None);
  (* ...but one crash suffices, and the violating path shrinks to the
     single "crash p1 now" decision. *)
  match
    Sim.Explore.find_violation ~depth:4 ~max_crashes:1 ~max_total_steps:400
      ~programs:handoff_programs
      ~check:(fun _ -> ())
      ()
  with
  | None -> Alcotest.fail "expected a crash-induced livelock violation"
  | Some v ->
      checkb "shrunk to very few choices" true (Array.length v.Sim.Explore.path <= 2);
      checkb "message mentions the step budget" true
        (String.length v.Sim.Explore.message > 0);
      (* Replay (with the same crash budget) reproduces the divergence. *)
      checkb "replay reproduces the livelock" true
        (try
           ignore
             (Sim.Explore.replay ~max_crashes:1 ~max_total_steps:400
                ~path:v.Sim.Explore.path ~programs:handoff_programs ());
           false
         with Failure _ -> true)

let test_find_violation_none_on_correct_protocol () =
  (* The fixed duel (thresholds -3/+2) admits no violation in the same
     bounded space. *)
  let fixed () =
    let mem = Sim.Memory.create () in
    let a = Sim.Register.create mem and b = Sim.Register.create mem in
    Array.init 2 (fun port ctx ->
        let mine, other = if port = 0 then (a, b) else (b, a) in
        let rec loop pos =
          let o = Sim.Ctx.read ctx other in
          if o >= pos + 2 then 0
          else if o <= pos - 3 then 1
          else begin
            let pos' = pos + (if Sim.Ctx.flip_bool ctx then 1 else 0) in
            if pos' > pos then Sim.Ctx.write ctx mine pos';
            loop pos'
          end
        in
        loop 0)
  in
  checkb "no violation found" true
    (Sim.Explore.find_violation ~depth:12 ~programs:fixed
       ~check:two_winner_check ()
    = None)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          Alcotest.test_case "geometric support" `Quick test_rng_geometric_support;
          Alcotest.test_case "geometric distribution" `Quick test_rng_geometric_distribution;
          Alcotest.test_case "geometric cap" `Quick test_rng_geometric_cap;
          Alcotest.test_case "adjacent streams disjoint" `Quick
            test_rng_derive_adjacent_disjoint;
          Alcotest.test_case "reseed matches fresh" `Quick
            test_rng_reseed_matches_fresh;
        ] );
      ( "memory",
        [
          Alcotest.test_case "counts" `Quick test_memory_counts;
          Alcotest.test_case "register initial" `Quick test_register_initial;
          Alcotest.test_case "register write" `Quick test_register_write;
          Alcotest.test_case "ids unique" `Quick test_register_ids_unique;
          Alcotest.test_case "arena reset" `Quick test_memory_reset;
        ] );
      ( "sched",
        [
          Alcotest.test_case "round robin" `Quick test_sched_round_robin;
          Alcotest.test_case "reads before writes" `Quick test_sched_sequential_results;
          Alcotest.test_case "fixed schedule" `Quick test_sched_fixed_schedule;
          Alcotest.test_case "fixed schedule halts" `Quick test_sched_fixed_schedule_halts;
          Alcotest.test_case "crash" `Quick test_sched_crash;
          Alcotest.test_case "pending ops" `Quick test_sched_pending_before_step;
          Alcotest.test_case "view filtering" `Quick test_view_filtering;
          Alcotest.test_case "trace recording" `Quick test_trace_recording;
          Alcotest.test_case "trace off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "flips recorded" `Quick test_flips_recorded;
          Alcotest.test_case "flip oracle" `Quick test_flip_oracle;
          Alcotest.test_case "first/finish times" `Quick test_first_and_finish_times;
          Alcotest.test_case "crash injection" `Quick test_with_crashes;
          Alcotest.test_case "livelock guard" `Quick test_max_total_steps;
          Alcotest.test_case "step bound is inclusive" `Quick
            test_max_total_steps_boundary;
          Alcotest.test_case "reset bit-identical to fresh" `Quick
            test_sched_reset_bit_identical;
          Alcotest.test_case "reset rejects size change" `Quick
            test_sched_reset_process_count_mismatch;
        ] );
      ( "rmr",
        [
          Alcotest.test_case "cached reads free" `Quick test_rmr_cached_reads_free;
          Alcotest.test_case "write invalidates" `Quick test_rmr_write_invalidates;
          Alcotest.test_case "writes always count" `Quick test_rmr_writes_always_count;
          Alcotest.test_case "max over processes" `Quick test_rmr_max;
        ] );
      ( "visibility",
        [
          Alcotest.test_case "sees" `Quick test_visibility_sees;
          Alcotest.test_case "groups" `Quick test_visibility_groups;
          Alcotest.test_case "saw nobody" `Quick test_visibility_saw_nobody;
          Alcotest.test_case "empty trace" `Quick test_visibility_empty_trace;
          Alcotest.test_case "own writes invisible" `Quick
            test_visibility_own_writes_invisible;
        ] );
      ( "explore",
        [
          Alcotest.test_case "flip branching" `Quick test_explore_counts;
          Alcotest.test_case "schedule branching" `Quick test_explore_schedules;
          Alcotest.test_case "find violation + shrink" `Quick
            test_find_violation_on_buggy_protocol;
          Alcotest.test_case "no false positives" `Quick
            test_find_violation_none_on_correct_protocol;
          Alcotest.test_case "crash budget respected" `Quick
            test_explore_crash_budget;
          Alcotest.test_case "no crashes by default" `Quick
            test_explore_no_crashes_by_default;
          Alcotest.test_case "crash-only bug found + shrunk" `Quick
            test_find_violation_crash_only_bug;
        ] );
    ]
