(* Tests for the parallel trial engine: the determinism contract
   (bit-identical results for every domain count), seed derivation, the
   mergeable reducer, parallel exploration, and the simulator hot-path
   rewrites the engine leans on (bitset RMR caches, array statistics). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Rng.derive} *)

let test_derive_deterministic () =
  for stream = 0 to 50 do
    Alcotest.check Alcotest.int64 "same inputs, same seed"
      (Sim.Rng.derive 42L ~stream)
      (Sim.Rng.derive 42L ~stream)
  done

let test_derive_streams_distinct () =
  (* Distinct streams from one seed must give distinct sub-seeds (the
     mix is injective in the stream for a fixed seed). *)
  let tbl = Hashtbl.create 1024 in
  for stream = 0 to 999 do
    Hashtbl.replace tbl (Sim.Rng.derive 0xFEEDL ~stream) ()
  done;
  checki "1000 streams, 1000 sub-seeds" 1000 (Hashtbl.length tbl)

let test_derive_differs_from_seed () =
  checkb "stream 0 is not the identity" true
    (Sim.Rng.derive 7L ~stream:0 <> 7L)

(* {1 Engine.run: bit-identical across domain counts} *)

(* A trial that actually exercises the simulator: one log* election,
   returning exact integers so equality is bit-level. *)
let election_trial ~trial:_ ~seed =
  let o =
    Rtas.Election.run ~seed:(Sim.Rng.derive seed ~stream:0)
      ~adversary:
        (Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive seed ~stream:1))
      ~algorithm:"log*" ~n:32 ~k:8 ()
  in
  (o.Rtas.Election.max_steps, o.Rtas.Election.max_rmrs)

let test_run_domain_independent () =
  let r1 = Engine.run ~domains:1 ~trials:24 ~seed:3L election_trial in
  let r4 = Engine.run ~domains:4 ~trials:24 ~seed:3L election_trial in
  checkb "domains:1 = domains:4" true (r1 = r4)

let test_run_chunk_independent () =
  let a = Engine.run ~domains:4 ~chunk:1 ~trials:17 ~seed:9L election_trial in
  let b = Engine.run ~domains:2 ~chunk:5 ~trials:17 ~seed:9L election_trial in
  checkb "chunking does not leak into results" true (a = b)

let test_run_trial_indices () =
  let r =
    Engine.run ~domains:3 ~trials:10 ~seed:0L (fun ~trial ~seed:_ -> trial)
  in
  Alcotest.(check (array int)) "slot t holds trial t"
    (Array.init 10 (fun i -> i))
    r

let test_run_seeds_are_derived () =
  let r =
    Engine.run ~domains:2 ~trials:8 ~seed:5L (fun ~trial:_ ~seed -> seed)
  in
  Array.iteri
    (fun t s ->
      Alcotest.check Alcotest.int64 "seed of trial t" (Sim.Rng.derive 5L ~stream:t) s)
    r

let test_run_exception_propagates () =
  checkb "trial exception re-raised after join" true
    (try
       ignore
         (Engine.run ~domains:2 ~trials:8 ~seed:0L (fun ~trial ~seed:_ ->
              if trial = 5 then failwith "boom" else trial));
       false
     with Failure m -> m = "boom")

let test_reduce_matches_fold () =
  let reducer =
    { Engine.empty = (fun () -> []); add = (fun acc x -> x :: acc);
      merge = (fun a b -> b @ a) }
  in
  (* The reducer builds the reversed trial list; merged in chunk order
     it must equal the sequential fold for any domains/chunk split. *)
  let expect =
    Engine.fold ~domains:1 ~trials:30 ~seed:2L ~init:[]
      ~add:(fun acc x -> x :: acc)
      election_trial
  in
  List.iter
    (fun (domains, chunk) ->
      let got =
        Engine.reduce ~domains ?chunk ~trials:30 ~seed:2L ~reducer
          election_trial
      in
      checkb "reduce = sequential fold" true (got = expect))
    [ (1, None); (4, None); (3, Some 1); (2, Some 7) ]

let test_reduce_noncommutative () =
  (* String concatenation: associative, identity "", emphatically not
     commutative. Any reordering of trials or chunk merges shows up as a
     scrambled word. *)
  let reducer =
    {
      Engine.empty = (fun () -> "");
      add = (fun acc x -> acc ^ x);
      merge = ( ^ );
    }
  in
  let letter ~trial ~seed:_ =
    String.make 1 (Char.chr (Char.code 'a' + (trial mod 26)))
  in
  let expect = String.init 60 (fun t -> Char.chr (Char.code 'a' + (t mod 26))) in
  List.iter
    (fun (domains, chunk) ->
      Alcotest.(check string)
        (Printf.sprintf "order preserved at domains=%d" domains)
        expect
        (Engine.reduce ~domains ?chunk ~trials:60 ~seed:6L ~reducer letter))
    [ (1, None); (4, None); (3, Some 1); (2, Some 7); (5, Some 13) ]

let test_mean_domain_independent () =
  let f ~trial:_ ~seed = Int64.to_float (Int64.rem seed 1000L) in
  let m1 = Engine.mean ~domains:1 ~trials:50 ~seed:4L f in
  let m4 = Engine.mean ~domains:4 ~trials:50 ~seed:4L f in
  checkb "identical float mean" true (m1 = m4)

(* {1 Unboxed sinks and the arena-reuse hot path} *)

let test_run_float_matches_run () =
  let f ~trial ~seed =
    Int64.to_float (Int64.rem seed 1000L) +. (float_of_int trial /. 7.0)
  in
  let boxed = Engine.run ~domains:1 ~trials:40 ~seed:8L f in
  List.iter
    (fun domains ->
      let fa = Engine.run_float ~domains ~trials:40 ~seed:8L
          ~local:(fun () -> ()) (fun () -> f)
      in
      checki "length" 40 (Float.Array.length fa);
      for t = 0 to 39 do
        checkb "slot t bit-identical to boxed run" true
          (Float.Array.get fa t = boxed.(t))
      done)
    [ 1; 4 ]

let test_run_into_writer () =
  let sink = Array.make 30 (-1) in
  let stats =
    Engine.run_into ~domains:3 ~chunk:4 ~trials:30 ~seed:10L
      ~local:(fun () -> ())
      (fun () ~trial ~seed:_ -> sink.(trial) <- trial * trial)
  in
  Alcotest.(check (array int)) "writer fills caller's sink"
    (Array.init 30 (fun t -> t * t))
    sink;
  let total =
    Array.fold_left (fun a (w : Engine.worker_stats) -> a + w.Engine.w_trials)
      0 stats
  in
  checki "worker trial counts sum to the batch" 30 total;
  let chunks =
    Array.fold_left (fun a (w : Engine.worker_stats) -> a + w.Engine.w_chunks)
      0 stats
  in
  checki "chunk counts cover the batch" ((30 + 3) / 4) chunks

let test_run_local_arena_per_worker () =
  (* Each worker gets exactly one arena: with domains:1 every trial sees
     the same one, and mutating it between trials is visible (that is
     the whole point — reuse instead of rebuild). *)
  let built = Atomic.make 0 in
  let r =
    Engine.run_local ~domains:1 ~trials:12 ~seed:11L
      ~local:(fun () ->
        Atomic.incr built;
        ref 0)
      (fun cell ~trial:_ ~seed:_ ->
        incr cell;
        !cell)
  in
  checki "one arena for the single worker" 1 (Atomic.get built);
  Alcotest.(check (array int)) "arena state carries across trials"
    (Array.init 12 (fun i -> i + 1))
    r

let test_perf_arena_reuse_matches_fresh () =
  (* The benchmark workload itself: a reused arena must reproduce the
     trial-by-trial outputs of freshly built systems. *)
  let arena = Experiments.make_perf_arena () in
  for trial = 0 to 4 do
    let seed = Sim.Rng.derive Experiments.base_seed ~stream:trial in
    let reused = Experiments.perf_trial arena ~seed in
    let fresh_arena = Experiments.make_perf_arena () in
    let fresh = Experiments.perf_trial fresh_arena ~seed in
    checkb
      (Printf.sprintf "trial %d: reused = fresh" trial)
      true (reused = fresh)
  done

(* {1 Aggregated tables: chaos reports across domain counts} *)

let test_chaos_report_domain_independent () =
  let point ~domains =
    Fault.Chaos.run_point ~timeout:10.0 ~retries:1 ~domains ~mode:Fault.Chaos.Tas
      ~algorithm:"tournament" ~n:16 ~k:8 ~crash_prob:0.1 ~trials:12 ~seed:21L
      ()
  in
  let a = point ~domains:1 and b = point ~domains:4 in
  (* [max_elapsed] is wall-clock, hence not deterministic; every
     model-level field must match exactly. *)
  checki "crashes" a.Fault.Chaos.crashes b.Fault.Chaos.crashes;
  checki "violations" a.Fault.Chaos.violations b.Fault.Chaos.violations;
  checki "timeouts" a.Fault.Chaos.timeouts b.Fault.Chaos.timeouts;
  checkb "failure seeds" true
    (a.Fault.Chaos.failure_seeds = b.Fault.Chaos.failure_seeds);
  checkb "mean steps" true (a.Fault.Chaos.mean_steps = b.Fault.Chaos.mean_steps)

(* {1 Engine.explore vs sequential exploration} *)

let duel_programs () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2.create mem in
  Array.init 2 (fun _ ctx ->
      if Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx) then 1 else 0)

let test_explore_matches_sequential () =
  let winners = Atomic.make 0 and paths = Atomic.make 0 in
  let check sched =
    Atomic.incr paths;
    let w =
      Array.fold_left
        (fun acc r -> if r = Some 1 then acc + 1 else acc)
        0
        (Sim.Sched.results sched)
    in
    if w <> 1 then Alcotest.failf "expected a unique winner, got %d" w;
    ignore (Atomic.fetch_and_add winners w)
  in
  let sequential =
    Sim.Explore.explore ~depth:6 ~programs:duel_programs ~check ()
  in
  let seen_seq = Atomic.get paths in
  Atomic.set paths 0;
  Atomic.set winners 0;
  let parallel =
    Engine.explore ~domains:4 ~depth:6 ~programs:duel_programs ~check ()
  in
  checki "same number of executions" sequential parallel.Engine.executions;
  checkb "exhaustive search is not truncated" false parallel.Engine.truncated;
  checki "check ran once per execution" seen_seq (Atomic.get paths);
  checki "one winner per execution" seen_seq (Atomic.get winners)

let test_explore_crash_subtrees () =
  let count = Atomic.make 0 in
  let check _ = Atomic.incr count in
  let sequential =
    Sim.Explore.explore ~max_crashes:1 ~depth:4 ~programs:duel_programs ~check
      ()
  in
  Atomic.set count 0;
  let parallel =
    Engine.explore ~domains:3 ~max_crashes:1 ~depth:4 ~programs:duel_programs
      ~check ()
  in
  checki "crash-aware counts agree" sequential parallel.Engine.executions;
  checkb "exhaustive search is not truncated" false parallel.Engine.truncated;
  checki "checked every execution" parallel.Engine.executions (Atomic.get count)

let test_explore_truncation_reported () =
  (* A budget far below the tree size must be reported, never silently
     swallowed (the duel tree at depth 6 has hundreds of executions). *)
  List.iter
    (fun domains ->
      let r =
        Engine.explore ~domains ~max_paths:5 ~depth:6 ~programs:duel_programs
          ~check:(fun _ -> ())
          ()
      in
      checkb
        (Printf.sprintf "domains=%d: truncation is flagged" domains)
        true r.Engine.truncated;
      checkb "budget respected" true (r.Engine.executions <= 5))
    [ 1; 4 ]

(* {1 RMR accounting: bitset caches vs a Hashtbl reference}

   The scheduler now tracks CC-model cache validity in per-register
   bitsets. Recompute the per-process RMR counts from a recorded trace
   with the original lazily-grown Hashtbl structure and demand they
   agree. *)

let rmrs_reference events n =
  let caches : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let rmrs = Array.make n 0 in
  let cache reg =
    match Hashtbl.find_opt caches reg with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.add caches reg t;
        t
  in
  List.iter
    (function
      | Sim.Op.Step { pid; reg; kind = Sim.Op.Read; _ } ->
          let t = cache reg in
          if not (Hashtbl.mem t pid) then begin
            rmrs.(pid) <- rmrs.(pid) + 1;
            Hashtbl.replace t pid ()
          end
      | Sim.Op.Step { pid; reg; kind = Sim.Op.Write _; _ } ->
          let t = cache reg in
          Hashtbl.reset t;
          Hashtbl.replace t pid ();
          rmrs.(pid) <- rmrs.(pid) + 1
      | _ -> ())
    events;
  rmrs

let test_rmr_bitset_matches_hashtbl () =
  List.iter
    (fun (algorithm, n, k, seed) ->
      let adversary =
        Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive seed ~stream:1)
      in
      let entry = Option.get (Rtas.Registry.find algorithm) in
      let mem = Sim.Memory.create () in
      let le = entry.Rtas.Registry.make mem ~n in
      let sched =
        Sim.Sched.create ~seed ~record_trace:true
          (Leaderelect.Le.programs le ~k)
      in
      Sim.Sched.run sched adversary;
      let expect = rmrs_reference (Sim.Sched.trace sched) k in
      for pid = 0 to k - 1 do
        checki
          (Printf.sprintf "%s: rmrs of p%d" algorithm pid)
          expect.(pid)
          (Sim.Sched.rmrs sched pid)
      done)
    [
      ("log*", 64, 16, 13L);
      ("tournament", 32, 32, 14L);
      ("ratrace-lean", 64, 24, 15L);
      ("loglog", 64, 16, 16L);
    ]

(* {1 Stats: array implementations vs naive references} *)

let naive_percentile p l =
  let sorted = List.sort compare l in
  let n = List.length sorted in
  let rank =
    max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  List.nth sorted rank

let test_stats_percentile_matches_naive () =
  let rng = Sim.Rng.create 77L in
  for _ = 1 to 20 do
    let l =
      List.init (1 + Sim.Rng.int rng 40) (fun _ ->
          float_of_int (Sim.Rng.int rng 1000))
    in
    List.iter
      (fun p ->
        Alcotest.(check (float 0.0))
          "percentile" (naive_percentile p l)
          (Sim.Stats.percentile l p))
      [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]
  done

let test_stats_summary_matches_naive () =
  let l = List.init 101 (fun i -> float_of_int ((i * 37) mod 101)) in
  let s = Sim.Stats.summarize l in
  let n = float_of_int (List.length l) in
  let mean = List.fold_left ( +. ) 0.0 l /. n in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 l /. (n -. 1.0)
  in
  Alcotest.(check (float 1e-9)) "mean" mean s.Sim.Stats.mean;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt var) s.Sim.Stats.stddev;
  Alcotest.(check (float 0.0)) "min" 0.0 s.Sim.Stats.min;
  Alcotest.(check (float 0.0)) "max" 100.0 s.Sim.Stats.max;
  Alcotest.(check (float 0.0))
    "median" (naive_percentile 0.5 l) s.Sim.Stats.median;
  Alcotest.(check (float 0.0)) "p95" (naive_percentile 0.95 l) s.Sim.Stats.p95

let test_stats_array_agrees_with_list () =
  let l = List.init 57 (fun i -> float_of_int ((i * 13) mod 57)) in
  let a = Array.of_list l in
  let sa = Sim.Stats.summarize_array a in
  let sl = Sim.Stats.summarize l in
  checkb "array and list summaries agree" true (sa = sl);
  Alcotest.(check (float 0.0))
    "mean_array" (Sim.Stats.mean l) (Sim.Stats.mean_array a)

let test_stats_p999_matches_naive () =
  let rng = Sim.Rng.create 177L in
  List.iter
    (fun n ->
      let l = List.init n (fun _ -> float_of_int (Sim.Rng.int rng 100_000)) in
      let s = Sim.Stats.summarize l in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p999 at n=%d" n)
        (naive_percentile 0.999 l) s.Sim.Stats.p999;
      (* Below 1000 samples the 99.9th nearest-rank percentile is the
         maximum — pin that reading down explicitly. *)
      if n < 1000 then
        Alcotest.(check (float 0.0)) "p999 = max below 1000 samples"
          s.Sim.Stats.max s.Sim.Stats.p999)
    [ 1; 7; 999; 1000; 1001; 5000 ]

let test_stats_percentile_edge_cases () =
  Alcotest.check_raises "empty sample raises"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Sim.Stats.percentile_sorted [||] 0.5));
  Alcotest.check_raises "p out of range raises"
    (Invalid_argument "Stats.percentile: p must be in [0, 1]") (fun () ->
      ignore (Sim.Stats.percentile_sorted [| 1.0 |] 1.5));
  (* A single element is every percentile. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        "singleton" 42.0
        (Sim.Stats.percentile_sorted [| 42.0 |] p))
    [ 0.0; 0.5; 0.999; 1.0 ];
  Alcotest.(check (option (float 0.0)))
    "opt empty" None
    (Sim.Stats.percentile_sorted_opt [||] 0.5);
  Alcotest.(check (option (float 0.0)))
    "opt singleton" (Some 3.0)
    (Sim.Stats.percentile_sorted_opt [| 3.0 |] 0.999)

let () =
  Alcotest.run "engine"
    [
      ( "derive",
        [
          Alcotest.test_case "deterministic" `Quick test_derive_deterministic;
          Alcotest.test_case "streams distinct" `Quick
            test_derive_streams_distinct;
          Alcotest.test_case "not identity" `Quick test_derive_differs_from_seed;
        ] );
      ( "run",
        [
          Alcotest.test_case "domain independent" `Quick
            test_run_domain_independent;
          Alcotest.test_case "chunk independent" `Quick
            test_run_chunk_independent;
          Alcotest.test_case "trial indices" `Quick test_run_trial_indices;
          Alcotest.test_case "derived seeds" `Quick test_run_seeds_are_derived;
          Alcotest.test_case "exception propagates" `Quick
            test_run_exception_propagates;
          Alcotest.test_case "reduce = fold" `Quick test_reduce_matches_fold;
          Alcotest.test_case "non-commutative reduce ordered" `Quick
            test_reduce_noncommutative;
          Alcotest.test_case "mean domain independent" `Quick
            test_mean_domain_independent;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "run_float matches run" `Quick
            test_run_float_matches_run;
          Alcotest.test_case "run_into writer + stats" `Quick
            test_run_into_writer;
          Alcotest.test_case "one arena per worker" `Quick
            test_run_local_arena_per_worker;
          Alcotest.test_case "perf arena reuse = fresh" `Quick
            test_perf_arena_reuse_matches_fresh;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "chaos report domain independent" `Quick
            test_chaos_report_domain_independent;
        ] );
      ( "explore",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_explore_matches_sequential;
          Alcotest.test_case "crash subtrees" `Quick test_explore_crash_subtrees;
          Alcotest.test_case "truncation reported" `Quick
            test_explore_truncation_reported;
        ] );
      ( "rmr",
        [
          Alcotest.test_case "bitset matches hashtbl" `Quick
            test_rmr_bitset_matches_hashtbl;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile vs naive" `Quick
            test_stats_percentile_matches_naive;
          Alcotest.test_case "summary vs naive" `Quick
            test_stats_summary_matches_naive;
          Alcotest.test_case "array agrees with list" `Quick
            test_stats_array_agrees_with_list;
          Alcotest.test_case "p999 vs naive" `Quick test_stats_p999_matches_naive;
          Alcotest.test_case "percentile edge cases" `Quick
            test_stats_percentile_edge_cases;
        ] );
    ]
