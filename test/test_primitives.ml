(* Tests for splitters, 2-/3-process leader election and TAS-from-LE.

   The Le2 protocol is safety-critical (everything above it depends on
   "at most one winner"), so besides unit tests we model-check it: every
   resolution of the first D scheduling/coin choices is explored
   exhaustively. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let count_winners sched =
  Array.fold_left
    (fun acc r -> match r with Some 1 -> acc + 1 | _ -> acc)
    0
    (Sim.Sched.results sched)

let all_finished sched =
  Array.for_all Option.is_some (Sim.Sched.results sched)

(* {1 Deterministic splitter} *)

let splitter_outcome_code = function
  | Primitives.Splitter.L -> 0
  | Primitives.Splitter.R -> 1
  | Primitives.Splitter.S -> 2

let splitter_programs k () =
  let mem = Sim.Memory.create () in
  let sp = Primitives.Splitter.create mem in
  Array.init k (fun _ ctx ->
      splitter_outcome_code (Primitives.Splitter.split sp ctx))

let check_splitter_outcomes k sched =
  if all_finished sched then begin
    let outcomes = Array.map Option.get (Sim.Sched.results sched) in
    let count c = Array.fold_left (fun a o -> if o = c then a + 1 else a) 0 outcomes in
    if count 2 > 1 then Alcotest.fail "more than one S";
    if count 0 > k - 1 then Alcotest.fail "all got L";
    if count 1 > k - 1 then Alcotest.fail "all got R"
  end

let test_splitter_solo () =
  let sched = Sim.Sched.create (splitter_programs 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo caller stops" 2 (Option.get (Sim.Sched.result sched 0))

let test_splitter_explore_2 () =
  let n =
    Sim.Explore.explore ~depth:8 ~programs:(splitter_programs 2)
      ~check:(check_splitter_outcomes 2) ()
  in
  checkb "explored many executions" true (n > 50)

let test_splitter_explore_3 () =
  let n =
    Sim.Explore.explore ~depth:9 ~programs:(splitter_programs 3)
      ~check:(check_splitter_outcomes 3) ()
  in
  checkb "explored many executions" true (n > 500)

let test_splitter_random_many () =
  (* 16 processes under random oblivious schedules. *)
  for seed = 1 to 50 do
    let sched = Sim.Sched.create (splitter_programs 16 ()) in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int seed));
    check_splitter_outcomes 16 sched
  done

let test_splitter_crash_exhaustive () =
  (* Every bounded crash schedule (up to 2 crashes anywhere in the first
     8 choices): never two processes stop at the same splitter. *)
  let n =
    Sim.Explore.explore ~depth:8 ~max_crashes:2 ~programs:(splitter_programs 2)
      ~check:(fun sched ->
        let stops =
          Array.fold_left
            (fun a r -> if r = Some 2 then a + 1 else a)
            0 (Sim.Sched.results sched)
        in
        if stops > 1 then Alcotest.fail "two processes stopped")
      ()
  in
  checkb "explored" true (n > 100)

let test_splitter_space () =
  let mem = Sim.Memory.create () in
  let _ = Primitives.Splitter.create mem in
  checki "O(1) registers" 2 (Sim.Memory.allocated mem)

let test_splitter_sequential_later_callers_lose () =
  (* If callers run one after the other, the first stops and the rest
     cannot stop. *)
  let sched = Sim.Sched.create (splitter_programs 3 ()) in
  Sim.Sched.run sched
    (Sim.Adversary.fixed_schedule ~then_halt:false
       [| 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2 |]);
  checki "first stops" 2 (Option.get (Sim.Sched.result sched 0));
  checkb "second does not stop" true (Option.get (Sim.Sched.result sched 1) <> 2);
  checkb "third does not stop" true (Option.get (Sim.Sched.result sched 2) <> 2)

(* {1 Randomized splitter} *)

let rsplitter_programs k () =
  let mem = Sim.Memory.create () in
  let sp = Primitives.Rsplitter.create mem in
  Array.init k (fun _ ctx ->
      splitter_outcome_code (Primitives.Rsplitter.split sp ctx))

let test_rsplitter_solo () =
  let sched = Sim.Sched.create (rsplitter_programs 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo caller stops" 2 (Option.get (Sim.Sched.result sched 0))

let test_rsplitter_at_most_one_s () =
  let n =
    Sim.Explore.explore ~depth:8 ~programs:(rsplitter_programs 2)
      ~check:(fun sched ->
        if all_finished sched then begin
          let stops =
            Array.fold_left
              (fun a r -> if r = Some 2 then a + 1 else a)
              0 (Sim.Sched.results sched)
          in
          if stops > 1 then Alcotest.fail "two processes stopped"
        end)
      ()
  in
  checkb "explored" true (n > 50)

let test_rsplitter_both_directions_possible () =
  (* Unlike the deterministic splitter, both callers can end up on the
     same side; check both L-L and R-R occur over random runs. *)
  let seen = Hashtbl.create 4 in
  for seed = 1 to 200 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int (seed * 31)) (rsplitter_programs 2 ())
    in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:(Int64.of_int seed));
    let a = Option.get (Sim.Sched.result sched 0)
    and b = Option.get (Sim.Sched.result sched 1) in
    Hashtbl.replace seen (a, b) ()
  done;
  checkb "some same-side outcome occurs" true
    (Hashtbl.mem seen (0, 0) || Hashtbl.mem seen (1, 1))

(* {1 Le2: the randomized 2-process duel} *)

let le2_programs ?(ports = [| 0; 1 |]) () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2.create mem in
  Array.map
    (fun port ctx -> if Primitives.Le2.elect le ctx ~port then 1 else 0)
    ports

let check_le2 sched =
  let winners = count_winners sched in
  if winners > 1 then Alcotest.fail "two winners";
  if all_finished sched && winners <> 1 then
    Alcotest.fail "crash-free execution without a winner"

let test_le2_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:18 ~programs:(fun () -> le2_programs ()) ~check:check_le2 ()
  in
  checkb "explored thousands of executions" true (n > 100_000)

let test_le2_random_deep () =
  for seed = 1 to 2000 do
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (le2_programs ()) in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7 + 1)));
    check_le2 sched
  done

let test_le2_solo_wins () =
  for port = 0 to 1 do
    let mem = Sim.Memory.create () in
    let le = Primitives.Le2.create mem in
    let prog ctx = if Primitives.Le2.elect le ctx ~port then 1 else 0 in
    let sched = Sim.Sched.create [| prog |] in
    Sim.Sched.run sched (Sim.Adversary.round_robin ());
    checki "solo process wins" 1 (Option.get (Sim.Sched.result sched 0))
  done

let test_le2_survivor_decides_after_crash () =
  (* Crash p1 after each possible number of steps; p0 must still finish,
     and there must never be two winners. *)
  for crash_after = 0 to 12 do
    for seed = 1 to 50 do
      let sched =
        Sim.Sched.create ~seed:(Int64.of_int (seed + (crash_after * 100)))
          (le2_programs ())
      in
      let adv =
        Sim.Adversary.with_crashes [ (1, crash_after) ]
          (Sim.Adversary.round_robin ())
      in
      Sim.Sched.run sched adv;
      checkb "p0 finished" true (Sim.Sched.result sched 0 <> None);
      checkb "at most one winner" true (count_winners sched <= 1)
    done
  done

let test_le2_crash_exhaustive () =
  (* Model-check the crash model itself: every resolution of the first
     8 choices — scheduling, coins, or "crash one of the runnable
     processes" (up to one crash) — keeps at-most-one-winner, and a
     fully finished execution still elects somebody. *)
  let n =
    Sim.Explore.explore ~depth:10 ~max_crashes:1
      ~programs:(fun () -> le2_programs ())
      ~check:check_le2 ()
  in
  checkb (Printf.sprintf "explored %d crash schedules" n) true (n > 5_000)

let test_le2_expected_steps_constant () =
  (* Average steps of the max-steps process over random schedules must be
     a small constant. *)
  let total = ref 0 in
  let trials = 500 in
  for seed = 1 to trials do
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (le2_programs ()) in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
    total := !total + Sim.Sched.max_steps sched
  done;
  let avg = float_of_int !total /. float_of_int trials in
  checkb (Printf.sprintf "avg max steps %.2f < 25" avg) true (avg < 25.0)

let test_le2_space () =
  let mem = Sim.Memory.create () in
  let _ = Primitives.Le2.create mem in
  checki "2 registers" 2 (Sim.Memory.allocated mem)

let test_le2_bad_port () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2.create mem in
  let prog ctx = if Primitives.Le2.elect le ctx ~port:2 then 1 else 0 in
  (* The argument check fires during [create], which runs each program up
     to its first shared-memory operation. *)
  checkb "rejects bad port" true
    (try
       ignore (Sim.Sched.create [| prog |]);
       false
     with Invalid_argument _ -> true)

(* {1 Le2_bounded: the duel with constant-size registers} *)

let le2b_programs ?(ports = [| 0; 1 |]) () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2_bounded.create mem in
  Array.map
    (fun port ctx -> if Primitives.Le2_bounded.elect le ctx ~port then 1 else 0)
    ports

let test_le2b_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:16 ~programs:(fun () -> le2b_programs ())
      ~check:check_le2 ()
  in
  checkb "explored many executions" true (n > 20_000)

let test_le2b_random_deep () =
  for seed = 1 to 2000 do
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (le2b_programs ()) in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int ((seed * 7) + 1)));
    check_le2 sched
  done

let test_le2b_solo_wins () =
  for port = 0 to 1 do
    let sched = Sim.Sched.create (le2b_programs ~ports:[| port |] ()) in
    Sim.Sched.run sched (Sim.Adversary.round_robin ());
    checki "solo process wins" 1 (Option.get (Sim.Sched.result sched 0))
  done

let test_le2b_values_bounded () =
  (* The whole point: every written value stays within the domain {0..7}. *)
  for seed = 1 to 200 do
    let mem = Sim.Memory.create () in
    let le = Primitives.Le2_bounded.create mem in
    let programs =
      Array.init 2 (fun port ctx ->
          if Primitives.Le2_bounded.elect le ctx ~port then 1 else 0)
    in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) ~record_trace:true programs
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
    List.iter
      (function
        | Sim.Op.Step { kind = Sim.Op.Write v; _ } ->
            checkb "value in {0..7}" true (v >= 0 && v < 8)
        | _ -> ())
      (Sim.Sched.trace sched)
  done

let test_le2b_crash_safety () =
  for crash_after = 0 to 10 do
    for seed = 1 to 40 do
      let sched =
        Sim.Sched.create
          ~seed:(Int64.of_int (seed + (crash_after * 100)))
          (le2b_programs ())
      in
      let adv =
        Sim.Adversary.with_crashes [ (1, crash_after) ]
          (Sim.Adversary.round_robin ())
      in
      Sim.Sched.run sched adv;
      checkb "p0 finished" true (Sim.Sched.result sched 0 <> None);
      checkb "at most one winner" true (count_winners sched <= 1)
    done
  done

let test_le2b_expected_steps () =
  let total = ref 0 in
  let trials = 500 in
  for seed = 1 to trials do
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (le2b_programs ()) in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
    total := !total + Sim.Sched.max_steps sched
  done;
  let avg = float_of_int !total /. float_of_int trials in
  checkb (Printf.sprintf "avg max steps %.2f < 25" avg) true (avg < 25.0)

(* {1 Le3} *)

let le3_programs ?(ports = [| 0; 1; 2 |]) () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le3.create mem in
  Array.map
    (fun port ctx -> if Primitives.Le3.elect le ctx ~port then 1 else 0)
    ports

let test_le3_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:10 ~programs:(fun () -> le3_programs ())
      ~check:(fun sched ->
        let winners = count_winners sched in
        if winners > 1 then Alcotest.fail "two winners";
        if all_finished sched && winners <> 1 then
          Alcotest.fail "no winner in crash-free run")
      ()
  in
  checkb "explored" true (n > 5_000)

let test_le3_random () =
  for seed = 1 to 1000 do
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (le3_programs ()) in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 11)));
    let winners = count_winners sched in
    checki "exactly one winner" 1 winners
  done

let test_le3_solo_each_port () =
  for port = 0 to 2 do
    let sched = Sim.Sched.create (le3_programs ~ports:[| port |] ()) in
    Sim.Sched.run sched (Sim.Adversary.round_robin ());
    checki "solo wins" 1 (Option.get (Sim.Sched.result sched 0))
  done

let test_le3_pairs () =
  (* Every 2-subset of ports: exactly one winner. *)
  List.iter
    (fun ports ->
      for seed = 1 to 200 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (le3_programs ~ports ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 13)));
        checki "one winner" 1 (count_winners sched)
      done)
    [ [| 0; 1 |]; [| 0; 2 |]; [| 1; 2 |] ]

let test_le3_crash_safety () =
  for crashed_port = 0 to 2 do
    for seed = 1 to 100 do
      let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (le3_programs ()) in
      let adv =
        Sim.Adversary.with_crashes
          [ (crashed_port, seed mod 6) ]
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 17)))
      in
      Sim.Sched.run sched adv;
      checkb "at most one winner" true (count_winners sched <= 1);
      (* the two survivors must both finish *)
      for pid = 0 to 2 do
        if pid <> crashed_port then
          checkb "survivor finished" true
            (Sim.Sched.result sched pid <> None
            || Sim.Sched.status sched pid = Sim.Sched.Crashed)
      done
    done
  done

(* {1 TAS from LE} *)

let tas_programs k () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2.create mem in
  let tas =
    Primitives.Tas.create mem ~elect:(fun ctx ->
        Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
  in
  Array.init k (fun _ ctx -> Primitives.Tas.apply tas ctx)

let test_tas_unique_zero () =
  for seed = 1 to 1000 do
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (tas_programs 2 ()) in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 5)));
    let zeros =
      Array.fold_left
        (fun a r -> if r = Some 0 then a + 1 else a)
        0 (Sim.Sched.results sched)
    in
    checki "exactly one TAS() returns 0" 1 zeros
  done

let test_tas_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:12 ~programs:(tas_programs 2)
      ~check:(fun sched ->
        let zeros =
          Array.fold_left
            (fun a r -> if r = Some 0 then a + 1 else a)
            0 (Sim.Sched.results sched)
        in
        if zeros > 1 then Alcotest.fail "two TAS() calls returned 0";
        if all_finished sched && zeros <> 1 then
          Alcotest.fail "no TAS() call returned 0")
      ()
  in
  checkb "explored" true (n > 1_000)

let test_tas_linearizable () =
  (* No call that completes strictly before the winner's first step may
     return 1 while the winner returns 0 later: once a 1 was returned the
     bit was set, so a 0-return must not start afterwards. Equivalently:
     the winner's first step must precede every completed call's return.
     We check it on traces from random schedules. *)
  for seed = 1 to 500 do
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) (tas_programs 2 ()) in
    Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 23)));
    let winner = ref (-1) in
    Array.iteri
      (fun pid r -> if r = Some 0 then winner := pid)
      (Sim.Sched.results sched);
    if !winner >= 0 then begin
      let wstart = Sim.Sched.first_step_time sched !winner in
      Array.iteri
        (fun pid r ->
          if pid <> !winner && r = Some 1 then
            let fin = Sim.Sched.finish_time sched pid in
            checkb "loser finished after winner started" true (fin >= wstart))
        (Sim.Sched.results sched)
    end
  done

let test_tas_lincheck_random () =
  (* Full linearizability via the Wing-Gong checker, on histories of up
     to 6 concurrent TAS calls over a 6-slot tournament election. *)
  for seed = 1 to 300 do
    let mem = Sim.Memory.create () in
    let le = Primitives.Le3.create mem in
    let tas =
      Primitives.Tas.create mem ~elect:(fun ctx ->
          Primitives.Le3.elect le ctx ~port:(Sim.Ctx.pid ctx))
    in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed)
        (Array.init 3 (fun _ ctx -> Primitives.Tas.apply tas ctx))
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 41)));
    checkb "linearizable" true (Sim.Lincheck.check_tas_sched sched)
  done

let test_lincheck_rejects_bad_histories () =
  let mk op result start_time end_time =
    { Sim.Lincheck.op; result; start_time; end_time }
  in
  (* Two winners: impossible. *)
  checkb "two zeros rejected" false
    (Sim.Lincheck.linearizable Sim.Lincheck.tas_spec
       [ mk 0 0 1 2; mk 1 0 3 4 ]);
  (* A 1 strictly before any 0: impossible (the bit cannot unset). *)
  checkb "1-before-0 rejected" false
    (Sim.Lincheck.linearizable Sim.Lincheck.tas_spec
       [ mk 0 1 1 2; mk 1 0 3 4 ]);
  (* The same two ops overlapping: fine (the 0 linearizes first). *)
  checkb "overlap accepted" true
    (Sim.Lincheck.linearizable Sim.Lincheck.tas_spec
       [ mk 0 1 1 4; mk 1 0 2 3 ]);
  (* No winner at all: fine for completed-op histories? No: a lone 1 with
     nobody setting the bit is illegal. *)
  checkb "lone 1 rejected" false
    (Sim.Lincheck.linearizable Sim.Lincheck.tas_spec [ mk 0 1 1 2 ]);
  checkb "lone 0 accepted" true
    (Sim.Lincheck.linearizable Sim.Lincheck.tas_spec [ mk 0 0 1 2 ]);
  checkb "empty history accepted" true
    (Sim.Lincheck.linearizable Sim.Lincheck.tas_spec [])

let test_lincheck_crash_aware () =
  let mk op result start_time end_time =
    { Sim.Lincheck.op; result; start_time; end_time }
  in
  let pend op start =
    { Sim.Lincheck.p_op = op; p_start = start; possible_results = [ 0 ] }
  in
  let lin = Sim.Lincheck.linearizable_incomplete Sim.Lincheck.tas_spec in
  (* Survivors all returning 1 with nobody completing a 0 is illegal... *)
  checkb "all ones without a winner rejected" false
    (lin ~completed:[ mk 0 1 3 4; mk 1 1 5 6 ] ~pending:[]);
  (* ...unless a crashed possible-winner's pending call explains them. *)
  checkb "crashed possible-winner legalises the ones" true
    (lin ~completed:[ mk 0 1 3 4; mk 1 1 5 6 ] ~pending:[ pend 2 1 ]);
  (* A pending call never legalises a second completed 0. *)
  checkb "two zeros always illegal" false
    (lin ~completed:[ mk 0 0 1 2; mk 1 0 3 4 ] ~pending:[ pend 2 1 ]);
  (* Real time binds the phantom too: it cannot linearize before an
     operation that responded before the phantom was invoked, so a
     completed 1 followed by a later-crashed would-be winner stays
     illegal. *)
  checkb "phantom cannot precede an earlier completed 1" false
    (lin ~completed:[ mk 0 1 1 2 ] ~pending:[ pend 1 5 ]);
  (* A pending call may also simply never have taken effect. *)
  checkb "pending call droppable" true
    (lin ~completed:[ mk 0 0 1 2; mk 1 1 3 4 ] ~pending:[ pend 2 1 ])

let test_tas_crash_lincheck () =
  (* Crash the would-be winner at every early point of the real 2-process
     TAS under random schedules: the incomplete histories must always be
     crash-aware linearizable, and the "survivor loses to a crashed
     phantom winner" case must actually occur. *)
  let phantom_case = ref false in
  for crash_after = 0 to 12 do
    for seed = 1 to 40 do
      let sched =
        Sim.Sched.create
          ~seed:(Int64.of_int (seed + (crash_after * 1000)))
          (tas_programs 2 ())
      in
      let adv =
        Sim.Adversary.with_crashes
          [ (0, crash_after) ]
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int ((seed * 7) + 1)))
      in
      Sim.Sched.run sched adv;
      checkb "crash-aware linearizable" true (Sim.Lincheck.check_tas_sched sched);
      if
        Sim.Sched.status sched 0 = Sim.Sched.Crashed
        && Sim.Sched.result sched 1 = Some 1
      then phantom_case := true
    done
  done;
  checkb "phantom-winner case exercised" true !phantom_case

let test_tas_sequential () =
  (* Strictly sequential calls: first gets 0, second gets 1. *)
  let sched = Sim.Sched.create (tas_programs 2 ()) in
  let schedule = Array.append (Array.make 30 0) (Array.make 30 1) in
  Sim.Sched.run sched (Sim.Adversary.fixed_schedule ~then_halt:false schedule);
  checki "first caller wins" 0 (Option.get (Sim.Sched.result sched 0));
  checki "second caller loses" 1 (Option.get (Sim.Sched.result sched 1))

let () =
  Alcotest.run "primitives"
    [
      ( "splitter",
        [
          Alcotest.test_case "solo stops" `Quick test_splitter_solo;
          Alcotest.test_case "exhaustive k=2" `Quick test_splitter_explore_2;
          Alcotest.test_case "exhaustive k=3" `Slow test_splitter_explore_3;
          Alcotest.test_case "exhaustive crash schedules" `Quick
            test_splitter_crash_exhaustive;
          Alcotest.test_case "random k=16" `Quick test_splitter_random_many;
          Alcotest.test_case "space" `Quick test_splitter_space;
          Alcotest.test_case "sequential callers" `Quick
            test_splitter_sequential_later_callers_lose;
        ] );
      ( "rsplitter",
        [
          Alcotest.test_case "solo stops" `Quick test_rsplitter_solo;
          Alcotest.test_case "at most one S" `Quick test_rsplitter_at_most_one_s;
          Alcotest.test_case "same-side outcomes" `Quick
            test_rsplitter_both_directions_possible;
        ] );
      ( "le2",
        [
          Alcotest.test_case "exhaustive" `Slow test_le2_exhaustive;
          Alcotest.test_case "random schedules" `Quick test_le2_random_deep;
          Alcotest.test_case "solo wins" `Quick test_le2_solo_wins;
          Alcotest.test_case "crash safety" `Quick test_le2_survivor_decides_after_crash;
          Alcotest.test_case "exhaustive crash schedules" `Slow
            test_le2_crash_exhaustive;
          Alcotest.test_case "constant expected steps" `Quick
            test_le2_expected_steps_constant;
          Alcotest.test_case "space" `Quick test_le2_space;
          Alcotest.test_case "bad port" `Quick test_le2_bad_port;
        ] );
      ( "le2-bounded",
        [
          Alcotest.test_case "exhaustive" `Slow test_le2b_exhaustive;
          Alcotest.test_case "random schedules" `Quick test_le2b_random_deep;
          Alcotest.test_case "solo wins" `Quick test_le2b_solo_wins;
          Alcotest.test_case "values stay in {0..7}" `Quick test_le2b_values_bounded;
          Alcotest.test_case "crash safety" `Quick test_le2b_crash_safety;
          Alcotest.test_case "constant expected steps" `Quick test_le2b_expected_steps;
        ] );
      ( "le3",
        [
          Alcotest.test_case "exhaustive" `Slow test_le3_exhaustive;
          Alcotest.test_case "random schedules" `Quick test_le3_random;
          Alcotest.test_case "solo each port" `Quick test_le3_solo_each_port;
          Alcotest.test_case "pairs" `Quick test_le3_pairs;
          Alcotest.test_case "crash safety" `Quick test_le3_crash_safety;
        ] );
      ( "tas",
        [
          Alcotest.test_case "unique zero" `Quick test_tas_unique_zero;
          Alcotest.test_case "exhaustive" `Slow test_tas_exhaustive;
          Alcotest.test_case "linearizable" `Quick test_tas_linearizable;
          Alcotest.test_case "lincheck random histories" `Quick
            test_tas_lincheck_random;
          Alcotest.test_case "lincheck rejects bad histories" `Quick
            test_lincheck_rejects_bad_histories;
          Alcotest.test_case "lincheck crash-aware completions" `Quick
            test_lincheck_crash_aware;
          Alcotest.test_case "lincheck under winner crashes" `Quick
            test_tas_crash_lincheck;
          Alcotest.test_case "sequential" `Quick test_tas_sequential;
        ] );
    ]
