(* The service layer: resettable round isolation (differential against
   fresh one-shot runs), the round-stamp state machine, chaos recovery,
   driver determinism, and the workload generators. *)

let checkb msg expected actual = Alcotest.(check bool) msg expected actual
let checki msg expected actual = Alcotest.(check int) msg expected actual

(* {1 Round isolation, differentially}

   A resettable key that reuses its arena across rounds must behave, in
   every round, exactly like a brand-new one-shot instance: same
   results, same step counts, same RMR counts for the same derived
   schedule seed. 120 seeds x 3 rounds per dual-backend entry. *)

let k_diff = 4
let rounds_diff = 3

let outcome_vector sched =
  Array.init k_diff (fun pid ->
      ( Sim.Sched.result sched pid,
        Sim.Sched.steps sched pid,
        Sim.Sched.rmrs sched pid ))

let run_election le ~sseed =
  let sched =
    Sim.Sched.create ~seed:sseed (Leaderelect.Le.programs le ~k:k_diff)
  in
  Sim.Sched.run sched
    (Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive sseed ~stream:1));
  outcome_vector sched

let test_round_isolated_vs_fresh () =
  List.iter
    (fun (e : Rtas.Registry.entry) ->
      let name = e.Rtas.Registry.name in
      for seed = 1 to 120 do
        let seed = Int64.of_int seed in
        (* Arena-reuse path: one memory, one structure, reset per round
           — exactly what the sim driver's election factory does. *)
        let mem = Sim.Memory.create () in
        let le = e.Rtas.Registry.make mem ~n:k_diff in
        let module E = struct
          type instance = Leaderelect.Le.t

          let fresh ~key:_ ~round = if round > 0 then Sim.Memory.reset mem; le
        end in
        let module R = Service.Resettable.Make (E) in
        let res = R.create ~key:0 ~now:0.0 in
        for round = 0 to rounds_diff - 1 do
          checki (name ^ ": round number") round (R.round res);
          let inst =
            match R.state res with
            | Service.Resettable.Open { inst; _ } -> inst
            | Service.Resettable.Held _ -> Alcotest.fail (name ^ ": held?")
          in
          let sseed = Sim.Rng.derive seed ~stream:round in
          let reused = run_election inst ~sseed in
          (* Fresh path: a brand-new arena and structure, same derived
             seed and adversary. *)
          let fresh_mem = Sim.Memory.create () in
          let fresh_le = e.Rtas.Registry.make fresh_mem ~n:k_diff in
          let fresh = run_election fresh_le ~sseed in
          checkb
            (Printf.sprintf "%s seed %Ld round %d: reused = fresh" name seed
               round)
            true (reused = fresh);
          let winners =
            Array.fold_left
              (fun a (r, _, _) -> if r = Some 1 then a + 1 else a)
              0 reused
          in
          checki (name ^ ": one winner") 1 winners;
          let w = ref (-1) in
          Array.iteri (fun pid (r, _, _) -> if r = Some 1 then w := pid) reused;
          checkb (name ^ ": claim") true
            (R.claim res ~round ~owner:!w ~now:1.0);
          checkb (name ^ ": stale claim rejected") false
            (R.claim res ~round ~owner:!w ~now:1.0);
          checkb (name ^ ": release") true
            (R.release res ~round ~owner:!w ~now:2.0)
        done
      done)
    (Rtas.Registry.dual ())

(* {1 Atomic rounds: exactly one winner per round} *)

let test_atomic_rounds_unique_winner () =
  let domains = 4 in
  List.iter
    (fun (e : Rtas.Registry.entry) ->
      let make_mc = Option.get e.Rtas.Registry.make_mc in
      let module E = struct
        type instance = Multicore.Mc_le.t

        let fresh ~key:_ ~round:_ = make_mc ~n:domains
      end in
      let module R = Service.Resettable.Make (E) in
      for seed = 1 to 10 do
        let res = R.create ~key:0 ~now:0.0 in
        for round = 0 to 2 do
          checki "round" round (R.round res);
          let inst =
            match R.state res with
            | Service.Resettable.Open { inst; _ } -> inst
            | Service.Resettable.Held _ -> Alcotest.fail "held?"
          in
          let results =
            match
              Fault.Watchdog.race ~timeout:20.0 ~n:domains (fun slot ->
                  let rng = Random.State.make [| seed; round; slot; 0x5E |] in
                  Multicore.Mc_le.elect inst rng ~slot)
            with
            | Ok r -> r
            | Error stuck ->
                Alcotest.failf "%s: %a" e.Rtas.Registry.name
                  Fault.Watchdog.pp_stuck stuck
          in
          let winners =
            Array.fold_left (fun a w -> if w then a + 1 else a) 0 results
          in
          checki
            (Printf.sprintf "%s seed %d round %d: unique winner"
               e.Rtas.Registry.name seed round)
            1 winners;
          let w = ref (-1) in
          Array.iteri (fun slot won -> if won then w := slot) results;
          checkb "claim" true (R.claim res ~round ~owner:!w ~now:1.0);
          checkb "release" true (R.release res ~round ~owner:!w ~now:2.0)
        done
      done)
    (Rtas.Registry.dual ())

(* {1 The round-stamp state machine} *)

module Unit_e = struct
  type instance = int

  let built = ref 0

  let fresh ~key:_ ~round:_ =
    incr built;
    !built
end

module UR = Service.Resettable.Make (Unit_e)

let test_stamp_transitions () =
  let r = UR.create ~key:3 ~now:0.0 in
  checki "key" 3 (UR.key r);
  checki "round 0" 0 (UR.round r);
  checkb "claim wrong round" false (UR.claim r ~round:1 ~owner:9 ~now:1.0);
  checkb "claim" true (UR.claim r ~round:0 ~owner:9 ~now:1.0);
  checkb "double claim" false (UR.claim r ~round:0 ~owner:8 ~now:1.0);
  checkb "release wrong owner" false (UR.release r ~round:0 ~owner:8 ~now:2.0);
  checkb "release wrong round" false (UR.release r ~round:1 ~owner:9 ~now:2.0);
  checkb "release" true (UR.release r ~round:0 ~owner:9 ~now:2.0);
  checki "round 1" 1 (UR.round r);
  checkb "stale release" false (UR.release r ~round:0 ~owner:9 ~now:2.0);
  (* Recovery: expire an Open round (winner crashed before claiming),
     then a Held one (holder crashed). *)
  checkb "expire open" true (UR.force_expire r ~round:1 ~now:3.0);
  checki "round 2" 2 (UR.round r);
  checkb "claim expired round" false (UR.claim r ~round:1 ~owner:7 ~now:3.0);
  checkb "claim" true (UR.claim r ~round:2 ~owner:7 ~now:4.0);
  checkb "expire held" true (UR.force_expire r ~round:2 ~now:9.0);
  checkb "release after expiry" false (UR.release r ~round:2 ~owner:7 ~now:9.5);
  checkb "expire stale" false (UR.force_expire r ~round:2 ~now:9.9);
  checki "expiries" 2 (UR.expiries r);
  checki "round 3" 3 (UR.round r)

(* {1 The sim driver} *)

let small_cfg ?(chaos = 0.0) ?(seed = 5L) () =
  {
    (Service.Driver.default ~algorithm:"log*") with
    Service.Driver.clients = 300;
    keys = 8;
    contenders = 8;
    crash_prob = chaos;
    seed;
  }

let test_driver_deterministic () =
  let j () = Service.Report.to_json (Service.Driver.run (small_cfg ())) in
  Alcotest.(check string) "same seed, same JSON" (j ()) (j ());
  let other =
    Service.Report.to_json (Service.Driver.run (small_cfg ~seed:6L ()))
  in
  checkb "different seed, different JSON" true (j () <> other)

(* The flat kernel must be report-invisible: same derived seeds, same
   adversary decisions, same winners and round spans, so the JSON is
   byte-identical. Chaos included — the holder-crash draws live outside
   the election kernel and must not shift either. *)
let test_driver_flat_matches_effect () =
  List.iter
    (fun chaos ->
      let cfg = small_cfg ~chaos () in
      let eff = Service.Report.to_json (Service.Driver.run cfg) in
      let flat =
        Service.Report.to_json
          (Service.Driver.run { cfg with Service.Driver.kernel = `Flat })
      in
      Alcotest.(check string) "flat report = effect report" eff flat)
    [ 0.0; 0.4 ]

let test_driver_flat_rejects_plan () =
  let cfg =
    {
      (small_cfg ()) with
      Service.Driver.kernel = `Flat;
      plan = Some [ Fault.Plan.storm 0.02 ];
    }
  in
  match Service.Driver.run cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "flat kernel with a fault plan must be rejected"

let test_driver_accounts_every_client () =
  List.iter
    (fun chaos ->
      let r = Service.Driver.run (small_cfg ~chaos ()) in
      let c = r.Service.Report.counts in
      checkb "balanced" true (Service.Report.balanced c);
      checkb "completions" true (c.Service.Report.completed > 0);
      checkb "no livelock" false r.Service.Report.livelocked)
    [ 0.0; 0.2; 0.6 ]

let test_driver_chaos_recovers () =
  let r = Service.Driver.run (small_cfg ~chaos:0.5 ()) in
  let c = r.Service.Report.counts in
  checkb "holders crashed" true (c.Service.Report.holder_crashes > 0);
  (* Every wedged round — holder crash or zero-winner — must have been
     recovered by a forced expiry before the heap drained: a crashed
     holder never wedges a key for good. *)
  checkb "every crash recovered" true
    (c.Service.Report.forced_expiries >= c.Service.Report.holder_crashes);
  checkb "service still completes work" true
    (c.Service.Report.completed > 0)

let test_driver_sheds_overload () =
  let cfg =
    {
      (small_cfg ()) with
      Service.Driver.arrival = Service.Arrival.Poisson { rate = 0.5 };
      max_waiters = 4;
      keys = 1;
      zipf_s = 0.0;
      deadline = 100_000.0;
    }
  in
  let r = Service.Driver.run cfg in
  let c = r.Service.Report.counts in
  checkb "sheds under overload" true (c.Service.Report.shed > 0);
  checkb "balanced under shed" true (Service.Report.balanced c)

(* {1 The event engines, differentially}

   The timing wheel must be report-invisible: both engines order events
   by (time, key, per-key sequence), so for any config and seed the
   JSON report is byte-identical. 120 seeds per dual-backend entry,
   plus a chaos variant (lease expiries exercise the long-delay wheel
   levels). *)

let test_wheel_matches_heap () =
  List.iter
    (fun (e : Rtas.Registry.entry) ->
      let name = e.Rtas.Registry.name in
      for s = 1 to 120 do
        let cfg =
          {
            (Service.Driver.default ~algorithm:name) with
            Service.Driver.clients = 150;
            keys = 8;
            contenders = 4;
            seed = Int64.of_int s;
          }
        in
        let wheel =
          Service.Report.to_json
            (Service.Driver.run { cfg with Service.Driver.events = `Wheel })
        in
        let heap =
          Service.Report.to_json
            (Service.Driver.run { cfg with Service.Driver.events = `Heap })
        in
        Alcotest.(check string)
          (Printf.sprintf "%s seed %d: wheel = heap" name s)
          heap wheel
      done)
    (Rtas.Registry.dual ())

let test_wheel_matches_heap_chaos () =
  for s = 1 to 120 do
    let cfg = small_cfg ~chaos:0.3 ~seed:(Int64.of_int s) () in
    let wheel =
      Service.Report.to_json
        (Service.Driver.run { cfg with Service.Driver.events = `Wheel })
    in
    let heap =
      Service.Report.to_json
        (Service.Driver.run { cfg with Service.Driver.events = `Heap })
    in
    Alcotest.(check string)
      (Printf.sprintf "chaos seed %d: wheel = heap" s)
      heap wheel
  done

(* Sharded execution: the keyspace partition is report-invisible for
   any shard count, on either engine, serial or on a domain pool. *)
let test_driver_shards_identical () =
  let cfg =
    {
      (small_cfg ~chaos:0.2 ()) with
      Service.Driver.clients = 400;
      keys = 8;
      zipf_s = 0.7;
    }
  in
  let run ?domains shards events =
    Service.Report.to_json
      (Service.Driver.run ?domains
         { cfg with Service.Driver.shards; events })
  in
  let base = run 1 `Wheel in
  Alcotest.(check string) "2 shards = 1 shard" base (run 2 `Wheel);
  Alcotest.(check string) "4 shards = 1 shard" base (run 4 `Wheel);
  Alcotest.(check string) "4 shards on 2 domains" base
    (run ~domains:2 4 `Wheel);
  Alcotest.(check string) "4 heap shards" base (run ~domains:2 4 `Heap)

(* The retry shed mode: rejections are events, not terminal outcomes —
   completed + deadline + crashed partition the population, shed counts
   bounces (and under sustained overload exceeds the client count) —
   and the engines still agree byte for byte. *)
let test_driver_retry_on_shed () =
  let cfg =
    {
      (Service.Driver.default ~algorithm:"tournament") with
      Service.Driver.clients = 2_000;
      keys = 2;
      zipf_s = 0.0;
      arrival = Service.Arrival.Poisson { rate = 2.0 };
      contenders = 2;
      max_waiters = 4;
      hold = 500.0;
      on_shed = `Retry;
      seed = 42L;
    }
  in
  let rw = Service.Driver.run { cfg with Service.Driver.events = `Wheel } in
  let rh = Service.Driver.run { cfg with Service.Driver.events = `Heap } in
  Alcotest.(check string)
    "retry mode: wheel = heap"
    (Service.Report.to_json rh)
    (Service.Report.to_json rw);
  let c = rw.Service.Report.counts in
  checkb "shed events recorded" true (c.Service.Report.shed > 0);
  checkb "shed exceeds clients (events, not outcomes)" true
    (c.Service.Report.shed > c.Service.Report.clients);
  checki "terminal partition excludes shed"
    c.Service.Report.clients
    (c.Service.Report.completed + c.Service.Report.deadline_exceeded
   + c.Service.Report.crashed_clients);
  checkb "partition predicate agrees" true
    (Service.Report.balanced ~shed_terminal:false c)

(* {1 The wheel in isolation} *)

(* Torture the event order: a bulk phase of duplicate-heavy random
   times (hitting every wheel level), then an interleaved phase where
   each pop triggers a fresh schedule — including zero-delay events
   landing in the live due buffer. Every popped event must come out in
   exact (at, key, kseq) lexicographic order. *)
let test_wheel_ordering () =
  let w = Service.Wheel.create ~capacity:64 () in
  let rng = Sim.Rng.create 77L in
  (* Online reference: the set of currently-live events; a correct pop
     is the (at, key, kseq) minimum of exactly that set. (A plain
     offline sort would be wrong: an event scheduled at an
     already-popped instant legitimately pops after its same-time,
     larger-ord predecessors.) *)
  let live = ref [] in
  let sched at key kseq =
    Service.Wheel.schedule w ~at ~key ~kseq ~kind:(kseq land 3)
      ~a:(key + kseq) ~b:kseq;
    live := (at, key, kseq) :: !live
  in
  let kseq = ref 0 in
  for _ = 1 to 3_000 do
    (* Times from a few ticks to beyond level 3; integer-heavy so
       same-tick ties are common, with occasional fractional parts. *)
    let at =
      float_of_int (Sim.Rng.int rng 70_000_000)
      +. (if Sim.Rng.int rng 4 = 0 then Sim.Rng.float rng else 0.0)
    in
    incr kseq;
    sched at (Sim.Rng.int rng 64) !kseq
  done;
  let pop1 () =
    let id = Service.Wheel.pop w in
    checkb "pop id" true (id >= 0);
    let ord = w.Service.Wheel.ev_ord.(id) in
    let meta = w.Service.Wheel.ev_meta.(id) in
    let key = Service.Wheel.key_of_ord ord in
    let ks = Service.Wheel.kseq_of_ord ord in
    (* The payload must round-trip through the packing. *)
    checki "kind" (ks land 3) (Service.Wheel.kind_of_meta meta);
    checki "a" (key + ks) (Service.Wheel.a_of_meta meta);
    checki "b" ks (Service.Wheel.b_of_meta meta);
    let at = w.Service.Wheel.ev_at.(id) in
    let min_live =
      List.fold_left min (List.hd !live) (List.tl !live)
    in
    checkb "pop is the minimum live event" true (min_live = (at, key, ks));
    live := List.filter (fun e -> e <> min_live) !live;
    at
  in
  for _ = 1 to 1_500 do
    let now = pop1 () in
    (* Interleave: a zero-delay event at the popped instant and a
       short-delay one, both landing while the due buffer is live. *)
    incr kseq;
    sched now (Sim.Rng.int rng 64) !kseq;
    incr kseq;
    sched (now +. float_of_int (Sim.Rng.int rng 1_000)) (Sim.Rng.int rng 64)
      !kseq
  done;
  while Service.Wheel.live w > 0 do
    ignore (pop1 ())
  done;
  checkb "every scheduled event popped" true (!live = [])

(* The steady-state zero-allocation pin: after warmup (pool and due
   buffer at capacity), a schedule/pop cycle must not allocate a single
   minor word — the property the million-client driver leans on. *)
let test_wheel_zero_alloc () =
  let w = Service.Wheel.create ~capacity:512 () in
  let cycle start =
    for i = 0 to 399 do
      Service.Wheel.schedule w
        ~at:(start +. float_of_int (i * 97 mod 10_000))
        ~key:(i land 15) ~kseq:i ~kind:(i land 3) ~a:i ~b:0
    done;
    let last = ref 0.0 in
    while Service.Wheel.live w > 0 do
      let id = Service.Wheel.pop w in
      last := w.Service.Wheel.ev_at.(id)
    done;
    !last
  in
  let t = cycle 0.0 in
  let s0 = (Gc.quick_stat ()).Gc.minor_words in
  let t = cycle t in
  let dw = (Gc.quick_stat ()).Gc.minor_words -. s0 in
  checkb "wheel cycles allocation-free after warmup" true (dw = 0.0);
  checkb "virtual time advanced" true (t > 0.0)

(* {1 Latency recording} *)

(* The log-bucketed histogram against the exact oracle on the same
   run: mean and max are exact by construction; percentiles are bucket
   midpoints within the bucket's relative width (1/32 here) of the
   exact nearest-rank value. *)
let test_latency_hist_close_to_exact () =
  let cfg =
    { (small_cfg ()) with Service.Driver.clients = 1_500; keys = 8 }
  in
  let lat mode =
    let r = Service.Driver.run { cfg with Service.Driver.latency = mode } in
    Option.get r.Service.Report.latency
  in
  let e = lat `Exact and h = lat `Hist in
  checki "same sample count" e.Service.Report.l_n h.Service.Report.l_n;
  Alcotest.(check (float 1e-9)) "mean exact" e.Service.Report.l_mean
    h.Service.Report.l_mean;
  Alcotest.(check (float 1e-9)) "max exact" e.Service.Report.l_max
    h.Service.Report.l_max;
  List.iter
    (fun (name, ev, hv) ->
      checkb
        (Printf.sprintf "%s: |%.3f - %.3f| within bucket width" name hv ev)
        true
        (Float.abs (hv -. ev) <= (ev /. 32.0) +. 1.0))
    [
      ("p50", e.Service.Report.l_p50, h.Service.Report.l_p50);
      ("p95", e.Service.Report.l_p95, h.Service.Report.l_p95);
      ("p99", e.Service.Report.l_p99, h.Service.Report.l_p99);
      ("p999", e.Service.Report.l_p999, h.Service.Report.l_p999);
    ]

(* Merge associativity and commutativity, both modes: shard partials
   must combine into the same snapshot regardless of grouping. *)
let test_histo_merge_associative () =
  List.iter
    (fun mode ->
      let samples i =
        List.init 200 (fun j ->
            1.0 +. float_of_int (((i * 7919) + (j * 104729)) mod 50_000))
      in
      let mk i =
        let h = Service.Histo.create mode in
        List.iter (Service.Histo.observe h) (samples i);
        h
      in
      let snap order =
        let acc = Service.Histo.create mode in
        List.iter
          (fun i -> Service.Histo.merge_into ~into:acc (mk i))
          order;
        Option.get (Service.Histo.snapshot acc)
      in
      let a = snap [ 0; 1; 2 ] in
      checkb "merge order invariant" true
        (a = snap [ 2; 0; 1 ] && a = snap [ 1; 2; 0 ]);
      (* Nested grouping: (h0 + h1) + h2 = h0 + (h1 + h2). *)
      let left =
        let x = mk 0 in
        Service.Histo.merge_into ~into:x (mk 1);
        let acc = Service.Histo.create mode in
        Service.Histo.merge_into ~into:acc x;
        Service.Histo.merge_into ~into:acc (mk 2);
        Option.get (Service.Histo.snapshot acc)
      in
      let right =
        let y = mk 1 in
        Service.Histo.merge_into ~into:y (mk 2);
        let acc = Service.Histo.create mode in
        Service.Histo.merge_into ~into:acc (mk 0);
        Service.Histo.merge_into ~into:acc y;
        Option.get (Service.Histo.snapshot acc)
      in
      checkb "merge associative" true (left = right && left = a))
    [ `Exact; `Log ]

(* {1 The atomic driver} *)

let test_mc_driver_smoke () =
  let cfg =
    {
      (Service.Mc_driver.default ~algorithm:"tournament") with
      Service.Mc_driver.clients = 60;
      keys = 4;
      workers = 3;
      arrival = Service.Arrival.Poisson { rate = 0.01 };
      timeout = 60.0;
      seed = 5L;
    }
  in
  let r = Service.Mc_driver.run cfg in
  checkb "no livelock" false r.Service.Report.livelocked;
  checkb "balanced" true (Service.Report.balanced r.Service.Report.counts);
  checki "all complete without chaos" 60
    r.Service.Report.counts.Service.Report.completed

let test_mc_driver_chaos_no_wedge () =
  let cfg =
    {
      (Service.Mc_driver.default ~algorithm:"tournament") with
      Service.Mc_driver.clients = 60;
      keys = 4;
      workers = 3;
      arrival = Service.Arrival.Poisson { rate = 0.01 };
      deadline = 5_000.0;
      crash_prob = 0.4;
      timeout = 60.0;
      seed = 5L;
    }
  in
  let r = Service.Mc_driver.run cfg in
  (* The run finishing at all (inside the watchdog bound) is the no-wedge
     property: every client reached a terminal state even though holders
     crashed without releasing. *)
  checkb "no livelock under chaos" false r.Service.Report.livelocked;
  checkb "balanced under chaos" true
    (Service.Report.balanced r.Service.Report.counts)

(* {1 Workload generators} *)

let test_zipf () =
  let z = Service.Zipf.create ~n:8 ~s:0.0 in
  Array.iteri
    (fun i p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "uniform pmf %d" i)
        0.125 p)
    (Array.init 8 (Service.Zipf.pmf z));
  let z = Service.Zipf.create ~n:8 ~s:1.5 in
  checkb "skewed head" true (Service.Zipf.pmf z 0 > 4.0 *. Service.Zipf.pmf z 7);
  let draw seed =
    let rng = Sim.Rng.create seed in
    List.init 200 (fun _ -> Service.Zipf.sample z rng)
  in
  checkb "sampling deterministic" true (draw 3L = draw 3L);
  List.iter
    (fun k -> checkb "sample in range" true (k >= 0 && k < 8))
    (draw 4L)

(* The O(1) alias sampler against the CDF binary-search oracle. For a
   uniform power-of-two keyspace the two are draw-for-draw identical
   (the alias table degenerates to the identity, and both floor the
   same uniform); for skewed distributions the alias draw must match
   the exact pmf to chi-square precision. *)
let test_zipf_alias_matches_cdf () =
  let z = Service.Zipf.create ~n:8 ~s:0.0 in
  let r1 = Sim.Rng.create 5L and r2 = Sim.Rng.create 5L in
  for i = 1 to 10_000 do
    checki
      (Printf.sprintf "uniform draw %d: alias = cdf" i)
      (Service.Zipf.sample_cdf z r2)
      (Service.Zipf.sample z r1)
  done

let test_zipf_alias_chi_square () =
  let n = 64 in
  let z = Service.Zipf.create ~n ~s:1.1 in
  let draws = 200_000 in
  let counts = Array.make n 0 in
  let rng = Sim.Rng.create 9L in
  for _ = 1 to draws do
    let k = Service.Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  let chi2 = ref 0.0 in
  for i = 0 to n - 1 do
    let expect = Service.Zipf.pmf z i *. float_of_int draws in
    let d = float_of_int counts.(i) -. expect in
    chi2 := !chi2 +. (d *. d /. expect)
  done;
  (* df = 63: the 99.9th percentile of chi^2_63 is ~103.4. The seed is
     fixed, so this is a deterministic regression pin, not a flaky
     statistical test. *)
  checkb (Printf.sprintf "chi-square %.1f below 110" !chi2) true (!chi2 < 110.0)

let test_arrival () =
  let times kind seed =
    let t = Service.Arrival.create kind (Sim.Rng.create seed) in
    List.init 300 (fun _ -> Service.Arrival.next t)
  in
  List.iter
    (fun kind ->
      let ts = times kind 9L in
      checkb "deterministic" true (ts = times kind 9L);
      ignore
        (List.fold_left
           (fun prev t ->
             checkb "strictly increasing" true (t > prev);
             t)
           0.0 ts))
    [
      Service.Arrival.Poisson { rate = 0.05 };
      Service.Arrival.Bursty
        { rate = 0.01; burst_len = 100.0; idle_len = 400.0; boost = 10.0 };
    ]

let test_backoff () =
  (* The fused jitter draw must equal the composed derive/derive/draw
     form bit-for-bit: the fusion exists only to skip boxing. *)
  List.iter
    (fun (seed, client, attempt) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "jitter fusion (%Ld,%d,%d)" seed client attempt)
        (Sim.Rng.float_of_seed
           (Sim.Rng.derive (Sim.Rng.derive seed ~stream:client) ~stream:attempt))
        (Sim.Rng.jitter_of_seed seed ~client ~attempt))
    [ (11L, 4, 1); (11L, 4, 7); (42L, 0, 1); (0L, 999999, 63); (-3L, 17, 12) ];
  let exp = Service.Backoff.Exp { base = 8.0; cap = 512.0 } in
  let d a = Service.Backoff.delay exp ~seed:11L ~client:4 ~attempt:a in
  Alcotest.(check (float 0.0)) "deterministic" (d 3) (d 3);
  for a = 1 to 12 do
    let raw = Float.min 512.0 (8.0 *. (2.0 ** float_of_int (a - 1))) in
    let v = d a in
    checkb
      (Printf.sprintf "attempt %d in [raw/2, raw)" a)
      true
      (v >= raw /. 2.0 && v < raw)
  done;
  checkb "clients decorrelated" true
    (Service.Backoff.delay exp ~seed:11L ~client:5 ~attempt:3 <> d 3);
  Alcotest.(check (float 0.0))
    "immediate" 1.0
    (Service.Backoff.delay Service.Backoff.Immediate ~seed:11L ~client:0
       ~attempt:1);
  let r =
    Service.Backoff.delay
      (Service.Backoff.Rand { max = 64.0 })
      ~seed:11L ~client:0 ~attempt:9
  in
  checkb "rand in [1, max)" true (r >= 1.0 && r < 64.0)

let test_registry_dual () =
  let dual = Rtas.Registry.dual () in
  checkb "some dual entries" true (List.length dual >= 2);
  List.iter
    (fun (e : Rtas.Registry.entry) ->
      checkb (e.Rtas.Registry.name ^ " has mc port") true
        (Option.is_some e.Rtas.Registry.make_mc))
    dual;
  checkb "dual names subset" true
    (List.for_all
       (fun n -> List.mem n (Rtas.Registry.names ()))
       (Rtas.Registry.dual_names ()))

let () =
  Alcotest.run "service"
    [
      ( "resettable",
        [
          Alcotest.test_case "state machine" `Quick test_stamp_transitions;
          Alcotest.test_case "rounds = fresh one-shots (120 seeds)" `Slow
            test_round_isolated_vs_fresh;
          Alcotest.test_case "atomic rounds unique winner" `Slow
            test_atomic_rounds_unique_winner;
        ] );
      ( "driver",
        [
          Alcotest.test_case "bit-deterministic" `Quick
            test_driver_deterministic;
          Alcotest.test_case "flat kernel = effect kernel" `Quick
            test_driver_flat_matches_effect;
          Alcotest.test_case "flat kernel rejects fault plans" `Quick
            test_driver_flat_rejects_plan;
          Alcotest.test_case "every client accounted" `Quick
            test_driver_accounts_every_client;
          Alcotest.test_case "chaos recovers wedged keys" `Quick
            test_driver_chaos_recovers;
          Alcotest.test_case "sheds overload" `Quick test_driver_sheds_overload;
          Alcotest.test_case "retry-on-shed: partition + engine parity" `Quick
            test_driver_retry_on_shed;
          Alcotest.test_case "shards are report-invisible" `Quick
            test_driver_shards_identical;
        ] );
      ( "events",
        [
          Alcotest.test_case "wheel = heap (120 seeds per dual entry)" `Slow
            test_wheel_matches_heap;
          Alcotest.test_case "wheel = heap under chaos (120 seeds)" `Slow
            test_wheel_matches_heap_chaos;
          Alcotest.test_case "wheel ordering torture" `Quick
            test_wheel_ordering;
          Alcotest.test_case "wheel steady state allocates nothing" `Quick
            test_wheel_zero_alloc;
        ] );
      ( "latency",
        [
          Alcotest.test_case "histogram tracks exact" `Quick
            test_latency_hist_close_to_exact;
          Alcotest.test_case "merge associative + commutative" `Quick
            test_histo_merge_associative;
        ] );
      ( "mc-driver",
        [
          Alcotest.test_case "smoke" `Slow test_mc_driver_smoke;
          Alcotest.test_case "chaos no wedge" `Slow
            test_mc_driver_chaos_no_wedge;
        ] );
      ( "workload",
        [
          Alcotest.test_case "zipf" `Quick test_zipf;
          Alcotest.test_case "zipf alias = cdf oracle" `Quick
            test_zipf_alias_matches_cdf;
          Alcotest.test_case "zipf alias chi-square" `Quick
            test_zipf_alias_chi_square;
          Alcotest.test_case "arrival" `Quick test_arrival;
          Alcotest.test_case "backoff" `Quick test_backoff;
          Alcotest.test_case "registry dual" `Quick test_registry_dual;
        ] );
    ]
