(* Tests for elimination paths, the primary tree, the backup grid and
   both RatRace variants (Section 3). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Elimination path} *)

let ep_programs ~length k () =
  let mem = Sim.Memory.create () in
  let ep = Ratrace.Elim_path.create mem ~length in
  Array.init k (fun _ ctx ->
      match Ratrace.Elim_path.run ep ctx with
      | Ratrace.Elim_path.Lost -> 0
      | Ratrace.Elim_path.Won -> 1
      | Ratrace.Elim_path.Fell_off -> 2)

let test_ep_solo_wins () =
  let sched = Sim.Sched.create (ep_programs ~length:4 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo wins" 1 (Option.get (Sim.Sched.result sched 0))

let test_ep_claim_3_1 () =
  (* Claim 3.1: at most [length] entrants => nobody falls off; and at
     most one winner, exactly one when crash-free. *)
  List.iter
    (fun (length, k) ->
      for seed = 1 to 100 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (ep_programs ~length k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
        let results = Array.map Option.get (Sim.Sched.results sched) in
        let count v = Array.fold_left (fun a r -> if r = v then a + 1 else a) 0 results in
        checki "nobody falls off" 0 (count 2);
        checki "exactly one winner" 1 (count 1)
      done)
    [ (1, 1); (2, 2); (4, 4); (8, 8); (8, 3); (16, 16) ]

let test_ep_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:10 ~programs:(ep_programs ~length:2 2)
      ~check:(fun sched ->
        let winners =
          Array.fold_left
            (fun a r -> if r = Some 1 then a + 1 else a)
            0 (Sim.Sched.results sched)
        in
        if winners > 1 then Alcotest.fail "two path winners";
        if
          Array.for_all Option.is_some (Sim.Sched.results sched)
          && winners <> 1
        then Alcotest.fail "no winner";
        if Array.exists (fun r -> r = Some 2) (Sim.Sched.results sched) then
          Alcotest.fail "fell off a length-2 path with 2 entrants")
      ()
  in
  checkb "explored" true (n > 500)

let test_ep_overflow_possible () =
  (* With more entrants than nodes, falling off is possible (that is what
     the backup path is for): run k = length + 1 sequentially; each
     sequential caller wins splitter 0... so overflow needs concurrency.
     Just check that the code reports Fell_off rather than raising. *)
  let found = ref false in
  for seed = 1 to 300 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (ep_programs ~length:1 3 ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)));
    if Array.exists (fun r -> r = Some 2) (Sim.Sched.results sched) then
      found := true
  done;
  checkb "overflow observed with k > length" true !found

let test_ep_space () =
  let mem = Sim.Memory.create () in
  let _ = Ratrace.Elim_path.create mem ~length:10 in
  (* 2 registers per splitter + 2 per 2-process election. *)
  checki "4 registers per node" 40 (Sim.Memory.allocated mem)

(* {1 Primary tree} *)

let tree_programs ~height k () =
  let mem = Sim.Memory.create () in
  let tree = Ratrace.Primary_tree.create mem ~height in
  Array.init k (fun _ ctx ->
      match Ratrace.Primary_tree.run tree ctx with
      | Ratrace.Primary_tree.Lost -> 0
      | Ratrace.Primary_tree.Won -> 1
      | Ratrace.Primary_tree.Fell_off leaf -> 100 + leaf)

let test_tree_solo_wins () =
  let sched = Sim.Sched.create (tree_programs ~height:3 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo wins at the root splitter" 1 (Option.get (Sim.Sched.result sched 0))

let test_tree_at_most_one_winner () =
  for seed = 1 to 200 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (tree_programs ~height:4 12 ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 5)));
    let winners =
      Array.fold_left
        (fun a r -> if r = Some 1 then a + 1 else a)
        0 (Sim.Sched.results sched)
    in
    checkb "at most one tree winner" true (winners <= 1)
  done

let test_tree_fell_off_leaf_valid () =
  for seed = 1 to 100 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (tree_programs ~height:2 8 ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 11)));
    Array.iter
      (function
        | Some r when r >= 100 ->
            checkb "leaf index in range" true (r - 100 >= 0 && r - 100 < 4)
        | _ -> ())
      (Sim.Sched.results sched)
  done

let test_tree_ascend_from_leaf_solo () =
  let mem = Sim.Memory.create () in
  let tree = Ratrace.Primary_tree.create mem ~height:3 in
  let prog ctx =
    if Ratrace.Primary_tree.ascend_from_leaf tree ctx ~leaf:2 then 1 else 0
  in
  let sched = Sim.Sched.create [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "external ascender wins an empty tree" 1 (Option.get (Sim.Sched.result sched 0))

let test_tree_space () =
  let mem = Sim.Memory.create () in
  let _ = Ratrace.Primary_tree.create mem ~height:3 in
  (* 15 usable nodes (heap slot 0 unused but allocated): (2^4 - 1 + 1)
     nodes x (2 rsplitter + 4 le3) registers. *)
  checki "registers" 96 (Sim.Memory.allocated mem)

(* {1 Backup grid} *)

let grid_programs ~n k () =
  let mem = Sim.Memory.create () in
  let grid = Ratrace.Backup_grid.create mem ~n in
  Array.init k (fun _ ctx ->
      match Ratrace.Backup_grid.run grid ctx with
      | Ratrace.Backup_grid.Lost -> 0
      | Ratrace.Backup_grid.Won -> 1)

let test_grid_solo_wins () =
  let sched = Sim.Sched.create (grid_programs ~n:4 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo wins at (0,0)" 1 (Option.get (Sim.Sched.result sched 0))

let test_grid_one_winner () =
  List.iter
    (fun (n, k) ->
      for seed = 1 to 100 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (grid_programs ~n k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
        let winners =
          Array.fold_left
            (fun a r -> if r = Some 1 then a + 1 else a)
            0 (Sim.Sched.results sched)
        in
        checki "exactly one grid winner" 1 winners
      done)
    [ (2, 2); (4, 4); (8, 8); (8, 5) ]

let test_grid_nobody_leaves () =
  (* The Moir-Anderson guarantee: k <= n entrants never leave the grid;
     [run] would raise. *)
  for seed = 1 to 200 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (grid_programs ~n:6 6 ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 13)))
  done

(* {1 RatRace variants} *)

let rr_programs make k () =
  let mem = Sim.Memory.create () in
  let elect = make mem in
  Array.init k (fun _ ctx -> if elect ctx then 1 else 0)

let classic_make n mem =
  let rr = Ratrace.Rr_classic.create mem ~n in
  Ratrace.Rr_classic.elect rr

let lean_make n mem =
  let rr = Ratrace.Ratrace_lean.create mem ~n in
  Ratrace.Ratrace_lean.elect rr

let check_one_winner sched =
  let winners =
    Array.fold_left
      (fun a r -> if r = Some 1 then a + 1 else a)
      0 (Sim.Sched.results sched)
  in
  checki "exactly one winner" 1 winners

let test_classic_one_winner () =
  List.iter
    (fun (n, k) ->
      for seed = 1 to 30 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (rr_programs (classic_make n) k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
        check_one_winner sched
      done)
    [ (2, 2); (4, 4); (8, 8); (16, 16) ]

let test_classic_solo () =
  let sched = Sim.Sched.create (rr_programs (classic_make 8) 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo wins" 1 (Option.get (Sim.Sched.result sched 0))

let test_classic_exhaustive_2 () =
  let n =
    Sim.Explore.explore ~depth:8 ~programs:(rr_programs (classic_make 2) 2)
      ~check:(fun sched ->
        let winners =
          Array.fold_left
            (fun a r -> if r = Some 1 then a + 1 else a)
            0 (Sim.Sched.results sched)
        in
        if winners > 1 then Alcotest.fail "two winners";
        if
          Array.for_all Option.is_some (Sim.Sched.results sched)
          && winners <> 1
        then Alcotest.fail "no winner")
      ()
  in
  checkb "explored" true (n > 200)

let test_classic_crash_exhaustive_2 () =
  (* Every bounded crash schedule (one crash anywhere in the first 7
     choices) keeps at-most-one-winner through the full RatRace stack. *)
  let n =
    Sim.Explore.explore ~depth:7 ~max_crashes:1
      ~programs:(rr_programs (classic_make 2) 2)
      ~check:(fun sched ->
        let winners =
          Array.fold_left
            (fun a r -> if r = Some 1 then a + 1 else a)
            0 (Sim.Sched.results sched)
        in
        if winners > 1 then Alcotest.fail "two winners";
        if
          Array.for_all Option.is_some (Sim.Sched.results sched)
          && winners <> 1
        then Alcotest.fail "no winner")
      ()
  in
  checkb "explored" true (n > 200)

let test_lean_one_winner () =
  List.iter
    (fun (n, k) ->
      for seed = 1 to 30 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (rr_programs (lean_make n) k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
        check_one_winner sched
      done)
    [ (2, 2); (4, 4); (8, 8); (16, 16); (64, 64); (64, 17) ]

let test_lean_solo () =
  let sched = Sim.Sched.create (rr_programs (lean_make 8) 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo wins" 1 (Option.get (Sim.Sched.result sched 0))

let test_lean_exhaustive_2 () =
  let n =
    Sim.Explore.explore ~depth:8 ~programs:(rr_programs (lean_make 2) 2)
      ~check:(fun sched ->
        let winners =
          Array.fold_left
            (fun a r -> if r = Some 1 then a + 1 else a)
            0 (Sim.Sched.results sched)
        in
        if winners > 1 then Alcotest.fail "two winners";
        if
          Array.for_all Option.is_some (Sim.Sched.results sched)
          && winners <> 1
        then Alcotest.fail "no winner")
      ()
  in
  checkb "explored" true (n > 200)

let test_lean_crash_safety () =
  for seed = 1 to 150 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (rr_programs (lean_make 16) 16 ())
    in
    let adv =
      Sim.Adversary.random_crashes ~seed:(Int64.of_int (seed * 7)) ~crash_prob:0.02
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)))
    in
    Sim.Sched.run sched adv;
    let winners =
      Array.fold_left
        (fun a r -> if r = Some 1 then a + 1 else a)
        0 (Sim.Sched.results sched)
    in
    checkb "at most one winner" true (winners <= 1)
  done

let test_lean_backup_rarely_entered () =
  (* Claim 3.2 (w.h.p. no elimination path overflows): runs in which any
     process even touches the length-n backup path must be rare. Backup
     usage is detected from the trace via the ".backup" register names. *)
  let n = 64 in
  let trials = 25 in
  let touched = ref 0 in
  for seed = 1 to trials do
    let mem = Sim.Memory.create () in
    let rr = Ratrace.Ratrace_lean.create mem ~n in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) ~record_trace:true
        (Array.init n (fun _ ctx ->
             if Ratrace.Ratrace_lean.elect rr ctx then 1 else 0))
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
    let used_backup =
      List.exists
        (function
          | Sim.Op.Step { reg_name; _ } ->
              (* ".backup" occurs in the name *)
              let sub = ".backup" in
              let rec find i =
                i + String.length sub <= String.length reg_name
                && (String.sub reg_name i (String.length sub) = sub
                   || find (i + 1))
              in
              find 0
          | _ -> false)
        (Sim.Sched.trace sched)
    in
    if used_backup then incr touched
  done;
  checkb
    (Printf.sprintf "backup path touched in %d/%d runs (expect few)" !touched
       trials)
    true
    (!touched <= trials / 3)

let test_space_lean_vs_classic () =
  (* The point of Section 3: Theta(n) vs Theta(n^3). *)
  let alloc make =
    let mem = Sim.Memory.create () in
    ignore (make mem);
    Sim.Memory.allocated mem
  in
  let lean16 = alloc (fun mem -> Ratrace.Ratrace_lean.create mem ~n:16) in
  let lean64 = alloc (fun mem -> Ratrace.Ratrace_lean.create mem ~n:64) in
  let classic16 = alloc (fun mem -> Ratrace.Rr_classic.create mem ~n:16) in
  checkb
    (Printf.sprintf "classic(16)=%d >> lean(16)=%d" classic16 lean16)
    true
    (classic16 > 10 * lean16);
  (* lean is O(n): quadrupling n should grow space by less than ~8x. *)
  checkb
    (Printf.sprintf "lean scales linearly: %d -> %d" lean16 lean64)
    true
    (lean64 < 8 * lean16);
  (* classic is Omega(n^3) from the 2^(3 log n) tree. *)
  checkb "classic(16) cubic-ish" true (classic16 >= 16 * 16 * 16)

let test_lean_space_linear_bound () =
  List.iter
    (fun n ->
      let mem = Sim.Memory.create () in
      ignore (Ratrace.Ratrace_lean.create mem ~n);
      let regs = Sim.Memory.allocated mem in
      checkb
        (Printf.sprintf "lean(%d) = %d <= 60n" n regs)
        true
        (regs <= 60 * n))
    [ 4; 16; 64; 256; 1024 ]

let test_lean_step_complexity_logarithmic () =
  (* Average max steps should grow roughly like log k: compare k=4 vs
     k=256 — the ratio must stay well below linear. *)
  let avg k =
    let total = ref 0 in
    let trials = 30 in
    for seed = 1 to trials do
      let sched =
        Sim.Sched.create ~seed:(Int64.of_int seed) (rr_programs (lean_make 256) k ())
      in
      Sim.Sched.run sched
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
      total := !total + Sim.Sched.max_steps sched
    done;
    float_of_int !total /. float_of_int trials
  in
  let a4 = avg 4 and a256 = avg 256 in
  checkb
    (Printf.sprintf "sublinear growth: %.1f -> %.1f" a4 a256)
    true
    (a256 < a4 *. 8.0)

let () =
  Alcotest.run "ratrace"
    [
      ( "elim-path",
        [
          Alcotest.test_case "solo wins" `Quick test_ep_solo_wins;
          Alcotest.test_case "claim 3.1" `Quick test_ep_claim_3_1;
          Alcotest.test_case "exhaustive" `Quick test_ep_exhaustive;
          Alcotest.test_case "overflow beyond capacity" `Quick test_ep_overflow_possible;
          Alcotest.test_case "space" `Quick test_ep_space;
        ] );
      ( "primary-tree",
        [
          Alcotest.test_case "solo wins" `Quick test_tree_solo_wins;
          Alcotest.test_case "at most one winner" `Quick test_tree_at_most_one_winner;
          Alcotest.test_case "fell-off leaves valid" `Quick test_tree_fell_off_leaf_valid;
          Alcotest.test_case "ascend from leaf" `Quick test_tree_ascend_from_leaf_solo;
          Alcotest.test_case "space" `Quick test_tree_space;
        ] );
      ( "backup-grid",
        [
          Alcotest.test_case "solo wins" `Quick test_grid_solo_wins;
          Alcotest.test_case "exactly one winner" `Quick test_grid_one_winner;
          Alcotest.test_case "nobody leaves" `Quick test_grid_nobody_leaves;
        ] );
      ( "ratrace",
        [
          Alcotest.test_case "classic: one winner" `Quick test_classic_one_winner;
          Alcotest.test_case "classic: solo" `Quick test_classic_solo;
          Alcotest.test_case "classic: exhaustive n=2" `Quick test_classic_exhaustive_2;
          Alcotest.test_case "classic: exhaustive crash schedules" `Quick
            test_classic_crash_exhaustive_2;
          Alcotest.test_case "lean: one winner" `Quick test_lean_one_winner;
          Alcotest.test_case "lean: solo" `Quick test_lean_solo;
          Alcotest.test_case "lean: exhaustive n=2" `Quick test_lean_exhaustive_2;
          Alcotest.test_case "lean: crash safety" `Quick test_lean_crash_safety;
          Alcotest.test_case "lean: backup rarely entered (claim 3.2)" `Quick
            test_lean_backup_rarely_entered;
          Alcotest.test_case "space: lean vs classic" `Quick test_space_lean_vs_classic;
          Alcotest.test_case "space: lean is O(n)" `Quick test_lean_space_linear_bound;
          Alcotest.test_case "steps: lean is O(log k)" `Quick
            test_lean_step_complexity_logarithmic;
        ] );
    ]
