(** Chaos stress harness for the real-multicore ([Atomic]/[Domain]) TAS
    implementations, watchdog-wrapped.

    Real domains cannot be crashed mid-operation, so the fault model is
    {e crash-before-invoke}: each participant independently fails to
    show up with the given probability (at least one always invokes),
    and the survivors' TAS calls race on true parallel domains with the
    OS scheduler as the adversary. A participant that never invoked can
    never have taken effect, so the safety check is strict: exactly one
    of the invokers must return 0. This exercises the
    solo-termination/wait-freedom side of the paper's fault model — the
    structure must elect a winner among whoever shows up. *)

type report = {
  impl : string;
  crash_prob : float;
  trials : int;
  participants : int;  (** Invoking participants, summed over trials. *)
  crashed_participants : int;
      (** Participants that crashed before invoking, summed. *)
  violations : int;
  timeouts : int;
  failure_seeds : int64 list;
  max_elapsed : float;
}

val impl_names : unit -> string list
(** The {!Multicore.Mc_tas} constructions under test: every
    {!Rtas.Registry} entry with a multicore backend ([make_mc]), plus
    the [Atomic.exchange]-based native reference. *)

val run_point :
  ?timeout:float ->
  ?retries:int ->
  impl:string ->
  k:int ->
  crash_prob:float ->
  trials:int ->
  seed:int64 ->
  unit ->
  report
(** [trials] trials of one implementation sized for [k] participants at
    one crash probability. Watchdog default timeout: 10s (domain spawn
    is slow relative to simulation). Raises [Invalid_argument] on an
    unknown implementation name. *)

val sweep :
  ?timeout:float ->
  ?retries:int ->
  ?impls:string list ->
  k:int ->
  probs:float list ->
  trials:int ->
  seed:int64 ->
  unit ->
  report list

val pp_report : report Fmt.t
(** Same column layout as {!Chaos.pp_report} (mode column reads [mc];
    the steps column reports mean invokers per trial). *)
