(** Declarative fault plans.

    A fault plan is a description of the failures an execution should
    suffer — targeted crashes, probabilistic crash storms, stall
    windows, a global halt — that {!apply} compiles onto any base
    {!Sim.Sched.adversary}. It unifies and supersedes the ad-hoc
    {!Sim.Adversary.with_crashes} and {!Sim.Adversary.random_crashes}
    wrappers: those remain as thin conveniences, but every fault shape
    they express (and several they cannot) is one [action] here.

    Fault model: the paper's algorithms are wait-free / solo-
    terminating, so correctness must survive up to [n-1] crash faults at
    arbitrary points. Storms therefore default to a budget of [n-1]
    (never crashing the last runnable process); targeted crashes are
    under the test author's control and may kill everyone. *)

type action =
  | Crash_after of { pid : int; steps : int }
      (** Crash [pid] once it has taken [steps] shared-memory steps
          (what {!Sim.Adversary.with_crashes} expresses). *)
  | Crash_at of { pid : int; time : int }
      (** Crash [pid] at the first decision at or after global time
          [time]. *)
  | Storm of { prob : float; max_crashes : int option }
      (** Before each decision, crash a uniformly chosen runnable
          process with probability [prob]. Never crashes the last
          runnable process; injects at most [max_crashes] crashes
          (default: one fewer than the processes runnable at the
          storm's first decision — the paper's [n-1] fault model). *)
  | Stall of { pid : int; from_time : int; until_time : int }
      (** Hide [pid] from the base adversary while the global time is
          in [[from_time, until_time)]. Best-effort: if every runnable
          process is stalled the window is ignored (a stall is a delay,
          never a deadlock). *)
  | Halt_at of { time : int }
      (** Crash every running process at the first decision at or
          after global time [time]. *)

type t = action list

val crash_after : pid:int -> steps:int -> action
val crash_at : pid:int -> time:int -> action
val storm : ?max_crashes:int -> float -> action
val stall : pid:int -> from_time:int -> until_time:int -> action
val halt_at : int -> action

val apply : ?seed:int64 -> t -> Sim.Sched.adversary -> Sim.Sched.adversary
(** Compile the plan onto a base adversary. Decision order per step:
    a due [Halt_at] halts; else a due targeted crash fires (in plan
    order); else each [Storm] draws (using a dedicated RNG seeded with
    [seed], so fault timing is reproducible and independent of the base
    adversary's randomness); else the base adversary decides, seeing a
    view with stalled processes filtered out of [runnable]. The wrapper
    keeps the base adversary's class. *)

val pp : t Fmt.t

val to_string : t -> string
(** Compact round-trippable syntax, e.g.
    ["crash:2@5,storm:0.02@3,stall:0@10-40,halt@200"]. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} syntax: comma-separated actions of the forms
    [crash:<pid>@<steps>], [crashat:<pid>@<time>],
    [storm:<prob>], [storm:<prob>@<max_crashes>],
    [stall:<pid>@<from>-<until>], [halt@<time>]. *)
