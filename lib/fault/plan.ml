type action =
  | Crash_after of { pid : int; steps : int }
  | Crash_at of { pid : int; time : int }
  | Storm of { prob : float; max_crashes : int option }
  | Stall of { pid : int; from_time : int; until_time : int }
  | Halt_at of { time : int }

type t = action list

let crash_after ~pid ~steps = Crash_after { pid; steps }
let crash_at ~pid ~time = Crash_at { pid; time }
let storm ?max_crashes prob = Storm { prob; max_crashes }
let stall ~pid ~from_time ~until_time = Stall { pid; from_time; until_time }
let halt_at time = Halt_at { time }

let pp_action ppf = function
  | Crash_after { pid; steps } -> Fmt.pf ppf "crash:%d@%d" pid steps
  | Crash_at { pid; time } -> Fmt.pf ppf "crashat:%d@%d" pid time
  | Storm { prob; max_crashes = None } -> Fmt.pf ppf "storm:%g" prob
  | Storm { prob; max_crashes = Some m } -> Fmt.pf ppf "storm:%g@%d" prob m
  | Stall { pid; from_time; until_time } ->
      Fmt.pf ppf "stall:%d@%d-%d" pid from_time until_time
  | Halt_at { time } -> Fmt.pf ppf "halt@%d" time

let pp = Fmt.(list ~sep:comma pp_action)
let to_string t = Fmt.str "%a" pp t

let action_of_string s =
  let fail () = Error (Printf.sprintf "cannot parse fault action %S" s) in
  let int_opt x = int_of_string_opt (String.trim x) in
  let float_opt x = float_of_string_opt (String.trim x) in
  match String.index_opt s ':' with
  | None -> (
      match String.split_on_char '@' s with
      | [ "halt"; t ] -> (
          match int_opt t with
          | Some time -> Ok (Halt_at { time })
          | None -> fail ())
      | _ -> fail ())
  | Some i -> (
      let head = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match (head, String.split_on_char '@' rest) with
      | "crash", [ pid; steps ] -> (
          match (int_opt pid, int_opt steps) with
          | Some pid, Some steps -> Ok (Crash_after { pid; steps })
          | _ -> fail ())
      | "crashat", [ pid; time ] -> (
          match (int_opt pid, int_opt time) with
          | Some pid, Some time -> Ok (Crash_at { pid; time })
          | _ -> fail ())
      | "storm", [ prob ] -> (
          match float_opt prob with
          | Some prob -> Ok (Storm { prob; max_crashes = None })
          | None -> fail ())
      | "storm", [ prob; m ] -> (
          match (float_opt prob, int_opt m) with
          | Some prob, Some m -> Ok (Storm { prob; max_crashes = Some m })
          | _ -> fail ())
      | "stall", [ pid; window ] -> (
          match (int_opt pid, String.split_on_char '-' window) with
          | Some pid, [ f; u ] -> (
              match (int_opt f, int_opt u) with
              | Some from_time, Some until_time ->
                  Ok (Stall { pid; from_time; until_time })
              | _ -> fail ())
          | _ -> fail ())
      | _ -> fail ())

let of_string s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc part ->
      match (acc, action_of_string part) with
      | Ok actions, Ok a -> Ok (a :: actions)
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e)
    (Ok []) parts
  |> Result.map List.rev

let runnable_mem runnable pid = Array.exists (fun p -> p = pid) runnable

(* The compiled wrapper keeps per-plan mutable state: one-shot crash
   actions still pending, the storm's crash budget (computed lazily so
   the n-1 default can observe the actual number of processes), and the
   total number of crashes injected so far (shared across actions, so a
   plan as a whole also respects the tightest storm bound before the
   last runnable process would die). *)
let apply ?(seed = 0xFA17L) (plan : t) (adv : Sim.Sched.adversary) =
  let rng = Sim.Rng.create seed in
  let oneshots =
    ref
      (List.filter
         (function Crash_after _ | Crash_at _ -> true | _ -> false)
         plan)
  in
  let storms =
    List.filter_map
      (function
        | Storm { prob; max_crashes } -> Some (prob, max_crashes, ref None)
        | _ -> None)
      plan
  in
  let stalls =
    List.filter_map
      (function
        | Stall { pid; from_time; until_time } ->
            Some (pid, from_time, until_time)
        | _ -> None)
      plan
  in
  let halts =
    List.filter_map (function Halt_at { time } -> Some time | _ -> None) plan
  in
  let decide (view : Sim.Sched.view) =
    let now = view.Sim.Sched.view_time in
    if List.exists (fun t -> now >= t) halts then Sim.Sched.Halt
    else begin
      let m = Array.length view.Sim.Sched.runnable in
      (* 1. Due one-shot crashes (in plan order). *)
      let due =
        List.find_opt
          (fun a ->
            match a with
            | Crash_after { pid; steps } ->
                runnable_mem view.Sim.Sched.runnable pid
                && (view.Sim.Sched.pending_of pid).Sim.Sched.view_steps >= steps
            | Crash_at { pid; time } ->
                runnable_mem view.Sim.Sched.runnable pid && now >= time
            | _ -> false)
          !oneshots
      in
      match due with
      | Some (Crash_after { pid; _ } as a) | Some (Crash_at { pid; _ } as a) ->
          oneshots := List.filter (fun a' -> a' != a) !oneshots;
          Sim.Sched.Crash_proc pid
      | Some _ | None -> (
          (* 2. Crash storms: a uniformly chosen runnable victim with the
             storm's probability, never the last runnable process, and
             never beyond the storm's budget (default n-1, where n is the
             runnable count at the storm's first decision). *)
          let struck =
            List.find_map
              (fun (prob, max_crashes, budget) ->
                let left =
                  match !budget with
                  | Some left -> left
                  | None ->
                      let left =
                        match max_crashes with
                        | Some c -> c
                        | None -> max 0 (m - 1)
                      in
                      budget := Some left;
                      left
                in
                if left > 0 && m > 1 && Sim.Rng.float rng < prob then begin
                  budget := Some (left - 1);
                  Some view.Sim.Sched.runnable.(Sim.Rng.int rng m)
                end
                else None)
              storms
          in
          match struck with
          | Some pid -> Sim.Sched.Crash_proc pid
          | None ->
              (* 3. Stall windows: hide stalled processes from the base
                 adversary, unless that would leave it nothing to
                 schedule (stalling is a delay, never a deadlock). *)
              let stalled pid =
                List.exists
                  (fun (p, from_t, until_t) ->
                    p = pid && now >= from_t && now < until_t)
                  stalls
              in
              let filtered =
                Array.of_seq
                  (Seq.filter
                     (fun pid -> not (stalled pid))
                     (Array.to_seq view.Sim.Sched.runnable))
              in
              let view' =
                if Array.length filtered = 0 || Array.length filtered = m then
                  view
                else { view with Sim.Sched.runnable = filtered }
              in
              adv.Sim.Sched.decide view')
    end
  in
  {
    Sim.Sched.adv_name = adv.Sim.Sched.adv_name ^ "+fault";
    adv_klass = adv.Sim.Sched.adv_klass;
    decide;
  }
