type report = {
  impl : string;
  crash_prob : float;
  trials : int;
  participants : int;
  crashed_participants : int;
  violations : int;
  timeouts : int;
  failure_seeds : int64 list;
  max_elapsed : float;
}

(* Every registry algorithm with a multicore backend, wrapped into a
   TAS, plus the Atomic.exchange reference. Adding a backend to a
   registry entry automatically puts it under chaos. *)
let impls =
  List.filter_map
    (fun (e : Rtas.Registry.entry) ->
      Option.map
        (fun make_mc ->
          (e.Rtas.Registry.name, fun ~k -> Multicore.Mc_tas.of_le (make_mc ~n:k)))
        e.Rtas.Registry.make_mc)
    Rtas.Registry.all
  @ [ ("native", fun ~k:_ -> Multicore.Mc_tas.native ()) ]

let impl_names () = List.map fst impls

let state_of_seed seed salt =
  Random.State.make
    [|
      Int64.to_int (Int64.logand seed 0x3FFFFFFFL);
      Int64.to_int (Int64.shift_right_logical seed 30);
      salt;
    |]

(* One multicore chaos trial. A "crash" of a real domain cannot be
   injected mid-operation (domains cannot be preempted), so the fault
   model is crash-before-invoke: each participant independently fails
   to show up with probability [crash_prob] (at least one always
   invokes). The survivors' TAS calls then race on real domains under
   the OS scheduler; safety demands exactly one 0 among them — a
   crashed participant that never invoked can never be the phantom
   winner, so survivors-all-1 is a violation here, unlike in the
   simulator's mid-operation crash model. *)
let trial ~make ~k ~crash_prob ~seed =
  let rng = state_of_seed seed 0x5EED in
  let invokes = Array.init k (fun _ -> Random.State.float rng 1.0 >= crash_prob) in
  if not (Array.exists Fun.id invokes) then
    invokes.(Random.State.int rng k) <- true;
  let tas = make ~k in
  let domains =
    List.init k (fun slot ->
        if invokes.(slot) then
          Some
            (Domain.spawn (fun () ->
                 let rng = state_of_seed seed (0x7919 * (slot + 1)) in
                 Multicore.Mc_tas.apply tas rng ~slot))
        else None)
  in
  let results = List.filter_map (Option.map Domain.join) domains in
  let invokers = List.length results in
  let zeros = List.length (List.filter (fun r -> r = 0) results) in
  let violation =
    if zeros <> 1 then
      Some
        (Printf.sprintf "%d of %d invokers returned 0 (expected exactly 1)"
           zeros invokers)
    else None
  in
  (invokers, k - invokers, violation)

let run_point ?(timeout = 10.0) ?(retries = 2) ~impl ~k ~crash_prob ~trials
    ~seed () =
  let make =
    match List.assoc_opt impl impls with
    | Some make -> make
    | None ->
        invalid_arg
          (Printf.sprintf "unknown multicore TAS %S (expected one of: %s)" impl
             (String.concat ", " (impl_names ())))
  in
  let seeds = Sim.Rng.create (Int64.logxor seed 0x3C0FFEEL) in
  let participants = ref 0 in
  let crashed = ref 0 in
  let violations = ref 0 in
  let timeouts = ref 0 in
  let failure_seeds = ref [] in
  let max_elapsed = ref 0.0 in
  for _ = 1 to trials do
    let trial_seed = Sim.Rng.next seeds in
    match
      Watchdog.run ~timeout ~retries ~seed:trial_seed (fun ~seed ->
          trial ~make ~k ~crash_prob ~seed)
    with
    | Ok { value = invokers, crashes, violation; seed_used; elapsed; _ } ->
        participants := !participants + invokers;
        crashed := !crashed + crashes;
        if elapsed > !max_elapsed then max_elapsed := elapsed;
        (match violation with
        | Some _ ->
            incr violations;
            failure_seeds := seed_used :: !failure_seeds
        | None -> ())
    | Error f ->
        incr timeouts;
        failure_seeds := f.Watchdog.seeds_tried @ !failure_seeds
  done;
  {
    impl;
    crash_prob;
    trials;
    participants = !participants;
    crashed_participants = !crashed;
    violations = !violations;
    timeouts = !timeouts;
    failure_seeds = List.rev !failure_seeds;
    max_elapsed = !max_elapsed;
  }

let sweep ?(timeout = 10.0) ?(retries = 2) ?impls:(names = impl_names ()) ~k
    ~probs ~trials ~seed () =
  List.concat_map
    (fun impl ->
      List.map
        (fun crash_prob ->
          run_point ~timeout ~retries ~impl ~k ~crash_prob ~trials ~seed ())
        probs)
    names

let pp_report ppf r =
  Fmt.pf ppf "%-14s %-4s %6.3f %7d %8d %8d %9d %10.1f" r.impl "mc"
    r.crash_prob r.trials r.crashed_participants r.timeouts r.violations
    (if r.trials = 0 then 0.0
     else float_of_int r.participants /. float_of_int r.trials)
