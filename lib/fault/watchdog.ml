type reason = Timed_out of float | Raised of string

type failure = {
  attempts : int;
  seeds_tried : int64 list;
  last_reason : reason;
}

type 'a success = {
  value : 'a;
  seed_used : int64;
  attempt : int;
  elapsed : float;
}

let pp_reason ppf = function
  | Timed_out s -> Fmt.pf ppf "timed out after %.2fs" s
  | Raised msg -> Fmt.pf ppf "raised %s" msg

let pp_failure ppf f =
  Fmt.pf ppf "%d attempt%s (seeds %a): %a" f.attempts
    (if f.attempts = 1 then "" else "s")
    Fmt.(list ~sep:comma int64)
    f.seeds_tried pp_reason f.last_reason

(* Deterministic seed rotation: attempt 0 uses the caller's seed, later
   attempts draw from a splitmix stream derived from it, so a failing
   seed is always reported and the retry sequence is reproducible. *)
let rotate base =
  let stream = Sim.Rng.create (Int64.logxor base 0xDA7AD06_5EEDL) in
  fun attempt -> if attempt = 0 then base else Sim.Rng.next stream

let run ?(timeout = 5.0) ?(retries = 2) ~seed f =
  let next_seed = rotate seed in
  let rec attempt k seeds_tried =
    let s = next_seed k in
    let seeds_tried = s :: seeds_tried in
    let t0 = Unix.gettimeofday () in
    let outcome =
      match f ~seed:s with v -> Ok v | exception e -> Error (Printexc.to_string e)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let failed reason =
      if k < retries then attempt (k + 1) seeds_tried
      else
        Error
          {
            attempts = k + 1;
            seeds_tried = List.rev seeds_tried;
            last_reason = reason;
          }
    in
    match outcome with
    | Ok value ->
        if elapsed > timeout then failed (Timed_out elapsed)
        else Ok { value; seed_used = s; attempt = k; elapsed }
    | Error msg -> failed (Raised msg)
  in
  attempt 0 []
