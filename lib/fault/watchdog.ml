type reason = Timed_out of float | Raised of string

type failure = {
  attempts : int;
  seeds_tried : int64 list;
  last_reason : reason;
}

type 'a success = {
  value : 'a;
  seed_used : int64;
  attempt : int;
  elapsed : float;
}

let pp_reason ppf = function
  | Timed_out s -> Fmt.pf ppf "timed out after %.2fs" s
  | Raised msg -> Fmt.pf ppf "raised %s" msg

let pp_failure ppf f =
  Fmt.pf ppf "%d attempt%s (seeds %a): %a" f.attempts
    (if f.attempts = 1 then "" else "s")
    Fmt.(list ~sep:comma int64)
    f.seeds_tried pp_reason f.last_reason

(* Deterministic seed rotation: attempt 0 uses the caller's seed, later
   attempts draw from a splitmix stream derived from it, so a failing
   seed is always reported and the retry sequence is reproducible. *)
let rotate base =
  let stream = Sim.Rng.create (Int64.logxor base 0xDA7AD06_5EEDL) in
  fun attempt -> if attempt = 0 then base else Sim.Rng.next stream

type domain_progress = {
  dp_index : int;
  dp_label : string;
  dp_finished : bool;
  dp_progress : int;
}

type stuck = {
  stuck_elapsed : float;
  stuck_progress : domain_progress list;
}

let pp_stuck ppf s =
  let finished, running =
    List.partition (fun d -> d.dp_finished) s.stuck_progress
  in
  Fmt.pf ppf "stuck after %.2fs (%d/%d domains finished):" s.stuck_elapsed
    (List.length finished)
    (List.length s.stuck_progress);
  List.iter
    (fun d ->
      Fmt.pf ppf "@ [%d] %s RUNNING (progress %d)" d.dp_index d.dp_label
        d.dp_progress)
    running

let race ?(poll_s = 0.002) ?(timeout = 10.0) ?(progress = fun _ -> 0)
    ?(label = fun i -> Printf.sprintf "domain %d" i) ~n f =
  if n < 1 then invalid_arg "Watchdog.race: n must be >= 1";
  (* Each slot is written by its own domain and published by the SC
     write of its done-flag; the monitor reads the flag before the
     slot, so no lock is needed. *)
  let results = Array.make n None in
  let flags = Array.init n (fun _ -> Atomic.make false) in
  let domains =
    Array.init n (fun i ->
        Domain.spawn (fun () ->
            let r = match f i with v -> Ok v | exception e -> Error e in
            results.(i) <- Some r;
            Atomic.set flags.(i) true))
  in
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    if Array.for_all Atomic.get flags then true
    else if Unix.gettimeofday () -. t0 >= timeout then false
    else begin
      Unix.sleepf poll_s;
      wait ()
    end
  in
  if wait () then begin
    Array.iter Domain.join domains;
    let values =
      Array.map
        (function
          | Some (Ok v) -> v
          | Some (Error e) -> raise e
          | None -> assert false)
        results
    in
    Ok values
  end
  else
    Error
      {
        stuck_elapsed = Unix.gettimeofday () -. t0;
        stuck_progress =
          List.init n (fun i ->
              {
                dp_index = i;
                dp_label = label i;
                dp_finished = Atomic.get flags.(i);
                dp_progress = progress i;
              });
      }

let run ?(timeout = 5.0) ?(retries = 2) ~seed f =
  let next_seed = rotate seed in
  let rec attempt k seeds_tried =
    let s = next_seed k in
    let seeds_tried = s :: seeds_tried in
    let t0 = Unix.gettimeofday () in
    let outcome =
      match f ~seed:s with v -> Ok v | exception e -> Error (Printexc.to_string e)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let failed reason =
      if k < retries then attempt (k + 1) seeds_tried
      else
        Error
          {
            attempts = k + 1;
            seeds_tried = List.rev seeds_tried;
            last_reason = reason;
          }
    in
    match outcome with
    | Ok value ->
        if elapsed > timeout then failed (Timed_out elapsed)
        else Ok { value; seed_used = s; attempt = k; elapsed }
    | Error msg -> failed (Raised msg)
  in
  attempt 0 []
