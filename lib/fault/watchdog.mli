(** Watchdog-wrapped trial execution: per-trial wall-clock timeout,
    bounded retry with deterministic seed rotation, failure-seed
    reporting.

    The chaos harness runs thousands of randomized trials, some across
    real domains where the OS scheduler is the adversary. A trial that
    raises or takes suspiciously long is retried a bounded number of
    times with rotated seeds; the seeds tried are reported on failure so
    any outcome can be reproduced.

    OCaml domains cannot be preempted, so the timeout is detect-and-
    report: a trial that overruns is recorded as [Timed_out] once it
    returns (in-simulator runs additionally get hard in-run preemption
    from [Sched.run]'s [max_total_steps] budget). All algorithms under
    test are wait-free, so a trial that never returns is itself a bug —
    of the harness or of a multicore implementation — and shows up as a
    hung process rather than being silently swallowed. *)

type reason = Timed_out of float | Raised of string

type failure = {
  attempts : int;  (** Attempts made (1 + retries used). *)
  seeds_tried : int64 list;  (** In attempt order; reproduce with these. *)
  last_reason : reason;
}

type 'a success = {
  value : 'a;
  seed_used : int64;  (** The seed of the successful attempt. *)
  attempt : int;  (** 0 for first-try success. *)
  elapsed : float;  (** Wall-clock seconds of the successful attempt. *)
}

val pp_reason : reason Fmt.t
val pp_failure : failure Fmt.t

val run :
  ?timeout:float ->
  ?retries:int ->
  seed:int64 ->
  (seed:int64 -> 'a) ->
  ('a success, failure) result
(** [run ~seed f] calls [f ~seed]; if it raises or exceeds [timeout]
    (default 5s) wall-clock, retries with deterministically rotated
    seeds up to [retries] (default 2) more times. Attempt 0 always uses
    the caller's [seed], so a clean first run is exactly reproducible. *)

(** {1 Monitored domain races}

    {!run} can only notice an overrun after the trial returns, which is
    no help against a genuinely stuck multi-domain run: a livelocked
    [Atomic_mem] race hangs [Domain.join] forever and takes [make
    check] down with it. {!race} closes that hole — it spawns the
    contending domains itself, polls per-domain completion flags, and
    after [timeout] gives up {e without joining}, returning a
    per-domain progress diagnosis instead of hanging. The stuck domains
    are leaked (OCaml domains cannot be cancelled); callers are
    expected to report and exit, which tears the process down. *)

type domain_progress = {
  dp_index : int;  (** Spawn index, [0 .. n-1]. *)
  dp_label : string;
  dp_finished : bool;  (** Had this domain completed at the timeout? *)
  dp_progress : int;
      (** Caller-supplied progress counter (e.g. attempts made) read at
          the timeout; 0 when no [progress] callback was given. *)
}

type stuck = {
  stuck_elapsed : float;  (** Seconds waited before giving up. *)
  stuck_progress : domain_progress list;  (** One entry per domain. *)
}

val pp_stuck : stuck Fmt.t
(** ["stuck after 10.00s: [1] domain 1 RUNNING (progress 42); ..."] —
    only unfinished domains are listed, finished ones are summarised. *)

val race :
  ?poll_s:float ->
  ?timeout:float ->
  ?progress:(int -> int) ->
  ?label:(int -> string) ->
  n:int ->
  (int -> 'a) ->
  ('a array, stuck) result
(** [race ~n f] spawns [n] domains evaluating [f 0 .. f (n-1)] and
    waits for all of them, polling every [poll_s] (default 2ms) seconds
    up to [timeout] (default 10s) wall-clock. On completion returns the
    results in spawn order (joining the — now finished — domains); if
    any [f i] raised, the first exception in spawn order is re-raised
    after all domains finish. On timeout returns the diagnosis and
    leaks the unfinished domains. *)
