(** Watchdog-wrapped trial execution: per-trial wall-clock timeout,
    bounded retry with deterministic seed rotation, failure-seed
    reporting.

    The chaos harness runs thousands of randomized trials, some across
    real domains where the OS scheduler is the adversary. A trial that
    raises or takes suspiciously long is retried a bounded number of
    times with rotated seeds; the seeds tried are reported on failure so
    any outcome can be reproduced.

    OCaml domains cannot be preempted, so the timeout is detect-and-
    report: a trial that overruns is recorded as [Timed_out] once it
    returns (in-simulator runs additionally get hard in-run preemption
    from [Sched.run]'s [max_total_steps] budget). All algorithms under
    test are wait-free, so a trial that never returns is itself a bug —
    of the harness or of a multicore implementation — and shows up as a
    hung process rather than being silently swallowed. *)

type reason = Timed_out of float | Raised of string

type failure = {
  attempts : int;  (** Attempts made (1 + retries used). *)
  seeds_tried : int64 list;  (** In attempt order; reproduce with these. *)
  last_reason : reason;
}

type 'a success = {
  value : 'a;
  seed_used : int64;  (** The seed of the successful attempt. *)
  attempt : int;  (** 0 for first-try success. *)
  elapsed : float;  (** Wall-clock seconds of the successful attempt. *)
}

val pp_reason : reason Fmt.t
val pp_failure : failure Fmt.t

val run :
  ?timeout:float ->
  ?retries:int ->
  seed:int64 ->
  (seed:int64 -> 'a) ->
  ('a success, failure) result
(** [run ~seed f] calls [f ~seed]; if it raises or exceeds [timeout]
    (default 5s) wall-clock, retries with deterministically rotated
    seeds up to [retries] (default 2) more times. Attempt 0 always uses
    the caller's [seed], so a clean first run is exactly reproducible. *)
