(** Chaos runner for the simulated algorithms: sweep crash probabilities
    across LE/TAS implementations, checking unique-winner and (for TAS)
    crash-aware linearizability on every trial, under the watchdog's
    per-trial timeout and seed-rotating retry.

    All randomness derives from the sweep seed, so every reported
    failure seed reproduces its trial exactly. *)

type mode = Le | Tas

val pp_mode : mode Fmt.t

type report = {
  impl : string;  (** Algorithm name (see {!Rtas.Registry.names}). *)
  mode : mode;
  crash_prob : float;
  trials : int;
  crashes : int;  (** Processes crashed, summed over all trials. *)
  violations : int;  (** Trials whose safety check failed. *)
  timeouts : int;  (** Trials abandoned by the watchdog. *)
  failure_seeds : int64 list;
      (** Seeds of violating trials and of every watchdog attempt that
          failed — the reproduction recipe. *)
  max_elapsed : float;  (** Slowest successful trial, seconds. *)
  mean_steps : float;  (** Mean total shared-memory steps per trial. *)
}

val check_tas_outcome : Sim.Sched.t -> string option
(** [None] iff the execution is safe: at most one 0-return, a winner
    whenever every process finished, and the history (with unfinished
    processes' pending calls) is crash-aware linearizable. *)

val check_le_outcome : Sim.Sched.t -> string option
(** [None] iff at most one process was elected, and exactly one
    whenever every process finished. *)

val run_point :
  ?timeout:float ->
  ?retries:int ->
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  ?plan:Plan.t ->
  mode:mode ->
  algorithm:string ->
  n:int ->
  k:int ->
  crash_prob:float ->
  trials:int ->
  seed:int64 ->
  unit ->
  report
(** Run [trials] chaos trials of one algorithm at one crash
    probability: each trial wraps a random-oblivious schedule in a
    {!Plan.Storm} of that probability (budget [n-1]) and applies the
    mode's safety check. [plan] overrides the default storm with an
    explicit fault plan (the [crash_prob] then only labels the report;
    the plan's own actions decide the faults). Trial [t] runs with
    [Sim.Rng.derive seed ~stream:t] on a pool of [domains] (default 1)
    domains via {!Engine.run}; the report, including [failure_seeds],
    is identical for every domain count.

    [metrics] additionally accumulates the point's totals into a Probe
    registry as the counters [chaos.trials], [chaos.crashes],
    [chaos.violations] and [chaos.livelock_timeouts], so chaos results
    aggregate and print through the same [Obs.Metrics] snapshot
    machinery as everything else. *)

val sweep :
  ?timeout:float ->
  ?retries:int ->
  ?domains:int ->
  ?plan:Plan.t ->
  ?mode:mode ->
  algorithms:string list ->
  n:int ->
  k:int ->
  probs:float list ->
  trials:int ->
  seed:int64 ->
  unit ->
  report list
(** The full sweep: one {!run_point} per algorithm per crash
    probability, in order. Default mode: [Tas]. *)

val pp_report : report Fmt.t
(** One fixed-width table row: impl, mode, prob, trials, crashes,
    timeouts, violations, mean steps. *)
