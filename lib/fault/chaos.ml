type mode = Le | Tas

let pp_mode ppf = function
  | Le -> Fmt.string ppf "le"
  | Tas -> Fmt.string ppf "tas"

type report = {
  impl : string;
  mode : mode;
  crash_prob : float;
  trials : int;
  crashes : int;
  violations : int;
  timeouts : int;
  failure_seeds : int64 list;
  max_elapsed : float;
  mean_steps : float;
}

let count_crashed sched =
  let c = ref 0 in
  for pid = 0 to Sim.Sched.n sched - 1 do
    if Sim.Sched.status sched pid = Sim.Sched.Crashed then incr c
  done;
  !c

let count_result sched v =
  Array.fold_left
    (fun acc r -> if r = Some v then acc + 1 else acc)
    0
    (Sim.Sched.results sched)

let all_finished sched =
  Array.for_all Option.is_some (Sim.Sched.results sched)

let check_tas_outcome sched =
  let zeros = count_result sched 0 in
  if zeros > 1 then
    Some (Printf.sprintf "%d processes won the TAS (returned 0)" zeros)
  else if all_finished sched && zeros <> 1 then
    Some "complete execution finished without a TAS winner"
  else if not (Sim.Lincheck.check_tas_sched sched) then
    Some "history is not crash-aware linearizable"
  else None

let check_le_outcome sched =
  let winners = count_result sched 1 in
  if winners > 1 then
    Some (Printf.sprintf "%d processes were elected leader" winners)
  else if all_finished sched && winners <> 1 then
    Some "complete execution finished without a leader"
  else None

(* One chaos trial: the named algorithm under a random-oblivious base
   schedule wrapped in a crash storm, checked for unique-winner and (in
   TAS mode) crash-aware linearizability. *)
let trial ?plan ~mode ~algorithm ~n ~k ~crash_prob ~seed () =
  let base =
    Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive seed ~stream:1)
  in
  let actions =
    match plan with
    | Some p -> p
    | None -> if crash_prob > 0.0 then [ Plan.storm crash_prob ] else []
  in
  let adv = if actions = [] then base else Plan.apply ~seed actions base in
  let outcome =
    match mode with
    | Tas -> Rtas.Election.run_tas ~seed ~adversary:adv ~algorithm ~n ~k ()
    | Le -> Rtas.Election.run ~seed ~adversary:adv ~algorithm ~n ~k ()
  in
  let sched = outcome.Rtas.Election.sched in
  let violation =
    match mode with
    | Tas -> check_tas_outcome sched
    | Le -> check_le_outcome sched
  in
  (count_crashed sched, Sim.Sched.time sched, violation)

let run_point ?(timeout = 5.0) ?(retries = 2) ?(domains = 1) ?metrics ?plan
    ~mode ~algorithm ~n ~k ~crash_prob ~trials ~seed () =
  (* Trials are independent — fan them out over the engine. Trial [t]
     always runs with [Rng.derive seed ~stream:t], and the watchdog
     outcomes are folded below in trial order, so the report (including
     [failure_seeds]) is identical for every domain count. *)
  let outcomes =
    Engine.run ~domains ~trials ~seed (fun ~trial:_ ~seed:trial_seed ->
        Watchdog.run ~timeout ~retries ~seed:trial_seed (fun ~seed ->
            trial ?plan ~mode ~algorithm ~n ~k ~crash_prob ~seed ()))
  in
  let crashes = ref 0 in
  let violations = ref 0 in
  let timeouts = ref 0 in
  let failure_seeds = ref [] in
  let max_elapsed = ref 0.0 in
  let total_steps = ref 0 in
  Array.iter
    (function
      | Ok
          {
            Watchdog.value = c, steps, violation;
            seed_used;
            elapsed;
            _;
          } ->
          crashes := !crashes + c;
          total_steps := !total_steps + steps;
          if elapsed > !max_elapsed then max_elapsed := elapsed;
          (match violation with
          | Some _ ->
              incr violations;
              failure_seeds := seed_used :: !failure_seeds
          | None -> ())
      | Error f ->
          incr timeouts;
          failure_seeds := f.Watchdog.seeds_tried @ !failure_seeds)
    outcomes;
  (* Chaos totals flow into the shared Probe registry next to whatever
     else the caller is counting — same snapshot/merge machinery as the
     per-phase collectors. *)
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.add (Obs.Metrics.counter m "chaos.trials") trials;
      Obs.Metrics.add (Obs.Metrics.counter m "chaos.crashes") !crashes;
      Obs.Metrics.add (Obs.Metrics.counter m "chaos.violations") !violations;
      Obs.Metrics.add (Obs.Metrics.counter m "chaos.livelock_timeouts") !timeouts);
  {
    impl = algorithm;
    mode;
    crash_prob;
    trials;
    crashes = !crashes;
    violations = !violations;
    timeouts = !timeouts;
    failure_seeds = List.rev !failure_seeds;
    max_elapsed = !max_elapsed;
    mean_steps =
      (if trials = 0 then 0.0
       else float_of_int !total_steps /. float_of_int trials);
  }

let sweep ?(timeout = 5.0) ?(retries = 2) ?(domains = 1) ?plan ?(mode = Tas)
    ~algorithms ~n ~k ~probs ~trials ~seed () =
  List.concat_map
    (fun algorithm ->
      List.map
        (fun crash_prob ->
          run_point ~timeout ~retries ~domains ?plan ~mode ~algorithm ~n ~k
            ~crash_prob ~trials ~seed ())
        probs)
    algorithms

let pp_report ppf r =
  Fmt.pf ppf "%-14s %-4s %6.3f %7d %8d %8d %9d %10.1f" r.impl
    (Fmt.str "%a" pp_mode r.mode)
    r.crash_prob r.trials r.crashes r.timeouts r.violations r.mean_steps
