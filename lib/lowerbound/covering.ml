let f ~n k =
  if k < 0 || k > n - 1 then invalid_arg "Covering.f: k out of range";
  let rec go i v = if i >= k then v else go (i + 1) (v - (v / (n - i)) + 1) in
  go 0 n

let delta ~n k1 =
  if k1 < 1 then invalid_arg "Covering.delta: k+1 must be >= 1";
  let k = k1 - 1 in
  (f ~n k / (n - k)) - 1

let interval_of ~n k =
  (* I(s) = [n - n/2^s, n - n/2^(s+1) - 1] *)
  let rec go s =
    let lo = n - (n lsr s) in
    if n lsr (s + 1) = 0 then None
    else
      let hi = n - (n lsr (s + 1)) - 1 in
      if k >= lo && k <= hi then Some s
      else if k < lo then None
      else go (s + 1)
  in
  go 0

let f_closed ~n k =
  match interval_of ~n k with
  | None -> None
  | Some s ->
      (* n (s+1)/2^s - s (k - n + n/2^s) *)
      let pow = 1 lsl s in
      Some ((n * (s + 1) / pow) - (s * (k - n + (n / pow))))

let is_pow2 n = n > 0 && n land (n - 1) = 0

let check_claim_5_5 ~n =
  if not (is_pow2 n && n >= 8) then
    invalid_arg "Covering.check_claim_5_5: n must be a power of two >= 8";
  (* Single incremental pass over the recurrence: recomputing [f ~n k]
     from scratch for every k would be quadratic in n. *)
  let ok = ref true in
  let fk = ref n in
  for k = 0 to n - 4 do
    (match (f_closed ~n k, interval_of ~n k) with
    | Some v, Some s ->
        if v <> !fk then ok := false;
        let drop = (!fk / (n - k)) - 1 in
        if k + 1 <= n - 4 && drop <> s then ok := false
    | _ -> ok := false);
    fk := !fk - (!fk / (n - k)) + 1
  done;
  !ok

let register_lower_bound ~n =
  let v = f ~n (n - 4) in
  (v + 3) / 4

type base_report = {
  poised_writers : int;
  distinct_covered : int;
  finished_early : int;
}

let base_round ~make ~n ~seed =
  let mem = Sim.Memory.create () in
  let le = make mem ~n in
  let sched = Sim.Sched.create ~seed (Leaderelect.Le.programs le ~k:n) in
  (* Step any process whose pending operation is a read; since nobody has
     written yet, each such step is indistinguishable from a solo run.
     Stop when every running process covers a register. *)
  let progress = ref true in
  while !progress do
    progress := false;
    for pid = 0 to n - 1 do
      match Sim.Sched.pending sched pid with
      | Some { Sim.Op.kind = Sim.Op.Read; _ } ->
          Sim.Sched.step sched pid;
          progress := true
      | Some { Sim.Op.kind = Sim.Op.Write _; _ } | None -> ()
    done
  done;
  let covered = Hashtbl.create 64 in
  let poised = ref 0 and finished = ref 0 in
  for pid = 0 to n - 1 do
    match Sim.Sched.pending sched pid with
    | Some { Sim.Op.kind = Sim.Op.Write _; reg } ->
        incr poised;
        Hashtbl.replace covered reg.Sim.Register.id ()
    | Some { Sim.Op.kind = Sim.Op.Read; _ } -> assert false
    | None -> incr finished
  done;
  {
    poised_writers = !poised;
    distinct_covered = Hashtbl.length covered;
    finished_early = !finished;
  }

let written_registers ~make ~n ~seed =
  let mem = Sim.Memory.create () in
  let le = make mem ~n in
  let sched =
    Sim.Sched.create ~seed ~record_trace:true (Leaderelect.Le.programs le ~k:n)
  in
  Sim.Sched.run sched
    (Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive seed ~stream:1));
  let written = Hashtbl.create 64 in
  List.iter
    (function
      | Sim.Op.Step { kind = Sim.Op.Write _; reg; _ } ->
          Hashtbl.replace written reg ()
      | _ -> ())
    (Sim.Sched.trace sched);
  Hashtbl.length written
