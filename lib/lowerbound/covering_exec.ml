type report = {
  rounds : int;
  final_reps : int;
  final_covered : int;
  max_cover : int;
  finished_early : int;
  anomalies : int;
}

let pp_report ppf r =
  Fmt.pf ppf
    "rounds=%d reps=%d covered=%d max_cover=%d finished=%d anomalies=%d"
    r.rounds r.final_reps r.final_covered r.max_cover r.finished_early
    r.anomalies

(* Union-find over pids. *)
module Uf = struct
  let create n = Array.init n (fun i -> i)

  let rec find (t : int array) i = if t.(i) = i then i else find t t.(i)

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then if ra < rb then t.(rb) <- ra else t.(ra) <- rb
end

let run ?(target_cover = 4) ?(max_rounds = 1_000_000) ~make ~n ~seed () =
  let mem = Sim.Memory.create () in
  let le = make mem ~n in
  (* Fixed nondeterminism: a deterministic per-process coin stream.
     Streams 0 and 1 of the run seed belong to the scheduler and the
     adversary, so process coins start at stream 2. *)
  let streams =
    Array.init n (fun pid ->
        Sim.Rng.create (Sim.Rng.derive seed ~stream:(pid + 2)))
  in
  let oracle ~pid ~bound =
    if bound < 0 then Some (Sim.Rng.geometric_capped streams.(pid) (-bound))
    else Some (Sim.Rng.int streams.(pid) bound)
  in
  let sched =
    Sim.Sched.create ~flip_oracle:oracle (Leaderelect.Le.programs le ~k:n)
  in
  let uf = Uf.create n in
  (* One step of [pid], updating group structure from what it saw. *)
  let step pid =
    (match Sim.Sched.pending sched pid with
    | Some { Sim.Op.kind = Sim.Op.Read; reg } ->
        let w = reg.Sim.Register.last_writer in
        if w >= 0 && w <> pid then Uf.union uf pid w
    | _ -> ());
    Sim.Sched.step sched pid
  in
  (* Base case: drive every process to its first pending write. *)
  let rec to_cover pid =
    match Sim.Sched.pending sched pid with
    | Some { Sim.Op.kind = Sim.Op.Read; _ } ->
        step pid;
        to_cover pid
    | Some { Sim.Op.kind = Sim.Op.Write _; _ } | None -> ()
  in
  for pid = 0 to n - 1 do
    to_cover pid
  done;
  (* Representatives: one covering process per group. *)
  let covering pid =
    match Sim.Sched.pending sched pid with
    | Some { Sim.Op.kind = Sim.Op.Write _; reg } -> Some reg.Sim.Register.id
    | _ -> None
  in
  let reps = ref [] in
  let () =
    let seen_groups = Hashtbl.create 64 in
    for pid = 0 to n - 1 do
      if covering pid <> None then begin
        let g = Uf.find uf pid in
        if not (Hashtbl.mem seen_groups g) then begin
          Hashtbl.add seen_groups g ();
          reps := pid :: !reps
        end
      end
    done
  in
  let anomalies = ref 0 in
  let cover_counts () =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun pid ->
        match covering pid with
        | Some reg ->
            Hashtbl.replace tbl reg
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl reg))
        | None -> ())
      !reps;
    tbl
  in
  (* Run the members of the merged group, round-robin, until one is
     poised to write outside [banned]; return it, or None if the whole
     group retired. *)
  let run_group_until_outside members banned =
    let in_banned reg = List.mem reg banned in
    let rec loop guard =
      if guard > 10_000_000 then failwith "Covering_exec: group ran too long";
      let poised =
        List.find_opt
          (fun pid ->
            match covering pid with
            | Some reg -> not (in_banned reg)
            | None -> false)
          (members ())
      in
      match poised with
      | Some pid -> Some pid
      | None ->
          (* Step any runnable member (performing banned writes and reads
             as needed). *)
          let runnable =
            List.filter
              (fun pid -> Sim.Sched.status sched pid = Sim.Sched.Running)
              (members ())
          in
          (match runnable with
          | [] -> None
          | pid :: _ ->
              step pid;
              loop (guard + 1))
    in
    loop 0
  in
  let round_no = ref 0 in
  let continue_ = ref true in
  while !continue_ && !round_no < max_rounds do
    let counts = cover_counts () in
    let m = Hashtbl.fold (fun _ c acc -> max acc c) counts 0 in
    if m <= target_cover || List.length !reps <= 1 then continue_ := false
    else begin
      incr round_no;
      let r_regs =
        Hashtbl.fold (fun reg c acc -> if c = m then reg :: acc else acc) counts []
      in
      let r'_regs =
        Hashtbl.fold
          (fun reg c acc -> if c = m - 1 then reg :: acc else acc)
          counts []
      in
      let banned = r_regs @ r'_regs in
      (* One covering representative per register of R. *)
      let chosen =
        List.filter_map
          (fun reg ->
            List.find_opt (fun pid -> covering pid = Some reg) !reps)
          r_regs
      in
      (* Their groups together form Q; merge them up front (the proof
         treats Q as one set from here on). *)
      (match chosen with
      | first :: rest -> List.iter (fun pid -> Uf.union uf first pid) rest
      | [] -> ());
      let group_of pid = Uf.find uf pid in
      let q_group () =
        match chosen with
        | [] -> []
        | first :: _ ->
            let g = group_of first in
            List.filter (fun pid -> group_of pid = g) (List.init n Fun.id)
      in
      (* Each chosen representative performs its (overwriting) write. *)
      List.iter
        (fun pid ->
          if Sim.Sched.status sched pid = Sim.Sched.Running then step pid)
        chosen;
      (* Run Q until someone covers outside R and R'. *)
      let new_rep = run_group_until_outside q_group banned in
      let removed = chosen in
      reps := List.filter (fun pid -> not (List.mem pid removed)) !reps;
      (match new_rep with
      | Some pid -> reps := pid :: !reps
      | None -> incr anomalies);
      (* Retire representatives whose process finished meanwhile. *)
      reps := List.filter (fun pid -> covering pid <> None) !reps
    end
  done;
  let counts = cover_counts () in
  let finished =
    let c = ref 0 in
    for pid = 0 to n - 1 do
      if Sim.Sched.status sched pid <> Sim.Sched.Running then incr c
    done;
    !c
  in
  {
    rounds = !round_no;
    final_reps = List.length !reps;
    final_covered = Hashtbl.length counts;
    max_cover = Hashtbl.fold (fun _ c acc -> max acc c) counts 0;
    finished_early = finished;
    anomalies = !anomalies;
  }
