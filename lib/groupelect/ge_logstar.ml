let level n =
  let rec ceil_log2 acc v = if v <= 1 then acc else ceil_log2 (acc + 1) ((v + 1) / 2) in
  max 1 (ceil_log2 0 n)

let registers ~n = level n + 2

module Make (M : Backend.Mem.S) = struct
  let create ?(name = "ge") mem ~n =
    let l = level n in
    let r =
      Array.init (l + 1) (fun i ->
          M.alloc mem ~name:(Printf.sprintf "%s.R[%d]" name (i + 1)))
    in
    let flag = M.alloc mem ~name:(name ^ ".flag") in
    let elect ctx =
      M.enter ctx "ge_round";
      let won =
        if M.read ctx flag = 1 then false
        else begin
          M.write ctx flag 1;
          let x = M.flip_geometric ctx l in
          M.write ctx r.(x - 1) 1;
          M.read ctx r.(x) = 0
        end
      in
      M.leave ctx "ge_round";
      won
    in
    { Ge.ge_name = name; elect }
end

include Make (Backend.Sim_mem)
