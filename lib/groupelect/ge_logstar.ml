let level n =
  let rec ceil_log2 acc v = if v <= 1 then acc else ceil_log2 (acc + 1) ((v + 1) / 2) in
  max 1 (ceil_log2 0 n)

let registers ~n = level n + 2

let create ?(name = "ge") mem ~n =
  let l = level n in
  let r =
    Array.init (l + 1) (fun i ->
        Sim.Register.create ~name:(Printf.sprintf "%s.R[%d]" name (i + 1)) mem)
  in
  let flag = Sim.Register.create ~name:(name ^ ".flag") mem in
  let elect ctx =
    let pid = Sim.Ctx.pid ctx in
    Obs.enter ~pid "ge_round";
    let won =
      if Sim.Ctx.read ctx flag = 1 then false
      else begin
        Sim.Ctx.write ctx flag 1;
        let x = Sim.Ctx.flip_geometric ctx l in
        Sim.Ctx.write ctx r.(x - 1) 1;
        Sim.Ctx.read ctx r.(x) = 0
      end
    in
    Obs.leave ~pid "ge_round";
    won
  in
  { Ge.ge_name = name; elect }
