(** Group Election (Section 2.1 of the paper).

    A GroupElect object provides [elect], returning [true] (elected) or
    [false]. If some processes call [elect], at least one gets elected.
    Its quality is its {e performance parameter} [f]: the expected number
    of elected processes when [k] processes participate.

    The record is polymorphic in the execution-context type so the same
    shape serves every {!Backend.Mem.S} backend; {!t} is the simulator
    instantiation almost all call sites use. *)

type 'ctx gen = {
  ge_name : string;
  elect : 'ctx -> bool;  (** At most one call per process. *)
}

type t = Sim.Ctx.t gen
