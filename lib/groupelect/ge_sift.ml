let resolution = 1 lsl 20

module Make (M : Backend.Mem.S) = struct
  let create ?(name = "sift") mem ~write_prob =
    if not (write_prob > 0.0 && write_prob <= 1.0) then
      invalid_arg "Ge_sift.create: write_prob must be in (0, 1]";
    let r = M.alloc mem ~name:(name ^ ".r") in
    let threshold =
      int_of_float (write_prob *. float_of_int resolution)
    in
    let threshold = max 1 threshold in
    let elect ctx =
      M.enter ctx "sift_round";
      let won =
        if M.flip ctx resolution < threshold then begin
          M.write ctx r 1;
          true
        end
        else M.read ctx r = 0
      in
      M.leave ctx "sift_round";
      won
    in
    { Ge.ge_name = name; elect }
end

include Make (Backend.Sim_mem)

let probability_schedule ~n =
  (* The forecast k -> 2 sqrt k + 1 has its fixed point at ~5.83 — that
     constant is the O(1) survivor count sifting converges to — so the
     recursion must stop strictly above it. *)
  let rec build acc k =
    if k <= 8.0 then List.rev acc
    else
      let p = 1.0 /. sqrt k in
      build (p :: acc) ((2.0 *. sqrt k) +. 1.0)
  in
  Array.of_list (build [] (float_of_int n))
