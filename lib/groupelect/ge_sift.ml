let resolution = 1 lsl 20

let create ?(name = "sift") mem ~write_prob =
  if not (write_prob > 0.0 && write_prob <= 1.0) then
    invalid_arg "Ge_sift.create: write_prob must be in (0, 1]";
  let r = Sim.Register.create ~name:(name ^ ".r") mem in
  let threshold =
    int_of_float (write_prob *. float_of_int resolution)
  in
  let threshold = max 1 threshold in
  let elect ctx =
    let pid = Sim.Ctx.pid ctx in
    Obs.enter ~pid "sift_round";
    let won =
      if Sim.Ctx.flip ctx resolution < threshold then begin
        Sim.Ctx.write ctx r 1;
        true
      end
      else Sim.Ctx.read ctx r = 0
    in
    Obs.leave ~pid "sift_round";
    won
  in
  { Ge.ge_name = name; elect }

let probability_schedule ~n =
  (* The forecast k -> 2 sqrt k + 1 has its fixed point at ~5.83 — that
     constant is the O(1) survivor count sifting converges to — so the
     recursion must stop strictly above it. *)
  let rec build acc k =
    if k <= 8.0 then List.rev acc
    else
      let p = 1.0 /. sqrt k in
      build (p :: acc) ((2.0 *. sqrt k) +. 1.0)
  in
  Array.of_list (build [] (float_of_int n))
