(** The Group Election of Figure 1, for the location-oblivious adversary.

    With [l = max 1 (ceil (log2 n))], it uses registers [R[1..l+1]] and a
    [flag] register. A participant that finds the flag set leaves
    immediately; otherwise it sets the flag, draws a random index [x]
    with [Pr(x = i) = 2^-i] (capped at [l]), writes [R[x]], and is
    elected iff [R[x+1]] is still unwritten.

    Lemma 2.2: O(1) steps, O(log n) registers, and performance parameter
    [f(k) <= 2 log2 k + 6] against the location-oblivious adversary
    (the adversary cannot aim at the written cell because it does not
    learn [x] before the write lands). *)

val level : int -> int
(** [level n] is the geometric cap [l = max 1 (ceil (log2 n))]. Exposed
    so alternative kernels can reproduce the draw bit-for-bit. *)

module Make (M : Backend.Mem.S) : sig
  val create : ?name:string -> M.mem -> n:int -> M.ctx Ge.gen
end

val create : ?name:string -> Sim.Memory.t -> n:int -> Ge.t

val registers : n:int -> int
(** Number of registers one instance allocates. *)
