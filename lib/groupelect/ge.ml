type 'ctx gen = {
  ge_name : string;
  elect : 'ctx -> bool;
}

type t = Sim.Ctx.t gen
