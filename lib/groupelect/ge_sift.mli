(** Sifting Group Election (Alistarh and Aspnes, DISC 2011), for the
    R/W-oblivious adversary.

    One shared register. A participant writes it with probability
    [write_prob] (and is elected), or reads it (and is elected iff it
    reads before any write lands). The R/W-oblivious adversary knows the
    register a process will touch but not whether it reads or writes, so
    it cannot selectively delay the writers.

    With [k] participants the expected number elected is at most
    [write_prob * k + 1/write_prob]; choosing [write_prob = 1/sqrt k]
    gives [f(k) ~ 2 sqrt k]. *)

val resolution : int
(** Fixed-point denominator of [write_prob]: a round flips in
    [0, resolution) and writes iff the draw lands below
    [write_prob * resolution] (rounded down, floored at 1). Exposed so
    alternative kernels can reproduce the draw bit-for-bit. *)

module Make (M : Backend.Mem.S) : sig
  val create : ?name:string -> M.mem -> write_prob:float -> M.ctx Ge.gen
end

val create : ?name:string -> Sim.Memory.t -> write_prob:float -> Ge.t

val probability_schedule : n:int -> float array
(** [probability_schedule ~n] is the per-level write probabilities
    [1 / sqrt k_j] for the contention forecast [k_0 = n],
    [k_(j+1) = 2 sqrt k_j + 1], continuing while [k_j > 8] (the forecast's
    fixed point is ~5.83 — the O(1) survivor count sifting converges to).
    Its length is Theta(log log n) — the number of sifting levels needed
    to drive the expected contention to a constant. *)
