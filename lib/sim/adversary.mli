(** Library of scheduling adversaries.

    An adversary strategy is a {!Sched.adversary}: a class (which fixes
    what it may observe) plus a decision function. The strategies here
    are the generic ones used across experiments; algorithm-specific
    attack adversaries (e.g. the adaptive attack on the log* algorithm)
    live next to the experiments that use them. *)

val round_robin : unit -> Sched.adversary
(** Oblivious. Fixed cyclic schedule [0, 1, ..., n-1, 0, ...]; entries
    for processes that already finished are skipped at no cost. *)

val random_oblivious : seed:int64 -> Sched.adversary
(** Oblivious. A uniformly random process id per slot, committed in
    advance (the stream depends only on the seed); slots belonging to
    finished processes are skipped at no cost. *)

val fixed_schedule : ?then_halt:bool -> int array -> Sched.adversary
(** Oblivious. Follows the given pid sequence, skipping entries for
    processes that are no longer running. When the sequence is
    exhausted: halts (crashing the rest) if [then_halt] (default), else
    continues round-robin. *)

val adaptive : string -> (Sched.view -> Sched.decision) -> Sched.adversary
(** Fully adaptive custom strategy. *)

val location_oblivious :
  string -> (Sched.view -> Sched.decision) -> Sched.adversary

val rw_oblivious : string -> (Sched.view -> Sched.decision) -> Sched.adversary

val with_crashes : (int * int) list -> Sched.adversary -> Sched.adversary
(** [with_crashes [(pid, s); ...] adv] behaves like [adv] but crashes
    process [pid] as soon as it has taken [s] steps. The wrapper has the
    same class as [adv] (crash times are fixed in advance).

    {!Fault.Plan} in [lib/fault] generalises this wrapper (and
    {!random_crashes}) to declarative fault plans — crash-after-steps,
    crash storms, stall windows, timed halts — compiled onto any base
    adversary; prefer it for new code. *)

val random_crashes :
  ?max_crashes:int ->
  seed:int64 ->
  crash_prob:float ->
  Sched.adversary ->
  Sched.adversary
(** Before each decision, crashes a uniformly chosen runnable process
    with probability [crash_prob], but never crashes the last runnable
    process (so that a winner can still emerge).

    Invariant (the paper's fault model): at most [max_crashes] processes
    are ever crashed. The default is [n - 1], where [n] is the number of
    runnable processes at the wrapper's first decision — the largest
    number of failures under which wait-free/solo-terminating algorithms
    must still be correct. Passing a smaller bound restricts the
    adversary further; the bound can never be exceeded. *)
