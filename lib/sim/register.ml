type t = {
  id : int;
  name : string;
  mutable value : int;
  mutable last_writer : int;
}

let create ?(name = "r") mem =
  let t = { id = Memory.alloc mem; name; value = 0; last_writer = -1 } in
  Memory.on_reset mem (fun () ->
      t.value <- 0;
      t.last_writer <- -1);
  t

let read t = t.value

let write t ~writer v =
  t.value <- v;
  t.last_writer <- writer

let pp ppf t = Fmt.pf ppf "%s#%d=%d" t.name t.id t.value
