(** Shared-memory operations and trace events. *)

type kind =
  | Read
  | Write of int  (** Value to be written. *)

type pending = {
  reg : Register.t;
  kind : kind;
}
(** An operation a process is poised to perform. In the paper's
    terminology, a process whose pending operation is a write {e covers}
    that register. *)

type event =
  | Step of {
      time : int;
      pid : int;
      reg : int;
      reg_name : string;
      kind : kind;
      read_value : int option;  (** [Some v] for reads. *)
      seen_writer : int;  (** Last writer of the register at read time, -1 if none; -1 for writes. *)
    }
  | Flip of { time : int; pid : int; bound : int; outcome : int }
  | Finish of { time : int; pid : int; result : int }
  | Crash of { time : int; pid : int }

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write v -> Fmt.pf ppf "write %d" v

let pp_event ppf = function
  | Step { time; pid; reg_name; kind; read_value; _ } -> (
      match read_value with
      | Some v -> Fmt.pf ppf "[%d] p%d %a %s -> %d" time pid pp_kind kind reg_name v
      | None -> Fmt.pf ppf "[%d] p%d %a %s" time pid pp_kind kind reg_name)
  | Flip { time; pid; bound; outcome } ->
      Fmt.pf ppf "[%d] p%d flip %d -> %d" time pid bound outcome
  | Finish { time; pid; result } -> Fmt.pf ppf "[%d] p%d finish %d" time pid result
  | Crash { time; pid } -> Fmt.pf ppf "[%d] p%d crash" time pid

let event_to_string e = Fmt.str "%a" pp_event e
