(** Bounded exhaustive exploration (model checking) of a protocol.

    [explore ~depth ~programs ~check ()] enumerates every resolution of
    the first [depth] nondeterministic choice points of an execution — a
    choice point is either a scheduling decision (which runnable process
    steps next), a coin flip, or (with a positive [max_crashes]) a crash
    decision — and runs each resulting execution to completion,
    resolving choices beyond the controlled prefix with a round-robin
    schedule and pseudo-random flips. [check] is called on every
    completed execution and should raise (e.g. an Alcotest failure) on a
    violated property. Choice points of huge arity (probability draws
    over many values) are branched over at most 8 evenly spaced
    representative outcomes rather than exhaustively.

    Crash-aware exploration: with [max_crashes = c > 0], every
    scheduling choice point additionally offers, while the budget lasts,
    the outcomes "crash this runnable process instead of scheduling
    anyone" — one per (capped) runnable process. This enumerates every
    schedule in which up to [c] processes fail at arbitrary operation
    boundaries, the fault model of the paper's wait-free algorithms
    (where up to [n-1] processes may crash). The default [max_crashes =
    0] leaves the arity and numbering of every choice point exactly as
    before, so crash-free exploration and previously recorded paths are
    unaffected.

    [max_total_steps] bounds each execution (default 10 million, the
    {!Sched.run} default); a run that exceeds it raises. Crash-aware
    searches for lost-wakeup bugs (a survivor spinning on a crashed
    helper) should pass a small bound so divergent executions fail
    fast — {!find_violation} reports such a failed run as a violation.

    Subtree restriction: with [prefix = [|c0; ...|]] the DFS enumerates
    only the extensions of that choice prefix (the prefix execution
    itself included), which is how independent subtrees of the search
    space are handed to parallel workers (see [Engine.explore]). The
    randomness beyond the controlled prefix is derived from the path
    itself (not from enumeration order), so every path executes
    bit-identically no matter how the subtrees are partitioned.

    Returns the number of executions checked. *)

type stat = {
  executions : int;  (** Executions run and checked. *)
  truncated : bool;
      (** [true] when the [max_paths] budget was exhausted with
          unvisited prefixes remaining — the enumeration (and hence the
          count) is a lower bound, not the full bounded space. *)
}

val explore_stat :
  ?max_paths:int ->
  ?seed:int64 ->
  ?max_crashes:int ->
  ?max_total_steps:int ->
  ?prefix:int array ->
  depth:int ->
  programs:(unit -> (Ctx.t -> int) array) ->
  check:(Sched.t -> unit) ->
  unit ->
  stat
(** Like {!explore}, but also reports whether [max_paths] bound the
    search: no silent caps — callers that set a budget can tell an
    exhaustive enumeration from a cut-off one. *)

val explore :
  ?max_paths:int ->
  ?seed:int64 ->
  ?max_crashes:int ->
  ?max_total_steps:int ->
  ?prefix:int array ->
  depth:int ->
  programs:(unit -> (Ctx.t -> int) array) ->
  check:(Sched.t -> unit) ->
  unit ->
  int

val probe :
  ?seed:int64 ->
  ?max_crashes:int ->
  ?max_total_steps:int ->
  ?prefix:int array ->
  depth:int ->
  programs:(unit -> (Ctx.t -> int) array) ->
  check:(Sched.t -> unit) ->
  unit ->
  int option
(** Run the single execution at [prefix] (default the empty prefix),
    apply [check] to it, and return the (capped) arity of the frontier
    choice point at index [length prefix] — i.e. how many child subtrees
    the prefix has within [depth] — or [None] when the execution ends
    before another controlled choice. The building block for fanning an
    exploration out over subtrees. *)

type violation = {
  path : int array;  (** Choice prefix that reproduces the failure. *)
  message : string;  (** The exception the check raised. *)
  executions : int;  (** Executions examined before finding it. *)
}

val find_violation :
  ?max_paths:int ->
  ?seed:int64 ->
  ?max_crashes:int ->
  ?max_total_steps:int ->
  depth:int ->
  programs:(unit -> (Ctx.t -> int) array) ->
  check:(Sched.t -> unit) ->
  unit ->
  violation option
(** Like {!explore}, but treats an exception from [check] — or from the
    execution itself, e.g. a blown [max_total_steps] budget when a crash
    deadlocks a survivor — as a found violation instead of propagating
    it: returns the failure with its choice prefix greedily shrunk
    (dropping one choice at a time while the failure still reproduces),
    or [None] when the whole bounded space passes. Useful for debugging
    protocols: the returned path is a minimal-ish schedule/coin/crash
    recipe for the bug. *)

val replay :
  ?seed:int64 ->
  ?max_crashes:int ->
  ?max_total_steps:int ->
  path:int array ->
  programs:(unit -> (Ctx.t -> int) array) ->
  unit ->
  Sched.t
(** Re-execute the given choice prefix (resolving the suffix with the
    explorer's default policy) and return the final scheduler state; a
    failing run re-raises (reproducing e.g. a deadlock violation).
    [max_crashes] must match the value the path was found with, since it
    determines how choice indices at scheduling points are decoded. *)
