type klass = Adaptive | Location_oblivious | Rw_oblivious | Oblivious

let pp_klass ppf = function
  | Adaptive -> Fmt.string ppf "adaptive"
  | Location_oblivious -> Fmt.string ppf "location-oblivious"
  | Rw_oblivious -> Fmt.string ppf "rw-oblivious"
  | Oblivious -> Fmt.string ppf "oblivious"

type status = Running | Finished of int | Crashed

type pending_view = {
  view_pid : int;
  view_kind : [ `Read | `Write ] option;
  view_reg : int option;
  view_reg_name : string option;
  view_value : int option;
  view_steps : int;
}

type view = {
  view_time : int;
  runnable : int array;
  pending_of : int -> pending_view;
}

type decision =
  | Schedule of int
  | Crash_proc of int
  | Halt

type adversary = {
  adv_name : string;
  adv_klass : klass;
  decide : view -> decision;
}

(* A process suspended at its pending shared-memory operation: the
   effect continuation plus the operation descriptor, in one block.
   [step] performs the operation and resumes the continuation directly,
   so no per-operation resume closure is ever allocated. *)
type susp =
  | Blocked_read of Register.t * (int, unit) Effect.Deep.continuation
  | Blocked_write of Register.t * int * (unit, unit) Effect.Deep.continuation

type proc = {
  pid : int;
  mutable p_status : status;
  mutable p_susp : susp option;
  mutable p_steps : int;
  mutable p_flips : int;
  mutable p_rmrs : int;
  mutable p_first_step : int;
  mutable p_finish : int;
}

type t = {
  rng : Rng.t;
  procs : proc array;
  mutable s_time : int;
  record_trace : bool;
  mutable events : Op.event list;  (* reversed *)
  (* The ambient Probe sink, captured at [create]/[reset] so the hot
     path tests one field instead of reading the domain-local slot on
     every step. [None] costs a load and a branch per step — the same
     class of overhead as [record_trace]. *)
  mutable probe : Obs.Probe.sink option;
  flip_oracle : (pid:int -> bound:int -> int option) option;
  (* Cache-coherence bookkeeping for RMR accounting: per register (by
     allocation id) a bitset over pids of the processes holding a valid
     cached copy. Flat bytes instead of hashtables: the pid universe is
     fixed at [create], so membership is a bit test. *)
  mutable caches : Bytes.t array;
  cache_len : int;  (* bytes per register bitset: ceil(nprocs / 8) *)
  (* [runnable] is recomputed only when some process stops running. *)
  mutable n_running : int;
  mutable runnable_cache : int array option;
  (* [|0; 1; ...; n-1|], the runnable array while everyone runs: shared
     by every run through this scheduler instead of re-allocated. *)
  all_pids : int array;
}

(* [caches] is sized lazily by the largest register id seen. *)
let cache_bits t reg_id =
  let cur = Array.length t.caches in
  if reg_id >= cur then begin
    let len = max (reg_id + 1) (max 8 (2 * cur)) in
    t.caches <-
      Array.init len (fun i ->
          if i < cur then t.caches.(i) else Bytes.make t.cache_len '\000')
  end;
  t.caches.(reg_id)

(* CC-model RMR accounting: a read is local iff the reader holds a valid
   cached copy; it caches the register. A write always counts as an RMR
   and invalidates every other copy. *)
let account_read t p reg_id =
  let bits = cache_bits t reg_id in
  let byte = p.pid lsr 3 and mask = 1 lsl (p.pid land 7) in
  let b = Char.code (Bytes.unsafe_get bits byte) in
  if b land mask = 0 then begin
    p.p_rmrs <- p.p_rmrs + 1;
    Bytes.unsafe_set bits byte (Char.unsafe_chr (b lor mask));
    true
  end
  else false

let account_write t p reg_id =
  let bits = cache_bits t reg_id in
  Bytes.fill bits 0 t.cache_len '\000';
  Bytes.unsafe_set bits (p.pid lsr 3) (Char.unsafe_chr (1 lsl (p.pid land 7)));
  p.p_rmrs <- p.p_rmrs + 1

(* Cached copies a write by [pid] would invalidate (register
   contention). Off the hot path: only evaluated when a probe sink is
   installed, before [account_write] clears the bitset. *)
let count_other_cached t reg_id pid =
  if reg_id >= Array.length t.caches then 0
  else begin
    let bits = t.caches.(reg_id) in
    let n = ref 0 in
    for i = 0 to t.cache_len - 1 do
      let b = ref (Char.code (Bytes.unsafe_get bits i)) in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr n
      done
    done;
    let byte = pid lsr 3 and mask = 1 lsl (pid land 7) in
    if Char.code (Bytes.get bits byte) land mask <> 0 then !n - 1 else !n
  end

let draw t pid bound =
  match t.flip_oracle with
  | Some oracle -> (
      match oracle ~pid ~bound with
      | Some v -> v
      | None -> if bound < 0 then Rng.geometric_capped t.rng (-bound) else Rng.int t.rng bound)
  | None ->
      if bound < 0 then Rng.geometric_capped t.rng (-bound) else Rng.int t.rng bound

let stopped_running t =
  t.n_running <- t.n_running - 1;
  t.runnable_cache <- None

let start t p (body : Ctx.t -> int) =
  let open Effect.Deep in
  let ctx = Ctx.make ~pid:p.pid in
  let retc result =
    p.p_status <- Finished result;
    p.p_susp <- None;
    p.p_finish <- t.s_time;
    stopped_running t;
    if t.record_trace then
      t.events <- Op.Finish { time = t.s_time; pid = p.pid; result } :: t.events;
    match t.probe with
    | None -> ()
    | Some s -> s.on_finish ~time:t.s_time ~pid:p.pid ~result
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    fun eff ->
    match eff with
    | Ctx.Read_eff r -> Some (fun k -> p.p_susp <- Some (Blocked_read (r, k)))
    | Ctx.Write_eff (r, v) ->
        Some (fun k -> p.p_susp <- Some (Blocked_write (r, v, k)))
    | Ctx.Flip_eff bound ->
        Some
          (fun k ->
            let outcome = draw t p.pid bound in
            p.p_flips <- p.p_flips + 1;
            if t.record_trace then
              t.events <-
                Op.Flip { time = t.s_time; pid = p.pid; bound; outcome }
                :: t.events;
            (match t.probe with
            | None -> ()
            | Some s -> s.on_flip ~time:t.s_time ~pid:p.pid ~bound ~outcome);
            continue k outcome)
    | Ctx.Flip_geom_eff l ->
        Some
          (fun k ->
            let outcome = draw t p.pid (-l) in
            p.p_flips <- p.p_flips + 1;
            if t.record_trace then
              t.events <-
                Op.Flip { time = t.s_time; pid = p.pid; bound = -l; outcome }
                :: t.events;
            (match t.probe with
            | None -> ()
            | Some s -> s.on_flip ~time:t.s_time ~pid:p.pid ~bound:(-l) ~outcome);
            continue k outcome)
    | _ -> None
  in
  match_with body ctx { retc; exnc = raise; effc }

let create ?(seed = 0x5EEDL) ?(record_trace = false) ?flip_oracle programs =
  let rng = Rng.create seed in
  let procs =
    Array.mapi
      (fun pid _ ->
        {
          pid;
          p_status = Running;
          p_susp = None;
          p_steps = 0;
          p_flips = 0;
          p_rmrs = 0;
          p_first_step = -1;
          p_finish = -1;
        })
      programs
  in
  let n = Array.length programs in
  let all_pids = Array.init n (fun pid -> pid) in
  let t =
    {
      rng;
      procs;
      s_time = 0;
      record_trace;
      events = [];
      (* Captured before the programs start: flips fired while running
         each program to its first operation already reach the sink. *)
      probe = Obs.Probe.current ();
      flip_oracle;
      caches = [||];
      cache_len = (n + 7) / 8;
      n_running = n;
      runnable_cache = Some all_pids;
      all_pids;
    }
  in
  Array.iteri (fun pid body -> start t procs.(pid) body) programs;
  t

(* The arena-reuse path: restore a scheduler to the state [create]
   would produce — same process count, same [record_trace] and
   [flip_oracle] — without re-allocating the proc records, the cache
   bitsets or the scheduler record itself. Shared registers are {e not}
   reset here: the caller resets its [Memory.t] arenas (which restores
   every register) and then resets the scheduler; see [Engine.run_local]
   for the per-worker pattern. *)
let reset ?(seed = 0x5EEDL) t programs =
  if Array.length programs <> Array.length t.procs then
    invalid_arg "Sched.reset: process count differs from create";
  Rng.reseed t.rng seed;
  t.s_time <- 0;
  t.events <- [];
  (* Re-read the ambient sink: a probe installed (or removed) since
     [create] takes effect on the next trial, before programs restart. *)
  t.probe <- Obs.Probe.current ();
  t.n_running <- Array.length t.procs;
  t.runnable_cache <- Some t.all_pids;
  Array.iter (fun bits -> Bytes.fill bits 0 t.cache_len '\000') t.caches;
  Array.iter
    (fun p ->
      p.p_status <- Running;
      p.p_susp <- None;
      p.p_steps <- 0;
      p.p_flips <- 0;
      p.p_rmrs <- 0;
      p.p_first_step <- -1;
      p.p_finish <- -1)
    t.procs;
  Array.iteri (fun pid body -> start t t.procs.(pid) body) programs

let n t = Array.length t.procs
let time t = t.s_time
let status t pid = t.procs.(pid).p_status
let steps t pid = t.procs.(pid).p_steps
let flips t pid = t.procs.(pid).p_flips
let rmrs t pid = t.procs.(pid).p_rmrs

let max_rmrs t =
  Array.fold_left (fun acc p -> max acc p.p_rmrs) 0 t.procs

let pending t pid =
  match t.procs.(pid).p_susp with
  | None -> None
  | Some (Blocked_read (reg, _)) -> Some { Op.reg; kind = Op.Read }
  | Some (Blocked_write (reg, v, _)) -> Some { Op.reg; kind = Op.Write v }

let first_step_time t pid = t.procs.(pid).p_first_step
let finish_time t pid = t.procs.(pid).p_finish

let result t pid =
  match t.procs.(pid).p_status with Finished r -> Some r | _ -> None

let runnable t =
  match t.runnable_cache with
  | Some a -> a
  | None ->
      let a = Array.make t.n_running 0 in
      let j = ref 0 in
      Array.iter
        (fun p ->
          if p.p_status = Running then begin
            a.(!j) <- p.pid;
            incr j
          end)
        t.procs;
      t.runnable_cache <- Some a;
      a

let any_running t = t.n_running > 0

let step t pid =
  let p = t.procs.(pid) in
  match (p.p_status, p.p_susp) with
  | Running, Some susp -> (
      t.s_time <- t.s_time + 1;
      p.p_steps <- p.p_steps + 1;
      if p.p_first_step < 0 then p.p_first_step <- t.s_time;
      p.p_susp <- None;
      match susp with
      | Blocked_read (r, k) ->
          let rmr = account_read t p r.Register.id in
          let v = Register.read r in
          if t.record_trace then
            t.events <-
              Op.Step
                {
                  time = t.s_time;
                  pid = p.pid;
                  reg = r.Register.id;
                  reg_name = r.Register.name;
                  kind = Op.Read;
                  read_value = Some v;
                  seen_writer = r.Register.last_writer;
                }
              :: t.events;
          (match t.probe with
          | None -> ()
          | Some s ->
              s.on_step ~time:t.s_time ~pid:p.pid ~reg:r.Register.id
                ~reg_name:r.Register.name ~write:false ~value:v ~rmr
                ~invalidated:0);
          Effect.Deep.continue k v
      | Blocked_write (r, v, k) ->
          (* Contention (copies this write invalidates) must be read off
             the bitset before [account_write] clears it. *)
          let invalidated =
            match t.probe with
            | None -> 0
            | Some _ -> count_other_cached t r.Register.id p.pid
          in
          account_write t p r.Register.id;
          Register.write r ~writer:p.pid v;
          if t.record_trace then
            t.events <-
              Op.Step
                {
                  time = t.s_time;
                  pid = p.pid;
                  reg = r.Register.id;
                  reg_name = r.Register.name;
                  kind = Op.Write v;
                  read_value = None;
                  seen_writer = -1;
                }
              :: t.events;
          (match t.probe with
          | None -> ()
          | Some s ->
              s.on_step ~time:t.s_time ~pid:p.pid ~reg:r.Register.id
                ~reg_name:r.Register.name ~write:true ~value:v ~rmr:true
                ~invalidated);
          Effect.Deep.continue k ())
  | Running, None ->
      (* A running process is always poised at an operation: [create]
         runs every program to its first effect. *)
      invalid_arg "Sched.step: process has no pending operation"
  | (Finished _ | Crashed), _ ->
      invalid_arg "Sched.step: process is not running"

let crash t pid =
  let p = t.procs.(pid) in
  match p.p_status with
  | Running ->
      p.p_status <- Crashed;
      p.p_susp <- None;
      stopped_running t;
      if t.record_trace then
        t.events <- Op.Crash { time = t.s_time; pid } :: t.events;
      (match t.probe with
      | None -> ()
      | Some s -> s.on_crash ~time:t.s_time ~pid)
  | Finished _ | Crashed -> invalid_arg "Sched.crash: process is not running"

let filter_pending klass p =
  let kind, reg, reg_name, value =
    match p.p_susp with
    | None -> (None, None, None, None)
    | Some (Blocked_read (r, _)) ->
        (Some `Read, Some r.Register.id, Some r.Register.name, None)
    | Some (Blocked_write (r, v, _)) ->
        (Some `Write, Some r.Register.id, Some r.Register.name, Some v)
  in
  match klass with
  | Adaptive ->
      {
        view_pid = p.pid;
        view_kind = kind;
        view_reg = reg;
        view_reg_name = reg_name;
        view_value = value;
        view_steps = p.p_steps;
      }
  | Location_oblivious ->
      {
        view_pid = p.pid;
        view_kind = kind;
        view_reg = None;
        view_reg_name = None;
        view_value = value;
        view_steps = p.p_steps;
      }
  | Rw_oblivious ->
      {
        view_pid = p.pid;
        view_kind = None;
        view_reg = reg;
        view_reg_name = reg_name;
        view_value = None;
        view_steps = p.p_steps;
      }
  | Oblivious ->
      {
        view_pid = p.pid;
        view_kind = None;
        view_reg = None;
        view_reg_name = None;
        view_value = None;
        view_steps = p.p_steps;
      }

let view t klass =
  {
    view_time = t.s_time;
    runnable = runnable t;
    pending_of = (fun pid -> filter_pending klass t.procs.(pid));
  }

let run ?(max_total_steps = 10_000_000) t adv =
  (* The pending_of closure is allocated once per run, not per step. *)
  let klass = adv.adv_klass in
  let pending_of pid = filter_pending klass t.procs.(pid) in
  while any_running t do
    (* Inclusive bound: an execution may take exactly [max_total_steps]
       steps; needing even one more fails. *)
    if t.s_time >= max_total_steps then
      failwith
        (Printf.sprintf "Sched.run: exceeded %d steps under adversary %s"
           max_total_steps adv.adv_name);
    match
      adv.decide { view_time = t.s_time; runnable = runnable t; pending_of }
    with
    | Schedule pid -> step t pid
    | Crash_proc pid -> crash t pid
    | Halt ->
        Array.iter (fun p -> if p.p_status = Running then crash t p.pid) t.procs
  done

let trace t = List.rev t.events

let max_steps t =
  Array.fold_left (fun acc p -> max acc p.p_steps) 0 t.procs

let results t = Array.map (fun p -> match p.p_status with Finished r -> Some r | _ -> None) t.procs
