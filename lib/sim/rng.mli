(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator flows through a value of
    type {!t}, so a simulation is fully reproducible from its seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds give
    independent-looking streams. *)

val copy : t -> t
(** [copy t] is a generator with the same state as [t]; advancing one
    does not affect the other. *)

val reseed : t -> int64 -> unit
(** [reseed t seed] resets [t] in place to the state of [create seed],
    without allocating. The reuse path of batch trials ({!Sched.reset})
    depends on [reseed t s] making [t] indistinguishable from a fresh
    generator, so reseeded and freshly created runs stay bit-identical. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it,
    suitable for an independent sub-stream. *)

val derive : int64 -> stream:int -> int64
(** [derive seed ~stream] deterministically mints the seed of an
    independent sub-stream: the same [(seed, stream)] pair always yields
    the same sub-seed, distinct [stream] values yield distinct sub-seeds
    (injective for a fixed [seed]), and the splitmix finalizer decouples
    nearby inputs. This is the repo-wide replacement for ad-hoc
    [seed * 7]-style sub-seed arithmetic: use stream 0, 1, 2, ... for
    the scheduler, the adversary, fault injection, and so on, and
    [derive seed ~stream:trial] for per-trial seeds in a batch. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_of_seed : int64 -> float
(** [float_of_seed seed] is exactly [float (create seed)] without
    allocating the generator: the one-shot uniform draw for callers
    that mint a fresh stream per draw (e.g. per-retry backoff jitter
    on the service driver's zero-allocation event path). *)

val jitter_of_seed : int64 -> client:int -> attempt:int -> float
(** [jitter_of_seed seed ~client ~attempt] is exactly
    [float_of_seed (derive (derive seed ~stream:client)
    ~stream:attempt)], fused so the two intermediate sub-seeds are
    never boxed. This is the per-retry jitter draw of the service
    backoff policies: one cross-module call, zero allocations. *)

val geometric_capped : t -> int -> int
(** [geometric_capped t l] samples the distribution of line 3 of the
    paper's Figure 1: [Pr(x = i) = 1/2^i] for [1 <= i < l] and
    [Pr(x = l) = 1/2^(l-1)]. [l] must be at least 1. *)
