(** Simulation scheduler.

    A schedule is driven by an {e adversary}: at every step the adversary
    picks which process performs its pending shared-memory operation, or
    crashes a process, or halts the execution (crashing every process
    still running). The adversary observes pending operations through a
    view filtered according to its class:

    - {e adaptive}: sees everything — operation type, target register and
      value to be written — and all coin flips already made;
    - {e location-oblivious}: sees the operation type and pending write
      values, but not the target register;
    - {e R/W-oblivious}: sees the target register, but not whether the
      operation is a read or a write;
    - {e oblivious}: sees nothing; its decisions are a fixed function of
      time (the schedule is determined before the execution starts).

    Information hiding is enforced by construction: the corresponding
    fields of {!pending_view} are [None]. *)

type klass = Adaptive | Location_oblivious | Rw_oblivious | Oblivious

val pp_klass : klass Fmt.t

type status = Running | Finished of int | Crashed

type pending_view = {
  view_pid : int;
  view_kind : [ `Read | `Write ] option;
  view_reg : int option;  (** Register allocation id. *)
  view_reg_name : string option;
  view_value : int option;  (** Pending write value. *)
  view_steps : int;  (** Shared-memory steps this process has taken. *)
}

type view = {
  view_time : int;
  runnable : int array;  (** Pids of processes that can be scheduled, ascending. *)
  pending_of : int -> pending_view;
}

type decision =
  | Schedule of int  (** Let this process perform its pending operation. *)
  | Crash_proc of int
  | Halt  (** Crash every process still running. *)

type adversary = {
  adv_name : string;
  adv_klass : klass;
  decide : view -> decision;
}

type t

val create :
  ?seed:int64 ->
  ?record_trace:bool ->
  ?flip_oracle:(pid:int -> bound:int -> int option) ->
  (Ctx.t -> int) array ->
  t
(** [create programs] sets up one process per program and runs each until
    it is poised at its first shared-memory operation (local computation,
    including coin flips, is free). Process [i] gets pid [i].

    [flip_oracle] overrides coin flips, for model checking: it receives
    the flipping process and the bound ([-l] encodes the geometric draw
    of {!Ctx.flip_geometric} with parameter [l]); returning [None] falls
    back to the scheduler's RNG.

    The ambient [Obs.Probe] sink is captured here (and re-read at each
    {!reset}), so install a sink {e before} building the system under
    observation; with no sink installed every probe point is a single
    field test and the execution is bit-identical to an uninstrumented
    one. *)

val reset : ?seed:int64 -> t -> (Ctx.t -> int) array -> unit
(** [reset ~seed t programs] restores [t] to the state
    [create ~seed programs] would produce — every process Running and
    poised at its first operation, time 0, empty trace, reseeded RNG —
    {e without} allocating new proc records, cache bitsets or runnable
    arrays. [record_trace] and [flip_oracle] keep their [create]-time
    values. [programs] must have the same length as at [create]; other
    lengths raise [Invalid_argument].

    Shared registers are not touched: callers recycling an algorithm
    structure across trials must {!Memory.reset} the arena(s) it was
    allocated from first, then [reset] the scheduler. A reused run is
    bit-identical to a run on freshly created structures with the same
    seed (tested in [test_sim.ml]).

    [reset] discards all recorded events: with [record_trace] set,
    {!trace} afterwards returns only events of the new (post-reset)
    run, never a mix of runs. It also re-reads the ambient [Obs.Probe]
    sink, so installing a sink between trials takes effect at the next
    reset. *)

val n : t -> int
val time : t -> int
(** Total number of shared-memory steps performed so far. *)

val status : t -> int -> status
val steps : t -> int -> int
(** Shared-memory steps taken by a process. *)

val flips : t -> int -> int

val rmrs : t -> int -> int
(** Remote memory references of a process in the cache-coherent (CC)
    model: every write is an RMR and invalidates other processes' cached
    copies; a read is an RMR only when the reader holds no valid cached
    copy (it then caches the register). This is the cost measure of
    Golab, Hendler and Woelfel's O(1)-RMR leader election, the paper's
    reference for the TAS-from-LeaderElect construction. *)

val max_rmrs : t -> int
val pending : t -> int -> Op.pending option
val first_step_time : t -> int -> int
(** Time of the process's first shared-memory step; -1 if none yet. *)

val finish_time : t -> int -> int
(** Time at which the process finished; -1 if still running or crashed. *)

val result : t -> int -> int option
(** Return value of the process's program, if finished. *)

val runnable : t -> int array
val any_running : t -> bool

val step : t -> int -> unit
(** Perform the pending operation of the given process and run it to its
    next operation (or to completion). Raises [Invalid_argument] if the
    process is not running. *)

val crash : t -> int -> unit

val view : t -> klass -> view

val run : ?max_total_steps:int -> t -> adversary -> unit
(** Drive the execution until no process is running. Raises [Failure]
    when the execution needs more than [max_total_steps] (default
    [10_000_000]) shared-memory steps — the bound is inclusive: a run
    of exactly [max_total_steps] steps completes, one more fails. The
    failure signals a livelock bug rather than a legitimate long run. *)

val trace : t -> Op.event list
(** Events of the current run in execution order; empty unless
    [record_trace] was set at {!create}. {!reset} clears the event log,
    so after a reset this returns only events recorded since — the
    trace never spans two trials. *)

val max_steps : t -> int
(** Maximum over processes of shared-memory steps taken. *)

val results : t -> int option array
