type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let reseed t seed = t.state <- seed

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next t)

(* Splitmix-style stream derivation: feed the stream index through the
   output mixer before combining, so nearby streams (0, 1, 2, ...) land
   in unrelated regions of the state space. Unlike the collision-prone
   [seed * c] idiom this is injective in [stream] for a fixed [seed] and
   avalanches in both arguments. *)
let derive seed ~stream =
  mix
    (Int64.add
       (Int64.logxor seed (mix (Int64.of_int stream)))
       golden_gamma)

(* The first [float] draw of [create seed], computed without
   allocating the generator record — the zero-allocation path for
   one-shot jitter draws (service backoff runs this per retry event).
   Scaling by [0x1p-53] instead of dividing by [2^53] is exact (both
   only adjust the exponent) and skips the FP divide. *)
let float_of_seed seed =
  let v =
    Int64.shift_right_logical (mix (Int64.add seed golden_gamma)) 11
  in
  Int64.to_float v *. 0x1p-53

(* Exactly [float_of_seed (derive (derive seed ~stream:client)
   ~stream:attempt)], fused into one function. Each cross-module
   [derive] call boxes its [int64] result (no flambda); on the service
   driver's per-event backoff path those two boxes were the only
   allocations left, so the fusion keeps the sub-seeds in registers.
   Kept bit-identical to the composed form — test_service pins it. *)
let jitter_of_seed seed ~client ~attempt =
  let s1 =
    mix
      (Int64.add (Int64.logxor seed (mix (Int64.of_int client))) golden_gamma)
  in
  let s2 =
    mix
      (Int64.add (Int64.logxor s1 (mix (Int64.of_int attempt))) golden_gamma)
  in
  let v = Int64.shift_right_logical (mix (Int64.add s2 golden_gamma)) 11 in
  Int64.to_float v *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next t) mask) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (next t) 11 in
  Int64.to_float v *. 0x1p-53 (* exact: same bits as dividing by 2^53 *)

let geometric_capped t l =
  if l < 1 then invalid_arg "Rng.geometric_capped: l must be >= 1";
  let rec loop i =
    if i >= l then l
    else if bool t then i
    else loop (i + 1)
  in
  loop 1
