type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let reseed t seed = t.state <- seed

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next t)

(* Splitmix-style stream derivation: feed the stream index through the
   output mixer before combining, so nearby streams (0, 1, 2, ...) land
   in unrelated regions of the state space. Unlike the collision-prone
   [seed * c] idiom this is injective in [stream] for a fixed [seed] and
   avalanches in both arguments. *)
let derive seed ~stream =
  mix
    (Int64.add
       (Int64.logxor seed (mix (Int64.of_int stream)))
       golden_gamma)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next t) mask) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (next t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let geometric_capped t l =
  if l < 1 then invalid_arg "Rng.geometric_capped: l must be >= 1";
  let rec loop i =
    if i >= l then l
    else if bool t then i
    else loop (i + 1)
  in
  loop 1
