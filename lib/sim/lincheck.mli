(** A small linearizability checker (Wing–Gong style search), with
    support for the incomplete histories crashed processes leave behind.

    A history is a set of completed operations with real-time intervals;
    it is linearizable w.r.t. a sequential specification if some total
    order of the operations (a) respects real time — an operation that
    finished before another started comes first — and (b) replays
    legally through the specification from its initial state.

    A {e pending} operation (a call whose process crashed before
    responding) may or may not have taken effect: the checker searches
    over both — inserting it at any legal point after its invocation
    with any of its candidate results, or dropping it entirely. This is
    the standard completion-based definition of linearizability for
    crash-prone histories (Herlihy–Wing: a pending invocation may be
    completed or removed).

    The search is exponential in the worst case; it is meant for the
    small histories the simulator produces (a few dozen operations).

    The TAS specification is provided; the checker itself is generic, so
    tests can also verify e.g. consensus histories. *)

type 'state spec = {
  initial : 'state;
  apply : 'state -> op:int -> result:int -> 'state option;
      (** [apply state ~op ~result] is [Some state'] if the operation
          [op] may return [result] in [state], else [None]. *)
}

type operation = {
  op : int;  (** Operation label (algorithm-specific). *)
  result : int;
  start_time : int;  (** Invocation; -1 means "takes no steps", treated
      as starting before everything. *)
  end_time : int;  (** Response; [max_int] for never-returning. *)
}

type pending = {
  p_op : int;  (** Operation label. *)
  p_start : int;  (** Invocation time (first shared-memory step). *)
  possible_results : int list;
      (** Results the call could have taken effect with. *)
}

val linearizable : 'state spec -> operation list -> bool

val linearizable_incomplete :
  'state spec -> completed:operation list -> pending:pending list -> bool
(** Linearizability of an incomplete history: every completed operation
    must be linearized exactly once, and each pending operation may
    additionally be linearized at most once — at any point after all
    operations that responded before it was invoked — with any result in
    its [possible_results], or left out. [linearizable spec ops] is
    [linearizable_incomplete spec ~completed:ops ~pending:[]]. *)

val tas_spec : bool spec
(** Operations are TAS() calls ([op] is ignored); result 0 is legal only
    when the bit is unset, and sets it; result 1 only when set. *)

val tas_history_of_sched : Sched.t -> operation list
(** Build the history of a one-TAS-call-per-process execution: each
    finished process contributes one operation with its first-step and
    finish times and its program result. A process that finished without
    taking steps observed only its own state; its interval is collapsed
    to its finish time. *)

val tas_pending_of_sched : Sched.t -> pending list
(** The pending TAS calls of unfinished processes — crashed, or cut off
    when the adversary halted the execution: one per such process that
    took at least one shared-memory step (a call that never reached
    shared memory cannot have taken effect), with candidate result 0
    only — a call that took effect as 1 changes nothing, so it never
    legalises an otherwise-illegal history. *)

val check_tas_sched : Sched.t -> bool
(** Crash-aware TAS linearizability of an execution:
    [linearizable_incomplete tas_spec] over the completed history
    ({!tas_history_of_sched}) and the crashed processes' pending calls
    ({!tas_pending_of_sched}). A crashed possible-winner legalises
    everyone else returning 1, but a second completed 0 is always
    illegal — and a survivor returning 1 with no other process ever
    having taken a step is illegal too (nobody can have set the bit). *)
