let round_robin () =
  let counter = ref 0 in
  let decide (view : Sched.view) =
    match Array.length view.runnable with
    | 0 -> Sched.Halt
    | m ->
        (* Find the next runnable pid at or after the cursor, cyclically. *)
        let rec find i =
          if i >= m then view.runnable.(0) else
          if view.runnable.(i) >= !counter then view.runnable.(i)
          else find (i + 1)
        in
        let pid = find 0 in
        counter := pid + 1;
        Sched.Schedule pid
  in
  { Sched.adv_name = "round-robin"; adv_klass = Sched.Oblivious; decide }

let random_oblivious ~seed =
  let rng = Rng.create seed in
  let decide (view : Sched.view) =
    match Array.length view.runnable with
    | 0 -> Sched.Halt
    | m -> Sched.Schedule view.runnable.(Rng.int rng m)
  in
  { Sched.adv_name = "random-oblivious"; adv_klass = Sched.Oblivious; decide }

let fixed_schedule ?(then_halt = true) schedule =
  let pos = ref 0 in
  let fallback = round_robin () in
  let decide (view : Sched.view) =
    if Array.length view.runnable = 0 then Sched.Halt
    else begin
      let running pid =
        Array.exists (fun p -> p = pid) view.runnable
      in
      (* Skip schedule slots of processes that are no longer running. *)
      while !pos < Array.length schedule && not (running schedule.(!pos)) do
        incr pos
      done;
      if !pos < Array.length schedule then begin
        let pid = schedule.(!pos) in
        incr pos;
        Sched.Schedule pid
      end
      else if then_halt then Sched.Halt
      else fallback.Sched.decide view
    end
  in
  { Sched.adv_name = "fixed-schedule"; adv_klass = Sched.Oblivious; decide }

let adaptive name decide =
  { Sched.adv_name = name; adv_klass = Sched.Adaptive; decide }

let location_oblivious name decide =
  { Sched.adv_name = name; adv_klass = Sched.Location_oblivious; decide }

let rw_oblivious name decide =
  { Sched.adv_name = name; adv_klass = Sched.Rw_oblivious; decide }

let with_crashes crashes (adv : Sched.adversary) =
  let pending_crashes = ref crashes in
  let decide (view : Sched.view) =
    let due =
      List.find_opt
        (fun (pid, at) ->
          Array.exists (fun p -> p = pid) view.runnable
          && (view.pending_of pid).Sched.view_steps >= at)
        !pending_crashes
    in
    match due with
    | Some (pid, at) ->
        pending_crashes := List.filter (fun c -> c <> (pid, at)) !pending_crashes;
        Sched.Crash_proc pid
    | None -> adv.Sched.decide view
  in
  {
    Sched.adv_name = adv.Sched.adv_name ^ "+crashes";
    adv_klass = adv.Sched.adv_klass;
    decide;
  }

let random_crashes ?max_crashes ~seed ~crash_prob (adv : Sched.adversary) =
  let rng = Rng.create seed in
  (* [None] until the first decision, when the paper's n-1 default can
     be computed from the number of processes still runnable. *)
  let budget = ref None in
  let decide (view : Sched.view) =
    let m = Array.length view.runnable in
    let left =
      match !budget with
      | Some left -> left
      | None ->
          let left =
            match max_crashes with Some c -> c | None -> max 0 (m - 1)
          in
          budget := Some left;
          left
    in
    if left > 0 && m > 1 && Rng.float rng < crash_prob then begin
      budget := Some (left - 1);
      Sched.Crash_proc view.runnable.(Rng.int rng m)
    end
    else adv.Sched.decide view
  in
  {
    Sched.adv_name = adv.Sched.adv_name ^ "+random-crashes";
    adv_klass = adv.Sched.adv_klass;
    decide;
  }
