(* Register allocator, space accounting, and the arena-reuse hook.

   [reset] exists so a trial harness can build an algorithm structure
   (thousands of registers, each with a formatted debug name) once and
   then recycle it across a whole batch of trials: every register
   allocated from this memory registers a reset thunk at creation, and
   [reset] replays them, restoring the freshly-allocated state without
   re-allocating anything. *)

type t = {
  mutable count : int;
  (* Reset thunks of every register allocated from this memory, in
     reverse allocation order. Order is irrelevant: each thunk touches
     only its own register. *)
  mutable resets : (unit -> unit) list;
}

let create () = { count = 0; resets = [] }

let alloc t =
  let id = t.count in
  t.count <- id + 1;
  id

let on_reset t f = t.resets <- f :: t.resets

let reset t = List.iter (fun f -> f ()) t.resets

let allocated t = t.count
