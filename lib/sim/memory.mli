(** Register allocator and space accounting.

    All shared registers of a simulated system are allocated from a
    single [Memory.t]. The number of registers allocated is the space
    complexity the paper's Section 5 reasons about.

    A memory also doubles as a reusable {e arena}: {!reset} restores
    every register allocated from it to its freshly-created state
    (value [0], no last writer) without allocating, so trial batches can
    build an algorithm structure once and recycle it per trial instead
    of rebuilding it (see [Engine.run_local] and DESIGN.md §9). *)

type t

val create : unit -> t

val alloc : t -> int
(** Allocate a fresh register id. *)

val on_reset : t -> (unit -> unit) -> unit
(** [on_reset t f] registers [f] to run on every {!reset}.
    {!Register.create} uses this to enrol each register's
    state-restoring thunk; other stateful structures allocated from the
    arena may enrol their own. *)

val reset : t -> unit
(** Run every registered reset thunk, restoring all registers (and any
    other enrolled state) to the state immediately after allocation.
    The allocation count is unchanged — {!allocated} still reports the
    space complexity of the structure. *)

val allocated : t -> int
(** Total number of registers allocated so far. *)
