(** Small descriptive-statistics helpers for experiment harnesses.

    All summaries are computed with a single sort of the sample plus a
    one-pass Welford mean/variance — no repeated sorting per percentile,
    no [List.nth] walks — so they stay cheap on the engine's large
    per-trial result arrays. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1); 0 for n < 2. *)
  min : float;
  max : float;
  median : float;
  p95 : float;
  p999 : float;
      (** Nearest-rank 99.9th percentile — the tail-latency metric the
          service benchmarks report. Equals [max] for samples smaller
          than 1000. *)
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val summarize_array : float array -> summary
(** Like {!summarize} on an array (the engine's native result shape).
    Does not mutate its argument. Raises [Invalid_argument] on [[||]]. *)

val summarize_sorted : float array -> summary
(** Like {!summarize_array} but assumes the array is already sorted
    ascending, skipping the sort (and the defensive copy). *)

val mean : float list -> float

val mean_array : float array -> float

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0, 1\]], nearest-rank on the sorted
    sample. *)

val percentile_sorted : float array -> float -> float
(** Nearest-rank percentile on an already-sorted array: O(1) per call,
    so summarising many percentiles costs one sort total.

    Edge cases are explicit rather than falling out of index
    arithmetic: the empty array raises [Invalid_argument] (never an
    out-of-bounds access), a single-element array returns its element
    for every [p], and [p] outside [\[0, 1\]] raises
    [Invalid_argument]. *)

val percentile_sorted_opt : float array -> float -> float option
(** Total variant of {!percentile_sorted}: [None] on the empty array
    (still raises on [p] outside [\[0, 1\]] — that is a caller bug, not
    a data shape). *)

val pp_summary : summary Fmt.t
(** ["mean +/- sd (median m, p95 q, p999 r, n)"]. *)

(** Log-spaced bucket indexing for bounded-memory histograms.

    Values are mapped to buckets with 32 sub-buckets per power of two:
    bucket 0 covers [\[0, 1)] (and absorbs negative or NaN inputs),
    and bucket [1 + oct*32 + s] covers
    [\[2^oct * (1 + s/32), 2^oct * (1 + (s+1)/32))]. Every bucket's
    width is at most 1/32 of its lower bound, so a percentile read off
    a bucket midpoint is within ~1.6% (relative) of the exact sample
    percentile — the contract the service latency histogram tests
    check. The mapping is monotone, total, and allocation-free. *)
module Logbucket : sig
  val sub : int
  (** Sub-buckets per octave (32). *)

  val count : int
  (** Total number of buckets; indices are [0 .. count - 1]. Values at
      or beyond [2^52] clamp into the last bucket. *)

  val of_value : float -> int
  (** Bucket index for a value. Monotone; never raises. *)

  val lower : int -> float
  (** Inclusive lower bound of a bucket (0 for bucket 0). *)

  val upper : int -> float
  (** Exclusive upper bound of a bucket ([infinity] for the last). *)

  val midpoint : int -> float
  (** Representative value reported for samples in a bucket. Monotone
      in the index. *)
end
