type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p999 : float;
}

let mean_array xs =
  match Array.length xs with
  | 0 -> invalid_arg "Stats.mean: empty sample"
  | n -> Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let mean xs = mean_array (Array.of_list xs)

(* Nearest-rank percentile on an already-sorted array: O(1). The edge
   shapes are handled explicitly — empty is an explicit error and a
   singleton short-circuits — so no input reaches the rank arithmetic
   able to index out of bounds (p = 0 yields rank -1, p = 1 yields
   rank n - 1; both ends are clamped anyway, by construction). *)
let percentile_sorted sorted p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stats.percentile: p must be in [0, 1]";
  match Array.length sorted with
  | 0 -> invalid_arg "Stats.percentile: empty sample"
  | 1 -> sorted.(0)
  | n ->
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      sorted.(min (n - 1) (max 0 rank))

let percentile_sorted_opt sorted p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stats.percentile: p must be in [0, 1]";
  if Array.length sorted = 0 then None else Some (percentile_sorted sorted p)

let sorted_of_list xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

let percentile xs p = percentile_sorted (sorted_of_list xs) p

(* One sort + one Welford pass, instead of a sort per percentile and a
   List.nth walk per rank. *)
let summarize_sorted sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let mean = ref 0.0 and m2 = ref 0.0 in
  for i = 0 to n - 1 do
    let x = sorted.(i) in
    let d = x -. !mean in
    mean := !mean +. (d /. float_of_int (i + 1));
    m2 := !m2 +. (d *. (x -. !mean))
  done;
  let var = if n < 2 then 0.0 else !m2 /. float_of_int (n - 1) in
  {
    count = n;
    mean = !mean;
    stddev = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile_sorted sorted 0.5;
    p95 = percentile_sorted sorted 0.95;
    p999 = percentile_sorted sorted 0.999;
  }

let summarize_array xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  summarize_sorted sorted

let summarize xs = summarize_sorted (sorted_of_list xs)

let pp_summary ppf s =
  Fmt.pf ppf "%.2f +/- %.2f (median %.2f, p95 %.2f, p999 %.2f, n=%d)" s.mean
    s.stddev s.median s.p95 s.p999 s.count

(* Log-spaced bucket indexing for bounded-memory histograms: 32
   sub-buckets per power of two, so any value maps to a bucket whose
   width is at most 1/32 of its lower bound — percentiles read off the
   bucket midpoints are within ~1.6% of the exact ones. Kept here (not
   in the service layer) so every consumer of bucketed percentiles
   shares one indexing scheme. *)
module Logbucket = struct
  let sub = 32
  let octaves = 52
  let count = 1 + (octaves * sub)

  (* Bucket 0 is [0, 1) (and any negative or NaN input); bucket
     [1 + oct*sub + s] covers [2^oct * (1 + s/sub), 2^oct * (1 +
     (s+1)/sub)). Monotone in the value. *)
  let of_value v =
    if not (v >= 1.0) then 0
    else begin
      let m, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1), so v in [2^oct, 2^(oct+1)). *)
      let oct = e - 1 in
      if oct >= octaves then count - 1
      else begin
        let s = int_of_float ((Float.ldexp m 1 -. 1.0) *. float_of_int sub) in
        let s = if s > sub - 1 then sub - 1 else s in
        1 + (oct * sub) + s
      end
    end

  let lower i =
    if i <= 0 then 0.0
    else begin
      let i = min i (count - 1) in
      let oct = (i - 1) / sub and s = (i - 1) mod sub in
      Float.ldexp (1.0 +. (float_of_int s /. float_of_int sub)) oct
    end

  let upper i =
    if i < 0 then 0.0
    else if i = 0 then 1.0
    else if i >= count - 1 then infinity
    else begin
      let oct = (i - 1) / sub and s = (i - 1) mod sub in
      if s = sub - 1 then Float.ldexp 1.0 (oct + 1)
      else Float.ldexp (1.0 +. (float_of_int (s + 1) /. float_of_int sub)) oct
    end

  let midpoint i =
    if i <= 0 then 0.5
    else if i >= count - 1 then lower (count - 1)
    else (lower i +. upper i) /. 2.0
end
