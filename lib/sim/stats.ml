type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p999 : float;
}

let mean_array xs =
  match Array.length xs with
  | 0 -> invalid_arg "Stats.mean: empty sample"
  | n -> Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let mean xs = mean_array (Array.of_list xs)

(* Nearest-rank percentile on an already-sorted array: O(1). The edge
   shapes are handled explicitly — empty is an explicit error and a
   singleton short-circuits — so no input reaches the rank arithmetic
   able to index out of bounds (p = 0 yields rank -1, p = 1 yields
   rank n - 1; both ends are clamped anyway, by construction). *)
let percentile_sorted sorted p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stats.percentile: p must be in [0, 1]";
  match Array.length sorted with
  | 0 -> invalid_arg "Stats.percentile: empty sample"
  | 1 -> sorted.(0)
  | n ->
      let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
      sorted.(min (n - 1) (max 0 rank))

let percentile_sorted_opt sorted p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stats.percentile: p must be in [0, 1]";
  if Array.length sorted = 0 then None else Some (percentile_sorted sorted p)

let sorted_of_list xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

let percentile xs p = percentile_sorted (sorted_of_list xs) p

(* One sort + one Welford pass, instead of a sort per percentile and a
   List.nth walk per rank. *)
let summarize_sorted sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let mean = ref 0.0 and m2 = ref 0.0 in
  for i = 0 to n - 1 do
    let x = sorted.(i) in
    let d = x -. !mean in
    mean := !mean +. (d /. float_of_int (i + 1));
    m2 := !m2 +. (d *. (x -. !mean))
  done;
  let var = if n < 2 then 0.0 else !m2 /. float_of_int (n - 1) in
  {
    count = n;
    mean = !mean;
    stddev = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile_sorted sorted 0.5;
    p95 = percentile_sorted sorted 0.95;
    p999 = percentile_sorted sorted 0.999;
  }

let summarize_array xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  summarize_sorted sorted

let summarize xs = summarize_sorted (sorted_of_list xs)

let pp_summary ppf s =
  Fmt.pf ppf "%.2f +/- %.2f (median %.2f, p95 %.2f, p999 %.2f, n=%d)" s.mean
    s.stddev s.median s.p95 s.p999 s.count
