type 'state spec = {
  initial : 'state;
  apply : 'state -> op:int -> result:int -> 'state option;
}

type operation = {
  op : int;
  result : int;
  start_time : int;
  end_time : int;
}

type pending = {
  p_op : int;
  p_start : int;
  possible_results : int list;
}

(* DFS over linearization prefixes: at each point, any completed
   operation that is "minimal" (no other completed operation ended
   before it started) may be linearized next if the spec accepts it; a
   pending operation may be linearized (with any of its candidate
   results) once every completed operation that ended before it started
   has been consumed, or dropped entirely (it never took effect).
   Pending operations never respond, so they impose no real-time
   constraint on anyone else. *)
let search_incomplete spec completed pending =
  let rec search state completed pending =
    match completed with
    | [] -> true
    | _ ->
        let minimal o =
          not
            (List.exists
               (fun o' -> o' != o && o'.end_time < o.start_time)
               completed)
        in
        List.exists
          (fun o ->
            minimal o
            &&
            match spec.apply state ~op:o.op ~result:o.result with
            | Some state' ->
                search state'
                  (List.filter (fun o' -> o' != o) completed)
                  pending
            | None -> false)
          completed
        || List.exists
             (fun p ->
               (not
                  (List.exists (fun o -> o.end_time < p.p_start) completed))
               && List.exists
                    (fun r ->
                      match spec.apply state ~op:p.p_op ~result:r with
                      | Some state' ->
                          search state' completed
                            (List.filter (fun p' -> p' != p) pending)
                      | None -> false)
                    p.possible_results)
             pending
  in
  search spec.initial completed pending

let linearizable spec ops = search_incomplete spec ops []

let linearizable_incomplete spec ~completed ~pending =
  search_incomplete spec completed pending

let tas_spec =
  {
    initial = false;
    apply =
      (fun state ~op:_ ~result ->
        match (state, result) with
        | false, 0 -> Some true
        | true, 1 -> Some true
        | false, 1 | true, 0 -> None
        | _, _ -> None);
  }

let tas_history_of_sched sched =
  let ops = ref [] in
  for pid = Sched.n sched - 1 downto 0 do
    match Sched.result sched pid with
    | Some result ->
        let fin = Sched.finish_time sched pid in
        let start =
          let s = Sched.first_step_time sched pid in
          if s < 0 then fin else s
        in
        ops := { op = pid; result; start_time = start; end_time = fin } :: !ops
    | None -> ()
  done;
  !ops

(* An unfinished process's TAS call — crashed, or cut off when the
   adversary halted the execution — may have taken effect only if it
   took at least one shared-memory step, and only as the winning 0
   (taking effect as 1 leaves the spec state unchanged, so it never
   legalises anything a dropped call would not). *)
let tas_pending_of_sched sched =
  let ps = ref [] in
  for pid = Sched.n sched - 1 downto 0 do
    if
      Sched.result sched pid = None
      && Sched.first_step_time sched pid >= 0
    then
      ps :=
        {
          p_op = pid;
          p_start = Sched.first_step_time sched pid;
          possible_results = [ 0 ];
        }
        :: !ps
  done;
  !ps

let check_tas_sched sched =
  linearizable_incomplete tas_spec
    ~completed:(tas_history_of_sched sched)
    ~pending:(tas_pending_of_sched sched)
