(** Atomic multi-reader multi-writer register.

    A register holds an [int] value (initially 0) and remembers the id of
    the process that last wrote it ([-1] initially). The last-writer
    field implements the paper's convention (Section 5) that every
    written value carries the writer's identifier, which defines the
    "visible" relation used by the covering argument. *)

type t = private {
  id : int;  (** Allocation id, unique within a {!Memory.t}. *)
  name : string;  (** Debug name, e.g. ["ge[3].R[5]"]. *)
  mutable value : int;
  mutable last_writer : int;
}

val create : ?name:string -> Memory.t -> t
(** Allocate a fresh register with initial value [0]. The register
    enrols itself with {!Memory.on_reset}, so {!Memory.reset} restores
    it to this initial state ([value = 0], [last_writer = -1]). *)

val read : t -> int
(** Direct read; only the scheduler and test harnesses call this.
    Simulated process code must use {!Ctx.read}. *)

val write : t -> writer:int -> int -> unit
(** Direct write; only the scheduler calls this. *)

val pp : t Fmt.t
