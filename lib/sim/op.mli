(** Shared-memory operations and trace events. *)

type kind =
  | Read
  | Write of int  (** Value to be written. *)

type pending = {
  reg : Register.t;
  kind : kind;
}
(** An operation a process is poised to perform. In the paper's
    terminology, a process whose pending operation is a write {e covers}
    that register. *)

type event =
  | Step of {
      time : int;
      pid : int;
      reg : int;  (** Register allocation id. *)
      reg_name : string;
      kind : kind;
      read_value : int option;  (** [Some v] for reads. *)
      seen_writer : int;
          (** Last writer of the register at read time, -1 if none; -1
              for writes. *)
    }
  | Flip of { time : int; pid : int; bound : int; outcome : int }
      (** [bound < 0] encodes the geometric draw with parameter [-bound]. *)
  | Finish of { time : int; pid : int; result : int }
  | Crash of { time : int; pid : int }

val pp_kind : kind Fmt.t

val pp_event : event Fmt.t

val event_to_string : event -> string
(** [event_to_string e] is {!pp_event} rendered to a string — handy for
    comparing traces in tests ([Alcotest.(check (list string))]). *)
