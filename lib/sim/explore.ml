(* Huge-arity choice points (e.g. probability draws over 2^20 values)
   are branched over a bounded set of evenly spaced representative
   outcomes instead of exhaustively. *)
let max_branch = 8

(* Execute one run following the choice prefix [path]; uncontrolled
   choices fall back to round-robin scheduling and pseudo-random flips
   (seeded by [tail_seed]). Returns the final scheduler, the outcome of
   the run ([Error] when the execution itself failed, e.g. blew the
   step budget because a crash deadlocked a survivor), and, when a
   choice point sits at index [length path] within [depth], its
   (capped) arity — the children of this prefix in the DFS. The branch
   arity is reported even for failed runs: the frontier choice point is
   reached before the execution diverges, and sibling resolutions may
   behave differently.

   When [max_crashes > 0] a scheduling choice point with [m] runnable
   processes gets extra outcomes: choice [c < min m max_branch]
   schedules process [runnable.(c mod m)] as before, and choice
   [c >= min m max_branch] crashes process
   [runnable.((c - min m max_branch) mod m)], consuming one unit of the
   crash budget. With [max_crashes = 0] the arity and the numbering of
   every choice point are exactly the crash-free ones, so existing
   paths replay unchanged. *)
let run_path ~tail_seed ~depth ~max_crashes ~max_total_steps ~programs
    (path : int array) =
  let cursor = ref 0 in
  let branch = ref None in
  let next_choice arity =
    let i = !cursor in
    incr cursor;
    if i < Array.length path then Some path.(i)
    else begin
      if i = Array.length path && i < depth && !branch = None then
        branch := Some (min arity max_branch);
      None
    end
  in
  let oracle ~pid:_ ~bound =
    let arity = if bound < 0 then -bound else bound in
    match next_choice arity with
    | Some c ->
        let outcome =
          if arity <= max_branch then c else c * (arity / max_branch)
        in
        Some (if bound < 0 then outcome + 1 else outcome)
    | None -> None
  in
  let rr = ref 0 in
  let crashes_left = ref max_crashes in
  let decide (view : Sched.view) =
    match Array.length view.runnable with
    | 0 -> Sched.Halt
    | m -> (
        let sched_arity = min m max_branch in
        let crash_arity = if !crashes_left > 0 then min m max_branch else 0 in
        match next_choice (sched_arity + crash_arity) with
        | Some c when c < sched_arity || crash_arity = 0 ->
            (* The [crash_arity = 0] guard keeps stale paths (shrinking
               can realign a crash choice onto a budget-exhausted point)
               interpreted as schedules rather than illegal crashes. *)
            Sched.Schedule view.runnable.(c mod m)
        | Some c ->
            decr crashes_left;
            Sched.Crash_proc view.runnable.((c - sched_arity) mod m)
        | None ->
            incr rr;
            Sched.Schedule view.runnable.(!rr mod m))
  in
  let sched = Sched.create ~seed:tail_seed ~flip_oracle:oracle (programs ()) in
  let outcome =
    match
      Sched.run ~max_total_steps sched
        { Sched.adv_name = "explorer"; adv_klass = Sched.Adaptive; decide }
    with
    | () -> Ok ()
    | exception e -> Error e
  in
  (sched, outcome, !branch)

(* The tail seed (randomness beyond the controlled prefix) is a pure
   function of the path, not of DFS visit order: subtrees can then be
   enumerated in any order — or on parallel domains — and every path
   still executes bit-identically. *)
let tail_seed_of seed path =
  Array.fold_left (fun s c -> Rng.derive s ~stream:c) seed path

(* DFS over choice prefixes, restricted to extensions of [prefix] (the
   prefix execution itself included). [on_execution] sees every
   completed run (with the run's own outcome) and may raise to abort the
   search. Returns the number of executions run and whether the
   [max_paths] budget cut the enumeration short (unvisited prefixes
   remained when it was exhausted). *)
let dfs ~max_paths ~seed ~depth ~max_crashes ~max_total_steps ~prefix ~programs
    ~on_execution =
  let count = ref 0 in
  let truncated = ref false in
  let stack = ref [ prefix ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | path :: rest ->
        if !count >= max_paths then truncated := true
        else begin
          stack := rest;
          let sched, outcome, branch =
            run_path ~tail_seed:(tail_seed_of seed path) ~depth ~max_crashes
              ~max_total_steps ~programs path
          in
          incr count;
          on_execution ~path ~sched ~outcome;
          (match branch with
          | Some arity ->
              for c = arity - 1 downto 0 do
                stack := Array.append path [| c |] :: !stack
              done
          | None -> ());
          loop ()
        end
  in
  loop ();
  (!count, !truncated)

type stat = { executions : int; truncated : bool }

let explore_stat ?(max_paths = 2_000_000) ?(seed = 0xE8920AL) ?(max_crashes = 0)
    ?(max_total_steps = 10_000_000) ?(prefix = [||]) ~depth ~programs ~check ()
    =
  let executions, truncated =
    dfs ~max_paths ~seed ~depth ~max_crashes ~max_total_steps ~prefix ~programs
      ~on_execution:(fun ~path:_ ~sched ~outcome ->
        match outcome with Ok () -> check sched | Error e -> raise e)
  in
  { executions; truncated }

let explore ?max_paths ?seed ?max_crashes ?max_total_steps ?prefix ~depth
    ~programs ~check () =
  let s =
    explore_stat ?max_paths ?seed ?max_crashes ?max_total_steps ?prefix ~depth
      ~programs ~check ()
  in
  s.executions

let probe ?(seed = 0xE8920AL) ?(max_crashes = 0)
    ?(max_total_steps = 10_000_000) ?(prefix = [||]) ~depth ~programs ~check ()
    =
  let sched, outcome, branch =
    run_path ~tail_seed:(tail_seed_of seed prefix) ~depth ~max_crashes
      ~max_total_steps ~programs prefix
  in
  (match outcome with Ok () -> check sched | Error e -> raise e);
  branch

type violation = {
  path : int array;
  message : string;
  executions : int;
}

exception Found of int array * string

let find_violation ?(max_paths = 2_000_000) ?(seed = 0xE8920AL)
    ?(max_crashes = 0) ?(max_total_steps = 10_000_000) ~depth ~programs ~check
    () =
  let executions = ref 0 in
  let attempt path =
    match
      let sched, outcome, _ =
        run_path ~tail_seed:(tail_seed_of seed path) ~depth ~max_crashes
          ~max_total_steps ~programs path
      in
      (match outcome with Ok () -> () | Error e -> raise e);
      check sched
    with
    | () -> None
    | exception e -> Some (Printexc.to_string e)
  in
  match
    dfs ~max_paths ~seed ~depth ~max_crashes ~max_total_steps ~prefix:[||]
      ~programs
      ~on_execution:(fun ~path ~sched ~outcome ->
        incr executions;
        match
          (match outcome with Ok () -> () | Error e -> raise e);
          check sched
        with
        | () -> ()
        | exception e -> raise (Found (path, Printexc.to_string e)))
  with
  | _count -> None
  | exception Found (path, message) ->
      (* Greedy shrink: drop one choice at a time (from the end first)
         while the violation still reproduces deterministically. *)
      let shrunk = ref path and msg = ref message in
      let progress = ref true in
      while !progress do
        progress := false;
        let len = Array.length !shrunk in
        let i = ref (len - 1) in
        while not !progress && !i >= 0 do
          let candidate =
            Array.append (Array.sub !shrunk 0 !i)
              (Array.sub !shrunk (!i + 1) (len - !i - 1))
          in
          (match attempt candidate with
          | Some m ->
              shrunk := candidate;
              msg := m;
              progress := true
          | None -> ());
          decr i
        done
      done;
      Some { path = !shrunk; message = !msg; executions = !executions }

let replay ?(seed = 0xE8920AL) ?(max_crashes = 0)
    ?(max_total_steps = 10_000_000) ~path ~programs () =
  let sched, outcome, _ =
    run_path ~tail_seed:(tail_seed_of seed path) ~depth:0 ~max_crashes
      ~max_total_steps ~programs path
  in
  (match outcome with Ok () -> () | Error e -> raise e);
  sched
