type mem = { mutable count : int }
type reg = int Atomic.t
type ctx = { rng : Random.State.t option; slot : int }

let create () = { count = 0 }
let allocated m = m.count

let alloc m ~name:_ =
  m.count <- m.count + 1;
  Atomic.make 0

let ctx ?rng ~slot () = { rng; slot }
let self c = c.slot
let read _ r = Atomic.get r
let write _ r v = Atomic.set r v

let rng c =
  match c.rng with
  | Some r -> r
  | None ->
      invalid_arg
        "Atomic_mem: this context carries no Random.State but the algorithm \
         flipped a coin"

let flip c bound = Random.State.int (rng c) bound
let flip_bool c = Random.State.bool (rng c)

(* Same truncated-geometric shape as [Sim.Rng.geometric_capped]: count
   fair coins until the first heads, capped at [l]. *)
let flip_geometric c l =
  if l < 1 then invalid_arg "Atomic_mem.flip_geometric: l must be >= 1";
  let r = rng c in
  let rec loop i =
    if i >= l then l else if Random.State.bool r then i else loop (i + 1)
  in
  loop 1

let enter _ _ = ()
let leave _ _ = ()
