(** The MEM signature: the abstract shared-memory machine every election
    algorithm is written against, exactly once.

    An algorithm functorized over [S] sees multi-reader multi-writer
    atomic integer registers (allocated from a [mem] arena), a per-call
    execution context [ctx] carrying the caller's identity and coin
    source, and two probe hooks for phase attribution. Two backends
    implement it:

    - {!Sim_mem} forwards every operation to the effects-based simulator
      ({!Sim.Ctx}/{!Sim.Memory}/{!Obs}). Its executions are
      {e bit-identical} to the pre-functor hand-written code: same
      registers allocated in the same order with the same names, same
      effect sequence, same flip stream (see DESIGN.md §11).
    - {!Atomic_mem} runs on real domains: registers are [Atomic.t],
      coins come from a per-domain [Random.State], probes are no-ops.

    The contract mirrors the paper's model: registers hold integers
    (initially 0), operations are atomic reads and writes, and coin
    flips are local — the adversary (simulator scheduler or OS) only
    controls the interleaving of the shared-memory steps. *)

module type S = sig
  type mem
  (** Register arena; allocation happens only at construction time. *)

  type reg
  (** One atomic integer register, initially 0. *)

  type ctx
  (** Per-process execution context: identity + coin source. *)

  val alloc : mem -> name:string -> reg
  (** Allocate a fresh register. [name] is diagnostic (trace/metric
      labels in the simulator; ignored on atomics) but backends must not
      let it affect behaviour. *)

  val self : ctx -> int
  (** The caller's contender slot, [0 .. n-1]. Algorithms use it for
      symmetry breaking (splitter race ids, tournament leaves); it must
      be distinct per participant of one object. *)

  val read : ctx -> reg -> int

  val write : ctx -> reg -> int -> unit

  val flip : ctx -> int -> int
  (** [flip ctx bound] is a uniform draw from [0 .. bound - 1]. *)

  val flip_bool : ctx -> bool
  (** A fair coin. [Sim_mem] implements it as [flip ctx 2 = 1] — the
      exact expression the pre-functor code used — so the simulator's
      flip stream is unchanged. *)

  val flip_geometric : ctx -> int -> int
  (** [flip_geometric ctx l] draws [x] with [Pr(x = i) = 2^-i],
      truncated to [1 .. l] (the cap absorbs the tail mass). *)

  val enter : ctx -> string -> unit
  (** Probe hook: the caller enters the named algorithm phase. Free when
      no observer is attached; always free on atomics. *)

  val leave : ctx -> string -> unit
end
