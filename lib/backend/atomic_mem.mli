(** The real-multicore backend of {!Mem.S}.

    Registers are [Atomic.t] cells — OCaml's [Atomic] operations are
    sequentially consistent, so they model the paper's atomic MRMW
    registers directly — and the context carries the caller's contender
    slot plus an optional per-domain [Random.State] for coin flips.
    [mem] only counts allocations (for space accounting); the probe
    hooks are no-ops. Safe to share one instantiated algorithm across
    domains: all mutable state lives in the atomics. *)

type mem
type reg = int Atomic.t
type ctx

val create : unit -> mem

val allocated : mem -> int
(** Registers allocated from this arena so far. *)

val alloc : mem -> name:string -> reg

val ctx : ?rng:Random.State.t -> slot:int -> unit -> ctx
(** [rng] may be omitted for purely deterministic algorithms (e.g. the
    Moir–Anderson splitter); a coin flip without one raises
    [Invalid_argument]. [slot] must be in [0 .. n-1], distinct per
    participant. *)

val self : ctx -> int
val read : ctx -> reg -> int
val write : ctx -> reg -> int -> unit
val flip : ctx -> int -> int
val flip_bool : ctx -> bool
val flip_geometric : ctx -> int -> int
val enter : ctx -> string -> unit
val leave : ctx -> string -> unit
