(** The simulator backend of {!Mem.S}.

    Every operation forwards to the effects-based simulator — [alloc]
    is {!Sim.Register.create} (same arena, same allocation ids, same
    names), reads/writes/flips perform the {!Sim.Ctx} effects, and the
    probe hooks are {!Obs.enter}/{!Obs.leave} keyed by the simulator
    pid. An algorithm instantiated with this backend is therefore
    bit-identical to the same algorithm hand-written against [Sim.Ctx]:
    identical register layout, identical effect sequence, identical
    flip stream, identical probe spans. The type equalities below are
    public so existing [Sim]-typed call sites keep compiling against
    the functorized modules unchanged. *)

type mem = Sim.Memory.t
type reg = Sim.Register.t
type ctx = Sim.Ctx.t

val alloc : mem -> name:string -> reg
val self : ctx -> int
val read : ctx -> reg -> int
val write : ctx -> reg -> int -> unit
val flip : ctx -> int -> int
val flip_bool : ctx -> bool
val flip_geometric : ctx -> int -> int
val enter : ctx -> string -> unit
val leave : ctx -> string -> unit
