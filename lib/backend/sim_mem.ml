type mem = Sim.Memory.t
type reg = Sim.Register.t
type ctx = Sim.Ctx.t

let alloc mem ~name = Sim.Register.create ~name mem
let self = Sim.Ctx.pid
let read = Sim.Ctx.read
let write = Sim.Ctx.write
let flip = Sim.Ctx.flip
let flip_bool = Sim.Ctx.flip_bool
let flip_geometric = Sim.Ctx.flip_geometric
let enter ctx phase = Obs.enter ~pid:(Sim.Ctx.pid ctx) phase
let leave ctx phase = Obs.leave ~pid:(Sim.Ctx.pid ctx) phase
