(** Parallel trial engine: run batches of independent simulated trials
    across OCaml 5 domains with bit-identical results regardless of the
    domain count.

    {2 Determinism contract}

    Trial [t] of a batch seeded with [seed] always executes with the
    derived seed [Sim.Rng.derive seed ~stream:t] and deposits its result
    in slot [t]; the chunked work distribution only decides {e which
    domain} runs a trial, never {e what} the trial computes. Hence
    [run ~domains:1] and [run ~domains:8] return equal arrays, and every
    aggregation below — an in-order fold, or per-chunk accumulators
    merged in chunk order — is equally domain-count-independent.

    {2 Arenas and allocation discipline}

    Trial bodies must not share mutable state across domains. They may
    share mutable state {e within} a worker through the [local] arena of
    {!run_local}/{!run_float}/{!run_into}: [local ()] is evaluated once
    per participating worker (in that worker's domain) and handed to
    every trial that worker runs. The intended pattern is a reusable
    simulation arena — build the [Sim.Memory.t], the algorithm structure
    and the [Sim.Sched.t] once, then [Sim.Memory.reset] +
    [Sim.Sched.reset] per trial — which eliminates the per-trial
    construction cost entirely. The caller must guarantee a reused
    arena yields the same per-trial result as a fresh one (reset
    everything the trial mutates); the determinism contract then holds
    unchanged. *)

val default_domains : unit -> int
(** [RTAS_DOMAINS] from the environment if set to a positive integer,
    else [Domain.recommended_domain_count ()]. *)

val effective_domains : requested:int -> int
(** [requested] clamped to [Domain.recommended_domain_count ()] (and to
    at least 1): the pool size that can actually run in parallel on
    this host. Benchmarks use it so wall-clock numbers are not poisoned
    by overcommitted domains; raises [Invalid_argument] when
    [requested < 1]. *)

val calibrated_chunk :
  ?target_s:float -> domains:int -> trials:int -> (unit -> unit) -> int
(** [calibrated_chunk ~domains ~trials sample] sizes chunks adaptively:
    it runs [sample] (one representative trial) twice — a warm-up, then
    a timed run — and returns the chunk size whose cost is roughly
    [target_s] (default 10ms), clamped to keep at least ~4 chunks per
    domain so stragglers can rebalance, and to at least 1. Chunk size
    never affects results, only scheduling granularity. *)

type worker_stats = {
  w_worker : int;  (** Worker index; 0 is the calling domain. *)
  w_trials : int;  (** Trials this worker executed. *)
  w_chunks : int;  (** Chunks this worker claimed. *)
  w_minor_words : float;
  w_promoted_words : float;
  w_major_words : float;
  w_minor_collections : int;
  w_major_collections : int;
}
(** Per-worker observability for a batch: how the dynamic chunking
    balanced the work, and the worker domain's [Gc.quick_stat] deltas
    over its whole participation (arena construction included). The
    allocation columns are the direct measure of trial-loop allocation
    discipline — [make perf-regress] tracks them per PR. *)

val run :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  (trial:int -> seed:int64 -> 'a) ->
  'a array
(** [run ~trials ~seed f] evaluates [f ~trial:t ~seed:(derive seed t)]
    for [t] in [\[0, trials)] on a pool of [domains] domains (default
    {!default_domains}; [1] runs inline without spawning) and returns
    the per-trial results in trial order. Work is handed out in chunks
    of [chunk] trials (default: ~8 chunks per domain). An exception in
    any trial is re-raised after all domains are joined. Trial 0 runs
    first on the calling domain: its value seeds the result array, so
    no per-trial [option] boxing occurs. *)

val tasks : ?domains:int -> ?chunk:int -> n:int -> (int -> 'a) -> 'a array
(** Seedless task fan-out: evaluate [f i] for [i] in [\[0, n)] on the
    domain pool and return the results in task order. For callers whose
    tasks are already pure functions of the task index and manage their
    own derived streams — the sharded service driver runs its shards
    through this. The determinism contract is {!run}'s: which domain
    runs a task never changes what it computes, so the result array is
    identical for any [domains]. Tasks must not share mutable state. *)

val run_local :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  local:(unit -> 'w) ->
  ('w -> trial:int -> seed:int64 -> 'a) ->
  'a array
(** {!run} with a per-worker arena: [f] receives the value [local ()]
    built by the worker that runs the trial (see the module preamble).
    Trial 0 runs on the calling domain with its own [local ()]. *)

val run_float :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  local:(unit -> 'w) ->
  ('w -> trial:int -> seed:int64 -> float) ->
  floatarray
(** {!run_local} for float-valued trials, writing results unboxed into
    a [floatarray]: no per-trial allocation on the result path at all
    (pass [~local:(fun () -> ())] when no arena is needed). *)

val run_probed :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  probe:(unit -> 'p * Obs.Probe.sink) ->
  local:('p -> 'w) ->
  ('w -> trial:int -> seed:int64 -> unit) ->
  worker_stats array * 'p list
(** {!run_into} with per-worker observability: every participating
    worker evaluates [probe ()] in its own domain to obtain a probe
    handle (e.g. an [Obs.Collector.t]) plus the sink feeding it,
    installs the sink in that domain's [Obs.Probe] slot {e before}
    building its arena with [local], and the handles of all workers are
    returned next to the usual {!worker_stats}. Because which worker
    runs how many trials is scheduling-dependent, the handle list is in
    no particular order — aggregate with an associative and commutative
    merge ([Obs.Collector.merge] of the snapshots), which yields
    domain-count-independent totals for domain-count-independent trial
    bodies. The calling domain's previously installed sink (if any) is
    restored afterwards. *)

val run_into :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  local:(unit -> 'w) ->
  ('w -> trial:int -> seed:int64 -> unit) ->
  worker_stats array
(** The into-style writer API: the caller owns the result sink — the
    callback writes trial [t]'s outcome wherever it wants (a
    preallocated [int array], a [Bigarray], a float array slice...),
    and the engine materialises nothing. Distinct trials must write to
    distinct locations, so concurrent workers never race. Returns the
    per-worker statistics of the batch (slot 0 = the calling domain);
    the other runners discard them. *)

val fold :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  init:'b ->
  add:('b -> 'a -> 'b) ->
  (trial:int -> seed:int64 -> 'a) ->
  'b
(** {!run}, then fold the result array left-to-right: deterministic for
    any [add]. *)

type ('a, 'acc) reducer = {
  empty : unit -> 'acc;
  add : 'acc -> 'a -> 'acc;
  merge : 'acc -> 'acc -> 'acc;
}
(** A mergeable accumulator. [merge] must be associative with [empty ()]
    as identity for the reduction to be meaningful; it need {e not} be
    commutative — accumulators are merged in chunk order. *)

val reduce :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  reducer:('a, 'acc) reducer ->
  (trial:int -> seed:int64 -> 'a) ->
  'acc
(** Like {!fold} but without materialising the per-trial array: each
    chunk folds into its own accumulator as its trials complete, and the
    per-chunk accumulators are merged left-to-right at the end. Chunk
    boundaries depend only on [trials] and [chunk], so the result is
    bit-identical for any domain count. *)

val mean :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  (trial:int -> seed:int64 -> float) ->
  float
(** Arithmetic mean of a float-valued batch, accumulated in trial order
    over the unboxed {!run_float} sink. Raises [Invalid_argument] when
    [trials <= 0]. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), wall-clock seconds it took)]. *)

type explore_result = {
  executions : int;  (** Executions run and checked. *)
  truncated : bool;
      (** [true] when the [max_paths] budget cut the enumeration short
          (in the parallel case: in at least one subtree). A truncated
          count is a lower bound and — because the parallel search
          splits the budget evenly across subtrees while the sequential
          one spends it depth-first — may differ from the sequential
          count. Exhaustive searches ([truncated = false]) match the
          sequential enumeration exactly. *)
}

val explore :
  ?domains:int ->
  ?max_paths:int ->
  ?seed:int64 ->
  ?max_crashes:int ->
  ?max_total_steps:int ->
  depth:int ->
  programs:(unit -> (Sim.Ctx.t -> int) array) ->
  check:(Sim.Sched.t -> unit) ->
  unit ->
  explore_result
(** Parallel {!Sim.Explore.explore}: the empty-prefix execution is
    probed once, then the independent subtrees of the first choice point
    fan out over the domain pool, each enumerated by the sequential DFS
    restricted to its prefix. Because tail randomness is derived from
    the path, the set of executions matches the sequential search
    whenever [max_paths] does not truncate it; truncation is never
    silent — it is reported in the result. [check] runs concurrently on
    several domains: it must only touch the scheduler it is handed (or
    synchronise its own shared state). An exception raised by [check]
    aborts the search and is re-raised. *)
