(** Parallel trial engine: run batches of independent simulated trials
    across OCaml 5 domains with bit-identical results regardless of the
    domain count.

    {2 Determinism contract}

    Trial [t] of a batch seeded with [seed] always executes with the
    derived seed [Sim.Rng.derive seed ~stream:t] and deposits its result
    in slot [t]; the chunked work distribution only decides {e which
    domain} runs a trial, never {e what} the trial computes. Hence
    [run ~domains:1] and [run ~domains:8] return equal arrays, and every
    aggregation below — an in-order fold, or per-chunk accumulators
    merged in chunk order — is equally domain-count-independent. Trial
    bodies must not share mutable state (each should build its own
    [Sim.Memory.t], scheduler, etc., as the experiment harnesses do). *)

val default_domains : unit -> int
(** [RTAS_DOMAINS] from the environment if set to a positive integer,
    else [Domain.recommended_domain_count ()]. *)

val run :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  (trial:int -> seed:int64 -> 'a) ->
  'a array
(** [run ~trials ~seed f] evaluates [f ~trial:t ~seed:(derive seed t)]
    for [t] in [\[0, trials)] on a pool of [domains] domains (default
    {!default_domains}; [1] runs inline without spawning) and returns
    the per-trial results in trial order. Work is handed out in chunks
    of [chunk] trials (default: ~8 chunks per domain). An exception in
    any trial is re-raised after all domains are joined. *)

val fold :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  init:'b ->
  add:('b -> 'a -> 'b) ->
  (trial:int -> seed:int64 -> 'a) ->
  'b
(** {!run}, then fold the result array left-to-right: deterministic for
    any [add]. *)

type ('a, 'acc) reducer = {
  empty : unit -> 'acc;
  add : 'acc -> 'a -> 'acc;
  merge : 'acc -> 'acc -> 'acc;
}
(** A mergeable accumulator. [merge] must be associative with [empty ()]
    as identity for the reduction to be meaningful; it need {e not} be
    commutative — accumulators are merged in chunk order. *)

val reduce :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  reducer:('a, 'acc) reducer ->
  (trial:int -> seed:int64 -> 'a) ->
  'acc
(** Like {!fold} but without materialising the per-trial array: each
    chunk folds into its own accumulator as its trials complete, and the
    per-chunk accumulators are merged left-to-right at the end. Chunk
    boundaries depend only on [trials] and [chunk], so the result is
    bit-identical for any domain count. *)

val mean :
  ?domains:int ->
  ?chunk:int ->
  trials:int ->
  seed:int64 ->
  (trial:int -> seed:int64 -> float) ->
  float
(** Arithmetic mean of a float-valued batch (in trial order). Raises
    [Invalid_argument] when [trials <= 0]. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), wall-clock seconds it took)]. *)

val explore :
  ?domains:int ->
  ?max_paths:int ->
  ?seed:int64 ->
  ?max_crashes:int ->
  ?max_total_steps:int ->
  depth:int ->
  programs:(unit -> (Sim.Ctx.t -> int) array) ->
  check:(Sim.Sched.t -> unit) ->
  unit ->
  int
(** Parallel {!Sim.Explore.explore}: the empty-prefix execution is
    probed once, then the independent subtrees of the first choice point
    fan out over the domain pool, each enumerated by the sequential DFS
    restricted to its prefix. Because tail randomness is derived from
    the path, the set of executions (and the returned count) matches the
    sequential search whenever [max_paths] does not truncate it; when it
    does, the budget is split evenly across subtrees instead of being
    spent depth-first. [check] runs concurrently on several domains:
    it must only touch the scheduler it is handed (or synchronise its
    own shared state). An exception raised by [check] aborts the search
    and is re-raised. *)
