(* Parallel trial engine: a domain-pool runner with chunked work
   distribution, deterministic per-trial seed derivation, reusable
   per-worker arenas, and GC observability.

   Determinism contract: trial [t] of a batch seeded with [seed] always
   runs with the derived seed [Sim.Rng.derive seed ~stream:t], and results
   land in slot [t] of the result sink, so the output is bit-identical
   no matter how many domains execute the batch (including 1) or how
   the dynamic chunking interleaves. Aggregation folds that sink in
   trial order (or merges per-chunk accumulators in chunk order), which
   keeps every reduction deterministic as well.

   Allocation discipline: the boxed ['a option array] sink is gone —
   [run] seeds its result array with trial 0's value, [run_float] writes
   unboxed into a [floatarray], and [run_into] lets the caller own the
   sink entirely. A worker builds its trial state once ([local], e.g. a
   [Sim.Memory]/[Sim.Sched] arena reset per trial) instead of once per
   trial; per-domain [Gc.quick_stat] deltas make the difference
   measurable (see [worker_stats] and DESIGN.md §9). *)

let recommended () = Domain.recommended_domain_count ()

let default_domains () =
  match Sys.getenv_opt "RTAS_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> recommended ())
  | None -> recommended ()

(* Warn (once per process) when a caller asks for more domains than the
   host can actually run in parallel: the batch still computes the same
   results — the contract is domain-count independence — but the extra
   domains only add spawn and scheduling overhead. *)
let overcommit_warned = Atomic.make false

let warn_overcommit d =
  if d > recommended () && not (Atomic.exchange overcommit_warned true) then
    Printf.eprintf
      "engine: %d domains requested but the host recommends %d; results are \
       identical for every domain count, the extra domains only add \
       overhead\n%!"
      d (recommended ())

let resolve_domains = function
  | Some d when d >= 1 ->
      warn_overcommit d;
      d
  | Some _ -> invalid_arg "Engine: domains must be >= 1"
  | None -> default_domains ()

let effective_domains ~requested =
  if requested < 1 then invalid_arg "Engine: domains must be >= 1";
  min requested (recommended ())

(* Dynamic chunked distribution over [lo, hi): workers repeatedly grab
   the next chunk of indices from a shared atomic cursor. Chunks
   amortise the cursor contention; the default aims for ~8 chunks per
   domain so stragglers still balance. *)
let chunk_size ~chunk ~domains ~trials =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Engine: chunk must be >= 1"
  | None -> max 1 (trials / (domains * 8))

let calibrated_chunk ?(target_s = 0.01) ~domains ~trials sample =
  if trials < 1 then invalid_arg "Engine.calibrated_chunk: trials must be >= 1";
  sample ();
  (* One warm-up, then time a second run: the first execution pays
     one-time costs (page faults, lazy growth) that a steady-state
     chunk should not be sized by. *)
  let t0 = Unix.gettimeofday () in
  sample ();
  let per_trial = Float.max (Unix.gettimeofday () -. t0) 1e-9 in
  let ideal = int_of_float (target_s /. per_trial) in
  (* Never fewer than ~4 chunks per domain (stragglers must be able to
     rebalance), never below 1. *)
  let cap = max 1 (trials / (domains * 4)) in
  max 1 (min ideal cap)

type worker_stats = {
  w_worker : int;
  w_trials : int;
  w_chunks : int;
  w_minor_words : float;
  w_promoted_words : float;
  w_major_words : float;
  w_minor_collections : int;
  w_major_collections : int;
}

let idle_worker w =
  {
    w_worker = w;
    w_trials = 0;
    w_chunks = 0;
    w_minor_words = 0.0;
    w_promoted_words = 0.0;
    w_major_words = 0.0;
    w_minor_collections = 0;
    w_major_collections = 0;
  }

let delta_stats ~worker ~trials ~chunks (s0 : Gc.stat) (s1 : Gc.stat) =
  {
    w_worker = worker;
    w_trials = trials;
    w_chunks = chunks;
    w_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
    w_promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
    w_major_words = s1.Gc.major_words -. s0.Gc.major_words;
    w_minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
    w_major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
  }

(* The dispatch core: run [one l t] for every [t] in [lo, hi), with
   [local] evaluated once per participating worker, in that worker's
   domain (so its allocations, and the trials', land in that domain's
   own minor heap). Returns per-worker GC/chunk statistics; slot 0 is
   the calling domain. *)
let dispatch ~domains ~chunk ~lo ~hi ~local one =
  let trials = hi - lo in
  if trials <= 0 then [||]
  else if domains = 1 || trials = 1 then begin
    let s0 = Gc.quick_stat () in
    let l = local () in
    for t = lo to hi - 1 do
      one l t
    done;
    [| delta_stats ~worker:0 ~trials ~chunks:1 s0 (Gc.quick_stat ()) |]
  end
  else begin
    let chunk = chunk_size ~chunk ~domains ~trials in
    let cursor = Atomic.make lo in
    let nworkers = min domains trials in
    let stats = Array.init nworkers idle_worker in
    let worker w () =
      let s0 = Gc.quick_stat () in
      let l = local () in
      let ran = ref 0 and chunks = ref 0 in
      let finish () =
        stats.(w) <-
          delta_stats ~worker:w ~trials:!ran ~chunks:!chunks s0
            (Gc.quick_stat ())
      in
      let continue = ref true in
      (try
         while !continue do
           let clo = Atomic.fetch_and_add cursor chunk in
           if clo >= hi then continue := false
           else begin
             incr chunks;
             for t = clo to min hi (clo + chunk) - 1 do
               one l t;
               incr ran
             done
           end
         done
       with e ->
         finish ();
         raise e);
      finish ()
    in
    let helpers =
      Array.init (nworkers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1) ()))
    in
    let main_exn = (try worker 0 (); None with e -> Some e) in
    (* Always join every helper; re-raise the first failure observed. *)
    let helper_exn =
      Array.fold_left
        (fun acc d ->
          match (try Domain.join d; None with e -> Some e) with
          | Some _ as e when acc = None -> e
          | _ -> acc)
        None helpers
    in
    match (main_exn, helper_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> stats
  end

(* Probed batches: each participating worker builds its own probe
   handle + sink via [probe ()] inside its domain, installs the sink in
   that domain's Probe slot, and builds its arena with the handle in
   scope. Handles land in per-worker slots claimed off an atomic
   counter (claim order is scheduling-dependent, which is why callers
   get a list to merge with an associative, commutative merge). Helper
   domains die with their sink installed — only the calling domain's
   slot needs restoring. *)
let run_probed ?domains ?chunk ~trials ~seed ~probe ~local f =
  if trials < 0 then invalid_arg "Engine: trials must be >= 0";
  let domains = resolve_domains domains in
  let nworkers =
    if trials <= 0 then 0
    else if domains = 1 || trials = 1 then 1
    else min domains trials
  in
  let handles = Array.make (max nworkers 1) None in
  let widx = Atomic.make 0 in
  let prev = Obs.Probe.current () in
  let local_w () =
    let w = Atomic.fetch_and_add widx 1 in
    let h, sink = probe () in
    handles.(w) <- Some h;
    Obs.Probe.install sink;
    local h
  in
  let restore () =
    match prev with
    | Some s -> Obs.Probe.install s
    | None -> Obs.Probe.uninstall ()
  in
  let stats =
    Fun.protect ~finally:restore (fun () ->
        dispatch ~domains ~chunk ~lo:0 ~hi:trials ~local:local_w (fun l t ->
            f l ~trial:t ~seed:(Sim.Rng.derive seed ~stream:t)))
  in
  (stats, List.filter_map Fun.id (Array.to_list handles))

let run_into ?domains ?chunk ~trials ~seed ~local write =
  if trials < 0 then invalid_arg "Engine: trials must be >= 0";
  let domains = resolve_domains domains in
  dispatch ~domains ~chunk ~lo:0 ~hi:trials ~local (fun l t ->
      write l ~trial:t ~seed:(Sim.Rng.derive seed ~stream:t))

let run_float ?domains ?chunk ~trials ~seed ~local f =
  if trials < 0 then invalid_arg "Engine: trials must be >= 0";
  let domains = resolve_domains domains in
  let results = Float.Array.create trials in
  ignore
    (dispatch ~domains ~chunk ~lo:0 ~hi:trials ~local (fun l t ->
         Float.Array.unsafe_set results t
           (f l ~trial:t ~seed:(Sim.Rng.derive seed ~stream:t))));
  results

let run_local ?domains ?chunk ~trials ~seed ~local f =
  if trials < 0 then invalid_arg "Engine: trials must be >= 0";
  let domains = resolve_domains domains in
  if trials = 0 then [||]
  else begin
    (* Seeding the result array with trial 0's value (instead of [None])
       kills the per-trial [Some] box; trial 0 runs on the calling
       domain before the fan-out. *)
    let l0 = local () in
    let v0 = f l0 ~trial:0 ~seed:(Sim.Rng.derive seed ~stream:0) in
    let results = Array.make trials v0 in
    if trials > 1 then begin
      let local = if domains = 1 then fun () -> l0 else local in
      ignore
        (dispatch ~domains ~chunk ~lo:1 ~hi:trials ~local (fun l t ->
             results.(t) <- f l ~trial:t ~seed:(Sim.Rng.derive seed ~stream:t)))
    end;
    results
  end

let run ?domains ?chunk ~trials ~seed f =
  run_local ?domains ?chunk ~trials ~seed
    ~local:(fun () -> ())
    (fun () ~trial ~seed -> f ~trial ~seed)

(* Seedless fan-out for callers that manage their own derived streams
   per task (e.g. the sharded service driver, whose shard results are a
   pure function of the shard index): the engine only provides the
   domain pool and the deterministic result order. *)
let tasks ?domains ?chunk ~n f =
  run ?domains ?chunk ~trials:n ~seed:0L (fun ~trial ~seed:_ -> f trial)

let fold ?domains ?chunk ~trials ~seed ~init ~add f =
  Array.fold_left add init (run ?domains ?chunk ~trials ~seed f)

type ('a, 'acc) reducer = {
  empty : unit -> 'acc;
  add : 'acc -> 'a -> 'acc;
  merge : 'acc -> 'acc -> 'acc;
}

let reduce ?domains ?chunk ~trials ~seed ~reducer f =
  let domains = resolve_domains domains in
  let chunk = chunk_size ~chunk ~domains ~trials in
  (* Chunk boundaries depend only on [trials] and [chunk], never on
     which domain claimed the chunk, so merging the per-chunk
     accumulators left-to-right is deterministic. *)
  let chunks = (trials + chunk - 1) / chunk in
  let accs = Array.init chunks (fun _ -> None) in
  let one () t =
    let ci = t / chunk in
    let acc = match accs.(ci) with None -> reducer.empty () | Some a -> a in
    accs.(ci) <-
      Some (reducer.add acc (f ~trial:t ~seed:(Sim.Rng.derive seed ~stream:t)))
  in
  ignore
    (dispatch ~domains ~chunk:(Some chunk) ~lo:0 ~hi:trials
       ~local:(fun () -> ())
       one);
  Array.fold_left
    (fun acc slot ->
      match slot with None -> acc | Some a -> reducer.merge acc a)
    (reducer.empty ()) accs

let mean ?domains ?chunk ~trials ~seed f =
  if trials <= 0 then invalid_arg "Engine.mean: trials must be >= 1";
  let results =
    run_float ?domains ?chunk ~trials ~seed
      ~local:(fun () -> ())
      (fun () ~trial ~seed -> f ~trial ~seed)
  in
  (* In-order fold over the unboxed sink: deterministic and box-free. *)
  let sum = ref 0.0 in
  Float.Array.iter (fun x -> sum := !sum +. x) results;
  !sum /. float_of_int trials

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* {1 Parallel bounded exploration}

   Fans [Sim.Explore]'s DFS out over the independent subtrees of the
   first choice point: the prefix execution runs once (the probe), then
   each child prefix [c] is a self-contained DFS that any domain can
   own. Per-path tail-seed derivation in [Sim.Explore] makes the union
   of the subtree enumerations identical to the sequential search. *)

type explore_result = { executions : int; truncated : bool }

let explore ?domains ?(max_paths = 2_000_000) ?(seed = 0xE8920AL)
    ?(max_crashes = 0) ?(max_total_steps = 10_000_000) ~depth ~programs ~check
    () =
  let domains = resolve_domains domains in
  if domains = 1 then begin
    let (s : Sim.Explore.stat) =
      Sim.Explore.explore_stat ~max_paths ~seed ~max_crashes ~max_total_steps
        ~depth ~programs ~check ()
    in
    { executions = s.executions; truncated = s.truncated }
  end
  else
    match
      Sim.Explore.probe ~seed ~max_crashes ~max_total_steps ~depth ~programs
        ~check ()
    with
    | None -> { executions = 1; truncated = false }
    | Some arity ->
        (* Budget split: each subtree may spend an equal share of the
           remaining path budget. When the budget binds, the sequential
           search spends it depth-first instead, so counts can differ —
           the [truncated] flag records that the enumeration (unlike an
           exhaustive search) was cut short. *)
        let budget = max 1 ((max_paths - 1) / arity) in
        let stats =
          run ~domains ~trials:arity ~seed (fun ~trial:c ~seed:_ ->
              Sim.Explore.explore_stat ~max_paths:budget ~seed ~max_crashes
                ~max_total_steps ~prefix:[| c |] ~depth ~programs ~check ())
        in
        {
          executions =
            1
            + Array.fold_left
                (fun a (s : Sim.Explore.stat) -> a + s.executions)
                0 stats;
          truncated =
            Array.exists (fun (s : Sim.Explore.stat) -> s.truncated) stats;
        }
