(* Parallel trial engine: a domain-pool runner with chunked work
   distribution and deterministic per-trial seed derivation.

   Determinism contract: trial [t] of a batch seeded with [seed] always
   runs with the derived seed [Sim.Rng.derive seed ~stream:t], and results
   land in slot [t] of the result array, so the output is bit-identical
   no matter how many domains execute the batch (including 1) or how
   the dynamic chunking interleaves. Aggregation folds that array in
   trial order (or merges per-chunk accumulators in chunk order), which
   keeps every reduction deterministic as well. *)

let default_domains () =
  match Sys.getenv_opt "RTAS_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let resolve_domains = function
  | Some d when d >= 1 -> d
  | Some _ -> invalid_arg "Engine: domains must be >= 1"
  | None -> default_domains ()

(* Dynamic chunked distribution over [0, trials): workers repeatedly
   grab the next chunk of indices from a shared atomic cursor. Chunks
   amortise the cursor contention; the default aims for ~8 chunks per
   domain so stragglers still balance. *)
let chunk_size ~chunk ~domains ~trials =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Engine: chunk must be >= 1"
  | None -> max 1 (trials / (domains * 8))

let run_into ~domains ~chunk ~trials one =
  if trials < 0 then invalid_arg "Engine.run: trials must be >= 0";
  if domains = 1 || trials <= 1 then
    for t = 0 to trials - 1 do
      one t
    done
  else begin
    let chunk = chunk_size ~chunk ~domains ~trials in
    let cursor = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add cursor chunk in
        if lo >= trials then continue := false
        else
          for t = lo to min trials (lo + chunk) - 1 do
            one t
          done
      done
    in
    let helpers =
      Array.init (min domains trials - 1) (fun _ -> Domain.spawn worker)
    in
    let main_exn = (try worker (); None with e -> Some e) in
    (* Always join every helper; re-raise the first failure observed. *)
    let helper_exn =
      Array.fold_left
        (fun acc d ->
          match (try Domain.join d; None with e -> Some e) with
          | Some _ as e when acc = None -> e
          | _ -> acc)
        None helpers
    in
    match (main_exn, helper_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end

let run ?domains ?chunk ~trials ~seed f =
  let domains = resolve_domains domains in
  let results = Array.make trials None in
  run_into ~domains ~chunk ~trials (fun t ->
      results.(t) <- Some (f ~trial:t ~seed:(Sim.Rng.derive seed ~stream:t)));
  Array.map
    (function Some v -> v | None -> assert false (* every slot filled *))
    results

let fold ?domains ?chunk ~trials ~seed ~init ~add f =
  Array.fold_left add init (run ?domains ?chunk ~trials ~seed f)

type ('a, 'acc) reducer = {
  empty : unit -> 'acc;
  add : 'acc -> 'a -> 'acc;
  merge : 'acc -> 'acc -> 'acc;
}

let reduce ?domains ?chunk ~trials ~seed ~reducer f =
  let domains = resolve_domains domains in
  let chunk = chunk_size ~chunk ~domains ~trials in
  (* Chunk boundaries depend only on [trials] and [chunk], never on
     which domain claimed the chunk, so merging the per-chunk
     accumulators left-to-right is deterministic. *)
  let chunks = (trials + chunk - 1) / chunk in
  let accs = Array.init chunks (fun _ -> None) in
  let one t =
    let ci = t / chunk in
    let acc = match accs.(ci) with None -> reducer.empty () | Some a -> a in
    accs.(ci) <- Some (reducer.add acc (f ~trial:t ~seed:(Sim.Rng.derive seed ~stream:t)))
  in
  run_into ~domains ~chunk:(Some chunk) ~trials one;
  Array.fold_left
    (fun acc slot ->
      match slot with None -> acc | Some a -> reducer.merge acc a)
    (reducer.empty ()) accs

let mean ?domains ?chunk ~trials ~seed f =
  if trials <= 0 then invalid_arg "Engine.mean: trials must be >= 1";
  let sum =
    fold ?domains ?chunk ~trials ~seed ~init:0.0 ~add:( +. ) f
  in
  sum /. float_of_int trials

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* {1 Parallel bounded exploration}

   Fans [Sim.Explore]'s DFS out over the independent subtrees of the
   first choice point: the prefix execution runs once (the probe), then
   each child prefix [c] is a self-contained DFS that any domain can
   own. Per-path tail-seed derivation in [Sim.Explore] makes the union
   of the subtree enumerations identical to the sequential search. *)
let explore ?domains ?(max_paths = 2_000_000) ?(seed = 0xE8920AL)
    ?(max_crashes = 0) ?(max_total_steps = 10_000_000) ~depth ~programs ~check
    () =
  let domains = resolve_domains domains in
  if domains = 1 then
    Sim.Explore.explore ~max_paths ~seed ~max_crashes ~max_total_steps ~depth
      ~programs ~check ()
  else
    match
      Sim.Explore.probe ~seed ~max_crashes ~max_total_steps ~depth ~programs
        ~check ()
    with
    | None -> 1
    | Some arity ->
        (* Budget split: each subtree may spend an equal share of the
           remaining path budget. When the budget binds, the sequential
           search spends it depth-first instead, so counts can differ —
           exhaustive (non-truncated) searches are identical. *)
        let budget = max 1 ((max_paths - 1) / arity) in
        let counts =
          run ~domains ~trials:arity ~seed (fun ~trial:c ~seed:_ ->
              Sim.Explore.explore ~max_paths:budget ~seed ~max_crashes
                ~max_total_steps ~prefix:[| c |] ~depth ~programs ~check ())
        in
        1 + Array.fold_left ( + ) 0 counts
