(** Tournament-tree leader election on atomics (the AGTV baseline) —
    [Leaderelect.Tournament.Make (Backend.Atomic_mem)].

    [n] slots, rounded up to a power of two; each participating thread
    calls [elect] with a distinct [slot] and climbs the tree of
    2-process duels. O(log n) expected steps, wait-free. *)

type t

val create : n:int -> t

val slots : t -> int

val elect : t -> Random.State.t -> slot:int -> bool

val le : n:int -> Mc_le.t
(** Packaged election for the registry / harnesses. *)
