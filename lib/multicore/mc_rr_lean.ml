module Rr = Ratrace.Ratrace_lean.Make (Backend.Atomic_mem)

type t = { rr : Rr.t; registers : int }

let create ~n =
  let mem = Backend.Atomic_mem.create () in
  let rr = Rr.create mem ~n in
  { rr; registers = Backend.Atomic_mem.allocated mem }

let elect t rng ~slot =
  if slot < 0 then invalid_arg "Mc_rr_lean.elect: slot must be >= 0";
  Rr.elect t.rr (Backend.Atomic_mem.ctx ~rng ~slot ())

let le ~n =
  let t = create ~n in
  {
    Mc_le.mc_name = "ratrace-lean";
    registers = t.registers;
    elect = Rr.elect t.rr;
  }
