(** One-shot linearizable test-and-set on atomics, from any of the
    leader elections in this library plus a doorway register — literally
    [Primitives.Tas.Make (Backend.Atomic_mem)] fed with an
    {!Mc_le.t} election.

    For comparison, {!native} wraps the hardware-level
    [Atomic.exchange] — the primitive the paper's algorithms implement
    from plain reads and writes. *)

type t

val of_le : Mc_le.t -> t
(** Wrap any packaged election (e.g. from the registry's multicore
    constructors) into a test-and-set. *)

val of_tournament : n:int -> t
val of_sift : n:int -> t
val of_le2 : unit -> t
(** Two slots only. *)

val of_elim : n:int -> t
(** Elimination-path election; slots are [0 .. n-1]. *)

val of_rr_lean : n:int -> t
(** The Section 3 lean RatRace on atomics; slots are [0 .. n-1]. *)

val native : unit -> t
(** [Atomic.exchange]-based; reference implementation. Ignores the
    [Random.State.t] passed to {!apply} — the hardware primitive flips
    no coins. *)

val apply : t -> Random.State.t -> slot:int -> int
(** Returns 0 to exactly one caller (the winner), 1 to all others.
    At most one call per slot. *)

val name : t -> string
