module Trio = Primitives.Le3.Make (Backend.Atomic_mem)

type t = Trio.t

let create () = Trio.create (Backend.Atomic_mem.create ())

let elect t rng ~slot =
  Trio.elect t (Backend.Atomic_mem.ctx ~rng ~slot ()) ~port:slot
