module Rsp = Primitives.Rsplitter.Make (Backend.Atomic_mem)

type t = Rsp.t

let create () = Rsp.create (Backend.Atomic_mem.create ())

let split t rng ~slot =
  if slot < 0 then invalid_arg "Mc_rsplitter.split: slot must be >= 0";
  Rsp.split t (Backend.Atomic_mem.ctx ~rng ~slot ())
