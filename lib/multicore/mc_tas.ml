module A = Primitives.Tas.Make (Backend.Atomic_mem)

type impl =
  | Elect of A.t
  | Native of bool Atomic.t

type t = { name : string; impl : impl }

let of_le (le : Mc_le.t) =
  let mem = Backend.Atomic_mem.create () in
  { name = le.Mc_le.mc_name; impl = Elect (A.create mem ~elect:le.Mc_le.elect) }

let of_tournament ~n = of_le (Mc_tournament.le ~n)

let of_sift ~n = of_le (Mc_sift.le ~n)

let of_le2 () = of_le (Mc_le2.le ())

let of_elim ~n = of_le (Mc_elim.le ~n)

let of_rr_lean ~n = of_le (Mc_rr_lean.le ~n)

let native () = { name = "native"; impl = Native (Atomic.make false) }

let apply t rng ~slot =
  match t.impl with
  | Native flag -> if Atomic.exchange flag true then 1 else 0
  | Elect tas -> A.apply tas (Backend.Atomic_mem.ctx ~rng ~slot ())

let name t = t.name
