module E = Leaderelect.Elim_le.Make (Backend.Atomic_mem)

type t = { path : E.t; registers : int }

let create ~n =
  let mem = Backend.Atomic_mem.create () in
  let path = E.create mem ~n in
  { path; registers = Backend.Atomic_mem.allocated mem }

let elect t rng ~slot =
  if slot < 0 then invalid_arg "Mc_elim.elect: slot must be >= 0";
  E.elect t.path (Backend.Atomic_mem.ctx ~rng ~slot ())

let le ~n =
  let t = create ~n in
  { Mc_le.mc_name = "elim"; registers = t.registers; elect = E.elect t.path }
