module Duel = Primitives.Le2.Make (Backend.Atomic_mem)

type t = Duel.t

let create () = Duel.create (Backend.Atomic_mem.create ())

let elect t rng ~slot =
  Duel.elect t (Backend.Atomic_mem.ctx ~rng ~slot ()) ~port:slot

let le () =
  let mem = Backend.Atomic_mem.create () in
  let duel = Duel.create mem in
  {
    Mc_le.mc_name = "le2";
    registers = Backend.Atomic_mem.allocated mem;
    elect =
      (fun ctx -> Duel.elect duel ctx ~port:(Backend.Atomic_mem.self ctx));
  }
