module T = Leaderelect.Tournament.Make (Backend.Atomic_mem)

type t = { tree : T.t; registers : int }

let create ~n =
  let mem = Backend.Atomic_mem.create () in
  let tree = T.create mem ~n in
  { tree; registers = Backend.Atomic_mem.allocated mem }

let slots t = T.slots t.tree

let elect t rng ~slot =
  if slot < 0 then invalid_arg "Mc_tournament.elect: slot out of range";
  T.elect t.tree (Backend.Atomic_mem.ctx ~rng ~slot ())

let le ~n =
  let t = create ~n in
  {
    Mc_le.mc_name = "tournament";
    registers = t.registers;
    elect = T.elect t.tree;
  }
