(** The paper's Section 3 lean RatRace on real atomics —
    [Ratrace.Ratrace_lean.Make (Backend.Atomic_mem)]: primary tree of
    height [ceil(log2 n)] (randomized splitters + 3-process elections),
    [ceil(n / log2 n)] elimination paths of length [4 ceil(log2 n)]
    absorbing leaf overflow, and a length-[n] backup elimination path.
    O(log k) expected steps, Theta(n) atomics, wait-free. *)

type t

val create : n:int -> t

val elect : t -> Random.State.t -> slot:int -> bool
(** [slot] distinct per caller, in [\[0, n-1\]]. At most [n] callers. *)

val le : n:int -> Mc_le.t
(** Packaged election for the registry / harnesses. *)
