type t = {
  mc_name : string;
  registers : int;
  elect : Backend.Atomic_mem.ctx -> bool;
}

let name t = t.mc_name

let registers t = t.registers

let elect t rng ~slot = t.elect (Backend.Atomic_mem.ctx ~rng ~slot ())
