(** Moir–Anderson deterministic splitter on atomics —
    [Primitives.Splitter.Make (Backend.Atomic_mem)]. Same guarantees as
    {!Primitives.Splitter}: at most one [S]; a solo caller gets [S]; not
    all callers get [L], not all get [R]. *)

type t

type outcome = Primitives.Splitter.outcome = L | R | S

val create : unit -> t

val split : t -> slot:int -> outcome
(** [slot] must be distinct per caller and [>= 0]. *)
