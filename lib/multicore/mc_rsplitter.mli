(** Randomized splitter on atomics —
    [Primitives.Rsplitter.Make (Backend.Atomic_mem)]: at most one [S]; a
    solo caller gets [S]; non-[S] callers go [L] or [R] with probability
    1/2 each. *)

type t

val create : unit -> t

val split : t -> Random.State.t -> slot:int -> Mc_splitter.outcome
(** [slot] distinct per caller and [>= 0]. *)
