(** A packaged multicore leader election: any of the algorithms in this
    library instantiated over {!Backend.Atomic_mem}, erased to a single
    [elect] closure so the registry, the chaos harness and the CLI can
    iterate them uniformly.

    Contender identity is a [slot] in [0 .. n-1], distinct per
    participating domain; algorithms that need a nonzero id internally
    (splitter races) derive it themselves. *)

type t = {
  mc_name : string;
  registers : int;  (** atomics allocated by the structure *)
  elect : Backend.Atomic_mem.ctx -> bool;
}

val name : t -> string

val registers : t -> int

val elect : t -> Random.State.t -> slot:int -> bool
(** Wraps [rng] and [slot] into an {!Backend.Atomic_mem.ctx}. At most
    one call per slot; exactly one caller wins. *)
