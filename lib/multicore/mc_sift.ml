module S = Leaderelect.Sift_le.Make (Backend.Atomic_mem)

type t = { sift : S.t; registers : int }

let create ~n =
  let mem = Backend.Atomic_mem.create () in
  let sift = S.create mem ~n in
  { sift; registers = Backend.Atomic_mem.allocated mem }

let elect t rng ~slot =
  if slot < 0 then invalid_arg "Mc_sift.elect: slot out of range";
  S.elect t.sift (Backend.Atomic_mem.ctx ~rng ~slot ())

let le ~n =
  let t = create ~n in
  { Mc_le.mc_name = "sift"; registers = t.registers; elect = S.elect t.sift }
