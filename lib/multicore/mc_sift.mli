(** Sifting leader election on atomics: Theta(log log n) sifting levels
    (Alistarh–Aspnes) followed by a tournament over the survivors —
    [Leaderelect.Sift_le.Make (Backend.Atomic_mem)]. Wait-free;
    O(log log n + log survivors) expected steps under benign
    scheduling. *)

type t

val create : n:int -> t

val elect : t -> Random.State.t -> slot:int -> bool
(** [slot] must be a distinct index below [n] per participating thread. *)

val le : n:int -> Mc_le.t
(** Packaged election for the registry / harnesses. *)
