(** The 2-process random-walk duel of {!Primitives.Le2} —
    [Primitives.Le2.Make (Backend.Atomic_mem)] — on real OCaml
    [Atomic.t] registers, runnable across domains.

    OCaml's [Atomic] operations are sequentially consistent, so they
    model the paper's atomic multi-reader multi-writer registers
    directly. At most one process may use each slot. *)

type t

val create : unit -> t

val elect : t -> Random.State.t -> slot:int -> bool
(** Wait-free; O(1) expected steps. [slot] is 0 or 1. *)

val le : unit -> Mc_le.t
(** Packaged two-slot election for the registry / harnesses. *)
