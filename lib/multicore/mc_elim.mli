(** Elimination-path leader election on atomics —
    [Leaderelect.Elim_le.Make (Backend.Atomic_mem)] (the Section 3
    structure as a standalone n-process election): a path of [n]
    splitter + 2-process-duel nodes; with at most [n] participants
    nobody falls off (Claim 3.1), and the winner of node 0 wins. O(k)
    worst-case steps, O(1) typical (most processes stop at the first few
    splitters); Theta(n) space. *)

type t

val create : n:int -> t

val elect : t -> Random.State.t -> slot:int -> bool
(** [slot] must be distinct per caller and in [\[0, n-1\]]. *)

val le : n:int -> Mc_le.t
(** Packaged election for the registry / harnesses. *)
