(** 3-process election on atomics (two chained duels) —
    [Primitives.Le3.Make (Backend.Atomic_mem)] — as used at each node of
    the multicore RatRace tree. Slots 0-2, one caller each. *)

type t

val create : unit -> t

val elect : t -> Random.State.t -> slot:int -> bool
