module Sp = Primitives.Splitter.Make (Backend.Atomic_mem)

type t = Sp.t

type outcome = Primitives.Splitter.outcome = L | R | S

let create () = Sp.create (Backend.Atomic_mem.create ())

let split t ~slot =
  if slot < 0 then invalid_arg "Mc_splitter.split: slot must be >= 0";
  Sp.split t (Backend.Atomic_mem.ctx ~slot ())
