type config = {
  algorithm : string;
  clients : int;
  keys : int;
  zipf_s : float;
  arrival : Arrival.kind;
  backoff : Backoff.t;
  deadline : float;
  hold : float;
  crash_prob : float;
  workers : int;
  timeout : float;
  seed : int64;
}

let default ~algorithm =
  {
    algorithm;
    clients = 200;
    keys = 8;
    zipf_s = 0.9;
    arrival = Arrival.Poisson { rate = 0.02 };
    backoff = Backoff.Exp { base = 8.0; cap = 512.0 };
    deadline = 20_000.0;
    hold = 64.0;
    crash_prob = 0.0;
    workers = 4;
    timeout = 30.0;
    seed = 1L;
  }

let validate cfg =
  if cfg.clients < 1 then invalid_arg "Mc_driver: clients must be >= 1";
  if cfg.keys < 1 then invalid_arg "Mc_driver: keys must be >= 1";
  if cfg.deadline <= 0.0 then invalid_arg "Mc_driver: deadline must be > 0";
  if cfg.hold < 0.0 then invalid_arg "Mc_driver: hold must be >= 0";
  if cfg.workers < 1 then invalid_arg "Mc_driver: workers must be >= 1";
  if cfg.timeout <= 0.0 then invalid_arg "Mc_driver: timeout must be > 0";
  if not (cfg.crash_prob >= 0.0 && cfg.crash_prob <= 1.0) then
    invalid_arg "Mc_driver: crash_prob must be in [0, 1]";
  Arrival.validate cfg.arrival;
  Backoff.validate cfg.backoff

(* Per-worker tallies live in plain int arrays indexed by worker: each
   slot is written by one domain only, and the merge happens after the
   watchdog saw every done-flag (or gave up, in which case the partial
   values only feed the diagnosis, never a balanced report). *)
type tally = {
  t_completed : int array;
  t_deadline : int array;
  t_crashed : int array;
  t_holder : int array;
  t_retries : int array;
  t_stale : int array;
  t_attempts : int array;
  mutable t_latencies : float list array;
}

let sum = Array.fold_left ( + ) 0

let run ?metrics cfg =
  validate cfg;
  let entry =
    match Rtas.Registry.find cfg.algorithm with
    | Some e -> e
    | None ->
        invalid_arg
          (Printf.sprintf "Mc_driver: unknown algorithm %S" cfg.algorithm)
  in
  let make_mc =
    match entry.Rtas.Registry.make_mc with
    | Some f -> f
    | None ->
        invalid_arg
          (Printf.sprintf
             "Mc_driver: %S has no Atomic_mem port (dual-backend entries: %s)"
             cfg.algorithm
             (String.concat ", " (Rtas.Registry.dual_names ())))
  in
  let w = cfg.workers in
  (* One tick = one microsecond of wall clock. *)
  let t0 = Unix.gettimeofday () in
  let now_ticks () = (Unix.gettimeofday () -. t0) *. 1e6 in
  let sleep_ticks t = if t > 0.0 then Unix.sleepf (t *. 1e-6) in
  (* The arrival schedule and key choices are drawn exactly like the sim
     driver's (same derive streams), so the two backends face the same
     offered load for the same seed. *)
  let arrivals =
    Arrival.create cfg.arrival
      (Sim.Rng.create (Sim.Rng.derive cfg.seed ~stream:10))
  in
  let zipf = Zipf.create ~n:cfg.keys ~s:cfg.zipf_s in
  let zrng = Sim.Rng.create (Sim.Rng.derive cfg.seed ~stream:11) in
  let arrival_at = Array.make cfg.clients 0.0 in
  let key_of = Array.make cfg.clients 0 in
  for i = 0 to cfg.clients - 1 do
    arrival_at.(i) <- Arrival.next arrivals;
    key_of.(i) <- Zipf.sample zipf zrng
  done;
  (* Election width = worker count: a worker's slot in every one-shot
     instance is its own index, so slots never collide across domains
     and the per-worker round stamp enforces at-most-once per
     instance. *)
  let module E = struct
    type instance = Multicore.Mc_le.t

    let fresh ~key:_ ~round:_ = make_mc ~n:w
  end in
  let module R = Resettable.Make (E) in
  let keys = Array.init cfg.keys (fun k -> R.create ~key:k ~now:0.0) in
  let tally =
    {
      t_completed = Array.make w 0;
      t_deadline = Array.make w 0;
      t_crashed = Array.make w 0;
      t_holder = Array.make w 0;
      t_retries = Array.make w 0;
      t_stale = Array.make w 0;
      t_attempts = Array.make w 0;
      t_latencies = Array.make w [];
    }
  in
  let lease = cfg.deadline in
  let worker wi =
    let rng =
      Random.State.make
        [|
          wi;
          Int64.to_int (Sim.Rng.derive cfg.seed ~stream:(100 + wi));
        |]
    in
    let stamps = Array.make cfg.keys (-1) in
    let bump a = a.(wi) <- a.(wi) + 1 in
    (* Clients are sharded round-robin over workers; each worker serves
       its share in arrival order, open-loop: it sleeps until the
       scheduled arrival, then drives the attempt loop. *)
    let ci = ref wi in
    while !ci < cfg.clients do
      let c = !ci in
      ci := !ci + w;
      let key = key_of.(c) in
      let res = keys.(key) in
      sleep_ticks (arrival_at.(c) -. now_ticks ());
      let attempt = ref 0 in
      let running = ref true in
      while !running do
        bump tally.t_attempts;
        let now = now_ticks () in
        if now -. arrival_at.(c) > cfg.deadline then begin
          bump tally.t_deadline;
          running := false
        end
        else begin
          let backoff_retry () =
            if !attempt > 0 then bump tally.t_retries;
            incr attempt;
            sleep_ticks
              (Backoff.delay cfg.backoff ~seed:cfg.seed ~client:c
                 ~attempt:!attempt)
          in
          match R.state res with
          | Resettable.Held { round; since; _ } ->
              (* A holder that outlives its lease crashed (or is
                 wedged); anyone may recover the key. *)
              if now -. since > lease then
                ignore (R.force_expire res ~round ~now);
              backoff_retry ()
          | Resettable.Open { round; inst; since } ->
              if stamps.(key) >= round then begin
                (* This worker already burned its slot in this round's
                   instance. If the round's winner crashed before
                   claiming, the [Open] state itself goes stale and
                   must be expired here. *)
                if now -. since > lease then
                  ignore (R.force_expire res ~round ~now);
                backoff_retry ()
              end
              else begin
                stamps.(key) <- round;
                if Multicore.Mc_le.elect inst rng ~slot:wi then begin
                  let u = Random.State.float rng 1.0 in
                  if u < cfg.crash_prob /. 2.0 then begin
                    (* Crash between winning and claiming: the round
                       stays [Open] and only lease expiry can move it
                       on. *)
                    bump tally.t_holder;
                    bump tally.t_crashed;
                    running := false
                  end
                  else if R.claim res ~round ~owner:c ~now:(now_ticks ())
                  then
                    if u < cfg.crash_prob then begin
                      (* Crash while holding: no release ever comes. *)
                      bump tally.t_holder;
                      bump tally.t_crashed;
                      running := false
                    end
                    else begin
                      let lat = now_ticks () -. arrival_at.(c) in
                      tally.t_latencies.(wi) <- lat :: tally.t_latencies.(wi);
                      bump tally.t_completed;
                      sleep_ticks cfg.hold;
                      (* A false release means the lease expired under
                         us; the expiry counter already recorded it. *)
                      ignore
                        (R.release res ~round ~owner:c ~now:(now_ticks ()));
                      running := false
                    end
                  else begin
                    (* Won the election but the round moved on before
                       the claim: a stale win, voided by the CAS. *)
                    bump tally.t_stale;
                    backoff_retry ()
                  end
                end
                else backoff_retry ()
              end
        end
      done
    done
  in
  let outcome =
    Fault.Watchdog.race ~timeout:cfg.timeout ~n:w
      ~progress:(fun i -> tally.t_attempts.(i))
      ~label:(fun i -> Printf.sprintf "worker %d" i)
      worker
  in
  let duration = Float.max 1.0 (now_ticks ()) in
  let livelocked, diagnosis =
    match outcome with
    | Ok _ -> (false, None)
    | Error stuck ->
        (true, Some (Format.asprintf "%a" Fault.Watchdog.pp_stuck stuck))
  in
  let completed = sum tally.t_completed in
  let counts =
    {
      Report.clients = cfg.clients;
      completed;
      deadline_exceeded = sum tally.t_deadline;
      crashed_clients = sum tally.t_crashed;
      holder_crashes = sum tally.t_holder;
      forced_expiries = Array.fold_left (fun a r -> a + R.expiries r) 0 keys;
      shed = 0;
      retries = sum tally.t_retries;
      rounds = Array.fold_left (fun a r -> a + R.round r) 0 keys;
      stale_wins = sum tally.t_stale;
    }
  in
  if not livelocked then assert (Report.balanced counts);
  let latencies =
    Array.of_list (List.concat (Array.to_list tally.t_latencies))
  in
  let report =
    {
      Report.backend = "atomic";
      algorithm = cfg.algorithm;
      keys = cfg.keys;
      zipf_s = cfg.zipf_s;
      arrival = Arrival.describe cfg.arrival;
      backoff = Backoff.describe cfg.backoff;
      deadline = cfg.deadline;
      hold = cfg.hold;
      crash_prob = cfg.crash_prob;
      workers = w;
      seed = cfg.seed;
      duration;
      throughput = float_of_int completed /. duration *. 1000.0;
      counts;
      latency = Report.latency_of_samples latencies;
      livelocked;
      diagnosis;
    }
  in
  Option.iter (fun m -> Report.observe_metrics m report) metrics;
  report
