(* Hierarchical timing wheel over integer virtual-time ticks, backed by
   a free-list event pool held in parallel arrays. Schedule and advance
   are O(1) amortised and allocation-free in steady state: an event is
   four scalar-array writes, and popping the next event is a bitmap
   scan plus an array read. The driver's virtual clock only moves
   forward, which is what makes the wheel applicable where a general
   priority queue would be needed.

   Layout: [levels] wheels of 256 slots each; level [l] slot [s] holds
   events whose tick has [s] in bit-field [8l .. 8l+7] and whose delta
   from [cur] is in [256^l, 256^(l+1)). As [cur] crosses a level-l
   window boundary the covering level-(l+1) slot is cascaded — its
   events rehashed into lower levels — one boundary at a time, so a
   slot never mixes events from different rotations at drain time.

   Pool packing: the driver's tie-break pair ([key], [kseq]) packs into
   one non-negative int ([key] in the top 20 payload bits, [kseq] in
   the low 42), so the shard-invariant total order (at, key, kseq) is
   the lexicographic pair (at, ord) — one float compare and one int
   compare. The payload ([kind], [a], [b]) packs into a second int.
   Four arrays per event instead of seven is measurably faster on the
   pre-push-heavy service workload (fewer cache lines per event).

   Ordering: ties on the same tick are broken by exact event time,
   then by [ord], via an insertion-sorted "due" buffer holding the
   currently-draining slot. Events scheduled at or before [cur] while
   the due buffer is live are binary-inserted into it, preserving the
   total order even for zero-delay reschedules. *)

let bits = 8
let slots_per_level = 1 lsl bits
let slot_mask = slots_per_level - 1
let levels = 6
let horizon = 1 lsl (bits * levels)
let occ_words = slots_per_level / 32

(* Packing widths. [ord = key lsl 42 lor kseq] stays within 62 bits,
   so it is a non-negative OCaml int and int comparison agrees with
   the (key, kseq) lexicographic order. *)
let kseq_bits = 42
let max_key = (1 lsl 20) - 1
let max_kseq = (1 lsl kseq_bits) - 1
let ab_bits = 30
let max_ab = (1 lsl ab_bits) - 1
let max_kind = 3

type t = {
  (* Event pool: parallel arrays indexed by event id; [ev_next] chains
     both the free list and the per-slot lists. *)
  mutable ev_at : float array;
  mutable ev_ord : int array;  (* key lsl 42 lor kseq *)
  mutable ev_meta : int array;  (* kind lsl 60 lor a lsl 30 lor b *)
  mutable ev_next : int array;
  mutable free : int;
  mutable live : int;
  slots : int array;  (* levels * 256 list heads, -1 = empty *)
  occ : int array;  (* per-level occupancy bitmap, 8 x 32-bit words *)
  mutable cur : int;  (* current tick; never decreases *)
  mutable due : int array;  (* event ids, descending order; pop from end *)
  mutable due_len : int;
}

let key_of_ord ord = ord lsr kseq_bits
let kseq_of_ord ord = ord land max_kseq
let kind_of_meta meta = meta lsr (2 * ab_bits)
let a_of_meta meta = (meta lsr ab_bits) land max_ab
let b_of_meta meta = meta land max_ab

let create ?(capacity = 1024) () =
  let cap = max 16 capacity in
  let ev_next = Array.init cap (fun i -> i + 1) in
  ev_next.(cap - 1) <- -1;
  {
    ev_at = Array.make cap 0.0;
    ev_ord = Array.make cap 0;
    ev_meta = Array.make cap 0;
    ev_next;
    free = 0;
    live = 0;
    slots = Array.make (levels * slots_per_level) (-1);
    occ = Array.make (levels * occ_words) 0;
    cur = 0;
    due = Array.make 64 (-1);
    due_len = 0;
  }

let live t = t.live
let now_tick t = t.cur

let grow t =
  let cap = Array.length t.ev_at in
  let ncap = 2 * cap in
  t.ev_at <- Array.append t.ev_at (Array.make cap 0.0);
  t.ev_ord <- Array.append t.ev_ord (Array.make cap 0);
  t.ev_meta <- Array.append t.ev_meta (Array.make cap 0);
  t.ev_next <- Array.append t.ev_next (Array.make cap 0);
  for i = cap to ncap - 1 do
    t.ev_next.(i) <- i + 1
  done;
  t.ev_next.(ncap - 1) <- t.free;
  t.free <- cap

(* Strict total order: (at, key, kseq) lexicographic == (at, ord). *)
(* Hot-path array accesses below use [unsafe_get]/[unsafe_set] (the
   flatsim convention): every index is an internal invariant — pool
   ids come off the free list, slot indices are masked, and due
   positions are bounds-managed by [due_reserve]. *)
let ev_lt t i j =
  let ai = Array.unsafe_get t.ev_at i and aj = Array.unsafe_get t.ev_at j in
  if ai < aj then true
  else if ai > aj then false
  else Array.unsafe_get t.ev_ord i < Array.unsafe_get t.ev_ord j

let due_reserve t =
  if t.due_len = Array.length t.due then begin
    let nd = Array.make (2 * t.due_len) (-1) in
    Array.blit t.due 0 nd 0 t.due_len;
    t.due <- nd
  end

(* Insert into the descending due buffer at the position keeping it
   sorted: binary search, then a blit. Only taken for events scheduled
   at or before [cur] (zero-delay reschedules, cascade leftovers). *)
let due_insert t id =
  due_reserve t;
  let lo = ref 0 and hi = ref t.due_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ev_lt t (Array.unsafe_get t.due mid) id then hi := mid
    else lo := mid + 1
  done;
  let pos = !lo in
  Array.blit t.due pos t.due (pos + 1) (t.due_len - pos);
  Array.unsafe_set t.due pos id;
  t.due_len <- t.due_len + 1

let occ_set t l s =
  let w = (l * occ_words) + (s lsr 5) in
  Array.unsafe_set t.occ w (Array.unsafe_get t.occ w lor (1 lsl (s land 31)))

let occ_clear t l s =
  let w = (l * occ_words) + (s lsr 5) in
  Array.unsafe_set t.occ w
    (Array.unsafe_get t.occ w land lnot (1 lsl (s land 31)))

let wheel_insert t id tick =
  let delta = tick - t.cur in
  if delta >= horizon then
    invalid_arg "Wheel.schedule: event beyond the 2^48-tick horizon";
  let l = ref 0 in
  let bound = ref slots_per_level in
  while delta >= !bound do
    incr l;
    bound := !bound lsl bits
  done;
  let l = !l in
  let s = (tick lsr (bits * l)) land slot_mask in
  let idx = (l * slots_per_level) + s in
  Array.unsafe_set t.ev_next id (Array.unsafe_get t.slots idx);
  Array.unsafe_set t.slots idx id;
  occ_set t l s

let schedule t ~at ~key ~kseq ~kind ~a ~b =
  if not (at >= 0.0) then invalid_arg "Wheel.schedule: negative or NaN time";
  if
    (key lsr 20) lor (kseq lsr kseq_bits) lor (a lsr ab_bits)
    lor (b lsr ab_bits)
    lor (kind lsr 2)
    <> 0
  then invalid_arg "Wheel.schedule: field out of packing range";
  if t.free < 0 then grow t;
  let id = t.free in
  t.free <- Array.unsafe_get t.ev_next id;
  Array.unsafe_set t.ev_at id at;
  Array.unsafe_set t.ev_ord id ((key lsl kseq_bits) lor kseq);
  Array.unsafe_set t.ev_meta id
    ((kind lsl (2 * ab_bits)) lor (a lsl ab_bits) lor b);
  t.live <- t.live + 1;
  let tick = int_of_float at in
  if tick <= t.cur then due_insert t id else wheel_insert t id tick

(* Sort the id range [lo, hi] of [t.due] into descending event order,
   in place and without allocating: median-of-three quicksort with an
   insertion-sort base case. Dense ticks put hundreds of events in one
   level-0 slot, where an insertion sort alone goes quadratic. *)
let insertion_range t lo hi =
  for i = lo + 1 to hi do
    let x = Array.unsafe_get t.due i in
    let j = ref (i - 1) in
    while !j >= lo && ev_lt t (Array.unsafe_get t.due !j) x do
      Array.unsafe_set t.due (!j + 1) (Array.unsafe_get t.due !j);
      decr j
    done;
    Array.unsafe_set t.due (!j + 1) x
  done

let rec qsort_range t lo hi =
  if hi - lo < 24 then insertion_range t lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    (* Median of three into [mid], descending endpoints. *)
    let a = Array.unsafe_get t.due lo
    and b = Array.unsafe_get t.due mid
    and c = Array.unsafe_get t.due hi in
    let pivot =
      if ev_lt t a b then if ev_lt t b c then b else if ev_lt t a c then c else a
      else if ev_lt t a c then a
      else if ev_lt t b c then c
      else b
    in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while ev_lt t pivot (Array.unsafe_get t.due !i) do
        incr i
      done;
      while ev_lt t (Array.unsafe_get t.due !j) pivot do
        decr j
      done;
      if !i <= !j then begin
        let tmp = Array.unsafe_get t.due !i in
        Array.unsafe_set t.due !i (Array.unsafe_get t.due !j);
        Array.unsafe_set t.due !j tmp;
        incr i;
        decr j
      end
    done;
    if lo < !j then qsort_range t lo !j;
    if !i < hi then qsort_range t !i hi
  end

(* Move one level-0 slot's list into the due buffer and restore
   descending order. The appended suffix is sorted in place; a new
   element that belongs inside the pre-existing (already sorted) due
   prefix then bubbles across the boundary — the prefix is almost
   always empty here, because [refill] only runs when the due buffer
   is drained (the exception: cascade leftovers inserted at [cur]). *)
let drain_level0 t s =
  let id = ref t.slots.(s) in
  t.slots.(s) <- -1;
  occ_clear t 0 s;
  let first_new = t.due_len in
  while !id >= 0 do
    let nxt = Array.unsafe_get t.ev_next !id in
    due_reserve t;
    Array.unsafe_set t.due t.due_len !id;
    t.due_len <- t.due_len + 1;
    id := nxt
  done;
  if first_new = 0 then qsort_range t 0 (t.due_len - 1)
  else
    (* Nonempty prefix: bubble each appended element with floor 0 so it
       can cross into the prefix (the pre-existing run is sorted). *)
    for i = max 1 first_new to t.due_len - 1 do
      let x = Array.unsafe_get t.due i in
      let j = ref (i - 1) in
      while !j >= 0 && ev_lt t (Array.unsafe_get t.due !j) x do
        Array.unsafe_set t.due (!j + 1) (Array.unsafe_get t.due !j);
        decr j
      done;
      Array.unsafe_set t.due (!j + 1) x
    done

(* Count-trailing-zeros of a non-zero 32-bit word via the classic
   De Bruijn multiply — branch-free, no loop. *)
let debruijn_tab =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let ctz32 x =
  debruijn_tab.((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* First occupied level-0 slot at or after [cur]'s position in the
   current 256-tick window, or -1. *)
let scan_level0 t =
  let base = t.cur land slot_mask in
  let rec words w mask =
    if w >= occ_words then -1
    else
      let x = Array.unsafe_get t.occ w land mask in
      if x = 0 then words (w + 1) (-1)
      else (w lsl 5) lor ctz32 x
  in
  words (base lsr 5) ((-1) lsl (base land 31))

(* Rehash a higher-level slot's events now that [cur] has entered its
   window. Anything at or before [cur] (window-start ticks) goes
   straight to the due buffer. *)
let cascade t l s =
  let idx = (l * slots_per_level) + s in
  let id = ref t.slots.(idx) in
  if !id >= 0 then begin
    t.slots.(idx) <- -1;
    occ_clear t l s;
    while !id >= 0 do
      let nxt = Array.unsafe_get t.ev_next !id in
      let tick = int_of_float (Array.unsafe_get t.ev_at !id) in
      if tick <= t.cur then due_insert t !id else wheel_insert t !id tick;
      id := nxt
    done
  end

(* Advance [cur] to the start of the next level-l window and cascade
   the level-l slot now covering it. Crossing a level-(l+1) boundary
   recurses first, so the covering slot at every level is cascaded
   exactly when [cur] enters its window — the invariant that keeps
   wrapped entries from being missed. *)
let rec step_window t l =
  if l >= levels then
    failwith "Wheel: internal error: stepped past the top level";
  let w = bits * l in
  if (t.cur lsr w) land slot_mask = slot_mask then step_window t (l + 1)
  else t.cur <- ((t.cur lsr w) + 1) lsl w;
  cascade t l ((t.cur lsr w) land slot_mask)

let rec refill t =
  if t.live > t.due_len then begin
    let s = scan_level0 t in
    if s >= 0 then begin
      t.cur <- (t.cur land lnot slot_mask) lor s;
      drain_level0 t s
    end
    else if t.due_len = 0 then begin
      step_window t 1;
      refill t
    end
  end

(* Pop the earliest event and return its id, or -1 when empty. The id
   is recycled onto the free list immediately, but its fields stay
   readable until the next [schedule] call — callers copy what they
   need before scheduling follow-up events. *)
let pop t =
  if t.due_len = 0 then refill t;
  if t.due_len = 0 then -1
  else begin
    let len = t.due_len - 1 in
    t.due_len <- len;
    t.live <- t.live - 1;
    let id = Array.unsafe_get t.due len in
    Array.unsafe_set t.ev_next id t.free;
    t.free <- id;
    id
  end
