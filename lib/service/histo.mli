(** Latency recording: exact samples or a log-bucketed histogram.

    [`Log] mode keeps memory bounded by the bucket count (no per-client
    latency array — the mode million-client runs use); percentiles are
    bucket midpoints within ~1.6% relative error of exact
    (Sim.Stats.Logbucket's bound), while mean and max stay exact.
    [`Exact] mode records every sample and yields exact nearest-rank
    percentiles — the small-run default and the cross-check oracle for
    the bucketed mode.

    {!merge_into} is associative and commutative in both modes, so
    per-shard partials combine into the same snapshot regardless of
    shard count or merge grouping. *)

type t

val create : [ `Exact | `Log ] -> t
val mode : t -> [ `Exact | `Log ]

val mode_name : t -> string
(** ["exact"] or ["hist"] — the report's [latency.mode] field. *)

val count : t -> int
val observe : t -> float -> unit

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]. Raises [Invalid_argument] when the modes
    differ. *)

type snapshot = {
  s_n : int;
  s_mean : float;  (** exact in both modes *)
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_p999 : float;
  s_max : float;  (** exact in both modes *)
}

val snapshot : t -> snapshot option
(** [None] when no samples were observed. *)

val iter_values : (value:float -> count:int -> unit) -> t -> unit
(** Replay observed values: exact samples one by one, or bucket
    midpoints with multiplicity. *)
