(** Zipfian key-popularity sampler.

    The lock-service workload contends on a keyspace whose popularity
    follows a Zipf distribution with skew [s]: key [i] (0-based) is
    drawn with probability proportional to [1/(i+1)^s]. [s = 0] is the
    uniform distribution; [s ~ 1] is the classic web/cache skew where a
    handful of hot keys absorb most of the traffic — the shape that
    makes tail latency interesting.

    The sampler precomputes both the normalised CDF and a Vose alias
    table once ([O(n)]). Draws go through the alias table: O(1) — one
    uniform, one compare — and allocation-free, with all randomness
    flowing through {!Sim.Rng} so workloads are reproducible from their
    seed. Both samplers consume exactly one [Rng.float] per draw, so
    they are stream-compatible; {!sample_cdf} (the old binary-search
    path) is kept as the distribution oracle the tests compare
    against. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over keys [0 .. n-1] with skew
    [s]. Raises [Invalid_argument] when [n < 1] or [s < 0]. *)

val size : t -> int

val sample : t -> Sim.Rng.t -> int
(** A key in [0 .. n-1], Zipf-distributed: O(1) alias-table draw. *)

val sample_cdf : t -> Sim.Rng.t -> int
(** CDF binary-search oracle: same distribution and same per-draw
    stream consumption as {!sample} (for [s = 0] with a power-of-two
    [n], the very same key per draw). O(log n). *)

val pmf : t -> int -> float
(** Exact probability of a key, for tests. *)
