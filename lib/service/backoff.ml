type t =
  | Immediate
  | Exp of { base : float; cap : float }
  | Rand of { max : float }

let describe = function
  | Immediate -> "immediate"
  | Exp { base; cap } -> Printf.sprintf "exp(base=%g,cap=%g)" base cap
  | Rand { max } -> Printf.sprintf "rand(max=%g)" max

let validate = function
  | Immediate -> ()
  | Exp { base; cap } ->
      if base <= 0.0 || cap < base then
        invalid_arg "Backoff: need 0 < base <= cap"
  | Rand { max } -> if max < 1.0 then invalid_arg "Backoff: max must be >= 1"

(* Jitter is deterministic: the (client, attempt) pair mints its own
   splitmix stream via two Rng.derive hops, so a retry schedule is a
   pure function of (policy, seed, client, attempt) — no hidden mutable
   RNG state shared between clients, hence no cross-client coupling and
   bit-reproducible backoff under any execution order. *)
let jitter_u ~seed ~client ~attempt =
  (* One fused cross-module call: equals
     [float_of_seed (derive (derive seed ~stream:client) ~stream:attempt)]
     bit-for-bit, but the intermediate sub-seeds stay unboxed — backoff
     jitter is on the driver's per-event hot path and must not allocate. *)
  Sim.Rng.jitter_of_seed seed ~client ~attempt

let delay t ~seed ~client ~attempt =
  let attempt = max 1 attempt in
  match t with
  (* A zero delay would re-poll a still-held key at the same instant
     forever; one tick is the smallest forward step. *)
  | Immediate -> 1.0
  | Exp { base; cap } ->
      (* [base * 2^(attempt-1)] capped: a shift-and-convert rather than
         [Float.pow] (a C call on the per-event hot path); attempts
         past 62 doublings are far beyond any finite cap. *)
      let raw =
        if attempt >= 63 then cap
        else Float.min cap (base *. float_of_int (1 lsl (attempt - 1)))
      in
      let u = jitter_u ~seed ~client ~attempt in
      (* Decorrelate retries: uniform in [raw/2, raw). *)
      Float.max 1.0 ((raw /. 2.0) +. (u *. raw /. 2.0))
  | Rand { max } ->
      let u = jitter_u ~seed ~client ~attempt in
      1.0 +. (u *. (max -. 1.0))
