type t =
  | Immediate
  | Exp of { base : float; cap : float }
  | Rand of { max : float }

let describe = function
  | Immediate -> "immediate"
  | Exp { base; cap } -> Printf.sprintf "exp(base=%g,cap=%g)" base cap
  | Rand { max } -> Printf.sprintf "rand(max=%g)" max

let validate = function
  | Immediate -> ()
  | Exp { base; cap } ->
      if base <= 0.0 || cap < base then
        invalid_arg "Backoff: need 0 < base <= cap"
  | Rand { max } -> if max < 1.0 then invalid_arg "Backoff: max must be >= 1"

(* Jitter is deterministic: the (client, attempt) pair mints its own
   splitmix stream via two Rng.derive hops, so a retry schedule is a
   pure function of (policy, seed, client, attempt) — no hidden mutable
   RNG state shared between clients, hence no cross-client coupling and
   bit-reproducible backoff under any execution order. *)
let jitter_u ~seed ~client ~attempt =
  let s = Sim.Rng.derive (Sim.Rng.derive seed ~stream:client) ~stream:attempt in
  Sim.Rng.float (Sim.Rng.create s)

let delay t ~seed ~client ~attempt =
  let attempt = max 1 attempt in
  match t with
  (* A zero delay would re-poll a still-held key at the same instant
     forever; one tick is the smallest forward step. *)
  | Immediate -> 1.0
  | Exp { base; cap } ->
      let raw = Float.min cap (base *. Float.pow 2.0 (float_of_int (attempt - 1))) in
      let u = jitter_u ~seed ~client ~attempt in
      (* Decorrelate retries: uniform in [raw/2, raw). *)
      Float.max 1.0 ((raw /. 2.0) +. (u *. raw /. 2.0))
  | Rand { max } ->
      let u = jitter_u ~seed ~client ~attempt in
      1.0 +. (u *. (max -. 1.0))
