type t = { cdf : float array }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if s < 0.0 then invalid_arg "Zipf.create: s must be >= 0";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !total
  done;
  (* Normalise so the last entry is exactly 1.0 and no [Rng.float] draw
     (always < 1.0) can fall past it. *)
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. !total
  done;
  cdf.(n - 1) <- 1.0;
  { cdf }

let size t = Array.length t.cdf

let pmf t i =
  if i < 0 || i >= size t then invalid_arg "Zipf.pmf: index out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

(* First index whose cumulative weight exceeds u: binary search, so a
   draw is O(log n) with no allocation. *)
let sample t rng =
  let u = Sim.Rng.float rng in
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
