type t = { cdf : float array; prob : float array; alias : int array }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if s < 0.0 then invalid_arg "Zipf.create: s must be >= 0";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !total
  done;
  (* Normalise so the last entry is exactly 1.0 and no [Rng.float] draw
     (always < 1.0) can fall past it. *)
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. !total
  done;
  cdf.(n - 1) <- 1.0;
  (* Alias table (Vose's method) over the same normalised pmf: each
     column i keeps its own mass with threshold [prob.(i)] and donates
     the rest to [alias.(i)], making a draw O(1) — one uniform, one
     compare — instead of the CDF binary search. *)
  let prob = Array.make n 1.0 and alias = Array.init n (fun i -> i) in
  let scaled =
    Array.init n (fun i ->
        let p = if i = 0 then cdf.(0) else cdf.(i) -. cdf.(i - 1) in
        p *. float_of_int n)
  in
  let small = Array.make n 0 and large = Array.make n 0 in
  let ns = ref 0 and nl = ref 0 in
  for i = 0 to n - 1 do
    if scaled.(i) < 1.0 then begin
      small.(!ns) <- i;
      incr ns
    end
    else begin
      large.(!nl) <- i;
      incr nl
    end
  done;
  while !ns > 0 && !nl > 0 do
    decr ns;
    let s_i = small.(!ns) in
    let l_i = large.(!nl - 1) in
    prob.(s_i) <- scaled.(s_i);
    alias.(s_i) <- l_i;
    scaled.(l_i) <- scaled.(l_i) -. (1.0 -. scaled.(s_i));
    if scaled.(l_i) < 1.0 then begin
      decr nl;
      small.(!ns) <- l_i;
      incr ns
    end
  done;
  (* Leftovers (from either stack) keep full mass: prob stays 1.0. *)
  { cdf; prob; alias }

let size t = Array.length t.cdf

let pmf t i =
  if i < 0 || i >= size t then invalid_arg "Zipf.pmf: index out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)

(* O(1) alias draw. Consumes exactly one [Rng.float], like the CDF
   oracle below, so the two samplers are drop-in stream-compatible. *)
let sample t rng =
  let u = Sim.Rng.float rng in
  let n = Array.length t.prob in
  let x = u *. float_of_int n in
  let i = int_of_float x in
  let i = if i >= n then n - 1 else i in
  if x -. float_of_int i < t.prob.(i) then i else t.alias.(i)

(* First index whose cumulative weight exceeds u: binary search. Kept
   as the test oracle for the alias table — same draw count, same
   distribution (and for uniform power-of-two keyspaces, the identical
   key per draw). *)
let sample_cdf t rng =
  let u = Sim.Rng.float rng in
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
