(** Resettable test-and-set / leader election: the round-stamped
    wrapper that turns the library's {e one-shot} election objects into
    a reusable lock.

    Every election in the registry — the paper's RatRace construction,
    the tournament, sift, elimination — is a one-shot object: each
    process may invoke [elect] at most once, and the object can never
    be won a second time. A lock service needs the opposite: the same
    key acquired and released millions of times. The follow-up papers
    (Giakkoupis–Helmi–Higham–Woelfel's Θ(log n)-space TAS,
    Alistarh–Gelashvili–Vladu's PoisonPill) are equally single-use, so
    reuse has to be built {e around} the one-shot object, not inside
    it. This module is that layer.

    {2 The round-stamp protocol}

    A resettable instance is a single atomic cell holding either
    [Open {round; inst; since}] — round [round] is up for grabs on the
    fresh one-shot instance [inst] — or [Held {round; owner; since}].
    Three CAS transitions exist:

    - {!claim}: [Open {round = r}] → [Held {round = r}]. Performed by a
      client that {e won} [inst]'s one-shot election.
    - {!release}: [Held {round = r}] → [Open {round = r+1; inst'}] with
      [inst'] freshly built by the election factory. Performed by the
      owner.
    - {!force_expire}: any state stamped [r] → [Open {round = r+1;
      inst'}]. The recovery path: anyone may fire it when the [since]
      timestamp shows the round has outlived its lease (a crashed
      holder, or a winner that died between winning and claiming).

    {2 Unique winner per round}

    At most one client ever holds a given round [r]:
    {ul
    {- the one-shot election of instance [r] has at most one winner
       among clients that invoke it at most once each (the underlying
       object's guarantee — callers enforce at-most-once with a
       per-client round stamp: never elect twice on the same round);}
    {- only an election winner attempts {!claim}, and the CAS succeeds
       only from [Open {round = r}];}
    {- the round number in the cell never decreases and every
       transition out of round [r] installs [r+1], so once any
       transition from [Open {round = r}] happens, no [Open] with round
       [r] ever exists again — a second claim of [r], or a claim racing
       a {!force_expire}, loses the CAS and reports a stale win.}}

    Hence even a crashed holder cannot wedge the key: its round is
    expired by whoever notices the stale lease, the next round's fresh
    instance goes up, and the invariant is untouched because stale
    winners are rejected by the CAS, not by trust.

    The cell is an [Atomic.t], so the same wrapper code is used
    single-threaded by the simulator's deterministic driver (where the
    CAS never fails and costs a few nanoseconds) and raced by real
    domains in the [Atomic_mem] driver. *)

type 'i state =
  | Open of { round : int; inst : 'i; since : float }
  | Held of { round : int; owner : int; since : float }

module type ELECTION = sig
  type instance

  val fresh : key:int -> round:int -> instance
  (** A fresh one-shot instance for [key]'s round [round]. Called once
      per installed round. The simulator backend implements this as
      arena reuse — [Sim.Memory.reset] of the key's arena restores the
      structure built once at key creation — while the atomic backend
      allocates a new structure. Must be safe to call for a round that
      then loses its installing CAS (the instance is simply dropped;
      with arena reuse the installing transitions of one key are never
      concurrent, see {!Make.release}). *)
end

module Make (E : ELECTION) : sig
  type t

  val create : key:int -> now:float -> t
  (** A key starting at round 0 with a fresh instance. *)

  val key : t -> int

  val round : t -> int
  (** The round currently installed (monotonically non-decreasing). *)

  val state : t -> E.instance state

  val claim : t -> round:int -> owner:int -> now:float -> bool
  (** [claim t ~round ~owner ~now] — CAS [Open {round}] →
      [Held {round; owner; since = now}]. [false] means the round moved
      on (stale win): the caller must treat its election win as void
      and retry on a later round. *)

  val release : t -> round:int -> owner:int -> now:float -> bool
  (** CAS [Held {round; owner}] → [Open {round + 1; fresh; since =
      now}]. [false] when the round was force-expired first. *)

  val force_expire : t -> round:int -> now:float -> bool
  (** Recovery: CAS any state stamped [round] → [Open {round + 1;
      fresh; since = now}]. [false] when the round already moved on
      (somebody else recovered it, or it released normally). *)

  val expiries : t -> int
  (** Successful {!force_expire} transitions, for reports. *)
end
