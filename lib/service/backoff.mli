(** Retry backoff policies for losing lock-service clients.

    - [Immediate]: retry one tick later (the minimum forward step — a
      true zero-delay retry against a still-held key is a busy loop).
    - [Exp]: capped exponential backoff with {e deterministic} jitter:
      attempt [a] waits uniformly in [\[raw/2, raw)] where
      [raw = min cap (base * 2^(a-1))], the uniform draw coming from a
      splitmix stream minted with {!Sim.Rng.derive} from
      [(seed, client, attempt)]. Same inputs, same delay — reproducible
      workloads with decorrelated clients.
    - [Rand]: uniform in [\[1, max)], the classic randomized backoff.

    Delays are in ticks (see {!Arrival}). *)

type t =
  | Immediate
  | Exp of { base : float; cap : float }
  | Rand of { max : float }

val describe : t -> string

val validate : t -> unit
(** Raises [Invalid_argument] on nonsense parameters. *)

val delay : t -> seed:int64 -> client:int -> attempt:int -> float
(** Delay before retry number [attempt] (1-based; values below 1 are
    clamped to 1) of [client]. Always >= 1 tick. *)
