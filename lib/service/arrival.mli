(** Open-loop client arrival processes.

    A closed-loop harness waits for one request to finish before
    issuing the next, so the system under test throttles its own load;
    an {e open-loop} workload keeps arriving on its own clock, which is
    what exposes queueing delay and tail latency. Two processes are
    provided:

    - [Poisson rate]: independent exponential inter-arrival gaps —
      memoryless background traffic.
    - [Bursty]: a Poisson process modulated by an on/off cycle: during
      each [burst_len] window the rate is multiplied by [boost], then
      an [idle_len] window runs at the base rate. Sampling is the exact
      piecewise-exponential construction, not thinning.

    Times are in abstract ticks (the simulator's virtual step unit; the
    atomic driver maps one tick to a microsecond). All randomness comes
    from the {!Sim.Rng} stream handed to {!create}. *)

type kind =
  | Poisson of { rate : float }  (** [rate] arrivals per tick. *)
  | Bursty of { rate : float; burst_len : float; idle_len : float; boost : float }

val kind_name : kind -> string

val describe : kind -> string
(** Round-trippable parameter summary for reports. *)

val validate : kind -> unit
(** Raises [Invalid_argument] on nonsense parameters. *)

type t
(** A stateful arrival stream. *)

val create : kind -> Sim.Rng.t -> t
(** Validates, then wraps the RNG; the stream starts at time 0. *)

val next : t -> float
(** Absolute time of the next arrival; strictly increasing. *)
