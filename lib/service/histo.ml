(* Latency recording for the service driver, in two interchangeable
   modes sharing one interface and one merge algebra:

   - [`Log]: a log-bucketed histogram over Sim.Stats.Logbucket's
     scheme (32 sub-buckets per octave). Memory is bounded by the
     bucket count regardless of sample count; percentiles are read off
     bucket midpoints, within ~1.6% relative error. Mean and max stay
     exact (tracked as scalars).
   - [`Exact]: every sample in a growing float array; percentiles are
     exact nearest-rank. For small runs and for cross-checking the
     bucketed mode in tests.

   Merge is associative and commutative in both modes (bucket-wise
   count addition, resp. sample concatenation — percentile extraction
   sorts), which is what lets sharded driver runs combine per-shard
   partials into a report identical to the single-shard run. *)

module LB = Sim.Stats.Logbucket

type t = {
  log : bool;
  counts : int array;  (* [`Log] buckets; [||] in exact mode *)
  mutable xs : float array;  (* [`Exact] samples; [||] in log mode *)
  mutable n : int;
  mutable sum : float;
  mutable mx : float;
}

let create mode =
  match mode with
  | `Exact ->
      {
        log = false;
        counts = [||];
        xs = Array.make 256 0.0;
        n = 0;
        sum = 0.0;
        mx = neg_infinity;
      }
  | `Log ->
      {
        log = true;
        counts = Array.make LB.count 0;
        xs = [||];
        n = 0;
        sum = 0.0;
        mx = neg_infinity;
      }

let mode t = if t.log then `Log else `Exact
let mode_name t = if t.log then "hist" else "exact"
let count t = t.n

let observe t v =
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.mx then t.mx <- v;
  if t.log then begin
    let b = LB.of_value v in
    t.counts.(b) <- t.counts.(b) + 1
  end
  else begin
    if t.n > Array.length t.xs then begin
      let nxs = Array.make (2 * Array.length t.xs) 0.0 in
      Array.blit t.xs 0 nxs 0 (t.n - 1);
      t.xs <- nxs
    end;
    t.xs.(t.n - 1) <- v
  end

let merge_into ~into src =
  if into.log <> src.log then
    invalid_arg "Histo.merge_into: mixed exact/log modes";
  if src.n > 0 then begin
    if into.log then
      Array.iteri
        (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
        src.counts
    else begin
      let need = into.n + src.n in
      if need > Array.length into.xs then begin
        let cap = ref (max 256 (Array.length into.xs)) in
        while !cap < need do
          cap := 2 * !cap
        done;
        let nxs = Array.make !cap 0.0 in
        Array.blit into.xs 0 nxs 0 into.n;
        into.xs <- nxs
      end;
      Array.blit src.xs 0 into.xs into.n src.n
    end;
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    if src.mx > into.mx then into.mx <- src.mx
  end

type snapshot = {
  s_n : int;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
  s_p999 : float;
  s_max : float;
}

(* Nearest-rank percentile over the bucket counts: same rank rule as
   Sim.Stats.percentile_sorted, with the bucket midpoint standing in
   for the sample value. *)
let log_percentile t p =
  let rank = int_of_float (ceil (p *. float_of_int t.n)) - 1 in
  let rank = min (t.n - 1) (max 0 rank) in
  let acc = ref 0 and b = ref 0 and found = ref (-1) in
  while !found < 0 && !b < Array.length t.counts do
    acc := !acc + t.counts.(!b);
    if !acc > rank then found := !b;
    incr b
  done;
  (* Clamp to the exact max so a top-bucket midpoint can never report
     a percentile above the largest observed sample. *)
  Float.min (LB.midpoint (max 0 !found)) t.mx

let snapshot t =
  if t.n = 0 then None
  else if t.log then
    Some
      {
        s_n = t.n;
        s_mean = t.sum /. float_of_int t.n;
        s_p50 = log_percentile t 0.5;
        s_p95 = log_percentile t 0.95;
        s_p99 = log_percentile t 0.99;
        s_p999 = log_percentile t 0.999;
        s_max = t.mx;
      }
  else begin
    let sorted = Array.sub t.xs 0 t.n in
    Array.sort Float.compare sorted;
    let pct = Sim.Stats.percentile_sorted sorted in
    Some
      {
        s_n = t.n;
        s_mean = t.sum /. float_of_int t.n;
        s_p50 = pct 0.5;
        s_p95 = pct 0.95;
        s_p99 = pct 0.99;
        s_p999 = pct 0.999;
        s_max = t.mx;
      }
  end

(* Replay observed values (exact samples, or bucket midpoints with
   multiplicity) — used to feed the Obs.Metrics histogram after a
   sharded run merges. *)
let iter_values f t =
  if t.log then
    Array.iteri
      (fun b c -> if c > 0 then f ~value:(LB.midpoint b) ~count:c)
      t.counts
  else
    for i = 0 to t.n - 1 do
      f ~value:t.xs.(i) ~count:1
    done
