type config = {
  algorithm : string;
  clients : int;
  keys : int;
  zipf_s : float;
  arrival : Arrival.kind;
  backoff : Backoff.t;
  deadline : float;
  hold : float;
  max_waiters : int;
  on_shed : [ `Drop | `Retry ];
  contenders : int;
  crash_prob : float;
  plan : Fault.Plan.t option;
  adversary : [ `Random | `Round_robin ];
  max_round_steps : int;
  kernel : [ `Effect | `Flat ];
  events : [ `Heap | `Wheel ];
  shards : int;
  latency : [ `Auto | `Exact | `Hist ];
  seed : int64;
}

let default ~algorithm =
  {
    algorithm;
    clients = 1000;
    keys = 16;
    zipf_s = 0.9;
    arrival = Arrival.Poisson { rate = 0.02 };
    backoff = Backoff.Exp { base = 8.0; cap = 512.0 };
    deadline = 20_000.0;
    hold = 64.0;
    max_waiters = 64;
    on_shed = `Drop;
    contenders = 32;
    crash_prob = 0.0;
    plan = None;
    adversary = `Random;
    max_round_steps = 1_000_000;
    kernel = `Effect;
    events = `Wheel;
    shards = 1;
    latency = `Auto;
    seed = 1L;
  }

(* Runs with at most this many clients record exact latency samples
   under [`Auto]; larger runs switch to the bounded-memory log-bucketed
   histogram. *)
let auto_exact_max = 65_536

let validate cfg =
  if cfg.clients < 1 then invalid_arg "Driver: clients must be >= 1";
  if cfg.clients > Wheel.max_ab then
    invalid_arg "Driver: clients exceeds the event-payload range (2^30 - 1)";
  if cfg.keys < 1 then invalid_arg "Driver: keys must be >= 1";
  if cfg.keys > Wheel.max_key + 1 then
    invalid_arg "Driver: keys exceeds the event-key range (2^20)";
  if cfg.deadline <= 0.0 then invalid_arg "Driver: deadline must be > 0";
  if cfg.hold < 0.0 then invalid_arg "Driver: hold must be >= 0";
  if cfg.max_waiters < 1 then invalid_arg "Driver: max_waiters must be >= 1";
  if cfg.contenders < 1 then invalid_arg "Driver: contenders must be >= 1";
  if cfg.shards < 1 then invalid_arg "Driver: shards must be >= 1";
  if not (cfg.crash_prob >= 0.0 && cfg.crash_prob <= 1.0) then
    invalid_arg "Driver: crash_prob must be in [0, 1]";
  Arrival.validate cfg.arrival;
  Backoff.validate cfg.backoff

(* {1 Event encoding}

   One event is (time, key, per-key sequence, kind, two payload ints).
   The total order is (at, key, kseq) lexicographic — notably {e not}
   the PR 6 global insertion sequence: keys never interact, so breaking
   time ties by key and then by per-key insertion order makes the order
   (and hence the whole simulation) independent of how the keyspace is
   partitioned across shards, while still being a deterministic
   function of the config. Both event engines implement exactly this
   order, which is what makes `--events heap|wheel` reports
   byte-identical. *)

let k_arrive = 0
let k_retry = 1
let k_release = 2
let k_expire = 3

(* {1 The heap oracle}

   The PR 6 event engine, kept as the differential oracle for the
   wheel: a binary min-heap of boxed entries (one record + one variant
   allocation per push, O(log n) sift per operation). The wheel must
   match its reports byte-for-byte; the benchmark gates on beating it
   >= 5x at 100k clients. *)

module Heap = struct
  type hev =
    | HArrive of int
    | HRetry of int
    | HRelease of { round : int; owner : int }
    | HExpire of { round : int }

  type entry = { at : float; okey : int; kseq : int; ev : hev }

  type t = { mutable arr : entry array; mutable len : int }

  let create () = { arr = [||]; len = 0 }

  let lt a b =
    a.at < b.at
    || (a.at = b.at
       && (a.okey < b.okey || (a.okey = b.okey && a.kseq < b.kseq)))

  let push t ~at ~okey ~kseq ev =
    let e = { at; okey; kseq; ev } in
    if t.len = Array.length t.arr then begin
      let cap = max 64 (2 * t.len) in
      let bigger = Array.make cap e in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    t.arr.(t.len) <- e;
    t.len <- t.len + 1;
    (* sift up *)
    let i = ref (t.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt t.arr.(!i) t.arr.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = t.arr.(p) in
      t.arr.(p) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := p
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.arr.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.arr.(0) <- t.arr.(t.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.len && lt t.arr.(l) t.arr.(!smallest) then smallest := l;
          if r < t.len && lt t.arr.(r) t.arr.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = t.arr.(!smallest) in
            t.arr.(!smallest) <- t.arr.(!i);
            t.arr.(!i) <- tmp;
            i := !smallest
          end
        done
      end;
      Some top
    end
end

type equeue = Qheap of Heap.t | Qwheel of Wheel.t

(* {1 Per-shard partial results}

   Every field merges associatively (sums, max, Histo.merge_into), so
   folding partials in shard order yields the same report for any
   shard count. *)

type partial = {
  mutable p_completed : int;
  mutable p_deadline : int;
  mutable p_crashed : int;
  mutable p_holder_crashes : int;
  mutable p_forced : int;
  mutable p_shed : int;
  mutable p_retries : int;
  mutable p_rounds : int;
  p_hist : Histo.t;
  p_last : float array;  (* singleton: latest effective event time *)
}

(* A key's reusable election arena, one per configured kernel. Both
   carry the same algorithm; [Flat] is its registry [make_flat]
   compilation, bit-identical to [Eff] under the driver's derived seeds
   and adversaries, so the final report does not depend on the kernel. *)
type inst =
  | Eff of Leaderelect.Le.t
  | Flat of Flatsim.Machine.t

let run ?metrics ?(domains = 1) cfg =
  validate cfg;
  let entry =
    match Rtas.Registry.find cfg.algorithm with
    | Some e -> e
    | None ->
        invalid_arg
          (Printf.sprintf "Driver: unknown algorithm %S (expected one of: %s)"
             cfg.algorithm
             (String.concat ", " (Rtas.Registry.names ())))
  in
  let flat_prog =
    match cfg.kernel with
    | `Effect -> None
    | `Flat ->
        if cfg.plan <> None then
          invalid_arg
            "Driver: fault plans hook the effect scheduler; use kernel = \
             `Effect with plan";
        (match entry.Rtas.Registry.make_flat with
        | Some mk -> Some (mk ~n:cfg.contenders)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Driver: algorithm %S has no flat-kernel compilation \
                  (flat entries: %s)"
                 cfg.algorithm
                 (String.concat ", " (Rtas.Registry.flat_names ()))))
  in
  let seed = cfg.seed in
  let lmode =
    match cfg.latency with
    | `Exact -> `Exact
    | `Hist -> `Log
    | `Auto -> if cfg.clients <= auto_exact_max then `Exact else `Log
  in
  (* Dedicated derive streams, in the repo-wide convention: 10 arrival,
     11 key choice, 12 chaos, 13 round scheduling. Chaos and round
     streams are split per key and then per round, so a key's whole
     timeline is a function of (seed, key) alone — the property that
     makes the keyspace shardable without reordering any stream. *)
  let arrivals =
    Arrival.create cfg.arrival (Sim.Rng.create (Sim.Rng.derive seed ~stream:10))
  in
  let zipf = Zipf.create ~n:cfg.keys ~s:cfg.zipf_s in
  let zrng = Sim.Rng.create (Sim.Rng.derive seed ~stream:11) in
  let chaos_base = Sim.Rng.derive seed ~stream:12 in
  let round_base = Sim.Rng.derive seed ~stream:13 in
  (* Generate the whole open-loop arrival schedule up front (times
     strictly increasing, keys Zipfian) into the flat client arrays.
     This phase is shared by all shards; each shard replays only the
     clients whose key it owns. *)
  let cl = Clients.create cfg.clients in
  for i = 0 to cfg.clients - 1 do
    Clients.init cl i ~arrival:(Arrival.next arrivals)
      ~key:(Zipf.sample zipf zrng)
  done;
  let nshards = cfg.shards in
  let run_shard shard =
    (* Per-key arenas, built once on first touch; every later round is
       a [Memory.reset] of the same structure — the arena-reuse idiom
       of DESIGN.md §9 lifted from trial batches to service rounds. *)
    let arenas : (int, Sim.Memory.t * Leaderelect.Le.t) Hashtbl.t =
      Hashtbl.create 64
    in
    let flat_arenas : (int, Flatsim.Machine.t) Hashtbl.t =
      Hashtbl.create 64
    in
    let module E = struct
      type instance = inst

      let fresh ~key ~round:_ =
        match flat_prog with
        | Some prog -> (
            (* The flat machine resets per round (it needs the round
               seed and contender count), so [fresh] only
               finds-or-builds. *)
            match Hashtbl.find_opt flat_arenas key with
            | Some m -> Flat m
            | None ->
                let m = Flatsim.Machine.create ~procs:cfg.contenders prog in
                Hashtbl.add flat_arenas key m;
                Flat m)
        | None -> (
            match Hashtbl.find_opt arenas key with
            | Some (mem, le) ->
                Sim.Memory.reset mem;
                Eff le
            | None ->
                let mem = Sim.Memory.create () in
                let le = entry.Rtas.Registry.make mem ~n:cfg.contenders in
                Hashtbl.add arenas key (mem, le);
                Eff le)
    end in
    let module R = Resettable.Make (E) in
    let res : R.t option array = Array.make cfg.keys None in
    let get_res k =
      match res.(k) with
      | Some r -> r
      | None ->
          let r = R.create ~key:k ~now:0.0 in
          res.(k) <- Some r;
          r
    in
    (* Per-key wait queues as intrusive lists through [cl.qnext]. *)
    let qhead = Array.make cfg.keys (-1)
    and qtail = Array.make cfg.keys (-1)
    and qlen = Array.make cfg.keys 0
    and kseq = Array.make cfg.keys 0
    and burned = Array.make cfg.keys false in
    let p =
      {
        p_completed = 0;
        p_deadline = 0;
        p_crashed = 0;
        p_holder_crashes = 0;
        p_forced = 0;
        p_shed = 0;
        p_retries = 0;
        p_rounds = 0;
        p_hist = Histo.create lmode;
        p_last = Array.make 1 0.0;
      }
    in
    let q =
      match cfg.events with
      | `Wheel ->
          Qwheel (Wheel.create ~capacity:((cfg.clients / nshards) + 256) ())
      | `Heap -> Qheap (Heap.create ())
    in
    (* The engine dispatch is hoisted out of the per-event path: [push]
       is bound once to the engine-specific closure, and the event loop
       below is specialised per engine (no cursor record between pop
       and dispatch). *)
    let push =
      match q with
      | Qwheel w ->
          fun ~at ~key ~kind ~a ~b ->
            let s = kseq.(key) in
            kseq.(key) <- s + 1;
            Wheel.schedule w ~at ~key ~kseq:s ~kind ~a ~b
      | Qheap h ->
          fun ~at ~key ~kind ~a ~b ->
            let s = kseq.(key) in
            kseq.(key) <- s + 1;
            let ev =
              if kind = k_arrive then Heap.HArrive a
              else if kind = k_retry then Heap.HRetry a
              else if kind = k_release then
                Heap.HRelease { round = a; owner = b }
              else Heap.HExpire { round = a }
            in
            Heap.push h ~at ~okey:key ~kseq:s ev
    in
    let bump_last now = if now > p.p_last.(0) then p.p_last.(0) <- now in
    let resolve c =
      assert (cl.Clients.state.(c) = 0);
      cl.Clients.state.(c) <- 1
    in
    let complete c ~now =
      resolve c;
      p.p_completed <- p.p_completed + 1;
      Histo.observe p.p_hist (now -. cl.Clients.arrival.(c))
    in
    (* Replay this shard's arrivals, in global client order so per-key
       [kseq] sequences are identical for every shard count. *)
    if nshards = 1 then
      for i = 0 to cfg.clients - 1 do
        push ~at:cl.Clients.arrival.(i) ~key:cl.Clients.key.(i) ~kind:k_arrive
          ~a:i ~b:0
      done
    else
      for i = 0 to cfg.clients - 1 do
        let k = cl.Clients.key.(i) in
        if k mod nshards = shard then
          push ~at:cl.Clients.arrival.(i) ~key:k ~kind:k_arrive ~a:i ~b:0
      done;
    let base_adversary sseed =
      match cfg.adversary with
      | `Round_robin -> Sim.Adversary.round_robin ()
      | `Random ->
          Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive sseed ~stream:1)
    in
    let scratch = Array.make cfg.contenders 0 in
    (* The per-key burned flag: the current round's one-shot instance
       has hosted its election (its contender slots are consumed), so
       no second election may run on it — the key waits for the Release
       or Expire that installs the next round. *)
    let rec maybe_round k now =
      match res.(k) with
      | None -> ()
      | Some r -> (
          match R.state r with
          | Resettable.Held _ -> ()
          | Resettable.Open { round; inst; _ } ->
              if burned.(k) || qlen.(k) = 0 then ()
              else begin
                (* Pick contenders FIFO: drop expired waiters, skip
                   clients already stamped with this round, cap the
                   round size. The rest stay queued in order. *)
                let npicked = ref 0 in
                let rhead = ref (-1) and rtail = ref (-1) and rlen = ref 0 in
                let c = ref qhead.(k) in
                while !c >= 0 do
                  let nxt = cl.Clients.qnext.(!c) in
                  if now -. cl.Clients.arrival.(!c) > cfg.deadline then begin
                    resolve !c;
                    p.p_deadline <- p.p_deadline + 1
                  end
                  else if
                    cl.Clients.stamp.(!c) < round
                    && !npicked < cfg.contenders
                  then begin
                    scratch.(!npicked) <- !c;
                    incr npicked
                  end
                  else begin
                    cl.Clients.qnext.(!c) <- -1;
                    if !rtail < 0 then rhead := !c
                    else cl.Clients.qnext.(!rtail) <- !c;
                    rtail := !c;
                    incr rlen
                  end;
                  c := nxt
                done;
                qhead.(k) <- !rhead;
                qtail.(k) <- !rtail;
                qlen.(k) <- !rlen;
                if !npicked > 0 then run_round k r round inst !npicked now
              end)
    and run_round k r round inst nc now =
      p.p_rounds <- p.p_rounds + 1;
      burned.(k) <- true;
      for pid = 0 to nc - 1 do
        let c = scratch.(pid) in
        cl.Clients.stamp.(c) <- round;
        cl.Clients.attempts.(c) <- cl.Clients.attempts.(c) + 1
      done;
      (* The round seed is a pure function of (seed, key, round): the
         per-key stream [derive round_base ~stream:k] split by the
         key's own round counter. No global round order enters, so any
         shard reproduces the key's rounds bit-identically. *)
      let sseed =
        Sim.Rng.derive (Sim.Rng.derive round_base ~stream:k) ~stream:round
      in
      (* Run the round on the configured kernel. Both paths use the
         same derived seeds and decision procedures, so [status] and
         [duration] are bit-identical between them (pinned by
         test_flatsim's driver-equality test). *)
      let duration, status =
        match inst with
        | Flat m ->
            Flatsim.Machine.reset ~seed:sseed ~procs:nc m;
            (match
               match cfg.adversary with
               | `Round_robin ->
                   Flatsim.Machine.run_rr ~max_total_steps:cfg.max_round_steps
                     m
               | `Random ->
                   Flatsim.Machine.run_random
                     ~max_total_steps:cfg.max_round_steps m
                     ~seed:(Sim.Rng.derive sseed ~stream:1)
             with
            | () -> ()
            | exception Failure _ -> (* livelock cut-off *) ());
            let duration =
              Float.max 1.0 (float_of_int (Flatsim.Machine.time m))
            in
            let status pid =
              if Flatsim.Machine.running m pid then `Gone
              else if m.Flatsim.Machine.results.(pid) = 1 then `Won
              else `Lost
            in
            (duration, status)
        | Eff inst ->
            let adv = base_adversary sseed in
            let adv =
              match cfg.plan with
              | None -> adv
              | Some plan ->
                  Fault.Plan.apply ~seed:(Sim.Rng.derive sseed ~stream:2) plan
                    adv
            in
            let sched =
              Sim.Sched.create ~seed:sseed (Leaderelect.Le.programs inst ~k:nc)
            in
            (match
               Sim.Sched.run ~max_total_steps:cfg.max_round_steps sched adv
             with
            | () -> ()
            | exception Failure _ -> (* livelock cut-off *) ());
            let duration =
              Float.max 1.0 (float_of_int (Sim.Sched.time sched))
            in
            let status pid =
              match Sim.Sched.status sched pid with
              | Sim.Sched.Finished 1 -> `Won
              | Sim.Sched.Finished _ -> `Lost
              | Sim.Sched.Running | Sim.Sched.Crashed -> `Gone
            in
            (duration, status)
      in
      let t_end = now +. duration in
      (* One chaos draw per (key, round), from the key's own derived
         stream — alignment never depends on other keys' rounds. *)
      let u =
        if cfg.crash_prob > 0.0 then
          Sim.Rng.float
            (Sim.Rng.create
               (Sim.Rng.derive
                  (Sim.Rng.derive chaos_base ~stream:k)
                  ~stream:round))
        else 1.0
      in
      let winner = ref (-1) in
      for pid = 0 to nc - 1 do
        let c = scratch.(pid) in
        match status pid with
        | `Won -> winner := c
        | `Lost -> ()
        | `Gone ->
            (* Crashed mid-election by the fault plan (or cut off by a
               livelock bound): the client is gone. *)
            resolve c;
            p.p_crashed <- p.p_crashed + 1
      done;
      (if !winner >= 0 then begin
         let wc = !winner in
         let claimed = R.claim r ~round ~owner:wc ~now:t_end in
         (* The shard is single-threaded: nothing can move the round
            between the election and the claim. *)
         assert claimed;
         (* The lease timer is always armed at claim time — recovery
            does not depend on foreseeing the holder's crash. A lease
            firing after a clean release finds the round moved on and
            is ignored. *)
         push ~at:(t_end +. cfg.deadline) ~key:k ~kind:k_expire ~a:round ~b:0;
         if u < cfg.crash_prob then begin
           (* The holder crashes without releasing: the key recovers
              through the round-stamp expiry path when the lease runs
              out. *)
           p.p_holder_crashes <- p.p_holder_crashes + 1;
           resolve wc;
           p.p_crashed <- p.p_crashed + 1
         end
         else begin
           complete wc ~now:t_end;
           push ~at:(t_end +. cfg.hold) ~key:k ~kind:k_release ~a:round
             ~b:wc
         end
       end
       else
         (* Zero-winner round: every contender (or at least the
            would-be winner) crashed. The round is wedged until the
            lease runs out. *)
         push ~at:(t_end +. cfg.deadline) ~key:k ~kind:k_expire ~a:round ~b:0);
      (* Losers retry under the backoff policy; the deadline check
         happens when the retry fires. *)
      for pid = 0 to nc - 1 do
        let c = scratch.(pid) in
        match status pid with
        | `Lost when cl.Clients.state.(c) = 0 ->
            let d =
              Backoff.delay cfg.backoff ~seed ~client:c
                ~attempt:cl.Clients.attempts.(c)
            in
            push ~at:(t_end +. d) ~key:k ~kind:k_retry ~a:c ~b:0
        | _ -> ()
      done
    in
    let join c now =
      let k = cl.Clients.key.(c) in
      if qlen.(k) >= cfg.max_waiters then begin
        (* Overload shed. [`Drop] rejects the client terminally;
           [`Retry] counts the rejection and sends the client back
           into backoff (the deadline check happens when the retry
           fires), so under sustained overload a client bounces off
           the full queue until it completes or its deadline runs
           out — the closed retry loop of a client-side SDK. *)
        p.p_shed <- p.p_shed + 1;
        match cfg.on_shed with
        | `Drop -> resolve c
        | `Retry ->
            let att = cl.Clients.attempts.(c) + 1 in
            cl.Clients.attempts.(c) <- att;
            let d = Backoff.delay cfg.backoff ~seed ~client:c ~attempt:att in
            push ~at:(now +. d) ~key:k ~kind:k_retry ~a:c ~b:0
      end
      else begin
        (match res.(k) with
        | None -> ignore (get_res k : R.t)
        | Some _ -> ());
        cl.Clients.qnext.(c) <- -1;
        if qtail.(k) < 0 then qhead.(k) <- c
        else cl.Clients.qnext.(qtail.(k)) <- c;
        qtail.(k) <- c;
        qlen.(k) <- qlen.(k) + 1;
        maybe_round k now
      end
    in
    let handle now k kind a b =
      if kind = k_arrive then begin
        bump_last now;
        join a now
      end
      else if kind = k_retry then begin
        let c = a in
        if cl.Clients.state.(c) = 0 then begin
          bump_last now;
          p.p_retries <- p.p_retries + 1;
          if now -. cl.Clients.arrival.(c) > cfg.deadline then begin
            resolve c;
            p.p_deadline <- p.p_deadline + 1
          end
          else join c now
        end
      end
      else if kind = k_release then begin
        let r = get_res k in
        if R.release r ~round:a ~owner:b ~now then begin
          bump_last now;
          burned.(k) <- false;
          maybe_round k now
        end
      end
      else begin
        (* k_expire: the always-armed lease. Stale for every round
           that released cleanly — [force_expire] refuses and the
           event is a no-op (it does not even count as activity for
           the run duration). *)
        let r = get_res k in
        if R.force_expire r ~round:a ~now then begin
          bump_last now;
          burned.(k) <- false;
          maybe_round k now
        end
      end
    in
    (match q with
    | Qwheel w ->
        let rec loop () =
          let id = Wheel.pop w in
          if id >= 0 then begin
            let meta = w.Wheel.ev_meta.(id) in
            handle w.Wheel.ev_at.(id)
              (Wheel.key_of_ord w.Wheel.ev_ord.(id))
              (Wheel.kind_of_meta meta) (Wheel.a_of_meta meta)
              (Wheel.b_of_meta meta);
            loop ()
          end
        in
        loop ()
    | Qheap h ->
        let rec loop () =
          match Heap.pop h with
          | None -> ()
          | Some e ->
              (match e.Heap.ev with
              | Heap.HArrive c -> handle e.Heap.at e.Heap.okey k_arrive c 0
              | Heap.HRetry c -> handle e.Heap.at e.Heap.okey k_retry c 0
              | Heap.HRelease { round; owner } ->
                  handle e.Heap.at e.Heap.okey k_release round owner
              | Heap.HExpire { round } ->
                  handle e.Heap.at e.Heap.okey k_expire round 0);
              loop ()
        in
        loop ());
    (* Defensive drain: a waiter still queued here could only have been
       stranded by a driver bug; account it as deadline-exceeded rather
       than losing it. *)
    for k = 0 to cfg.keys - 1 do
      let c = ref qhead.(k) in
      while !c >= 0 do
        if cl.Clients.state.(!c) = 0 then begin
          resolve !c;
          p.p_deadline <- p.p_deadline + 1
        end;
        c := cl.Clients.qnext.(!c)
      done
    done;
    Array.iter
      (function
        | None -> ()
        | Some r -> p.p_forced <- p.p_forced + R.expiries r)
      res;
    p
  in
  let partials =
    if nshards = 1 then [| run_shard 0 |]
    else begin
      let domains = max 1 (min domains nshards) in
      if domains = 1 then Array.init nshards run_shard
      else Engine.tasks ~domains ~n:nshards run_shard
    end
  in
  (* Associative merge in shard order. *)
  let hist = Histo.create lmode in
  let completed = ref 0
  and deadline_exceeded = ref 0
  and crashed_clients = ref 0
  and holder_crashes = ref 0
  and forced = ref 0
  and shed = ref 0
  and retries = ref 0
  and rounds = ref 0
  and last_time = ref 0.0 in
  Array.iter
    (fun p ->
      completed := !completed + p.p_completed;
      deadline_exceeded := !deadline_exceeded + p.p_deadline;
      crashed_clients := !crashed_clients + p.p_crashed;
      holder_crashes := !holder_crashes + p.p_holder_crashes;
      forced := !forced + p.p_forced;
      shed := !shed + p.p_shed;
      retries := !retries + p.p_retries;
      rounds := !rounds + p.p_rounds;
      if p.p_last.(0) > !last_time then last_time := p.p_last.(0);
      Histo.merge_into ~into:hist p.p_hist)
    partials;
  let counts =
    {
      Report.clients = cfg.clients;
      completed = !completed;
      deadline_exceeded = !deadline_exceeded;
      crashed_clients = !crashed_clients;
      holder_crashes = !holder_crashes;
      forced_expiries = !forced;
      shed = !shed;
      retries = !retries;
      rounds = !rounds;
      stale_wins = 0;
    }
  in
  assert (Report.balanced ~shed_terminal:(cfg.on_shed = `Drop) counts);
  let duration = Float.max 1.0 !last_time in
  let report =
    {
      Report.backend = "sim";
      algorithm = cfg.algorithm;
      keys = cfg.keys;
      zipf_s = cfg.zipf_s;
      arrival = Arrival.describe cfg.arrival;
      backoff = Backoff.describe cfg.backoff;
      deadline = cfg.deadline;
      hold = cfg.hold;
      crash_prob = cfg.crash_prob;
      workers = 1;
      seed;
      duration;
      throughput = float_of_int !completed /. duration *. 1000.0;
      counts;
      latency = Report.latency_of_histo hist;
      livelocked = false;
      diagnosis = None;
    }
  in
  Option.iter
    (fun m ->
      let h = Obs.Metrics.histogram m "service.latency_ticks" in
      Histo.iter_values
        (fun ~value ~count ->
          for _ = 1 to count do
            Obs.Metrics.observe h (int_of_float value)
          done)
        hist;
      Report.observe_metrics m report)
    metrics;
  report
