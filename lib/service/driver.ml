type config = {
  algorithm : string;
  clients : int;
  keys : int;
  zipf_s : float;
  arrival : Arrival.kind;
  backoff : Backoff.t;
  deadline : float;
  hold : float;
  max_waiters : int;
  contenders : int;
  crash_prob : float;
  plan : Fault.Plan.t option;
  adversary : [ `Random | `Round_robin ];
  max_round_steps : int;
  kernel : [ `Effect | `Flat ];
  seed : int64;
}

let default ~algorithm =
  {
    algorithm;
    clients = 1000;
    keys = 16;
    zipf_s = 0.9;
    arrival = Arrival.Poisson { rate = 0.02 };
    backoff = Backoff.Exp { base = 8.0; cap = 512.0 };
    deadline = 20_000.0;
    hold = 64.0;
    max_waiters = 64;
    contenders = 32;
    crash_prob = 0.0;
    plan = None;
    adversary = `Random;
    max_round_steps = 1_000_000;
    kernel = `Effect;
    seed = 1L;
  }

let validate cfg =
  if cfg.clients < 1 then invalid_arg "Driver: clients must be >= 1";
  if cfg.keys < 1 then invalid_arg "Driver: keys must be >= 1";
  if cfg.deadline <= 0.0 then invalid_arg "Driver: deadline must be > 0";
  if cfg.hold < 0.0 then invalid_arg "Driver: hold must be >= 0";
  if cfg.max_waiters < 1 then invalid_arg "Driver: max_waiters must be >= 1";
  if cfg.contenders < 1 then invalid_arg "Driver: contenders must be >= 1";
  if not (cfg.crash_prob >= 0.0 && cfg.crash_prob <= 1.0) then
    invalid_arg "Driver: crash_prob must be in [0, 1]";
  Arrival.validate cfg.arrival;
  Backoff.validate cfg.backoff

(* {1 Event heap}

   A binary min-heap on (time, insertion sequence): the sequence
   tie-break makes simultaneous events fire in insertion order, so the
   whole simulation is a pure function of the config. *)

module Heap = struct
  type 'a entry = { at : float; seq : int; ev : 'a }

  type 'a t = {
    mutable arr : 'a entry array;
    mutable len : int;
    mutable seq : int;
  }

  let create () = { arr = [||]; len = 0; seq = 0 }

  let lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push t at ev =
    let e = { at; seq = t.seq; ev } in
    t.seq <- t.seq + 1;
    if t.len = Array.length t.arr then begin
      let cap = max 64 (2 * t.len) in
      let bigger = Array.make cap e in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    t.arr.(t.len) <- e;
    t.len <- t.len + 1;
    (* sift up *)
    let i = ref (t.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt t.arr.(!i) t.arr.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = t.arr.(p) in
      t.arr.(p) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := p
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.arr.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.arr.(0) <- t.arr.(t.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.len && lt t.arr.(l) t.arr.(!smallest) then smallest := l;
          if r < t.len && lt t.arr.(r) t.arr.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = t.arr.(!smallest) in
            t.arr.(!smallest) <- t.arr.(!i);
            t.arr.(!i) <- tmp;
            i := !smallest
          end
        done
      end;
      Some (top.at, top.ev)
    end
end

(* {1 The discrete-event simulation} *)

type client = {
  c_id : int;
  c_key : int;
  c_arrival : float;
  mutable c_attempts : int;
  mutable c_stamp : int;  (* last round this client contended in; -1 *)
  mutable c_done : bool;
}

type ev =
  | Arrive of client
  | Retry of client
  | Release of { key : int; round : int; owner : int }
  | Expire of { key : int; round : int }

(* A key's reusable election arena, one per configured kernel. Both
   carry the same algorithm; [Flat] is its registry [make_flat]
   compilation, bit-identical to [Eff] under the driver's derived seeds
   and adversaries, so the final report does not depend on the kernel. *)
type inst =
  | Eff of Leaderelect.Le.t
  | Flat of Flatsim.Machine.t

let run ?metrics cfg =
  validate cfg;
  let entry =
    match Rtas.Registry.find cfg.algorithm with
    | Some e -> e
    | None ->
        invalid_arg
          (Printf.sprintf "Driver: unknown algorithm %S (expected one of: %s)"
             cfg.algorithm
             (String.concat ", " (Rtas.Registry.names ())))
  in
  let flat_prog =
    match cfg.kernel with
    | `Effect -> None
    | `Flat ->
        if cfg.plan <> None then
          invalid_arg
            "Driver: fault plans hook the effect scheduler; use kernel = \
             `Effect with plan";
        (match entry.Rtas.Registry.make_flat with
        | Some mk -> Some (mk ~n:cfg.contenders)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Driver: algorithm %S has no flat-kernel compilation \
                  (flat entries: %s)"
                 cfg.algorithm
                 (String.concat ", " (Rtas.Registry.flat_names ()))))
  in
  let seed = cfg.seed in
  (* Dedicated derive streams, in the repo-wide convention: 10 arrival,
     11 key choice, 12 chaos, 13 round scheduling. *)
  let arrivals = Arrival.create cfg.arrival (Sim.Rng.create (Sim.Rng.derive seed ~stream:10)) in
  let zipf = Zipf.create ~n:cfg.keys ~s:cfg.zipf_s in
  let zrng = Sim.Rng.create (Sim.Rng.derive seed ~stream:11) in
  let chaos_rng = Sim.Rng.create (Sim.Rng.derive seed ~stream:12) in
  let round_base = Sim.Rng.derive seed ~stream:13 in
  (* Per-key arenas, built once on first touch; every later round is a
     [Memory.reset] of the same structure — the arena-reuse idiom of
     DESIGN.md §9 lifted from trial batches to service rounds. *)
  let arenas : (int, Sim.Memory.t * Leaderelect.Le.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let flat_arenas : (int, Flatsim.Machine.t) Hashtbl.t = Hashtbl.create 64 in
  let module E = struct
    type instance = inst

    let fresh ~key ~round:_ =
      match flat_prog with
      | Some prog -> (
          (* The flat machine resets per round (it needs the round seed
             and contender count), so [fresh] only finds-or-builds. *)
          match Hashtbl.find_opt flat_arenas key with
          | Some m -> Flat m
          | None ->
              let m = Flatsim.Machine.create ~procs:cfg.contenders prog in
              Hashtbl.add flat_arenas key m;
              Flat m)
      | None -> (
          match Hashtbl.find_opt arenas key with
          | Some (mem, le) ->
              Sim.Memory.reset mem;
              Eff le
          | None ->
              let mem = Sim.Memory.create () in
              let le = entry.Rtas.Registry.make mem ~n:cfg.contenders in
              Hashtbl.add arenas key (mem, le);
              Eff le)
  end in
  let module R = Resettable.Make (E) in
  let keys =
    Array.init cfg.keys (fun _ -> (None : (R.t * client Queue.t) option))
  in
  let key_state k =
    match keys.(k) with
    | Some ks -> ks
    | None ->
        let ks = (R.create ~key:k ~now:0.0, Queue.create ()) in
        keys.(k) <- Some ks;
        ks
  in
  let heap = Heap.create () in
  (* Counters. *)
  let completed = ref 0
  and deadline_exceeded = ref 0
  and crashed_clients = ref 0
  and holder_crashes = ref 0
  and shed = ref 0
  and retries = ref 0
  and rounds = ref 0
  and stale_wins = ref 0 in
  let latencies = ref [] in
  let n_lat = ref 0 in
  let lat_hist =
    Option.map (fun m -> Obs.Metrics.histogram m "service.latency_ticks") metrics
  in
  let resolve c =
    assert (not c.c_done);
    c.c_done <- true
  in
  let complete c ~now =
    resolve c;
    incr completed;
    let l = now -. c.c_arrival in
    latencies := l :: !latencies;
    incr n_lat;
    Option.iter (fun h -> Obs.Metrics.observe h (int_of_float l)) lat_hist
  in
  (* Generate the whole open-loop arrival schedule up front (times are
     strictly increasing, keys Zipfian). *)
  for i = 0 to cfg.clients - 1 do
    let at = Arrival.next arrivals in
    let c =
      {
        c_id = i;
        c_key = Zipf.sample zipf zrng;
        c_arrival = at;
        c_attempts = 0;
        c_stamp = -1;
        c_done = false;
      }
    in
    Heap.push heap at (Arrive c)
  done;
  let base_adversary sseed =
    match cfg.adversary with
    | `Round_robin -> Sim.Adversary.round_robin ()
    | `Random ->
        Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive sseed ~stream:1)
  in
  (* The per-key burned flag: the current round's one-shot instance has
     hosted its election (its contender slots are consumed), so no
     second election may run on it — the key waits for the Release or
     Expire that installs the next round. *)
  let burned = Array.make cfg.keys false in
  let rec maybe_round k now =
    let res, waiting = key_state k in
    match R.state res with
    | Resettable.Held _ -> ()
    | Resettable.Open { round; inst; _ } ->
        if burned.(k) || Queue.is_empty waiting then ()
        else begin
          (* Pick contenders FIFO: drop expired waiters, skip clients
             already stamped with this round, cap the round size. *)
          let picked = ref [] and npicked = ref 0 in
          let rest = Queue.create () in
          Queue.iter
        (fun c ->
              if now -. c.c_arrival > cfg.deadline then begin
                resolve c;
                incr deadline_exceeded
              end
              else if c.c_stamp < round && !npicked < cfg.contenders then begin
                picked := c :: !picked;
                incr npicked
              end
              else Queue.add c rest)
            waiting;
          Queue.clear waiting;
          Queue.transfer rest waiting;
          match List.rev !picked with
          | [] -> ()
          | contenders -> run_round k res round inst contenders now
        end
  and run_round k res round inst contenders now =
    incr rounds;
    burned.(k) <- true;
    let contenders = Array.of_list contenders in
    Array.iter
      (fun c ->
        c.c_stamp <- round;
        c.c_attempts <- c.c_attempts + 1)
      contenders;
    let nc = Array.length contenders in
    let sseed = Sim.Rng.derive round_base ~stream:!rounds in
    (* Run the round on the configured kernel. Both paths use the same
       derived seeds and decision procedures, so [status] and
       [duration] are bit-identical between them (pinned by
       test_flatsim's driver-equality test). *)
    let duration, status =
      match inst with
      | Flat m ->
          Flatsim.Machine.reset ~seed:sseed ~procs:nc m;
          (match
             match cfg.adversary with
             | `Round_robin ->
                 Flatsim.Machine.run_rr ~max_total_steps:cfg.max_round_steps m
             | `Random ->
                 Flatsim.Machine.run_random
                   ~max_total_steps:cfg.max_round_steps m
                   ~seed:(Sim.Rng.derive sseed ~stream:1)
           with
          | () -> ()
          | exception Failure _ -> (* livelock cut-off *) ());
          let duration =
            Float.max 1.0 (float_of_int (Flatsim.Machine.time m))
          in
          let status pid =
            if Flatsim.Machine.running m pid then `Gone
            else if m.Flatsim.Machine.results.(pid) = 1 then `Won
            else `Lost
          in
          (duration, status)
      | Eff inst ->
          let adv = base_adversary sseed in
          let adv =
            match cfg.plan with
            | None -> adv
            | Some plan ->
                Fault.Plan.apply ~seed:(Sim.Rng.derive sseed ~stream:2) plan
                  adv
          in
          let sched =
            Sim.Sched.create ~seed:sseed (Leaderelect.Le.programs inst ~k:nc)
          in
          (match
             Sim.Sched.run ~max_total_steps:cfg.max_round_steps sched adv
           with
          | () -> ()
          | exception Failure _ -> (* livelock cut-off *) ());
          let duration = Float.max 1.0 (float_of_int (Sim.Sched.time sched)) in
          let status pid =
            match Sim.Sched.status sched pid with
            | Sim.Sched.Finished 1 -> `Won
            | Sim.Sched.Finished _ -> `Lost
            | Sim.Sched.Running | Sim.Sched.Crashed -> `Gone
          in
          (duration, status)
    in
    let t_end = now +. duration in
    (* One chaos draw per round keeps the stream aligned whatever the
       round's outcome. *)
    let u = if cfg.crash_prob > 0.0 then Sim.Rng.float chaos_rng else 1.0 in
    let winner = ref None in
    Array.iteri
      (fun pid c ->
        match status pid with
        | `Won -> winner := Some c
        | `Lost -> ()
        | `Gone ->
            (* Crashed mid-election by the fault plan (or cut off by a
               livelock bound): the client is gone. *)
            resolve c;
            incr crashed_clients)
      contenders;
    (match !winner with
    | Some wc ->
        let claimed = R.claim res ~round ~owner:wc.c_id ~now:t_end in
        (* The driver is single-threaded: nothing can move the round
           between the election and the claim. *)
        assert claimed;
        if u < cfg.crash_prob then begin
          (* The holder crashes without releasing: the key must recover
             through the round-stamp expiry path. *)
          incr holder_crashes;
          resolve wc;
          incr crashed_clients;
          Heap.push heap (t_end +. cfg.deadline) (Expire { key = k; round })
        end
        else begin
          complete wc ~now:t_end;
          Heap.push heap (t_end +. cfg.hold)
            (Release { key = k; round; owner = wc.c_id })
        end
    | None ->
        (* Zero-winner round: every contender (or at least the would-be
           winner) crashed. The round is wedged until the lease runs
           out. *)
        Heap.push heap (t_end +. cfg.deadline) (Expire { key = k; round }));
    (* Losers retry under the backoff policy; the deadline check
       happens when the retry fires. *)
    Array.iteri
      (fun pid c ->
        match status pid with
        | `Lost when not c.c_done ->
            let d =
              Backoff.delay cfg.backoff ~seed ~client:c.c_id
                ~attempt:c.c_attempts
            in
            Heap.push heap (t_end +. d) (Retry c)
        | _ -> ())
      contenders
  in
  let join c now =
    let _, waiting = key_state c.c_key in
    if Queue.length waiting >= cfg.max_waiters then begin
      (* Overload shed: report the rejection instead of queueing
         without bound. *)
      resolve c;
      incr shed
    end
    else begin
      Queue.add c waiting;
      maybe_round c.c_key now
    end
  in
  let last_time = ref 0.0 in
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (now, ev) ->
        last_time := Float.max !last_time now;
        (match ev with
        | Arrive c -> join c now
        | Retry c ->
            if not c.c_done then begin
              incr retries;
              if now -. c.c_arrival > cfg.deadline then begin
                resolve c;
                incr deadline_exceeded
              end
              else join c now
            end
        | Release { key; round; owner } ->
            let res, _ = key_state key in
            let ok = R.release res ~round ~owner ~now in
            assert ok;
            burned.(key) <- false;
            maybe_round key now
        | Expire { key; round } ->
            let res, _ = key_state key in
            if R.force_expire res ~round ~now then begin
              burned.(key) <- false;
              maybe_round key now
            end);
        loop ()
  in
  loop ();
  (* Defensive drain: a waiter still queued here could only have been
     stranded by a driver bug; account it as deadline-exceeded rather
     than losing it. *)
  Array.iter
    (function
      | None -> ()
      | Some (_, waiting) ->
          Queue.iter
            (fun c ->
              if not c.c_done then begin
                resolve c;
                incr deadline_exceeded
              end)
            waiting)
    keys;
  let forced =
    Array.fold_left
      (fun acc -> function None -> acc | Some (res, _) -> acc + R.expiries res)
      0 keys
  in
  let counts =
    {
      Report.clients = cfg.clients;
      completed = !completed;
      deadline_exceeded = !deadline_exceeded;
      crashed_clients = !crashed_clients;
      holder_crashes = !holder_crashes;
      forced_expiries = forced;
      shed = !shed;
      retries = !retries;
      rounds = !rounds;
      stale_wins = !stale_wins;
    }
  in
  assert (Report.balanced counts);
  let duration = Float.max 1.0 !last_time in
  let report =
    {
      Report.backend = "sim";
      algorithm = cfg.algorithm;
      keys = cfg.keys;
      zipf_s = cfg.zipf_s;
      arrival = Arrival.describe cfg.arrival;
      backoff = Backoff.describe cfg.backoff;
      deadline = cfg.deadline;
      hold = cfg.hold;
      crash_prob = cfg.crash_prob;
      workers = 1;
      seed;
      duration;
      throughput = float_of_int !completed /. duration *. 1000.0;
      counts;
      latency =
        Report.latency_of_samples (Array.of_list (List.rev !latencies));
      livelocked = false;
      diagnosis = None;
    }
  in
  Option.iter (fun m -> Report.observe_metrics m report) metrics;
  report
