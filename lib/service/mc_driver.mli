(** The real-domain lock service: the same open-loop workload as
    {!Driver} run against {!Backend.Atomic_mem} elections, with worker
    domains racing genuine [Atomic.t] CASes and a {!Fault.Watchdog}
    bounding the run's wall clock.

    One tick is one microsecond: deadlines, holds and backoff delays
    become [Unix.sleepf] intervals, latencies and throughput come from
    [Unix.gettimeofday], and the report shares the sim driver's schema
    and units. The arrival schedule and Zipfian key choices are drawn
    from the same derived streams as the sim driver, so both backends
    face the same offered load for a given seed — though wall-clock
    interleaving makes the atomic run's outcomes nondeterministic, as
    real hardware is.

    Clients are sharded round-robin over [workers] domains. A worker's
    slot in every one-shot instance is its own index ([n = workers]),
    and a per-worker, per-key round stamp enforces the at-most-once
    rule; winners {!Resettable.Make.claim} their round, losers retry
    under the backoff policy until the deadline.

    Chaos ([crash_prob]): a winner crashes before claiming with
    probability [p/2] (wedging the round [Open]) or after claiming with
    probability [p/2] (wedging it [Held]); in both cases the key
    recovers only when another worker notices the lease (equal to the
    deadline) has run out and fires {!Resettable.Make.force_expire} —
    the crashed holder cannot wedge the key.

    If the watchdog gives up, unfinished worker domains are leaked, the
    report carries [livelocked = true] plus a per-worker progress
    diagnosis, and the caller should exit nonzero. *)

type config = {
  algorithm : string;  (** A dual-backend {!Rtas.Registry} entry. *)
  clients : int;
  keys : int;
  zipf_s : float;
  arrival : Arrival.kind;
  backoff : Backoff.t;
  deadline : float;  (** Ticks (µs); also the recovery lease. *)
  hold : float;
  crash_prob : float;
  workers : int;  (** Domains; also the election width [n]. *)
  timeout : float;  (** Watchdog bound, wall-clock seconds. *)
  seed : int64;
}

val default : algorithm:string -> config

val validate : config -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

val run : ?metrics:Obs.Metrics.t -> config -> Report.t
(** Run the workload. Requires the entry to have an [Atomic_mem] port
    ([make_mc]); raises [Invalid_argument] otherwise. *)
