type counts = {
  clients : int;
  completed : int;
  deadline_exceeded : int;
  crashed_clients : int;
  holder_crashes : int;
  forced_expiries : int;
  shed : int;
  retries : int;
  rounds : int;
  stale_wins : int;
}

let zero_counts ~clients =
  {
    clients;
    completed = 0;
    deadline_exceeded = 0;
    crashed_clients = 0;
    holder_crashes = 0;
    forced_expiries = 0;
    shed = 0;
    retries = 0;
    rounds = 0;
    stale_wins = 0;
  }

type latency = {
  l_mode : string;  (* "exact" or "hist" *)
  l_n : int;
  l_mean : float;
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_p999 : float;
  l_max : float;
}

type t = {
  backend : string;
  algorithm : string;
  keys : int;
  zipf_s : float;
  arrival : string;
  backoff : string;
  deadline : float;
  hold : float;
  crash_prob : float;
  workers : int;
  seed : int64;
  duration : float;
  throughput : float;
  counts : counts;
  latency : latency option;
  livelocked : bool;
  diagnosis : string option;
}

let latency_of_samples samples =
  if Array.length samples = 0 then None
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    let s = Sim.Stats.summarize_sorted sorted in
    let p q = Sim.Stats.percentile_sorted sorted q in
    Some
      {
        l_mode = "exact";
        l_n = s.Sim.Stats.count;
        l_mean = s.Sim.Stats.mean;
        l_p50 = p 0.5;
        l_p95 = s.Sim.Stats.p95;
        l_p99 = p 0.99;
        l_p999 = s.Sim.Stats.p999;
        l_max = s.Sim.Stats.max;
      }
  end

let latency_of_histo h =
  match Histo.snapshot h with
  | None -> None
  | Some s ->
      Some
        {
          l_mode = Histo.mode_name h;
          l_n = s.Histo.s_n;
          l_mean = s.Histo.s_mean;
          l_p50 = s.Histo.s_p50;
          l_p95 = s.Histo.s_p95;
          l_p99 = s.Histo.s_p99;
          l_p999 = s.Histo.s_p999;
          l_max = s.Histo.s_max;
        }

(* Every client must end in exactly one bucket; the drivers assert this
   via [balanced] before reporting. Under the driver's retry-on-shed
   mode a shed is a non-terminal rejection event (the client retries),
   so it leaves the partition. *)
let balanced ?(shed_terminal = true) c =
  c.completed + c.deadline_exceeded + c.crashed_clients
  + (if shed_terminal then c.shed else 0)
  = c.clients

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let b = Buffer.create 1024 in
  let add = Buffer.add_string b in
  add "{\n";
  add (Printf.sprintf "  \"backend\": \"%s\",\n" (json_escape t.backend));
  add (Printf.sprintf "  \"algorithm\": \"%s\",\n" (json_escape t.algorithm));
  add (Printf.sprintf "  \"keys\": %d,\n" t.keys);
  add (Printf.sprintf "  \"zipf_s\": %g,\n" t.zipf_s);
  add (Printf.sprintf "  \"arrival\": \"%s\",\n" (json_escape t.arrival));
  add (Printf.sprintf "  \"backoff\": \"%s\",\n" (json_escape t.backoff));
  add (Printf.sprintf "  \"deadline_ticks\": %g,\n" t.deadline);
  add (Printf.sprintf "  \"hold_ticks\": %g,\n" t.hold);
  add (Printf.sprintf "  \"crash_prob\": %g,\n" t.crash_prob);
  add (Printf.sprintf "  \"workers\": %d,\n" t.workers);
  add (Printf.sprintf "  \"seed\": %Ld,\n" t.seed);
  add (Printf.sprintf "  \"duration_ticks\": %.3f,\n" t.duration);
  add (Printf.sprintf "  \"throughput_per_ktick\": %.6f,\n" t.throughput);
  let c = t.counts in
  add
    (Printf.sprintf
       "  \"counts\": {\"clients\": %d, \"completed\": %d, \
        \"deadline_exceeded\": %d, \"crashed_clients\": %d, \
        \"holder_crashes\": %d, \"forced_expiries\": %d, \"shed\": %d, \
        \"retries\": %d, \"rounds\": %d, \"stale_wins\": %d},\n"
       c.clients c.completed c.deadline_exceeded c.crashed_clients
       c.holder_crashes c.forced_expiries c.shed c.retries c.rounds
       c.stale_wins);
  (match t.latency with
  | None -> add "  \"latency\": null,\n"
  | Some l ->
      add
        (Printf.sprintf
           "  \"latency\": {\"mode\": \"%s\", \"n\": %d, \"mean\": %.3f, \
            \"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f, \"p999\": %.3f, \
            \"max\": %.3f},\n"
           (json_escape l.l_mode) l.l_n l.l_mean l.l_p50 l.l_p95 l.l_p99
           l.l_p999 l.l_max));
  add (Printf.sprintf "  \"livelocked\": %b,\n" t.livelocked);
  (match t.diagnosis with
  | None -> add "  \"diagnosis\": null\n"
  | Some d -> add (Printf.sprintf "  \"diagnosis\": \"%s\"\n" (json_escape d)));
  add "}\n";
  Buffer.contents b

let pp ppf t =
  let c = t.counts in
  Fmt.pf ppf
    "@[<v>service %s/%s: %d clients over %d keys (zipf %.2f, %s, backoff %s)@ \
     completed %d, deadline %d, crashed %d (holder %d), shed %d, stale %d@ \
     rounds %d, forced expiries %d, retries %d@ \
     duration %.0f ticks, throughput %.3f/ktick%a%a@]"
    t.backend t.algorithm c.clients t.keys t.zipf_s t.arrival t.backoff
    c.completed c.deadline_exceeded c.crashed_clients c.holder_crashes c.shed
    c.stale_wins c.rounds c.forced_expiries c.retries t.duration t.throughput
    (fun ppf -> function
      | None -> Fmt.pf ppf "@ latency: no completions"
      | Some l ->
          Fmt.pf ppf
            "@ latency ticks: p50 %.1f, p95 %.1f, p99 %.1f, p999 %.1f, max \
             %.1f (n=%d)"
            l.l_p50 l.l_p95 l.l_p99 l.l_p999 l.l_max l.l_n)
    t.latency
    (fun ppf -> function
      | false -> ()
      | true ->
          Fmt.pf ppf "@ LIVELOCKED: %s"
            (Option.value ~default:"(no diagnosis)" t.diagnosis))
    t.livelocked

(* Accumulate a finished report's totals into a Probe metrics registry,
   so service results aggregate and print through the same
   [Obs.Metrics] snapshot machinery as the chaos and profile layers. *)
let observe_metrics m t =
  let c = t.counts in
  let bump name v = Obs.Metrics.add (Obs.Metrics.counter m name) v in
  bump "service.clients" c.clients;
  bump "service.completed" c.completed;
  bump "service.deadline_exceeded" c.deadline_exceeded;
  bump "service.crashed_clients" c.crashed_clients;
  bump "service.holder_crashes" c.holder_crashes;
  bump "service.forced_expiries" c.forced_expiries;
  bump "service.shed" c.shed;
  bump "service.retries" c.retries;
  bump "service.rounds" c.rounds;
  bump "service.stale_wins" c.stale_wins
