type kind =
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst_len : float; idle_len : float; boost : float }

let kind_name = function Poisson _ -> "poisson" | Bursty _ -> "bursty"

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson(rate=%g)" rate
  | Bursty { rate; burst_len; idle_len; boost } ->
      Printf.sprintf "bursty(rate=%g,burst=%g,idle=%g,boost=%g)" rate burst_len
        idle_len boost

let validate = function
  | Poisson { rate } ->
      if rate <= 0.0 then invalid_arg "Arrival: rate must be > 0"
  | Bursty { rate; burst_len; idle_len; boost } ->
      if rate <= 0.0 then invalid_arg "Arrival: rate must be > 0";
      if burst_len <= 0.0 || idle_len < 0.0 then
        invalid_arg "Arrival: burst_len must be > 0 and idle_len >= 0";
      if boost < 1.0 then invalid_arg "Arrival: boost must be >= 1"

type t = { kind : kind; rng : Sim.Rng.t; mutable now : float }

let create kind rng =
  validate kind;
  { kind; rng; now = 0.0 }

let exp_gap rng rate = -.log (1.0 -. Sim.Rng.float rng) /. rate

(* Piecewise-constant-rate Poisson process: draw an exponential gap at
   the rate in force now; if it crosses the next rate boundary, advance
   to the boundary and redraw (the memorylessness of the exponential
   makes this exact, not an approximation). *)
let next t =
  match t.kind with
  | Poisson { rate } ->
      t.now <- t.now +. exp_gap t.rng rate;
      t.now
  | Bursty { rate; burst_len; idle_len; boost } ->
      let cycle = burst_len +. idle_len in
      let rec draw () =
        let pos = Float.rem t.now cycle in
        let in_burst = pos < burst_len in
        let r = if in_burst then rate *. boost else rate in
        let boundary = if in_burst then burst_len -. pos else cycle -. pos in
        let gap = exp_gap t.rng r in
        if gap <= boundary || idle_len = 0.0 then begin
          t.now <- t.now +. gap;
          t.now
        end
        else begin
          t.now <- t.now +. boundary;
          draw ()
        end
      in
      draw ()
