type 'i state =
  | Open of { round : int; inst : 'i; since : float }
  | Held of { round : int; owner : int; since : float }

module type ELECTION = sig
  type instance

  val fresh : key:int -> round:int -> instance
end

module Make (E : ELECTION) = struct
  type t = {
    rt_key : int;
    cell : E.instance state Atomic.t;
    forced : int Atomic.t;
  }

  let create ~key ~now =
    {
      rt_key = key;
      cell = Atomic.make (Open { round = 0; inst = E.fresh ~key ~round:0; since = now });
      forced = Atomic.make 0;
    }

  let key t = t.rt_key

  let state t = Atomic.get t.cell

  let round t =
    match Atomic.get t.cell with
    | Open { round; _ } | Held { round; _ } -> round

  let claim t ~round ~owner ~now =
    match Atomic.get t.cell with
    | Open { round = r; _ } as seen when r = round ->
        Atomic.compare_and_set t.cell seen (Held { round; owner; since = now })
    | _ -> false

  (* [release]/[force_expire] build the next round's instance before
     the CAS; a lost CAS drops it. With the simulator's arena-reuse
     factory that build is a [Memory.reset] of the key's arena — safe
     because the sim driver is single-threaded per run, so installing
     transitions of one key never race. The atomic factory allocates,
     so a dropped instance is garbage, nothing more. *)
  let install_next t ~round ~now seen =
    let next =
      Open { round = round + 1; inst = E.fresh ~key:t.rt_key ~round:(round + 1); since = now }
    in
    Atomic.compare_and_set t.cell seen next

  let release t ~round ~owner ~now =
    match Atomic.get t.cell with
    | Held { round = r; owner = o; _ } as seen when r = round && o = owner ->
        install_next t ~round ~now seen
    | _ -> false

  let force_expire t ~round ~now =
    match Atomic.get t.cell with
    | (Open { round = r; _ } | Held { round = r; _ }) as seen when r = round ->
        let ok = install_next t ~round ~now seen in
        if ok then Atomic.incr t.forced;
        ok
    | _ -> false

  let expiries t = Atomic.get t.forced
end
