(** Flat per-client state arrays with epoch-clear reset.

    Per-client bookkeeping for the service driver held in parallel
    scalar arrays indexed by client id — no per-client records, no GC
    pressure as the client dial turns up. The record is exposed
    flatsim-style so the driver's hot path reads and writes fields as
    direct array loads/stores.

    [reset] is O(1): it bumps the arena epoch, logically invalidating
    every slot. [init] stamps a slot for the current epoch and rewrites
    all of its per-run fields, so arenas can be reused across runs
    without any stale-state hazard ([initialised] checks the stamp).

    [qnext] is an intrusive FIFO link: the driver chains waiting
    clients per key through it (with per-key head/tail indices) instead
    of allocating queue nodes. *)

type t = {
  capacity : int;
  mutable epoch : int;
  estamp : int array;
  arrival : float array;  (** arrival time, ticks *)
  key : int array;  (** Zipfian lock key *)
  attempts : int array;  (** election attempts so far (backoff stage) *)
  stamp : int array;  (** last round contended in, -1 = none *)
  state : int array;  (** 0 = pending, 1 = resolved *)
  qnext : int array;  (** intrusive wait-queue link, -1 = end *)
}

val create : int -> t
(** [create capacity] — raises [Invalid_argument] on [capacity < 1]. *)

val reset : t -> unit
(** O(1) epoch bump; every slot must be re-[init]ed before use. *)

val init : t -> int -> arrival:float -> key:int -> unit
(** Initialise slot [i] for the current epoch. *)

val initialised : t -> int -> bool
(** Whether slot [i] was [init]ed since the last [reset]. *)
