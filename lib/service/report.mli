(** Lock-service run reports: per-run counts, exact completion-latency
    percentiles, machine-readable JSON, and {!Obs.Metrics} feeding.

    All times are in ticks — the simulator's virtual step unit; the
    atomic driver maps one tick to a microsecond — so the two backends
    share one schema and one [jq] surface. Throughput is completions
    per kilotick (for the atomic backend that is completions per
    millisecond). *)

type counts = {
  clients : int;  (** Arrivals generated. *)
  completed : int;  (** Acquired their key within the deadline. *)
  deadline_exceeded : int;
  crashed_clients : int;  (** Lost to injected crashes (election or holder). *)
  holder_crashes : int;  (** Injected crashes of winners/holders. *)
  forced_expiries : int;  (** Round-stamp recovery transitions. *)
  shed : int;  (** Rejected by the overload shed capacity. *)
  retries : int;  (** Re-attempts after losing a round. *)
  rounds : int;  (** Election rounds run. *)
  stale_wins : int;  (** Wins voided because the round had expired. *)
}

val zero_counts : clients:int -> counts

val balanced : ?shed_terminal:bool -> counts -> bool
(** Every client ended in exactly one terminal bucket:
    [completed + deadline_exceeded + crashed_clients + shed = clients].
    With [~shed_terminal:false] (the driver's retry-on-shed mode,
    where a shed is a rejection {e event}, not a client outcome) the
    [shed] term leaves the partition. *)

type latency = {
  l_mode : string;
      (** ["exact"] (per-sample percentiles) or ["hist"] (log-bucketed,
          bounded memory — percentiles within ~1.6% relative). *)
  l_n : int;
  l_mean : float;  (** Exact in both modes. *)
  l_p50 : float;
  l_p95 : float;
  l_p99 : float;
  l_p999 : float;
  l_max : float;  (** Exact in both modes. *)
}

type t = {
  backend : string;  (** ["sim"] or ["atomic"]. *)
  algorithm : string;
  keys : int;
  zipf_s : float;
  arrival : string;  (** {!Arrival.describe}. *)
  backoff : string;  (** {!Backoff.describe}. *)
  deadline : float;
  hold : float;
  crash_prob : float;
  workers : int;
  seed : int64;
  duration : float;  (** Run length in ticks. *)
  throughput : float;  (** Completions per kilotick. *)
  counts : counts;
  latency : latency option;  (** [None] when nothing completed. *)
  livelocked : bool;  (** Watchdog gave up on a real-domain run. *)
  diagnosis : string option;  (** Per-worker progress when livelocked. *)
}

val latency_of_samples : float array -> latency option
(** Exact nearest-rank percentiles (one sort); [None] on the empty
    sample. Does not mutate its argument. *)

val latency_of_histo : Histo.t -> latency option
(** Latency block from a {!Histo} in either mode; [None] when nothing
    was observed. *)

val to_json : t -> string
(** A single JSON object; stable field order, so a fixed-seed simulator
    run emits byte-identical JSON. *)

val pp : t Fmt.t

val observe_metrics : Obs.Metrics.t -> t -> unit
(** Add the report's totals to a metrics registry as
    [service.*] counters. *)
