(** The simulator-backend lock service: an open-loop workload driven as
    a discrete-event simulation over {!Resettable} keys.

    Clients arrive on a Poisson or bursty schedule ({!Arrival}), pick a
    key Zipfian-ly ({!Zipf}), and queue on it. Whenever a key is [Open]
    with a fresh one-shot instance and has eligible waiters, the driver
    runs one election {e round}: it stamps the contenders with the round
    number, runs the registered algorithm's programs to completion under
    a derived-seed {!Sim.Sched} (optionally under a {!Fault.Plan}
    adversary), and advances virtual time by the election's span. The
    winner claims the round; losers retry after a {!Backoff} delay;
    clients whose age exceeds the deadline resolve as deadline-exceeded;
    arrivals that find the key's queue full are shed.

    Chaos ([crash_prob]): each round's winner crashes with that
    probability {e after} claiming and never releases — the key recovers
    only through {!Resettable.Make.force_expire} when the lease (equal
    to the deadline) runs out, exercising the round-stamp recovery path
    end to end. Mid-election contender crashes come from [plan].

    The whole run is a pure function of the config: virtual time, a
    deterministic event engine, and {!Sim.Rng.derive}-split streams make
    the report (and its JSON) bit-identical across repeats and machines.
    Three axes of the execution strategy are report-invariant, each
    pinned by a differential test:

    - [events]: the {!Wheel} timing-wheel engine (O(1), allocation-free
      in steady state) versus the PR 6 binary-heap oracle. Both order
      events by (time, key, per-key sequence).
    - [shards]: the keyspace is partitioned [key mod shards]; every
      per-key stream (round seeds, chaos draws, event sequence) is
      derived from (seed, key), and keys never interact, so per-shard
      partial reports merge associatively into the single-shard report
      byte for byte. With [~domains > 1] shards run on the engine's
      domain pool.
    - [kernel]: flat machines versus effect scheduler, as of PR 7.

    Every claimed round arms a lease timer (the deadline): recovery
    from holder crashes does not rely on foreseeing the crash, and a
    lease firing after a clean release is ignored as stale.

    All times are in ticks. One election round occupies the key for the
    election's simulated span (its {!Sim.Sched.time}), then [hold] more
    ticks before release. *)

type config = {
  algorithm : string;  (** A {!Rtas.Registry} entry name. *)
  clients : int;  (** Total arrivals to generate. *)
  keys : int;
  zipf_s : float;  (** Key-choice skew; [0.] is uniform. *)
  arrival : Arrival.kind;
  backoff : Backoff.t;
  deadline : float;  (** Per-client age limit, and the round lease. *)
  hold : float;  (** Ticks a winner holds the key after its round. *)
  max_waiters : int;  (** Per-key queue capacity; beyond it, shed. *)
  on_shed : [ `Drop | `Retry ];
      (** What a full queue does to a joining client. [`Drop] (the
          default) rejects it terminally — [counts.shed] partitions the
          client population together with completions, deadlines and
          crashes. [`Retry] models a client-side SDK retry loop: the
          rejection is counted in [counts.shed] but the client re-enters
          backoff (its attempt counter advances, so [Exp] delays keep
          escalating) and bounces until it completes or its deadline
          expires; [counts.shed] then counts rejection {e events} and
          only completed/deadline/crashed partition the population.
          Under sustained overload this multiplies cheap timer events
          per client — the regime the event-engine benchmark gates. *)
  contenders : int;
      (** Election width [n]: instances are built with this many slots
          and a round admits at most this many contenders. *)
  crash_prob : float;  (** Per-round holder-crash probability. *)
  plan : Fault.Plan.t option;  (** Mid-election crash/delay storms. *)
  adversary : [ `Random | `Round_robin ];  (** Intra-round scheduler. *)
  max_round_steps : int;  (** Livelock bound on a single round. *)
  kernel : [ `Effect | `Flat ];
      (** Execution kernel for election rounds. [`Flat] runs every round
          on the algorithm's preallocated {!Flatsim.Machine} (the
          registry's [make_flat] compilation): the report is
          bit-identical to [`Effect] — same derived seeds, same
          adversary decisions, same winners and round spans — but a
          round allocates nothing. Requires a flat-registered algorithm
          and is incompatible with [plan] (fault plans hook the effect
          scheduler); {!run} raises [Invalid_argument] otherwise. *)
  events : [ `Heap | `Wheel ];
      (** Event engine. [`Wheel] (the default) is the hierarchical
          timing wheel: O(1) schedule/advance, zero allocation per
          event in steady state. [`Heap] is the PR 6 binary heap, kept
          as the byte-identical differential oracle and benchmark
          baseline. *)
  shards : int;
      (** Keyspace partitions (default 1). The report is byte-identical
          for any value; >1 enables parallel execution via
          {!run}'s [~domains]. *)
  latency : [ `Auto | `Exact | `Hist ];
      (** Latency recording: exact per-sample percentiles, or the
          bounded-memory log-bucketed histogram (percentiles within
          ~1.6% relative; mean and max stay exact). [`Auto] picks
          [`Exact] up to 65536 clients and [`Hist] beyond — million-
          client runs never hold a per-client latency array. *)
  seed : int64;
}

val default : algorithm:string -> config
(** Moderate-contention defaults: 1000 clients, 16 keys, zipf 0.9,
    Poisson rate 0.02/tick, capped-exponential backoff, deadline 20k
    ticks, no chaos, seed 1. *)

val validate : config -> unit
(** Raises [Invalid_argument] on out-of-range fields. *)

val run : ?metrics:Obs.Metrics.t -> ?domains:int -> config -> Report.t
(** Run the workload to completion (the event engine drains — open-loop
    arrivals are finite). [~domains] (default 1) caps the domain pool
    used when [shards > 1]; it never affects the report. When [metrics]
    is given, completion latencies feed a [service.latency_ticks]
    histogram (after the shard merge — exact samples in [`Exact] mode,
    bucket midpoints in [`Hist]) and the final totals the [service.*]
    counters. *)
