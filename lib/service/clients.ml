(* Flat per-client state, flatsim-style: parallel scalar arrays indexed
   by client id, so client count scales without per-client records or
   GC pressure. Reset is epoch-clear — bumping [epoch] is O(1) and
   invalidates every slot; [init] re-stamps a slot for the current
   epoch and rewrites all its fields, so stale state can never leak
   between runs sharing an arena.

   [qnext] makes each client an intrusive FIFO-queue link: the driver
   keeps per-key head/tail indices and chains waiting clients through
   this array instead of boxing them into a [Queue.t]. *)

type t = {
  capacity : int;
  mutable epoch : int;
  estamp : int array;  (* epoch the slot was last initialised in *)
  arrival : float array;
  key : int array;
  attempts : int array;
  stamp : int array;  (* last election round this client contended in *)
  state : int array;  (* 0 = pending, 1 = resolved *)
  qnext : int array;  (* intrusive wait-queue link, -1 = end *)
}

let create capacity =
  if capacity < 1 then invalid_arg "Clients.create: capacity must be >= 1";
  {
    capacity;
    epoch = 0;
    estamp = Array.make capacity (-1);
    arrival = Array.make capacity 0.0;
    key = Array.make capacity 0;
    attempts = Array.make capacity 0;
    stamp = Array.make capacity (-1);
    state = Array.make capacity 0;
    qnext = Array.make capacity (-1);
  }

let reset t = t.epoch <- t.epoch + 1

let init t i ~arrival ~key =
  t.estamp.(i) <- t.epoch;
  t.arrival.(i) <- arrival;
  t.key.(i) <- key;
  t.attempts.(i) <- 0;
  t.stamp.(i) <- -1;
  t.state.(i) <- 0;
  t.qnext.(i) <- -1

let initialised t i = t.estamp.(i) = t.epoch
