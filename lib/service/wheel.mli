(** Hierarchical timing wheel over integer virtual-time ticks.

    The service driver's event queue: O(1) amortised schedule and
    advance, zero allocation per event in steady state (events live in
    a preallocated free-list pool of parallel scalar arrays that only
    grows, never shrinks). Correct only for a monotone clock — events
    are popped in nondecreasing time order and [schedule] accepts any
    [at] at or after the last popped event's tick (zero-delay
    reschedules into the past of the current tick are ordered
    correctly; scheduling whole ticks into the past is not supported).

    Ordering is the driver's shard-invariant total order: exact event
    time, then ([key], [kseq]) lexicographically — identical to the
    binary-heap oracle, which is what makes `--events heap|wheel`
    reports byte-identical.

    The pool packs each event into four scalar arrays: the time, the
    ordering word [ord = key lsl 42 lor kseq], the payload word
    [meta = kind lsl 60 lor a lsl 30 lor b], and the intrusive link.
    Packing halves the cache lines touched per event against one array
    per field, and turns the (key, kseq) tiebreak into one int
    compare. The packing bounds ([key] < 2^20, [kseq] < 2^42, [kind]
    < 4, [a] and [b] < 2^30) are checked by [schedule].

    The record is exposed flatsim-style so the driver reads popped
    event fields as direct array loads (a cross-module accessor
    returning [float] would box on every call). Treat all fields as
    read-only outside this module. *)

type t = {
  mutable ev_at : float array;  (** event time, indexed by event id *)
  mutable ev_ord : int array;  (** [key lsl 42 lor kseq] ordering word *)
  mutable ev_meta : int array;  (** [kind lsl 60 lor a lsl 30 lor b] *)
  mutable ev_next : int array;  (** intrusive slot / free-list links *)
  mutable free : int;
  mutable live : int;
  slots : int array;
  occ : int array;
  mutable cur : int;
  mutable due : int array;
  mutable due_len : int;
}

val max_key : int
(** Largest schedulable [key]: [2^20 - 1]. *)

val max_kseq : int
(** Largest schedulable [kseq]: [2^42 - 1]. *)

val max_ab : int
(** Largest schedulable [a] / [b] payload: [2^30 - 1]. *)

val max_kind : int
(** Largest schedulable [kind]: [3]. *)

val key_of_ord : int -> int
(** Unpack the key from an [ev_ord] word. *)

val kseq_of_ord : int -> int
(** Unpack the per-key sequence from an [ev_ord] word. *)

val kind_of_meta : int -> int
(** Unpack the event kind from an [ev_meta] word. *)

val a_of_meta : int -> int
(** Unpack the [a] payload from an [ev_meta] word. *)

val b_of_meta : int -> int
(** Unpack the [b] payload from an [ev_meta] word. *)

val create : ?capacity:int -> unit -> t
(** [create ~capacity ()] preallocates a pool of [capacity] events
    (default 1024, minimum 16); the pool doubles on demand. *)

val schedule :
  t -> at:float -> key:int -> kseq:int -> kind:int -> a:int -> b:int -> unit
(** Schedule an event. Raises [Invalid_argument] if [at] is negative,
    NaN, or at least 2^48 ticks beyond the current tick, or if a field
    exceeds its packing bound. *)

val pop : t -> int
(** Pop the earliest live event (by the (at, key, kseq) order) and
    return its id, or [-1] if the wheel is empty. The id's pool fields
    remain readable until the next [schedule] call. *)

val live : t -> int
(** Number of scheduled, not-yet-popped events. *)

val now_tick : t -> int
(** Current tick (the wheel's internal clock position). *)
