(* The per-phase attribution collector: a Probe sink that turns the
   simulator's event stream into per-phase step/RMR accounting.

   Attribution model: every process carries a stack of open phase
   frames (pushed by [on_span_enter], popped by [on_span_exit]); each
   step is attributed to the {e innermost} open phase of the stepping
   process — so a splitter access inside [chain_forward] but outside the
   nested [ge_round] counts for the chain, not the round. Steps outside
   every span land in the pseudo-phase ["(unattributed)"]. On crash or
   finish the stack is drained: still-open spans are counted as
   [unclosed] (their steps were already attributed live) rather than
   producing a distorted per-span sample.

   A collector is single-domain state; Engine workers each own one and
   the caller merges the resulting {!snapshot}s (associative, any
   grouping — tested in test_obs.ml). *)

let unattributed = "(unattributed)"

type phase_acc = {
  pa_name : string;
  mutable pa_calls : int;  (* spans closed cleanly *)
  mutable pa_unclosed : int;  (* spans open at crash/finish *)
  mutable pa_steps : int;
  mutable pa_rmrs : int;
  mutable pa_writes : int;
  mutable pa_invalidations : int;
  mutable pa_step_samples : float list;  (* per closed span *)
  mutable pa_rmr_samples : float list;
}

type frame = {
  f_acc : phase_acc;
  mutable f_steps : int;  (* own steps while innermost *)
  mutable f_rmrs : int;
}

type t = {
  phases : (string, phase_acc) Hashtbl.t;
  stacks : (int, frame list ref) Hashtbl.t;  (* bottom = base frame *)
  metrics : Metrics.t;
  mutable c_steps : int;
  mutable c_rmrs : int;
  mutable c_flips : int;
  mutable c_crashes : int;
  mutable c_finishes : int;
  mutable c_span_errors : int;  (* exits with no matching enter *)
}

let create () =
  {
    phases = Hashtbl.create 16;
    stacks = Hashtbl.create 16;
    metrics = Metrics.create ();
    c_steps = 0;
    c_rmrs = 0;
    c_flips = 0;
    c_crashes = 0;
    c_finishes = 0;
    c_span_errors = 0;
  }

let metrics t = t.metrics

let phase_acc t name =
  match Hashtbl.find_opt t.phases name with
  | Some a -> a
  | None ->
      let a =
        {
          pa_name = name;
          pa_calls = 0;
          pa_unclosed = 0;
          pa_steps = 0;
          pa_rmrs = 0;
          pa_writes = 0;
          pa_invalidations = 0;
          pa_step_samples = [];
          pa_rmr_samples = [];
        }
      in
      Hashtbl.add t.phases name a;
      a

let stack t pid =
  match Hashtbl.find_opt t.stacks pid with
  | Some s -> s
  | None ->
      let base = { f_acc = phase_acc t unattributed; f_steps = 0; f_rmrs = 0 } in
      let s = ref [ base ] in
      Hashtbl.add t.stacks pid s;
      s

let on_step t ~time:_ ~pid ~reg:_ ~reg_name:_ ~write ~value:_ ~rmr ~invalidated =
  t.c_steps <- t.c_steps + 1;
  if rmr then t.c_rmrs <- t.c_rmrs + 1;
  let fr = match !(stack t pid) with fr :: _ -> fr | [] -> assert false in
  let a = fr.f_acc in
  fr.f_steps <- fr.f_steps + 1;
  a.pa_steps <- a.pa_steps + 1;
  if rmr then begin
    fr.f_rmrs <- fr.f_rmrs + 1;
    a.pa_rmrs <- a.pa_rmrs + 1
  end;
  if write then begin
    a.pa_writes <- a.pa_writes + 1;
    a.pa_invalidations <- a.pa_invalidations + invalidated
  end

let on_span_enter t ~pid ~phase =
  let s = stack t pid in
  s := { f_acc = phase_acc t phase; f_steps = 0; f_rmrs = 0 } :: !s

let on_span_exit t ~pid ~phase:_ =
  let s = stack t pid in
  match !s with
  | fr :: (_ :: _ as rest) ->
      s := rest;
      let a = fr.f_acc in
      a.pa_calls <- a.pa_calls + 1;
      a.pa_step_samples <- float_of_int fr.f_steps :: a.pa_step_samples;
      a.pa_rmr_samples <- float_of_int fr.f_rmrs :: a.pa_rmr_samples
  | _ ->
      (* Exit with no matching enter: only the base frame is left. *)
      t.c_span_errors <- t.c_span_errors + 1

(* Crash or finish: close every span still open without recording a
   per-span sample (the span did not run to completion). *)
let drain t ~pid =
  let s = stack t pid in
  let rec go = function
    | [ base ] -> s := [ base ]
    | fr :: rest ->
        fr.f_acc.pa_unclosed <- fr.f_acc.pa_unclosed + 1;
        go rest
    | [] -> assert false
  in
  go !s

let on_crash t ~time:_ ~pid =
  t.c_crashes <- t.c_crashes + 1;
  drain t ~pid

let on_finish t ~time:_ ~pid ~result:_ =
  t.c_finishes <- t.c_finishes + 1;
  drain t ~pid

let on_flip t ~time:_ ~pid:_ ~bound:_ ~outcome:_ = t.c_flips <- t.c_flips + 1

let sink t =
  {
    Probe.on_step =
      (fun ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated ->
        on_step t ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated);
    on_flip = (fun ~time ~pid ~bound ~outcome -> on_flip t ~time ~pid ~bound ~outcome);
    on_crash = (fun ~time ~pid -> on_crash t ~time ~pid);
    on_finish = (fun ~time ~pid ~result -> on_finish t ~time ~pid ~result);
    on_span_enter = (fun ~pid ~phase -> on_span_enter t ~pid ~phase);
    on_span_exit = (fun ~pid ~phase -> on_span_exit t ~pid ~phase);
  }

(* {1 Snapshots} *)

type phase_snapshot = {
  ps_phase : string;
  ps_calls : int;
  ps_unclosed : int;
  ps_steps : int;
  ps_rmrs : int;
  ps_writes : int;
  ps_invalidations : int;
  ps_step_samples : float array;  (* sorted ascending *)
  ps_rmr_samples : float array;  (* sorted ascending *)
}

type snapshot = {
  sn_phases : phase_snapshot list;  (* sorted by phase name *)
  sn_metrics : Metrics.snapshot;
  sn_steps : int;
  sn_rmrs : int;
  sn_flips : int;
  sn_crashes : int;
  sn_finishes : int;
  sn_span_errors : int;
}

let sorted_samples xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

let snapshot t =
  let phases =
    Hashtbl.fold
      (fun _ a acc ->
        {
          ps_phase = a.pa_name;
          ps_calls = a.pa_calls;
          ps_unclosed = a.pa_unclosed;
          ps_steps = a.pa_steps;
          ps_rmrs = a.pa_rmrs;
          ps_writes = a.pa_writes;
          ps_invalidations = a.pa_invalidations;
          ps_step_samples = sorted_samples a.pa_step_samples;
          ps_rmr_samples = sorted_samples a.pa_rmr_samples;
        }
        :: acc)
      t.phases []
    |> List.sort (fun a b -> String.compare a.ps_phase b.ps_phase)
  in
  {
    sn_phases = phases;
    sn_metrics = Metrics.snapshot t.metrics;
    sn_steps = t.c_steps;
    sn_rmrs = t.c_rmrs;
    sn_flips = t.c_flips;
    sn_crashes = t.c_crashes;
    sn_finishes = t.c_finishes;
    sn_span_errors = t.c_span_errors;
  }

let empty_snapshot =
  {
    sn_phases = [];
    sn_metrics = Metrics.empty_snapshot;
    sn_steps = 0;
    sn_rmrs = 0;
    sn_flips = 0;
    sn_crashes = 0;
    sn_finishes = 0;
    sn_span_errors = 0;
  }

let merge_sorted a b =
  let out = Array.append a b in
  Array.sort Float.compare out;
  out

let merge_phase a b =
  {
    ps_phase = a.ps_phase;
    ps_calls = a.ps_calls + b.ps_calls;
    ps_unclosed = a.ps_unclosed + b.ps_unclosed;
    ps_steps = a.ps_steps + b.ps_steps;
    ps_rmrs = a.ps_rmrs + b.ps_rmrs;
    ps_writes = a.ps_writes + b.ps_writes;
    ps_invalidations = a.ps_invalidations + b.ps_invalidations;
    ps_step_samples = merge_sorted a.ps_step_samples b.ps_step_samples;
    ps_rmr_samples = merge_sorted a.ps_rmr_samples b.ps_rmr_samples;
  }

let rec merge_phases a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | pa :: ta, pb :: tb ->
      let c = String.compare pa.ps_phase pb.ps_phase in
      if c < 0 then pa :: merge_phases ta b
      else if c > 0 then pb :: merge_phases a tb
      else merge_phase pa pb :: merge_phases ta tb

let merge a b =
  {
    sn_phases = merge_phases a.sn_phases b.sn_phases;
    sn_metrics = Metrics.merge a.sn_metrics b.sn_metrics;
    sn_steps = a.sn_steps + b.sn_steps;
    sn_rmrs = a.sn_rmrs + b.sn_rmrs;
    sn_flips = a.sn_flips + b.sn_flips;
    sn_crashes = a.sn_crashes + b.sn_crashes;
    sn_finishes = a.sn_finishes + b.sn_finishes;
    sn_span_errors = a.sn_span_errors + b.sn_span_errors;
  }
