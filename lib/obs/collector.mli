(** Per-phase step/RMR attribution: a {!Probe} sink that aggregates the
    simulator event stream into per-phase accounting.

    Attribution is {e leaf} (innermost open span): each step of a
    process counts toward the phase at the top of that process's span
    stack, or the pseudo-phase ["(unattributed)"] outside every span.
    Per-span step/RMR samples are recorded when a span closes cleanly;
    spans still open when the process crashes or finishes are drained
    and counted as [unclosed] instead (their steps were already
    attributed live).

    A collector is single-domain mutable state. For parallel runs give
    each Engine worker its own collector ([Engine.run_probed]) and
    combine the resulting {!snapshot}s with {!merge}, which is
    associative and commutative with {!empty_snapshot} as identity. *)

type t

val create : unit -> t

val sink : t -> Probe.sink
(** The sink feeding this collector; install it with [Probe.install] or
    [Probe.with_sink]. *)

val metrics : t -> Metrics.t
(** A metrics registry riding along with the collector, for custom
    counters (e.g. winners per trial); its snapshot is embedded in
    {!snapshot} and merged by {!merge}. *)

(** {1 Snapshots} *)

type phase_snapshot = {
  ps_phase : string;
  ps_calls : int;  (** Spans closed cleanly. *)
  ps_unclosed : int;  (** Spans open at crash/finish. *)
  ps_steps : int;
  ps_rmrs : int;
  ps_writes : int;
  ps_invalidations : int;  (** Cached copies invalidated by writes. *)
  ps_step_samples : float array;  (** Steps per closed span, sorted. *)
  ps_rmr_samples : float array;  (** RMRs per closed span, sorted. *)
}

type snapshot = {
  sn_phases : phase_snapshot list;  (** Sorted by phase name. *)
  sn_metrics : Metrics.snapshot;
  sn_steps : int;
  sn_rmrs : int;
  sn_flips : int;
  sn_crashes : int;
  sn_finishes : int;
  sn_span_errors : int;  (** Exits with no matching enter. *)
}

val snapshot : t -> snapshot

val empty_snapshot : snapshot
(** The identity of {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum; per-span samples are concatenated and re-sorted, so
    merging is order-independent. *)
