(* Probe, the observability layer: metrics, tracing sinks, per-phase
   attribution and Perfetto export.

   [include Probe] makes the phase annotation points available as
   [Obs.enter]/[Obs.leave]/[Obs.span] directly, which is how algorithm
   code spells them. *)

module Metrics = Metrics
module Probe = Probe
module Collector = Collector
module Chrome_trace = Chrome_trace
include Probe
