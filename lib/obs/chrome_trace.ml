(* Chrome trace-event exporter: a Probe sink that renders the simulator
   event stream as trace-event JSON loadable in Perfetto
   (ui.perfetto.dev) or chrome://tracing.

   Layout: one trace process (pid 1, named "rtas-sim") with one track
   per simulated process (tid = simulator pid). Phase annotations become
   B/E duration spans on the process's track; individual shared-memory
   steps, coin flips, crashes and finishes become thread-scoped instant
   events ("ph":"i") so they never violate B/E nesting. Timestamps are
   simulation time (one step = 1 "us"); span enter/exit carry the time
   of the last step seen, which keeps them inside their neighbours.

   Processes that crash mid-span never emit their E events; we close
   those spans ourselves — on crash/finish, and for any still-open span
   when the trace is finalised — so the JSON always balances. *)

type t = {
  buf : Buffer.t;
  mutable first : bool;  (* no event emitted yet *)
  mutable now : int;  (* sim time of the last step seen *)
  mutable finalised : bool;
  mutable n_events : int;
  open_spans : (int, string list ref) Hashtbl.t;  (* pid -> open phases *)
  seen : (int, unit) Hashtbl.t;  (* pids with thread metadata emitted *)
}

let trace_pid = 1

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit t json =
  if t.finalised then invalid_arg "Chrome_trace: trace already finalised";
  if t.first then t.first <- false else Buffer.add_string t.buf ",\n";
  Buffer.add_string t.buf json;
  t.n_events <- t.n_events + 1

(* Every event — metadata included — carries ph/ts/pid/tid so consumers
   can rely on the fields unconditionally. *)
let event t ~name ~ph ~ts ~tid ?(extra = "") ?(args = "") () =
  emit t
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s%s}"
       (escape name) ph ts trace_pid tid extra
       (if args = "" then "" else Printf.sprintf ",\"args\":{%s}" args))

let thread_meta t pid =
  if not (Hashtbl.mem t.seen pid) then begin
    Hashtbl.add t.seen pid ();
    event t ~name:"thread_name" ~ph:"M" ~ts:0 ~tid:pid
      ~args:(Printf.sprintf "\"name\":\"p%d\"" pid)
      ()
  end

let create () =
  let t =
    {
      buf = Buffer.create 65536;
      first = true;
      now = 0;
      finalised = false;
      n_events = 0;
      open_spans = Hashtbl.create 16;
      seen = Hashtbl.create 16;
    }
  in
  event t ~name:"process_name" ~ph:"M" ~ts:0 ~tid:0
    ~args:(Printf.sprintf "\"name\":\"%s\"" (escape "rtas-sim"))
    ();
  t

let spans t pid =
  match Hashtbl.find_opt t.open_spans pid with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add t.open_spans pid s;
      s

let on_step t ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated =
  t.now <- time;
  thread_meta t pid;
  let name =
    if write then Printf.sprintf "W %s=%d" reg_name value
    else Printf.sprintf "R %s=%d" reg_name value
  in
  event t ~name ~ph:"i" ~ts:time ~tid:pid ~extra:",\"s\":\"t\""
    ~args:
      (Printf.sprintf "\"reg\":%d,\"write\":%b,\"value\":%d,\"rmr\":%b,\"invalidated\":%d"
         reg write value rmr invalidated)
    ()

let on_flip t ~time ~pid ~bound ~outcome =
  t.now <- time;
  thread_meta t pid;
  event t ~name:"flip" ~ph:"i" ~ts:time ~tid:pid ~extra:",\"s\":\"t\""
    ~args:(Printf.sprintf "\"bound\":%d,\"outcome\":%d" bound outcome)
    ()

let on_span_enter t ~pid ~phase =
  thread_meta t pid;
  let s = spans t pid in
  s := phase :: !s;
  event t ~name:phase ~ph:"B" ~ts:t.now ~tid:pid ()

let close_one t ~pid phase = event t ~name:phase ~ph:"E" ~ts:t.now ~tid:pid ()

let on_span_exit t ~pid ~phase =
  let s = spans t pid in
  match !s with
  | top :: rest ->
      s := rest;
      (* B/E must pop in LIFO order; exits are emitted for the actual
         top of stack even on a (buggy) mismatched annotation. *)
      close_one t ~pid top
  | [] -> ignore phase

let drain t ~pid =
  let s = spans t pid in
  List.iter (fun phase -> close_one t ~pid phase) !s;
  s := []

let on_crash t ~time ~pid =
  t.now <- time;
  thread_meta t pid;
  drain t ~pid;
  event t ~name:"crash" ~ph:"i" ~ts:time ~tid:pid ~extra:",\"s\":\"t\"" ()

let on_finish t ~time ~pid ~result =
  t.now <- time;
  thread_meta t pid;
  drain t ~pid;
  event t ~name:"finish" ~ph:"i" ~ts:time ~tid:pid ~extra:",\"s\":\"t\""
    ~args:(Printf.sprintf "\"result\":%d" result)
    ()

let sink t =
  {
    Probe.on_step =
      (fun ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated ->
        on_step t ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated);
    on_flip = (fun ~time ~pid ~bound ~outcome -> on_flip t ~time ~pid ~bound ~outcome);
    on_crash = (fun ~time ~pid -> on_crash t ~time ~pid);
    on_finish = (fun ~time ~pid ~result -> on_finish t ~time ~pid ~result);
    on_span_enter = (fun ~pid ~phase -> on_span_enter t ~pid ~phase);
    on_span_exit = (fun ~pid ~phase -> on_span_exit t ~pid ~phase);
  }

let n_events t = t.n_events

let finalise t =
  if not t.finalised then begin
    (* Close spans left open by processes the run never resumed. *)
    Hashtbl.iter (fun pid _ -> drain t ~pid) t.open_spans;
    t.finalised <- true
  end

let to_string t =
  finalise t;
  Printf.sprintf "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
    (Buffer.contents t.buf)

let output t oc = output_string oc (to_string t)
