(** Probe: the sink interface between instrumented code (the simulator,
    algorithm phase annotations) and observability consumers (the
    per-phase {!Collector}, the Perfetto {!Chrome_trace} exporter).

    One sink slot exists per domain. Instrumented code checks the slot
    and forwards typed events when a sink is installed; with no sink the
    probe points are a load and a branch — no allocation and no
    behaviour change, so a probed-off run is bit-identical to an
    uninstrumented one (tested in [test_obs.ml], gated by
    [make perf-regress]). Parallel Engine workers each install their own
    sink ([Engine.run_probed]); merging happens on snapshots after the
    join. *)

type sink = {
  on_step :
    time:int ->
    pid:int ->
    reg:int ->
    reg_name:string ->
    write:bool ->
    value:int ->
    rmr:bool ->
    invalidated:int ->
    unit;
      (** One shared-memory step. [value] is the value read (reads) or
          written (writes). [rmr] says the step was a remote memory
          reference in the CC model; writes always are. [invalidated]
          is the number of {e other} processes whose cached copy this
          write invalidated (register contention); 0 for reads. *)
  on_flip : time:int -> pid:int -> bound:int -> outcome:int -> unit;
      (** A coin flip ([bound < 0] encodes the geometric draw with
          parameter [-bound], as in {!Sim.Op.Flip}). *)
  on_crash : time:int -> pid:int -> unit;
  on_finish : time:int -> pid:int -> result:int -> unit;
  on_span_enter : pid:int -> phase:string -> unit;
      (** A process entered an algorithm phase (e.g. ["ge_round"]).
          Spans nest per process; sinks track simulation time
          themselves from [on_step]. *)
  on_span_exit : pid:int -> phase:string -> unit;
}

val install : sink -> unit
(** Install in this domain's slot (replacing any previous sink). The
    scheduler caches the ambient sink at [Sched.create]/[Sched.reset],
    so install before building (or resetting) the system under
    observation. *)

val uninstall : unit -> unit
val current : unit -> sink option
val enabled : unit -> bool

val with_sink : sink -> (unit -> 'a) -> 'a
(** Scoped install; restores the previous sink (or none) afterwards,
    also on exceptions. *)

(** {1 Phase annotations}

    Algorithm code marks its phases with {!enter}/{!leave} (no closure,
    zero allocation when no sink is installed — use in hot paths) or the
    scoped {!span}. A process that crashes inside a span never reaches
    the matching {!leave}; collectors auto-close open spans on
    [on_crash]/[on_finish]. *)

val enter : pid:int -> string -> unit
val leave : pid:int -> string -> unit

val span : pid:int -> string -> (unit -> 'a) -> 'a
(** [span ~pid phase f] brackets [f] with enter/exit (exit also fires on
    exceptions). *)

val tee : sink -> sink -> sink
(** Fan every event out to both sinks, in argument order. *)
