(* The metrics core of Probe: integer counters, fixed-bucket histograms
   and wall-clock span timers, grouped in a registry.

   Overhead discipline: a registry is plain mutable state owned by one
   domain (typically one Engine worker); bumping a counter is a field
   increment, observing a histogram a binary-search-free linear bucket
   scan over a handful of limits. Nothing here is thread-safe by
   design — cross-domain aggregation goes through immutable {!snapshot}
   values and the associative {!merge}, exactly like the engine's
   per-worker GC deltas. *)

type counter = { c_name : string; mutable c_value : int }

type histogram = {
  h_name : string;
  h_limits : int array;  (* ascending inclusive upper bounds *)
  h_counts : int array;  (* length limits + 1; last bucket = overflow *)
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type item = Counter of counter | Histogram of histogram

type t = {
  tbl : (string, item) Hashtbl.t;
  (* Registration order, for stable listing before sorting. *)
  mutable order : string list;
}

let create () = { tbl = Hashtbl.create 16; order = [] }

(* Powers of two up to 4096: wide enough for per-phase step counts of
   every algorithm family without tuning per call site. *)
let default_limits = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096 |]

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg (Printf.sprintf "Metrics.counter: %S is a histogram" name)
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add t.tbl name (Counter c);
      t.order <- name :: t.order;
      c

let histogram ?(limits = default_limits) t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) ->
      if h.h_limits <> limits then
        invalid_arg
          (Printf.sprintf "Metrics.histogram: %S re-registered with different limits" name);
      h
  | Some (Counter _) ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is a counter" name)
  | None ->
      if limits = [||] then invalid_arg "Metrics.histogram: empty limits";
      Array.iteri
        (fun i l ->
          if i > 0 && limits.(i - 1) >= l then
            invalid_arg "Metrics.histogram: limits must be strictly ascending")
        limits;
      let h =
        {
          h_name = name;
          h_limits = limits;
          h_counts = Array.make (Array.length limits + 1) 0;
          h_n = 0;
          h_sum = 0;
          h_min = max_int;
          h_max = min_int;
        }
      in
      Hashtbl.add t.tbl name (Histogram h);
      t.order <- name :: t.order;
      h

let incr c = c.c_value <- c.c_value + 1
let add c v = c.c_value <- c.c_value + v
let value c = c.c_value

let observe h v =
  let nb = Array.length h.h_limits in
  let rec bucket i = if i >= nb || v <= h.h_limits.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  h.h_counts.(b) <- h.h_counts.(b) + 1;
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

(* Span timer: a counter accumulating wall-clock nanoseconds. *)
let timer t name = counter t name

let time c f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      add c (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)))
    f

(* {1 Snapshots} *)

type hist_snapshot = {
  hs_limits : int array;
  hs_counts : int array;
  hs_n : int;
  hs_sum : int;
  hs_min : int;  (* meaningless when hs_n = 0 *)
  hs_max : int;
}

type snapshot = {
  counters : (string * int) list;  (* sorted by name *)
  histograms : (string * hist_snapshot) list;  (* sorted by name *)
}

let empty_snapshot = { counters = []; histograms = [] }

let snapshot t =
  let cs = ref [] and hs = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Counter c -> cs := (name, c.c_value) :: !cs
      | Histogram h ->
          hs :=
            ( name,
              {
                hs_limits = Array.copy h.h_limits;
                hs_counts = Array.copy h.h_counts;
                hs_n = h.h_n;
                hs_sum = h.h_sum;
                hs_min = h.h_min;
                hs_max = h.h_max;
              } )
            :: !hs)
    t.tbl;
  let by_name (a, _) (b, _) = String.compare a b in
  { counters = List.sort by_name !cs; histograms = List.sort by_name !hs }

(* Merge two sorted assoc lists, combining values under equal keys. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c < 0 then (ka, va) :: merge_assoc combine ta b
      else if c > 0 then (kb, vb) :: merge_assoc combine a tb
      else (ka, combine ka va vb) :: merge_assoc combine ta tb

let merge_hist name a b =
  if a.hs_limits <> b.hs_limits then
    invalid_arg
      (Printf.sprintf "Metrics.merge: histogram %S has mismatched limits" name);
  {
    hs_limits = a.hs_limits;
    hs_counts = Array.map2 ( + ) a.hs_counts b.hs_counts;
    hs_n = a.hs_n + b.hs_n;
    hs_sum = a.hs_sum + b.hs_sum;
    hs_min =
      (if a.hs_n = 0 then b.hs_min
       else if b.hs_n = 0 then a.hs_min
       else min a.hs_min b.hs_min);
    hs_max =
      (if a.hs_n = 0 then b.hs_max
       else if b.hs_n = 0 then a.hs_max
       else max a.hs_max b.hs_max);
  }

let merge a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let hist_mean hs = if hs.hs_n = 0 then 0.0 else float_of_int hs.hs_sum /. float_of_int hs.hs_n

let pp_snapshot ppf s =
  List.iter (fun (name, v) -> Fmt.pf ppf "%s = %d@." name v) s.counters;
  List.iter
    (fun (name, hs) ->
      Fmt.pf ppf "%s: n=%d mean=%.2f min=%d max=%d@." name hs.hs_n
        (hist_mean hs)
        (if hs.hs_n = 0 then 0 else hs.hs_min)
        (if hs.hs_n = 0 then 0 else hs.hs_max))
    s.histograms
