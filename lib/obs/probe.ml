(* The sink interface of Probe, and the per-domain installation point.

   The scheduler and the algorithm annotations never know what consumes
   their events: they check the ambient sink (one domain-local slot) and
   call its callbacks when one is installed. With no sink installed
   every probe point is a load-and-branch — no allocation, no callback,
   no change to any execution — which is what keeps the arena hot path
   at full throughput with Probe compiled in (gated by
   scripts/perf_regress.sh).

   The slot is domain-local rather than global so parallel Engine
   workers can each collect into their own sink without synchronisation;
   Engine.run_probed installs a fresh sink per worker and merges the
   per-worker results after the join. *)

type sink = {
  on_step :
    time:int ->
    pid:int ->
    reg:int ->
    reg_name:string ->
    write:bool ->
    value:int ->
    rmr:bool ->
    invalidated:int ->
    unit;
  on_flip : time:int -> pid:int -> bound:int -> outcome:int -> unit;
  on_crash : time:int -> pid:int -> unit;
  on_finish : time:int -> pid:int -> result:int -> unit;
  on_span_enter : pid:int -> phase:string -> unit;
  on_span_exit : pid:int -> phase:string -> unit;
}

let slot : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install s = Domain.DLS.set slot (Some s)
let uninstall () = Domain.DLS.set slot None
let current () = Domain.DLS.get slot
let enabled () = current () <> None

let with_sink s f =
  let prev = current () in
  install s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot prev) f

(* {1 Phase annotation points for algorithm code} *)

let enter ~pid phase =
  match current () with None -> () | Some s -> s.on_span_enter ~pid ~phase

let leave ~pid phase =
  match current () with None -> () | Some s -> s.on_span_exit ~pid ~phase

let span ~pid phase f =
  match current () with
  | None -> f ()
  | Some s -> (
      s.on_span_enter ~pid ~phase;
      match f () with
      | v ->
          s.on_span_exit ~pid ~phase;
          v
      | exception e ->
          s.on_span_exit ~pid ~phase;
          raise e)

let tee a b =
  {
    on_step =
      (fun ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated ->
        a.on_step ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated;
        b.on_step ~time ~pid ~reg ~reg_name ~write ~value ~rmr ~invalidated);
    on_flip =
      (fun ~time ~pid ~bound ~outcome ->
        a.on_flip ~time ~pid ~bound ~outcome;
        b.on_flip ~time ~pid ~bound ~outcome);
    on_crash =
      (fun ~time ~pid ->
        a.on_crash ~time ~pid;
        b.on_crash ~time ~pid);
    on_finish =
      (fun ~time ~pid ~result ->
        a.on_finish ~time ~pid ~result;
        b.on_finish ~time ~pid ~result);
    on_span_enter =
      (fun ~pid ~phase ->
        a.on_span_enter ~pid ~phase;
        b.on_span_enter ~pid ~phase);
    on_span_exit =
      (fun ~pid ~phase ->
        a.on_span_exit ~pid ~phase;
        b.on_span_exit ~pid ~phase);
  }
