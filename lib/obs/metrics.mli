(** Probe's metrics core: integer counters, fixed-bucket histograms and
    wall-clock span timers, grouped in a registry.

    A registry is single-domain mutable state — one per Engine worker in
    parallel runs. Cross-domain aggregation goes through immutable
    {!snapshot} values and the associative {!merge} (tested in
    [test_obs.ml]), mirroring how the engine merges per-worker GC
    deltas. Bumping a counter is a single field increment; with no
    registry wired up nothing here is ever called, so the
    no-observability cost of instrumented code is one branch. *)

type t
(** A registry of named counters and histograms. Not thread-safe: keep
    one per domain. *)

type counter
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if the name is already a
    histogram. *)

val histogram : ?limits:int array -> t -> string -> histogram
(** Get-or-create a fixed-bucket histogram. [limits] are strictly
    ascending inclusive upper bounds; values above the last limit land
    in an overflow bucket. Re-registering with different limits raises
    [Invalid_argument]. The default limits are powers of two up to
    4096. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val observe : histogram -> int -> unit

val timer : t -> string -> counter
(** A span timer is a counter accumulating wall-clock nanoseconds. *)

val time : counter -> (unit -> 'a) -> 'a
(** [time c f] runs [f] and adds its wall-clock duration (ns) to [c],
    also on exceptions. *)

(** {1 Snapshots and aggregation} *)

type hist_snapshot = {
  hs_limits : int array;
  hs_counts : int array;  (** [length hs_limits + 1]; last = overflow. *)
  hs_n : int;
  hs_sum : int;
  hs_min : int;  (** Meaningless when [hs_n = 0]. *)
  hs_max : int;
}

type snapshot = {
  counters : (string * int) list;  (** Sorted by name. *)
  histograms : (string * hist_snapshot) list;  (** Sorted by name. *)
}

val empty_snapshot : snapshot
(** The identity of {!merge}. *)

val snapshot : t -> snapshot

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum (counters) and bucket-wise sum (histograms, which must
    agree on limits). Associative and commutative, with
    {!empty_snapshot} as identity — per-worker snapshots may be merged
    in any grouping. *)

val hist_mean : hist_snapshot -> float

val pp_snapshot : snapshot Fmt.t
