(** Chrome trace-event exporter: renders the Probe event stream as
    trace-event JSON loadable in Perfetto ({:https://ui.perfetto.dev})
    or chrome://tracing.

    One trace process ([pid] 1, named ["rtas-sim"]) holds one track per
    simulated process ([tid] = simulator pid). Phase annotations become
    [B]/[E] duration spans; steps, flips, crashes and finishes become
    thread-scoped instant events ([ph = "i"]). Timestamps are simulation
    time, one shared-memory step per microsecond. Spans left open by
    crashed processes are closed automatically, so the emitted JSON
    always balances. *)

type t

val create : unit -> t

val sink : t -> Probe.sink
(** The sink feeding this trace; install with [Probe.install] or
    [Probe.with_sink]. *)

val n_events : t -> int
(** Events emitted so far (metadata included). *)

val to_string : t -> string
(** Finalise (close any still-open spans) and render the complete JSON
    document. After finalising, feeding further events raises
    [Invalid_argument]. *)

val output : t -> out_channel -> unit
(** [output t oc] writes {!to_string} to [oc]. *)
