(* Allocation-free splitmix64, bit-identical to {!Sim.Rng}.

   [Sim.Rng]'s state recurrence is linear — after [i] draws the state is
   [seed + i * golden_gamma (mod 2^64)] — so instead of storing the
   Int64 state (whose every update boxes: ~6 minor words per draw, the
   single largest allocation source of the effect-handler trial loop),
   we store the immutable Int64 base plus a native-int draw counter and
   recompute the state on the fly. Every Int64 intermediate then lives
   only inside [next_int], where the native compiler keeps it unboxed:
   a draw allocates {e nothing} (verified by the GC gate in
   scripts/perf_regress.sh and test_flatsim's allocation test).

   Parity contract, pinned by test_flatsim:
   - [int t b] equals [Sim.Rng.int t' b] draw-for-draw when both start
     from the same seed (same mixer, same low-63-bit truncation, same
     [mod] reduction);
   - [geometric_capped t l] equals [Sim.Rng.geometric_capped t' l]
     (the low bit of the raw output is the fair coin in both);
   - [reseed] matches [Sim.Rng.reseed]: indistinguishable from a fresh
     generator. *)

type t = { mutable base : int64; mutable idx : int }

let golden_gamma = 0x9E3779B97F4A7C15L

let mask63 = Int64.of_int max_int

let create seed = { base = seed; idx = 0 }

let reseed t seed =
  t.base <- seed;
  t.idx <- 0

(* Low 63 bits of splitmix64's next output, as a native int. The whole
   mixer is hand-inlined so no Int64 crosses a function boundary (there
   is no flambda in the toolchain: out-of-line calls would box). *)
let next_int t =
  let i = t.idx + 1 in
  t.idx <- i;
  let s = Int64.add t.base (Int64.mul golden_gamma (Int64.of_int i)) in
  let z =
    Int64.mul
      (Int64.logxor s (Int64.shift_right_logical s 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z mask63)

let int t bound = next_int t mod bound

(* Figure-1 geometric: Pr(x = i) = 2^-i truncated to [1, l]. The fair
   coin is the low bit of the raw draw, exactly as [Sim.Rng.bool]. *)
let geometric_capped t l =
  let rec loop i =
    if i >= l then l else if next_int t land 1 = 1 then i else loop (i + 1)
  in
  loop 1
