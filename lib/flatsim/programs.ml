(* Elections hand-compiled to flat {!Machine.program}s.

   Each compiled program replicates its effect-handler source
   operation-for-operation and flip-for-flip — same shared-memory ops in
   the same order, same inline coin flips between them — so a flat run
   is bit-identical to the effect path under any matching schedule
   (winner, per-process results, flip stream; pinned by test_flatsim).
   Sources of truth: lib/primitives/{le2,splitter,tas}.ml,
   lib/groupelect/{ge_logstar,ge_sift}.ml,
   lib/leaderelect/{tournament,chain,le_logstar,sift_le}.ml.

   Compilation model (DESIGN.md §13): each election is a set of
   sub-machines (duel, splitter, GroupElect round) with a fixed frame
   layout; a sub-machine's pc slot names its {e pending} shared-memory
   operation, and its [*_resume] — one call per scheduled step —
   executes that operation against the register file, runs local code
   (branches, flips), leaves the pc naming the next operation, and
   returns -1 while more operations remain or a completion code once
   done. The parent dispatches on a phase slot. Sub-machines that are
   never simultaneously active share frame slots. Registers are dense
   indices into the machine's register file; layouts below mirror the
   allocation order of the effect-path constructors (the indices
   themselves never need to match — only observable outcomes do).

   Everything here is hot-path: frame and register accesses are
   unchecked (see the contract note in machine.ml) — indices come from
   the fixed layouts, sized by [p_regs]/[p_frame] at [Machine.create]
   and pinned by the differential suite. *)

module M = Machine

let uget = Array.unsafe_get
let uset = Array.unsafe_set

(* {1 Sub-machines}

   Every [*_resume] first executes the operation its pc names; a
   caller "starts" a sub-machine by zeroing (or setting) its pc slots,
   making the opening operation pending. *)

(* Le2 duel (lib/primitives/le2.ml). Frame: [pc; pos] at [b].
   pc 0 = read of [other] pending, 1 = our position write pending.
   Completion: 0 lost, 1 won. Caller zeroes both slots. *)

let[@inline] le2_resume m pid ~b ~mine ~other =
  let fr = m.M.frames and regs = m.M.regs in
  if uget fr b = 1 then begin
    (* execute the position write; loop back to the read *)
    M.write_reg m mine (uget fr (b + 1));
    uset fr b 0;
    -1
  end
  else begin
    let o = uget regs other in
    let pos = uget fr (b + 1) in
    if o >= pos + 2 then 0
    else if o <= pos - 3 then 1
    else if M.flip m pid 2 = 1 then begin
      uset fr (b + 1) (pos + 1);
      uset fr b 1;
      -1
    end
    else -1 (* tails: the read stays pending *)
  end

(* Moir-Anderson splitter (lib/primitives/splitter.ml). Frame: [pc] at
   [b]: 0 = race write pending, 1 = door read, 2 = door write,
   3 = race re-read. Completion: 0 = L, 1 = R, 2 = S. Caller zeroes
   the slot. *)

let[@inline] splitter_resume m pid ~b ~race ~door =
  let fr = m.M.frames and regs = m.M.regs in
  match uget fr b with
  | 0 ->
      M.write_reg m race (pid + 1);
      uset fr b 1;
      -1
  | 1 ->
      if uget regs door = 1 then 0
      else begin
        uset fr b 2;
        -1
      end
  | 2 ->
      M.write_reg m door 1;
      uset fr b 3;
      -1
  | _ -> if uget regs race = pid + 1 then 2 else 1

(* Figure-1 GroupElect round (lib/groupelect/ge_logstar.ml). Registers:
   r[0..l] at [rb..rb+l], flag at [rb+l+1]. Frame: [pc; x] at [b]:
   pc 0 = flag read pending, 1 = flag write, 2 = r[x-1] write,
   3 = r[x] read. Completion: 1 won the round, 0 lost. Caller zeroes
   both slots. *)

let[@inline] ge_resume m pid ~b ~rb ~l =
  let fr = m.M.frames and regs = m.M.regs in
  match uget fr b with
  | 0 ->
      if uget regs (rb + l + 1) = 1 then 0
      else begin
        uset fr b 1;
        -1
      end
  | 1 ->
      M.write_reg m (rb + l + 1) 1;
      let x = M.flip_geom m pid l in
      uset fr (b + 1) x;
      uset fr b 2;
      -1
  | 2 ->
      M.write_reg m (rb + uget fr (b + 1) - 1) 1;
      uset fr b 3;
      -1
  | _ -> if uget regs (rb + uget fr (b + 1)) = 0 then 1 else 0

(* Sifting round (lib/groupelect/ge_sift.ml). Single register [r].
   Frame: [pc] at [b]: 0 = write pending (heads), 1 = read pending
   (tails). The round {e starts} with a flip, so its start draws and
   sets the pc. Completion: 1 / 0. *)

let[@inline] sift_start m pid ~b ~threshold =
  let fr = m.M.frames in
  if M.flip m pid Groupelect.Ge_sift.resolution < threshold then uset fr b 0
  else uset fr b 1

let[@inline] sift_resume m ~b ~r =
  let fr = m.M.frames and regs = m.M.regs in
  if uget fr b = 0 then begin
    M.write_reg m r 1;
    1
  end
  else if uget regs r = 0 then 1
  else 0

(* {1 Compiled elections} *)

let pow2_at_least n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  max 1 (go 0 n)

(* Tournament tree (lib/leaderelect/tournament.ml): pid climbs from
   leaf [leaves + pid], dueling at node v/2 on port [v land 1].
   Registers: duel node d owns [2d] (port-0 position) and [2d + 1].
   Frame: [v; le2.pc; le2.pos]. Result 1 = elected. *)
let tournament ~n =
  if n < 1 then invalid_arg "Programs.tournament: n must be >= 1";
  let leaves = pow2_at_least n in
  let start_duel m b v =
    let fr = m.M.frames in
    uset fr b v;
    uset fr (b + 1) 0;
    uset fr (b + 2) 0
  in
  let p_start m pid =
    let v = leaves + pid in
    if v = 1 then M.finish m pid 1 else start_duel m (pid * 3) v
  in
  let p_resume m pid =
    let b = pid * 3 in
    let v = uget m.M.frames b in
    let d2 = 2 * (v / 2) and port = v land 1 in
    let r = le2_resume m pid ~b:(b + 1) ~mine:(d2 + port) ~other:(d2 + 1 - port) in
    if r >= 0 then
      if r = 0 then M.finish m pid 0
      else
        let v' = v / 2 in
        if v' = 1 then M.finish m pid 1 else start_duel m b v'
  in
  let p_start_all =
    (* leaves = 1 means pid 0 finishes at its entry point — keep the
       general path for that edge. *)
    if leaves = 1 then None
    else
      Some
        (fun m procs ->
          let fr = m.M.frames in
          for pid = 0 to procs - 1 do
            let b = pid * 3 in
            uset fr b (leaves + pid);
            uset fr (b + 1) 0;
            uset fr (b + 2) 0
          done)
  in
  {
    M.p_name = "tournament";
    p_regs = 2 * leaves;
    p_frame = 3;
    p_start;
    p_resume;
    p_start_all;
  }

(* log* chain (lib/leaderelect/{le_logstar,chain}.ml): [cutoff] real
   Figure-1 GroupElect levels then dummies, a splitter per level going
   forward, a duel per level going backward. Register layout mirrors
   the constructors' allocation order: the GE blocks (cutoff blocks of
   l + 2), then the n splitters (race, door each), then the n duels.
   Frame: [phase; level; stopped_at; child0; child1] — phase 0 forward
   GE, 1 forward splitter, 2 backward duel (level doubles as j). *)
let logstar ~n =
  if n < 1 then invalid_arg "Programs.logstar: n must be >= 1";
  let l = Groupelect.Ge_logstar.level n in
  let cutoff = min n (3 * ceil_log2 n) in
  let sp0 = cutoff * (l + 2) in
  let du0 = sp0 + (2 * n) in
  let start_splitter m b level =
    let fr = m.M.frames in
    uset fr b 1;
    uset fr (b + 1) level;
    uset fr (b + 3) 0
  in
  let start_level m b level =
    if level >= n then
      failwith "Chain.elect: ran out of levels (more participants than levels?)"
    else if level < cutoff then begin
      let fr = m.M.frames in
      uset fr b 0;
      uset fr (b + 1) level;
      uset fr (b + 3) 0;
      uset fr (b + 4) 0
    end
    else
      (* dummy GroupElect: everyone wins it with no operations *)
      start_splitter m b level
  in
  let start_duel m b j =
    let fr = m.M.frames in
    uset fr (b + 1) j;
    uset fr (b + 3) 0;
    uset fr (b + 4) 0
  in
  let p_start m pid = start_level m (pid * 5) 0 in
  let p_resume m pid =
    let b = pid * 5 in
    let fr = m.M.frames in
    let level = uget fr (b + 1) in
    match uget fr b with
    | 0 ->
        let r = ge_resume m pid ~b:(b + 3) ~rb:(level * (l + 2)) ~l in
        if r >= 0 then
          if r = 0 then M.finish m pid 0 else start_splitter m b level
    | 1 -> (
        let r =
          splitter_resume m pid ~b:(b + 3)
            ~race:(sp0 + (2 * level))
            ~door:(sp0 + (2 * level) + 1)
        in
        match r with
        | -1 -> ()
        | 0 -> M.finish m pid 0 (* L: lost the level *)
        | 1 -> start_level m b (level + 1) (* R: move right *)
        | _ ->
            (* S: stopped here; descend the duel ladder on port 0 *)
            uset fr b 2;
            uset fr (b + 2) level;
            start_duel m b level)
    | _ ->
        let j = level in
        let port = if j = uget fr (b + 2) then 0 else 1 in
        let d2 = du0 + (2 * j) in
        let r = le2_resume m pid ~b:(b + 3) ~mine:(d2 + port) ~other:(d2 + 1 - port) in
        if r >= 0 then
          if r = 0 then M.finish m pid 0
          else if j = 0 then M.finish m pid 1
          else start_duel m b (j - 1)
  in
  let p_start_all =
    (* start_level at level 0, unrolled: 0 < cutoff always (cutoff >= 1),
       so the entry is the 4-slot real-GE frame fill. *)
    Some
      (fun m procs ->
        let fr = m.M.frames in
        for pid = 0 to procs - 1 do
          let b = pid * 5 in
          uset fr b 0;
          uset fr (b + 1) 0;
          uset fr (b + 3) 0;
          uset fr (b + 4) 0
        done)
  in
  {
    M.p_name = "log*";
    p_regs = sp0 + (4 * n);
    p_frame = 5;
    p_start;
    p_resume;
    p_start_all;
  }

(* Sifting election (lib/leaderelect/sift_le.ml): the probability
   schedule's sifting levels, then a tournament finisher. Registers:
   one per sifting level (level i duels on register i), then the
   finisher's duels. Frame: [phase; level-or-v; child0; child1]. *)
let sift ~n =
  if n < 1 then invalid_arg "Programs.sift: n must be >= 1";
  let probs = Groupelect.Ge_sift.probability_schedule ~n in
  let nlev = Array.length probs in
  let thresholds =
    Array.map
      (fun p ->
        max 1 (int_of_float (p *. float_of_int Groupelect.Ge_sift.resolution)))
      probs
  in
  let leaves = pow2_at_least n in
  let start_sift m pid b i =
    let fr = m.M.frames in
    uset fr b 0;
    uset fr (b + 1) i;
    sift_start m pid ~b:(b + 2) ~threshold:thresholds.(i)
  in
  let start_duel m b v =
    let fr = m.M.frames in
    uset fr (b + 1) v;
    uset fr (b + 2) 0;
    uset fr (b + 3) 0
  in
  let start_tournament m pid b =
    let v = leaves + pid in
    if v = 1 then M.finish m pid 1
    else begin
      m.M.frames.(b) <- 1;
      start_duel m b v
    end
  in
  let p_start m pid =
    let b = pid * 4 in
    if nlev = 0 then start_tournament m pid b else start_sift m pid b 0
  in
  let p_resume m pid =
    let b = pid * 4 in
    let fr = m.M.frames in
    if uget fr b = 0 then begin
      let i = uget fr (b + 1) in
      let r = sift_resume m ~b:(b + 2) ~r:i in
      if r = 0 then M.finish m pid 0
      else
        let i = i + 1 in
        if i >= nlev then start_tournament m pid b else start_sift m pid b i
    end
    else begin
      let v = uget fr (b + 1) in
      let d2 = nlev + (2 * (v / 2)) and port = v land 1 in
      let r =
        le2_resume m pid ~b:(b + 2) ~mine:(d2 + port) ~other:(d2 + 1 - port)
      in
      if r >= 0 then
        if r = 0 then M.finish m pid 0
        else
          let v' = v / 2 in
          if v' = 1 then M.finish m pid 1 else start_duel m b v'
    end
  in
  let p_start_all =
    (* The entry flips (sift_start draws the level-0 coin), so the
       batch is a pid-ordered loop over the same start — still one
       indirect call per reset. nlev = 0 starts in the tournament,
       whose leaves = 1 edge can finish at entry: fall back. *)
    if nlev = 0 then None
    else Some (fun m procs ->
        for pid = 0 to procs - 1 do
          start_sift m pid (pid * 4) 0
        done)
  in
  {
    M.p_name = "sift";
    p_regs = nlev + (2 * leaves);
    p_frame = 4;
    p_start;
    p_resume;
    p_start_all;
  }

(* The 2-process TAS base (lib/primitives/{tas,le2}.ml, the E8
   [tas_pair] wiring: doorway test-and-exit around a duel on port =
   pid). Registers: duel positions [0; 1], doorway [2]. Frame:
   [pc; le2.pc; le2.pos] — pc 0 = doorway read pending, 1 = inside the
   duel, 2 = doorway write pending. Result 0 = won the TAS, 1 = lost —
   [Tas.apply]'s encoding. *)
let tas2 =
  let p_start m pid = m.M.frames.(pid * 3) <- 0 in
  let p_resume m pid =
    let b = pid * 3 in
    let fr = m.M.frames in
    match uget fr b with
    | 0 ->
        if uget m.M.regs 2 = 1 then M.finish m pid 1
        else begin
          uset fr b 1;
          uset fr (b + 1) 0;
          uset fr (b + 2) 0
        end
    | 1 ->
        let r = le2_resume m pid ~b:(b + 1) ~mine:pid ~other:(1 - pid) in
        if r >= 0 then
          if r = 1 then M.finish m pid 0 else uset fr b 2
    | _ ->
        M.write_reg m 2 1;
        M.finish m pid 1
  in
  let p_start_all =
    Some
      (fun m procs ->
        let fr = m.M.frames in
        for pid = 0 to procs - 1 do
          uset fr (pid * 3) 0
        done)
  in
  { M.p_name = "tas2"; p_regs = 3; p_frame = 3; p_start; p_resume; p_start_all }

(* A single standalone Figure-1 GroupElect round sized for [n]
   potential participants — the bench perf-arena's GE workload
   (bench/experiments.ml [make_perf_arena]). Result 1 = elected into
   the group. *)
let ge_round ~n =
  if n < 1 then invalid_arg "Programs.ge_round: n must be >= 1";
  let l = Groupelect.Ge_logstar.level n in
  let p_start m pid =
    let b = pid * 2 in
    m.M.frames.(b) <- 0;
    m.M.frames.(b + 1) <- 0
  in
  let p_resume m pid =
    let r = ge_resume m pid ~b:(pid * 2) ~rb:0 ~l in
    if r >= 0 then M.finish m pid r
  in
  let p_start_all =
    Some
      (fun m procs ->
        let fr = m.M.frames in
        for pid = 0 to procs - 1 do
          let b = pid * 2 in
          uset fr b 0;
          uset fr (b + 1) 0
        done)
  in
  {
    M.p_name = "ge_round";
    p_regs = l + 2;
    p_frame = 2;
    p_start;
    p_resume;
    p_start_all;
  }
