(** The flat execution kernel: preallocated step-indexed state machines.

    A {!program} is an election hand-compiled to explicit state: shared
    registers live in one int array, every process's locals in a fixed
    slice of another, and the "current continuation" is nothing but a
    program counter stored in the frame, encoding which shared-memory
    operation is pending. Stepping a process calls its [p_resume],
    which executes that pending read/write against the register file
    and runs the compiled code to the next operation — no effect,
    closure or continuation is allocated anywhere on the path, and
    {!reset} restores a machine in place so one arena serves millions
    of trials.

    Runs are bit-identical to the effect-handler simulator
    ({!Sim.Sched}) on the same algorithm, seed and schedule: same
    winner, same per-process results, same flip stream (pinned by
    test_flatsim's differential suite). The effect path remains the
    oracle for adversary classes, crashes, Explore, Lincheck and Probe;
    this kernel exists for trial throughput (DESIGN.md §13). *)

type t = {
  prog : program;
  capacity : int;
  frame_words : int;
  regs : int array;  (** shared register file *)
  stamp : int array;  (** per register: epoch of its last write *)
  dirty : int array;  (** registers written this epoch *)
  mutable n_dirty : int;
  mutable epoch : int;
  frames : int array;  (** [capacity * frame_words] process locals *)
  rng : Frng.t;  (** shared flip stream (the image of Sched's rng) *)
  status : int array;  (** 0 running / 1 finished *)
  results : int array;
  steps : int array;
  flips : int array;
  mutable time : int;
  mutable active : int;
  mutable n_running : int;
  run_arr : int array;  (** [base, base + n_running): running pids, ascending *)
  mutable base : int;
  pos : int array;  (** index of each running pid in [run_arr] *)
  mutable record_flips : bool;
  mutable flip_log : (int * int * int * int) list;
}

and program = {
  p_name : string;
  p_regs : int;
  p_frame : int;
  p_start : t -> int -> unit;
  p_resume : t -> int -> unit;
  p_start_all : (t -> int -> unit) option;
      (** [f m procs]: batch [p_start] over pids [0, procs) in order
          (one indirect call per reset instead of one per process);
          [None] falls back to the per-pid loop. *)
}

(** {1 Operations for compiled programs}

    Reads and writes have no install API: a program's [p_resume]
    executes its pending operation directly against [regs] (the frame
    pc names it), which keeps the operation at its scheduled step while
    touching no per-process op buffers. *)

val write_reg : t -> int -> int -> unit
(** [write_reg m r v]: the register-write primitive. Also logs [r] as
    dirty so {!reset} clears only the registers a trial touched. Reads
    go straight to [m.regs]. *)

val flip : t -> int -> int -> int
(** [flip m pid bound]: inline fair draw in [0, bound), logged like
    [Ctx.flip]. Flips are not scheduling points, exactly as in the
    effect path. *)

val flip_geom : t -> int -> int -> int
(** [flip_geom m pid l]: geometric draw capped at [l], logged with
    bound [-l] like [Ctx.flip_geometric]. *)

val finish : t -> int -> int -> unit
(** [finish m pid result] retires the process. *)

(** {1 Construction and arena reuse} *)

val create : ?seed:int64 -> ?record_flips:bool -> procs:int -> program -> t
(** Allocates the arenas and runs every process to its first operation
    (flipping on the way), in pid order — the flat [Sched.create]. *)

val reset : ?seed:int64 -> ?procs:int -> t -> unit
(** Restore to the state [create] would produce, allocating nothing.
    [?procs] may shrink the run below capacity (the service driver's
    per-round contender count); defaults to full capacity. *)

(** {1 Stepping and schedules} *)

val step : t -> int -> unit
(** One scheduled step of [pid]: bump time and its step count, then
    [p_resume] (which performs the pending operation). [pid] must be
    running. *)

val default_max_steps : int

val run_rr : ?max_total_steps:int -> t -> unit
(** Round-robin schedule, decision-identical to
    {!Sim.Adversary.round_robin}. *)

val run_random : ?max_total_steps:int -> t -> seed:int64 -> unit
(** Uniform schedule, draw-identical to
    {!Sim.Adversary.random_oblivious} with the same seed. *)

val run_seq : ?max_total_steps:int -> t -> order:int array -> unit
(** Run each process of [order] to completion in turn (the
    differential-test schedule). *)

(** {1 Observation (mirrors Sched)} *)

val procs : t -> int
val time : t -> int
val running : t -> int -> bool
val result : t -> int -> int option
val results : t -> int option array
val steps : t -> int -> int
val flips : t -> int -> int
val max_steps : t -> int

val set_record_flips : t -> bool -> unit

val flip_log : t -> (int * int * int * int) list
(** [(time, pid, bound, outcome)] in draw order; bound < 0 encodes a
    geometric draw capped at [-bound], matching [Op.Flip] events. *)
