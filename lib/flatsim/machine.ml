(* The flat execution kernel: step-indexed state machines over an
   int-array register file and int-array local frames.

   Where the effect-handler simulator ({!Sim.Sched}) suspends a real
   OCaml computation at every shared-memory operation — an effect
   perform, a captured continuation and an adversary closure per step —
   the flat kernel represents a process as nothing but integers: a
   frame of locals inside one shared [frames] array with a program
   counter stored in that frame. A step calls the program's [p_resume],
   which {e executes the process's pending shared-memory operation}
   against [regs] (the frame's pc encodes which operation is pending
   and on which register) and then runs the process's local code
   (branches, coin flips) up to its next operation — leaving the new
   pc in the frame — or retires it with [finish]. Fusing the operation
   into the resume this way keeps the op executing exactly at its
   scheduled step (same memory semantics as a pending-op queue) while
   touching no per-process op buffers. Nothing on this path allocates:
   arenas are created once and [reset] restores them field-by-field,
   so a trial batch reuses one machine for millions of runs
   (DESIGN.md §13).

   Determinism contract: a flat run is {e bit-identical} to the
   effect-handler simulator running the same algorithm — same winner,
   same per-process results, same flip stream — provided the schedules
   match. Three scheduling loops replicate the corresponding
   {!Sim.Adversary} decision procedures exactly ([run_rr],
   [run_random], [run_seq]); pinned by test_flatsim's 120-seed
   differential suite. The effect path stays authoritative for
   everything else (adversary classes, crash schedules, Explore,
   Lincheck, Probe): the flat kernel trades generality for the trial
   throughput that multi-domain batches need. *)

type t = {
  prog : program;
  capacity : int;  (* processes the arrays are sized for *)
  frame_words : int;  (* copy of [prog.p_frame], hot-path local *)
  regs : int array;  (* shared register file, all registers initially 0 *)
  stamp : int array;  (* per register: [epoch] of its last write *)
  dirty : int array;  (* registers written this epoch, each once *)
  mutable n_dirty : int;
  mutable epoch : int;
  frames : int array;  (* capacity * frame_words process locals *)
  rng : Frng.t;  (* shared flip stream, exactly as Sched's [t.rng] *)
  status : int array;  (* 0 running / 1 finished *)
  results : int array;
  steps : int array;
  flips : int array;
  mutable time : int;
  mutable active : int;  (* processes participating in this run *)
  mutable n_running : int;
  run_arr : int array;  (* [base, base + n_running): running pids, ascending *)
  mutable base : int;  (* start of the live window in [run_arr] *)
  pos : int array;  (* index of each running pid in run_arr *)
  mutable record_flips : bool;
  mutable flip_log : (int * int * int * int) list;
      (* (time, pid, bound, outcome), reversed; bound < 0 encodes a
         geometric draw with cap [-bound], mirroring Op.Flip. *)
}

and program = {
  p_name : string;
  p_regs : int;  (* register-file size for [n] slots *)
  p_frame : int;  (* locals per process *)
  p_start : t -> int -> unit;
      (* Run a process from its entry point up to (but not through)
         its first shared-memory operation, flipping coins on the
         way — the flat image of [Sched.create] running a program to
         its first effect. Leaves the frame pc naming that operation. *)
  p_resume : t -> int -> unit;
      (* Execute the pending operation the frame pc names, then run
         local code to the next operation (updating the pc) or call
         [finish]. One call = one scheduled step. *)
  p_start_all : (t -> int -> unit) option;
      (* [f m procs]: same observable effect as [p_start m pid] for
         every pid in [0, procs) in order, as one batch — programs
         whose entry is a plain frame fill supply a tight loop here so
         [reset] pays one indirect call instead of one per process.
         [None] falls back to the per-pid loop. *)
}

(* {1 Operations available to compiled programs}

   Hot-path array accesses are unchecked ([Array.unsafe_get/set]): the
   scheduling loops only pass pids drawn from [run_arr] (all in
   [0, active)), and register/frame indices come from the compiled
   programs, whose layouts are sized by [p_regs]/[p_frame] at [create]
   and pinned by test_flatsim's differential suite. *)

(* All register writes funnel through here so [reset] can clear just
   the registers a trial touched (a log* machine for n = 512 has ~2.2k
   registers; a 64-process trial dirties a few dozen). [stamp]/[epoch]
   dedupe the log, bounding it by the register count. *)
let[@inline] write_reg m r v =
  Array.unsafe_set m.regs r v;
  let e = m.epoch in
  if Array.unsafe_get m.stamp r <> e then begin
    Array.unsafe_set m.stamp r e;
    Array.unsafe_set m.dirty m.n_dirty r;
    m.n_dirty <- m.n_dirty + 1
  end

let[@inline] flip m pid bound =
  let v = Frng.int m.rng bound in
  Array.unsafe_set m.flips pid (Array.unsafe_get m.flips pid + 1);
  if m.record_flips then
    m.flip_log <- (m.time, pid, bound, v) :: m.flip_log;
  v

let[@inline] flip_geom m pid l =
  let v = Frng.geometric_capped m.rng l in
  Array.unsafe_set m.flips pid (Array.unsafe_get m.flips pid + 1);
  if m.record_flips then m.flip_log <- (m.time, pid, -l, v) :: m.flip_log;
  v

let finish m pid result =
  m.status.(pid) <- 1;
  m.results.(pid) <- result;
  (* Drop [pid] from the running set, keeping it ascending so the
     runnable view any scheduling loop sees matches the effect
     scheduler's recomputed [runnable] array index-for-index. [pos]
     makes the find O(1); whichever side of the hole is shorter gets
     shifted, with the live window floating upward in [run_arr] (sized
     2 * capacity) via [base]. (Measured alternatives for this
     structure: an O(1)-finish rank/select bitmap loses — even with a
     branch-free SWAR select, the extra ~15ns lands on the serial
     draw->resume critical path, while the shift is throughput work
     the core hides; splitting the fused loop into a pos pass and a
     move pass also measures slower than this form.) *)
  let run_arr = m.run_arr and pos = m.pos in
  let i = Array.unsafe_get pos pid in
  let base = m.base in
  let hi = base + m.n_running - 1 in
  if i - base < hi - i then begin
    for j = i - 1 downto base do
      let p = Array.unsafe_get run_arr j in
      Array.unsafe_set run_arr (j + 1) p;
      Array.unsafe_set pos p (j + 1)
    done;
    m.base <- base + 1
  end
  else
    for j = i to hi - 1 do
      let p = Array.unsafe_get run_arr (j + 1) in
      Array.unsafe_set run_arr j p;
      Array.unsafe_set pos p j
    done;
  m.n_running <- m.n_running - 1

(* {1 Construction and arena reuse} *)

let default_seed = 0x5EEDL (* Sched.create's default *)

let reset ?(seed = default_seed) ?procs m =
  let procs =
    match procs with
    | None -> m.capacity
    | Some k ->
        if k < 1 || k > m.capacity then
          invalid_arg "Machine.reset: procs out of range";
        k
  in
  Frng.reseed m.rng seed;
  m.time <- 0;
  m.active <- procs;
  m.n_running <- procs;
  m.base <- 0;
  (let run_arr = m.run_arr and pos = m.pos in
   for pid = 0 to procs - 1 do
     Array.unsafe_set run_arr pid pid;
     Array.unsafe_set pos pid pid
   done);
  (* Clear only the registers the last trial wrote (see [write_reg]). *)
  (let regs = m.regs and dirty = m.dirty in
   for i = 0 to m.n_dirty - 1 do
     Array.unsafe_set regs (Array.unsafe_get dirty i) 0
   done);
  m.n_dirty <- 0;
  m.epoch <- m.epoch + 1;
  (* [frames] is deliberately not cleared: a program's [p_start] (and
     every later sub-machine start) initializes each frame slot before
     any path reads it — part of the compilation contract, exercised
     by test_flatsim's reset-equals-fresh and differential tests. *)
  Array.fill m.status 0 procs 0;
  Array.fill m.results 0 procs 0;
  Array.fill m.steps 0 procs 0;
  Array.fill m.flips 0 procs 0;
  m.flip_log <- [];
  (* Run every program to its first operation, in pid order — flips
     fired before the first operation draw here, exactly as
     [Sched.create] does. *)
  match m.prog.p_start_all with
  | Some f -> f m procs
  | None ->
      for pid = 0 to procs - 1 do
        m.prog.p_start m pid
      done

let create ?(seed = default_seed) ?(record_flips = false) ~procs prog =
  if procs < 1 then invalid_arg "Machine.create: procs must be >= 1";
  let m =
    {
      prog;
      capacity = procs;
      frame_words = prog.p_frame;
      regs = Array.make (max 1 prog.p_regs) 0;
      stamp = Array.make (max 1 prog.p_regs) 0;
      dirty = Array.make (max 1 prog.p_regs) 0;
      n_dirty = 0;
      epoch = 1;
      frames = Array.make (procs * max 1 prog.p_frame) 0;
      rng = Frng.create seed;
      status = Array.make procs 0;
      results = Array.make procs 0;
      steps = Array.make procs 0;
      flips = Array.make procs 0;
      time = 0;
      active = procs;
      n_running = procs;
      run_arr = Array.make (2 * procs) 0;
      base = 0;
      pos = Array.make procs 0;
      record_flips;
      flip_log = [];
    }
  in
  reset ~seed m;
  m

(* {1 Stepping} *)

(* Execute [pid]'s pending operation and run it to its next one. The
   caller guarantees [pid] is running (the scheduling loops below only
   draw from [run_arr]); there is deliberately no status check on this
   path. *)
let step m pid =
  m.time <- m.time + 1;
  Array.unsafe_set m.steps pid (Array.unsafe_get m.steps pid + 1);
  m.prog.p_resume m pid

let default_max_steps = 10_000_000 (* Sched.run's default *)

let overrun m max_total_steps who =
  (* Same shape (and catchability) as Sched.run's livelock failure. *)
  ignore m;
  failwith
    (Printf.sprintf "Machine.run: exceeded %d steps under adversary %s"
       max_total_steps who)

(* Replicates {!Sim.Adversary.round_robin}: a cursor advances past each
   scheduled pid; the next decision picks the first runnable pid at or
   after it, cyclically. *)
let run_rr ?(max_total_steps = default_max_steps) m =
  let resume = m.prog.p_resume in
  let steps = m.steps in
  let counter = ref 0 in
  while m.n_running > 0 do
    if m.time >= max_total_steps then overrun m max_total_steps "round-robin";
    let base = m.base in
    let hi = base + m.n_running in
    let run_arr = m.run_arr in
    let rec find i =
      if i >= hi then Array.unsafe_get run_arr base
      else
        let p = Array.unsafe_get run_arr i in
        if p >= !counter then p else find (i + 1)
    in
    let pid = find base in
    counter := pid + 1;
    m.time <- m.time + 1;
    Array.unsafe_set steps pid (Array.unsafe_get steps pid + 1);
    resume m pid
  done

(* Replicates {!Sim.Adversary.random_oblivious}: one [Rng.int] draw per
   decision, indexing the ascending runnable array. [Frng] keeps the
   draw stream identical to the effect path's [Sim.Rng]. *)
let run_random ?(max_total_steps = default_max_steps) m ~seed =
  let resume = m.prog.p_resume in
  let steps = m.steps in
  let run_arr = m.run_arr in
  (* The adversary stream is Frng hand-inlined (constants as in
     frng.ml): recomputing [seed + i * golden] per draw inside one
     local function keeps every Int64 unboxed and skips the record
     traffic of a heap generator. Draw i here = Frng draw i = Sim.Rng
     draw i from [seed].

     Software-pipelined: each iteration carries the already-mixed
     value [v] for the current draw and mixes draw i+1 before calling
     [resume], so the 3-multiply mix latency overlaps the resume body
     instead of extending the draw -> index -> resume serial chain
     ([v] is an immediate int, so threading it allocates nothing). *)
  let[@inline] mixed i =
    let s = Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int i)) in
    let z =
      Int64.mul
        (Int64.logxor s (Int64.shift_right_logical s 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)
  in
  let rec go i v =
    if m.n_running > 0 then begin
      if m.time >= max_total_steps then
        overrun m max_total_steps "random-oblivious";
      let v' = mixed (i + 1) in
      let pid = Array.unsafe_get run_arr (m.base + (v mod m.n_running)) in
      m.time <- m.time + 1;
      Array.unsafe_set steps pid (Array.unsafe_get steps pid + 1);
      resume m pid;
      go (i + 1) v'
    end
  in
  go 1 (mixed 1)

(* Run-to-completion in [order] — the differential-test schedule (the
   flat image of test_multicore's seq_order adversary). *)
let run_seq ?(max_total_steps = default_max_steps) m ~order =
  Array.iter
    (fun pid ->
      while m.status.(pid) = 0 do
        if m.time >= max_total_steps then overrun m max_total_steps "seq-order";
        step m pid
      done)
    order

(* {1 Observation} *)

let procs m = m.active
let time m = m.time
let running m pid = m.status.(pid) = 0
let result m pid = if m.status.(pid) = 1 then Some m.results.(pid) else None

let results m = Array.init m.active (fun pid -> result m pid)

let steps m pid = m.steps.(pid)
let flips m pid = m.flips.(pid)

let max_steps m =
  let steps = m.steps in
  let acc = ref 0 in
  for pid = 0 to m.active - 1 do
    let s = Array.unsafe_get steps pid in
    if s > !acc then acc := s
  done;
  !acc

let set_record_flips m b =
  m.record_flips <- b;
  if not b then m.flip_log <- []

let flip_log m = List.rev m.flip_log
