(** Elections hand-compiled to flat {!Machine.program}s, each
    operation- and flip-identical to its effect-handler source (see
    programs.ml for the compilation model and DESIGN.md §13).

    Result encodings match the originals: leader elections finish with
    1 for the unique leader and 0 for losers; {!tas2} finishes with
    [Tas.apply]'s 0 = won / 1 = lost. Process counts must not exceed
    the [n] the program was built for (and [tas2] is strictly
    2-process). *)

val tournament : n:int -> Machine.program
(** lib/leaderelect/tournament.ml: the Afek et al. duel tree. *)

val logstar : n:int -> Machine.program
(** lib/leaderelect/le_logstar.ml: Theorem 2.3's log* chain (Figure-1
    GroupElect levels, splitters, backward duel ladder). *)

val sift : n:int -> Machine.program
(** lib/leaderelect/sift_le.ml: sifting levels + tournament finisher. *)

val tas2 : Machine.program
(** The 2-process TAS base: doorway around a duel, ports by pid —
    exactly the E8 [tas_pair] wiring. *)

val ge_round : n:int -> Machine.program
(** One standalone Figure-1 GroupElect round sized for [n] — the bench
    perf-arena GE workload. *)
