(** Allocation-free splitmix64, draw-for-draw identical to {!Sim.Rng}.

    The flat kernel's only randomness source. State is an immutable
    Int64 base plus a native-int counter, so drawing never stores an
    Int64 and therefore never allocates; see frng.ml for why this is
    bit-identical to the boxed {!Sim.Rng}. *)

type t

val create : int64 -> t

val reseed : t -> int64 -> unit
(** In-place reset to [create seed]'s state, matching
    {!Sim.Rng.reseed}'s fresh-generator guarantee. *)

val next_int : t -> int
(** Low 63 bits of the next raw splitmix64 output — the exact value
    [Sim.Rng.int] reduces with [mod]. *)

val int : t -> int -> int
(** [int t bound] equals [Sim.Rng.int] on the same stream. The bound
    must be positive (unchecked: kernel-internal hot path). *)

val geometric_capped : t -> int -> int
(** Equals [Sim.Rng.geometric_capped] on the same stream. *)
