type outcome = L | R | S

let equal_outcome a b =
  match (a, b) with L, L | R, R | S, S -> true | _, _ -> false

let pp_outcome ppf = function
  | L -> Fmt.string ppf "L"
  | R -> Fmt.string ppf "R"
  | S -> Fmt.string ppf "S"

module Make (M : Backend.Mem.S) = struct
  type t = {
    race : M.reg;  (* holds slot + 1; 0 = untouched *)
    door : M.reg;  (* 0 = open, 1 = closed *)
  }

  let create ?(name = "sp") mem =
    {
      race = M.alloc mem ~name:(name ^ ".race");
      door = M.alloc mem ~name:(name ^ ".door");
    }

  (* Moir-Anderson: write your id to [race]; if the door is already closed
     someone overlapped and got through, go L. Otherwise close the door; if
     [race] still holds your id you win (S), else someone overwrote it, go
     R. A solo caller finds the door open and its own id in [race]: S. *)
  let split t ctx =
    let me = M.self ctx + 1 in
    M.write ctx t.race me;
    if M.read ctx t.door = 1 then L
    else begin
      M.write ctx t.door 1;
      if M.read ctx t.race = me then S else R
    end
end

include Make (Backend.Sim_mem)
