module Make (M : Backend.Mem.S) = struct
  module Duel = Le2.Make (M)

  type t = { first : Duel.t; final : Duel.t }

  let create ?(name = "le3") mem =
    {
      first = Duel.create ~name:(name ^ ".first") mem;
      final = Duel.create ~name:(name ^ ".final") mem;
    }

  let elect t ctx ~port =
    match port with
    | 2 -> Duel.elect t.final ctx ~port:1
    | 0 | 1 ->
        if Duel.elect t.first ctx ~port then Duel.elect t.final ctx ~port:0
        else false
    | _ -> invalid_arg "Le3.elect: port must be 0, 1 or 2"
end

include Make (Backend.Sim_mem)
