(** Randomized 3-process leader election from two 2-process elections,
    as used at every node of RatRace's primary tree and backup grid.

    Three ports, 0-2; at most one process per port. Port 0 and port 1
    first duel each other; the survivor then duels port 2. At most one
    {!elect} call returns [true]; if no participant crashes, exactly one
    does. O(1) registers, O(1) expected steps. *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> t

  val elect : t -> M.ctx -> port:int -> bool
  (** [port] must be 0, 1 or 2. *)
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> t

val elect : t -> Sim.Ctx.t -> port:int -> bool
(** [port] must be 0, 1 or 2. *)
