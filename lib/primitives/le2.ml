module Make (M : Backend.Mem.S) = struct
  type t = { a : M.reg; b : M.reg }

  let create ?(name = "le2") mem =
    {
      a = M.alloc mem ~name:(name ^ ".pos0");
      b = M.alloc mem ~name:(name ^ ".pos1");
    }

  (* Win/lose thresholds are asymmetric on purpose. A process's true
     position can exceed its exposed register by one (its +1 write may
     still be pending), so an opponent that wins seeing us k behind only
     guarantees we are k-1 behind. Winning at gap 3 guarantees the loser
     is at least 2 behind at its next read — and every position change is
     preceded by a read — so it cannot climb past the losing observation.
     See the safety argument in the interface. *)
  let elect t ctx ~port =
    if port <> 0 && port <> 1 then invalid_arg "Le2.elect: port must be 0 or 1";
    let mine, other = if port = 0 then (t.a, t.b) else (t.b, t.a) in
    let rec loop pos =
      let o = M.read ctx other in
      if o >= pos + 2 then false
      else if o <= pos - 3 then true
      else begin
        let pos' = pos + (if M.flip_bool ctx then 1 else 0) in
        if pos' > pos then M.write ctx mine pos';
        loop pos'
      end
    in
    loop 0
end

include Make (Backend.Sim_mem)
