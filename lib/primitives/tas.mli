(** Linearizable test-and-set from leader election.

    The paper (after Golab, Hendler and Woelfel) observes that any
    LeaderElect object plus one atomic register implements a linearizable
    TAS: a [TAS()] call first reads a doorway register — if it is set,
    some losing call already completed, so the bit was certainly set
    before we started and we may return 1 — then runs the election;
    the winner returns 0 and every loser sets the doorway before
    returning 1. *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> elect:(M.ctx -> bool) -> t
  (** [elect] is the leader-election entry point; it must guarantee at
      most one [true] across all callers, and exactly one when nobody
      crashes. Each process may call the resulting TAS at most once. *)

  val apply : t -> M.ctx -> int
  (** Returns the previous value of the bit: 0 for the unique winner,
      1 for everybody else. *)
end

type t = Make(Backend.Sim_mem).t

val create :
  ?name:string -> Sim.Memory.t -> elect:(Sim.Ctx.t -> bool) -> t
(** [elect] is the leader-election entry point; it must guarantee at most
    one [true] across all callers, and exactly one when nobody crashes.
    Each process may call the resulting TAS at most once. *)

val apply : t -> Sim.Ctx.t -> int
(** Returns the previous value of the bit: 0 for the unique winner,
    1 for everybody else. *)
