module Make (M : Backend.Mem.S) = struct
  module Sp = Splitter.Make (M)

  type t = Sp.t

  let create ?(name = "rsp") mem = Sp.create ~name mem

  let split t ctx =
    match Sp.split t ctx with
    | Splitter.S -> Splitter.S
    | Splitter.L | Splitter.R ->
        if M.flip_bool ctx then Splitter.R else Splitter.L
end

include Make (Backend.Sim_mem)
