module Make (M : Backend.Mem.S) = struct
  type t = {
    elect : M.ctx -> bool;
    doorway : M.reg;
  }

  let create ?(name = "tas") mem ~elect =
    { elect; doorway = M.alloc mem ~name:(name ^ ".done") }

  let apply t ctx =
    if M.read ctx t.doorway = 1 then 1
    else if t.elect ctx then 0
    else begin
      M.write ctx t.doorway 1;
      1
    end
end

include Make (Backend.Sim_mem)
