(** Randomized splitter (Attiya, Kuhn, Plaxton, Wattenhofer, Wattenhofer).

    Like a deterministic splitter, at most one [split] call returns [S]
    and a solo caller always receives [S]; but a call that does not
    return [S] returns [L] or [R] independently with probability 1/2
    each (so all callers may receive the same direction). *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> t
  val split : t -> M.ctx -> Splitter.outcome
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> t

val split : t -> Sim.Ctx.t -> Splitter.outcome
