(** Randomized wait-free 2-process leader election (Tromp–Vitányi style).

    Two ports, 0 and 1; at most one process may call {!elect} on each
    port. At most one call returns [true] (the winner); if no caller
    crashes, exactly one call returns [true]. Uses 2 registers and O(1)
    expected steps against the adaptive adversary.

    The protocol is a random-walk duel: each process keeps a position,
    initially 0, exposed in its register. In every iteration it reads
    the other port's position [o]; with own position [p] it loses if
    [o >= p + 2], wins if [o <= p - 3], and otherwise advances its
    position by a fair coin flip, writing the register whenever the
    position changes, so that every read happens right after the write
    of the reader's current position.

    Safety sketch: suppose a process wins at position [p] having read
    [o <= p - 3]; its register is frozen at [p] from then on. The
    opponent's true position at that moment is at most [o + 1 <= p - 2]
    (its last [+1] write may be pending), and its next read happens at
    that same position, observing [p >= pos + 2] — so it loses before it
    can move again; hence two winners are impossible. Two losers are
    impossible because losing at position [p] requires the opponent's
    register to have reached [p + 2] while one's own register never
    exceeds one's final position. These thresholds are asymmetric
    precisely because a pending write makes the exposed position stale
    by one. This is a variant of the protocol of Tromp and Vitányi
    (Distributed Computing 15(3), 2002) with the same guarantees; see
    DESIGN.md. The safety property is additionally model-checked
    exhaustively in the test suite.

    The argument relies only on register atomicity, so it holds verbatim
    for both backends of {!Backend.Mem.S}: the simulator instantiation
    below and the [Atomic.t] one behind {!Multicore.Mc_le2}. *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> t

  val elect : t -> M.ctx -> port:int -> bool
  (** [port] must be 0 or 1. *)
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> t

val elect : t -> Sim.Ctx.t -> port:int -> bool
(** [port] must be 0 or 1. *)
