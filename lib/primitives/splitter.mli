(** Deterministic splitter (Moir–Anderson).

    [split] returns a value in [{L, R, S}]. If [k] processes call
    [split], at most [k-1] receive [L], at most [k-1] receive [R], and at
    most one receives [S]; a solo caller always receives [S]. Uses O(1)
    registers and O(1) steps.

    Written once over the {!Backend.Mem.S} signature; the unprefixed
    values below are the {!Backend.Sim_mem} instantiation (identical to
    the historical hand-written simulator code), and
    [Make (Backend.Atomic_mem)] is the real-multicore version behind
    {!Multicore.Mc_splitter}. *)

type outcome = L | R | S

val equal_outcome : outcome -> outcome -> bool
val pp_outcome : outcome Fmt.t

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> t

  val split : t -> M.ctx -> outcome
  (** At most one [split] call per process; [M.self] must be distinct
      per caller. *)
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> t

val split : t -> Sim.Ctx.t -> outcome
(** At most one [split] call per process. *)
