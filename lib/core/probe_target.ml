(* Profiling targets: the catalogue behind [rtas_cli trace] and
   [rtas_cli profile]. A target names a program family the probe layer
   knows how to run — either a full leader election from {!Registry} or
   a bare building block (one GroupElect round, one RatRace) that is
   interesting to profile on its own. *)

type t = {
  pt_name : string;
  pt_doc : string;
  pt_programs : Sim.Memory.t -> n:int -> k:int -> (Sim.Ctx.t -> int) array;
      (** Build the structure in [mem] dimensioned for [n] processes and
          return one program per participant ([k] of them); programs
          return 1 for a winner, 0 otherwise. *)
}

let of_registry (e : Registry.entry) =
  {
    pt_name = e.Registry.name;
    pt_doc =
      Printf.sprintf "%s leader election, %s space (%s)" e.Registry.steps
        e.Registry.space e.Registry.reference;
    pt_programs =
      (fun mem ~n ~k -> Leaderelect.Le.programs (e.Registry.make mem ~n) ~k);
  }

let ge_logstar =
  {
    pt_name = "ge_logstar";
    pt_doc = "one Figure-1 GroupElect round (phase: ge_round)";
    pt_programs =
      (fun mem ~n ~k ->
        let ge = Groupelect.Ge_logstar.create mem ~n in
        Array.init k (fun _ ctx -> if ge.Groupelect.Ge.elect ctx then 1 else 0));
  }

let chain =
  {
    pt_name = "chain";
    pt_doc =
      "log* chain leader election (phases: chain_forward, chain_backward, \
       ge_round)";
    pt_programs =
      (fun mem ~n ~k ->
        Leaderelect.Le.programs (Leaderelect.Le_logstar.make mem ~n) ~k);
  }

let rr_classic =
  {
    pt_name = "rr_classic";
    pt_doc =
      "classic RatRace (phases: rr_tree, rr_ascend, rr_grid, rr_top)";
    pt_programs =
      (fun mem ~n ~k ->
        let rr = Ratrace.Rr_classic.create mem ~n in
        Array.init k (fun _ ctx ->
            if Ratrace.Rr_classic.elect rr ctx then 1 else 0));
  }

(* The special targets come first so their names win lookups; registry
   entries whose names clash with nothing follow. *)
let all = [ ge_logstar; chain; rr_classic ] @ List.map of_registry Registry.all

let find name = List.find_opt (fun t -> t.pt_name = name) all
let names () = List.map (fun t -> t.pt_name) all
