type entry = {
  name : string;
  make : Sim.Memory.t -> n:int -> Leaderelect.Le.t;
  make_mc : (n:int -> Multicore.Mc_le.t) option;
  make_flat : (n:int -> Flatsim.Machine.program) option;
  adversary : Sim.Sched.klass;
  steps : string;
  space : string;
  reference : string;
}

let all =
  [
    {
      name = "log*";
      make = Leaderelect.Le_logstar.make;
      make_mc = None;
      make_flat = Some (fun ~n -> Flatsim.Programs.logstar ~n);
      adversary = Sim.Sched.Location_oblivious;
      steps = "O(log* k)";
      space = "O(n)";
      reference = "Theorem 2.3";
    };
    {
      name = "loglog";
      make = Leaderelect.Le_loglog.make;
      make_mc = None;
      make_flat = None;
      adversary = Sim.Sched.Rw_oblivious;
      steps = "O(log log k)";
      space = "O(n)";
      reference = "Theorem 2.4";
    };
    {
      name = "aa";
      make = Leaderelect.Aa.make;
      make_mc = None;
      make_flat = None;
      adversary = Sim.Sched.Rw_oblivious;
      steps = "O(log log n)";
      space = "O(n) (orig. O(n^3))";
      reference = "Alistarh-Aspnes 2011";
    };
    {
      name = "ratrace";
      make = Leaderelect.Rr_le.make_original;
      make_mc = None;
      make_flat = None;
      adversary = Sim.Sched.Adaptive;
      steps = "O(log k)";
      space = "Theta(n^3)";
      reference = "Alistarh et al. 2010";
    };
    {
      name = "ratrace-lean";
      make = Leaderelect.Rr_le.make_lean;
      make_mc = Some (fun ~n -> Multicore.Mc_rr_lean.le ~n);
      make_flat = None;
      adversary = Sim.Sched.Adaptive;
      steps = "O(log k)";
      space = "Theta(n)";
      reference = "Section 3";
    };
    {
      name = "tournament";
      make = Leaderelect.Tournament.make;
      make_mc = Some (fun ~n -> Multicore.Mc_tournament.le ~n);
      make_flat = Some (fun ~n -> Flatsim.Programs.tournament ~n);
      adversary = Sim.Sched.Adaptive;
      steps = "O(log n)";
      space = "Theta(n)";
      reference = "Afek et al. 1992";
    };
    {
      name = "combined-log*";
      make = Combined.Combine.make_logstar;
      make_mc = None;
      make_flat = None;
      adversary = Sim.Sched.Location_oblivious;
      steps = "O(log* k) / O(log k) adaptive";
      space = "Theta(n)";
      reference = "Corollary 4.2";
    };
    {
      name = "combined-loglog";
      make = Combined.Combine.make_loglog;
      make_mc = None;
      make_flat = None;
      adversary = Sim.Sched.Rw_oblivious;
      steps = "O(log log k) / O(log k) adaptive";
      space = "Theta(n)";
      reference = "Corollary 4.2";
    };
    {
      name = "sift";
      make = Leaderelect.Sift_le.make;
      make_mc = Some (fun ~n -> Multicore.Mc_sift.le ~n);
      make_flat = Some (fun ~n -> Flatsim.Programs.sift ~n);
      adversary = Sim.Sched.Rw_oblivious;
      steps = "O(log log n + log n)";
      space = "Theta(n)";
      reference = "Alistarh-Aspnes 2011 + Afek et al. 1992";
    };
    {
      name = "elim";
      make = Leaderelect.Elim_le.make;
      make_mc = Some (fun ~n -> Multicore.Mc_elim.le ~n);
      make_flat = None;
      adversary = Sim.Sched.Adaptive;
      steps = "O(k) worst, O(1) typical";
      space = "Theta(n)";
      reference = "Claim 3.1";
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all

let dual () = List.filter (fun e -> Option.is_some e.make_mc) all

let dual_names () = List.map (fun e -> e.name) (dual ())

let flat () = List.filter (fun e -> Option.is_some e.make_flat) all

let flat_names () = List.map (fun e -> e.name) (flat ())
