(** Catalog of every leader-election implementation in the library, with
    the complexity bounds the paper (or its cited baselines) proves for
    each. Used by the benchmarks, the CLI and the examples to iterate
    over algorithms uniformly.

    Each algorithm has exactly one source — a functor over
    {!Backend.Mem.S} — and an entry exposes whichever backends that
    functor has been instantiated at: [make] builds the simulator
    instantiation, and [make_mc] (when present) the [Atomic.t]-backed
    one for real domains. *)

type entry = {
  name : string;
  make : Sim.Memory.t -> n:int -> Leaderelect.Le.t;
  make_mc : (n:int -> Multicore.Mc_le.t) option;
      (** Multicore backend of the same functor, when the algorithm does
          not need simulator-only machinery (adversary hooks, crash
          injection) to run. *)
  make_flat : (n:int -> Flatsim.Machine.program) option;
      (** Flat-kernel compilation of the same algorithm
          ({!Flatsim.Programs}), when one exists. Bit-identical to
          [make] under matching seeds and schedules (pinned by the
          flat-vs-effect differential test); the hot-election set the
          bench, the perf gate and the service driver's [--kernel flat]
          path run on. *)
  adversary : Sim.Sched.klass;
      (** Strongest adversary class against which the step bound holds. *)
  steps : string;  (** Expected step complexity, as stated in the paper. *)
  space : string;  (** Register count. *)
  reference : string;
}

val all : entry list

val find : string -> entry option

val names : unit -> string list

val dual : unit -> entry list
(** The entries carrying both backends ([make_mc] present) — the ones
    the multicore chaos harness, the [rtas mc] subcommand and the lock
    service's [atomic] backend can iterate. *)

val dual_names : unit -> string list

val flat : unit -> entry list
(** The entries carrying a flat-kernel compilation ([make_flat]
    present) — the ones the flat differential test, the bench scaling
    sweep and [rtas service --kernel flat] can iterate. *)

val flat_names : unit -> string list
