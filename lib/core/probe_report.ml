(* Rendering of Probe collector snapshots: the per-phase step/RMR table
   printed by [rtas_cli trace]/[rtas_cli profile], and a JSON form for
   scripting (validated by `make trace-smoke`). Lives here rather than
   in lib/obs because the distribution summaries come from {!Sim.Stats},
   which obs (below sim in the dependency order) cannot see. *)

let pct x total =
  if total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int total

let pp_profile ppf (sn : Obs.Collector.snapshot) =
  Fmt.pf ppf "%-16s %9s %11s %6s %11s %6s %8s %8s %9s@." "phase" "calls"
    "steps" "stp%" "rmrs" "rmr%" "steps/c" "p95" "unclosed";
  List.iter
    (fun (ps : Obs.Collector.phase_snapshot) ->
      let mean, p95 =
        if Array.length ps.ps_step_samples = 0 then (0.0, 0.0)
        else
          let s = Sim.Stats.summarize_sorted ps.ps_step_samples in
          (s.Sim.Stats.mean, s.Sim.Stats.p95)
      in
      Fmt.pf ppf "%-16s %9d %11d %5.1f%% %11d %5.1f%% %8.2f %8.1f %9d@."
        ps.ps_phase ps.ps_calls ps.ps_steps
        (pct ps.ps_steps sn.Obs.Collector.sn_steps)
        ps.ps_rmrs
        (pct ps.ps_rmrs sn.Obs.Collector.sn_rmrs)
        mean p95 ps.ps_unclosed)
    sn.Obs.Collector.sn_phases;
  Fmt.pf ppf "%-16s %9s %11d %6s %11d@." "total" "" sn.Obs.Collector.sn_steps
    "" sn.Obs.Collector.sn_rmrs;
  Fmt.pf ppf "flips=%d finishes=%d crashes=%d span_errors=%d@."
    sn.Obs.Collector.sn_flips sn.Obs.Collector.sn_finishes
    sn.Obs.Collector.sn_crashes sn.Obs.Collector.sn_span_errors;
  let counters = sn.Obs.Collector.sn_metrics.Obs.Metrics.counters in
  if counters <> [] then
    List.iter (fun (name, v) -> Fmt.pf ppf "%s = %d@." name v) counters

(* {1 JSON} *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_phase buf first (ps : Obs.Collector.phase_snapshot) =
  if not !first then Buffer.add_string buf ",";
  first := false;
  let mean, stddev, median, p95 =
    if Array.length ps.ps_step_samples = 0 then (0.0, 0.0, 0.0, 0.0)
    else
      let s = Sim.Stats.summarize_sorted ps.ps_step_samples in
      (s.Sim.Stats.mean, s.Sim.Stats.stddev, s.Sim.Stats.median, s.Sim.Stats.p95)
  in
  let rmr_mean =
    if Array.length ps.ps_rmr_samples = 0 then 0.0
    else Sim.Stats.mean_array ps.ps_rmr_samples
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"phase\":\"%s\",\"calls\":%d,\"unclosed\":%d,\"steps\":%d,\"rmrs\":%d,\"writes\":%d,\"invalidated\":%d,\"steps_per_call\":{\"mean\":%.6g,\"stddev\":%.6g,\"median\":%.6g,\"p95\":%.6g},\"rmrs_per_call_mean\":%.6g}"
       (escape ps.ps_phase) ps.ps_calls ps.ps_unclosed ps.ps_steps ps.ps_rmrs
       ps.ps_writes ps.ps_invalidations mean stddev median p95 rmr_mean)

let snapshot_to_json (sn : Obs.Collector.snapshot) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"phases\":[";
  let first = ref true in
  List.iter (add_phase buf first) sn.Obs.Collector.sn_phases;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"totals\":{\"steps\":%d,\"rmrs\":%d,\"flips\":%d,\"crashes\":%d,\"finishes\":%d,\"span_errors\":%d},\"counters\":{"
       sn.Obs.Collector.sn_steps sn.Obs.Collector.sn_rmrs
       sn.Obs.Collector.sn_flips sn.Obs.Collector.sn_crashes
       sn.Obs.Collector.sn_finishes sn.Obs.Collector.sn_span_errors);
  let firstc = ref true in
  List.iter
    (fun (name, v) ->
      if not !firstc then Buffer.add_string buf ",";
      firstc := false;
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (escape name) v))
    sn.Obs.Collector.sn_metrics.Obs.Metrics.counters;
  Buffer.add_string buf "}}";
  Buffer.contents buf
