(** Randomized test-and-set from atomic registers — a reproduction of
    Giakkoupis and Woelfel, {e On the Time and Space Complexity of
    Randomized Test-And-Set} (PODC 2012).

    Entry points:
    - {!Election} runs any of the algorithms in one call;
    - {!Registry} catalogs the algorithms and their proven bounds;
    - the re-exported libraries give full access to every layer, from
      the shared-memory simulator ({!Sim}) to the lower-bound machinery
      ({!Lowerbound}) and the real-multicore implementations
      ({!Multicore}). *)

module Registry = Registry
module Election = Election

(** Profiling targets and report rendering for the Probe observability
    layer ([rtas_cli trace]/[rtas_cli profile]). *)
module Probe_target = Probe_target

module Probe_report = Probe_report

(** The simulation substrate: registers, effect-based processes,
    adversarial schedulers, bounded model checking. *)
module Sim = Sim

(** Splitters, 2-/3-process leader election, TAS-from-LE. *)
module Primitives = Primitives

(** Group Election objects (Section 2): Figure 1, sifting, dummy. *)
module Groupelect = Groupelect

(** RatRace structures (Section 3): elimination paths, primary tree,
    backup grid, classic and lean RatRace. *)
module Ratrace = Ratrace

(** Leader elections (Section 2): the chain construction, log*, loglog,
    AA and tournament baselines. *)
module Leaderelect = Leaderelect

(** Adversary independence (Section 4). *)
module Combined = Combined

(** Lower bounds (Sections 5-6): covering recurrences, hitting times,
    Yao-style 2-process experiments. *)
module Lowerbound = Lowerbound

(** Real multicore implementations on [Atomic.t]. *)
module Multicore = Multicore

(** 2-process consensus from TAS and back (paper introduction). *)
module Consensus = Consensus

(** Renaming applications: TAS line and Moir-Anderson splitter grid. *)
module Renaming = Renaming
