(** Rendering of Probe collector snapshots: the per-phase step/RMR
    table behind [rtas_cli trace]/[rtas_cli profile], and a JSON form
    for scripting. Distribution columns use {!Sim.Stats} on the
    snapshot's per-span samples (already sorted, so summaries skip the
    sort). *)

val pp_profile : Obs.Collector.snapshot Fmt.t
(** Per-phase table (calls, steps, RMRs, share of totals, steps/call
    mean and p95, unclosed spans), then totals and any custom
    counters. *)

val snapshot_to_json : Obs.Collector.snapshot -> string
(** One JSON object: [{"phases": [...], "totals": {...},
    "counters": {...}}]. *)
