(** Profiling targets for [rtas_cli trace]/[rtas_cli profile]: program
    families the probe layer can run and attribute — the {!Registry}
    leader elections plus bare building blocks (a single GroupElect
    round, a RatRace) worth profiling on their own. *)

type t = {
  pt_name : string;
  pt_doc : string;
  pt_programs : Sim.Memory.t -> n:int -> k:int -> (Sim.Ctx.t -> int) array;
      (** Build the structure in [mem] dimensioned for [n] processes and
          return one program per participant ([k] of them); programs
          return 1 for a winner, 0 otherwise. *)
}

val ge_logstar : t
(** One Figure-1 GroupElect round; winners are the group survivors, so
    profiling it measures the paper's f(k) bound directly. *)

val chain : t
(** The log* chain construction (same programs as registry ["log*"]). *)

val rr_classic : t

val all : t list
val find : string -> t option
val names : unit -> string list
