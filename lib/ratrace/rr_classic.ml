let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  max 1 (go 0 n)

let tree_height ~n = 3 * ceil_log2 n

type t = {
  tree : Primary_tree.t;
  grid : Backup_grid.t;
  top : Primitives.Le2.t;
}

let create ?(name = "ratrace") mem ~n =
  if n < 1 then invalid_arg "Ratrace.create: n must be >= 1";
  {
    tree = Primary_tree.create ~name:(name ^ ".tree") mem ~height:(tree_height ~n);
    grid = Backup_grid.create ~name:(name ^ ".grid") mem ~n;
    top = Primitives.Le2.create ~name:(name ^ ".top") mem;
  }

let top_elect t ctx ~port =
  let pid = Sim.Ctx.pid ctx in
  Obs.enter ~pid "rr_top";
  let won = Primitives.Le2.elect t.top ctx ~port in
  Obs.leave ~pid "rr_top";
  won

let elect ?notify_splitter_win t ctx =
  let notify_stop = match notify_splitter_win with Some f -> f | None -> fun () -> () in
  match Primary_tree.run ~notify_stop t.tree ctx with
  | Primary_tree.Won -> top_elect t ctx ~port:0
  | Primary_tree.Lost -> false
  | Primary_tree.Fell_off _ -> (
      match Backup_grid.run ~notify_stop t.grid ctx with
      | Backup_grid.Won -> top_elect t ctx ~port:1
      | Backup_grid.Lost -> false)
