let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  max 1 (go 0 n)

let tree_height ~n = ceil_log2 n

let path_count ~n =
  let h = ceil_log2 n in
  max 1 ((n + h - 1) / h)

let path_length ~n = 4 * ceil_log2 n

module Make (M : Backend.Mem.S) = struct
  module Tree = Primary_tree.Make (M)
  module Path = Elim_path.Make (M)
  module Duel = Primitives.Le2.Make (M)

  type t = {
    tree : Tree.t;
    paths : Path.t array;
    backup : Path.t;
    top : Duel.t;
    leaves_per_path : int;
  }

  let create ?(name = "rr-lean") mem ~n =
    if n < 1 then invalid_arg "Ratrace_lean.create: n must be >= 1";
    let h = tree_height ~n in
    let count = path_count ~n in
    {
      tree = Tree.create ~name:(name ^ ".tree") mem ~height:h;
      paths =
        Array.init count (fun i ->
            Path.create
              ~name:(Printf.sprintf "%s.ep[%d]" name i)
              mem ~length:(path_length ~n));
      backup = Path.create ~name:(name ^ ".backup") mem ~length:n;
      top = Duel.create ~name:(name ^ ".top") mem;
      leaves_per_path = h;
    }

  let top_elect t ctx ~port =
    M.enter ctx "rr_top";
    let won = Duel.elect t.top ctx ~port in
    M.leave ctx "rr_top";
    won

  let elect ?notify_splitter_win t ctx =
    let notify_stop =
      match notify_splitter_win with Some f -> f | None -> fun () -> ()
    in
    let win_tree () = top_elect t ctx ~port:0 in
    let backup () =
      match Path.run ~notify_stop t.backup ctx with
      | Elim_path.Won -> top_elect t ctx ~port:1
      | Elim_path.Lost -> false
      | Elim_path.Fell_off ->
          failwith "Ratrace_lean: fell off the length-n backup path"
    in
    match Tree.run ~notify_stop t.tree ctx with
    | Primary_tree.Won -> win_tree ()
    | Primary_tree.Lost -> false
    | Primary_tree.Fell_off j -> (
        let i = min (j / t.leaves_per_path) (Array.length t.paths - 1) in
        match Path.run ~notify_stop t.paths.(i) ctx with
        | Elim_path.Won ->
            if Tree.ascend_from_leaf t.tree ctx ~leaf:i then win_tree ()
            else false
        | Elim_path.Lost -> false
        | Elim_path.Fell_off -> backup ())
end

include Make (Backend.Sim_mem)
