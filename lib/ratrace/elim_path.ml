type outcome = Lost | Won | Fell_off

module Make (M : Backend.Mem.S) = struct
  module Sp = Primitives.Splitter.Make (M)
  module Duel = Primitives.Le2.Make (M)

  type t = {
    sps : Sp.t array;
    les : Duel.t array;
  }

  let create ?(name = "ep") mem ~length =
    if length < 1 then invalid_arg "Elim_path.create: length must be >= 1";
    {
      sps =
        Array.init length (fun i ->
            Sp.create ~name:(Printf.sprintf "%s.sp[%d]" name i) mem);
      les =
        Array.init length (fun i ->
            Duel.create ~name:(Printf.sprintf "%s.le[%d]" name i) mem);
    }

  let length t = Array.length t.sps

  (* Node [j]'s election is between the winner of splitter [j] (port 0)
     and the process moving left from node [j+1] (port 1). *)
  let rec backward t ctx ~stopped_at j =
    let port = if j = stopped_at then 0 else 1 in
    if Duel.elect t.les.(j) ctx ~port then
      if j = 0 then Won else backward t ctx ~stopped_at (j - 1)
    else Lost

  let run ?(notify_stop = fun () -> ()) t ctx =
    let len = Array.length t.sps in
    let rec forward i =
      if i >= len then Fell_off
      else
        match Sp.split t.sps.(i) ctx with
        | Primitives.Splitter.L -> Lost
        | Primitives.Splitter.R -> forward (i + 1)
        | Primitives.Splitter.S ->
            notify_stop ();
            backward t ctx ~stopped_at:i i
    in
    M.enter ctx "rr_elim";
    let r = forward 0 in
    M.leave ctx "rr_elim";
    r
end

include Make (Backend.Sim_mem)
