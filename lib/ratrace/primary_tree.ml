type outcome = Lost | Won | Fell_off of int

module Make (M : Backend.Mem.S) = struct
  module Rsp = Primitives.Rsplitter.Make (M)
  module Duel3 = Primitives.Le3.Make (M)

  type t = {
    rsps : Rsp.t array;  (* heap layout, index 1..2^(h+1)-1 *)
    les : Duel3.t array;
    h : int;
  }

  let create ?(name = "tree") mem ~height =
    if height < 0 then invalid_arg "Primary_tree.create: height must be >= 0";
    let nodes = (1 lsl (height + 1)) - 1 in
    {
      rsps =
        Array.init (nodes + 1) (fun v ->
            Rsp.create ~name:(Printf.sprintf "%s.rsp[%d]" name v) mem);
      les =
        Array.init (nodes + 1) (fun v ->
            Duel3.create ~name:(Printf.sprintf "%s.le[%d]" name v) mem);
      h = height;
    }

  let height t = t.h

  let leaves t = 1 lsl t.h

  (* Ascend from node [v], having already won entry to its election on
     [port]. Moving up from a left child uses port 1, from a right child
     port 2. *)
  let rec ascend_loop t ctx v ~port =
    if Duel3.elect t.les.(v) ctx ~port then
      if v = 1 then true
      else ascend_loop t ctx (v / 2) ~port:(if v land 1 = 0 then 1 else 2)
    else false

  let ascend t ctx v ~port =
    M.enter ctx "rr_ascend";
    let won = ascend_loop t ctx v ~port in
    M.leave ctx "rr_ascend";
    won

  let run ?(notify_stop = fun () -> ()) t ctx =
    let first_leaf = 1 lsl t.h in
    let rec descend v =
      match Rsp.split t.rsps.(v) ctx with
      | Primitives.Splitter.S ->
          notify_stop ();
          M.leave ctx "rr_tree";
          if ascend t ctx v ~port:0 then Won else Lost
      | Primitives.Splitter.L ->
          if v >= first_leaf then begin
            M.leave ctx "rr_tree";
            Fell_off (v - first_leaf)
          end
          else descend (2 * v)
      | Primitives.Splitter.R ->
          if v >= first_leaf then begin
            M.leave ctx "rr_tree";
            Fell_off (v - first_leaf)
          end
          else descend ((2 * v) + 1)
    in
    M.enter ctx "rr_tree";
    descend 1

  let ascend_from_leaf t ctx ~leaf =
    if leaf < 0 || leaf >= leaves t then
      invalid_arg "Primary_tree.ascend_from_leaf: bad leaf";
    ascend t ctx ((1 lsl t.h) + leaf) ~port:1
end

include Make (Backend.Sim_mem)
