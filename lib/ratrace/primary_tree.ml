type t = {
  rsps : Primitives.Rsplitter.t array;  (* heap layout, index 1..2^(h+1)-1 *)
  les : Primitives.Le3.t array;
  h : int;
}

type outcome = Lost | Won | Fell_off of int

let create ?(name = "tree") mem ~height =
  if height < 0 then invalid_arg "Primary_tree.create: height must be >= 0";
  let nodes = (1 lsl (height + 1)) - 1 in
  {
    rsps =
      Array.init (nodes + 1) (fun v ->
          Primitives.Rsplitter.create ~name:(Printf.sprintf "%s.rsp[%d]" name v) mem);
    les =
      Array.init (nodes + 1) (fun v ->
          Primitives.Le3.create ~name:(Printf.sprintf "%s.le[%d]" name v) mem);
    h = height;
  }

let height t = t.h

let leaves t = 1 lsl t.h

(* Ascend from node [v], having already won entry to its election on
   [port]. Moving up from a left child uses port 1, from a right child
   port 2. *)
let rec ascend_loop t ctx v ~port =
  if Primitives.Le3.elect t.les.(v) ctx ~port then
    if v = 1 then true
    else ascend_loop t ctx (v / 2) ~port:(if v land 1 = 0 then 1 else 2)
  else false

let ascend t ctx v ~port =
  let pid = Sim.Ctx.pid ctx in
  Obs.enter ~pid "rr_ascend";
  let won = ascend_loop t ctx v ~port in
  Obs.leave ~pid "rr_ascend";
  won

let run ?(notify_stop = fun () -> ()) t ctx =
  let first_leaf = 1 lsl t.h in
  let pid = Sim.Ctx.pid ctx in
  let rec descend v =
    match Primitives.Rsplitter.split t.rsps.(v) ctx with
    | Primitives.Splitter.S ->
        notify_stop ();
        Obs.leave ~pid "rr_tree";
        if ascend t ctx v ~port:0 then Won else Lost
    | Primitives.Splitter.L ->
        if v >= first_leaf then begin
          Obs.leave ~pid "rr_tree";
          Fell_off (v - first_leaf)
        end
        else descend (2 * v)
    | Primitives.Splitter.R ->
        if v >= first_leaf then begin
          Obs.leave ~pid "rr_tree";
          Fell_off (v - first_leaf)
        end
        else descend ((2 * v) + 1)
  in
  Obs.enter ~pid "rr_tree";
  descend 1

let ascend_from_leaf t ctx ~leaf =
  if leaf < 0 || leaf >= leaves t then
    invalid_arg "Primary_tree.ascend_from_leaf: bad leaf";
  ascend t ctx ((1 lsl t.h) + leaf) ~port:1
