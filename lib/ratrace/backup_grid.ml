type t = {
  sps : Primitives.Splitter.t array array;
  les : Primitives.Le3.t array array;
  n : int;
}

type outcome = Lost | Won

let create ?(name = "grid") mem ~n =
  if n < 1 then invalid_arg "Backup_grid.create: n must be >= 1";
  let make f =
    Array.init n (fun i -> Array.init n (fun j -> f i j))
  in
  {
    sps =
      make (fun i j ->
          Primitives.Splitter.create ~name:(Printf.sprintf "%s.sp[%d,%d]" name i j) mem);
    les =
      make (fun i j ->
          Primitives.Le3.create ~name:(Printf.sprintf "%s.le[%d,%d]" name i j) mem);
    n;
  }

(* Retrace the path backwards; [path] lists the nodes from the stopping
   node back to (0,0), each paired with the port to use there: 0 at the
   stopping node, then 1 when we arrived from (i+1,j), 2 from (i,j+1). *)
let rec retrace t ctx = function
  | [] -> Won
  | ((i, j), port) :: rest ->
      if Primitives.Le3.elect t.les.(i).(j) ctx ~port then retrace t ctx rest
      else Lost

let run ?(notify_stop = fun () -> ()) t ctx =
  let pid = Sim.Ctx.pid ctx in
  let rec descend i j path =
    if i + j >= t.n then
      failwith "Backup_grid.run: process left the grid (more than n entrants?)"
    else
      match Primitives.Splitter.split t.sps.(i).(j) ctx with
      | Primitives.Splitter.S ->
          notify_stop ();
          retrace t ctx (((i, j), 0) :: path)
      | Primitives.Splitter.L -> descend (i + 1) j (((i, j), 1) :: path)
      | Primitives.Splitter.R -> descend i (j + 1) (((i, j), 2) :: path)
  in
  Obs.enter ~pid "rr_grid";
  let r = descend 0 0 [] in
  Obs.leave ~pid "rr_grid";
  r
