(** The paper's space-efficient RatRace (Section 3.2).

    The [3 log n]-height primary tree is replaced by a tree of height
    [ceil(log2 n)], whose overflow is absorbed by [ceil(n / log2 n)]
    elimination paths of length [4 * ceil(log2 n)] (a process that falls
    off leaf [j] enters path [floor(j / log2 n)]; the winner of path [i]
    re-enters the tree at leaf [i]), and the [n x n] backup grid is
    replaced by a single elimination path of length [n]. Claim 3.2
    bounds the probability that more than [4 log n] processes reach any
    fixed window of [log n] leaves by [1/n^2], so w.h.p. nobody even
    reaches the backup path.

    Expected step complexity O(log k) against the adaptive adversary,
    with Theta(n) registers instead of Theta(n^3). *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> n:int -> t
  val elect : ?notify_splitter_win:(unit -> unit) -> t -> M.ctx -> bool
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val elect : ?notify_splitter_win:(unit -> unit) -> t -> Sim.Ctx.t -> bool
(** At most one call per process; at most [n] processes.
    [notify_splitter_win] fires the first time the caller wins any
    splitter of the structure (Section 4, rule 3). *)

val tree_height : n:int -> int

val path_count : n:int -> int

val path_length : n:int -> int
