(** Elimination path (Section 3.2).

    A path of [length] nodes, each holding a deterministic splitter and a
    2-process leader election. A process enters at node 0 and moves right
    while its splitter calls return [R]; an [L] means it loses; an [S]
    means it turns around and must win the 2-process elections of every
    node back to node 0 to win the path.

    Claim 3.1: if at most [length] processes enter, no process falls off
    the right end. Space is Theta(length) registers. *)

type outcome = Lost | Won | Fell_off

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> length:int -> t
  val length : t -> int
  val run : ?notify_stop:(unit -> unit) -> t -> M.ctx -> outcome
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> length:int -> t

val length : t -> int

val run : ?notify_stop:(unit -> unit) -> t -> Sim.Ctx.t -> outcome
(** At most one call per process. [notify_stop] fires when the caller
    wins one of the path's splitters (used by the Section 4 combiner,
    whose rule 3 depends on whether a process holds a splitter). *)
