(** RatRace's primary tree (Section 3.1).

    A complete binary tree of the given height. Every node holds a
    randomized splitter and a 3-process leader election. A process
    descends from the root, turning left or right as its randomized
    splitter calls dictate, until it wins a splitter (then it ascends,
    winning the per-node elections back to the root, or loses) or it is
    deflected at a leaf and {e falls off} the tree.

    The 3-process election at a node is shared between the splitter
    winner at that node (port 0) and the winners coming up from its left
    and right subtrees (ports 1 and 2). At a leaf, port 1 is reserved
    for a process re-entering the tree from outside (the elimination
    paths of the lean variant use this). *)

type outcome = Lost | Won | Fell_off of int  (** Leaf index, 0-based. *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> height:int -> t
  val height : t -> int
  val leaves : t -> int
  val run : ?notify_stop:(unit -> unit) -> t -> M.ctx -> outcome
  val ascend_from_leaf : t -> M.ctx -> leaf:int -> bool
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> height:int -> t

val height : t -> int

val leaves : t -> int

val run : ?notify_stop:(unit -> unit) -> t -> Sim.Ctx.t -> outcome
(** Enter at the root. At most one call per process. [notify_stop]
    fires when the caller wins one of the randomized splitters. *)

val ascend_from_leaf : t -> Sim.Ctx.t -> leaf:int -> bool
(** [ascend_from_leaf t ctx ~leaf] enters the election at the given leaf
    on its external port and tries to win every election up to the root;
    [true] means the caller won the tree. Used by the winner of
    elimination path [i] of the lean RatRace, which re-enters at leaf
    [i]. At most one external process per leaf. *)
