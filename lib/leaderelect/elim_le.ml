module Make (M : Backend.Mem.S) = struct
  module Path = Ratrace.Elim_path.Make (M)

  type t = Path.t

  let create ?(name = "elim") mem ~n =
    if n < 1 then invalid_arg "Elim_le.create: n must be >= 1";
    Path.create ~name mem ~length:n

  let elect t ctx =
    match Path.run t ctx with
    | Ratrace.Elim_path.Won -> true
    | Ratrace.Elim_path.Lost -> false
    | Ratrace.Elim_path.Fell_off ->
        failwith "Elim_le.elect: fell off the path (more than n entrants?)"
end

include Make (Backend.Sim_mem)

let to_le t = { Le.le_name = "elim"; elect = elect t }

let make mem ~n = to_le (create mem ~n)
