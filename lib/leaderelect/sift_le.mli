(** Sifting leader election: Theta(log log n) sifting Group Elections
    (Alistarh–Aspnes) followed by a tournament over the O(1) expected
    survivors.

    Every sifting level keeps at least one participant (a writer is
    always elected, and if nobody writes, everybody reads 0), and the
    tournament elects exactly one of the survivors, so the composite is
    a safe leader election for up to [n] participants with Theta(n)
    registers. Expected steps are dominated by the tournament climb:
    O(log n), with the sifting prefix cutting the {e contention} — not
    the depth — to O(1) after O(log log n) levels against the
    R/W-oblivious adversary.

    One source for both backends: the simulator instantiation below
    feeds the registry, and [Make (Backend.Atomic_mem)] is
    {!Multicore.Mc_sift}. *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> n:int -> t

  val elect : t -> M.ctx -> bool
  (** Uses [M.self] as the tournament leaf; requires it below [n]
      rounded up to a power of two. At most one call per slot. *)
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val elect : t -> Sim.Ctx.t -> bool

val to_le : t -> Le.t

val make : Sim.Memory.t -> n:int -> Le.t
