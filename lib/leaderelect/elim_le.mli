(** Elimination-path leader election: the Section 3 elimination path as
    a standalone n-process election.

    A path of [n] splitter + 2-process-duel nodes; with at most [n]
    participants nobody falls off (Claim 3.1), at least one participant
    stops at a splitter, and the chain of duels funnels exactly one
    winner out of node 0. O(k) worst-case steps, O(1) typical (most
    processes lose at the first few splitters); Theta(n) registers.
    Falling off the right end raises [Failure].

    One source for both backends: the simulator instantiation below
    feeds the registry, and [Make (Backend.Atomic_mem)] is
    {!Multicore.Mc_elim}. *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> n:int -> t

  val elect : t -> M.ctx -> bool
  (** [M.self] must be distinct per caller (it seeds the splitter
      races); at most one call per slot. *)
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val elect : t -> Sim.Ctx.t -> bool

val to_le : t -> Le.t

val make : Sim.Memory.t -> n:int -> Le.t
