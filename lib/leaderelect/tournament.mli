(** Baseline: tournament-tree leader election in the style of Afek,
    Gafni, Tromp and Vitányi (WDAG 1992).

    A complete binary tree of 2-process elections over [n] leaf slots
    (rounded up to a power of two); process [p] starts at leaf [p] and
    must win every election up to the root. O(log n) expected steps
    against the adaptive adversary — non-adaptive, since even a solo
    process climbs the full tree — and Theta(n) registers. *)

module Make (M : Backend.Mem.S) : sig
  type t

  val create : ?name:string -> M.mem -> n:int -> t

  val slots : t -> int
  (** Leaf count ([n] rounded up to a power of two). *)

  val elect : t -> M.ctx -> bool
  (** Uses [M.self] as the leaf index; requires it below [slots]. *)
end

type t = Make(Backend.Sim_mem).t

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val elect : t -> Sim.Ctx.t -> bool
(** Uses [Sim.Ctx.pid] as the leaf index; requires [pid < n]. *)

val to_le : t -> Le.t

val make : Sim.Memory.t -> n:int -> Le.t
