(** The Leader Election construction of Section 2.1.

    Level [i] holds a GroupElect object [GE_i], a deterministic splitter
    [SP_i] and a 2-process election [LE_i]. A process participates in
    the group elections in order; losing one loses the whole election.
    An elected process calls [SP_i.split()]: [L] loses, [R] proceeds to
    level [i+1], [S] turns around and must win [LE_i], [LE_(i-1)], ...,
    [LE_0] (entering [LE_i] on port 0 as the splitter winner and each
    earlier one on port 1 as the winner of the following one). The
    winner of [LE_0] wins.

    If [j > 0] processes reach level [i], at most [j - 1] reach level
    [i+1], so a chain of [n] levels never overflows; the expected number
    of levels used is the hitting time [Delta_(f-1)(k)] for the
    GroupElect performance parameter [f] (Lemma 2.1). *)

type forward = F_lost | F_stopped of int | F_exhausted

module Make (M : Backend.Mem.S) : sig
  type t

  val create : M.mem -> ?name:string -> M.ctx Groupelect.Ge.gen array -> t
  val levels : t -> int
  val forward : t -> M.ctx -> from_level:int -> upto:int -> forward
  val backward : t -> M.ctx -> stopped_at:int -> bool
  val elect : t -> M.ctx -> bool
end

type t = Make(Backend.Sim_mem).t

val create : Sim.Memory.t -> ?name:string -> Groupelect.Ge.t array -> t
(** One level per GroupElect object; splitters and 2-process elections
    are allocated here (2 + 2 registers per level). *)

val levels : t -> int

val forward : t -> Sim.Ctx.t -> from_level:int -> upto:int -> forward
(** Traverse levels [from_level .. upto - 1]. [F_stopped i] means the
    process won splitter [i] and must now run {!backward}. *)

val backward : t -> Sim.Ctx.t -> stopped_at:int -> bool
(** Win the chain of 2-process elections from [stopped_at] down to 0. *)

val elect : t -> Sim.Ctx.t -> bool
(** Run the full chain; raises [Failure] on overflow, which cannot
    happen if the chain has at least as many levels as participants. *)
