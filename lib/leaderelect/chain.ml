type forward = F_lost | F_stopped of int | F_exhausted

module Make (M : Backend.Mem.S) = struct
  module Sp = Primitives.Splitter.Make (M)
  module Duel = Primitives.Le2.Make (M)

  type t = {
    ges : M.ctx Groupelect.Ge.gen array;
    sps : Sp.t array;
    les : Duel.t array;
  }

  let create mem ?(name = "chain") ges =
    let n = Array.length ges in
    {
      ges;
      sps =
        Array.init n (fun i ->
            Sp.create ~name:(Printf.sprintf "%s.sp[%d]" name i) mem);
      les =
        Array.init n (fun i ->
            Duel.create ~name:(Printf.sprintf "%s.le[%d]" name i) mem);
    }

  let levels t = Array.length t.ges

  let forward t ctx ~from_level ~upto =
    let upto = min upto (Array.length t.ges) in
    let rec go i =
      if i >= upto then F_exhausted
      else if not (t.ges.(i).Groupelect.Ge.elect ctx) then F_lost
      else
        match Sp.split t.sps.(i) ctx with
        | Primitives.Splitter.L -> F_lost
        | Primitives.Splitter.R -> go (i + 1)
        | Primitives.Splitter.S -> F_stopped i
    in
    M.enter ctx "chain_forward";
    let r = go from_level in
    M.leave ctx "chain_forward";
    r

  let backward t ctx ~stopped_at =
    let rec go j =
      let port = if j = stopped_at then 0 else 1 in
      if Duel.elect t.les.(j) ctx ~port then
        if j = 0 then true else go (j - 1)
      else false
    in
    M.enter ctx "chain_backward";
    let r = go stopped_at in
    M.leave ctx "chain_backward";
    r

  let elect t ctx =
    match forward t ctx ~from_level:0 ~upto:(levels t) with
    | F_lost -> false
    | F_stopped i -> backward t ctx ~stopped_at:i
    | F_exhausted ->
        failwith "Chain.elect: ran out of levels (more participants than levels?)"
end

include Make (Backend.Sim_mem)
