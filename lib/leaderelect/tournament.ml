let pow2_at_least n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

module Make (M : Backend.Mem.S) = struct
  module Duel = Primitives.Le2.Make (M)

  type t = {
    les : Duel.t array;  (* heap layout, internal nodes 1..leaves-1 *)
    leaves : int;
  }

  let create ?(name = "tournament") mem ~n =
    if n < 1 then invalid_arg "Tournament.create: n must be >= 1";
    let leaves = pow2_at_least n in
    {
      les =
        Array.init leaves (fun v ->
            Duel.create ~name:(Printf.sprintf "%s.le[%d]" name v) mem);
      leaves;
    }

  let slots t = t.leaves

  let elect t ctx =
    let p = M.self ctx in
    if p >= t.leaves then invalid_arg "Tournament.elect: pid out of range";
    let rec up v =
      if v = 1 then true
      else
        let port = v land 1 in
        if Duel.elect t.les.(v / 2) ctx ~port then up (v / 2) else false
    in
    up (t.leaves + p)
end

include Make (Backend.Sim_mem)

let to_le t = { Le.le_name = "tournament"; elect = elect t }

let make mem ~n = to_le (create mem ~n)
