module Make (M : Backend.Mem.S) = struct
  module Ge_s = Groupelect.Ge_sift.Make (M)
  module T = Tournament.Make (M)

  type t = {
    levels : M.ctx Groupelect.Ge.gen array;
    finisher : T.t;
  }

  let create ?(name = "sift") mem ~n =
    if n < 1 then invalid_arg "Sift_le.create: n must be >= 1";
    let probs = Groupelect.Ge_sift.probability_schedule ~n in
    {
      levels =
        Array.mapi
          (fun i p ->
            Ge_s.create
              ~name:(Printf.sprintf "%s.lvl[%d]" name i)
              mem ~write_prob:p)
          probs;
      finisher = T.create ~name:(name ^ ".fin") mem ~n;
    }

  let elect t ctx =
    let rec sift i =
      if i >= Array.length t.levels then true
      else if t.levels.(i).Groupelect.Ge.elect ctx then sift (i + 1)
      else false
    in
    if sift 0 then T.elect t.finisher ctx else false
end

include Make (Backend.Sim_mem)

let to_le t = { Le.le_name = "sift"; elect = elect t }

let make mem ~n = to_le (create mem ~n)
