.PHONY: all check test build chaos-smoke bench-smoke flat-smoke trace-smoke mc-smoke service-smoke service-scale-smoke perf-bench perf-regress clean

all: build

build:
	dune build

test: check

# Tier-1 gate: everything compiles, the whole suite passes, and the
# perf numbers have not regressed past the tolerances of
# scripts/perf_regress.sh.
check:
	dune build && dune runtest
	$(MAKE) trace-smoke
	$(MAKE) mc-smoke
	$(MAKE) flat-smoke
	$(MAKE) service-smoke
	$(MAKE) service-scale-smoke
	$(MAKE) perf-regress

# Fast chaos smoke: small system, few trials, fixed seed, both the
# simulated sweep and the real-multicore implementations. Exits
# non-zero on any safety violation.
chaos-smoke:
	dune exec bin/rtas_cli.exe -- chaos -n 16 -k 6 --trials 5 \
	  --probs 0,0.05,0.2 --seed 42 --mc

# Multicore smoke: every registry algorithm with an Atomic_mem backend
# races real domains (2-way and 4-way) and must elect a unique winner
# in every trial; the CLI exits non-zero otherwise.
mc-smoke:
	dune exec bin/rtas_cli.exe -- mc --domains 2 --trials 10 --seed 7
	dune exec bin/rtas_cli.exe -- mc --domains 4 --trials 10 --seed 7

# Fast bench smoke: a reduced perf sweep genuinely crossing domains
# (--exact-domains skips the clamp to the host's recommended count),
# then validate that the JSON parses, carries the expected schema and
# passed the cross-domain determinism check. Also guards that the
# dune build tree stays untracked. Writes to the build tree so the
# committed BENCH_results.json stays canonical.
bench-smoke:
	git check-ignore -q _build
	dune exec bench/main.exe -- perf --domains 2 --exact-domains \
	  --trials 40 --scale 0.001 --out _build/BENCH_smoke.json
	jq -e '.schema_version == 5 and .kernel == "flat" and .parallel_sweep.bit_identical == true and (.parallel_sweep.trials_per_sec > 0) and .parallel_sweep.domains_requested == 2 and .flat_vs_effect.outcomes_match == true and (.flat_vs_effect.speedup > 0) and (.scaling | length == 2) and ([.scaling[] | select(.trials_per_sec > 0 and has("minor_words_per_trial") and has("minor_collections"))] | length == 2) and .service.kernel == "flat" and .service.events == "wheel" and .service.reproducible == true and .wheel_vs_heap.reports_match == true and (.wheel_vs_heap.speedup > 0) and (.service_scaling | length == 3) and ([.service_scaling[] | select(.clients_per_sec > 0)] | length == 3)' _build/BENCH_smoke.json >/dev/null
	@echo "bench-smoke: _build/BENCH_smoke.json OK"

# Flat-kernel smoke: every flat-registered algorithm must be
# bit-identical to the effect simulator over fresh seeds (outcome
# vectors and spans), then a flat trial batch is fanned out over real
# domains and must match the single-domain run. The CLI exits non-zero
# on any divergence.
flat-smoke:
	dune exec bin/rtas_cli.exe -- flat -n 64 -k 16 --seeds 10 \
	  --trials 32 --domains 2 --seed 9

# Lock-service smoke: a Poisson run on each backend plus a chaos
# variant, each validated with jq — the report must account for every
# client, complete work, and (under chaos) recover every crashed
# holder without wedging a key. Scratch files live in the build tree.
service-smoke:
	dune exec bin/rtas_cli.exe -- service --alg log* --backend sim \
	  --arrival poisson --clients 500 --keys 8 --seed 11 -o _build/SVC_sim.json
	jq -e '.backend == "sim" and .counts.clients == 500 and (.counts.completed + .counts.deadline_exceeded + .counts.crashed_clients + .counts.shed == 500) and .counts.completed > 0 and .latency.p999 >= .latency.p50 and .livelocked == false' _build/SVC_sim.json >/dev/null
	dune exec bin/rtas_cli.exe -- service --alg tournament --backend atomic \
	  --arrival poisson --rate 0.005 --clients 150 --keys 4 --domains 4 \
	  --seed 11 -o _build/SVC_atomic.json
	jq -e '.backend == "atomic" and .counts.clients == 150 and (.counts.completed + .counts.deadline_exceeded + .counts.crashed_clients + .counts.shed == 150) and .counts.completed > 0 and .livelocked == false' _build/SVC_atomic.json >/dev/null
	dune exec bin/rtas_cli.exe -- service --alg log* --backend sim \
	  --arrival bursty --clients 500 --keys 8 --chaos 0.3 --seed 11 \
	  -o _build/SVC_chaos.json
	jq -e '.counts.holder_crashes > 0 and .counts.forced_expiries >= .counts.holder_crashes and (.counts.completed + .counts.deadline_exceeded + .counts.crashed_clients + .counts.shed == 500) and .livelocked == false' _build/SVC_chaos.json >/dev/null
	@echo "service-smoke: sim + atomic + chaos OK"

# Million-client scale smoke: one sim run at 1M clients on the timing
# wheel with sharded execution and the bounded-memory latency
# histogram, under a hard wall-clock budget. Validates that the run
# completes, accounts for every client, and actually used the
# histogram (an exact latency array at this scale would be the bug).
service-scale-smoke:
	timeout 120 dune exec bin/rtas_cli.exe -- service --alg tournament \
	  --backend sim --kernel flat --arrival poisson --rate 20 \
	  --clients 1000000 --keys 256 --zipf 0.5 --backoff exp \
	  --max-waiters 32 --hold 50 --events wheel --shards 4 --domains 2 \
	  --latency hist --seed 42 -o _build/SVC_scale.json
	jq -e '.counts.clients == 1000000 and (.counts.completed + .counts.deadline_exceeded + .counts.crashed_clients + .counts.shed == 1000000) and .counts.completed > 0 and .latency.mode == "hist" and .latency.p999 >= .latency.p50 and .livelocked == false' _build/SVC_scale.json >/dev/null
	@echo "service-scale-smoke: 1M clients OK"

# Probe smoke: export a Perfetto trace from a small run and validate
# its structure with jq (every event carries ph/ts/pid/tid; spans
# balance: as many B as E events), then run a small profile batch and
# check the JSON report names the expected phases. Scratch files live
# in the build tree.
trace-smoke:
	dune exec bin/rtas_cli.exe -- trace --algo rr_classic -n 8 --seed 3 \
	  -o _build/trace.json
	jq -e '.traceEvents | length > 0' _build/trace.json >/dev/null
	jq -e '[.traceEvents[] | select((has("ph") and has("ts") and has("pid") and has("tid")) | not)] | length == 0' _build/trace.json >/dev/null
	jq -e '([.traceEvents[] | select(.ph == "B")] | length) == ([.traceEvents[] | select(.ph == "E")] | length)' _build/trace.json >/dev/null
	dune exec bin/rtas_cli.exe -- profile --algos ge_logstar,chain,rr_classic \
	  -n 32 -k 8 --trials 20 --seed 3 --json _build/profile.json >/dev/null
	jq -e '.algos | keys == ["chain", "ge_logstar", "rr_classic"]' _build/profile.json >/dev/null
	jq -e '[.algos.rr_classic.phases[].phase] | contains(["rr_tree", "rr_ascend", "rr_top"])' _build/profile.json >/dev/null
	jq -e '.algos.ge_logstar.phases[] | select(.phase == "ge_round") | .calls > 0 and .steps > 0' _build/profile.json >/dev/null
	@echo "trace-smoke: trace.json + profile.json OK"

# Canonical perf run: regenerates BENCH_results.json (the numbers the
# docs quote and perf-regress checks). Refresh BENCH_baseline.json from
# it deliberately, when a PR is expected to shift performance.
perf-bench:
	dune exec bench/main.exe -- perf --trials 2000 --out BENCH_results.json

# Regression gate: rerun the canonical perf sweep and compare against
# the committed baseline (tolerances documented in the script).
perf-regress: perf-bench
	sh scripts/perf_regress.sh BENCH_results.json BENCH_baseline.json

clean:
	dune clean
