.PHONY: all check test build chaos-smoke clean

all: build

build:
	dune build

test: check

# Tier-1 gate: everything compiles and the whole suite passes.
check:
	dune build && dune runtest

# Fast chaos smoke: small system, few trials, fixed seed, both the
# simulated sweep and the real-multicore implementations. Exits
# non-zero on any safety violation.
chaos-smoke:
	dune exec bin/rtas_cli.exe -- chaos -n 16 -k 6 --trials 5 \
	  --probs 0,0.05,0.2 --seed 42 --mc

clean:
	dune clean
