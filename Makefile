.PHONY: all check test build chaos-smoke bench-smoke clean

all: build

build:
	dune build

test: check

# Tier-1 gate: everything compiles and the whole suite passes.
check:
	dune build && dune runtest

# Fast chaos smoke: small system, few trials, fixed seed, both the
# simulated sweep and the real-multicore implementations. Exits
# non-zero on any safety violation.
chaos-smoke:
	dune exec bin/rtas_cli.exe -- chaos -n 16 -k 6 --trials 5 \
	  --probs 0,0.05,0.2 --seed 42 --mc

# Fast bench smoke: a reduced perf sweep on 2 domains, then validate
# that BENCH_results.json parses, carries the expected schema and
# passed the cross-domain determinism check. Also guards that the
# dune build tree stays untracked.
bench-smoke:
	git check-ignore -q _build
	dune exec bench/main.exe -- perf --domains 2 --trials 40 \
	  --out BENCH_results.json
	jq -e '.schema_version == 1 and .parallel_sweep.bit_identical == true and (.parallel_sweep.trials_per_sec > 0)' BENCH_results.json >/dev/null
	@echo "bench-smoke: BENCH_results.json OK"

clean:
	dune clean
