.PHONY: all check test build chaos-smoke bench-smoke perf-bench perf-regress clean

all: build

build:
	dune build

test: check

# Tier-1 gate: everything compiles, the whole suite passes, and the
# perf numbers have not regressed past the tolerances of
# scripts/perf_regress.sh.
check:
	dune build && dune runtest
	$(MAKE) perf-regress

# Fast chaos smoke: small system, few trials, fixed seed, both the
# simulated sweep and the real-multicore implementations. Exits
# non-zero on any safety violation.
chaos-smoke:
	dune exec bin/rtas_cli.exe -- chaos -n 16 -k 6 --trials 5 \
	  --probs 0,0.05,0.2 --seed 42 --mc

# Fast bench smoke: a reduced perf sweep genuinely crossing domains
# (--exact-domains skips the clamp to the host's recommended count),
# then validate that the JSON parses, carries the expected schema and
# passed the cross-domain determinism check. Also guards that the
# dune build tree stays untracked. Writes to a scratch file so the
# committed BENCH_results.json stays canonical.
bench-smoke:
	git check-ignore -q _build
	dune exec bench/main.exe -- perf --domains 2 --exact-domains \
	  --trials 40 --scale 0.001 --out BENCH_smoke.json
	jq -e '.schema_version == 2 and .parallel_sweep.bit_identical == true and (.parallel_sweep.trials_per_sec > 0) and .parallel_sweep.domains_requested == 2' BENCH_smoke.json >/dev/null
	@echo "bench-smoke: BENCH_smoke.json OK"

# Canonical perf run: regenerates BENCH_results.json (the numbers the
# docs quote and perf-regress checks). Refresh BENCH_baseline.json from
# it deliberately, when a PR is expected to shift performance.
perf-bench:
	dune exec bench/main.exe -- perf --trials 400 --out BENCH_results.json

# Regression gate: rerun the canonical perf sweep and compare against
# the committed baseline (tolerances documented in the script).
perf-regress: perf-bench
	sh scripts/perf_regress.sh BENCH_results.json BENCH_baseline.json

clean:
	dune clean
