#!/bin/sh
# Compare a fresh BENCH_results.json (schema 5, flat kernel) against the
# committed baseline and fail on perf or allocation regressions beyond
# the tolerances below.
#
#   usage: perf_regress.sh [current.json] [baseline.json]
#
# Gates, and why they differ:
#   - flat-vs-effect speedup: >= 10x, measured in the SAME run (min of 3
#     timings per kernel, same process, interleaved). The effect kernel
#     is the pre-flat trial path, so this enforces the flat kernel's
#     raison d'etre — a 10x trial-throughput win — in a way that is
#     immune to this host's large wall-clock frequency swings: both
#     sides see the same machine at the same moment.
#   - flat-vs-effect outcomes: exact. The flat kernel is only admissible
#     while it is bit-identical to the effect oracle.
#   - minor words per trial (domains=1): absolute ceiling below, plus
#     <= 130% of baseline. Allocation is deterministic, so this is the
#     tight, noise-free regression signal for the trial hot path.
#   - throughput (trials/sec, domains=1): current must be >= 50% of the
#     baseline. Wall-clock in shared containers is noisy, so the bar is
#     deliberately loose; it still catches an accidental return to the
#     per-step-allocating path (a ~10x cliff).
#   - parallel speedup: at domains=1 it must be exactly 1.0 (computed
#     from the same measured run, not re-timed); with >= 2 effective
#     domains it must exceed 1.5x and reach 0.7x the domain count.
#   - per-experiment wall clock: <= 4x baseline + 1s grace each, again
#     loose because the families are timed once, not averaged.
#   - service: reproducible, on the flat kernel, and >= 50% of baseline
#     clients/sec.
#   - wheel vs heap: the timing-wheel engine must beat the binary-heap
#     oracle by >= 5x on the same-run 100k-client overload workload,
#     with byte-identical reports. Same-run for the same reason as the
#     kernel gate: both engines see the same machine at the same moment.
#   - service scaling: the 1M-client point must sustain an absolute
#     clients/sec floor plus >= 50% of the baseline point.
set -eu

# Committed ceiling on flat-kernel steady-state allocation: the effect
# path spends ~16550 minor words per perf-arena trial; the flat kernel
# must stay at or below 5% of that (it measures ~130-270, dominated by
# per-trial outcome records, not kernel steps — the machines themselves
# allocate nothing after creation, pinned by test_flatsim's gc test).
GC_CEILING_WORDS=830

# The same-run flat-vs-effect trial-throughput ratio the flat kernel
# must sustain on the perf-arena workload.
MIN_FLAT_SPEEDUP=10.0

# The same-run wheel-vs-heap ratio the timing wheel must sustain on the
# 100k-client overload workload (measured ~5.4-6x; the heap's
# log-factor and per-event allocation are the difference). The floor
# sits well under the measurement because the heap side alone swings
# ~±5% run to run on a shared host.
MIN_WHEEL_SPEEDUP=4.5

# Absolute floor on the 1M-client scaling point (measured ~1.4M
# clients/s; generous for wall-clock noise on a shared host).
MIN_SCALE_CPS=400000

CUR=${1:-BENCH_results.json}
BASE=${2:-BENCH_baseline.json}

fail() {
    echo "perf-regress: FAIL: $*" >&2
    exit 1
}

[ -f "$CUR" ] || fail "missing $CUR (run 'make perf-bench' first)"
[ -f "$BASE" ] || fail "missing baseline $BASE"

jq -e '.schema_version == 5' "$CUR" >/dev/null \
    || fail "$CUR: schema_version != 5"
jq -e '.schema_version == 5' "$BASE" >/dev/null \
    || fail "$BASE: schema_version != 5"
jq -e '.kernel == "flat" and .parallel_sweep.kernel == "flat"' "$CUR" >/dev/null \
    || fail "$CUR: perf sweep must run on the flat kernel"
jq -e '.parallel_sweep.bit_identical == true' "$CUR" >/dev/null \
    || fail "$CUR: parallel sweep not bit-identical across domain counts"

# The current run must have been measured with the Probe layer compiled
# in but no sink installed: under that configuration the >= 50%
# throughput gate below doubles as the probed-off overhead gate — a
# probe point that allocates or dispatches with no sink installed shows
# up here as a throughput regression.
jq -e '.parallel_sweep.probe.compiled_in == true
       and .parallel_sweep.probe.sink_installed == false' "$CUR" >/dev/null \
    || fail "$CUR: perf sweep must run with Probe compiled in and no sink installed"

# The tentpole gate: flat kernel >= 10x the effect kernel, same run.
jq -e '.flat_vs_effect.outcomes_match == true' "$CUR" >/dev/null \
    || fail "$CUR: flat and effect kernels disagree on per-trial outcomes"
speedup=$(jq '.flat_vs_effect.speedup' "$CUR")
awk -v s="$speedup" -v m="$MIN_FLAT_SPEEDUP" 'BEGIN { exit !(s >= m) }' \
    || fail "flat kernel only ${speedup}x the effect kernel (need >= ${MIN_FLAT_SPEEDUP}x, same-run)"

cur_tps=$(jq '.parallel_sweep.trials_per_sec_domains_1' "$CUR")
base_tps=$(jq '.parallel_sweep.trials_per_sec_domains_1' "$BASE")
awk -v c="$cur_tps" -v b="$base_tps" 'BEGIN { exit !(c >= 0.5 * b) }' \
    || fail "throughput regression: $cur_tps trials/s vs baseline $base_tps (< 50%)"

cur_words=$(jq '.parallel_sweep.minor_words_per_trial_domains_1' "$CUR")
base_words=$(jq '.parallel_sweep.minor_words_per_trial_domains_1' "$BASE")
awk -v c="$cur_words" -v g="$GC_CEILING_WORDS" 'BEGIN { exit !(c <= g) }' \
    || fail "allocation ceiling: $cur_words minor words/trial (flat ceiling $GC_CEILING_WORDS)"
awk -v c="$cur_words" -v b="$base_words" 'BEGIN { exit !(c <= 1.3 * b) }' \
    || fail "allocation regression: $cur_words minor words/trial vs baseline $base_words (> 130%)"

# Parallel scaling. The sweep reports speedup_vs_domains_1 computed
# from the same measured run; at one effective domain it is 1.0 by
# construction (anything else means the engine re-timed or domains
# leaked into the measurement). With real parallelism available the
# fan-out must actually pay: > 1.5x overall and >= 0.7x per domain.
domains=$(jq '.domains' "$CUR")
par_speedup=$(jq '.parallel_sweep.speedup_vs_domains_1' "$CUR")
if [ "$domains" -ge 2 ]; then
    awk -v s="$par_speedup" 'BEGIN { exit !(s > 1.5) }' \
        || fail "parallel speedup only ${par_speedup}x at $domains domains (need > 1.5x)"
    awk -v s="$par_speedup" -v d="$domains" 'BEGIN { exit !(s >= 0.7 * d) }' \
        || fail "parallel speedup ${par_speedup}x at $domains domains (need >= 0.7x/domain)"
else
    awk -v s="$par_speedup" 'BEGIN { exit !(s == 1.0) }' \
        || fail "speedup_vs_domains_1 is ${par_speedup} at 1 domain (must be exactly 1.0)"
fi
jq -e --argjson d "$domains" \
    '(.scaling | length) == $d and ([.scaling[] | select(.trials_per_sec <= 0)] | length) == 0' \
    "$CUR" >/dev/null \
    || fail "$CUR: scaling sweep must cover 1..$domains domains with positive throughput"

status=0
for id in $(jq -r '.experiments[].id' "$BASE"); do
    base_wall=$(jq -r --arg id "$id" \
        '.experiments[] | select(.id == $id) | .wall_s' "$BASE")
    cur_wall=$(jq -r --arg id "$id" \
        '.experiments[] | select(.id == $id) | .wall_s' "$CUR")
    if [ -z "$cur_wall" ]; then
        echo "perf-regress: FAIL: experiment $id missing from $CUR" >&2
        status=1
        continue
    fi
    awk -v c="$cur_wall" -v b="$base_wall" \
        'BEGIN { exit !(c <= 4 * b + 1.0) }' \
        || { echo "perf-regress: FAIL: $id took ${cur_wall}s vs baseline ${base_wall}s (> 4x + 1s)" >&2; status=1; }
done
[ "$status" -eq 0 ] || exit 1

# Lock-service workload: the sim run must be exactly reproducible
# (two same-seed runs emitted identical JSON), must have run its
# election rounds on the flat kernel, and its wall-clock throughput
# must not have cratered.
jq -e '.service.reproducible == true' "$CUR" >/dev/null \
    || fail "$CUR: service workload not reproducible across same-seed reruns"
jq -e '.service.kernel == "flat"' "$CUR" >/dev/null \
    || fail "$CUR: service workload must run on the flat kernel"
cur_svc=$(jq '.service.clients_per_sec' "$CUR")
base_svc=$(jq '.service.clients_per_sec' "$BASE")
awk -v c="$cur_svc" -v b="$base_svc" 'BEGIN { exit !(c >= 0.5 * b) }' \
    || fail "service throughput regression: $cur_svc clients/s vs baseline $base_svc (< 50%)"

# Event engine: the wheel must carry the overload workload >= 5x
# faster than the heap oracle in the same run, at the canonical 100k
# clients, and both engines must have produced byte-identical reports
# (the report equality is the differential check; the ratio is the
# tentpole perf gate).
jq -e '.wheel_vs_heap.clients == 100000' "$CUR" >/dev/null \
    || fail "$CUR: wheel_vs_heap must be measured at 100000 clients"
jq -e '.wheel_vs_heap.reports_match == true' "$CUR" >/dev/null \
    || fail "$CUR: wheel and heap engines disagree on the report"
wheel_speedup=$(jq '.wheel_vs_heap.speedup' "$CUR")
awk -v s="$wheel_speedup" -v m="$MIN_WHEEL_SPEEDUP" 'BEGIN { exit !(s >= m) }' \
    || fail "timing wheel only ${wheel_speedup}x the heap oracle (need >= ${MIN_WHEEL_SPEEDUP}x, same-run)"

# Service scaling: the sweep must reach 1M clients and the 1M point
# must hold both the absolute clients/sec floor and 50% of baseline.
jq -e '[.service_scaling[] | select(.clients_per_sec <= 0)] | length == 0' \
    "$CUR" >/dev/null \
    || fail "$CUR: service scaling sweep has a non-positive throughput point"
cur_scale=$(jq '[.service_scaling[] | select(.clients == 1000000)][0].clients_per_sec' "$CUR")
base_scale=$(jq '[.service_scaling[] | select(.clients == 1000000)][0].clients_per_sec' "$BASE")
[ "$cur_scale" != "null" ] || fail "$CUR: service scaling sweep missing the 1M-client point"
awk -v c="$cur_scale" -v m="$MIN_SCALE_CPS" 'BEGIN { exit !(c >= m) }' \
    || fail "1M-client scaling point at $cur_scale clients/s (floor $MIN_SCALE_CPS)"
awk -v c="$cur_scale" -v b="$base_scale" 'BEGIN { exit !(c >= 0.5 * b) }' \
    || fail "1M-client scaling regression: $cur_scale clients/s vs baseline $base_scale (< 50%)"

echo "perf-regress: OK (flat ${speedup}x effect same-run; $cur_tps trials/s" \
    "vs baseline $base_tps; $cur_words minor words/trial (ceiling $GC_CEILING_WORDS);" \
    "service $cur_svc clients/s vs baseline $base_svc;" \
    "wheel ${wheel_speedup}x heap same-run; 1M-client point $cur_scale clients/s)"
