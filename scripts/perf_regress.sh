#!/bin/sh
# Compare a fresh BENCH_results.json against the committed baseline and
# fail on perf or allocation regressions beyond the tolerances below.
#
#   usage: perf_regress.sh [current.json] [baseline.json]
#
# Tolerances, and why they differ:
#   - throughput (trials/sec, domains=1): current must be >= 50% of the
#     baseline. Wall-clock in shared containers is noisy, so the bar is
#     deliberately loose; it still catches an accidental return to
#     per-trial arena construction (a ~9x cliff).
#   - minor words per trial (domains=1): current must be <= 130% of the
#     baseline. Allocation is deterministic, so this is the tight,
#     noise-free regression signal for the trial hot path.
#   - per-experiment wall clock: <= 4x baseline + 1s grace each, again
#     loose because the families are timed once, not averaged.
#   - service clients/sec (sim lock-service workload): current must be
#     >= 50% of the baseline, same rationale as throughput.
#   - schema/bit_identical/service reproducibility: exact.
set -eu

CUR=${1:-BENCH_results.json}
BASE=${2:-BENCH_baseline.json}

fail() {
    echo "perf-regress: FAIL: $*" >&2
    exit 1
}

[ -f "$CUR" ] || fail "missing $CUR (run 'make perf-bench' first)"
[ -f "$BASE" ] || fail "missing baseline $BASE"

jq -e '.schema_version == 3' "$CUR" >/dev/null \
    || fail "$CUR: schema_version != 3"
jq -e '.schema_version == 3' "$BASE" >/dev/null \
    || fail "$BASE: schema_version != 3"
jq -e '.parallel_sweep.bit_identical == true' "$CUR" >/dev/null \
    || fail "$CUR: parallel sweep not bit-identical across domain counts"

# The current run must have been measured with the Probe layer compiled
# in but no sink installed: under that configuration the >= 50%
# throughput gate below doubles as the probed-off overhead gate — a
# probe point that allocates or dispatches with no sink installed shows
# up here as a throughput regression. (The baseline predates the field,
# so only CUR is checked.)
jq -e '.parallel_sweep.probe.compiled_in == true
       and .parallel_sweep.probe.sink_installed == false' "$CUR" >/dev/null \
    || fail "$CUR: perf sweep must run with Probe compiled in and no sink installed"

cur_tps=$(jq '.parallel_sweep.trials_per_sec_domains_1' "$CUR")
base_tps=$(jq '.parallel_sweep.trials_per_sec_domains_1' "$BASE")
awk -v c="$cur_tps" -v b="$base_tps" 'BEGIN { exit !(c >= 0.5 * b) }' \
    || fail "throughput regression: $cur_tps trials/s vs baseline $base_tps (< 50%)"

cur_words=$(jq '.parallel_sweep.minor_words_per_trial_domains_1' "$CUR")
base_words=$(jq '.parallel_sweep.minor_words_per_trial_domains_1' "$BASE")
awk -v c="$cur_words" -v b="$base_words" 'BEGIN { exit !(c <= 1.3 * b) }' \
    || fail "allocation regression: $cur_words minor words/trial vs baseline $base_words (> 130%)"

status=0
for id in $(jq -r '.experiments[].id' "$BASE"); do
    base_wall=$(jq -r --arg id "$id" \
        '.experiments[] | select(.id == $id) | .wall_s' "$BASE")
    cur_wall=$(jq -r --arg id "$id" \
        '.experiments[] | select(.id == $id) | .wall_s' "$CUR")
    if [ -z "$cur_wall" ]; then
        echo "perf-regress: FAIL: experiment $id missing from $CUR" >&2
        status=1
        continue
    fi
    awk -v c="$cur_wall" -v b="$base_wall" \
        'BEGIN { exit !(c <= 4 * b + 1.0) }' \
        || { echo "perf-regress: FAIL: $id took ${cur_wall}s vs baseline ${base_wall}s (> 4x + 1s)" >&2; status=1; }
done
[ "$status" -eq 0 ] || exit 1

# Lock-service workload: the sim run must be exactly reproducible
# (two same-seed runs emitted identical JSON) and its wall-clock
# throughput must not have cratered.
jq -e '.service.reproducible == true' "$CUR" >/dev/null \
    || fail "$CUR: service workload not reproducible across same-seed reruns"
cur_svc=$(jq '.service.clients_per_sec' "$CUR")
base_svc=$(jq '.service.clients_per_sec' "$BASE")
awk -v c="$cur_svc" -v b="$base_svc" 'BEGIN { exit !(c >= 0.5 * b) }' \
    || fail "service throughput regression: $cur_svc clients/s vs baseline $base_svc (< 50%)"

echo "perf-regress: OK ($cur_tps trials/s vs baseline $base_tps;" \
    "$cur_words minor words/trial vs baseline $base_words;" \
    "service $cur_svc clients/s vs baseline $base_svc)"
