(* Experiment harness: one experiment per theorem/claim of the paper.
   Each [run_*] prints the table described in EXPERIMENTS.md.

   Every statistical loop fans out over [Engine] with [!domains]
   domains; per-trial seeds (and every sub-seed inside a trial) come
   from [Sim.Rng.derive], so the tables are bit-identical for any
   domain count. *)

let pr = Fmt.pr

let line () = pr "%s@." (String.make 78 '-')

let header title =
  pr "@.%s@." (String.make 78 '=');
  pr "%s@." title;
  pr "%s@." (String.make 78 '=')

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let log2 x = log x /. log 2.0

(* Domain-pool width for every experiment batch; bench/main.ml sets it
   from --domains. *)
let domains = ref (Engine.default_domains ())

(* Trial-count multiplier for every statistical batch; bench/main.ml
   sets it from --scale. 1.0 runs the full tables; the perf subcommand
   uses a small scale so timing every experiment family stays cheap
   enough for `make perf-regress`. Scaling changes statistical
   resolution only, never which claim a table checks. *)
let scale = ref 1.0

let scaled trials =
  max 1 (int_of_float ((float_of_int trials *. !scale) +. 0.5))

let derive = Sim.Rng.derive

(* Base seed of every experiment batch. Trials derive from it by index,
   so tables do not depend on how many batches ran before them. *)
let base_seed = 0x0E17A5EEDL

(* Average (over derived per-trial seeds) of a per-run measurement on a
   fresh system. [f] receives the trial's base seed and mints sub-seeds
   with [derive ~stream]. *)
let avg_runs ~trials f =
  Engine.mean ~domains:!domains ~trials:(scaled trials) ~seed:base_seed
    (fun ~trial:_ ~seed -> f seed)

(* {1 E1 — Lemma 2.2: performance parameter of the Figure 1 GroupElect} *)

let run_e1 () =
  header "E1  Lemma 2.2 - GroupElect (Fig. 1) performance f(k) <= 2 log2 k + 6";
  pr "%8s %12s %14s %8s@." "k" "measured" "paper bound" "ok";
  line ();
  let n = 4096 in
  List.iter
    (fun k ->
      let measured =
        avg_runs ~trials:300 (fun seed ->
            let mem = Sim.Memory.create () in
            let ge = Groupelect.Ge_logstar.create mem ~n in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                (Array.init k (fun _ ctx ->
                     if ge.Groupelect.Ge.elect ctx then 1 else 0))
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
            float_of_int
              (Array.fold_left
                 (fun a r -> if r = Some 1 then a + 1 else a)
                 0 (Sim.Sched.results sched)))
      in
      let bound = if k = 1 then 6.0 else (2.0 *. log2 (float_of_int k)) +. 6.0 in
      pr "%8d %12.2f %14.2f %8s@." k measured bound
        (if measured <= bound then "yes" else "NO"))
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

(* {1 E2 — Theorem 2.3: the log* leader election} *)

let run_e2 () =
  header
    "E2  Theorem 2.3 - log* leader election: expected max steps vs contention k";
  pr "%8s %14s %10s %12s@." "k" "avg max steps" "log* k" "registers";
  line ();
  let n = 4096 in
  List.iter
    (fun k ->
      let regs = ref 0 in
      let steps =
        avg_runs ~trials:25 (fun seed ->
            let mem = Sim.Memory.create () in
            let le = Leaderelect.Le_logstar.make mem ~n in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                (Leaderelect.Le.programs le ~k)
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
            regs := Sim.Memory.allocated mem;
            float_of_int (Sim.Sched.max_steps sched))
      in
      pr "%8d %14.1f %10d %12d@." k steps
        (Lowerbound.Logstar.log_star (float_of_int k))
        !regs)
    [ 2; 4; 16; 64; 256; 1024; 4096 ];
  pr "@.Shape check: the steps column should be essentially flat (log* k).@."

(* {1 E3 — Section 2.3: sifting decay and the loglog election} *)

let run_e3 () =
  header "E3  Section 2.3 - sifting survivor decay and loglog election";
  let n = 4096 in
  pr "Survivors after each sifting level (k = n = %d, 20 trials):@." n;
  pr "%8s %12s %14s@." "level" "survivors" "2*sqrt(prev)";
  line ();
  let probs = Groupelect.Ge_sift.probability_schedule ~n in
  let counts = Array.make (Array.length probs + 1) 0.0 in
  let trials = scaled 20 in
  (* Each trial returns its own survivor counts; the fold into [counts]
     happens in trial order on the caller. *)
  let per_trial =
    Engine.run ~domains:!domains ~trials ~seed:base_seed
      (fun ~trial:_ ~seed ->
        let mem = Sim.Memory.create () in
        let ges =
          Array.mapi
            (fun i p ->
              Groupelect.Ge_sift.create ~name:(Printf.sprintf "s%d" i) mem
                ~write_prob:p)
            probs
        in
        (* Every process walks the sifting levels; record how many
           survive each level. *)
        let survivors = Array.make (Array.length probs + 1) 0 in
        let programs =
          Array.init n (fun _ ctx ->
              let rec go i =
                survivors.(i) <- survivors.(i) + 1;
                if i >= Array.length ges then 1
                else if ges.(i).Groupelect.Ge.elect ctx then go (i + 1)
                else 0
              in
              go 0)
        in
        let sched = Sim.Sched.create ~seed:(derive seed ~stream:0) programs in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
        survivors)
  in
  Array.iter
    (fun survivors ->
      Array.iteri
        (fun i c ->
          counts.(i) <- counts.(i) +. (float_of_int c /. float_of_int trials))
        survivors)
    per_trial;
  Array.iteri
    (fun i c ->
      let prediction =
        if i = 0 then float_of_int n else (2.0 *. sqrt counts.(i - 1)) +. 1.0
      in
      pr "%8d %12.1f %14.1f@." i c prediction)
    counts;
  pr "@.loglog election: expected max steps vs k (n = %d):@." n;
  pr "%8s %14s %14s@." "k" "avg max steps" "log2 log2 k";
  line ();
  List.iter
    (fun k ->
      let steps =
        avg_runs ~trials:20 (fun seed ->
            let mem = Sim.Memory.create () in
            let le = Leaderelect.Le_loglog.make mem ~n in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                (Leaderelect.Le.programs le ~k)
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
            float_of_int (Sim.Sched.max_steps sched))
      in
      let ll = if k <= 2 then 1.0 else log2 (log2 (float_of_int k)) in
      pr "%8d %14.1f %14.2f@." k steps ll)
    [ 2; 4; 16; 64; 256; 1024; 4096 ]

(* {1 E4 — Section 3: lean RatRace step complexity} *)

let run_e4 () =
  header "E4  Section 3 - lean RatRace: expected max steps O(log k)";
  pr "%8s %16s %16s %10s@." "k" "lean (steps)" "classic (steps)" "log2 k";
  line ();
  List.iter
    (fun k ->
      let measure make =
        avg_runs ~trials:20 (fun seed ->
            let mem = Sim.Memory.create () in
            let le = make mem ~n:(max k 8) in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                (Leaderelect.Le.programs le ~k)
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_crashes ~seed:(derive seed ~stream:2)
                 ~crash_prob:0.005
                 (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1)));
            float_of_int (Sim.Sched.max_steps sched))
      in
      let lean = measure Leaderelect.Rr_le.make_lean in
      let classic =
        if k <= 64 then Fmt.str "%16.1f" (measure Leaderelect.Rr_le.make_original)
        else Fmt.str "%16s" "(skipped: n^3)"
      in
      pr "%8d %16.1f %s %10.1f@." k lean classic (log2 (float_of_int k)))
    [ 2; 4; 16; 64; 256; 1024 ];
  pr "@.Shape check: both columns grow like log k; lean uses Theta(n) space.@."

(* {1 E5 — Space: registers allocated vs n} *)

let run_e5 () =
  header "E5  Space complexity - registers allocated vs n";
  let allocate make n =
    let mem = Sim.Memory.create () in
    ignore (make mem ~n);
    Sim.Memory.allocated mem
  in
  let algorithms =
    [
      ("log*", Leaderelect.Le_logstar.make, max_int);
      ("loglog", Leaderelect.Le_loglog.make, max_int);
      ("aa", Leaderelect.Aa.make, max_int);
      ("tournament", Leaderelect.Tournament.make, max_int);
      ("ratrace-lean", Leaderelect.Rr_le.make_lean, max_int);
      ("combined-log*", Combined.Combine.make_logstar, max_int);
      ("ratrace(n^3)", Leaderelect.Rr_le.make_original, 64);
    ]
  in
  let sizes = [ 8; 16; 32; 64; 256; 1024 ] in
  pr "%-14s" "algorithm";
  List.iter (fun n -> pr "%10d" n) sizes;
  pr "@.";
  line ();
  List.iter
    (fun (name, make, cap) ->
      pr "%-14s" name;
      List.iter
        (fun n ->
          if n <= cap then pr "%10d" (allocate make n) else pr "%10s" "-")
        sizes;
      pr "@.")
    algorithms;
  pr "%-14s" "Omega(log n)";
  List.iter
    (fun n -> pr "%10d" (Lowerbound.Covering.register_lower_bound ~n))
    sizes;
  pr "@.@.Shape check: every upper bound is linear in n except the classic@.";
  pr "RatRace (cubic); all dominate the Omega(log n) lower bound row.@."

(* {1 E6 — Theorem 4.1: adversary independence} *)

let run_e6 () =
  header "E6  Theorem 4.1 - the combination inherits the best of both";
  pr "%-16s %20s %20s@." "algorithm" "random-oblivious" "adaptive-attack";
  line ();
  let n = 128 in
  let measure make adv =
    avg_runs ~trials:15 (fun seed ->
        let mem = Sim.Memory.create () in
        let le = make mem ~n in
        let sched =
          Sim.Sched.create ~seed:(derive seed ~stream:0)
            (Leaderelect.Le.programs le ~k:n)
        in
        Sim.Sched.run sched (adv seed);
        float_of_int (Sim.Sched.max_steps sched))
  in
  let oblivious seed = Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1) in
  let attack _ = Leaderelect.Attacks.ascending_location () in
  List.iter
    (fun (name, make) ->
      let a = measure make oblivious and b = measure make attack in
      pr "%-16s %20.1f %20.1f@." name a b)
    [
      ("log*", Leaderelect.Le_logstar.make);
      ("ratrace-lean", Leaderelect.Rr_le.make_lean);
      ("combined-log*", Combined.Combine.make_logstar);
    ];
  pr "@.Shape check: the attack inflates plain log* (towards Theta(k)) but@.";
  pr "not ratrace-lean or the combination; under the oblivious schedule@.";
  pr "the combination stays within a constant factor of plain log*.@."

(* {1 E7 — Theorem 5.1: the space lower bound} *)

let run_e7 () =
  header "E7  Theorem 5.1 / Claim 5.5 - the covering recurrence";
  pr "%10s %12s %16s %12s@." "n" "f(n-4)" "4(log2 n - 1)" "claim 5.5";
  line ();
  List.iter
    (fun e ->
      let n = 1 lsl e in
      let fn4 = Lowerbound.Covering.f ~n (n - 4) in
      let closed = 4 * (e - 1) in
      let ok = Lowerbound.Covering.check_claim_5_5 ~n in
      pr "%10d %12d %16d %12s@." n fn4 closed (if ok then "verified" else "FAILED"))
    [ 3; 4; 5; 6; 8; 10; 12; 14; 16; 18; 20 ];
  pr "@.Covering harness (Lemma 5.4 base case) and written registers:@.";
  pr "%-14s %6s %10s %10s %12s %12s@." "algorithm" "n" "poised" "covered"
    "written" "lower bound";
  line ();
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          let r = Lowerbound.Covering.base_round ~make ~n ~seed:5L in
          let w = Lowerbound.Covering.written_registers ~make ~n ~seed:5L in
          pr "%-14s %6d %10d %10d %12d %12d@." name n
            r.Lowerbound.Covering.poised_writers
            r.Lowerbound.Covering.distinct_covered w
            (Lowerbound.Covering.register_lower_bound ~n))
        [ 8; 16; 32; 64 ])
    [
      ("log*", Leaderelect.Le_logstar.make);
      ("tournament", Leaderelect.Tournament.make);
      ("ratrace-lean", Leaderelect.Rr_le.make_lean);
    ];
  pr "@.Lemma 5.4 rounds driven to max cover <= 4 (Covering_exec):@.";
  pr "%-14s %6s %8s %8s %10s %10s %10s@." "algorithm" "n" "rounds" "reps"
    "covered" "bound" "anomalies";
  line ();
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          let r = Lowerbound.Covering_exec.run ~make ~n ~seed:11L () in
          pr "%-14s %6d %8d %8d %10d %10d %10d@." name n
            r.Lowerbound.Covering_exec.rounds r.Lowerbound.Covering_exec.final_reps
            r.Lowerbound.Covering_exec.final_covered
            (Lowerbound.Covering.register_lower_bound ~n)
            r.Lowerbound.Covering_exec.anomalies)
        [ 8; 16; 32; 64 ])
    [
      ("tournament", Leaderelect.Tournament.make);
      ("ratrace-lean", Leaderelect.Rr_le.make_lean);
    ];
  pr "@.Shape check: all processes become poised writers (base case), and@.";
  pr "every implementation writes at least the lower-bound register count.@."

(* {1 E8 — Theorem 6.1: the 2-process time lower bound} *)

let tas_pair () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2.create mem in
  let tas =
    Primitives.Tas.create mem ~elect:(fun ctx ->
        Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
  in
  Array.init 2 (fun _ ctx -> Primitives.Tas.apply tas ctx)

let run_e8 () =
  header "E8  Theorem 6.1 - 2-process TAS: max_S Pr[>= t steps] >= 1/4^t";
  pr "%6s %12s %14s %12s %8s@." "t" "schedules" "max Pr" "1/4^t" "ok";
  line ();
  List.iter
    (fun t ->
      let p = Lowerbound.Yao.measure ~trials:(scaled 300) ~make:tas_pair ~t () in
      pr "%6d %12d %14.4f %12.6f %8s@." t p.Lowerbound.Yao.schedules_tested
        p.Lowerbound.Yao.max_prob p.Lowerbound.Yao.bound
        (if p.Lowerbound.Yao.max_prob >= p.Lowerbound.Yao.bound then "yes"
         else "NO"))
    [ 1; 2; 3; 4; 5; 6; 10; 16; 24; 32 ];
  pr "@.Shape check: the measured adversary success dominates the 1/4^t@.";
  pr "lower bound at every t, and both decay to 0 (wait-freedom).@."

(* {1 E9 — Cross-algorithm step comparison} *)

let run_e9 () =
  header "E9  All algorithms - expected max steps vs k (random-oblivious)";
  let n = 1024 in
  let ks = [ 4; 16; 64; 256; 1024 ] in
  pr "%-16s" "algorithm";
  List.iter (fun k -> pr "%10d" k) ks;
  pr "@.";
  line ();
  List.iter
    (fun (e : Rtas.Registry.entry) ->
      if e.Rtas.Registry.name <> "ratrace" then begin
        pr "%-16s" e.Rtas.Registry.name;
        List.iter
          (fun k ->
            let steps =
              avg_runs ~trials:10 (fun seed ->
                  let o =
                    Rtas.Election.run ~seed:(derive seed ~stream:0)
                      ~algorithm:e.Rtas.Registry.name ~n ~k
                      ~adversary:
                        (Sim.Adversary.random_oblivious
                           ~seed:(derive seed ~stream:1))
                      ()
                  in
                  float_of_int o.Rtas.Election.max_steps)
            in
            pr "%10.1f" steps)
          ks;
        pr "@."
      end)
    Rtas.Registry.all;
  (* classic ratrace at its affordable size *)
  pr "%-16s" "ratrace (n=64)";
  List.iter
    (fun k ->
      if k <= 64 then begin
        let steps =
          avg_runs ~trials:10 (fun seed ->
              let o =
                Rtas.Election.run ~seed:(derive seed ~stream:0) ~algorithm:"ratrace"
                  ~n:64 ~k
                  ~adversary:
                    (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1))
                  ()
              in
              float_of_int o.Rtas.Election.max_steps)
        in
        pr "%10.1f" steps
      end
      else pr "%10s" "-")
    ks;
  pr "@.@.Shape check: log* flattest, then loglog/aa, then the log-k family.@."

(* {1 E10 — real multicore: wall-clock cost of a TAS} *)

let run_e10 () =
  header "E10  Multicore - wall-clock ns per one-shot TAS (4 domains racing)";
  pr "%-14s %16s@." "implementation" "ns/op (mean)";
  line ();
  let time_one ?(domains = 4) make =
    let trials = scaled 300 in
    let t0 = Unix.gettimeofday () in
    for trial = 1 to trials do
      let tas = make () in
      List.init domains (fun slot ->
          Domain.spawn (fun () ->
              let rng = Random.State.make [| trial; slot |] in
              Multicore.Mc_tas.apply tas rng ~slot))
      |> List.iter (fun d -> ignore (Domain.join d))
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int trials
  in
  List.iter
    (fun (name, domains, make) ->
      pr "%-14s %16.0f   (%d domains, incl. spawn overhead)@." name
        (time_one ~domains make) domains)
    [
      ("native", 4, fun () -> Multicore.Mc_tas.native ());
      (* the raw duel is a 2-process object *)
      ("le2", 2, fun () -> Multicore.Mc_tas.of_le2 ());
      ("tournament", 4, fun () -> Multicore.Mc_tas.of_tournament ~n:4);
      ("sift", 4, fun () -> Multicore.Mc_tas.of_sift ~n:4);
      ("elim", 4, fun () -> Multicore.Mc_tas.of_elim ~n:4);
      ("rr-lean", 4, fun () -> Multicore.Mc_tas.of_rr_lean ~n:4);
    ];
  pr "@.Run the `bechamel` subcommand for statistically sound single-op costs.@."

(* {1 E11 — Adversary-class separations} *)

let run_e11 () =
  header
    "E11  Adversary classes - which GroupElect survives which adversary";
  pr "One GroupElect round, k = 64: mean number elected (lower is better).@.";
  pr "%-22s %12s %14s %14s@." "adversary (class)" "fig-1 (2.2)" "sifting (2.3)"
    "bound";
  line ();
  let k = 64 in
  let measure make adv =
    avg_runs ~trials:100 (fun seed ->
        let mem = Sim.Memory.create () in
        let ge : Groupelect.Ge.t = make mem in
        let sched =
          Sim.Sched.create ~seed:(derive seed ~stream:1)
            (Array.init k (fun _ ctx ->
                 if ge.Groupelect.Ge.elect ctx then 1 else 0))
        in
        Sim.Sched.run sched (adv seed);
        float_of_int
          (Array.fold_left
             (fun a r -> if r = Some 1 then a + 1 else a)
             0 (Sim.Sched.results sched)))
  in
  (* Name the objects with the chain's ".ge[level]" convention so the
     location-aware attacks can aim at them. *)
  let fig1 mem = Groupelect.Ge_logstar.create ~name:"x.ge[0]" mem ~n:64 in
  let sift mem =
    Groupelect.Ge_sift.create ~name:"x.ge[0]" mem
      ~write_prob:(1.0 /. sqrt (float_of_int k))
  in
  let rows =
    [
      ( "random (oblivious)",
        fun s -> Sim.Adversary.random_oblivious ~seed:(derive s ~stream:1) );
      ("read-priority (loc-obl)", fun _ -> Leaderelect.Attacks.read_priority ());
      ( "ascending-loc (rw-obl)",
        fun _ -> Leaderelect.Attacks.ascending_location_rw () );
      ( "ascending-loc (adaptive)",
        fun _ -> Leaderelect.Attacks.ascending_location () );
    ]
  in
  let bound = (2.0 *. log2 (float_of_int k)) +. 6.0 in
  List.iter
    (fun (name, adv) ->
      pr "%-22s %12.1f %14.1f %14.1f@." name (measure fig1 adv)
        (measure sift adv) bound)
    rows;
  pr
    "@.Shape check: fig-1 stays under its bound for oblivious and@.\
     location-oblivious adversaries but is blown up to ~k by any adversary@.\
     that sees pending locations; sifting resists those but is blown up by@.\
     the location-oblivious read-priority adversary. This is the paper's@.\
     separation between the two adversary models.@."

(* {1 E12 — Ablations of the design choices} *)

let run_e12 () =
  header "E12  Ablations";
  (* (a) log* cutoff: how many real GroupElect levels are needed? *)
  pr "(a) log* algorithm: cutoff of real (non-dummy) GroupElect levels@.";
  pr "%10s %14s %12s@." "cutoff" "avg max steps" "registers";
  line ();
  let n = 1024 in
  List.iter
    (fun cutoff ->
      let regs = ref 0 in
      let steps =
        avg_runs ~trials:15 (fun seed ->
            let mem = Sim.Memory.create () in
            let le = Leaderelect.Le_logstar.create ~cutoff mem ~n in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                (Array.init n (fun _ ctx ->
                     if Leaderelect.Le_logstar.elect le ctx then 1 else 0))
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
            regs := Sim.Memory.allocated mem;
            float_of_int (Sim.Sched.max_steps sched))
      in
      pr "%10d %14.1f %12d@." cutoff steps !regs)
    [ 1; 2; 3; 5; 10; 30 ];
  pr "@.(b) lean RatRace: elimination-path length factor (paper uses 4 log n)@.";
  pr "%10s %14s %12s@." "factor" "avg max steps" "registers";
  line ();
  (* Vary the path length by constructing paths manually around the
     primary tree: approximate by scaling n in path_length via custom
     construction — here we measure the paper's configuration against a
     backup-only configuration (factor 0 = everyone who falls off goes
     straight to the length-n path). *)
  List.iter
    (fun use_paths ->
      let regs = ref 0 in
      let steps =
        avg_runs ~trials:15 (fun seed ->
            let mem = Sim.Memory.create () in
            let k = 256 in
            let elect =
              if use_paths then begin
                let rr = Ratrace.Ratrace_lean.create mem ~n:k in
                Ratrace.Ratrace_lean.elect rr
              end
              else begin
                (* Ablated: tree + single backup path only. *)
                let tree = Ratrace.Primary_tree.create mem ~height:8 in
                let backup = Ratrace.Elim_path.create mem ~length:k in
                let top = Primitives.Le2.create mem in
                fun ctx ->
                  match Ratrace.Primary_tree.run tree ctx with
                  | Ratrace.Primary_tree.Won ->
                      Primitives.Le2.elect top ctx ~port:0
                  | Ratrace.Primary_tree.Lost -> false
                  | Ratrace.Primary_tree.Fell_off _ -> (
                      match Ratrace.Elim_path.run backup ctx with
                      | Ratrace.Elim_path.Won ->
                          Primitives.Le2.elect top ctx ~port:1
                      | Ratrace.Elim_path.Lost -> false
                      | Ratrace.Elim_path.Fell_off ->
                          failwith "backup overflow")
              end
            in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                (Array.init 256 (fun _ ctx -> if elect ctx then 1 else 0))
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
            regs := Sim.Memory.allocated mem;
            float_of_int (Sim.Sched.max_steps sched))
      in
      pr "%10s %14.1f %12d@."
        (if use_paths then "4 log n" else "none")
        steps !regs)
    [ true; false ];
  pr
    "    (average-case steps barely differ: the paths exist for the@.\
     \     adaptive-adversary w.h.p. bound of Claim 3.2, not the mean)@.";
  pr "@.(c) 2-process duel: win threshold (the -3 is load-bearing)@.";
  pr "%10s %16s@." "threshold" "avg max steps";
  line ();
  (* Only the safe -3 is runnable as-is (the -2 variant is unsafe; its
     violation is demonstrated by the model checker in the test suite);
     here we measure -3 against -4 and -5 to show the cost of slack. *)
  List.iter
    (fun thr ->
      let steps =
        avg_runs ~trials:400 (fun seed ->
            let mem = Sim.Memory.create () in
            let a = Sim.Register.create mem and b = Sim.Register.create mem in
            let duel port ctx =
              let mine, other = if port = 0 then (a, b) else (b, a) in
              let rec loop pos =
                let o = Sim.Ctx.read ctx other in
                if o >= pos + 2 then 0
                else if o <= pos - thr then 1
                else begin
                  let pos' =
                    pos + (if Sim.Ctx.flip_bool ctx then 1 else 0)
                  in
                  if pos' > pos then Sim.Ctx.write ctx mine pos';
                  loop pos'
                end
              in
              loop 0
            in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                [| duel 0; duel 1 |]
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:2));
            float_of_int (Sim.Sched.max_steps sched))
      in
      pr "%10d %16.1f@." thr steps)
    [ 3; 4; 5 ]

(* {1 E13 — Extension: randomized consensus, the conclusion's mirror} *)

let run_e13 () =
  header
    "E13  Extension - conciliator/adopt-commit consensus vs the oblivious \
     adversary";
  pr "%8s %14s %14s %16s@." "k" "avg max steps" "p95 steps" "agreement rate";
  line ();
  List.iter
    (fun k ->
      let trials = scaled 60 in
      let per_trial =
        Engine.run ~domains:!domains ~trials ~seed:base_seed
          (fun ~trial:_ ~seed ->
            let mem = Sim.Memory.create () in
            let c = Consensus.Consensus_n.create mem ~n:k in
            let sched =
              Sim.Sched.create ~seed:(derive seed ~stream:0)
                (Array.init k (fun i ctx ->
                     Consensus.Consensus_n.propose c ctx (i land 1)))
            in
            Sim.Sched.run sched
              (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
            let outs = Array.map Option.get (Sim.Sched.results sched) in
            ( float_of_int (Sim.Sched.max_steps sched),
              Array.for_all (fun v -> v = outs.(0)) outs ))
      in
      let s = Sim.Stats.summarize_array (Array.map fst per_trial) in
      let agreements =
        Array.fold_left (fun a (_, ok) -> if ok then a + 1 else a) 0 per_trial
      in
      pr "%8d %14.1f %14.1f %15d%%@." k s.Sim.Stats.mean s.Sim.Stats.p95
        (100 * agreements / trials))
    [ 2; 4; 16; 64; 256 ];
  pr
    "@.Agreement must be 100%% at every k (it is deterministic via the@.\
     adopt-commit layer); the step columns show O(1) expected conciliator@.\
     rounds against the oblivious adversary.@."

(* {1 E14 — RMR complexity (the GHW [11] cost measure)} *)

let run_e14 () =
  header "E14  RMR complexity (cache-coherent model) - max RMRs vs k";
  pr "%-16s %10s %10s %10s@." "algorithm" "k=16" "k=64" "k=256";
  line ();
  let measure make k =
    avg_runs ~trials:15 (fun seed ->
        let mem = Sim.Memory.create () in
        let le = make mem ~n:256 in
        let sched =
          Sim.Sched.create ~seed:(derive seed ~stream:0)
            (Leaderelect.Le.programs le ~k)
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
        float_of_int (Sim.Sched.max_rmrs sched))
  in
  List.iter
    (fun (name, make) ->
      pr "%-16s %10.1f %10.1f %10.1f@." name (measure make 16) (measure make 64)
        (measure make 256))
    [
      ("log*", Leaderelect.Le_logstar.make);
      ("loglog", Leaderelect.Le_loglog.make);
      ("ratrace-lean", Leaderelect.Rr_le.make_lean);
      ("tournament", Leaderelect.Tournament.make);
    ];
  pr
    "@.RMRs track steps for these one-shot algorithms (few re-reads), so@.\
     the step hierarchy carries over to the RMR cost measure of Golab,@.\
     Hendler and Woelfel's O(1)-RMR leader election [11].@."

(* {1 Perf sweep — the machine-readable speedup benchmark}

   A reduced E1/E2-style workload: each trial runs one Figure-1
   GroupElect round and one log* election, both at k = 64. Trials
   return exact integer outcomes so callers can check that different
   domain counts produce bit-identical per-trial results.

   The trial hot path is allocation-lean: each worker builds its two
   simulated systems (memory arenas, algorithm structures — thousands of
   registers with formatted debug names — schedulers, program arrays)
   {e once}, in [make_perf_arena], and every trial merely resets and
   reruns them. [Sim.Memory.reset] restores every register,
   [Sim.Sched.reset] restores the scheduler in place, so a reused trial
   is bit-identical to one on freshly built structures (pinned by
   test_engine.ml's reuse-vs-fresh test). *)

type perf_arena = {
  ge_mem : Sim.Memory.t;
  ge_progs : (Sim.Ctx.t -> int) array;
  ge_sched : Sim.Sched.t;
  le_mem : Sim.Memory.t;
  le_progs : (Sim.Ctx.t -> int) array;
  le_sched : Sim.Sched.t;
}

let perf_n = 512
let perf_k = 64

let make_perf_arena () =
  let ge_mem = Sim.Memory.create () in
  let ge = Groupelect.Ge_logstar.create ge_mem ~n:perf_n in
  let ge_progs =
    Array.init perf_k (fun _ ctx ->
        if ge.Groupelect.Ge.elect ctx then 1 else 0)
  in
  let ge_sched = Sim.Sched.create ge_progs in
  let le_mem = Sim.Memory.create () in
  let le = Leaderelect.Le_logstar.make le_mem ~n:perf_n in
  let le_progs = Leaderelect.Le.programs le ~k:perf_k in
  let le_sched = Sim.Sched.create le_progs in
  { ge_mem; ge_progs; ge_sched; le_mem; le_progs; le_sched }

(* One trial on a (possibly reused) arena: reset both systems to their
   freshly built state, then run them with the trial's derived seeds. *)
let perf_trial arena ~seed =
  Sim.Memory.reset arena.ge_mem;
  Sim.Sched.reset ~seed:(derive seed ~stream:0) arena.ge_sched arena.ge_progs;
  Sim.Sched.run arena.ge_sched
    (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:1));
  let elected = ref 0 in
  for pid = 0 to perf_k - 1 do
    if Sim.Sched.result arena.ge_sched pid = Some 1 then incr elected
  done;
  Sim.Memory.reset arena.le_mem;
  Sim.Sched.reset ~seed:(derive seed ~stream:2) arena.le_sched arena.le_progs;
  Sim.Sched.run arena.le_sched
    (Sim.Adversary.random_oblivious ~seed:(derive seed ~stream:3));
  (!elected, Sim.Sched.max_steps arena.le_sched)

type sweep_run = {
  sr_elected : int array;  (* per-trial GroupElect winners *)
  sr_steps : int array;  (* per-trial election max steps *)
  sr_workers : Engine.worker_stats array;
}

let sweep_results_equal a b =
  a.sr_elected = b.sr_elected && a.sr_steps = b.sr_steps

let perf_sweep ~domains ?chunk ~trials () =
  (* Into-style sinks: plain int arrays the trials write in place — the
     engine materialises no per-trial boxes at all. *)
  let sr_elected = Array.make trials 0 in
  let sr_steps = Array.make trials 0 in
  let sr_workers =
    Engine.run_into ~domains ?chunk ~trials ~seed:base_seed
      ~local:make_perf_arena
      (fun arena ~trial ~seed ->
        let elected, steps = perf_trial arena ~seed in
        sr_elected.(trial) <- elected;
        sr_steps.(trial) <- steps)
  in
  { sr_elected; sr_steps; sr_workers }

(* {1 The same perf workload compiled to the flat kernel}

   [flat_perf_trial] is [perf_trial] re-expressed over
   [Flatsim.Machine]: one GroupElect round ([Programs.ge_round]) and one
   log* election ([Programs.logstar]) at the same n, k and derive
   streams (0 GE schedule, 1 GE adversary, 2 LE schedule, 3 LE
   adversary). Because the flat kernel is bit-identical to the effect
   path (test_flatsim's differential suite), the two trials return the
   same [(elected, steps)] for every seed — [sweep_results_equal] across
   kernels is the bench's in-run integrity check, and the wall-clock
   ratio between the two sweeps is the kernel speedup the perf gate
   enforces. *)

type flat_perf_arena = {
  fge : Flatsim.Machine.t;
  fle : Flatsim.Machine.t;
}

let make_flat_perf_arena () =
  {
    fge =
      Flatsim.Machine.create ~procs:perf_k
        (Flatsim.Programs.ge_round ~n:perf_n);
    fle =
      Flatsim.Machine.create ~procs:perf_k
        (Flatsim.Programs.logstar ~n:perf_n);
  }

let flat_perf_trial arena ~seed =
  let open Flatsim in
  Machine.reset ~seed:(derive seed ~stream:0) arena.fge;
  Machine.run_random arena.fge ~seed:(derive seed ~stream:1);
  let elected = ref 0 in
  let results = arena.fge.Machine.results in
  for pid = 0 to perf_k - 1 do
    if Array.unsafe_get results pid = 1 then incr elected
  done;
  Machine.reset ~seed:(derive seed ~stream:2) arena.fle;
  Machine.run_random arena.fle ~seed:(derive seed ~stream:3);
  (!elected, Machine.max_steps arena.fle)

let flat_sweep ~domains ?chunk ~trials () =
  let sr_elected = Array.make trials 0 in
  let sr_steps = Array.make trials 0 in
  let sr_workers =
    Engine.run_into ~domains ?chunk ~trials ~seed:base_seed
      ~local:make_flat_perf_arena
      (fun arena ~trial ~seed ->
        let elected, steps = flat_perf_trial arena ~seed in
        sr_elected.(trial) <- elected;
        sr_steps.(trial) <- steps)
  in
  { sr_elected; sr_steps; sr_workers }

let all : (string * string * (unit -> unit)) list =
  [
    ("e1", "Lemma 2.2: GroupElect performance", run_e1);
    ("e2", "Theorem 2.3: log* election", run_e2);
    ("e3", "Section 2.3: sifting + loglog", run_e3);
    ("e4", "Section 3: lean RatRace steps", run_e4);
    ("e5", "Space table", run_e5);
    ("e6", "Theorem 4.1: combination", run_e6);
    ("e7", "Theorem 5.1: covering lower bound", run_e7);
    ("e8", "Theorem 6.1: 2-process lower bound", run_e8);
    ("e9", "Cross-algorithm comparison", run_e9);
    ("e10", "Multicore wall-clock", run_e10);
    ("e11", "Adversary-class separations", run_e11);
    ("e12", "Design ablations", run_e12);
    ("e13", "Extension: oblivious-adversary consensus", run_e13);
    ("e14", "RMR complexity", run_e14);
  ]
