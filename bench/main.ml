(* Benchmark & experiment driver.

   dune exec bench/main.exe                         -- every experiment table
   dune exec bench/main.exe -- e5 e8                -- selected experiments
   dune exec bench/main.exe -- --domains 4 e1       -- table runs on 4 domains
   dune exec bench/main.exe -- perf --domains 4     -- parallel speedup bench
   dune exec bench/main.exe -- bechamel             -- Bechamel microbenches

   Every run that executes experiments or the perf sweep also writes a
   machine-readable BENCH_results.json (override with --out FILE) so
   the perf trajectory of the repo can be tracked PR over PR; the
   schema is documented in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* {1 Bechamel microbenches: one per experiment table, measuring the
   core operation that the table sweeps} *)

let run_election ~algorithm ~n ~k seed =
  ignore
    (Rtas.Election.run ~seed ~algorithm ~n ~k
       ~adversary:
         (Sim.Adversary.random_oblivious
            ~seed:(Sim.Rng.derive seed ~stream:1))
       ())

let bench_tests =
  let counter = ref 0L in
  let next () =
    counter := Int64.add !counter 1L;
    !counter
  in
  [
    (* E1: one Figure-1 GroupElect round, k = 32. *)
    Test.make ~name:"e1/ge-logstar-round-k32"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           let ge = Groupelect.Ge_logstar.create mem ~n:4096 in
           let sched =
             Sim.Sched.create ~seed:(next ())
               (Array.init 32 (fun _ ctx ->
                    if ge.Groupelect.Ge.elect ctx then 1 else 0))
           in
           Sim.Sched.run sched (Sim.Adversary.round_robin ())));
    (* E2: a full log* election, k = 256. *)
    Test.make ~name:"e2/logstar-election-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"log*" ~n:256 ~k:256 (next ())));
    (* E3: a full loglog election, k = 256. *)
    Test.make ~name:"e3/loglog-election-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"loglog" ~n:256 ~k:256 (next ())));
    (* E4: a lean RatRace election, k = 256. *)
    Test.make ~name:"e4/ratrace-lean-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"ratrace-lean" ~n:256 ~k:256 (next ())));
    (* E5: allocation cost of the lean structure (space experiment). *)
    Test.make ~name:"e5/allocate-ratrace-lean-n1024"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           ignore (Ratrace.Ratrace_lean.create mem ~n:1024)));
    (* E6: a combined election, k = 64. *)
    Test.make ~name:"e6/combined-logstar-k64"
      (Staged.stage (fun () ->
           run_election ~algorithm:"combined-log*" ~n:64 ~k:64 (next ())));
    (* E7: the covering recurrence f over all k for n = 2^16. *)
    Test.make ~name:"e7/covering-f-n65536"
      (Staged.stage (fun () ->
           ignore (Lowerbound.Covering.f ~n:65536 (65536 - 4))));
    (* E8: one 2-process TAS duel under a fixed alternating schedule. *)
    Test.make ~name:"e8/tas-duel"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           let le = Primitives.Le2.create mem in
           let tas =
             Primitives.Tas.create mem ~elect:(fun ctx ->
                 Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
           in
           let sched =
             Sim.Sched.create ~seed:(next ())
               (Array.init 2 (fun _ ctx -> Primitives.Tas.apply tas ctx))
           in
           Sim.Sched.run sched (Sim.Adversary.round_robin ())));
    (* E9: tournament election, k = 256 (the O(log n) baseline). *)
    Test.make ~name:"e9/tournament-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"tournament" ~n:256 ~k:256 (next ())));
    (* E10: single-thread cost of a multicore TAS op (no domain spawn). *)
    Test.make ~name:"e10/mc-native-tas"
      (Staged.stage
         (let rng = Random.State.make [| 42 |] in
          fun () ->
            let tas = Multicore.Mc_tas.native () in
            ignore (Multicore.Mc_tas.apply tas rng ~slot:0)));
    Test.make ~name:"e10/mc-tournament-tas-solo"
      (Staged.stage
         (let rng = Random.State.make [| 43 |] in
          fun () ->
            let tas = Multicore.Mc_tas.of_tournament ~n:4 in
            ignore (Multicore.Mc_tas.apply tas rng ~slot:0)));
  ]

let run_bechamel () =
  Fmt.pr "@.== Bechamel microbenches (ns per run, OLS on monotonic clock) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"rtas" ~fmt:"%s/%s" bench_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then begin
        let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
        List.iter
          (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Fmt.pr "  %-42s %14.1f ns@." name est
            | _ -> Fmt.pr "  %-42s %14s@." name "n/a")
          (List.sort compare rows)
      end)
    merged

(* {1 BENCH_results.json}

   Hand-rolled emitter (no JSON dependency in the container): the
   schema is flat and fully under our control; see EXPERIMENTS.md. *)

type sweep_result = {
  workload : string;
  sw_kernel : string;  (* "flat" or "effect": which kernel was timed *)
  sw_trials : int;
  sw_domains : int;
  sw_domains_requested : int;
  sw_chunk : int;
  wall_s_domains_1 : float;
  wall_s : float;
  workers_domains_1 : Engine.worker_stats array;
  workers : Engine.worker_stats array;
  bit_identical : bool;
}

(* The in-run cross-kernel comparison: the same trials executed once on
   the flat kernel and once on the effect kernel, both at domains=1.
   [kc_outcomes_match] is the full per-trial outcome-vector equality —
   the bench-level differential check riding on every perf run. *)
type kernel_compare = {
  kc_trials : int;
  kc_flat_wall_s : float;
  kc_effect_wall_s : float;
  kc_outcomes_match : bool;
}

(* One point of the multi-domain scaling sweep (flat kernel). *)
type scaling_point = {
  sc_domains : int;
  sc_trials : int;
  sc_wall_s : float;
  sc_workers : Engine.worker_stats array;
}

let add_workers buf key (workers : Engine.worker_stats array) =
  let add = Buffer.add_string buf in
  add (Printf.sprintf "    \"%s\": [" key);
  Array.iteri
    (fun i (w : Engine.worker_stats) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "\n      {\"worker\": %d, \"trials\": %d, \"chunks\": %d, \
            \"minor_words\": %.0f, \"promoted_words\": %.0f, \
            \"major_words\": %.0f, \"minor_collections\": %d, \
            \"major_collections\": %d}"
           w.Engine.w_worker w.Engine.w_trials w.Engine.w_chunks
           w.Engine.w_minor_words w.Engine.w_promoted_words
           w.Engine.w_major_words w.Engine.w_minor_collections
           w.Engine.w_major_collections))
    workers;
  if Array.length workers > 0 then add "\n    ";
  add "]"

let total_minor_words (workers : Engine.worker_stats array) =
  Array.fold_left (fun a w -> a +. w.Engine.w_minor_words) 0.0 workers

type service_result = {
  svc_algorithm : string;
  svc_kernel : string;
  svc_events : string;  (* "wheel" or "heap": which engine was timed *)
  svc_clients : int;
  svc_wall_s : float;
  svc_report : Service.Report.t;
  svc_reproducible : bool;
}

(* The same overload workload run once per event engine: the headline
   wheel-vs-heap ratio the perf gate holds (scripts/perf_regress.sh).
   [wh_reports_match] is full report-JSON equality across engines. *)
type wheel_vs_heap = {
  wh_clients : int;
  wh_wheel_wall_s : float;
  wh_heap_wall_s : float;
  wh_reports_match : bool;
}

(* One point of the service scaling sweep (wheel engine, histogram
   latency): clients/s as the population grows 10k -> 1M. *)
type svc_scaling_point = {
  ss_clients : int;
  ss_wall_s : float;
  ss_completed : int;
  ss_p999 : float;
}

let write_json ~path ~domains ~domains_requested ~scale ~kernel ~experiments
    ~sweep ~compare ~scaling ~service ~wheel_vs_heap ~service_scaling =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "{\n";
  add "  \"schema_version\": 5,\n";
  add (Printf.sprintf "  \"domains\": %d,\n" domains);
  add (Printf.sprintf "  \"domains_requested\": %d,\n" domains_requested);
  add
    (Printf.sprintf "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  add (Printf.sprintf "  \"experiments_scale\": %.4f,\n" scale);
  add (Printf.sprintf "  \"kernel\": \"%s\",\n" kernel);
  add "  \"experiments\": [";
  List.iteri
    (fun i (id, wall_s) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\n    {\"id\": \"%s\", \"wall_s\": %.6f}" id wall_s))
    experiments;
  if experiments <> [] then add "\n  ";
  add "],\n";
  (match sweep with
  | None -> add "  \"parallel_sweep\": null"
  | Some s ->
      let per_sec wall = float_of_int s.sw_trials /. Float.max wall 1e-9 in
      let per_trial words =
        words /. float_of_int (max s.sw_trials 1)
      in
      add "  \"parallel_sweep\": {\n";
      add (Printf.sprintf "    \"workload\": \"%s\",\n" s.workload);
      add (Printf.sprintf "    \"kernel\": \"%s\",\n" s.sw_kernel);
      add (Printf.sprintf "    \"trials\": %d,\n" s.sw_trials);
      add (Printf.sprintf "    \"domains\": %d,\n" s.sw_domains);
      add
        (Printf.sprintf "    \"domains_requested\": %d,\n"
           s.sw_domains_requested);
      add (Printf.sprintf "    \"chunk\": %d,\n" s.sw_chunk);
      add (Printf.sprintf "    \"wall_s_domains_1\": %.6f,\n" s.wall_s_domains_1);
      add (Printf.sprintf "    \"wall_s\": %.6f,\n" s.wall_s);
      add
        (Printf.sprintf "    \"trials_per_sec_domains_1\": %.2f,\n"
           (per_sec s.wall_s_domains_1));
      add (Printf.sprintf "    \"trials_per_sec\": %.2f,\n" (per_sec s.wall_s));
      (* At domains=1 there is a single measured run, so the speedup is
         1.0 by definition — report exactly that instead of the ratio of
         two timings of the same code (scripts/perf_regress.sh checks
         the exact value). *)
      add
        (Printf.sprintf "    \"speedup_vs_domains_1\": %.4f,\n"
           (if s.sw_domains = 1 then 1.0
            else s.wall_s_domains_1 /. Float.max s.wall_s 1e-9));
      add
        (Printf.sprintf "    \"minor_words_per_trial_domains_1\": %.1f,\n"
           (per_trial (total_minor_words s.workers_domains_1)));
      add_workers buf "gc_domains_1" s.workers_domains_1;
      add ",\n";
      add_workers buf "gc" s.workers;
      add ",\n";
      (* Records that these numbers were measured with the Probe layer
         compiled into the hot path but no sink installed — the
         configuration the throughput gate doubles as an overhead gate
         for (scripts/perf_regress.sh). *)
      add
        (Printf.sprintf
           "    \"probe\": {\"compiled_in\": true, \"sink_installed\": %b},\n"
           (Obs.Probe.enabled ()));
      add (Printf.sprintf "    \"bit_identical\": %b\n" s.bit_identical);
      add "  }");
  (match compare with
  | None -> add ",\n  \"flat_vs_effect\": null"
  | Some c ->
      let per_sec wall = float_of_int c.kc_trials /. Float.max wall 1e-9 in
      add ",\n  \"flat_vs_effect\": {\n";
      add (Printf.sprintf "    \"trials\": %d,\n" c.kc_trials);
      add (Printf.sprintf "    \"flat_wall_s\": %.6f,\n" c.kc_flat_wall_s);
      add
        (Printf.sprintf "    \"flat_trials_per_sec\": %.2f,\n"
           (per_sec c.kc_flat_wall_s));
      add (Printf.sprintf "    \"effect_wall_s\": %.6f,\n" c.kc_effect_wall_s);
      add
        (Printf.sprintf "    \"effect_trials_per_sec\": %.2f,\n"
           (per_sec c.kc_effect_wall_s));
      add
        (Printf.sprintf "    \"speedup\": %.2f,\n"
           (c.kc_effect_wall_s /. Float.max c.kc_flat_wall_s 1e-9));
      add
        (Printf.sprintf "    \"outcomes_match\": %b\n" c.kc_outcomes_match);
      add "  }");
  (match scaling with
  | None -> add ",\n  \"scaling\": null"
  | Some points ->
      add ",\n  \"scaling\": [";
      List.iteri
        (fun i p ->
          if i > 0 then add ",";
          let minor = total_minor_words p.sc_workers in
          let minor_cols =
            Array.fold_left
              (fun a w -> a + w.Engine.w_minor_collections)
              0 p.sc_workers
          in
          let major_cols =
            Array.fold_left
              (fun a w -> a + w.Engine.w_major_collections)
              0 p.sc_workers
          in
          add
            (Printf.sprintf
               "\n    {\"domains\": %d, \"trials\": %d, \"wall_s\": %.6f, \
                \"trials_per_sec\": %.2f, \"minor_words_per_trial\": %.1f, \
                \"minor_collections\": %d, \"major_collections\": %d}"
               p.sc_domains p.sc_trials p.sc_wall_s
               (float_of_int p.sc_trials /. Float.max p.sc_wall_s 1e-9)
               (minor /. float_of_int (max p.sc_trials 1))
               minor_cols major_cols))
        points;
      if points <> [] then add "\n  ";
      add "]");
  (match service with
  | None -> ()
  | Some s ->
      let r = s.svc_report in
      let c = r.Service.Report.counts in
      add ",\n  \"service\": {\n";
      add (Printf.sprintf "    \"algorithm\": \"%s\",\n" s.svc_algorithm);
      add (Printf.sprintf "    \"kernel\": \"%s\",\n" s.svc_kernel);
      add (Printf.sprintf "    \"events\": \"%s\",\n" s.svc_events);
      add (Printf.sprintf "    \"clients\": %d,\n" s.svc_clients);
      add (Printf.sprintf "    \"wall_s\": %.6f,\n" s.svc_wall_s);
      add
        (Printf.sprintf "    \"clients_per_sec\": %.2f,\n"
           (float_of_int c.Service.Report.completed
           /. Float.max s.svc_wall_s 1e-9));
      add
        (Printf.sprintf "    \"completed\": %d,\n" c.Service.Report.completed);
      add
        (Printf.sprintf "    \"throughput_per_ktick\": %.6f,\n"
           r.Service.Report.throughput);
      (match r.Service.Report.latency with
      | Some l ->
          add
            (Printf.sprintf "    \"p99_ticks\": %.3f,\n"
               l.Service.Report.l_p99)
      | None -> add "    \"p99_ticks\": null,\n");
      add
        (Printf.sprintf "    \"reproducible\": %b\n" s.svc_reproducible);
      add "  }");
  (match wheel_vs_heap with
  | None -> add ",\n  \"wheel_vs_heap\": null"
  | Some w ->
      add ",\n  \"wheel_vs_heap\": {\n";
      add (Printf.sprintf "    \"clients\": %d,\n" w.wh_clients);
      add (Printf.sprintf "    \"wheel_wall_s\": %.6f,\n" w.wh_wheel_wall_s);
      add (Printf.sprintf "    \"heap_wall_s\": %.6f,\n" w.wh_heap_wall_s);
      add
        (Printf.sprintf "    \"speedup\": %.4f,\n"
           (w.wh_heap_wall_s /. Float.max w.wh_wheel_wall_s 1e-9));
      add
        (Printf.sprintf "    \"reports_match\": %b\n" w.wh_reports_match);
      add "  }");
  (match service_scaling with
  | None -> add ",\n  \"service_scaling\": null"
  | Some points ->
      add ",\n  \"service_scaling\": [";
      List.iteri
        (fun i p ->
          if i > 0 then add ",";
          add
            (Printf.sprintf
               "\n    {\"clients\": %d, \"wall_s\": %.6f, \
                \"clients_per_sec\": %.2f, \"completed\": %d, \
                \"p999_ticks\": %.3f}"
               p.ss_clients p.ss_wall_s
               (float_of_int p.ss_clients /. Float.max p.ss_wall_s 1e-9)
               p.ss_completed p.ss_p999))
        points;
      if points <> [] then add "\n  ";
      add "]");
  add "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %s@." path

(* {1 The perf sweep: wall-clock speedup of the parallel trial engine} *)

let resolve_bench_domains ~exact requested =
  let recommended = Domain.recommended_domain_count () in
  if exact || requested <= recommended then requested
  else begin
    Fmt.epr
      "perf: clamping --domains %d to the recommended %d (results are \
       identical either way; pass --exact-domains to overcommit anyway)@."
      requested recommended;
    recommended
  end

let pp_workers label (workers : Engine.worker_stats array) =
  Array.iter
    (fun (w : Engine.worker_stats) ->
      Fmt.pr
        "  %s worker %d: %d trials in %d chunks, minor %.2fM words, major \
         %.2fM words, %d minor / %d major collections@."
        label w.Engine.w_worker w.Engine.w_trials w.Engine.w_chunks
        (w.Engine.w_minor_words /. 1e6)
        (w.Engine.w_major_words /. 1e6)
        w.Engine.w_minor_collections w.Engine.w_major_collections)
    workers

let run_perf ~kernel ~domains_requested ~exact ~trials ~scale ~out () =
  let domains = resolve_bench_domains ~exact domains_requested in
  let kernel_name =
    match kernel with `Flat -> "flat" | `Effect -> "effect"
  in
  Fmt.pr "== Parallel trial engine: reduced E1/E2 sweep, %d trials, %s kernel ==@."
    trials kernel_name;
  (* Adaptive chunking, calibrated per kernel: size chunks off one timed
     calibration trial so a chunk costs ~10ms regardless of how fast the
     workload gets. Both kernels get a chunk because both get timed (the
     primary sweep on [kernel], the cross-kernel comparison on the
     other). *)
  let flat_chunk =
    let arena = Experiments.make_flat_perf_arena () in
    Engine.calibrated_chunk ~domains ~trials (fun () ->
        ignore
          (Experiments.flat_perf_trial arena
             ~seed:(Sim.Rng.derive Experiments.base_seed ~stream:0)))
  in
  let effect_chunk =
    let arena = Experiments.make_perf_arena () in
    Engine.calibrated_chunk ~domains ~trials (fun () ->
        ignore
          (Experiments.perf_trial arena
             ~seed:(Sim.Rng.derive Experiments.base_seed ~stream:0)))
  in
  let sweep_of = function
    | `Flat -> fun ~domains ~trials () ->
        Experiments.flat_sweep ~domains ~chunk:flat_chunk ~trials ()
    | `Effect -> fun ~domains ~trials () ->
        Experiments.perf_sweep ~domains ~chunk:effect_chunk ~trials ()
  in
  let chunk =
    match kernel with `Flat -> flat_chunk | `Effect -> effect_chunk
  in
  Fmt.pr "  calibrated chunk: %d trials (%s kernel)@." chunk kernel_name;
  let primary = sweep_of kernel in
  (* Untimed warmup pass: the first run of a sweep pays page faults and
     cold predictors (measurably ~20% on the flat kernel), which would
     skew both the domains=1 figure and the kernel comparison below. *)
  ignore (primary ~domains:1 ~trials ());
  let r1, t1 = Engine.timed (fun () -> primary ~domains:1 ~trials ()) in
  Fmt.pr "  domains=1: %.3fs (%.1f trials/s)@." t1 (float_of_int trials /. t1);
  (* At domains=1 the domains=n run would be the same measured code
     path run twice: reuse the single run and report speedup exactly
     1.0 (satellite of ISSUE 7; checked by scripts/perf_regress.sh). *)
  let rn, tn, bit_identical =
    if domains = 1 then (r1, t1, true)
    else begin
      let rn, tn = Engine.timed (fun () -> primary ~domains ~trials ()) in
      Fmt.pr "  domains=%d: %.3fs (%.1f trials/s)@." domains tn
        (float_of_int trials /. tn);
      (rn, tn, Experiments.sweep_results_equal r1 rn)
    end
  in
  Fmt.pr "  per-trial results bit-identical across domain counts: %b@."
    bit_identical;
  Fmt.pr "  speedup vs domains=1: %.2fx@."
    (if domains = 1 then 1.0 else t1 /. Float.max tn 1e-9);
  pp_workers "gc" rn.Experiments.sr_workers;
  if not bit_identical then begin
    Fmt.epr "perf: determinism violation — results differ across domains@.";
    exit 1
  end;
  (* Cross-kernel comparison: run the same trials on the other kernel
     (domains=1) and require the full per-trial outcome vectors to
     match — the bench-level flat-vs-effect differential. *)
  let other = match kernel with `Flat -> `Effect | `Effect -> `Flat in
  (* Time each kernel as the min of 3 repetitions (first rep doubles
     as the other kernel's warmup): min-of-N is the noise-robust
     estimator on a contended host, and both sides get the identical
     treatment so the ratio is fair. *)
  let timed_min f =
    let best = ref infinity and res = ref None in
    for _ = 1 to 3 do
      let r, w = Engine.timed f in
      if w < !best then best := w;
      res := Some r
    done;
    (Option.get !res, !best)
  in
  let ro, to_ = timed_min (fun () -> (sweep_of other) ~domains:1 ~trials ()) in
  let _, t1_min = timed_min (fun () -> primary ~domains:1 ~trials ()) in
  let outcomes_match = Experiments.sweep_results_equal r1 ro in
  let kc_flat_wall_s, kc_effect_wall_s =
    match kernel with `Flat -> (t1_min, to_) | `Effect -> (to_, t1_min)
  in
  Fmt.pr "  flat vs effect (domains=1): %.3fs vs %.3fs (%.1fx), outcomes match: %b@."
    kc_flat_wall_s kc_effect_wall_s
    (kc_effect_wall_s /. Float.max kc_flat_wall_s 1e-9)
    outcomes_match;
  if not outcomes_match then begin
    Fmt.epr
      "perf: kernel divergence — flat and effect outcome vectors differ@.";
    exit 1
  end;
  let compare =
    { kc_trials = trials; kc_flat_wall_s; kc_effect_wall_s;
      kc_outcomes_match = outcomes_match }
  in
  (* Multi-domain scaling sweep, always on the flat kernel: one timed
     point per domain count from 1 to the resolved pool width. *)
  Fmt.pr "@.== Flat-kernel scaling sweep (1..%d domains) ==@." domains;
  let scaling =
    List.init domains (fun i ->
        let d = i + 1 in
        let r, w =
          Engine.timed (fun () ->
              Experiments.flat_sweep ~domains:d ~chunk:flat_chunk ~trials ())
        in
        Fmt.pr "  domains=%d: %.3fs (%.1f trials/s)@." d w
          (float_of_int trials /. Float.max w 1e-9);
        { sc_domains = d; sc_trials = trials; sc_wall_s = w;
          sc_workers = r.Experiments.sr_workers })
  in
  (* Time every experiment family (at --scale, so the whole trajectory
     stays regression-guarded without hour-long runs). *)
  Experiments.domains := domains;
  Experiments.scale := scale;
  Fmt.pr "@.== Experiment families (scale %.2f) ==@." scale;
  let experiments =
    List.map
      (fun (id, _, run) ->
        let (), wall = Engine.timed run in
        (id, wall))
      Experiments.all
  in
  Fmt.pr "@.== Family wall-clock (scale %.2f) ==@." scale;
  List.iter (fun (id, wall) -> Fmt.pr "  %-5s %8.3fs@." id wall) experiments;
  (* The lock-service workload, run twice with one seed: the wall clock
     feeds the perf gate's clients_per_sec floor and the JSON equality
     of the two runs feeds its exact reproducibility check. *)
  let svc_cfg =
    {
      (Service.Driver.default ~algorithm:"log*") with
      Service.Driver.clients = 2000;
      kernel;
      seed = 42L;
    }
  in
  let svc_r1, svc_wall = Engine.timed (fun () -> Service.Driver.run svc_cfg) in
  let svc_r2 = Service.Driver.run svc_cfg in
  let svc_reproducible =
    Service.Report.to_json svc_r1 = Service.Report.to_json svc_r2
  in
  Fmt.pr "@.== Lock service (sim, %s kernel, %d clients) ==@." kernel_name
    svc_cfg.Service.Driver.clients;
  Fmt.pr "  %.3fs wall (%.0f clients/s), reproducible: %b@." svc_wall
    (float_of_int svc_r1.Service.Report.counts.Service.Report.completed
    /. Float.max svc_wall 1e-9)
    svc_reproducible;
  if not svc_reproducible then begin
    Fmt.epr "perf: service determinism violation — reruns differ@.";
    exit 1
  end;
  (* Wheel vs heap on the event-dominated workload: sustained overload
     (Poisson 20/tick onto 4 keys, queues capped at 16, backoff capped
     at 256 ticks so clients keep bouncing) with client-side retry, so
     nearly every event is a cheap backoff timer and the event engine
     is the bottleneck — elections are five orders of magnitude rarer
     than timer events (~44 against ~22M). min-of-2 per engine; the
     reports must match byte for byte (the engines share one total
     event order). *)
  let overload clients =
    {
      (Service.Driver.default ~algorithm:"tournament") with
      Service.Driver.clients;
      keys = 4;
      zipf_s = 0.0;
      arrival = Service.Arrival.Poisson { rate = 20.0 };
      backoff = Service.Backoff.Exp { base = 8.0; cap = 256.0 };
      contenders = 2;
      max_waiters = 16;
      hold = 2000.0;
      on_shed = `Retry;
      kernel = `Flat;
      latency = `Hist;
      seed = 42L;
    }
  in
  let timed_min2 cfg =
    let r1, w1 = Engine.timed (fun () -> Service.Driver.run cfg) in
    let _, w2 = Engine.timed (fun () -> Service.Driver.run cfg) in
    (r1, Float.min w1 w2)
  in
  let gate_cfg = overload 100_000 in
  Fmt.pr "@.== Event engine: wheel vs heap (%d clients, overload + retry) ==@."
    gate_cfg.Service.Driver.clients;
  let wh_r, wh_wall = timed_min2 gate_cfg in
  let hp_r, hp_wall =
    timed_min2 { gate_cfg with Service.Driver.events = `Heap }
  in
  let wh_match =
    Service.Report.to_json wh_r = Service.Report.to_json hp_r
  in
  Fmt.pr "  wheel %.3fs, heap %.3fs: %.2fx, reports match: %b@." wh_wall
    hp_wall
    (hp_wall /. Float.max wh_wall 1e-9)
    wh_match;
  if not wh_match then begin
    Fmt.epr "perf: event-engine divergence — wheel and heap reports differ@.";
    exit 1
  end;
  (* Service scaling: clients/s as the population grows 10k -> 1M under
     moderate overload (most arrivals shed terminally, ~17% complete),
     wheel engine, bounded-memory histogram latency. *)
  let scaling_cfg clients =
    {
      (Service.Driver.default ~algorithm:"tournament") with
      Service.Driver.clients;
      keys = 256;
      zipf_s = 0.5;
      arrival = Service.Arrival.Poisson { rate = 20.0 };
      backoff = Service.Backoff.Exp { base = 8.0; cap = 512.0 };
      contenders = 2;
      max_waiters = 32;
      hold = 50.0;
      kernel = `Flat;
      latency = `Hist;
      seed = 42L;
    }
  in
  Fmt.pr "@.== Service scaling (wheel engine, histogram latency) ==@.";
  let service_scaling =
    List.map
      (fun clients ->
        let r, w =
          Engine.timed (fun () -> Service.Driver.run (scaling_cfg clients))
        in
        let p999 =
          match r.Service.Report.latency with
          | Some l -> l.Service.Report.l_p999
          | None -> 0.0
        in
        Fmt.pr "  %8d clients: %.3fs (%.0f clients/s), p999 %.0f ticks@."
          clients w
          (float_of_int clients /. Float.max w 1e-9)
          p999;
        {
          ss_clients = clients;
          ss_wall_s = w;
          ss_completed = r.Service.Report.counts.Service.Report.completed;
          ss_p999 = p999;
        })
      [ 10_000; 100_000; 1_000_000 ]
  in
  write_json ~path:out ~domains ~domains_requested ~scale ~kernel:kernel_name
    ~experiments
    ~service:
      (Some
         {
           svc_algorithm = "log*";
           svc_kernel = kernel_name;
           svc_events = "wheel";
           svc_clients = svc_cfg.Service.Driver.clients;
           svc_wall_s = svc_wall;
           svc_report = svc_r1;
           svc_reproducible;
         })
    ~wheel_vs_heap:
      (Some
         {
           wh_clients = gate_cfg.Service.Driver.clients;
           wh_wheel_wall_s = wh_wall;
           wh_heap_wall_s = hp_wall;
           wh_reports_match = wh_match;
         })
    ~service_scaling:(Some service_scaling)
    ~compare:(Some compare) ~scaling:(Some scaling)
    ~sweep:
      (Some
         {
           workload = "e1e2-reduced";
           sw_kernel = kernel_name;
           sw_trials = trials;
           sw_domains = domains;
           sw_domains_requested = domains_requested;
           sw_chunk = chunk;
           wall_s_domains_1 = t1;
           wall_s = tn;
           workers_domains_1 = r1.Experiments.sr_workers;
           workers = rn.Experiments.sr_workers;
           bit_identical;
         })

let run_tables ~domains ~out ids =
  Experiments.domains := domains;
  let chosen =
    match ids with
    | [] -> Experiments.all
    | ids ->
        List.map
          (fun id ->
            match
              List.find_opt (fun (i, _, _) -> i = id) Experiments.all
            with
            | Some e -> e
            | None ->
                Fmt.epr "unknown experiment %S; try `list`@." id;
                exit 1)
          ids
  in
  let timed =
    List.map
      (fun (id, _, run) ->
        let (), wall = Engine.timed run in
        (id, wall))
      chosen
  in
  write_json ~path:out ~domains ~domains_requested:domains ~scale:1.0
    ~kernel:"effect" ~experiments:timed ~sweep:None ~compare:None
    ~scaling:None ~service:None ~wheel_vs_heap:None ~service_scaling:None

let usage () =
  Fmt.pr
    "usage: main.exe [--domains N] [--out FILE] [ids...]@.\
    \       main.exe perf [--domains N] [--exact-domains] [--trials T]@.\
    \                     [--scale S] [--kernel flat|effect] [--out FILE]@.\
    \       main.exe bechamel | list@."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let domains = ref (Engine.default_domains ()) in
  let out = ref "BENCH_results.json" in
  let trials = ref 400 in
  let scale = ref 0.05 in
  let exact = ref false in
  let kernel = ref `Flat in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 ->
            domains := d;
            parse acc rest
        | _ ->
            Fmt.epr "--domains expects a positive integer@.";
            exit 1)
    | "--exact-domains" :: rest ->
        exact := true;
        parse acc rest
    | "--kernel" :: v :: rest -> (
        match v with
        | "flat" ->
            kernel := `Flat;
            parse acc rest
        | "effect" ->
            kernel := `Effect;
            parse acc rest
        | _ ->
            Fmt.epr "--kernel expects flat or effect@.";
            exit 1)
    | "--out" :: v :: rest ->
        out := v;
        parse acc rest
    | "--trials" :: v :: rest -> (
        match int_of_string_opt v with
        | Some t when t >= 1 ->
            trials := t;
            parse acc rest
        | _ ->
            Fmt.epr "--trials expects a positive integer@.";
            exit 1)
    | "--scale" :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s > 0.0 && s <= 1.0 ->
            scale := s;
            parse acc rest
        | _ ->
            Fmt.epr "--scale expects a float in (0, 1]@.";
            exit 1)
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | a :: rest -> parse (a :: acc) rest
  in
  match parse [] args with
  | [ "perf" ] ->
      run_perf ~kernel:!kernel ~domains_requested:!domains ~exact:!exact
        ~trials:!trials ~scale:!scale ~out:!out ()
  | [ "bechamel" ] -> run_bechamel ()
  | [ "list" ] ->
      List.iter (fun (id, doc, _) -> Fmt.pr "%-5s %s@." id doc) Experiments.all;
      Fmt.pr "%-5s %s@." "bechamel" "Bechamel microbenches";
      Fmt.pr "%-5s %s@." "perf" "Parallel engine speedup sweep (writes JSON)"
  | [] ->
      run_tables ~domains:!domains ~out:!out [];
      run_bechamel ()
  | ids when List.mem "bechamel" ids ->
      let tables = List.filter (fun id -> id <> "bechamel") ids in
      if tables <> [] then run_tables ~domains:!domains ~out:!out tables;
      run_bechamel ()
  | ids -> run_tables ~domains:!domains ~out:!out ids
