(* Benchmark & experiment driver.

   dune exec bench/main.exe                         -- every experiment table
   dune exec bench/main.exe -- e5 e8                -- selected experiments
   dune exec bench/main.exe -- --domains 4 e1       -- table runs on 4 domains
   dune exec bench/main.exe -- perf --domains 4     -- parallel speedup bench
   dune exec bench/main.exe -- bechamel             -- Bechamel microbenches

   Every run that executes experiments or the perf sweep also writes a
   machine-readable BENCH_results.json (override with --out FILE) so
   the perf trajectory of the repo can be tracked PR over PR; the
   schema is documented in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

(* {1 Bechamel microbenches: one per experiment table, measuring the
   core operation that the table sweeps} *)

let run_election ~algorithm ~n ~k seed =
  ignore
    (Rtas.Election.run ~seed ~algorithm ~n ~k
       ~adversary:
         (Sim.Adversary.random_oblivious
            ~seed:(Sim.Rng.derive seed ~stream:1))
       ())

let bench_tests =
  let counter = ref 0L in
  let next () =
    counter := Int64.add !counter 1L;
    !counter
  in
  [
    (* E1: one Figure-1 GroupElect round, k = 32. *)
    Test.make ~name:"e1/ge-logstar-round-k32"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           let ge = Groupelect.Ge_logstar.create mem ~n:4096 in
           let sched =
             Sim.Sched.create ~seed:(next ())
               (Array.init 32 (fun _ ctx ->
                    if ge.Groupelect.Ge.elect ctx then 1 else 0))
           in
           Sim.Sched.run sched (Sim.Adversary.round_robin ())));
    (* E2: a full log* election, k = 256. *)
    Test.make ~name:"e2/logstar-election-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"log*" ~n:256 ~k:256 (next ())));
    (* E3: a full loglog election, k = 256. *)
    Test.make ~name:"e3/loglog-election-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"loglog" ~n:256 ~k:256 (next ())));
    (* E4: a lean RatRace election, k = 256. *)
    Test.make ~name:"e4/ratrace-lean-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"ratrace-lean" ~n:256 ~k:256 (next ())));
    (* E5: allocation cost of the lean structure (space experiment). *)
    Test.make ~name:"e5/allocate-ratrace-lean-n1024"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           ignore (Ratrace.Ratrace_lean.create mem ~n:1024)));
    (* E6: a combined election, k = 64. *)
    Test.make ~name:"e6/combined-logstar-k64"
      (Staged.stage (fun () ->
           run_election ~algorithm:"combined-log*" ~n:64 ~k:64 (next ())));
    (* E7: the covering recurrence f over all k for n = 2^16. *)
    Test.make ~name:"e7/covering-f-n65536"
      (Staged.stage (fun () ->
           ignore (Lowerbound.Covering.f ~n:65536 (65536 - 4))));
    (* E8: one 2-process TAS duel under a fixed alternating schedule. *)
    Test.make ~name:"e8/tas-duel"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           let le = Primitives.Le2.create mem in
           let tas =
             Primitives.Tas.create mem ~elect:(fun ctx ->
                 Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
           in
           let sched =
             Sim.Sched.create ~seed:(next ())
               (Array.init 2 (fun _ ctx -> Primitives.Tas.apply tas ctx))
           in
           Sim.Sched.run sched (Sim.Adversary.round_robin ())));
    (* E9: tournament election, k = 256 (the O(log n) baseline). *)
    Test.make ~name:"e9/tournament-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"tournament" ~n:256 ~k:256 (next ())));
    (* E10: single-thread cost of a multicore TAS op (no domain spawn). *)
    Test.make ~name:"e10/mc-native-tas"
      (Staged.stage
         (let rng = Random.State.make [| 42 |] in
          fun () ->
            let tas = Multicore.Mc_tas.native () in
            ignore (Multicore.Mc_tas.apply tas rng ~slot:0)));
    Test.make ~name:"e10/mc-tournament-tas-solo"
      (Staged.stage
         (let rng = Random.State.make [| 43 |] in
          fun () ->
            let tas = Multicore.Mc_tas.of_tournament ~n:4 in
            ignore (Multicore.Mc_tas.apply tas rng ~slot:0)));
  ]

let run_bechamel () =
  Fmt.pr "@.== Bechamel microbenches (ns per run, OLS on monotonic clock) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"rtas" ~fmt:"%s/%s" bench_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then begin
        let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
        List.iter
          (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Fmt.pr "  %-42s %14.1f ns@." name est
            | _ -> Fmt.pr "  %-42s %14s@." name "n/a")
          (List.sort compare rows)
      end)
    merged

(* {1 BENCH_results.json}

   Hand-rolled emitter (no JSON dependency in the container): the
   schema is flat and fully under our control; see EXPERIMENTS.md. *)

type sweep_result = {
  workload : string;
  sw_trials : int;
  sw_domains : int;
  wall_s_domains_1 : float;
  wall_s : float;
  bit_identical : bool;
}

let write_json ~path ~domains ~experiments ~sweep =
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "{\n";
  add "  \"schema_version\": 1,\n";
  add (Printf.sprintf "  \"domains\": %d,\n" domains);
  add
    (Printf.sprintf "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  add "  \"experiments\": [";
  List.iteri
    (fun i (id, wall_s) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\n    {\"id\": \"%s\", \"wall_s\": %.6f}" id wall_s))
    experiments;
  if experiments <> [] then add "\n  ";
  add "],\n";
  (match sweep with
  | None -> add "  \"parallel_sweep\": null\n"
  | Some s ->
      let per_sec wall = float_of_int s.sw_trials /. Float.max wall 1e-9 in
      add "  \"parallel_sweep\": {\n";
      add (Printf.sprintf "    \"workload\": \"%s\",\n" s.workload);
      add (Printf.sprintf "    \"trials\": %d,\n" s.sw_trials);
      add (Printf.sprintf "    \"domains\": %d,\n" s.sw_domains);
      add (Printf.sprintf "    \"wall_s_domains_1\": %.6f,\n" s.wall_s_domains_1);
      add (Printf.sprintf "    \"wall_s\": %.6f,\n" s.wall_s);
      add
        (Printf.sprintf "    \"trials_per_sec_domains_1\": %.2f,\n"
           (per_sec s.wall_s_domains_1));
      add (Printf.sprintf "    \"trials_per_sec\": %.2f,\n" (per_sec s.wall_s));
      add
        (Printf.sprintf "    \"speedup_vs_domains_1\": %.4f,\n"
           (s.wall_s_domains_1 /. Float.max s.wall_s 1e-9));
      add
        (Printf.sprintf "    \"bit_identical\": %b\n" s.bit_identical);
      add "  }\n");
  add "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "@.wrote %s@." path

(* {1 The perf sweep: wall-clock speedup of the parallel trial engine} *)

let run_perf ~domains ~trials ~out () =
  Fmt.pr "== Parallel trial engine: reduced E1/E2 sweep, %d trials ==@." trials;
  let r1, t1 =
    Engine.timed (fun () -> Experiments.perf_sweep ~domains:1 ~trials ())
  in
  Fmt.pr "  domains=1: %.3fs (%.1f trials/s)@." t1 (float_of_int trials /. t1);
  let rn, tn =
    Engine.timed (fun () -> Experiments.perf_sweep ~domains ~trials ())
  in
  Fmt.pr "  domains=%d: %.3fs (%.1f trials/s)@." domains tn
    (float_of_int trials /. tn);
  let bit_identical = r1 = rn in
  Fmt.pr "  per-trial results bit-identical across domain counts: %b@."
    bit_identical;
  Fmt.pr "  speedup vs domains=1: %.2fx@." (t1 /. Float.max tn 1e-9);
  if not bit_identical then begin
    Fmt.epr "perf: determinism violation — results differ across domains@.";
    exit 1
  end;
  write_json ~path:out ~domains ~experiments:[]
    ~sweep:
      (Some
         {
           workload = "e1e2-reduced";
           sw_trials = trials;
           sw_domains = domains;
           wall_s_domains_1 = t1;
           wall_s = tn;
           bit_identical;
         })

let run_tables ~domains ~out ids =
  Experiments.domains := domains;
  let chosen =
    match ids with
    | [] -> Experiments.all
    | ids ->
        List.map
          (fun id ->
            match
              List.find_opt (fun (i, _, _) -> i = id) Experiments.all
            with
            | Some e -> e
            | None ->
                Fmt.epr "unknown experiment %S; try `list`@." id;
                exit 1)
          ids
  in
  let timed =
    List.map
      (fun (id, _, run) ->
        let (), wall = Engine.timed run in
        (id, wall))
      chosen
  in
  write_json ~path:out ~domains ~experiments:timed ~sweep:None

let usage () =
  Fmt.pr
    "usage: main.exe [--domains N] [--out FILE] [ids...]@.\
    \       main.exe perf [--domains N] [--trials T] [--out FILE]@.\
    \       main.exe bechamel | list@."

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let domains = ref (Engine.default_domains ()) in
  let out = ref "BENCH_results.json" in
  let trials = ref 400 in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 ->
            domains := d;
            parse acc rest
        | _ ->
            Fmt.epr "--domains expects a positive integer@.";
            exit 1)
    | "--out" :: v :: rest ->
        out := v;
        parse acc rest
    | "--trials" :: v :: rest -> (
        match int_of_string_opt v with
        | Some t when t >= 1 ->
            trials := t;
            parse acc rest
        | _ ->
            Fmt.epr "--trials expects a positive integer@.";
            exit 1)
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | a :: rest -> parse (a :: acc) rest
  in
  match parse [] args with
  | [ "perf" ] -> run_perf ~domains:!domains ~trials:!trials ~out:!out ()
  | [ "bechamel" ] -> run_bechamel ()
  | [ "list" ] ->
      List.iter (fun (id, doc, _) -> Fmt.pr "%-5s %s@." id doc) Experiments.all;
      Fmt.pr "%-5s %s@." "bechamel" "Bechamel microbenches";
      Fmt.pr "%-5s %s@." "perf" "Parallel engine speedup sweep (writes JSON)"
  | [] ->
      run_tables ~domains:!domains ~out:!out [];
      run_bechamel ()
  | ids when List.mem "bechamel" ids ->
      let tables = List.filter (fun id -> id <> "bechamel") ids in
      if tables <> [] then run_tables ~domains:!domains ~out:!out tables;
      run_bechamel ()
  | ids -> run_tables ~domains:!domains ~out:!out ids
