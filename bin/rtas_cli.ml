(* Command-line driver: run a single election or TAS with a chosen
   algorithm, adversary, size and seed, and print the outcome.

   dune exec bin/rtas_cli.exe -- run --algorithm log* -n 64 -k 16
   dune exec bin/rtas_cli.exe -- list *)

open Cmdliner

let algorithm =
  let doc =
    Printf.sprintf "Algorithm to run; one of: %s."
      (String.concat ", " (Rtas.Registry.names ()))
  in
  Arg.(value & opt string "log*" & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc)

let n_arg =
  Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"System size (max processes).")

let k_arg =
  Arg.(value & opt int 16 & info [ "k" ] ~docv:"K" ~doc:"Participants (contention).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let adversary_arg =
  let doc =
    "Adversary: round-robin, random (oblivious), attack (adaptive \
     ascending-location), or crashy (random with crashes)."
  in
  Arg.(value & opt string "random" & info [ "adversary" ] ~docv:"ADV" ~doc)

let tas_arg =
  Arg.(value & flag & info [ "tas" ] ~doc:"Wrap the election as a test-and-set.")

let domains_arg =
  Arg.(
    value
    & opt int (Engine.default_domains ())
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Domains for the parallel trial engine (results are identical \
           for every value). Defaults to $(b,RTAS_DOMAINS) or the \
           recommended domain count.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")

(* Sub-seeds for the adversary are derived from the run seed on
   dedicated streams (1 = schedule randomness, 2 = crash randomness),
   matching the convention used throughout bench/experiments.ml. *)
let make_adversary name seed =
  match name with
  | "round-robin" -> Sim.Adversary.round_robin ()
  | "random" ->
      Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive seed ~stream:1)
  | "attack" -> Leaderelect.Attacks.ascending_location ()
  | "crashy" ->
      Sim.Adversary.random_crashes ~seed:(Sim.Rng.derive seed ~stream:2)
        ~crash_prob:0.02
        (Sim.Adversary.random_oblivious ~seed:(Sim.Rng.derive seed ~stream:1))
  | other -> failwith (Printf.sprintf "unknown adversary %S" other)

let run_cmd =
  let run algorithm n k seed adversary tas trace =
    let seed = Int64.of_int seed in
    let adv = make_adversary adversary seed in
    let outcome =
      if tas then
        Rtas.Election.run_tas ~seed ~adversary:adv ~algorithm ~n ~k ()
      else Rtas.Election.run ~seed ~adversary:adv ~algorithm ~n ~k ()
    in
    Fmt.pr "%a@." Rtas.Election.pp_outcome outcome;
    Fmt.pr "results: %a@."
      Fmt.(array ~sep:sp (option ~none:(any "-") int))
      outcome.Rtas.Election.results;
    if trace then
      List.iter
        (fun e -> Fmt.pr "%a@." Sim.Op.pp_event e)
        (Sim.Sched.trace outcome.Rtas.Election.sched)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one election (or TAS) and print the outcome.")
    Term.(
      const run $ algorithm $ n_arg $ k_arg $ seed_arg $ adversary_arg
      $ tas_arg $ trace_arg)

let list_cmd =
  let list () =
    List.iter
      (fun e ->
        Fmt.pr "%-16s %-30s %-22s %-12s (%s)@." e.Rtas.Registry.name
          e.Rtas.Registry.steps e.Rtas.Registry.space
          (Fmt.str "%a" Sim.Sched.pp_klass e.Rtas.Registry.adversary)
          e.Rtas.Registry.reference)
      Rtas.Registry.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the available algorithms and their bounds.")
    Term.(const list $ const ())

let sweep_cmd =
  let trials_arg =
    Arg.(value & opt int 20 & info [ "trials" ] ~docv:"T" ~doc:"Trials per point.")
  in
  let sweep algorithm n adversary trials seed domains =
    let recommended = Domain.recommended_domain_count () in
    if domains > recommended then
      Fmt.epr
        "sweep: --domains %d exceeds the host's recommended %d; the table is \
         identical either way, the extra domains only add overhead@."
        domains recommended;
    Fmt.pr "%8s %14s %12s %12s@." "k" "avg max steps" "avg rmrs" "registers";
    let rec points k acc = if k > n then List.rev acc else points (k * 4) (k :: acc) in
    List.iter
      (fun k ->
        (* Trials per point are independent: fan out over the engine.
           Trial seeds derive from the sweep seed, so the table is
           identical for every --domains value. *)
        let runs =
          Engine.run ~domains ~trials ~seed:(Int64.of_int seed)
            (fun ~trial:_ ~seed ->
              let o =
                Rtas.Election.run ~seed
                  ~adversary:(make_adversary adversary seed) ~algorithm ~n ~k
                  ()
              in
              ( float_of_int o.Rtas.Election.max_steps,
                float_of_int o.Rtas.Election.max_rmrs,
                o.Rtas.Election.registers ))
        in
        let steps = Array.map (fun (s, _, _) -> s) runs in
        let rmrs = Array.map (fun (_, r, _) -> r) runs in
        let regs = if trials = 0 then 0 else (fun (_, _, g) -> g) runs.(0) in
        Fmt.pr "%8d %14.1f %12.1f %12d@." k
          (Sim.Stats.mean_array steps)
          (Sim.Stats.mean_array rmrs)
          regs)
      (points 2 [])
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep contention k and print step/RMR complexity curves.")
    Term.(
      const sweep $ algorithm $ n_arg $ adversary_arg $ trials_arg $ seed_arg
      $ domains_arg)

let covering_cmd =
  let covering n =
    Fmt.pr "Theorem 5.1 machinery at n = %d:@." n;
    Fmt.pr "  f(n-4) = %d; guaranteed registers: %d@."
      (Lowerbound.Covering.f ~n (n - 4))
      (Lowerbound.Covering.register_lower_bound ~n);
    List.iter
      (fun (name, make) ->
        let r = Lowerbound.Covering_exec.run ~make ~n ~seed:11L () in
        Fmt.pr "  %-14s %a@." name Lowerbound.Covering_exec.pp_report r)
      [
        ("tournament", Leaderelect.Tournament.make);
        ("ratrace-lean", Leaderelect.Rr_le.make_lean);
      ]
  in
  let n_pow2 =
    Arg.(value & opt int 32 & info [ "n" ] ~docv:"N" ~doc:"Power of two >= 8.")
  in
  Cmd.v
    (Cmd.info "covering"
       ~doc:"Run the Lemma 5.4 covering-argument rounds on real algorithms.")
    Term.(const covering $ n_pow2)

let yao_cmd =
  let yao t trials =
    let make () =
      let mem = Sim.Memory.create () in
      let le = Primitives.Le2.create mem in
      let tas =
        Primitives.Tas.create mem ~elect:(fun ctx ->
            Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
      in
      Array.init 2 (fun _ ctx -> Primitives.Tas.apply tas ctx)
    in
    let p = Lowerbound.Yao.measure ~trials ~make ~t () in
    Fmt.pr
      "t=%d: tested %d schedules; max Pr[>= t steps] = %.4f; 1/4^t = %.6f; %s@."
      p.Lowerbound.Yao.t p.Lowerbound.Yao.schedules_tested
      p.Lowerbound.Yao.max_prob p.Lowerbound.Yao.bound
      (if p.Lowerbound.Yao.max_prob >= p.Lowerbound.Yao.bound then
         "bound respected"
       else "BOUND VIOLATED")
  in
  let t_arg = Arg.(value & opt int 4 & info [ "t" ] ~docv:"T" ~doc:"Step bound t.") in
  let trials_arg =
    Arg.(value & opt int 400 & info [ "trials" ] ~docv:"R" ~doc:"Runs per schedule.")
  in
  Cmd.v
    (Cmd.info "yao" ~doc:"Reproduce the Theorem 6.1 two-process lower bound.")
    Term.(const yao $ t_arg $ trials_arg)

let chaos_cmd =
  let algorithms_arg =
    let doc = "Comma-separated simulated algorithms to sweep." in
    Arg.(
      value
      & opt (list string) [ "log*"; "loglog"; "tournament"; "ratrace-lean" ]
      & info [ "algorithms" ] ~docv:"NAMES" ~doc)
  in
  let probs_arg =
    Arg.(
      value
      & opt (list float) [ 0.0; 0.05; 0.2 ]
      & info [ "probs" ] ~docv:"P,.." ~doc:"Crash probabilities to sweep.")
  in
  let trials_arg =
    Arg.(
      value & opt int 25
      & info [ "trials" ] ~docv:"T"
          ~doc:"Trials per (implementation, probability) point.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECS" ~doc:"Watchdog per-trial timeout.")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"R"
          ~doc:"Watchdog retries (with rotated seeds) per trial.")
  in
  let le_flag =
    Arg.(
      value & flag
      & info [ "le" ] ~doc:"Check leader election instead of test-and-set.")
  in
  let mc_flag =
    Arg.(
      value & flag
      & info [ "mc" ]
          ~doc:
            "Also stress the real-multicore TAS implementations \
             (crash-before-invoke fault model on true domains).")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Explicit fault plan replacing the default crash storm, e.g. \
             $(b,crash:0@3,storm:0.05,halt@400). Only applies to the \
             simulated sweep.")
  in
  let chaos algorithms n k seed probs trials timeout retries le mc plan_str
      domains =
    let plan =
      match plan_str with
      | None -> None
      | Some s -> (
          match Fault.Plan.of_string s with
          | Ok p -> Some p
          | Error msg ->
              Fmt.epr "rtas chaos: %s@." msg;
              exit 2)
    in
    let mode = if le then Fault.Chaos.Le else Fault.Chaos.Tas in
    let seed64 = Int64.of_int seed in
    (* One Probe registry accumulates the whole sweep's fault totals. *)
    let metrics = Obs.Metrics.create () in
    Fmt.pr "%-14s %-4s %6s %7s %8s %8s %9s %10s@." "impl" "mode" "prob"
      "trials" "crashes" "timeouts" "viols" "steps";
    let failures = ref [] in
    let note impl seeds violations timeouts =
      if violations > 0 || timeouts > 0 then
        failures := (impl, seeds) :: !failures
    in
    List.iter
      (fun algorithm ->
        List.iter
          (fun crash_prob ->
            let r =
              Fault.Chaos.run_point ~timeout ~retries ~domains ~metrics ?plan
                ~mode ~algorithm ~n ~k ~crash_prob ~trials ~seed:seed64 ()
            in
            Fmt.pr "%a@." Fault.Chaos.pp_report r;
            note r.Fault.Chaos.impl r.Fault.Chaos.failure_seeds
              r.Fault.Chaos.violations r.Fault.Chaos.timeouts)
          probs)
      algorithms;
    if mc then
      List.iter
        (fun impl ->
          List.iter
            (fun crash_prob ->
              let r =
                Fault.Mc_chaos.run_point ~timeout:(Float.max timeout 10.0)
                  ~retries ~impl ~k ~crash_prob ~trials ~seed:seed64 ()
              in
              Fmt.pr "%a@." Fault.Mc_chaos.pp_report r;
              note r.Fault.Mc_chaos.impl r.Fault.Mc_chaos.failure_seeds
                r.Fault.Mc_chaos.violations r.Fault.Mc_chaos.timeouts)
            probs)
        (Fault.Mc_chaos.impl_names ());
    Fmt.pr "%a" Obs.Metrics.pp_snapshot (Obs.Metrics.snapshot metrics);
    match List.rev !failures with
    | [] -> Fmt.pr "chaos: no safety violations (seed %d).@." seed
    | failures ->
        List.iter
          (fun (impl, seeds) ->
            Fmt.pr "FAIL %s: reproduce with seeds [%a]@." impl
              Fmt.(list ~sep:semi int64)
              seeds)
          failures;
        exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Crash-fault chaos sweep: run every implementation under crash \
          storms and check unique-winner + crash-aware linearizability.")
    Term.(
      const chaos $ algorithms_arg $ n_arg $ k_arg $ seed_arg $ probs_arg
      $ trials_arg $ timeout_arg $ retries_arg $ le_flag $ mc_flag $ plan_arg
      $ domains_arg)

(* {1 Probe subcommands: trace + profile} *)

let target_arg =
  let doc =
    Printf.sprintf "Profiling target; one of: %s."
      (String.concat ", " (Rtas.Probe_target.names ()))
  in
  Arg.(value & opt string "rr_classic" & info [ "algo" ] ~docv:"NAME" ~doc)

let find_target name =
  match Rtas.Probe_target.find name with
  | Some t -> t
  | None ->
      Fmt.epr "rtas: unknown profiling target %S; try one of: %s@." name
        (String.concat ", " (Rtas.Probe_target.names ()));
      exit 2

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the Perfetto-loadable trace-event JSON.")
  in
  let trace algo n k seed adversary out =
    let target = find_target algo in
    let k = min k n in
    let seed = Int64.of_int seed in
    let chrome = Obs.Chrome_trace.create () in
    let collector = Obs.Collector.create () in
    let snapshot =
      Obs.with_sink
        (Obs.tee (Obs.Chrome_trace.sink chrome) (Obs.Collector.sink collector))
        (fun () ->
          let mem = Sim.Memory.create () in
          let progs = target.Rtas.Probe_target.pt_programs mem ~n ~k in
          let sched = Sim.Sched.create ~seed progs in
          Sim.Sched.run sched (make_adversary adversary seed);
          Obs.Collector.snapshot collector)
    in
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Obs.Chrome_trace.output chrome oc);
    Fmt.pr "wrote %s (%d events); load it at ui.perfetto.dev@." out
      (Obs.Chrome_trace.n_events chrome);
    Fmt.pr "%a" Rtas.Probe_report.pp_profile snapshot
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one execution with the Probe tracer attached and export a \
          Perfetto-loadable Chrome trace (one track per process, phase \
          spans, per-step instants) plus the per-phase attribution table.")
    Term.(
      const trace $ target_arg $ n_arg $ k_arg $ seed_arg $ adversary_arg
      $ out_arg)

let profile_cmd =
  let algos_arg =
    let doc =
      Printf.sprintf "Comma-separated profiling targets; any of: %s."
        (String.concat ", " (Rtas.Probe_target.names ()))
    in
    Arg.(
      value
      & opt (list string) [ "ge_logstar"; "chain"; "rr_classic" ]
      & info [ "algos" ] ~docv:"NAMES" ~doc)
  in
  let trials_arg =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"T" ~doc:"Trials per target.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the per-target profiles as one JSON document.")
  in
  let profile algos n k trials seed adversary domains json =
    let k = min k n in
    let seed64 = Int64.of_int seed in
    let profiles =
      List.map
        (fun name ->
          let target = find_target name in
          (* Per-worker arena + collector: the collector rides in via
             [probe]; each trial resets the arena and re-runs. The arena
             itself is built unobserved (sink set aside) — [Sched.reset]
             re-reads the ambient sink, so every trial is probed while
             the one-off construction pollutes no phase accounting. *)
          let _stats, collectors =
            Engine.run_probed ~domains ~trials ~seed:seed64
              ~probe:(fun () ->
                let c = Obs.Collector.create () in
                (c, Obs.Collector.sink c))
              ~local:(fun c ->
                let cur = Obs.Probe.current () in
                Obs.Probe.uninstall ();
                let mem = Sim.Memory.create () in
                let progs = target.Rtas.Probe_target.pt_programs mem ~n ~k in
                let sched =
                  Sim.Sched.create ~seed:(Sim.Rng.derive seed64 ~stream:0)
                    progs
                in
                (match cur with Some s -> Obs.Probe.install s | None -> ());
                let winners =
                  Obs.Metrics.counter (Obs.Collector.metrics c) "winners"
                in
                (mem, progs, sched, winners))
              (fun (mem, progs, sched, winners) ~trial:_ ~seed ->
                Sim.Memory.reset mem;
                Sim.Sched.reset ~seed sched progs;
                Sim.Sched.run sched (make_adversary adversary seed);
                for pid = 0 to Sim.Sched.n sched - 1 do
                  if Sim.Sched.result sched pid = Some 1 then
                    Obs.Metrics.incr winners
                done)
          in
          let snapshot =
            List.fold_left Obs.Collector.merge Obs.Collector.empty_snapshot
              (List.map Obs.Collector.snapshot collectors)
          in
          (name, snapshot))
        algos
    in
    List.iter
      (fun (name, snapshot) ->
        Fmt.pr "== %s (n=%d k=%d trials=%d adversary=%s) ==@." name n k trials
          adversary;
        Fmt.pr "%a@." Rtas.Probe_report.pp_profile snapshot)
      profiles;
    match json with
    | None -> ()
    | Some file ->
        let buf = Buffer.create 4096 in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"n\":%d,\"k\":%d,\"trials\":%d,\"seed\":%d,\"algos\":{" n k
             trials seed);
        List.iteri
          (fun i (name, snapshot) ->
            if i > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":%s" name
                 (Rtas.Probe_report.snapshot_to_json snapshot)))
          profiles;
        Buffer.add_string buf "}}\n";
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Buffer.output_buffer oc buf);
        Fmt.pr "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run batches of trials with per-phase Probe collectors attached \
          (one per engine worker, merged after the join) and print \
          per-phase step/RMR attribution tables.")
    Term.(
      const profile $ algos_arg $ n_arg $ k_arg $ trials_arg $ seed_arg
      $ adversary_arg $ domains_arg $ json_arg)

let mc_cmd =
  let mc_domains_arg =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"D"
          ~doc:"Contending domains (one slot each).")
  in
  let trials_arg =
    Arg.(
      value & opt int 20
      & info [ "trials" ] ~docv:"T" ~doc:"Trials per algorithm.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Watchdog bound per trial: a stuck Atomic_mem run fails within \
             this wall-clock budget with a per-domain progress diagnosis \
             instead of hanging the suite.")
  in
  let mc domains trials seed timeout =
    if domains < 1 then failwith "mc: --domains must be >= 1";
    let failed = ref false in
    Fmt.pr "%-16s %8s %7s %10s  %s@." "algorithm" "domains" "trials"
      "registers" "unique winner";
    List.iter
      (fun (e : Rtas.Registry.entry) ->
        match e.Rtas.Registry.make_mc with
        | None -> ()
        | Some make_mc ->
            let registers = ref 0 in
            let violations = ref 0 in
            for trial = 1 to trials do
              let le = make_mc ~n:domains in
              registers := Multicore.Mc_le.registers le;
              (* The domain race goes through the watchdog: the monitor
                 polls per-slot done-flags and, past the timeout, leaks
                 the stuck domains and reports which slots made it. *)
              match
                Fault.Watchdog.race ~timeout ~n:domains
                  ~label:(fun slot ->
                    Printf.sprintf "%s slot %d" e.Rtas.Registry.name slot)
                  (fun slot ->
                    let rng =
                      Random.State.make [| seed; trial; slot; 0x3C0 |]
                    in
                    Multicore.Mc_le.elect le rng ~slot)
              with
              | Ok results ->
                  let winners =
                    Array.fold_left
                      (fun acc won -> if won then acc + 1 else acc)
                      0 results
                  in
                  if winners <> 1 then incr violations
              | Error stuck ->
                  Fmt.epr "mc: %s trial %d (seed %d) %a@."
                    e.Rtas.Registry.name trial seed Fault.Watchdog.pp_stuck
                    stuck;
                  exit 1
            done;
            if !violations > 0 then failed := true;
            Fmt.pr "%-16s %8d %7d %10d  %s@." e.Rtas.Registry.name domains
              trials !registers
              (if !violations = 0 then "ok"
               else Printf.sprintf "VIOLATED in %d/%d trials" !violations trials))
      Rtas.Registry.all;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Run every registry algorithm that has a multicore backend on real \
          domains (one per slot) and check that each trial elects a unique \
          winner. Exits nonzero on any violation, and within bounded \
          wall-clock on a stuck run (watchdog timeout + per-domain \
          diagnosis).")
    Term.(const mc $ mc_domains_arg $ trials_arg $ seed_arg $ timeout_arg)

let service_cmd =
  let alg_arg =
    let doc =
      Printf.sprintf
        "Algorithm backing every key; one of: %s. The atomic backend needs a \
         dual-backend entry (%s)."
        (String.concat ", " (Rtas.Registry.names ()))
        (String.concat ", " (Rtas.Registry.dual_names ()))
    in
    Arg.(value & opt string "log*" & info [ "alg" ] ~docv:"NAME" ~doc)
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("atomic", `Atomic) ]) `Sim
      & info [ "backend" ] ~docv:"sim|atomic"
          ~doc:
            "sim: deterministic discrete-event run (bit-reproducible for a \
             fixed seed). atomic: real domains racing Atomic.t CASes, one \
             tick = 1us.")
  in
  let kernel_arg =
    Arg.(
      value
      & opt (enum [ ("effect", `Effect); ("flat", `Flat) ]) `Effect
      & info [ "kernel" ] ~docv:"effect|flat"
          ~doc:
            "Election-round execution kernel for the sim backend. $(b,flat) \
             runs rounds on the preallocated flat machine (allocation-free, \
             bit-identical report); it needs a flat-registered algorithm \
             ($(b,rtas flat) lists them) and is incompatible with \
             $(b,--plan).")
  in
  let arrival_arg =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty) ]) `Poisson
      & info [ "arrival" ] ~docv:"poisson|bursty" ~doc:"Arrival process.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.02
      & info [ "rate" ] ~docv:"R" ~doc:"Arrivals per tick (base rate).")
  in
  let clients_arg =
    Arg.(
      value & opt int 1000
      & info [ "clients" ] ~docv:"C" ~doc:"Total arrivals to generate.")
  in
  let keys_arg =
    Arg.(value & opt int 16 & info [ "keys" ] ~docv:"K" ~doc:"Lock keys.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 0.9
      & info [ "zipf" ] ~docv:"S" ~doc:"Key-choice skew; 0 is uniform.")
  in
  let backoff_arg =
    Arg.(
      value & opt string "exp"
      & info [ "backoff" ] ~docv:"POLICY"
          ~doc:
            "Loser retry policy: $(b,immediate), $(b,exp) (capped \
             exponential, deterministic jitter; optionally \
             $(b,exp:BASE:CAP)), or $(b,rand) (uniform; optionally \
             $(b,rand:MAX)).")
  in
  let deadline_arg =
    Arg.(
      value & opt float 20_000.0
      & info [ "deadline" ] ~docv:"D"
          ~doc:"Per-client deadline in ticks; also the recovery lease.")
  in
  let hold_arg =
    Arg.(
      value & opt float 64.0
      & info [ "hold" ] ~docv:"H" ~doc:"Ticks a winner holds its key.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt ~vopt:0.15 float 0.0
      & info [ "chaos" ] ~docv:"P"
          ~doc:
            "Holder-crash probability per round: the winner dies without \
             releasing and the key must recover through round-stamp expiry. \
             $(b,--chaos) alone means 0.15.")
  in
  let max_waiters_arg =
    Arg.(
      value & opt int 64
      & info [ "max-waiters" ] ~docv:"W"
          ~doc:"Per-key queue capacity (sim); arrivals beyond it are shed.")
  in
  let contenders_arg =
    Arg.(
      value & opt int 32
      & info [ "contenders" ] ~docv:"N"
          ~doc:"Election width per round (sim).")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan applied inside every sim election round, e.g. \
             $(b,storm:0.05).")
  in
  let events_arg =
    Arg.(
      value
      & opt (enum [ ("wheel", `Wheel); ("heap", `Heap) ]) `Wheel
      & info [ "events" ] ~docv:"wheel|heap"
          ~doc:
            "Sim event engine. $(b,wheel) (default) is the hierarchical \
             timing wheel: O(1) schedule/advance, allocation-free in steady \
             state. $(b,heap) is the binary-heap oracle. The report is \
             byte-identical either way.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Keyspace partitions for the sim backend (key mod S). The \
             report is byte-identical for any value; with $(b,--domains) > \
             1 the shards run in parallel.")
  in
  let latency_arg =
    Arg.(
      value
      & opt (enum [ ("auto", `Auto); ("exact", `Exact); ("hist", `Hist) ]) `Auto
      & info [ "latency" ] ~docv:"auto|exact|hist"
          ~doc:
            "Latency recording (sim). $(b,exact) keeps every sample; \
             $(b,hist) uses the bounded-memory log-bucketed histogram \
             (percentiles within ~1.6%); $(b,auto) picks exact up to 65536 \
             clients and hist beyond.")
  in
  let on_shed_arg =
    Arg.(
      value
      & opt (enum [ ("drop", `Drop); ("retry", `Retry) ]) `Drop
      & info [ "on-shed" ] ~docv:"drop|retry"
          ~doc:
            "What a full queue does to a joining client (sim). $(b,drop) \
             rejects it terminally; $(b,retry) models a client-side SDK \
             retry loop — the client re-enters backoff and bounces until \
             completion or deadline, and $(b,shed) counts rejection events.")
  in
  let svc_timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Watchdog wall-clock bound for the atomic backend.")
  in
  let svc_domains_arg =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains: atomic-backend racers, or the sim shard pool \
             when $(b,--shards) > 1 (the sim result never depends on it).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the JSON report here instead of stdout (the human \
             summary then prints to stdout, otherwise to stderr).")
  in
  let parse_backoff s =
    match String.split_on_char ':' s with
    | [ "immediate" ] -> Service.Backoff.Immediate
    | [ "exp" ] -> Service.Backoff.Exp { base = 8.0; cap = 512.0 }
    | [ "exp"; b; c ] ->
        Service.Backoff.Exp { base = float_of_string b; cap = float_of_string c }
    | [ "rand" ] -> Service.Backoff.Rand { max = 256.0 }
    | [ "rand"; m ] -> Service.Backoff.Rand { max = float_of_string m }
    | _ ->
        Fmt.epr "rtas service: bad --backoff %S@." s;
        exit 2
  in
  let service alg backend kernel arrival rate clients keys zipf backoff
      deadline hold chaos max_waiters contenders plan_str events shards latency
      on_shed timeout domains seed out =
    let arrival =
      match arrival with
      | `Poisson -> Service.Arrival.Poisson { rate }
      | `Bursty ->
          Service.Arrival.Bursty
            { rate; burst_len = 500.0; idle_len = 2000.0; boost = 8.0 }
    in
    let backoff = parse_backoff backoff in
    let plan =
      match plan_str with
      | None -> None
      | Some s -> (
          match Fault.Plan.of_string s with
          | Ok p -> Some p
          | Error msg ->
              Fmt.epr "rtas service: %s@." msg;
              exit 2)
    in
    let seed = Int64.of_int seed in
    let report =
      try
        match backend with
        | `Sim ->
            Service.Driver.run ~domains
              {
                (Service.Driver.default ~algorithm:alg) with
                clients;
                keys;
                zipf_s = zipf;
                arrival;
                backoff;
                deadline;
                hold;
                max_waiters;
                contenders;
                crash_prob = chaos;
                plan;
                kernel;
                events;
                shards;
                latency;
                on_shed;
                seed;
              }
        | `Atomic ->
            if plan_str <> None then
              Fmt.epr "rtas service: --plan only applies to the sim backend@.";
            if kernel <> `Effect then
              Fmt.epr
                "rtas service: --kernel only applies to the sim backend@.";
            Service.Mc_driver.run
              {
                (Service.Mc_driver.default ~algorithm:alg) with
                clients;
                keys;
                zipf_s = zipf;
                arrival;
                backoff;
                deadline;
                hold;
                crash_prob = chaos;
                workers = domains;
                timeout;
                seed;
              }
      with Invalid_argument msg ->
        (* Bad algorithm name, missing Atomic_mem port, out-of-range
           config: a usage error, not an internal one. *)
        Fmt.epr "rtas service: %s@." msg;
        exit 2
    in
    let json = Service.Report.to_json report in
    (match out with
    | None ->
        print_string json;
        Fmt.epr "%a@." Service.Report.pp report
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc json);
        Fmt.pr "wrote %s@.%a@." file Service.Report.pp report);
    if report.Service.Report.livelocked then exit 1
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:
         "Run the open-loop lock service: Poisson/bursty arrivals over a \
          Zipfian keyspace, each key a resettable (round-stamped) election, \
          losers retrying under backoff, with deadlines, overload shed and \
          optional holder-crash chaos. Emits a JSON report with throughput \
          and p50/p99/p999 latency.")
    Term.(
      const service $ alg_arg $ backend_arg $ kernel_arg $ arrival_arg
      $ rate_arg $ clients_arg $ keys_arg $ zipf_arg $ backoff_arg
      $ deadline_arg $ hold_arg $ chaos_arg $ max_waiters_arg $ contenders_arg
      $ plan_arg $ events_arg $ shards_arg $ latency_arg $ on_shed_arg
      $ svc_timeout_arg $ svc_domains_arg $ seed_arg $ out_arg)

(* {1 The flat-kernel smoke: effect-parity plus a real domain fan-out}

   `make flat-smoke` runs this; it is the CLI face of test_flatsim's
   differential suite — every flat-registered algorithm is run on both
   kernels over fresh seeds and must produce identical winners, result
   vectors and spans, then a flat trial batch is fanned out over real
   domains and must be domain-count independent. *)

let flat_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~docv:"S"
          ~doc:"Seeds per algorithm for the flat-vs-effect parity check.")
  in
  let trials_arg =
    Arg.(
      value & opt int 64
      & info [ "trials" ] ~docv:"T"
          ~doc:"Trials for the engine domain-independence check.")
  in
  let flat n k seeds trials seed domains =
    let k = min k n in
    let base = Int64.of_int seed in
    let failures = ref 0 in
    List.iter
      (fun (e : Rtas.Registry.entry) ->
        match e.Rtas.Registry.make_flat with
        | None -> ()
        | Some mk ->
            let m = Flatsim.Machine.create ~procs:k (mk ~n) in
            let mismatches = ref 0 in
            for i = 0 to seeds - 1 do
              let s = Sim.Rng.derive base ~stream:i in
              (* The effect oracle and its flat compilation, on the same
                 derived schedule/adversary streams. *)
              let mem = Sim.Memory.create () in
              let le = e.Rtas.Registry.make mem ~n in
              let sched =
                Sim.Sched.create ~seed:(Sim.Rng.derive s ~stream:0)
                  (Leaderelect.Le.programs le ~k)
              in
              Sim.Sched.run sched
                (Sim.Adversary.random_oblivious
                   ~seed:(Sim.Rng.derive s ~stream:1));
              Flatsim.Machine.reset ~seed:(Sim.Rng.derive s ~stream:0) m;
              Flatsim.Machine.run_random m
                ~seed:(Sim.Rng.derive s ~stream:1);
              if
                not
                  (Flatsim.Machine.results m = Sim.Sched.results sched
                  && Flatsim.Machine.time m = Sim.Sched.time sched)
              then incr mismatches
            done;
            failures := !failures + !mismatches;
            Fmt.pr "%-14s %d/%d seeds bit-identical to the effect path \
                    (n=%d k=%d)@."
              e.Rtas.Registry.name (seeds - !mismatches) seeds n k)
      Rtas.Registry.all;
    (* Fan a flat trial batch out over real domains: per-worker machine
       arenas, per-trial derived seeds, outcomes must not depend on the
       domain count. *)
    let prog = Flatsim.Programs.logstar ~n in
    let outcomes d =
      Engine.run_local ~domains:d ~trials ~seed:base
        ~local:(fun () -> Flatsim.Machine.create ~procs:k prog)
        (fun m ~trial:_ ~seed ->
          Flatsim.Machine.reset ~seed:(Sim.Rng.derive seed ~stream:0) m;
          Flatsim.Machine.run_random m ~seed:(Sim.Rng.derive seed ~stream:1);
          let w = ref (-1) in
          for pid = 0 to k - 1 do
            if m.Flatsim.Machine.results.(pid) = 1 then w := pid
          done;
          (!w, Flatsim.Machine.time m))
    in
    let one = outcomes 1 in
    let many = outcomes domains in
    let independent = one = many in
    Fmt.pr
      "engine: %d flat log* trials identical at --domains 1 vs %d: %b@."
      trials domains independent;
    if !failures > 0 || not independent then begin
      Fmt.epr "rtas flat: kernel divergence detected@.";
      exit 1
    end;
    Fmt.pr "flat: OK (%s)@."
      (String.concat ", " (Rtas.Registry.flat_names ()))
  in
  Cmd.v
    (Cmd.info "flat"
       ~doc:
         "Check the flat kernel against the effect simulator: every \
          flat-registered algorithm must be bit-identical on both kernels \
          over fresh seeds, and a flat trial batch fanned out over real \
          domains must be domain-count independent.")
    Term.(
      const flat $ n_arg $ k_arg $ seeds_arg $ trials_arg $ seed_arg
      $ domains_arg)

let main =
  Cmd.group
    (Cmd.info "rtas" ~version:"1.0.0"
       ~doc:"Randomized test-and-set (Giakkoupis-Woelfel PODC 2012) playground.")
    [
      run_cmd;
      list_cmd;
      sweep_cmd;
      covering_cmd;
      yao_cmd;
      chaos_cmd;
      trace_cmd;
      profile_cmd;
      mc_cmd;
      service_cmd;
      flat_cmd;
    ]

let () = exit (Cmd.eval main)
