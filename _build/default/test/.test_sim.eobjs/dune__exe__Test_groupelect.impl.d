test/test_groupelect.ml: Alcotest Array Groupelect Int64 List Option Printf Sim
