test/test_core.ml: Alcotest Array Consensus Hashtbl Int64 Leaderelect List Lowerbound Option Primitives QCheck2 QCheck_alcotest Renaming Rtas Sim
