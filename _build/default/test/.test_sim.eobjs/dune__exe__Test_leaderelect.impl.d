test/test_leaderelect.ml: Alcotest Array Groupelect Int64 Leaderelect List Lowerbound Option Printf Sim Tutil
