test/test_renaming.ml: Alcotest Array Int64 Leaderelect List Option Printf Renaming Sim
