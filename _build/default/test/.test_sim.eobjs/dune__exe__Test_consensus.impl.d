test/test_consensus.ml: Alcotest Array Consensus Int64 List Option Printf Sim Tutil
