test/test_primitives.ml: Alcotest Array Hashtbl Int64 List Option Primitives Printf Sim
