test/tutil.ml: Alcotest Array Int64 Leaderelect List Option Sim
