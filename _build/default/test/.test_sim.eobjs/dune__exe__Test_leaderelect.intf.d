test/test_leaderelect.mli:
