test/test_lowerbound.ml: Alcotest Array Float Leaderelect List Lowerbound Option Primitives Printf Sim
