test/test_ratrace.mli:
