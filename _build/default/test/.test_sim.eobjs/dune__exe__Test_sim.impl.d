test/test_sim.ml: Alcotest Array List Option Sim String
