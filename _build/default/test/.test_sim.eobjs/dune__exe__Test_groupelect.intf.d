test/test_groupelect.mli:
