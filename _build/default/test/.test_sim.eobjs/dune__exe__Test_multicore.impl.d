test/test_multicore.ml: Alcotest Domain Fun Hashtbl List Multicore Random
