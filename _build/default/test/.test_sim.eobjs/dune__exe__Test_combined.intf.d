test/test_combined.mli:
