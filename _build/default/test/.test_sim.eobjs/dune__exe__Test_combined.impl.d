test/test_combined.ml: Alcotest Combined Int64 Leaderelect List Option Printf Sim Tutil
