test/test_ratrace.ml: Alcotest Array Int64 List Option Printf Ratrace Sim String
