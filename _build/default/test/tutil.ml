(* Shared helpers for the algorithm test suites. *)

let count_winners sched =
  Array.fold_left
    (fun acc r -> match r with Some 1 -> acc + 1 | _ -> acc)
    0
    (Sim.Sched.results sched)

let all_finished sched = Array.for_all Option.is_some (Sim.Sched.results sched)

let check_le_outcome ~crash_free sched =
  let winners = count_winners sched in
  if winners > 1 then Alcotest.fail "two winners";
  if crash_free && all_finished sched && winners <> 1 then
    Alcotest.fail "crash-free execution without a winner"

(* Build a leader election from [make], run [k] participants under
   [adversary], and return the scheduler (for inspection) and memory
   (for space accounting). *)
let run_le ?(seed = 1L) ~make ~n ~k adversary =
  let mem = Sim.Memory.create () in
  let le : Leaderelect.Le.t = make mem ~n in
  let sched = Sim.Sched.create ~seed (Leaderelect.Le.programs le ~k) in
  Sim.Sched.run sched adversary;
  (sched, mem)

(* Mean over [trials] random-oblivious runs of the maximum per-process
   step count. *)
let avg_max_steps ?(trials = 50) ~make ~n ~k () =
  let total = ref 0 in
  for seed = 1 to trials do
    let sched, _ =
      run_le ~seed:(Int64.of_int seed) ~make ~n ~k
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7919)))
    in
    total := !total + Sim.Sched.max_steps sched
  done;
  float_of_int !total /. float_of_int trials

(* Safety sweep: random schedules, random crashes, varying k. *)
let safety_sweep ?(trials = 40) ~make ~n ~ks () =
  List.iter
    (fun k ->
      for seed = 1 to trials do
        let crash_prob = if seed mod 2 = 0 then 0.02 else 0.0 in
        let adv =
          if crash_prob > 0.0 then
            Sim.Adversary.random_crashes ~seed:(Int64.of_int (seed * 31))
              ~crash_prob
              (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 13)))
          else Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 13))
        in
        let sched, _ = run_le ~seed:(Int64.of_int seed) ~make ~n ~k adv in
        check_le_outcome ~crash_free:(crash_prob = 0.0) sched
      done)
    ks
