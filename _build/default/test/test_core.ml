(* Tests for the public API (registry, election driver) plus
   property-based tests over the whole algorithm catalog. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Registry} *)

let test_registry_names_unique () =
  let names = Rtas.Registry.names () in
  checki "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  checkb "log* present" true (Rtas.Registry.find "log*" <> None);
  checkb "unknown absent" true (Rtas.Registry.find "nope" = None)

let test_registry_complete () =
  checkb "at least 8 algorithms" true (List.length Rtas.Registry.all >= 8)

(* {1 Election driver} *)

let test_election_run_basic () =
  let o = Rtas.Election.run ~algorithm:"log*" ~n:16 ~k:8 () in
  checkb "has winner" true (o.Rtas.Election.winner <> None);
  checkb "positive steps" true (o.Rtas.Election.total_steps > 0);
  checkb "allocated registers" true (o.Rtas.Election.registers > 0)

let test_election_every_algorithm () =
  List.iter
    (fun name ->
      (* The classic RatRace allocates Theta(n^3); keep n small. *)
      let n = if name = "ratrace" then 8 else 32 in
      let o =
        Rtas.Election.run ~algorithm:name ~n ~k:n
          ~adversary:(Sim.Adversary.random_oblivious ~seed:5L)
          ()
      in
      checkb (name ^ " has winner") true (o.Rtas.Election.winner <> None))
    (Rtas.Registry.names ())

let test_election_unknown_algorithm () =
  checkb "raises" true
    (try
       ignore (Rtas.Election.run ~algorithm:"nope" ~n:4 ~k:4 ());
       false
     with Invalid_argument _ -> true)

let test_election_tas () =
  let o =
    Rtas.Election.run_tas ~algorithm:"tournament" ~n:8 ~k:8
      ~adversary:(Sim.Adversary.random_oblivious ~seed:3L)
      ()
  in
  let zeros =
    Array.fold_left
      (fun a r -> if r = Some 0 then a + 1 else a)
      0 o.Rtas.Election.results
  in
  checki "exactly one TAS winner" 1 zeros;
  checkb "winner field matches" true (o.Rtas.Election.winner <> None)

let test_election_deterministic_given_seed () =
  let run () =
    Rtas.Election.run ~seed:99L ~algorithm:"ratrace-lean" ~n:16 ~k:16
      ~adversary:(Sim.Adversary.random_oblivious ~seed:7L)
      ()
  in
  let a = run () and b = run () in
  Alcotest.(check (option int))
    "same winner" a.Rtas.Election.winner b.Rtas.Election.winner;
  checki "same steps" a.Rtas.Election.total_steps b.Rtas.Election.total_steps

(* {1 Property-based tests (qcheck)} *)

let algorithms_for_qcheck =
  List.filter (fun n -> n <> "ratrace") (Rtas.Registry.names ())

let prop_unique_winner =
  QCheck2.Test.make ~count:120 ~name:"at most one winner, any algorithm/seed/k"
    QCheck2.Gen.(
      quad (oneofl algorithms_for_qcheck) (int_range 1 24) (int_range 1 1000)
        (int_range 0 2))
    (fun (algorithm, k, seed, advkind) ->
      let adversary =
        match advkind with
        | 0 -> Sim.Adversary.round_robin ()
        | 1 -> Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 31))
        | _ ->
            Sim.Adversary.random_crashes ~seed:(Int64.of_int (seed * 17))
              ~crash_prob:0.05
              (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 13)))
      in
      let o =
        Rtas.Election.run ~seed:(Int64.of_int seed) ~adversary ~algorithm ~n:24
          ~k ()
      in
      let winners =
        Array.fold_left
          (fun a r -> if r = Some 1 then a + 1 else a)
          0 o.Rtas.Election.results
      in
      winners <= 1
      && (advkind = 2 || winners = 1) (* crash-free runs elect exactly one *))

let prop_tas_semantics =
  QCheck2.Test.make ~count:80 ~name:"TAS: exactly one zero, any algorithm/seed"
    QCheck2.Gen.(
      triple (oneofl algorithms_for_qcheck) (int_range 1 16) (int_range 1 1000))
    (fun (algorithm, k, seed) ->
      let o =
        Rtas.Election.run_tas ~seed:(Int64.of_int seed)
          ~adversary:(Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)))
          ~algorithm ~n:16 ~k ()
      in
      let zeros =
        Array.fold_left
          (fun a r -> if r = Some 0 then a + 1 else a)
          0 o.Rtas.Election.results
      in
      zeros = 1
      && Array.for_all
           (fun r -> match r with Some v -> v = 0 || v = 1 | None -> false)
           o.Rtas.Election.results)

let prop_covering_recurrence_bounds =
  QCheck2.Test.make ~count:200 ~name:"covering f stays within [1, n]"
    QCheck2.Gen.(pair (int_range 8 2048) (int_range 0 100))
    (fun (n, kraw) ->
      let k = kraw mod n in
      let v = Lowerbound.Covering.f ~n k in
      v >= 1 && v <= n)

let prop_splitter_no_two_stops =
  QCheck2.Test.make ~count:150 ~name:"splitter: never two S, any k/seed"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 10_000))
    (fun (k, seed) ->
      let mem = Sim.Memory.create () in
      let sp = Primitives.Splitter.create mem in
      let programs =
        Array.init k (fun _ ctx ->
            match Primitives.Splitter.split sp ctx with
            | Primitives.Splitter.S -> 2
            | Primitives.Splitter.R -> 1
            | Primitives.Splitter.L -> 0)
      in
      let sched = Sim.Sched.create ~seed:(Int64.of_int seed) programs in
      Sim.Sched.run sched
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
      let stops =
        Array.fold_left
          (fun a r -> if r = Some 2 then a + 1 else a)
          0 (Sim.Sched.results sched)
      in
      stops <= 1)

let prop_rng_geometric_support =
  QCheck2.Test.make ~count:200 ~name:"geometric draw within support"
    QCheck2.Gen.(pair (int_range 1 30) (int_range 1 100000))
    (fun (l, seed) ->
      let rng = Sim.Rng.create (Int64.of_int seed) in
      let v = Sim.Rng.geometric_capped rng l in
      v >= 1 && v <= l)

(* A randomized adaptive adversary: scheduling decisions are a seeded
   hash of everything it can legally see (the full pending-operation
   views). This samples a much richer strategy space than the oblivious
   adversaries, and safety must hold against all of it. *)
let hashing_adaptive_adversary seed =
  Sim.Adversary.adaptive "hashing" (fun view ->
      match Array.length view.Sim.Sched.runnable with
      | 0 -> Sim.Sched.Halt
      | m ->
          let digest =
            Array.fold_left
              (fun acc pid ->
                let p = view.Sim.Sched.pending_of pid in
                Hashtbl.hash
                  ( acc,
                    pid,
                    p.Sim.Sched.view_kind,
                    p.Sim.Sched.view_reg,
                    p.Sim.Sched.view_value,
                    p.Sim.Sched.view_steps ))
              (Hashtbl.hash (seed, view.Sim.Sched.view_time))
              view.Sim.Sched.runnable
          in
          Sim.Sched.Schedule view.Sim.Sched.runnable.(abs digest mod m))

let prop_unique_winner_adaptive =
  QCheck2.Test.make ~count:100
    ~name:"at most one winner under random adaptive adversaries"
    QCheck2.Gen.(
      triple (oneofl algorithms_for_qcheck) (int_range 1 16) (int_range 1 10_000))
    (fun (algorithm, k, seed) ->
      let o =
        Rtas.Election.run ~seed:(Int64.of_int seed)
          ~adversary:(hashing_adaptive_adversary seed) ~algorithm ~n:16 ~k ()
      in
      let winners =
        Array.fold_left
          (fun a r -> if r = Some 1 then a + 1 else a)
          0 o.Rtas.Election.results
      in
      winners = 1)

let prop_stats_bounds =
  QCheck2.Test.make ~count:200 ~name:"stats: mean/median within [min, max]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = Sim.Stats.summarize xs in
      s.Sim.Stats.mean >= s.Sim.Stats.min -. 1e-9
      && s.Sim.Stats.mean <= s.Sim.Stats.max +. 1e-9
      && s.Sim.Stats.median >= s.Sim.Stats.min
      && s.Sim.Stats.median <= s.Sim.Stats.max
      && s.Sim.Stats.p95 >= s.Sim.Stats.median
      && s.Sim.Stats.stddev >= 0.0
      && s.Sim.Stats.count = List.length xs)

let prop_stats_constant_sample =
  QCheck2.Test.make ~count:100 ~name:"stats: constant sample has zero stddev"
    QCheck2.Gen.(pair (float_range (-5.0) 5.0) (int_range 1 20))
    (fun (v, n) ->
      let s = Sim.Stats.summarize (List.init n (fun _ -> v)) in
      abs_float s.Sim.Stats.stddev < 1e-9 && abs_float (s.Sim.Stats.mean -. v) < 1e-9)

let prop_visibility_groups_consistent =
  (* Run a random election with tracing; every (p, q) in the sees
     relation must land p and q in the same group. *)
  QCheck2.Test.make ~count:60 ~name:"visibility: sees implies same group"
    QCheck2.Gen.(pair (int_range 2 12) (int_range 1 1000))
    (fun (k, seed) ->
      let mem = Sim.Memory.create () in
      let le = Leaderelect.Tournament.make mem ~n:k in
      let sched =
        Sim.Sched.create ~seed:(Int64.of_int seed) ~record_trace:true
          (Leaderelect.Le.programs le ~k)
      in
      Sim.Sched.run sched
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
      let trace = Sim.Sched.trace sched in
      let reps = Sim.Visibility.groups ~n:k trace in
      List.for_all (fun (p, q) -> reps.(p) = reps.(q)) (Sim.Visibility.sees trace))

let prop_consensus_agreement =
  QCheck2.Test.make ~count:150 ~name:"consensus2: agreement and validity"
    QCheck2.Gen.(triple (int_range 0 100) (int_range 0 100) (int_range 1 2000))
    (fun (va, vb, seed) ->
      let mem = Sim.Memory.create () in
      let c = Consensus.Consensus2.from_le2 mem in
      let programs =
        [|
          (fun ctx -> Consensus.Consensus2.propose c ctx ~port:0 va);
          (fun ctx -> Consensus.Consensus2.propose c ctx ~port:1 vb);
        |]
      in
      let sched = Sim.Sched.create ~seed:(Int64.of_int seed) programs in
      Sim.Sched.run sched
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 13)));
      match (Sim.Sched.result sched 0, Sim.Sched.result sched 1) with
      | Some a, Some b -> a = b && (a = va || a = vb)
      | _ -> false)

let prop_renaming_distinct =
  QCheck2.Test.make ~count:60 ~name:"renaming: names distinct and tight"
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 1000))
    (fun (k, seed) ->
      let mem = Sim.Memory.create () in
      let line =
        Renaming.Tas_line.create mem ~names:k
          ~make_le:Leaderelect.Tournament.make ~n:k
      in
      let sched =
        Sim.Sched.create ~seed:(Int64.of_int seed)
          (Array.init k (fun _ ctx -> Renaming.Tas_line.acquire line ctx))
      in
      Sim.Sched.run sched
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 29)));
      let names = Array.to_list (Array.map Option.get (Sim.Sched.results sched)) in
      List.length (List.sort_uniq compare names) = k
      && List.for_all (fun x -> x >= 0 && x < k) names)

let () =
  Alcotest.run "core"
    [
      ( "registry",
        [
          Alcotest.test_case "unique names" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "complete" `Quick test_registry_complete;
        ] );
      ( "election",
        [
          Alcotest.test_case "basic run" `Quick test_election_run_basic;
          Alcotest.test_case "every algorithm" `Quick test_election_every_algorithm;
          Alcotest.test_case "unknown algorithm" `Quick test_election_unknown_algorithm;
          Alcotest.test_case "tas wrapper" `Quick test_election_tas;
          Alcotest.test_case "deterministic by seed" `Quick
            test_election_deterministic_given_seed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_unique_winner;
            prop_tas_semantics;
            prop_covering_recurrence_bounds;
            prop_splitter_no_two_stops;
            prop_rng_geometric_support;
            prop_unique_winner_adaptive;
            prop_stats_bounds;
            prop_stats_constant_sample;
            prop_visibility_groups_consistent;
            prop_consensus_agreement;
            prop_renaming_distinct;
          ] );
    ]
