(* Tests for the renaming applications (TAS line and Moir-Anderson
   splitter grid). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let line_programs ?(names = 16) ~k () =
  let mem = Sim.Memory.create () in
  let line =
    Renaming.Tas_line.create mem ~names ~make_le:Leaderelect.Le_logstar.make
      ~n:names
  in
  Array.init k (fun _ ctx -> Renaming.Tas_line.acquire line ctx)

let test_line_distinct_names () =
  List.iter
    (fun k ->
      for seed = 1 to 50 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (line_programs ~k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
        let names = Array.map Option.get (Sim.Sched.results sched) in
        checki "all distinct" k
          (List.length (List.sort_uniq compare (Array.to_list names)))
      done)
    [ 1; 2; 5; 10; 16 ]

let test_line_tight_namespace () =
  (* k participants acquire names within {0..k-1}. *)
  List.iter
    (fun k ->
      for seed = 1 to 50 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (line_programs ~k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)));
        Array.iter
          (fun r ->
            let name = Option.get r in
            checkb "name < k" true (name >= 0 && name < k))
          (Sim.Sched.results sched)
      done)
    [ 1; 3; 8 ]

let test_line_exhausted () =
  (* More participants than names must raise. *)
  let raised = ref false in
  (try
     let sched = Sim.Sched.create (line_programs ~names:2 ~k:3 ()) in
     Sim.Sched.run sched (Sim.Adversary.round_robin ())
   with Failure _ -> raised := true);
  checkb "namespace exhaustion detected" true !raised

let grid_programs ~cap ~k () =
  let mem = Sim.Memory.create () in
  let grid = Renaming.Splitter_grid.create mem ~k:cap in
  Array.init k (fun _ ctx -> Renaming.Splitter_grid.acquire grid ctx)

let test_grid_distinct_names () =
  List.iter
    (fun k ->
      for seed = 1 to 100 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (grid_programs ~cap:k ~k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
        let names = Array.map Option.get (Sim.Sched.results sched) in
        checki "all distinct" k
          (List.length (List.sort_uniq compare (Array.to_list names)))
      done)
    [ 1; 2; 4; 8 ]

let test_grid_namespace_bound () =
  (* Names fall within k(k+1)/2 (contention k = capacity). *)
  List.iter
    (fun k ->
      for seed = 1 to 50 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (grid_programs ~cap:k ~k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 5)));
        Array.iter
          (fun r ->
            let name = Option.get r in
            checkb "within triangle" true (name >= 0 && name < k * (k + 1) / 2))
          (Sim.Sched.results sched)
      done)
    [ 2; 4; 8 ]

let test_grid_adaptive_namespace () =
  (* With contention k' < capacity, names stay within the first
     k'(k'+1)/2 — the diagonal numbering makes the grid adaptive. *)
  let cap = 16 in
  List.iter
    (fun k' ->
      for seed = 1 to 50 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed)
            (grid_programs ~cap ~k:k' ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 11)));
        Array.iter
          (fun r ->
            let name = Option.get r in
            checkb
              (Printf.sprintf "k'=%d: name %d < %d" k' name (k' * (k' + 1) / 2))
              true
              (name < k' * (k' + 1) / 2))
          (Sim.Sched.results sched)
      done)
    [ 1; 2; 4 ]

let test_grid_solo_gets_zero () =
  let sched = Sim.Sched.create (grid_programs ~cap:8 ~k:1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo gets name 0" 0 (Option.get (Sim.Sched.result sched 0))

let test_grid_space_quadratic () =
  let mem = Sim.Memory.create () in
  let _ = Renaming.Splitter_grid.create mem ~k:8 in
  (* 36 splitters x 2 registers *)
  checki "registers" 72 (Sim.Memory.allocated mem)

let () =
  Alcotest.run "renaming"
    [
      ( "tas-line",
        [
          Alcotest.test_case "distinct names" `Quick test_line_distinct_names;
          Alcotest.test_case "tight namespace" `Quick test_line_tight_namespace;
          Alcotest.test_case "exhaustion" `Quick test_line_exhausted;
        ] );
      ( "splitter-grid",
        [
          Alcotest.test_case "distinct names" `Quick test_grid_distinct_names;
          Alcotest.test_case "namespace k(k+1)/2" `Quick test_grid_namespace_bound;
          Alcotest.test_case "adaptive namespace" `Quick
            test_grid_adaptive_namespace;
          Alcotest.test_case "solo name 0" `Quick test_grid_solo_gets_zero;
          Alcotest.test_case "space quadratic" `Quick test_grid_space_quadratic;
        ] );
    ]
