(* Tests for the lower-bound machinery (Sections 5-6). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 log* and hitting times} *)

let test_log_star_values () =
  checki "log* 1" 0 (Lowerbound.Logstar.log_star 1.0);
  checki "log* 2" 1 (Lowerbound.Logstar.log_star 2.0);
  checki "log* 4" 2 (Lowerbound.Logstar.log_star 4.0);
  checki "log* 16" 3 (Lowerbound.Logstar.log_star 16.0);
  checki "log* 65536" 4 (Lowerbound.Logstar.log_star 65536.0);
  checki "log* 2^64" 5 (Lowerbound.Logstar.log_star (2.0 ** 64.0))

let test_iterations_logstar_rate () =
  (* The chain of Section 2.1 shrinks to at most min(f(N)-1, N-1) per
     level (the splitter always eliminates someone), so with
     f(k) = 2 log k + 6 the level count is O(log* k) plus the constant
     tail below f's fixed point: tiny, and growing extremely slowly. *)
  let iters k =
    Lowerbound.Logstar.iterations_to_constant
      ~f:(fun x ->
        Float.min (x -. 1.0) ((2.0 *. Lowerbound.Logstar.log2 x) +. 5.0))
      k
  in
  let i256 = iters 256.0 and i1m = iters 1_000_000.0 and i1g = iters 1e18 in
  checkb "small" true (i256 <= 20);
  checkb "slow growth" true (i1g <= i1m + 3);
  checkb "monotone-ish" true (i256 <= i1m && i1m <= i1g)

let test_iterations_sqrt_rate () =
  (* f(k) = 2 sqrt k gives O(log log k) iterations. *)
  let iters k =
    Lowerbound.Logstar.iterations_to_constant
      ~f:(fun x -> 2.0 *. sqrt x)
      ~floor_:16.0 k
  in
  checkb "loglog-ish for 2^20" true (iters (2.0 ** 20.0) <= 8);
  checkb "loglog-ish for 2^40" true (iters (2.0 ** 40.0) <= 12)

let test_markov_binomial_mean () =
  let rng = Sim.Rng.create 5L in
  let trials = 20_000 in
  let total = ref 0 in
  for _ = 1 to trials do
    total := !total + Lowerbound.Markov.binomial_step rng ~j:100 ~mean:20.0
  done;
  let mean = float_of_int !total /. float_of_int trials in
  checkb (Printf.sprintf "mean %.2f ~ 20" mean) true (abs_float (mean -. 20.0) < 1.0)

let test_markov_hitting_time_logstar () =
  (* The chain with rate min(f(j)-1, j-1) (f from Lemma 2.2, and the
     splitter's guaranteed elimination) must hit 0 in few steps even from
     large n. *)
  let rate j =
    Float.min
      (float_of_int (j - 1))
      ((2.0 *. Lowerbound.Logstar.log2 (float_of_int j)) +. 5.0)
  in
  let h = Lowerbound.Markov.hitting_time_mc ~rate ~n:4096 ~trials:200 ~seed:9L in
  checkb (Printf.sprintf "hitting time %.2f small" h) true (h < 40.0)

let test_markov_hitting_monotone_in_rate () =
  let slow = Lowerbound.Markov.hitting_time_mc
      ~rate:(fun j -> float_of_int j *. 0.9)
      ~n:512 ~trials:200 ~seed:11L
  in
  let fast = Lowerbound.Markov.hitting_time_mc
      ~rate:(fun j -> sqrt (float_of_int j))
      ~n:512 ~trials:200 ~seed:11L
  in
  checkb (Printf.sprintf "slow %.1f > fast %.1f" slow fast) true (slow > fast)

(* {1 Covering recurrence (Theorem 5.1 / Claim 5.5)} *)

let test_f_base () =
  checki "f(0) = n" 64 (Lowerbound.Covering.f ~n:64 0);
  checki "f(1) = n - 1 + 1... " 64 (Lowerbound.Covering.f ~n:64 1)

let test_f_monotone_nonincreasing () =
  let n = 128 in
  for k = 0 to n - 2 do
    checkb "f never increases" true
      (Lowerbound.Covering.f ~n (k + 1) <= Lowerbound.Covering.f ~n k)
  done

let test_claim_5_5_all_powers () =
  List.iter
    (fun n ->
      checkb
        (Printf.sprintf "claim 5.5 holds for n = %d" n)
        true
        (Lowerbound.Covering.check_claim_5_5 ~n))
    [ 8; 16; 32; 64; 128; 256; 1024; 4096; 65536; 1 lsl 20 ]

let test_f_at_n_minus_4 () =
  (* f(n-4) = 4 (log2 n - 1) for powers of two. *)
  List.iter
    (fun (n, log2n) ->
      checki
        (Printf.sprintf "f(%d - 4)" n)
        (4 * (log2n - 1))
        (Lowerbound.Covering.f ~n (n - 4)))
    [ (8, 3); (16, 4); (64, 6); (256, 8); (4096, 12); (65536, 16) ]

let test_register_lower_bound () =
  List.iter
    (fun (n, log2n) ->
      checki
        (Printf.sprintf "bound(%d) = log n - 1" n)
        (log2n - 1)
        (Lowerbound.Covering.register_lower_bound ~n))
    [ (8, 3); (64, 6); (1024, 10); (65536, 16) ]

let test_interval_of () =
  let n = 64 in
  checki "k=0 in I(0)" 0 (Option.get (Lowerbound.Covering.interval_of ~n 0));
  checki "k=31 in I(0)" 0 (Option.get (Lowerbound.Covering.interval_of ~n 31));
  checki "k=32 in I(1)" 1 (Option.get (Lowerbound.Covering.interval_of ~n 32));
  checki "k=60 in I(4)" 4 (Option.get (Lowerbound.Covering.interval_of ~n 60))

(* {1 Covering harness on real implementations} *)

let harness_impls =
  [
    ("log*", Leaderelect.Le_logstar.make);
    ("tournament", Leaderelect.Tournament.make);
    ("ratrace-lean", Leaderelect.Rr_le.make_lean);
  ]

let test_base_round (name, make) () =
  ignore name;
  List.iter
    (fun n ->
      let r = Lowerbound.Covering.base_round ~make ~n ~seed:3L in
      checki "nobody finished before writing" 0 r.Lowerbound.Covering.finished_early;
      checki "everyone poised to write" n r.Lowerbound.Covering.poised_writers;
      checkb "at least one register covered" true
        (r.Lowerbound.Covering.distinct_covered >= 1))
    [ 4; 16; 64 ]

let test_written_registers_exceed_bound () =
  (* Every implementation writes at least log2 n - 1 distinct registers
     in a full election — the Omega(log n) bound is comfortably met. *)
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          let w = Lowerbound.Covering.written_registers ~make ~n ~seed:7L in
          let bound = Lowerbound.Covering.register_lower_bound ~n in
          checkb
            (Printf.sprintf "%s at n=%d writes %d >= %d" name n w bound)
            true (w >= bound))
        [ 8; 32; 64 ])
    harness_impls

(* {1 Covering executor (Lemma 5.4 rounds)} *)

let test_covering_exec_tournament () =
  (* Tournament covers n distinct registers at the base configuration:
     max cover is 1, so no rounds are needed and the covered count far
     exceeds the bound. *)
  List.iter
    (fun n ->
      let r =
        Lowerbound.Covering_exec.run ~make:Leaderelect.Tournament.make ~n
          ~seed:3L ()
      in
      checki "no rounds needed" 0 r.Lowerbound.Covering_exec.rounds;
      checki "n registers covered" n r.Lowerbound.Covering_exec.final_covered;
      checki "no anomalies" 0 r.Lowerbound.Covering_exec.anomalies)
    [ 8; 32 ]

let test_covering_exec_ratrace_lean () =
  (* The interesting case: everyone piles onto the root splitter, and the
     rounds must spread the covers until max cover <= 4 while keeping at
     least f(n-4) representatives and covering at least the bound. *)
  List.iter
    (fun n ->
      let r =
        Lowerbound.Covering_exec.run ~make:Leaderelect.Rr_le.make_lean ~n
          ~seed:7L ()
      in
      checkb "made progress" true (r.Lowerbound.Covering_exec.rounds > 0);
      checkb "max cover driven down" true
        (r.Lowerbound.Covering_exec.max_cover <= 4);
      checkb
        (Printf.sprintf "covered %d >= bound %d"
           r.Lowerbound.Covering_exec.final_covered
           (Lowerbound.Covering.register_lower_bound ~n))
        true
        (r.Lowerbound.Covering_exec.final_covered
        >= Lowerbound.Covering.register_lower_bound ~n);
      checki "claim 5.3 never contradicted" 0
        r.Lowerbound.Covering_exec.anomalies)
    [ 8; 16; 32; 64 ]

let test_covering_exec_reps_dominate_f () =
  (* Lemma 5.4(e): the number of surviving representatives dominates the
     f recurrence at the corresponding round. *)
  let n = 32 in
  let r =
    Lowerbound.Covering_exec.run ~make:Leaderelect.Rr_le.make_lean ~n ~seed:5L ()
  in
  let k = min (n - 1) r.Lowerbound.Covering_exec.rounds in
  checkb
    (Printf.sprintf "reps %d >= f(%d) = %d" r.Lowerbound.Covering_exec.final_reps
       k (Lowerbound.Covering.f ~n k))
    true
    (r.Lowerbound.Covering_exec.final_reps >= Lowerbound.Covering.f ~n k - 1)

let test_covering_exec_deterministic () =
  let run () =
    Lowerbound.Covering_exec.run ~make:Leaderelect.Rr_le.make_lean ~n:16
      ~seed:9L ()
  in
  let a = run () and b = run () in
  checki "same rounds" a.Lowerbound.Covering_exec.rounds b.Lowerbound.Covering_exec.rounds;
  checki "same reps" a.Lowerbound.Covering_exec.final_reps b.Lowerbound.Covering_exec.final_reps;
  checki "same covered" a.Lowerbound.Covering_exec.final_covered
    b.Lowerbound.Covering_exec.final_covered

(* {1 Yao 2-process experiment (Theorem 6.1)} *)

let tas_pair () =
  let mem = Sim.Memory.create () in
  let le = Primitives.Le2.create mem in
  let tas =
    Primitives.Tas.create mem ~elect:(fun ctx ->
        Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
  in
  Array.init 2 (fun _ ctx -> Primitives.Tas.apply tas ctx)

let test_schedule_count () =
  checki "C(2,1)" 2 (List.length (Lowerbound.Yao.schedules ~t:1));
  checki "C(4,2)" 6 (List.length (Lowerbound.Yao.schedules ~t:2));
  checki "C(8,4)" 70 (List.length (Lowerbound.Yao.schedules ~t:4))

let test_schedules_balanced () =
  List.iter
    (fun s ->
      let ones = Array.fold_left ( + ) 0 s in
      checki "balanced" 3 ones)
    (Lowerbound.Yao.schedules ~t:3)

let test_yao_bound_respected () =
  (* max over schedules of Pr[>= t steps] must dominate 1/4^t. *)
  List.iter
    (fun t ->
      let p = Lowerbound.Yao.measure ~trials:150 ~make:tas_pair ~t () in
      checkb
        (Printf.sprintf "t=%d: %.3f >= %.5f" t p.Lowerbound.Yao.max_prob
           p.Lowerbound.Yao.bound)
        true
        (p.Lowerbound.Yao.max_prob >= p.Lowerbound.Yao.bound))
    [ 1; 2; 3; 4; 5 ]

let test_yao_decays () =
  (* The adversary's success probability decays with t (wait-freedom),
     so both curves fall; check the measured one is eventually small. *)
  let p = Lowerbound.Yao.measure ~trials:300 ~make:tas_pair ~t:40 () in
  checkb
    (Printf.sprintf "Pr[>= 40 steps] = %.3f < 0.9" p.Lowerbound.Yao.max_prob)
    true
    (p.Lowerbound.Yao.max_prob < 0.9)

let () =
  Alcotest.run "lowerbound"
    [
      ( "logstar",
        [
          Alcotest.test_case "values" `Quick test_log_star_values;
          Alcotest.test_case "iterations, log rate" `Quick test_iterations_logstar_rate;
          Alcotest.test_case "iterations, sqrt rate" `Quick test_iterations_sqrt_rate;
        ] );
      ( "markov",
        [
          Alcotest.test_case "binomial mean" `Quick test_markov_binomial_mean;
          Alcotest.test_case "hitting time log*" `Quick test_markov_hitting_time_logstar;
          Alcotest.test_case "monotone in rate" `Quick test_markov_hitting_monotone_in_rate;
        ] );
      ( "covering",
        [
          Alcotest.test_case "f base" `Quick test_f_base;
          Alcotest.test_case "f nonincreasing" `Quick test_f_monotone_nonincreasing;
          Alcotest.test_case "claim 5.5" `Quick test_claim_5_5_all_powers;
          Alcotest.test_case "f(n-4) closed form" `Quick test_f_at_n_minus_4;
          Alcotest.test_case "register bound" `Quick test_register_lower_bound;
          Alcotest.test_case "intervals" `Quick test_interval_of;
        ] );
      ( "covering-harness",
        List.map
          (fun (name, make) ->
            Alcotest.test_case name `Quick (test_base_round (name, make)))
          harness_impls
        @ [
            Alcotest.test_case "written registers" `Quick
              test_written_registers_exceed_bound;
          ] );
      ( "covering-exec",
        [
          Alcotest.test_case "tournament base" `Quick test_covering_exec_tournament;
          Alcotest.test_case "ratrace-lean rounds" `Quick
            test_covering_exec_ratrace_lean;
          Alcotest.test_case "reps dominate f" `Quick
            test_covering_exec_reps_dominate_f;
          Alcotest.test_case "deterministic" `Quick test_covering_exec_deterministic;
        ] );
      ( "yao",
        [
          Alcotest.test_case "schedule count" `Quick test_schedule_count;
          Alcotest.test_case "schedules balanced" `Quick test_schedules_balanced;
          Alcotest.test_case "bound respected" `Slow test_yao_bound_respected;
          Alcotest.test_case "decays with t" `Quick test_yao_decays;
        ] );
    ]
