(* Tests for the 2-process consensus <-> TAS equivalence (paper intro). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let cons_programs ?(proposals = [| 7; 9 |]) () =
  let mem = Sim.Memory.create () in
  let c = Consensus.Consensus2.from_le2 mem in
  Array.mapi
    (fun port v ctx -> Consensus.Consensus2.propose c ctx ~port v)
    proposals

let test_agreement_validity_random () =
  for seed = 1 to 1000 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (cons_programs ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
    let a = Option.get (Sim.Sched.result sched 0)
    and b = Option.get (Sim.Sched.result sched 1) in
    checki "agreement" a b;
    checkb "validity" true (a = 7 || a = 9)
  done

let test_agreement_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:12 ~programs:(fun () -> cons_programs ())
      ~check:(fun sched ->
        match (Sim.Sched.result sched 0, Sim.Sched.result sched 1) with
        | Some a, Some b ->
            if a <> b then Alcotest.fail "disagreement";
            if a <> 7 && a <> 9 then Alcotest.fail "invalid decision"
        | Some a, None | None, Some a ->
            if a <> 7 && a <> 9 then Alcotest.fail "invalid decision"
        | None, None -> ())
      ()
  in
  checkb "explored" true (n > 1000)

let test_solo_decides_own () =
  for port = 0 to 1 do
    let mem = Sim.Memory.create () in
    let c = Consensus.Consensus2.from_le2 mem in
    let prog ctx = Consensus.Consensus2.propose c ctx ~port (100 + port) in
    let sched = Sim.Sched.create [| prog |] in
    Sim.Sched.run sched (Sim.Adversary.round_robin ());
    checki "solo decides own proposal" (100 + port)
      (Option.get (Sim.Sched.result sched 0))
  done

let test_equal_proposals () =
  for seed = 1 to 100 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed)
        (cons_programs ~proposals:[| 5; 5 |] ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)));
    checki "decides the common value" 5 (Option.get (Sim.Sched.result sched 0));
    checki "both" 5 (Option.get (Sim.Sched.result sched 1))
  done

let test_tas_from_consensus () =
  (* Close the loop: TAS -> consensus -> TAS. *)
  for seed = 1 to 500 do
    let mem = Sim.Memory.create () in
    let c = Consensus.Consensus2.from_le2 mem in
    let tas = Consensus.Consensus2.tas_from_consensus c in
    let programs =
      Array.init 2 (fun port ctx ->
          Consensus.Consensus2.apply tas ctx ~port)
    in
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) programs in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 11)));
    let zeros =
      Array.fold_left
        (fun a r -> if r = Some 0 then a + 1 else a)
        0 (Sim.Sched.results sched)
    in
    checki "exactly one 0" 1 zeros
  done

let test_crash_safety () =
  for crash_after = 0 to 8 do
    for seed = 1 to 30 do
      let sched =
        Sim.Sched.create ~seed:(Int64.of_int (seed + (100 * crash_after)))
          (cons_programs ())
      in
      let adv =
        Sim.Adversary.with_crashes [ (1, crash_after) ]
          (Sim.Adversary.round_robin ())
      in
      Sim.Sched.run sched adv;
      (* p0 must still decide, on a valid value. *)
      match Sim.Sched.result sched 0 with
      | Some v -> checkb "valid decision" true (v = 7 || v = 9)
      | None -> Alcotest.fail "survivor did not decide"
    done
  done

(* {1 Adopt-commit} *)

let ac_outcome_code = function
  | Consensus.Adopt_commit.Commit v -> 10 + v
  | Consensus.Adopt_commit.Adopt v -> v

let ac_programs inputs () =
  let mem = Sim.Memory.create () in
  let ac = Consensus.Adopt_commit.create mem in
  Array.map
    (fun v ctx -> ac_outcome_code (Consensus.Adopt_commit.decide ac ctx v))
    inputs

let check_ac inputs sched =
  let outcomes =
    Array.to_list (Sim.Sched.results sched)
    |> List.filter_map (fun r -> r)
  in
  let value c = if c >= 10 then c - 10 else c in
  let committed = List.filter (fun c -> c >= 10) outcomes in
  (* Coherence: a committed value forces everyone's value. *)
  List.iter
    (fun c ->
      List.iter
        (fun c' ->
          if value c' <> value c then
            Alcotest.fail "coherence violated: commit alongside other value")
        outcomes)
    committed;
  (* Validity. *)
  let inputs_l = Array.to_list inputs in
  List.iter
    (fun c ->
      if not (List.mem (value c) inputs_l) then Alcotest.fail "invalid value")
    outcomes;
  (* Convergence: unanimous inputs must all commit. *)
  if
    Array.for_all (fun v -> v = inputs.(0)) inputs
    && List.length outcomes = Array.length inputs
  then
    List.iter
      (fun c -> if c < 10 then Alcotest.fail "unanimous input did not commit")
      outcomes

let test_ac_exhaustive () =
  List.iter
    (fun inputs ->
      let n =
        Sim.Explore.explore ~depth:10 ~programs:(ac_programs inputs)
          ~check:(check_ac inputs) ()
      in
      Alcotest.(check bool) "explored" true (n >= 1))
    [ [| 0; 1 |]; [| 1; 0 |]; [| 0; 0 |]; [| 1; 1 |] ]

let test_ac_exhaustive_three () =
  List.iter
    (fun inputs ->
      let n =
        Sim.Explore.explore ~depth:8 ~programs:(ac_programs inputs)
          ~check:(check_ac inputs) ()
      in
      Alcotest.(check bool) "explored" true (n >= 1))
    [ [| 0; 1; 0 |]; [| 1; 1; 0 |]; [| 1; 1; 1 |] ]

let test_ac_random_wide () =
  for seed = 1 to 400 do
    let k = 2 + (seed mod 7) in
    let inputs = Array.init k (fun i -> (seed + i) land 1) in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (ac_programs inputs ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)));
    check_ac inputs sched
  done

let test_ac_solo_commits () =
  for v = 0 to 1 do
    let sched = Sim.Sched.create (ac_programs [| v |] ()) in
    Sim.Sched.run sched (Sim.Adversary.round_robin ());
    checki "solo commits own value" (10 + v) (Option.get (Sim.Sched.result sched 0))
  done

(* {1 Conciliator} *)

let test_conciliator_validity () =
  for seed = 1 to 300 do
    let mem = Sim.Memory.create () in
    let conc = Consensus.Conciliator.create mem ~n:8 in
    let inputs = Array.init 8 (fun i -> (seed + i) land 1) in
    let programs =
      Array.map
        (fun v ctx -> Consensus.Conciliator.conciliate conc ctx v)
        inputs
    in
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) programs in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
    Array.iter
      (fun r ->
        let v = Option.get r in
        checkb "output is 0 or 1" true (v = 0 || v = 1))
      (Sim.Sched.results sched)
  done

let test_conciliator_often_agrees () =
  (* Against random oblivious schedules the conciliator should make all
     outputs equal in a healthy fraction of runs. *)
  let agree = ref 0 in
  let trials = 300 in
  for seed = 1 to trials do
    let mem = Sim.Memory.create () in
    let conc = Consensus.Conciliator.create mem ~n:8 in
    let programs =
      Array.init 8 (fun i ctx ->
          Consensus.Conciliator.conciliate conc ctx (i land 1))
    in
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) programs in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 11)));
    let outs = Array.map Option.get (Sim.Sched.results sched) in
    if Array.for_all (fun v -> v = outs.(0)) outs then incr agree
  done;
  checkb
    (Printf.sprintf "agreement in %d/%d runs > 1/3" !agree trials)
    true
    (float_of_int !agree /. float_of_int trials > 0.33)

(* {1 n-process consensus} *)

let consn_programs ?(n = 8) inputs () =
  let mem = Sim.Memory.create () in
  let c = Consensus.Consensus_n.create mem ~n in
  Array.map (fun v ctx -> Consensus.Consensus_n.propose c ctx v) inputs

let check_consensus inputs sched =
  let outs =
    Array.to_list (Sim.Sched.results sched) |> List.filter_map (fun r -> r)
  in
  (match outs with
  | [] -> ()
  | first :: rest ->
      List.iter (fun v -> if v <> first then Alcotest.fail "disagreement") rest);
  let inputs_l = Array.to_list inputs in
  List.iter
    (fun v -> if not (List.mem v inputs_l) then Alcotest.fail "invalid decision")
    outs

let test_consn_random () =
  for seed = 1 to 400 do
    let k = 2 + (seed mod 8) in
    let inputs = Array.init k (fun i -> (seed / 2 + i) land 1) in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (consn_programs ~n:16 inputs ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 13)));
    check_consensus inputs sched;
    checkb "all decided" true (Tutil.all_finished sched)
  done

let test_consn_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:10 ~programs:(consn_programs ~n:2 [| 0; 1 |])
      ~check:(check_consensus [| 0; 1 |])
      ()
  in
  checkb "explored" true (n > 100)

let test_consn_solo () =
  for v = 0 to 1 do
    let sched = Sim.Sched.create (consn_programs ~n:4 [| v |] ()) in
    Sim.Sched.run sched (Sim.Adversary.round_robin ());
    checki "solo decides own value" v (Option.get (Sim.Sched.result sched 0))
  done

let test_consn_crash_safety () =
  for seed = 1 to 150 do
    let inputs = Array.init 6 (fun i -> i land 1) in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (consn_programs ~n:8 inputs ())
    in
    let adv =
      Sim.Adversary.random_crashes ~seed:(Int64.of_int (seed * 3))
        ~crash_prob:0.02
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)))
    in
    Sim.Sched.run sched adv;
    check_consensus inputs sched
  done

let test_consn_expected_steps_small () =
  let total = ref 0 in
  let trials = 100 in
  for seed = 1 to trials do
    let inputs = Array.init 16 (fun i -> i land 1) in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (consn_programs ~n:16 inputs ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 29)));
    total := !total + Sim.Sched.max_steps sched
  done;
  let avg = float_of_int !total /. float_of_int trials in
  checkb (Printf.sprintf "avg max steps %.1f < 80" avg) true (avg < 80.0)

let () =
  Alcotest.run "consensus"
    [
      ( "adopt-commit",
        [
          Alcotest.test_case "exhaustive pairs" `Quick test_ac_exhaustive;
          Alcotest.test_case "exhaustive triples" `Slow test_ac_exhaustive_three;
          Alcotest.test_case "random wide" `Quick test_ac_random_wide;
          Alcotest.test_case "solo commits" `Quick test_ac_solo_commits;
        ] );
      ( "conciliator",
        [
          Alcotest.test_case "validity" `Quick test_conciliator_validity;
          Alcotest.test_case "often agrees" `Quick test_conciliator_often_agrees;
        ] );
      ( "consensus-n",
        [
          Alcotest.test_case "random" `Quick test_consn_random;
          Alcotest.test_case "exhaustive n=2" `Quick test_consn_exhaustive;
          Alcotest.test_case "solo" `Quick test_consn_solo;
          Alcotest.test_case "crash safety" `Quick test_consn_crash_safety;
          Alcotest.test_case "expected steps" `Quick test_consn_expected_steps_small;
        ] );
      ( "consensus2",
        [
          Alcotest.test_case "agreement+validity (random)" `Quick
            test_agreement_validity_random;
          Alcotest.test_case "agreement (exhaustive)" `Slow
            test_agreement_exhaustive;
          Alcotest.test_case "solo" `Quick test_solo_decides_own;
          Alcotest.test_case "equal proposals" `Quick test_equal_proposals;
          Alcotest.test_case "tas from consensus" `Quick test_tas_from_consensus;
          Alcotest.test_case "crash safety" `Quick test_crash_safety;
        ] );
    ]
