(* Tests for the Group Election implementations (Section 2). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let ge_programs make k () =
  let mem = Sim.Memory.create () in
  let ge : Groupelect.Ge.t = make mem in
  Array.init k (fun _ ctx -> if ge.Groupelect.Ge.elect ctx then 1 else 0)

let count_elected sched =
  Array.fold_left
    (fun acc r -> match r with Some 1 -> acc + 1 | _ -> acc)
    0
    (Sim.Sched.results sched)

let logstar_make n mem = Groupelect.Ge_logstar.create mem ~n

(* {1 Figure 1 GroupElect} *)

let test_logstar_solo_elected () =
  let sched = Sim.Sched.create (ge_programs (logstar_make 16) 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo participant elected" 1 (count_elected sched)

let test_logstar_at_least_one () =
  for k = 1 to 12 do
    for seed = 1 to 60 do
      let sched =
        Sim.Sched.create ~seed:(Int64.of_int seed)
          (ge_programs (logstar_make 64) k ())
      in
      Sim.Sched.run sched
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3 + k)));
      checkb "at least one elected" true (count_elected sched >= 1)
    done
  done

let test_logstar_at_least_one_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:10 ~programs:(ge_programs (logstar_make 4) 2)
      ~check:(fun sched ->
        if Array.for_all Option.is_some (Sim.Sched.results sched) then
          if count_elected sched < 1 then Alcotest.fail "nobody elected")
      ()
  in
  checkb "explored" true (n > 100)

let test_logstar_late_arrival_filtered () =
  (* A process that reads the flag after someone set it leaves with
     [false] in one step. *)
  let sched = Sim.Sched.create (ge_programs (logstar_make 16) 2 ()) in
  Sim.Sched.run sched
    (Sim.Adversary.fixed_schedule ~then_halt:false [| 0; 0; 0; 0; 1; 1; 1; 1 |]);
  checki "first is elected" 1 (Option.get (Sim.Sched.result sched 0));
  checki "late arrival filtered" 0 (Option.get (Sim.Sched.result sched 1));
  checki "late arrival used one step" 1 (Sim.Sched.steps sched 1)

let test_logstar_step_complexity () =
  (* Every participant takes at most 4 shared-memory steps. *)
  for seed = 1 to 50 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed)
        (ge_programs (logstar_make 256) 32 ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 5)));
    checkb "O(1) steps" true (Sim.Sched.max_steps sched <= 4)
  done

let test_logstar_space () =
  let mem = Sim.Memory.create () in
  let _ = Groupelect.Ge_logstar.create mem ~n:1024 in
  (* l = 10, so 11 array cells + flag. *)
  checki "registers" 12 (Sim.Memory.allocated mem);
  checki "registers helper agrees" 12 (Groupelect.Ge_logstar.registers ~n:1024)

let test_logstar_performance_parameter () =
  (* Lemma 2.2: f(k) <= 2 log2 k + 6 against location-oblivious
     adversaries; measure under random oblivious schedules. *)
  List.iter
    (fun k ->
      let trials = 300 in
      let total = ref 0 in
      for seed = 1 to trials do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int (seed * 11))
            (ge_programs (logstar_make 4096) k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 17)));
        total := !total + count_elected sched
      done;
      let mean = float_of_int !total /. float_of_int trials in
      let bound = (2.0 *. (log (float_of_int k) /. log 2.0)) +. 6.0 in
      checkb
        (Printf.sprintf "f(%d) = %.2f <= %.2f" k mean bound)
        true (mean <= bound))
    [ 2; 8; 32; 128; 512 ]

(* {1 Sifting GroupElect} *)

let sift_make p mem = Groupelect.Ge_sift.create mem ~write_prob:p

let test_sift_solo_elected () =
  let sched = Sim.Sched.create (ge_programs (sift_make 0.3) 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo participant elected" 1 (count_elected sched)

let test_sift_at_least_one () =
  List.iter
    (fun p ->
      for seed = 1 to 100 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed)
            (ge_programs (sift_make p) 8 ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)));
        checkb "at least one elected" true (count_elected sched >= 1)
      done)
    [ 0.01; 0.2; 0.9 ]

let test_sift_writers_always_elected () =
  (* With write_prob = 1 everybody writes, hence everybody is elected. *)
  let sched = Sim.Sched.create (ge_programs (sift_make 1.0) 6 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "all elected" 6 (count_elected sched)

let test_sift_performance () =
  (* E[elected] <= p*k + 1/p + 1, measured. For k = 100, p = 0.1: ~20. *)
  let k = 100 and p = 0.1 in
  let trials = 300 in
  let total = ref 0 in
  for seed = 1 to trials do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int (seed * 13))
        (ge_programs (sift_make p) k ())
    in
    Sim.Sched.run sched (Sim.Adversary.round_robin ());
    total := !total + count_elected sched
  done;
  let mean = float_of_int !total /. float_of_int trials in
  let bound = (p *. float_of_int k) +. (1.0 /. p) +. 1.0 in
  checkb (Printf.sprintf "f = %.2f <= %.2f" mean bound) true (mean <= bound)

let test_sift_space () =
  let mem = Sim.Memory.create () in
  let _ = Groupelect.Ge_sift.create mem ~write_prob:0.5 in
  checki "one register" 1 (Sim.Memory.allocated mem)

let test_sift_invalid_prob () =
  let mem = Sim.Memory.create () in
  checkb "rejects 0" true
    (try
       ignore (Groupelect.Ge_sift.create mem ~write_prob:0.0);
       false
     with Invalid_argument _ -> true);
  checkb "rejects > 1" true
    (try
       ignore (Groupelect.Ge_sift.create mem ~write_prob:1.5);
       false
     with Invalid_argument _ -> true)

let test_sift_schedule_shape () =
  (* Theta(log log n) levels: small for any practical n, growing with n. *)
  let l1 = Array.length (Groupelect.Ge_sift.probability_schedule ~n:16) in
  let l2 = Array.length (Groupelect.Ge_sift.probability_schedule ~n:65536) in
  let l3 = Array.length (Groupelect.Ge_sift.probability_schedule ~n:(1 lsl 30)) in
  checkb "nonempty for 16" true (l1 >= 1);
  checkb "monotone" true (l1 <= l2 && l2 <= l3);
  checkb "tiny even for 2^30" true (l3 <= 12);
  Array.iter
    (fun p -> checkb "probability in (0,1]" true (p > 0.0 && p <= 1.0))
    (Groupelect.Ge_sift.probability_schedule ~n:65536)

let test_sift_sifts () =
  (* One sifting level with p = 1/sqrt k should cut the crowd roughly to
     2 sqrt k; check it at least halves k = 256 on average. *)
  let k = 256 in
  let p = 1.0 /. sqrt (float_of_int k) in
  let trials = 200 in
  let total = ref 0 in
  for seed = 1 to trials do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int (seed * 29))
        (ge_programs (sift_make p) k ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 37)));
    total := !total + count_elected sched
  done;
  let mean = float_of_int !total /. float_of_int trials in
  checkb (Printf.sprintf "mean %.1f < k/4" mean) true (mean < float_of_int k /. 4.0)

(* {1 Dummy GroupElect} *)

let test_dummy_elects_everyone () =
  let mem = Sim.Memory.create () in
  let ge = Groupelect.Ge_dummy.create () in
  let sched =
    Sim.Sched.create
      (Array.init 5 (fun _ ctx -> if ge.Groupelect.Ge.elect ctx then 1 else 0))
  in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "all elected" 5 (count_elected sched);
  checki "no registers" 0 (Sim.Memory.allocated mem);
  checki "no steps" 0 (Sim.Sched.time sched)

let () =
  Alcotest.run "groupelect"
    [
      ( "ge-logstar",
        [
          Alcotest.test_case "solo elected" `Quick test_logstar_solo_elected;
          Alcotest.test_case "at least one elected" `Quick test_logstar_at_least_one;
          Alcotest.test_case "at least one (exhaustive)" `Quick
            test_logstar_at_least_one_exhaustive;
          Alcotest.test_case "doorway filters late arrivals" `Quick
            test_logstar_late_arrival_filtered;
          Alcotest.test_case "O(1) steps" `Quick test_logstar_step_complexity;
          Alcotest.test_case "O(log n) space" `Quick test_logstar_space;
          Alcotest.test_case "performance f(k) <= 2 log k + 6" `Slow
            test_logstar_performance_parameter;
        ] );
      ( "ge-sift",
        [
          Alcotest.test_case "solo elected" `Quick test_sift_solo_elected;
          Alcotest.test_case "at least one elected" `Quick test_sift_at_least_one;
          Alcotest.test_case "writers elected" `Quick test_sift_writers_always_elected;
          Alcotest.test_case "performance bound" `Quick test_sift_performance;
          Alcotest.test_case "one register" `Quick test_sift_space;
          Alcotest.test_case "invalid probability" `Quick test_sift_invalid_prob;
          Alcotest.test_case "schedule shape" `Quick test_sift_schedule_shape;
          Alcotest.test_case "one level sifts" `Quick test_sift_sifts;
        ] );
      ( "ge-dummy",
        [ Alcotest.test_case "elects everyone free" `Quick test_dummy_elects_everyone ] );
    ]
