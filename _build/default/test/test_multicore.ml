(* Tests for the real-multicore (Atomic/Domain) implementations.

   These exercise the algorithms across true parallel domains; the
   adversary is the OS scheduler, so assertions are safety properties
   plus single-run liveness. Domain counts are kept small. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Run [k] domains, each evaluating [body slot rng], and return results. *)
let run_domains ~k body =
  let domains =
    List.init k (fun slot ->
        Domain.spawn (fun () ->
            let rng =
              Random.State.make [| slot * 7919; 42; Hashtbl.hash slot |]
            in
            body slot rng))
  in
  List.map Domain.join domains

let test_mc_le2_single_thread () =
  (* Sequential: first caller wins, second loses. *)
  for _ = 1 to 50 do
    let le = Multicore.Mc_le2.create () in
    let rng = Random.State.make [| 1 |] in
    let a = Multicore.Mc_le2.elect le rng ~port:0 in
    let b = Multicore.Mc_le2.elect le rng ~port:1 in
    checkb "first wins" true a;
    checkb "second loses" false b
  done

let test_mc_le2_parallel () =
  for _ = 1 to 100 do
    let le = Multicore.Mc_le2.create () in
    let results =
      run_domains ~k:2 (fun slot rng -> Multicore.Mc_le2.elect le rng ~port:slot)
    in
    let winners = List.length (List.filter Fun.id results) in
    checki "exactly one winner" 1 winners
  done

let test_mc_le2_solo () =
  let le = Multicore.Mc_le2.create () in
  let rng = Random.State.make [| 3 |] in
  checkb "solo wins" true (Multicore.Mc_le2.elect le rng ~port:1)

let test_mc_tournament_parallel () =
  List.iter
    (fun k ->
      for _ = 1 to 50 do
        let le = Multicore.Mc_tournament.create ~n:k in
        let results =
          run_domains ~k (fun slot rng ->
              Multicore.Mc_tournament.elect le rng ~slot)
        in
        let winners = List.length (List.filter Fun.id results) in
        checki "exactly one winner" 1 winners
      done)
    [ 2; 3; 4 ]

let test_mc_tournament_sequential () =
  let le = Multicore.Mc_tournament.create ~n:4 in
  let rng = Random.State.make [| 5 |] in
  let results =
    List.init 4 (fun slot -> Multicore.Mc_tournament.elect le rng ~slot)
  in
  checki "one winner" 1 (List.length (List.filter Fun.id results))

let test_mc_sift_parallel () =
  for _ = 1 to 50 do
    let le = Multicore.Mc_sift.create ~n:4 in
    let results =
      run_domains ~k:4 (fun slot rng -> Multicore.Mc_sift.elect le rng ~slot)
    in
    let winners = List.length (List.filter Fun.id results) in
    checki "exactly one winner" 1 winners
  done

let test_mc_sift_solo () =
  let le = Multicore.Mc_sift.create ~n:64 in
  let rng = Random.State.make [| 7 |] in
  checkb "solo wins" true (Multicore.Mc_sift.elect le rng ~slot:13)

let test_mc_splitter_solo () =
  let sp = Multicore.Mc_splitter.create () in
  checkb "solo stops" true (Multicore.Mc_splitter.split sp ~id:5 = Multicore.Mc_splitter.S)

let test_mc_splitter_parallel () =
  for _ = 1 to 100 do
    let sp = Multicore.Mc_splitter.create () in
    let results =
      run_domains ~k:3 (fun slot _rng -> Multicore.Mc_splitter.split sp ~id:(slot + 1))
    in
    let count v = List.length (List.filter (fun r -> r = v) results) in
    checkb "at most one S" true (count Multicore.Mc_splitter.S <= 1);
    checkb "not all L" true (count Multicore.Mc_splitter.L <= 2);
    checkb "not all R" true (count Multicore.Mc_splitter.R <= 2)
  done

let test_mc_elim_parallel () =
  for _ = 1 to 50 do
    let le = Multicore.Mc_elim.create ~n:4 in
    let results =
      run_domains ~k:4 (fun slot rng -> Multicore.Mc_elim.elect le rng ~id:(slot + 1))
    in
    checki "exactly one winner" 1 (List.length (List.filter Fun.id results))
  done

let test_mc_elim_sequential () =
  let le = Multicore.Mc_elim.create ~n:4 in
  let rng = Random.State.make [| 9 |] in
  let results = List.init 4 (fun slot -> Multicore.Mc_elim.elect le rng ~id:(slot + 1)) in
  checki "one winner" 1 (List.length (List.filter Fun.id results))

let tas_impls =
  [
    ("tournament", fun () -> Multicore.Mc_tas.of_tournament ~n:4);
    ("sift", fun () -> Multicore.Mc_tas.of_sift ~n:4);
    ("elim", fun () -> Multicore.Mc_tas.of_elim ~n:4);
    ("rr-lean", fun () -> Multicore.Mc_tas.of_rr_lean ~n:4);
    ("native", fun () -> Multicore.Mc_tas.native ());
  ]

let test_mc_tas_unique_zero (name, make) () =
  ignore name;
  for _ = 1 to 50 do
    let tas = make () in
    let results =
      run_domains ~k:4 (fun slot rng -> Multicore.Mc_tas.apply tas rng ~slot)
    in
    let zeros = List.length (List.filter (fun r -> r = 0) results) in
    checki "exactly one 0" 1 zeros;
    checki "others get 1" 3 (List.length (List.filter (fun r -> r = 1) results))
  done

let test_mc_tas_le2_pair () =
  for _ = 1 to 100 do
    let tas = Multicore.Mc_tas.of_le2 () in
    let results =
      run_domains ~k:2 (fun slot rng -> Multicore.Mc_tas.apply tas rng ~slot)
    in
    checki "exactly one 0" 1 (List.length (List.filter (fun r -> r = 0) results))
  done

let test_mc_tas_sequential_semantics () =
  let tas = Multicore.Mc_tas.of_tournament ~n:4 in
  let rng = Random.State.make [| 11 |] in
  checki "first gets 0" 0 (Multicore.Mc_tas.apply tas rng ~slot:0);
  checki "second gets 1" 1 (Multicore.Mc_tas.apply tas rng ~slot:1);
  checki "third gets 1" 1 (Multicore.Mc_tas.apply tas rng ~slot:2)

let () =
  Alcotest.run "multicore"
    [
      ( "le2",
        [
          Alcotest.test_case "sequential" `Quick test_mc_le2_single_thread;
          Alcotest.test_case "parallel" `Quick test_mc_le2_parallel;
          Alcotest.test_case "solo" `Quick test_mc_le2_solo;
        ] );
      ( "tournament",
        [
          Alcotest.test_case "parallel" `Quick test_mc_tournament_parallel;
          Alcotest.test_case "sequential" `Quick test_mc_tournament_sequential;
        ] );
      ( "sift",
        [
          Alcotest.test_case "parallel" `Quick test_mc_sift_parallel;
          Alcotest.test_case "solo" `Quick test_mc_sift_solo;
        ] );
      ( "splitter",
        [
          Alcotest.test_case "solo" `Quick test_mc_splitter_solo;
          Alcotest.test_case "parallel" `Quick test_mc_splitter_parallel;
        ] );
      ( "elim",
        [
          Alcotest.test_case "parallel" `Quick test_mc_elim_parallel;
          Alcotest.test_case "sequential" `Quick test_mc_elim_sequential;
        ] );
      ( "rr-lean",
        [
          Alcotest.test_case "parallel" `Quick (fun () ->
              for _ = 1 to 50 do
                let le = Multicore.Mc_rr_lean.create ~n:4 in
                let results =
                  run_domains ~k:4 (fun slot rng ->
                      Multicore.Mc_rr_lean.elect le rng ~id:(slot + 1))
                in
                checki "exactly one winner" 1
                  (List.length (List.filter Fun.id results))
              done);
          Alcotest.test_case "larger crowd" `Quick (fun () ->
              for _ = 1 to 10 do
                let le = Multicore.Mc_rr_lean.create ~n:8 in
                let results =
                  run_domains ~k:8 (fun slot rng ->
                      Multicore.Mc_rr_lean.elect le rng ~id:(slot + 1))
                in
                checki "exactly one winner" 1
                  (List.length (List.filter Fun.id results))
              done);
          Alcotest.test_case "solo" `Quick (fun () ->
              let le = Multicore.Mc_rr_lean.create ~n:8 in
              let rng = Random.State.make [| 21 |] in
              checkb "solo wins" true (Multicore.Mc_rr_lean.elect le rng ~id:3));
          Alcotest.test_case "sequential" `Quick (fun () ->
              let le = Multicore.Mc_rr_lean.create ~n:4 in
              let rng = Random.State.make [| 23 |] in
              let results =
                List.init 4 (fun slot ->
                    Multicore.Mc_rr_lean.elect le rng ~id:(slot + 1))
              in
              checki "one winner" 1 (List.length (List.filter Fun.id results)));
        ] );
      ( "tas",
        List.map
          (fun (name, make) ->
            Alcotest.test_case name `Quick (test_mc_tas_unique_zero (name, make)))
          tas_impls
        @ [
            Alcotest.test_case "le2 pair" `Quick test_mc_tas_le2_pair;
            Alcotest.test_case "sequential semantics" `Quick
              test_mc_tas_sequential_semantics;
          ] );
    ]
