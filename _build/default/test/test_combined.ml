(* Tests for the Section 4 adversary-independence combiner. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let combined_impls : (string * (Sim.Memory.t -> n:int -> Leaderelect.Le.t)) list =
  [
    ("combined-log*", Combined.Combine.make_logstar);
    ("combined-loglog", Combined.Combine.make_loglog);
    ( "combined-ratrace",
      (* A = RatRace itself: the pathological self-combination the paper
         discusses (mutual elimination) — the rules must still produce a
         winner. *)
      fun mem ~n ->
        Combined.Combine.to_le
          (Combined.Combine.create mem ~n ~make_a:Leaderelect.Rr_le.make_lean) );
  ]

(* {1 Coroutine interleaver} *)

let test_coroutine_counts_steps () =
  (* A sub-computation's reads/writes each cost exactly one step of the
     enclosing process, and flips are free. *)
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let prog ctx =
    let sub =
      Combined.Coroutine.spawn (fun () ->
          ignore (Sim.Ctx.flip ctx 2);
          Sim.Ctx.write ctx reg 1;
          ignore (Sim.Ctx.flip ctx 2);
          Sim.Ctx.read ctx reg = 1)
    in
    let rec drive () =
      match Combined.Coroutine.state sub with
      | Combined.Coroutine.Finished b -> if b then 1 else 0
      | Combined.Coroutine.Running ->
          Combined.Coroutine.step sub;
          drive ()
    in
    drive ()
  in
  let sched = Sim.Sched.create [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "result" 1 (Option.get (Sim.Sched.result sched 0));
  checki "two shared steps" 2 (Sim.Sched.steps sched 0);
  checki "two flips" 2 (Sim.Sched.flips sched 0)

let test_coroutine_interleaves () =
  (* Two sub-computations of one process alternate their writes. *)
  let mem = Sim.Memory.create () in
  let a = Sim.Register.create mem and b = Sim.Register.create mem in
  let order = ref [] in
  let prog ctx =
    let wr reg tag () =
      Sim.Ctx.write ctx reg 1;
      order := tag :: !order;
      Sim.Ctx.write ctx reg 2;
      order := tag :: !order;
      true
    in
    let s1 = Combined.Coroutine.spawn (wr a "a") in
    let s2 = Combined.Coroutine.spawn (wr b "b") in
    Combined.Coroutine.step s1;
    Combined.Coroutine.step s2;
    Combined.Coroutine.step s1;
    Combined.Coroutine.step s2;
    0
  in
  let sched = Sim.Sched.create [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  Alcotest.(check (list string)) "alternating" [ "b"; "a"; "b"; "a" ] !order

let test_coroutine_abandon () =
  let mem = Sim.Memory.create () in
  let reg = Sim.Register.create mem in
  let prog ctx =
    let sub =
      Combined.Coroutine.spawn (fun () ->
          Sim.Ctx.write ctx reg 1;
          Sim.Ctx.write ctx reg 2;
          true)
    in
    Combined.Coroutine.step sub;
    Combined.Coroutine.abandon sub;
    Combined.Coroutine.step sub;
    (* further steps are no-ops *)
    Sim.Ctx.read ctx reg
  in
  let sched = Sim.Sched.create [| prog |] in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "only first write landed" 1 (Option.get (Sim.Sched.result sched 0))

(* {1 Combined leader election: generic properties} *)

let test_safety (name, make) () =
  ignore name;
  Tutil.safety_sweep ~trials:20 ~make ~n:16 ~ks:[ 1; 2; 3; 8; 16 ] ()

let test_solo (name, make) () =
  ignore name;
  let sched, _ = Tutil.run_le ~make ~n:8 ~k:1 (Sim.Adversary.round_robin ()) in
  checki "solo wins" 1 (Tutil.count_winners sched)

let test_exhaustive (name, make) () =
  ignore name;
  let programs () =
    let mem = Sim.Memory.create () in
    let le = make mem ~n:2 in
    Leaderelect.Le.programs le ~k:2
  in
  let n =
    Sim.Explore.explore ~depth:7 ~programs
      ~check:(fun sched ->
        let w = Tutil.count_winners sched in
        if w > 1 then Alcotest.fail "two winners";
        if Tutil.all_finished sched && w <> 1 then Alcotest.fail "no winner")
      ()
  in
  checkb "explored" true (n > 50)

let test_medium (name, make) () =
  ignore name;
  for seed = 1 to 10 do
    let sched, _ =
      Tutil.run_le ~seed:(Int64.of_int seed) ~make ~n:64 ~k:64
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)))
    in
    Tutil.check_le_outcome ~crash_free:true sched
  done

(* {1 Theorem 4.1 behaviour} *)

let test_space_is_linear () =
  List.iter
    (fun n ->
      let mem = Sim.Memory.create () in
      ignore (Combined.Combine.create mem ~n ~make_a:(fun mem ~n ->
          Leaderelect.Le_logstar.make mem ~n));
      let regs = Sim.Memory.allocated mem in
      checkb
        (Printf.sprintf "combined(%d) = %d <= 70n" n regs)
        true
        (regs <= 70 * n))
    [ 16; 64; 256 ]

let test_combined_steps_at_most_twice_a () =
  (* Against an oblivious adversary the combination should stay within a
     small factor of the underlying log* algorithm. *)
  let a_combined =
    Tutil.avg_max_steps ~trials:20 ~make:Combined.Combine.make_logstar ~n:256
      ~k:256 ()
  in
  let a_plain =
    Tutil.avg_max_steps ~trials:20 ~make:Leaderelect.Le_logstar.make ~n:256
      ~k:256 ()
  in
  checkb
    (Printf.sprintf "combined %.1f <= 4x plain %.1f + 40" a_combined a_plain)
    true
    (a_combined <= (4.0 *. a_plain) +. 40.0)

let () =
  let per_impl mk = List.map (fun i -> mk i) combined_impls in
  Alcotest.run "combined"
    [
      ( "coroutine",
        [
          Alcotest.test_case "step accounting" `Quick test_coroutine_counts_steps;
          Alcotest.test_case "interleaving" `Quick test_coroutine_interleaves;
          Alcotest.test_case "abandon" `Quick test_coroutine_abandon;
        ] );
      ( "safety",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_safety (name, make))) );
      ( "solo",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_solo (name, make))) );
      ( "exhaustive",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_exhaustive (name, make))) );
      ( "medium",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_medium (name, make))) );
      ( "theorem-4.1",
        [
          Alcotest.test_case "space Theta(n)" `Quick test_space_is_linear;
          Alcotest.test_case "steps close to A's" `Quick
            test_combined_steps_at_most_twice_a;
        ] );
    ]
