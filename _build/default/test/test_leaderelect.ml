(* Tests for the chain construction and every leader-election
   implementation (Sections 2.1-2.3 plus baselines). *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let implementations : (string * (Sim.Memory.t -> n:int -> Leaderelect.Le.t)) list =
  [
    ("log*", Leaderelect.Le_logstar.make);
    ("loglog", Leaderelect.Le_loglog.make);
    ("aa", Leaderelect.Aa.make);
    ("tournament", Leaderelect.Tournament.make);
    ("ratrace-lean", Leaderelect.Rr_le.make_lean);
  ]

(* {1 Chain construction basics} *)

let chain_programs ~n k () =
  let mem = Sim.Memory.create () in
  let ges =
    Array.init n (fun i ->
        Groupelect.Ge_logstar.create ~name:(Printf.sprintf "ge[%d]" i) mem ~n)
  in
  let chain = Leaderelect.Chain.create mem ges in
  Array.init k (fun _ ctx -> if Leaderelect.Chain.elect chain ctx then 1 else 0)

let count_winners sched =
  Array.fold_left
    (fun a r -> if r = Some 1 then a + 1 else a)
    0
    (Sim.Sched.results sched)

let test_chain_solo () =
  let sched = Sim.Sched.create (chain_programs ~n:4 1 ()) in
  Sim.Sched.run sched (Sim.Adversary.round_robin ());
  checki "solo wins" 1 (Option.get (Sim.Sched.result sched 0))

let test_chain_one_winner () =
  List.iter
    (fun (n, k) ->
      for seed = 1 to 50 do
        let sched =
          Sim.Sched.create ~seed:(Int64.of_int seed) (chain_programs ~n k ())
        in
        Sim.Sched.run sched
          (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)));
        checki "exactly one winner" 1 (count_winners sched)
      done)
    [ (2, 2); (8, 8); (32, 32); (32, 9) ]

let test_chain_exhaustive () =
  let n =
    Sim.Explore.explore ~depth:8 ~programs:(chain_programs ~n:2 2)
      ~check:(fun sched ->
        let w = count_winners sched in
        if w > 1 then Alcotest.fail "two winners";
        if Array.for_all Option.is_some (Sim.Sched.results sched) && w <> 1 then
          Alcotest.fail "no winner")
      ()
  in
  checkb "explored" true (n > 100)

let test_chain_never_exhausts () =
  (* N_(i+1) <= N_i - 1, so a k-level chain suffices for k processes;
     Chain.elect raises on overflow, so absence of exceptions is the
     assertion. *)
  for seed = 1 to 100 do
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed) (chain_programs ~n:8 8 ())
    in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 7)))
  done

(* {1 Generic properties of every implementation} *)

let test_impl_safety (name, make) () =
  ignore name;
  Tutil.safety_sweep ~trials:25 ~make ~n:32 ~ks:[ 1; 2; 3; 8; 17; 32 ] ()

let test_impl_solo (name, make) () =
  ignore name;
  let sched, _ =
    Tutil.run_le ~make ~n:16 ~k:1 (Sim.Adversary.round_robin ())
  in
  checki "solo wins" 1 (Tutil.count_winners sched)

let test_impl_sequential (name, make) () =
  (* Processes run one after another: still exactly one winner. *)
  ignore name;
  let k = 8 in
  let schedule =
    Array.concat
      (List.init k (fun pid -> Array.make 4000 pid))
  in
  let sched, _ =
    Tutil.run_le ~make ~n:16 ~k
      (Sim.Adversary.fixed_schedule ~then_halt:false schedule)
  in
  checki "exactly one winner" 1 (Tutil.count_winners sched)

let test_impl_exhaustive (name, make) () =
  ignore name;
  let programs () =
    let mem = Sim.Memory.create () in
    let le = make mem ~n:2 in
    Leaderelect.Le.programs le ~k:2
  in
  let n =
    Sim.Explore.explore ~depth:7 ~programs
      ~check:(fun sched ->
        let w = Tutil.count_winners sched in
        if w > 1 then Alcotest.fail "two winners";
        if Tutil.all_finished sched && w <> 1 then Alcotest.fail "no winner")
      ()
  in
  checkb "explored" true (n > 50)

let test_impl_larger_k (name, make) () =
  ignore name;
  for seed = 1 to 10 do
    let sched, _ =
      Tutil.run_le ~seed:(Int64.of_int seed) ~make ~n:128 ~k:128
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)))
    in
    Tutil.check_le_outcome ~crash_free:true sched
  done

(* {1 Per-algorithm specifics} *)

let test_logstar_space_linear () =
  List.iter
    (fun n ->
      let mem = Sim.Memory.create () in
      ignore (Leaderelect.Le_logstar.create mem ~n);
      let regs = Sim.Memory.allocated mem in
      checkb (Printf.sprintf "log*(%d) = %d <= 10n" n regs) true (regs <= 10 * n))
    [ 16; 64; 256; 1024; 4096 ]

let test_logstar_steps_nearly_constant () =
  (* O(log* k): the average max step count should be essentially flat in
     k; allow a generous factor of 2 between k=4 and k=1024. *)
  let a4 = Tutil.avg_max_steps ~trials:25 ~make:Leaderelect.Le_logstar.make ~n:1024 ~k:4 () in
  let a1024 =
    Tutil.avg_max_steps ~trials:25 ~make:Leaderelect.Le_logstar.make ~n:1024 ~k:1024 ()
  in
  checkb
    (Printf.sprintf "log* steps nearly flat: %.1f -> %.1f" a4 a1024)
    true
    (a1024 < a4 *. 3.0 +. 20.0)

let test_loglog_rungs () =
  let caps = Leaderelect.Le_loglog.rung_capacities ~n:4096 in
  checkb "several rungs" true (Array.length caps >= 3);
  checki "first rung" 4 caps.(0);
  checki "second rung" 16 caps.(1);
  checki "last rung is n" 4096 caps.(Array.length caps - 1);
  let caps_small = Leaderelect.Le_loglog.rung_capacities ~n:3 in
  checki "n small: single rung" 3 caps_small.(0)

let test_loglog_space_linear () =
  List.iter
    (fun n ->
      let mem = Sim.Memory.create () in
      ignore (Leaderelect.Le_loglog.create mem ~n);
      let regs = Sim.Memory.allocated mem in
      checkb (Printf.sprintf "loglog(%d) = %d <= 12n + 64" n regs) true
        (regs <= (12 * n) + 64))
    [ 16; 64; 256; 1024 ]

let test_tournament_all_pids_distinct_leaves () =
  (* Every pid must map to a distinct leaf: sequential runs give the
     first-started process the win. *)
  let k = 8 in
  let schedule = Array.concat (List.init k (fun pid -> Array.make 200 pid)) in
  let sched, _ =
    Tutil.run_le ~make:Leaderelect.Tournament.make ~n:8 ~k
      (Sim.Adversary.fixed_schedule ~then_halt:false schedule)
  in
  checki "one winner" 1 (Tutil.count_winners sched)

let test_tournament_steps_logarithmic () =
  let a = Tutil.avg_max_steps ~trials:25 ~make:Leaderelect.Tournament.make ~n:256 ~k:256 () in
  (* 8 levels, constant expected steps each. *)
  checkb (Printf.sprintf "tournament steps %.1f <= 150" a) true (a <= 150.0)

let test_aa_original_fallback () =
  for seed = 1 to 10 do
    let sched, _ =
      Tutil.run_le ~seed:(Int64.of_int seed) ~make:Leaderelect.Aa.make_original ~n:8
        ~k:8
        (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 3)))
    in
    Tutil.check_le_outcome ~crash_free:true sched
  done

(* {1 The adaptive attack on the log* chain (Section 4 motivation)} *)

let attack_adversary = Leaderelect.Attacks.ascending_location

let test_adaptive_attack_hurts_logstar () =
  (* Under the ascending-location adaptive adversary the log* algorithm
     degrades: its max steps grow roughly linearly in k, far above its
     near-constant behaviour under oblivious scheduling. *)
  let run adv k seed =
    let sched, _ =
      Tutil.run_le ~seed:(Int64.of_int seed) ~make:Leaderelect.Le_logstar.make
        ~n:64 ~k (adv seed)
    in
    Sim.Sched.max_steps sched
  in
  let avg adv k =
    let t = ref 0 in
    for seed = 1 to 20 do
      t := !t + run adv k seed
    done;
    float_of_int !t /. 20.0
  in
  let attacked = avg (fun _ -> attack_adversary ()) 64 in
  let oblivious =
    avg (fun s -> Sim.Adversary.random_oblivious ~seed:(Int64.of_int (s * 3))) 64
  in
  checkb
    (Printf.sprintf "attack %.1f > 2x oblivious %.1f" attacked oblivious)
    true
    (attacked > 2.0 *. oblivious)

let test_rw_attack_hurts_logstar () =
  (* The same degradation is achievable by a merely R/W-oblivious
     adversary: the pending location alone leaks the random index, which
     is the paper's reason the log* algorithm needs the
     location-oblivious model. *)
  let avg adv k =
    let t = ref 0 in
    for seed = 1 to 20 do
      let sched, _ =
        Tutil.run_le ~seed:(Int64.of_int seed) ~make:Leaderelect.Le_logstar.make
          ~n:64 ~k (adv seed)
      in
      t := !t + Sim.Sched.max_steps sched
    done;
    float_of_int !t /. 20.0
  in
  let attacked = avg (fun _ -> Leaderelect.Attacks.ascending_location_rw ()) 64 in
  let oblivious =
    avg (fun s -> Sim.Adversary.random_oblivious ~seed:(Int64.of_int (s * 3))) 64
  in
  Alcotest.(check bool)
    (Printf.sprintf "rw attack %.1f > 2x oblivious %.1f" attacked oblivious)
    true
    (attacked > 2.0 *. oblivious)

let test_read_priority_defeats_sifting () =
  (* A location-oblivious adversary that schedules pending reads first
     makes every sifting participant elected: it sees operation kinds,
     which is exactly what sifting randomizes. Measured on one sifting
     GroupElect: all k processes get elected. *)
  let k = 64 in
  for seed = 1 to 20 do
    let mem = Sim.Memory.create () in
    let ge =
      Groupelect.Ge_sift.create mem ~write_prob:(1.0 /. sqrt (float_of_int k))
    in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed)
        (Array.init k (fun _ ctx -> if ge.Groupelect.Ge.elect ctx then 1 else 0))
    in
    Sim.Sched.run sched (Leaderelect.Attacks.read_priority ());
    let elected =
      Array.fold_left
        (fun a r -> if r = Some 1 then a + 1 else a)
        0 (Sim.Sched.results sched)
    in
    Alcotest.(check int) "everyone elected under read-priority" k elected
  done

let test_read_priority_cannot_hurt_logstar_much () =
  (* The converse separation: read-priority is useless against the
     Figure 1 GroupElect, which stays logarithmic. *)
  let k = 64 in
  let total = ref 0 in
  for seed = 1 to 20 do
    let mem = Sim.Memory.create () in
    let ge = Groupelect.Ge_logstar.create mem ~n:64 in
    let sched =
      Sim.Sched.create ~seed:(Int64.of_int seed)
        (Array.init k (fun _ ctx -> if ge.Groupelect.Ge.elect ctx then 1 else 0))
    in
    Sim.Sched.run sched (Leaderelect.Attacks.read_priority ());
    total :=
      !total
      + Array.fold_left
          (fun a r -> if r = Some 1 then a + 1 else a)
          0 (Sim.Sched.results sched)
  done;
  let mean = float_of_int !total /. 20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "fig-1 elected mean %.1f <= 2 log k + 6" mean)
    true
    (mean <= (2.0 *. (log (float_of_int k) /. log 2.0)) +. 6.0)

let () =
  let per_impl mk =
    List.map (fun (name, make) -> mk (name, make)) implementations
  in
  Alcotest.run "leaderelect"
    [
      ( "chain",
        [
          Alcotest.test_case "solo" `Quick test_chain_solo;
          Alcotest.test_case "one winner" `Quick test_chain_one_winner;
          Alcotest.test_case "exhaustive n=2" `Quick test_chain_exhaustive;
          Alcotest.test_case "never exhausts" `Quick test_chain_never_exhausts;
        ] );
      ( "safety",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_impl_safety (name, make))) );
      ( "solo",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_impl_solo (name, make))) );
      ( "sequential",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_impl_sequential (name, make))) );
      ( "exhaustive",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_impl_exhaustive (name, make))) );
      ( "large-k",
        per_impl (fun (name, make) ->
            Alcotest.test_case name `Quick (test_impl_larger_k (name, make))) );
      ( "specifics",
        [
          Alcotest.test_case "log* space O(n)" `Quick test_logstar_space_linear;
          Alcotest.test_case "log* steps nearly constant" `Quick
            test_logstar_steps_nearly_constant;
          Alcotest.test_case "loglog rung capacities" `Quick test_loglog_rungs;
          Alcotest.test_case "loglog space O(n)" `Quick test_loglog_space_linear;
          Alcotest.test_case "tournament sequential" `Quick
            test_tournament_all_pids_distinct_leaves;
          Alcotest.test_case "tournament steps O(log n)" `Quick
            test_tournament_steps_logarithmic;
          Alcotest.test_case "aa original fallback" `Quick test_aa_original_fallback;
          Alcotest.test_case "adaptive attack on log*" `Quick
            test_adaptive_attack_hurts_logstar;
        ] );
      ( "attack-safety",
        (* Attacks degrade performance, never correctness: every
           algorithm must still elect exactly one winner under every
           attack strategy. *)
        List.concat_map
          (fun (name, make) ->
            List.map
              (fun (aname, adv) ->
                Alcotest.test_case (name ^ " vs " ^ aname) `Quick (fun () ->
                    for seed = 1 to 15 do
                      let sched, _ =
                        Tutil.run_le ~seed:(Int64.of_int seed) ~make ~n:16
                          ~k:16 (adv ())
                      in
                      Tutil.check_le_outcome ~crash_free:true sched
                    done))
              [
                ("ascending", Leaderelect.Attacks.ascending_location);
                ("ascending-rw", Leaderelect.Attacks.ascending_location_rw);
                ("read-priority", Leaderelect.Attacks.read_priority);
              ])
          implementations );
      ( "attack-parsers",
        [
          Alcotest.test_case "register index" `Quick (fun () ->
              Alcotest.(check (option int))
                "R cell" (Some 5)
                (Leaderelect.Attacks.register_index "x.ge[3].R[5]");
              Alcotest.(check (option int))
                "no bracket" None
                (Leaderelect.Attacks.register_index "x.flag");
              Alcotest.(check (option int))
                "trailing index" (Some 12)
                (Leaderelect.Attacks.register_index "chain.sp[12]"));
        ] );
      ( "obstruction-free",
        [
          Alcotest.test_case "solo terminates" `Quick (fun () ->
              let sched, _ =
                Tutil.run_le ~make:Leaderelect.Le_obstruction.make ~n:8 ~k:1
                  (Sim.Adversary.round_robin ())
              in
              checki "solo wins deterministically" 1 (Tutil.count_winners sched));
          Alcotest.test_case "safety under random schedules" `Quick (fun () ->
              for seed = 1 to 200 do
                let sched, _ =
                  Tutil.run_le ~seed:(Int64.of_int seed)
                    ~make:Leaderelect.Le_obstruction.make ~n:8 ~k:8
                    (Sim.Adversary.random_oblivious
                       ~seed:(Int64.of_int (seed * 3)))
                in
                Tutil.check_le_outcome ~crash_free:true sched
              done);
          Alcotest.test_case "deterministic: same schedule, same winner" `Quick
            (fun () ->
              let run () =
                Tutil.run_le ~make:Leaderelect.Le_obstruction.make ~n:8 ~k:8
                  (Sim.Adversary.random_oblivious ~seed:42L)
              in
              let a, _ = run () and b, _ = run () in
              Alcotest.(check (list int))
                "same winners" (Leaderelect.Le.winners a)
                (Leaderelect.Le.winners b));
          Alcotest.test_case "lockstep livelocks (not wait-free)" `Quick
            (fun () ->
              (* Two processes in a duel under strict alternation advance
                 in lockstep forever: obstruction-freedom permits this. *)
              let mem = Sim.Memory.create () in
              let duel = Leaderelect.Le_obstruction.duel2 mem in
              let programs =
                Array.init 2 (fun port ctx ->
                    if Leaderelect.Le_obstruction.duel_elect duel ctx ~port
                    then 1
                    else 0)
              in
              let sched = Sim.Sched.create programs in
              checkb "livelock detected" true
                (try
                   Sim.Sched.run ~max_total_steps:10_000 sched
                     (Sim.Adversary.round_robin ());
                   false
                 with Failure _ -> true));
          Alcotest.test_case "space respects Omega(log n)" `Quick (fun () ->
              List.iter
                (fun n ->
                  let mem = Sim.Memory.create () in
                  ignore (Leaderelect.Le_obstruction.create mem ~n);
                  checkb "above lower bound" true
                    (Sim.Memory.allocated mem
                    >= Lowerbound.Covering.register_lower_bound ~n))
                [ 8; 64; 1024 ]);
        ] );
      ( "separations",
        [
          Alcotest.test_case "rw-oblivious attack on log*" `Quick
            test_rw_attack_hurts_logstar;
          Alcotest.test_case "read-priority defeats sifting" `Quick
            test_read_priority_defeats_sifting;
          Alcotest.test_case "read-priority harmless to fig-1" `Quick
            test_read_priority_cannot_hurt_logstar_much;
        ] );
    ]
