(** The original RatRace leader election (Alistarh, Attiya, Gilbert,
    Giurgiu, Guerraoui, DISC 2010), as summarized in Section 3.1.

    Primary tree of height [3 * ceil(log2 n)] backed by an [n x n] grid;
    the two winners meet in a final 2-process election. Expected step
    complexity O(log k) against the adaptive adversary, but
    Theta(n^3) registers — the space cost the paper's Section 3
    eliminates. *)

type t

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val elect : ?notify_splitter_win:(unit -> unit) -> t -> Sim.Ctx.t -> bool
(** At most one call per process; at most [n] processes.
    [notify_splitter_win] fires the first time the caller wins any
    splitter of the structure (Section 4, rule 3). *)

val tree_height : n:int -> int
