lib/ratrace/rr_classic.mli: Sim
