lib/ratrace/backup_grid.ml: Array Primitives Printf
