lib/ratrace/primary_tree.mli: Sim
