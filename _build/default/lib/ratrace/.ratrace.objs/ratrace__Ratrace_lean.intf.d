lib/ratrace/ratrace_lean.mli: Sim
