lib/ratrace/elim_path.mli: Sim
