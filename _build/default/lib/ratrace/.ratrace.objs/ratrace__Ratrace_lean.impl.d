lib/ratrace/ratrace_lean.ml: Array Elim_path Primary_tree Primitives Printf
