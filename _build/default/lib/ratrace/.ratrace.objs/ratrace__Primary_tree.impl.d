lib/ratrace/primary_tree.ml: Array Primitives Printf
