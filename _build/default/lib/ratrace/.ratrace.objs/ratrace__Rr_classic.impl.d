lib/ratrace/rr_classic.ml: Backup_grid Primary_tree Primitives
