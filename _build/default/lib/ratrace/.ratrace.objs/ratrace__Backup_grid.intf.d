lib/ratrace/backup_grid.mli: Sim
