lib/ratrace/elim_path.ml: Array Primitives Printf
