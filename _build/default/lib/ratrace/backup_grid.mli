(** RatRace's backup grid (Section 3.1): an [n x n] grid of deterministic
    splitters with 3-process elections, entered by processes that fall
    off the primary tree.

    Node [(i, j)] has children [(i+1, j)] (on [L]) and [(i, j+1)] (on
    [R]). A process enters at [(0, 0)], descends until it wins a
    splitter — guaranteed before it leaves the diagonal [i + j < n] when
    at most [n] processes enter (Moir–Anderson) — and then retraces its
    path, winning the election of every node on it; the process that
    wins the election at [(0, 0)] wins the grid. Space is Theta(n^2). *)

type t

type outcome = Lost | Won

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val run : ?notify_stop:(unit -> unit) -> t -> Sim.Ctx.t -> outcome
(** At most one call per process; raises [Failure] if a process leaves
    the grid, which violates the Moir–Anderson guarantee. [notify_stop]
    fires when the caller wins one of the grid's splitters. *)
