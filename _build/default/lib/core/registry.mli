(** Catalog of every leader-election implementation in the library, with
    the complexity bounds the paper (or its cited baselines) proves for
    each. Used by the benchmarks, the CLI and the examples to iterate
    over algorithms uniformly. *)

type entry = {
  name : string;
  make : Sim.Memory.t -> n:int -> Leaderelect.Le.t;
  adversary : Sim.Sched.klass;
      (** Strongest adversary class against which the step bound holds. *)
  steps : string;  (** Expected step complexity, as stated in the paper. *)
  space : string;  (** Register count. *)
  reference : string;
}

val all : entry list

val find : string -> entry option

val names : unit -> string list
