(** One-call driver for running a leader election or a TAS in the
    simulator: the front door of the library.

    {[
      let outcome =
        Rtas.Election.run ~algorithm:"log*" ~n:64 ~k:16
          ~adversary:(Sim.Adversary.random_oblivious ~seed:7L) ()
      in
      Fmt.pr "winner: %a@." Fmt.(option int) outcome.winner
    ]} *)

type outcome = {
  winner : int option;  (** Pid of the unique winner, if any. *)
  max_steps : int;
  max_rmrs : int;  (** Cache-coherent remote memory references. *)
  total_steps : int;
  registers : int;  (** Registers the algorithm allocated. *)
  results : int option array;
  sched : Sim.Sched.t;  (** For further inspection. *)
}

val run :
  ?seed:int64 ->
  ?adversary:Sim.Sched.adversary ->
  algorithm:string ->
  n:int ->
  k:int ->
  unit ->
  outcome
(** Runs [k] participants of the named algorithm (see {!Registry.names})
    dimensioned for [n] processes. Default adversary: round-robin.
    Raises [Invalid_argument] on an unknown algorithm name. *)

val run_tas :
  ?seed:int64 ->
  ?adversary:Sim.Sched.adversary ->
  algorithm:string ->
  n:int ->
  k:int ->
  unit ->
  outcome
(** Same, but wraps the election in the TAS construction; [results] are
    TAS return values and [winner] is the unique 0-returner. *)

val pp_outcome : outcome Fmt.t
