type outcome = {
  winner : int option;
  max_steps : int;
  max_rmrs : int;
  total_steps : int;
  registers : int;
  results : int option array;
  sched : Sim.Sched.t;
}

let lookup algorithm =
  match Registry.find algorithm with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown algorithm %S (expected one of: %s)" algorithm
           (String.concat ", " (Registry.names ())))

let finish ~mem ~win_value sched =
  let winner = ref None in
  Array.iteri
    (fun pid r -> if r = Some win_value then winner := Some pid)
    (Sim.Sched.results sched);
  {
    winner = !winner;
    max_steps = Sim.Sched.max_steps sched;
    max_rmrs = Sim.Sched.max_rmrs sched;
    total_steps = Sim.Sched.time sched;
    registers = Sim.Memory.allocated mem;
    results = Sim.Sched.results sched;
    sched;
  }

let run ?(seed = 1L) ?adversary ~algorithm ~n ~k () =
  let entry = lookup algorithm in
  let adversary =
    match adversary with Some a -> a | None -> Sim.Adversary.round_robin ()
  in
  let mem = Sim.Memory.create () in
  let le = entry.Registry.make mem ~n in
  let sched = Sim.Sched.create ~seed (Leaderelect.Le.programs le ~k) in
  Sim.Sched.run sched adversary;
  finish ~mem ~win_value:1 sched

let run_tas ?(seed = 1L) ?adversary ~algorithm ~n ~k () =
  let entry = lookup algorithm in
  let adversary =
    match adversary with Some a -> a | None -> Sim.Adversary.round_robin ()
  in
  let mem = Sim.Memory.create () in
  let le = entry.Registry.make mem ~n in
  let tas = Primitives.Tas.create mem ~elect:le.Leaderelect.Le.elect in
  let sched =
    Sim.Sched.create ~seed (Array.init k (fun _ ctx -> Primitives.Tas.apply tas ctx))
  in
  Sim.Sched.run sched adversary;
  finish ~mem ~win_value:0 sched

let pp_outcome ppf o =
  Fmt.pf ppf "winner=%a max_steps=%d max_rmrs=%d total_steps=%d registers=%d"
    Fmt.(option ~none:(any "none") int)
    o.winner o.max_steps o.max_rmrs o.total_steps o.registers
