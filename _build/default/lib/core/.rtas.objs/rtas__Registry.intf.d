lib/core/registry.mli: Leaderelect Sim
