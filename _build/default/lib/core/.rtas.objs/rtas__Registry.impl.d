lib/core/registry.ml: Combined Leaderelect List Sim
