lib/core/rtas.ml: Combined Consensus Election Groupelect Leaderelect Lowerbound Multicore Primitives Ratrace Registry Renaming Sim
