lib/core/election.mli: Fmt Sim
