lib/core/election.ml: Array Fmt Leaderelect Primitives Printf Registry Sim String
