type entry = {
  name : string;
  make : Sim.Memory.t -> n:int -> Leaderelect.Le.t;
  adversary : Sim.Sched.klass;
  steps : string;
  space : string;
  reference : string;
}

let all =
  [
    {
      name = "log*";
      make = Leaderelect.Le_logstar.make;
      adversary = Sim.Sched.Location_oblivious;
      steps = "O(log* k)";
      space = "O(n)";
      reference = "Theorem 2.3";
    };
    {
      name = "loglog";
      make = Leaderelect.Le_loglog.make;
      adversary = Sim.Sched.Rw_oblivious;
      steps = "O(log log k)";
      space = "O(n)";
      reference = "Theorem 2.4";
    };
    {
      name = "aa";
      make = Leaderelect.Aa.make;
      adversary = Sim.Sched.Rw_oblivious;
      steps = "O(log log n)";
      space = "O(n) (orig. O(n^3))";
      reference = "Alistarh-Aspnes 2011";
    };
    {
      name = "ratrace";
      make = Leaderelect.Rr_le.make_original;
      adversary = Sim.Sched.Adaptive;
      steps = "O(log k)";
      space = "Theta(n^3)";
      reference = "Alistarh et al. 2010";
    };
    {
      name = "ratrace-lean";
      make = Leaderelect.Rr_le.make_lean;
      adversary = Sim.Sched.Adaptive;
      steps = "O(log k)";
      space = "Theta(n)";
      reference = "Section 3";
    };
    {
      name = "tournament";
      make = Leaderelect.Tournament.make;
      adversary = Sim.Sched.Adaptive;
      steps = "O(log n)";
      space = "Theta(n)";
      reference = "Afek et al. 1992";
    };
    {
      name = "combined-log*";
      make = Combined.Combine.make_logstar;
      adversary = Sim.Sched.Location_oblivious;
      steps = "O(log* k) / O(log k) adaptive";
      space = "Theta(n)";
      reference = "Corollary 4.2";
    };
    {
      name = "combined-loglog";
      make = Combined.Combine.make_loglog;
      adversary = Sim.Sched.Rw_oblivious;
      steps = "O(log log k) / O(log k) adaptive";
      space = "Theta(n)";
      reference = "Corollary 4.2";
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let names () = List.map (fun e -> e.name) all
