type t = { first : Le2.t; final : Le2.t }

let create ?(name = "le3") mem =
  {
    first = Le2.create ~name:(name ^ ".first") mem;
    final = Le2.create ~name:(name ^ ".final") mem;
  }

let elect t ctx ~port =
  match port with
  | 2 -> Le2.elect t.final ctx ~port:1
  | 0 | 1 ->
      if Le2.elect t.first ctx ~port then Le2.elect t.final ctx ~port:0
      else false
  | _ -> invalid_arg "Le3.elect: port must be 0, 1 or 2"
