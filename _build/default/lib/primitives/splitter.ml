type t = {
  race : Sim.Register.t;  (* holds pid + 1; 0 = untouched *)
  door : Sim.Register.t;  (* 0 = open, 1 = closed *)
}

type outcome = L | R | S

let equal_outcome a b =
  match (a, b) with L, L | R, R | S, S -> true | _, _ -> false

let pp_outcome ppf = function
  | L -> Fmt.string ppf "L"
  | R -> Fmt.string ppf "R"
  | S -> Fmt.string ppf "S"

let create ?(name = "sp") mem =
  {
    race = Sim.Register.create ~name:(name ^ ".race") mem;
    door = Sim.Register.create ~name:(name ^ ".door") mem;
  }

(* Moir-Anderson: write your id to [race]; if the door is already closed
   someone overlapped and got through, go L. Otherwise close the door; if
   [race] still holds your id you win (S), else someone overwrote it, go
   R. A solo caller finds the door open and its own id in [race]: S. *)
let split t ctx =
  let me = Sim.Ctx.pid ctx + 1 in
  Sim.Ctx.write ctx t.race me;
  if Sim.Ctx.read ctx t.door = 1 then L
  else begin
    Sim.Ctx.write ctx t.door 1;
    if Sim.Ctx.read ctx t.race = me then S else R
  end
