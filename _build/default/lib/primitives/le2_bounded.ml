let modulus = 8

type t = { a : Sim.Register.t; b : Sim.Register.t }

let create ?(name = "le2b") mem =
  {
    a = Sim.Register.create ~name:(name ^ ".pos0") mem;
    b = Sim.Register.create ~name:(name ^ ".pos1") mem;
  }

(* Decode the opponent's position relative to ours into [-4, +3]. *)
let gap ~o ~pos = (((o - pos) mod modulus) + modulus + 4) mod modulus - 4

let elect t ctx ~port =
  if port <> 0 && port <> 1 then
    invalid_arg "Le2_bounded.elect: port must be 0 or 1";
  let mine, other = if port = 0 then (t.a, t.b) else (t.b, t.a) in
  let rec loop pos =
    let o = Sim.Ctx.read ctx other in
    let g = gap ~o ~pos in
    if g >= 2 then false
    else if g <= -3 then true
    else if Sim.Ctx.flip_bool ctx then begin
      let pos' = (pos + 1) mod modulus in
      Sim.Ctx.write ctx mine pos';
      loop pos'
    end
    else loop pos
  in
  loop 0
