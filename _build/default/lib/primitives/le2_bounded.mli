(** The 2-process duel of {!Le2} with {e bounded} registers — matching
    the Tromp–Vitányi result, whose registers hold constantly many
    values, rather than unbounded positions.

    Positions are stored modulo 8. This is sound because while both
    processes are still undecided the true gap stays in [[-3, +3]]:
    a climbing process re-reads its opponent every iteration and
    decides as soon as it observes a gap of +2 (lose) or -3 (win), and
    its own position moves by at most one between reads — so gaps cross
    the thresholds exactly and never alias past them. The decoded
    difference [((o - pos + 4) mod 8) - 4] in [[-4, +3]] therefore
    equals the true gap at every decision point.

    Same guarantees as {!Le2}: at most one winner, exactly one without
    crashes, O(1) expected steps — now from two registers of domain
    size 8. Model-checked exhaustively in the test suite. *)

type t

val create : ?name:string -> Sim.Memory.t -> t

val elect : t -> Sim.Ctx.t -> port:int -> bool
