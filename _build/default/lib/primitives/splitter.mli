(** Deterministic splitter (Moir–Anderson).

    [split] returns a value in [{L, R, S}]. If [k] processes call
    [split], at most [k-1] receive [L], at most [k-1] receive [R], and at
    most one receives [S]; a solo caller always receives [S]. Uses O(1)
    registers and O(1) steps. *)

type t

type outcome = L | R | S

val equal_outcome : outcome -> outcome -> bool
val pp_outcome : outcome Fmt.t

val create : ?name:string -> Sim.Memory.t -> t

val split : t -> Sim.Ctx.t -> outcome
(** At most one [split] call per process per splitter. *)
