type t = {
  elect : Sim.Ctx.t -> bool;
  doorway : Sim.Register.t;
}

let create ?(name = "tas") mem ~elect =
  { elect; doorway = Sim.Register.create ~name:(name ^ ".done") mem }

let apply t ctx =
  if Sim.Ctx.read ctx t.doorway = 1 then 1
  else if t.elect ctx then 0
  else begin
    Sim.Ctx.write ctx t.doorway 1;
    1
  end
