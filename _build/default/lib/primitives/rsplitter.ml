type t = Splitter.t

let create ?(name = "rsp") mem = Splitter.create ~name mem

let split t ctx =
  match Splitter.split t ctx with
  | Splitter.S -> Splitter.S
  | Splitter.L | Splitter.R ->
      if Sim.Ctx.flip_bool ctx then Splitter.R else Splitter.L
