lib/primitives/le3.mli: Sim
