lib/primitives/splitter.ml: Fmt Sim
