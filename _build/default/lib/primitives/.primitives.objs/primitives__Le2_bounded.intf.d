lib/primitives/le2_bounded.mli: Sim
