lib/primitives/le2_bounded.ml: Sim
