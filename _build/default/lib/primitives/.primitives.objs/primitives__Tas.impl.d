lib/primitives/tas.ml: Sim
