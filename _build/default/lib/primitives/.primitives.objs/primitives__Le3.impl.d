lib/primitives/le3.ml: Le2
