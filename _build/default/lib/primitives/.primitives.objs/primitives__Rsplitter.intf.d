lib/primitives/rsplitter.mli: Sim Splitter
