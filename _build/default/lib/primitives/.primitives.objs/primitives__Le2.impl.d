lib/primitives/le2.ml: Sim
