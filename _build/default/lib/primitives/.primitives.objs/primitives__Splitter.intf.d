lib/primitives/splitter.mli: Fmt Sim
