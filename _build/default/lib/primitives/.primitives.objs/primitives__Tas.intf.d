lib/primitives/tas.mli: Sim
