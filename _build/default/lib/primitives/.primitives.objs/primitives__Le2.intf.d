lib/primitives/le2.mli: Sim
