lib/primitives/rsplitter.ml: Sim Splitter
