(** The 2-process time lower bound of Section 6 (Theorem 6.1).

    For any randomized 2-process TAS and any [t > 0] there is an
    oblivious schedule under which, with probability at least [1/4^t],
    some process does not finish within fewer than [t] steps. The proof
    is by Yao's minimax over the [C(2t, t) <= 4^t] schedules in which
    each process appears [t] times.

    We reproduce the bound empirically: enumerate (or, for large [t],
    sample) the schedule set, run the implementation many times per
    schedule, and report [max over S of Pr(max steps >= t)], which must
    dominate [1/4^t]. *)

val schedules : t:int -> int array list
(** All interleavings of [t] zeros and [t] ones; [C(2t, t)] of them. *)

type point = {
  t : int;
  schedules_tested : int;
  max_prob : float;  (** max over tested schedules of Pr[max steps >= t] *)
  bound : float;  (** 1 / 4^t *)
  best_schedule : int array;
}

val measure :
  ?trials:int ->
  ?max_enumerate:int ->
  ?seed:int64 ->
  make:(unit -> (Sim.Ctx.t -> int) array) ->
  t:int ->
  unit ->
  point
(** [make] builds a fresh 2-process system (e.g. a TAS with both
    processes applying it). Enumerates all schedules when there are at
    most [max_enumerate] (default 1000), otherwise samples that many at
    random plus the strict-alternation schedules. [trials] (default 400)
    runs per schedule. *)
