let log2 x = log x /. log 2.0

let log_star x =
  let rec go acc v = if v <= 1.0 then acc else go (acc + 1) (log2 v) in
  go 0 x

let iterations_to_constant ~f ?(floor_ = 2.0) k =
  let rec go acc v =
    if acc >= 10_000 || v <= floor_ then acc
    else
      let v' = f v in
      if v' >= v then acc else go (acc + 1) v'
  in
  go 0 k
