(** Hitting times of non-increasing Markov chains (Section 2.1).

    [Delta_r(n)] is the maximum expected hitting time of state 0 over
    non-increasing chains on [{0..n}] whose rate satisfies
    [E(M_(i+1) | M_i = j) <= r(j)]. Lemma 2.1 bounds the step complexity
    of the chain construction by [O(Delta_(f-1)(k))].

    We provide the deterministic iteration count (see
    {!Logstar.iterations_to_constant}) and a Monte-Carlo estimate for a
    natural worst-ish chain: from state [j] the next state is
    [Binomial(j, r(j)/j)], which has mean exactly [r(j)] and is
    supported on [{0..j}]. *)

val binomial_step : Sim.Rng.t -> j:int -> mean:float -> int
(** One transition: Binomial(j, mean/j), clamped mean to [j]. *)

val hitting_time_mc :
  rate:(int -> float) -> n:int -> trials:int -> seed:int64 -> float
(** Average number of steps to reach a state [<= 1] from [n]. *)
