let schedules ~t =
  let rec build zeros ones acc =
    if zeros = 0 && ones = 0 then [ List.rev acc ]
    else
      let with_zero = if zeros > 0 then build (zeros - 1) ones (0 :: acc) else [] in
      let with_one = if ones > 0 then build zeros (ones - 1) (1 :: acc) else [] in
      with_zero @ with_one
  in
  List.map Array.of_list (build t t [])

type point = {
  t : int;
  schedules_tested : int;
  max_prob : float;
  bound : float;
  best_schedule : int array;
}

let alternating ~t first =
  Array.init (2 * t) (fun i -> if i mod 2 = 0 then first else 1 - first)

let random_schedule rng ~t =
  let arr = Array.init (2 * t) (fun i -> if i < t then 0 else 1) in
  for i = Array.length arr - 1 downto 1 do
    let j = Sim.Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  arr

let count_schedules ~t =
  (* C(2t, t), saturating well before any overflow. *)
  let cap = 1 lsl 30 in
  let rec go acc i =
    if i > t then acc
    else if acc > cap then cap
    else go (acc * (t + i) / i) (i + 1)
  in
  go 1 1

let measure ?(trials = 400) ?(max_enumerate = 1000) ?(seed = 42L) ~make ~t () =
  let rng = Sim.Rng.create seed in
  let candidate_schedules =
    if count_schedules ~t <= max_enumerate then schedules ~t
    else
      alternating ~t 0 :: alternating ~t 1
      :: List.init max_enumerate (fun _ -> random_schedule rng ~t)
  in
  let prob_of schedule =
    let hits = ref 0 in
    for _ = 1 to trials do
      let sched = Sim.Sched.create ~seed:(Sim.Rng.next rng) (make ()) in
      Sim.Sched.run sched (Sim.Adversary.fixed_schedule ~then_halt:true schedule);
      if Sim.Sched.max_steps sched >= t then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  in
  let best = ref (0.0, [||]) in
  List.iter
    (fun s ->
      let p = prob_of s in
      if p > fst !best then best := (p, s))
    candidate_schedules;
  {
    t;
    schedules_tested = List.length candidate_schedules;
    max_prob = fst !best;
    bound = 1.0 /. (4.0 ** float_of_int t);
    best_schedule = snd !best;
  }
