(** The space lower bound of Section 5 (Theorem 5.1).

    The covering argument maintains, after round [k], at least [f(k)]
    distinct covering-process representatives, where

    [f(0) = n] and [f(k+1) = f(k) - floor(f(k) / (n - k)) + 1].

    Claim 5.5 gives the closed form on the interval
    [I(s) = [n - n/2^s, n - n/2^(s+1) - 1]]:
    [f(k) = n (s+1)/2^s - s (k - n + n/2^s)] and the per-round drop
    [delta(k+1) = s]. At [k = n - 4] (so [s = log2 n - 2]) this yields
    [f(n-4) = 4 (log2 n - 1)]; every register is covered by at most 4 of
    the representatives, so at least [log2 n - 1] registers exist.

    Besides machine-checking the recurrence we provide an executable
    covering harness: {!base_round} drives a real leader-election
    implementation to the configuration of Lemma 5.4's base case (every
    process poised to write, nobody visible on any register), and
    {!written_registers} measures how many distinct registers a full
    execution writes. *)

val f : n:int -> int -> int
(** Requires [0 <= k <= n-1]; [n] need not be a power of two, but Claim
    5.5 is only exact for powers of two. *)

val delta : n:int -> int -> int
(** [delta ~n (k+1) = floor (f k / (n - k)) - 1]; defined for [k+1 >= 1]. *)

val f_closed : n:int -> int -> int option
(** Claim 5.5(a); [None] if [k] lies in no interval [I(s)] (cannot
    happen for [0 <= k <= n - 2] when [n] is a power of two). *)

val interval_of : n:int -> int -> int option
(** The [s] with [k] in [I(s)]. *)

val check_claim_5_5 : n:int -> bool
(** Verify [f = f_closed] and [delta (k+1) = s] for all
    [k in 0 .. n-4]; [n] must be a power of two [>= 8]. *)

val register_lower_bound : n:int -> int
(** [ceil (f (n-4) / 4)] — the register count Theorem 5.1 guarantees;
    equals [log2 n - 1] for powers of two. *)

type base_report = {
  poised_writers : int;  (** Processes poised to write (should be all). *)
  distinct_covered : int;  (** Distinct registers covered. *)
  finished_early : int;  (** Processes that finished without writing —
      a violation of the base-case argument, expected to be 0. *)
}

val base_round :
  make:(Sim.Memory.t -> n:int -> Leaderelect.Le.t) ->
  n:int ->
  seed:int64 ->
  base_report
(** Lemma 5.4 base case: every process runs (in effect solo — nobody has
    written yet, so their reads are as in solo runs) until poised to
    write for the first time. *)

val written_registers :
  make:(Sim.Memory.t -> n:int -> Leaderelect.Le.t) ->
  n:int ->
  seed:int64 ->
  int
(** Distinct registers written during a full crash-free election under a
    random schedule — an empirical witness that implementations use at
    least [register_lower_bound ~n] registers. *)
