(** Iterated logarithms and the log* function, used to state the upper
    bounds of Section 2. *)

val log2 : float -> float

val log_star : float -> int
(** Number of times [log2] must be applied to reach a value [<= 1]. *)

val iterations_to_constant : f:(float -> float) -> ?floor_:float -> float -> int
(** [iterations_to_constant ~f k] is the number of iterations of
    [x -> f x] starting from [k] until the value drops to [floor_]
    (default 2.0) or stops decreasing; capped at 10_000. This is the
    deterministic skeleton of the hitting time [Delta_r] of Section 2.1:
    for [f(k) = 2 log2 k + 6 - 1] it is O(log* k). *)
