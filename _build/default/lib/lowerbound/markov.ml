let binomial_step rng ~j ~mean =
  if j <= 0 then 0
  else begin
    let p = Float.min 1.0 (Float.max 0.0 (mean /. float_of_int j)) in
    let count = ref 0 in
    for _ = 1 to j do
      if Sim.Rng.float rng < p then incr count
    done;
    !count
  end

let hitting_time_mc ~rate ~n ~trials ~seed =
  let rng = Sim.Rng.create seed in
  let total = ref 0 in
  for _ = 1 to trials do
    let rec go steps j =
      if j <= 1 || steps > 1_000_000 then steps
      else go (steps + 1) (binomial_step rng ~j ~mean:(rate j))
    in
    total := !total + go 0 n
  done;
  float_of_int !total /. float_of_int trials
