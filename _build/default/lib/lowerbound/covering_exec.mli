(** An executable rendition of the covering argument (Lemma 5.4).

    The proof of Theorem 5.1 schedules a {e determinized} algorithm in
    rounds. The driver below performs those rounds on a real
    implementation running in the simulator:

    - every process first runs until it covers a register (is poised to
      write), never executing a write — the base case;
    - in each round, let [M] be the maximum number of representatives
      covering any register, [R] the registers covered by [M]
      representatives and [R'] those covered by [M - 1]. One covering
      representative per register of [R] performs its write (overwriting
      anything useful on [R]); those processes' groups then run, one
      step at a time, until one of them is poised to write {e outside}
      [R ∪ R'] (Claim 5.3 guarantees this happens). The groups involved
      merge, represented by the newly poised process, so the number of
      representatives drops by [|R| - 1] — exactly the recurrence
      [f(k+1) = f(k) - floor(f(k)/(n-k)) + 1] when every register of [R]
      reaches the theoretical maximum cover.

    Coins are fixed by a deterministic per-process stream (the proof
    fixes nondeterminism up front), and groups are tracked from actual
    visibility events ({!Sim.Visibility}'s sees-relation) via union-find.

    The run stops when the maximum cover is at most [target_cover]
    (Theorem 5.1 uses 4) or no round can make progress; the report's
    [final_covered] distinct covered registers witness the
    [Omega(log n)] space bound on the implementation under test. *)

type report = {
  rounds : int;
  final_reps : int;  (** Representatives still covering at the end. *)
  final_covered : int;  (** Distinct registers covered by them. *)
  max_cover : int;  (** Maximum cover count at the end. *)
  finished_early : int;  (** Processes that completed during the drive
      (the proof avoids this; a real run may retire a few). *)
  anomalies : int;  (** Rounds in which a group ran to completion without
      writing outside [R ∪ R'] — 0 means Claim 5.3 was never
      contradicted. *)
}

val run :
  ?target_cover:int ->
  ?max_rounds:int ->
  make:(Sim.Memory.t -> n:int -> Leaderelect.Le.t) ->
  n:int ->
  seed:int64 ->
  unit ->
  report

val pp_report : report Fmt.t
