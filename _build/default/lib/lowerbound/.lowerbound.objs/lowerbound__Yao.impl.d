lib/lowerbound/yao.ml: Array List Sim
