lib/lowerbound/covering.mli: Leaderelect Sim
