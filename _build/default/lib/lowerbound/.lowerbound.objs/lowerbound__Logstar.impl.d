lib/lowerbound/logstar.ml:
