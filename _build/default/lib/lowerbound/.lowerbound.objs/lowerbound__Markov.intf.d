lib/lowerbound/markov.mli: Sim
