lib/lowerbound/covering_exec.ml: Array Fmt Fun Hashtbl Int64 Leaderelect List Option Sim
