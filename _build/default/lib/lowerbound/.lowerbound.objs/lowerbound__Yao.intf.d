lib/lowerbound/yao.mli: Sim
