lib/lowerbound/covering_exec.mli: Fmt Leaderelect Sim
