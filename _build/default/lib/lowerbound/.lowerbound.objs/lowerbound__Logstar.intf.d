lib/lowerbound/logstar.mli:
