lib/lowerbound/covering.ml: Hashtbl Int64 Leaderelect List Sim
