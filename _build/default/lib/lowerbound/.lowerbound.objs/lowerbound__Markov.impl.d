lib/lowerbound/markov.ml: Float Sim
