type t = { mutable count : int }

let create () = { count = 0 }

let alloc t =
  let id = t.count in
  t.count <- id + 1;
  id

let allocated t = t.count
