(** Register allocator and space accounting.

    All shared registers of a simulated system are allocated from a
    single [Memory.t]. The number of registers allocated is the space
    complexity the paper's Section 5 reasons about. *)

type t

val create : unit -> t

val alloc : t -> int
(** Allocate a fresh register id. *)

val allocated : t -> int
(** Total number of registers allocated so far. *)
