(** Process-side view of the shared-memory system.

    Simulated process code is ordinary OCaml code that receives a [Ctx.t]
    and calls {!read}, {!write} and {!flip}. Each call performs an OCaml
    effect; the scheduler suspends the process {e before} the operation
    executes, so an adversary observes a pending operation exactly as in
    the asynchronous shared-memory model. Coin flips are local steps:
    they resolve immediately (they cost no shared-memory step) but are
    recorded in the trace, so an adaptive adversary can base scheduling
    decisions on their outcomes. *)

type t

val make : pid:int -> t
(** Used by the scheduler; algorithm code never calls this. *)

val pid : t -> int
(** Identifier of the executing process, in [\[0, n)]. *)

val read : t -> Register.t -> int
(** Shared-memory read; counts as one step. *)

val write : t -> Register.t -> int -> unit
(** Shared-memory write; counts as one step. *)

val flip : t -> int -> int
(** [flip ctx bound] is a local random draw, uniform in [\[0, bound)]. *)

val flip_bool : t -> bool

val flip_geometric : t -> int -> int
(** The distribution of Figure 1, line 3; see {!Rng.geometric_capped}. *)

(**/**)

type _ Effect.t +=
  | Read_eff : Register.t -> int Effect.t
  | Write_eff : Register.t * int -> unit Effect.t
  | Flip_eff : int -> int Effect.t
  | Flip_geom_eff : int -> int Effect.t
