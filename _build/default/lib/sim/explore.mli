(** Bounded exhaustive exploration (model checking) of a protocol.

    [explore ~depth ~programs ~check ()] enumerates every resolution of
    the first [depth] nondeterministic choice points of an execution — a
    choice point is either a scheduling decision (which runnable process
    steps next) or a coin flip — and runs each resulting execution to
    completion, resolving choices beyond the controlled prefix with a
    round-robin schedule and pseudo-random flips. [check] is called on
    every completed execution and should raise (e.g. an Alcotest failure)
    on a violated property. Choice points of huge arity (probability
    draws over many values) are branched over at most 8 evenly spaced
    representative outcomes rather than exhaustively.

    Executions are crash-free; safety properties of crash-prone runs are
    covered because any violation reachable with crashes is also
    reachable in some crash-free schedule for the one-shot objects tested
    this way, and liveness-under-crash is tested separately.

    Returns the number of executions checked. *)

val explore :
  ?max_paths:int ->
  ?seed:int64 ->
  depth:int ->
  programs:(unit -> (Ctx.t -> int) array) ->
  check:(Sched.t -> unit) ->
  unit ->
  int

type violation = {
  path : int array;  (** Choice prefix that reproduces the failure. *)
  message : string;  (** The exception the check raised. *)
  executions : int;  (** Executions examined before finding it. *)
}

val find_violation :
  ?max_paths:int ->
  ?seed:int64 ->
  depth:int ->
  programs:(unit -> (Ctx.t -> int) array) ->
  check:(Sched.t -> unit) ->
  unit ->
  violation option
(** Like {!explore}, but treats an exception from [check] as a found
    violation instead of propagating it: returns the failure with its
    choice prefix greedily shrunk (dropping one choice at a time while
    the failure still reproduces), or [None] when the whole bounded
    space passes. Useful for debugging protocols: the returned path is a
    minimal-ish schedule/coin recipe for the bug. *)

val replay :
  ?seed:int64 ->
  path:int array ->
  programs:(unit -> (Ctx.t -> int) array) ->
  unit ->
  Sched.t
(** Re-execute the given choice prefix (resolving the suffix with the
    explorer's default policy) and return the final scheduler state. *)
