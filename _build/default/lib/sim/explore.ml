(* Huge-arity choice points (e.g. probability draws over 2^20 values)
   are branched over a bounded set of evenly spaced representative
   outcomes instead of exhaustively. *)
let max_branch = 8

(* Execute one run following the choice prefix [path]; uncontrolled
   choices fall back to round-robin scheduling and pseudo-random flips
   (seeded by [tail_seed]). Returns the final scheduler and, when a
   choice point sits at index [length path] within [depth], its
   (capped) arity — the children of this prefix in the DFS. *)
let run_path ~tail_seed ~depth ~programs (path : int array) =
  let cursor = ref 0 in
  let branch = ref None in
  let next_choice arity =
    let i = !cursor in
    incr cursor;
    if i < Array.length path then Some path.(i)
    else begin
      if i = Array.length path && i < depth && !branch = None then
        branch := Some (min arity max_branch);
      None
    end
  in
  let oracle ~pid:_ ~bound =
    let arity = if bound < 0 then -bound else bound in
    match next_choice arity with
    | Some c ->
        let outcome =
          if arity <= max_branch then c else c * (arity / max_branch)
        in
        Some (if bound < 0 then outcome + 1 else outcome)
    | None -> None
  in
  let rr = ref 0 in
  let decide (view : Sched.view) =
    match Array.length view.runnable with
    | 0 -> Sched.Halt
    | m -> (
        match next_choice (min m max_branch) with
        | Some c -> Sched.Schedule view.runnable.(c mod m)
        | None ->
            incr rr;
            Sched.Schedule view.runnable.(!rr mod m))
  in
  let sched = Sched.create ~seed:tail_seed ~flip_oracle:oracle (programs ()) in
  Sched.run sched
    { Sched.adv_name = "explorer"; adv_klass = Sched.Adaptive; decide };
  (sched, !branch)

(* DFS over choice prefixes. [on_execution] sees every completed run and
   may raise to abort the search. *)
let dfs ~max_paths ~seed ~depth ~programs ~on_execution =
  let tail_rng = Rng.create seed in
  let count = ref 0 in
  let stack = ref [ [||] ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | path :: rest ->
        stack := rest;
        if !count < max_paths then begin
          let sched, branch =
            run_path ~tail_seed:(Rng.next tail_rng) ~depth ~programs path
          in
          incr count;
          on_execution ~path ~sched;
          (match branch with
          | Some arity ->
              for c = arity - 1 downto 0 do
                stack := Array.append path [| c |] :: !stack
              done
          | None -> ());
          loop ()
        end
  in
  loop ();
  !count

let explore ?(max_paths = 2_000_000) ?(seed = 0xE8920AL) ~depth ~programs
    ~check () =
  dfs ~max_paths ~seed ~depth ~programs ~on_execution:(fun ~path:_ ~sched ->
      check sched)

type violation = {
  path : int array;
  message : string;
  executions : int;
}

exception Found of int array * string

let find_violation ?(max_paths = 2_000_000) ?(seed = 0xE8920AL) ~depth
    ~programs ~check () =
  let executions = ref 0 in
  let attempt path =
    match
      let sched, _ = run_path ~tail_seed:seed ~depth ~programs path in
      check sched
    with
    | () -> None
    | exception e -> Some (Printexc.to_string e)
  in
  match
    dfs ~max_paths ~seed ~depth ~programs ~on_execution:(fun ~path ~sched ->
        incr executions;
        match check sched with
        | () -> ()
        | exception e -> raise (Found (path, Printexc.to_string e)))
  with
  | _count -> None
  | exception Found (path, message) ->
      (* Greedy shrink: drop one choice at a time (from the end first)
         while the violation still reproduces deterministically. *)
      let shrunk = ref path and msg = ref message in
      let progress = ref true in
      while !progress do
        progress := false;
        let len = Array.length !shrunk in
        let i = ref (len - 1) in
        while not !progress && !i >= 0 do
          let candidate =
            Array.append (Array.sub !shrunk 0 !i)
              (Array.sub !shrunk (!i + 1) (len - !i - 1))
          in
          (match attempt candidate with
          | Some m ->
              shrunk := candidate;
              msg := m;
              progress := true
          | None -> ());
          decr i
        done
      done;
      Some { path = !shrunk; message = !msg; executions = !executions }

let replay ?(seed = 0xE8920AL) ~path ~programs () =
  let sched, _ = run_path ~tail_seed:seed ~depth:0 ~programs path in
  sched
