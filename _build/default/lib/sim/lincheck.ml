type 'state spec = {
  initial : 'state;
  apply : 'state -> op:int -> result:int -> 'state option;
}

type operation = {
  op : int;
  result : int;
  start_time : int;
  end_time : int;
}

(* DFS over linearization prefixes: at each point, any pending operation
   that is "minimal" (no other operation ended before it started) may be
   linearized next if the spec accepts it. *)
let linearizable spec ops =
  let rec search state remaining =
    match remaining with
    | [] -> true
    | _ ->
        let minimal o =
          not
            (List.exists
               (fun o' -> o' != o && o'.end_time < o.start_time)
               remaining)
        in
        List.exists
          (fun o ->
            minimal o
            &&
            match spec.apply state ~op:o.op ~result:o.result with
            | Some state' ->
                search state' (List.filter (fun o' -> o' != o) remaining)
            | None -> false)
          remaining
  in
  search spec.initial ops

let tas_spec =
  {
    initial = false;
    apply =
      (fun state ~op:_ ~result ->
        match (state, result) with
        | false, 0 -> Some true
        | true, 1 -> Some true
        | false, 1 | true, 0 -> None
        | _, _ -> None);
  }

let tas_history_of_sched sched =
  let ops = ref [] in
  for pid = Sched.n sched - 1 downto 0 do
    match Sched.result sched pid with
    | Some result ->
        let fin = Sched.finish_time sched pid in
        let start =
          let s = Sched.first_step_time sched pid in
          if s < 0 then fin else s
        in
        ops := { op = pid; result; start_time = start; end_time = fin } :: !ops
    | None -> ()
  done;
  !ops

let check_tas_sched sched =
  let history = tas_history_of_sched sched in
  if linearizable tas_spec history then true
  else
    (* A pending (crashed) call may have taken effect: linearizability
       permits completing it. Try each crashed process that took at
       least one step as a phantom winner. *)
    let rec try_phantom pid =
      if pid >= Sched.n sched then false
      else if
        Sched.status sched pid = Crashed
        && Sched.first_step_time sched pid >= 0
        && linearizable tas_spec
             ({
                op = pid;
                result = 0;
                start_time = Sched.first_step_time sched pid;
                end_time = max_int;
              }
             :: history)
      then true
      else try_phantom (pid + 1)
    in
    try_phantom 0
