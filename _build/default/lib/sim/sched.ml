type klass = Adaptive | Location_oblivious | Rw_oblivious | Oblivious

let pp_klass ppf = function
  | Adaptive -> Fmt.string ppf "adaptive"
  | Location_oblivious -> Fmt.string ppf "location-oblivious"
  | Rw_oblivious -> Fmt.string ppf "rw-oblivious"
  | Oblivious -> Fmt.string ppf "oblivious"

type status = Running | Finished of int | Crashed

type pending_view = {
  view_pid : int;
  view_kind : [ `Read | `Write ] option;
  view_reg : int option;
  view_reg_name : string option;
  view_value : int option;
  view_steps : int;
}

type view = {
  view_time : int;
  runnable : int array;
  pending_of : int -> pending_view;
}

type decision =
  | Schedule of int
  | Crash_proc of int
  | Halt

type adversary = {
  adv_name : string;
  adv_klass : klass;
  decide : view -> decision;
}

type proc = {
  pid : int;
  mutable p_status : status;
  mutable p_pending : Op.pending option;
  mutable p_resume : (unit -> unit) option;
  mutable p_steps : int;
  mutable p_flips : int;
  mutable p_rmrs : int;
  mutable p_first_step : int;
  mutable p_finish : int;
}

type t = {
  rng : Rng.t;
  procs : proc array;
  mutable s_time : int;
  record_trace : bool;
  mutable events : Op.event list;  (* reversed *)
  flip_oracle : (pid:int -> bound:int -> int option) option;
  (* Cache-coherence bookkeeping for RMR accounting: which processes
     hold a valid cached copy of each register (by register id). *)
  caches : (int, unit) Hashtbl.t array option ref;
}

(* [caches] is sized lazily by the largest register id seen. *)
let cache_tbl t reg_id =
  let ensure size =
    let cur = match !(t.caches) with None -> 0 | Some a -> Array.length a in
    if size > cur then begin
      let a = Array.init size (fun i ->
          match !(t.caches) with
          | Some old when i < Array.length old -> old.(i)
          | _ -> Hashtbl.create 4)
      in
      t.caches := Some a
    end
  in
  ensure (reg_id + 1);
  (Option.get !(t.caches)).(reg_id)

(* CC-model RMR accounting: a read is local iff the reader holds a valid
   cached copy; it caches the register. A write always counts as an RMR
   and invalidates every other copy. *)
let account_read t p reg_id =
  let tbl = cache_tbl t reg_id in
  if not (Hashtbl.mem tbl p.pid) then begin
    p.p_rmrs <- p.p_rmrs + 1;
    Hashtbl.replace tbl p.pid ()
  end

let account_write t p reg_id =
  let tbl = cache_tbl t reg_id in
  Hashtbl.reset tbl;
  Hashtbl.replace tbl p.pid ();
  p.p_rmrs <- p.p_rmrs + 1

let draw t pid bound =
  match t.flip_oracle with
  | Some oracle -> (
      match oracle ~pid ~bound with
      | Some v -> v
      | None -> if bound < 0 then Rng.geometric_capped t.rng (-bound) else Rng.int t.rng bound)
  | None ->
      if bound < 0 then Rng.geometric_capped t.rng (-bound) else Rng.int t.rng bound

let add_event t e = if t.record_trace then t.events <- e :: t.events

let start t p (body : Ctx.t -> int) =
  let open Effect.Deep in
  let ctx = Ctx.make ~pid:p.pid in
  let retc result =
    p.p_status <- Finished result;
    p.p_pending <- None;
    p.p_resume <- None;
    p.p_finish <- t.s_time;
    add_event t (Op.Finish { time = t.s_time; pid = p.pid; result })
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    fun eff ->
    match eff with
    | Ctx.Read_eff r ->
        Some
          (fun k ->
            p.p_pending <- Some { Op.reg = r; kind = Op.Read };
            p.p_resume <-
              Some
                (fun () ->
                  p.p_pending <- None;
                  account_read t p r.Register.id;
                  let v = Register.read r in
                  add_event t
                    (Op.Step
                       {
                         time = t.s_time;
                         pid = p.pid;
                         reg = r.Register.id;
                         reg_name = r.Register.name;
                         kind = Op.Read;
                         read_value = Some v;
                         seen_writer = r.Register.last_writer;
                       });
                  continue k v))
    | Ctx.Write_eff (r, v) ->
        Some
          (fun k ->
            p.p_pending <- Some { Op.reg = r; kind = Op.Write v };
            p.p_resume <-
              Some
                (fun () ->
                  p.p_pending <- None;
                  account_write t p r.Register.id;
                  Register.write r ~writer:p.pid v;
                  add_event t
                    (Op.Step
                       {
                         time = t.s_time;
                         pid = p.pid;
                         reg = r.Register.id;
                         reg_name = r.Register.name;
                         kind = Op.Write v;
                         read_value = None;
                         seen_writer = -1;
                       });
                  continue k ()))
    | Ctx.Flip_eff bound ->
        Some
          (fun k ->
            let outcome = draw t p.pid bound in
            p.p_flips <- p.p_flips + 1;
            add_event t
              (Op.Flip { time = t.s_time; pid = p.pid; bound; outcome });
            continue k outcome)
    | Ctx.Flip_geom_eff l ->
        Some
          (fun k ->
            let outcome = draw t p.pid (-l) in
            p.p_flips <- p.p_flips + 1;
            add_event t
              (Op.Flip { time = t.s_time; pid = p.pid; bound = -l; outcome });
            continue k outcome)
    | _ -> None
  in
  match_with body ctx { retc; exnc = raise; effc }

let create ?(seed = 0x5EEDL) ?(record_trace = false) ?flip_oracle programs =
  let rng = Rng.create seed in
  let procs =
    Array.mapi
      (fun pid _ ->
        {
          pid;
          p_status = Running;
          p_pending = None;
          p_resume = None;
          p_steps = 0;
          p_flips = 0;
          p_rmrs = 0;
          p_first_step = -1;
          p_finish = -1;
        })
      programs
  in
  let t =
    {
      rng;
      procs;
      s_time = 0;
      record_trace;
      events = [];
      flip_oracle;
      caches = ref None;
    }
  in
  Array.iteri (fun pid body -> start t procs.(pid) body) programs;
  t

let n t = Array.length t.procs
let time t = t.s_time
let status t pid = t.procs.(pid).p_status
let steps t pid = t.procs.(pid).p_steps
let flips t pid = t.procs.(pid).p_flips
let rmrs t pid = t.procs.(pid).p_rmrs

let max_rmrs t =
  Array.fold_left (fun acc p -> max acc p.p_rmrs) 0 t.procs
let pending t pid = t.procs.(pid).p_pending
let first_step_time t pid = t.procs.(pid).p_first_step
let finish_time t pid = t.procs.(pid).p_finish

let result t pid =
  match t.procs.(pid).p_status with Finished r -> Some r | _ -> None

let runnable t =
  let out = ref [] in
  for pid = Array.length t.procs - 1 downto 0 do
    if t.procs.(pid).p_status = Running then out := pid :: !out
  done;
  Array.of_list !out

let any_running t =
  Array.exists (fun p -> p.p_status = Running) t.procs

let step t pid =
  let p = t.procs.(pid) in
  match (p.p_status, p.p_resume) with
  | Running, Some resume ->
      t.s_time <- t.s_time + 1;
      p.p_steps <- p.p_steps + 1;
      if p.p_first_step < 0 then p.p_first_step <- t.s_time;
      p.p_resume <- None;
      resume ()
  | Running, None ->
      (* A running process is always poised at an operation: [create]
         runs every program to its first effect. *)
      invalid_arg "Sched.step: process has no pending operation"
  | (Finished _ | Crashed), _ ->
      invalid_arg "Sched.step: process is not running"

let crash t pid =
  let p = t.procs.(pid) in
  match p.p_status with
  | Running ->
      p.p_status <- Crashed;
      p.p_pending <- None;
      p.p_resume <- None;
      add_event t (Op.Crash { time = t.s_time; pid })
  | Finished _ | Crashed -> invalid_arg "Sched.crash: process is not running"

let filter_pending klass p =
  let kind, reg, reg_name, value =
    match p.p_pending with
    | None -> (None, None, None, None)
    | Some { Op.reg; kind } -> (
        match kind with
        | Op.Read -> (Some `Read, Some reg.Register.id, Some reg.Register.name, None)
        | Op.Write v ->
            (Some `Write, Some reg.Register.id, Some reg.Register.name, Some v))
  in
  match klass with
  | Adaptive ->
      {
        view_pid = p.pid;
        view_kind = kind;
        view_reg = reg;
        view_reg_name = reg_name;
        view_value = value;
        view_steps = p.p_steps;
      }
  | Location_oblivious ->
      {
        view_pid = p.pid;
        view_kind = kind;
        view_reg = None;
        view_reg_name = None;
        view_value = value;
        view_steps = p.p_steps;
      }
  | Rw_oblivious ->
      {
        view_pid = p.pid;
        view_kind = None;
        view_reg = reg;
        view_reg_name = reg_name;
        view_value = None;
        view_steps = p.p_steps;
      }
  | Oblivious ->
      {
        view_pid = p.pid;
        view_kind = None;
        view_reg = None;
        view_reg_name = None;
        view_value = None;
        view_steps = p.p_steps;
      }

let view t klass =
  {
    view_time = t.s_time;
    runnable = runnable t;
    pending_of = (fun pid -> filter_pending klass t.procs.(pid));
  }

let run ?(max_total_steps = 10_000_000) t adv =
  let rec loop () =
    if any_running t then begin
      if t.s_time > max_total_steps then
        failwith
          (Printf.sprintf "Sched.run: exceeded %d steps under adversary %s"
             max_total_steps adv.adv_name);
      (match adv.decide (view t adv.adv_klass) with
      | Schedule pid -> step t pid
      | Crash_proc pid -> crash t pid
      | Halt -> Array.iter (fun p -> if p.p_status = Running then crash t p.pid) t.procs);
      loop ()
    end
  in
  loop ()

let trace t = List.rev t.events

let max_steps t =
  Array.fold_left (fun acc p -> max acc p.p_steps) 0 t.procs

let results t = Array.map (fun p -> match p.p_status with Finished r -> Some r | _ -> None) t.procs
