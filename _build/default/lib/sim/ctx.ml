type _ Effect.t +=
  | Read_eff : Register.t -> int Effect.t
  | Write_eff : Register.t * int -> unit Effect.t
  | Flip_eff : int -> int Effect.t
  | Flip_geom_eff : int -> int Effect.t

type t = { pid : int }

let make ~pid = { pid }

let pid t = t.pid

let read _t r = Effect.perform (Read_eff r)

let write _t r v = Effect.perform (Write_eff (r, v))

let flip _t bound = Effect.perform (Flip_eff bound)

let flip_bool t = flip t 2 = 1

let flip_geometric _t l = Effect.perform (Flip_geom_eff l)
