let sees trace =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (function
      | Op.Step { pid; kind = Op.Read; seen_writer; _ }
        when seen_writer >= 0 && seen_writer <> pid ->
          if not (Hashtbl.mem seen (pid, seen_writer)) then begin
            Hashtbl.add seen (pid, seen_writer) ();
            out := (pid, seen_writer) :: !out
          end
      | _ -> ())
    trace;
  List.rev !out

(* Plain union-find; n is small (processes). *)
let groups ~n trace =
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
  in
  List.iter (fun (p, q) -> if p < n && q < n then union p q) (sees trace);
  Array.init n (fun i -> find i)

let group_count ~n trace =
  let reps = groups ~n trace in
  Array.to_list reps |> List.sort_uniq compare |> List.length

let saw_nobody ~n trace =
  let tainted = Array.make n false in
  List.iter
    (function
      | Op.Step { pid; kind = Op.Read; seen_writer; _ }
        when seen_writer >= 0 && seen_writer <> pid ->
          if pid < n then tainted.(pid) <- true
      | _ -> ())
    trace;
  List.filter (fun pid -> not tainted.(pid)) (List.init n Fun.id)
