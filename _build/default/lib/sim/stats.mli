(** Small descriptive-statistics helpers for experiment harnesses. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation (n-1); 0 for n < 2. *)
  min : float;
  max : float;
  median : float;
  p95 : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [\[0, 1\]], nearest-rank on the sorted
    sample. *)

val pp_summary : summary Fmt.t
(** ["mean +/- sd (median m, p95 q, n)"]. *)
