(** A small linearizability checker (Wing–Gong style search).

    A history is a set of completed operations with real-time intervals;
    it is linearizable w.r.t. a sequential specification if some total
    order of the operations (a) respects real time — an operation that
    finished before another started comes first — and (b) replays
    legally through the specification from its initial state.

    The search is exponential in the worst case; it is meant for the
    small histories the simulator produces (a few dozen operations).

    The TAS specification is provided; the checker itself is generic, so
    tests can also verify e.g. consensus histories. *)

type 'state spec = {
  initial : 'state;
  apply : 'state -> op:int -> result:int -> 'state option;
      (** [apply state ~op ~result] is [Some state'] if the operation
          [op] may return [result] in [state], else [None]. *)
}

type operation = {
  op : int;  (** Operation label (algorithm-specific). *)
  result : int;
  start_time : int;  (** Invocation; -1 means "takes no steps", treated
      as starting before everything. *)
  end_time : int;  (** Response; [max_int] for never-returning. *)
}

val linearizable : 'state spec -> operation list -> bool

val tas_spec : bool spec
(** Operations are TAS() calls ([op] is ignored); result 0 is legal only
    when the bit is unset, and sets it; result 1 only when set. *)

val tas_history_of_sched : Sched.t -> operation list
(** Build the history of a one-TAS-call-per-process execution: each
    finished process contributes one operation with its first-step and
    finish times and its program result. A process that finished without
    taking steps observed only its own state; its interval is collapsed
    to its finish time. *)

val check_tas_sched : Sched.t -> bool
(** [linearizable tas_spec (tas_history_of_sched sched)], with the
    convention that crashed processes are excluded (their TAS call may
    or may not have taken effect; completed-operation linearizability is
    what the paper's reduction needs). *)
