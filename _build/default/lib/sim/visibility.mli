(** The visibility relations of Section 5.

    The paper's covering argument assumes every written value carries the
    writer's identifier; a process [q] is {e visible} on a register whose
    last writer is [q], and [p] {e sees} [q] when [p] reads a register on
    which [q] is visible. The relation "p sees q or q sees p", closed
    reflexively-transitively, partitions the processes into groups
    ([=_E] in the paper) — processes that may know of each other.

    These functions recover both relations from a recorded trace
    (executions must be created with [record_trace:true]). *)

val sees : Op.event list -> (int * int) list
(** All pairs [(p, q)], [p <> q], such that [p] read a register last
    written by [q], in trace order, deduplicated. *)

val groups : n:int -> Op.event list -> int array
(** [groups ~n trace] maps each pid to the representative (smallest pid)
    of its [=_E]-equivalence class. Processes that saw nobody and were
    seen by nobody are singletons. *)

val group_count : n:int -> Op.event list -> int
(** Number of distinct equivalence classes. *)

val saw_nobody : n:int -> Op.event list -> int list
(** Pids whose every read returned a value written by nobody (or by
    themselves) — the "undecided" processes the covering argument keeps
    alive. *)
