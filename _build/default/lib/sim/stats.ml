type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs p =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | sorted ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg "Stats.percentile: p must be in [0, 1]";
      let n = List.length sorted in
      let rank =
        min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)
      in
      List.nth sorted (max 0 rank)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
      let n = List.length xs in
      let m = mean xs in
      let var =
        if n < 2 then 0.0
        else
          List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
          /. float_of_int (n - 1)
      in
      {
        count = n;
        mean = m;
        stddev = sqrt var;
        min = List.fold_left Float.min infinity xs;
        max = List.fold_left Float.max neg_infinity xs;
        median = percentile xs 0.5;
        p95 = percentile xs 0.95;
      }

let pp_summary ppf s =
  Fmt.pf ppf "%.2f +/- %.2f (median %.2f, p95 %.2f, n=%d)" s.mean s.stddev
    s.median s.p95 s.count
