lib/sim/explore.ml: Array Printexc Rng Sched
