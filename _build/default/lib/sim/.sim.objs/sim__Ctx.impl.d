lib/sim/ctx.ml: Effect Register
