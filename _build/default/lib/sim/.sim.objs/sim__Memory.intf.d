lib/sim/memory.mli:
