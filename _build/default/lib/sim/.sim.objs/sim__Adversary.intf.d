lib/sim/adversary.mli: Sched
