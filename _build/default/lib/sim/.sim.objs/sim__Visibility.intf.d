lib/sim/visibility.mli: Op
