lib/sim/sched.ml: Array Ctx Effect Fmt Hashtbl List Op Option Printf Register Rng
