lib/sim/op.ml: Fmt Register
