lib/sim/visibility.ml: Array Fun Hashtbl List Op
