lib/sim/adversary.ml: Array List Rng Sched
