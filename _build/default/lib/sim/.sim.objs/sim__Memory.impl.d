lib/sim/memory.ml:
