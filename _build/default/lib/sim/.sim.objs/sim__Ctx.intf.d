lib/sim/ctx.mli: Effect Register
