lib/sim/register.ml: Fmt Memory
