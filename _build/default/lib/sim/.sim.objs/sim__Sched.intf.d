lib/sim/sched.mli: Ctx Fmt Op
