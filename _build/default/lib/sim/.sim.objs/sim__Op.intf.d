lib/sim/op.mli: Fmt Register
