lib/sim/lincheck.mli: Sched
