lib/sim/lincheck.ml: List Sched
