lib/sim/explore.mli: Ctx Sched
