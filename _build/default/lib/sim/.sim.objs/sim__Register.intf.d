lib/sim/register.mli: Fmt Memory
