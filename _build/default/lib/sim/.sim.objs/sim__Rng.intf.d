lib/sim/rng.mli:
