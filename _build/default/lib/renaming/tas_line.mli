(** One-shot renaming from a line of TAS objects — the application that
    motivates TAS in the paper's introduction (cf. Alistarh et al. 2010;
    Eberly, Higham, Warpechowska-Gruca 1998).

    [m] candidate names, each guarded by one TAS; a process scans from
    name 0 and keeps the first TAS it wins. With contention [k <= m] the
    acquired names lie in [{0..k-1}] (a process can be beaten at most
    [k-1] times), i.e. the namespace is tight. The cost per attempted
    name is one TAS call, so the expected total step cost is
    [O(k * C(k))] where [C] is the election's step complexity — which is
    where the paper's O(log* k) algorithm pays off. *)

type t

val create :
  ?name:string ->
  Sim.Memory.t ->
  names:int ->
  make_le:(Sim.Memory.t -> n:int -> Leaderelect.Le.t) ->
  n:int ->
  t
(** One election (dimensioned for [n]) plus one register per name. *)

val acquire : t -> Sim.Ctx.t -> int
(** Returns a name in [{0 .. names-1}], distinct across processes; at
    most one call per process. Raises [Failure] if the namespace is
    exhausted (more than [names] participants). *)
