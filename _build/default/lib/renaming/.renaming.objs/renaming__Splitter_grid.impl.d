lib/renaming/splitter_grid.ml: Array Primitives Printf
