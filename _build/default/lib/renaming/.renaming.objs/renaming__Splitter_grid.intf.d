lib/renaming/splitter_grid.mli: Sim
