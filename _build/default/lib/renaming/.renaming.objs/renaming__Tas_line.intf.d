lib/renaming/tas_line.mli: Leaderelect Sim
