lib/renaming/tas_line.ml: Array Leaderelect Primitives Printf
