type t = {
  sps : Primitives.Splitter.t array array;  (* sps.(i).(j), i + j < k *)
  k : int;
}

let create ?(name = "magrid") mem ~k =
  if k < 1 then invalid_arg "Splitter_grid.create: k must be >= 1";
  {
    sps =
      Array.init k (fun i ->
          Array.init (k - i) (fun j ->
              Primitives.Splitter.create
                ~name:(Printf.sprintf "%s[%d,%d]" name i j)
                mem));
    k;
  }

let namespace t = t.k * (t.k + 1) / 2

(* Name of node (i, j): nodes are numbered along diagonals, so that the
   names used under contention k' <= k are exactly the first
   k'(k'+1)/2. *)
let node_name (i, j) =
  let d = i + j in
  (d * (d + 1) / 2) + i

let acquire t ctx =
  let rec move i j =
    if i + j >= t.k then failwith "Splitter_grid.acquire: more than k entrants"
    else
      match Primitives.Splitter.split t.sps.(i).(j) ctx with
      | Primitives.Splitter.S -> node_name (i, j)
      | Primitives.Splitter.L -> move (i + 1) j
      | Primitives.Splitter.R -> move i (j + 1)
  in
  move 0 0
