type t = { tases : Primitives.Tas.t array }

let create ?(name = "rename") mem ~names ~make_le ~n =
  if names < 1 then invalid_arg "Tas_line.create: names must be >= 1";
  {
    tases =
      Array.init names (fun i ->
          let le = make_le mem ~n in
          Primitives.Tas.create
            ~name:(Printf.sprintf "%s[%d]" name i)
            mem ~elect:le.Leaderelect.Le.elect);
  }

let acquire t ctx =
  let m = Array.length t.tases in
  let rec scan i =
    if i >= m then failwith "Tas_line.acquire: namespace exhausted"
    else if Primitives.Tas.apply t.tases.(i) ctx = 0 then i
    else scan (i + 1)
  in
  scan 0
