(** Moir–Anderson one-shot renaming on a triangular grid of
    deterministic splitters (WDAG 1994) — the classic deterministic
    baseline, and the same structure as RatRace's backup grid.

    A process enters at [(0,0)], moves down on [L] and right on [R], and
    takes the name of the node whose splitter it wins; with contention
    [k] it stops within diagonal [k-1], so names fall in a namespace of
    size [k(k+1)/2]. Wait-free and deterministic, but the namespace is
    quadratic — the price of not using randomization. *)

type t

val create : ?name:string -> Sim.Memory.t -> k:int -> t
(** Grid sized for contention at most [k] (diagonals [0..k-1]). *)

val namespace : t -> int
(** [k (k+1) / 2]. *)

val acquire : t -> Sim.Ctx.t -> int
(** A name in [{0 .. namespace-1}], distinct across processes. Raises
    [Failure] if more than [k] processes enter. *)
