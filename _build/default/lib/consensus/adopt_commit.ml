type t = {
  a : Sim.Register.t array;  (* proposal flags, indexed by value *)
  b : Sim.Register.t array;  (* stake flags, indexed by value *)
}

type outcome = Commit of int | Adopt of int

let create ?(name = "ac") mem =
  {
    a = Array.init 2 (fun v -> Sim.Register.create ~name:(Printf.sprintf "%s.a%d" name v) mem);
    b = Array.init 2 (fun v -> Sim.Register.create ~name:(Printf.sprintf "%s.b%d" name v) mem);
  }

let decide t ctx v =
  if v <> 0 && v <> 1 then invalid_arg "Adopt_commit.decide: v must be 0 or 1";
  Sim.Ctx.write ctx t.a.(v) 1;
  if Sim.Ctx.read ctx t.a.(1 - v) = 0 then begin
    Sim.Ctx.write ctx t.b.(v) 1;
    if Sim.Ctx.read ctx t.a.(1 - v) = 0 then Commit v
    else Adopt v
  end
  else begin
    (* Conflict: at most one stake flag is ever set, and a committer of
       the opposite value staked before our proposal write, so its flag
       is visible here; a committer of our own value needs no action. *)
    if Sim.Ctx.read ctx t.b.(1 - v) = 1 then Adopt (1 - v) else Adopt v
  end
