type round = {
  ac : Adopt_commit.t;
  conc : Conciliator.t;
}

type t = { rounds : round array }

let create ?(name = "consn") ?(max_rounds = 64) mem ~n =
  if n < 1 then invalid_arg "Consensus_n.create: n must be >= 1";
  {
    rounds =
      Array.init max_rounds (fun r ->
          {
            ac = Adopt_commit.create ~name:(Printf.sprintf "%s.ac[%d]" name r) mem;
            conc =
              Conciliator.create ~name:(Printf.sprintf "%s.conc[%d]" name r) mem ~n;
          });
  }

let propose t ctx v =
  if v <> 0 && v <> 1 then invalid_arg "Consensus_n.propose: v must be 0 or 1";
  let rec round r pref =
    if r >= Array.length t.rounds then
      failwith "Consensus_n.propose: out of rounds (astronomically unlikely)"
    else
      match Adopt_commit.decide t.rounds.(r).ac ctx pref with
      | Adopt_commit.Commit w -> w
      | Adopt_commit.Adopt w ->
          round (r + 1) (Conciliator.conciliate t.rounds.(r).conc ctx w)
  in
  round 0 v
