type t = {
  c : Sim.Register.t;  (* value + 1; 0 = empty *)
  probs : float array;
}

let resolution = 1 lsl 20

let create ?(name = "conc") ?rounds mem ~n =
  if n < 1 then invalid_arg "Conciliator.create: n must be >= 1";
  let rounds =
    match rounds with
    | Some r -> r
    | None ->
        let rec log2up acc v = if v <= 1 then acc else log2up (acc + 1) (v / 2) in
        log2up 0 n + 2
  in
  {
    c = Sim.Register.create ~name:(name ^ ".c") mem;
    probs =
      Array.init (max 1 rounds) (fun i ->
          Float.min 1.0 (float_of_int (1 lsl i) /. float_of_int n));
  }

let conciliate t ctx v =
  let rec go i =
    if i >= Array.length t.probs then v
    else
      let seen = Sim.Ctx.read ctx t.c in
      if seen <> 0 then seen - 1
      else begin
        let threshold =
          max 1 (int_of_float (t.probs.(i) *. float_of_int resolution))
        in
        if Sim.Ctx.flip ctx resolution < threshold then begin
          Sim.Ctx.write ctx t.c (v + 1);
          v
        end
        else go (i + 1)
      end
  in
  go 0
