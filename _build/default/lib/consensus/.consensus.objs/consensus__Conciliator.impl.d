lib/consensus/conciliator.ml: Array Float Sim
