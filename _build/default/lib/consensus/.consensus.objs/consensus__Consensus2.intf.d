lib/consensus/consensus2.mli: Sim
