lib/consensus/conciliator.mli: Sim
