lib/consensus/consensus_n.ml: Adopt_commit Array Conciliator Printf
