lib/consensus/consensus_n.mli: Sim
