lib/consensus/consensus2.ml: Array Primitives Printf Sim
