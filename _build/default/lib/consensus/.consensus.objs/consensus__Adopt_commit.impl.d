lib/consensus/adopt_commit.ml: Array Printf Sim
