lib/consensus/adopt_commit.mli: Sim
