(** Probabilistic-write conciliator (Chor–Israeli–Li style; Aspnes,
    PODC 2010).

    A conciliator makes all callers' outputs equal {e with constant
    probability} against an oblivious adversary; safety is restored by
    the adopt–commit object, so the conciliator itself only promises
    validity (its output is some caller's input).

    Each caller alternates reading the shared register — adopting any
    value it finds — with writing its own preference with a doubling
    probability, so that with constant probability some write lands
    alone before anyone else's read. *)

type t

val create : ?name:string -> ?rounds:int -> Sim.Memory.t -> n:int -> t
(** [rounds] defaults to [log2 n + 2] probability doublings from [1/n]. *)

val conciliate : t -> Sim.Ctx.t -> int -> int
(** At most one call per process. *)
