(** n-process randomized binary consensus against the oblivious
    adversary, in the round-based conciliator / adopt–commit
    architecture (Aspnes, PODC 2010) that the paper's conclusion points
    to as the mirror of the TAS story (Aspnes' PODC 2012 algorithm
    strengthens the conciliators with the same sifting idea as the AA
    TAS).

    Each round [r] holds one adopt–commit object and one conciliator. A
    process entering round [r] with preference [p] first runs the
    adopt–commit: [Commit w] decides [w] immediately — coherence makes
    every contemporary either commit [w] or adopt [w], so all later
    preferences equal [w] and everyone else commits by round [r + 1] —
    while [Adopt w] updates the preference, which the conciliator then
    makes {e probably} unanimous for the next round.

    Agreement and validity are absolute (they rest only on the
    deterministic adopt–commit); only termination is randomized, with
    expected O(1) rounds against the oblivious adversary. Rounds are
    pre-allocated; running out (probability exponentially small in
    [max_rounds]) raises [Failure]. *)

type t

val create : ?name:string -> ?max_rounds:int -> Sim.Memory.t -> n:int -> t
(** [max_rounds] defaults to 64. Space: O(max_rounds · log n) registers. *)

val propose : t -> Sim.Ctx.t -> int -> int
(** [propose t ctx v] with [v] 0 or 1 returns the decided value. At most
    one call per process; at most [n] processes. *)
