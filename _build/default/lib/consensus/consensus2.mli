(** 2-process consensus from TAS and back, demonstrating the equivalence
    the paper's introduction states: {e "in systems with two processes, a
    consensus protocol can be implemented deterministically from a TAS
    object and vice versa"}.

    {!from_tas} builds consensus from one 2-process TAS plus two proposal
    registers: each process publishes its proposal, applies the TAS, and
    decides its own proposal if it won (TAS returned 0) or the other's if
    it lost. Losing implies the winner already took election steps, which
    happen after the winner's proposal write — so the read is never
    early. {!tas_from_consensus} closes the loop: a TAS call proposes the
    caller's port and returns 0 iff the consensus decides for it.

    Both constructions are deterministic wrappers; all randomness lives
    in the underlying TAS. *)

type t

val from_tas :
  ?name:string ->
  Sim.Memory.t ->
  tas:(Sim.Ctx.t -> port:int -> int) ->
  t
(** [tas] must be a one-shot 2-process TAS: returns 0 to exactly one of
    the two ports. *)

val from_le2 : ?name:string -> Sim.Memory.t -> t
(** Consensus from a fresh {!Primitives.Le2}-backed TAS. *)

val propose : t -> Sim.Ctx.t -> port:int -> int -> int
(** [propose t ctx ~port v] returns the decided value. Agreement: both
    callers return the same value. Validity: the decision is one of the
    proposed values. [port] is 0 or 1; at most one caller per port, one
    call each. *)

type tas

val tas_from_consensus : t -> tas
(** Build a TAS from a consensus object — typically one built by
    {!from_tas}, closing the equivalence loop. *)

val apply : tas -> Sim.Ctx.t -> port:int -> int
(** Returns 0 to exactly one of the two callers, 1 to the other. *)
