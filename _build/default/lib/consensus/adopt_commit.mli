(** Deterministic wait-free binary adopt–commit object.

    [decide] returns [Commit v] or [Adopt v] with:
    - {e validity}: the returned value was somebody's input;
    - {e coherence}: if any caller gets [Commit v], every caller's
      returned value is [v];
    - {e convergence}: if all callers input the same [v], all get
      [Commit v].

    Adopt–commit objects are the safety half of round-based randomized
    consensus (Aspnes, PODC 2010): a round's conciliator only makes
    preferences {e probably} equal; the adopt–commit makes acting on
    them safe.

    The implementation uses four registers. Phase 1 publishes the
    proposal in [A[v]] and checks the opposite flag; a process that saw
    no opposite proposal stakes [B[v]] and rechecks — committing only if
    the opposite flag is still clear, which orders every conflicting
    process after the stake, so conflicted processes always observe the
    committer's [B] flag. At most one of [B[0]], [B[1]] is ever set, and
    opposite-valued processes can never both pass the phase-1 check.
    The object is model-checked exhaustively in the test suite. *)

type t

type outcome = Commit of int | Adopt of int

val create : ?name:string -> Sim.Memory.t -> t

val decide : t -> Sim.Ctx.t -> int -> outcome
(** [decide t ctx v] with [v] 0 or 1; at most one call per process. *)
