type t = {
  proposals : Sim.Register.t array;  (* indexed by port; value v+1, 0 = none *)
  tas : Sim.Ctx.t -> port:int -> int;
}

let from_tas ?(name = "cons2") mem ~tas =
  {
    proposals =
      Array.init 2 (fun p ->
          Sim.Register.create ~name:(Printf.sprintf "%s.prop[%d]" name p) mem);
    tas;
  }

let from_le2 ?(name = "cons2") mem =
  let le = Primitives.Le2.create ~name:(name ^ ".le") mem in
  let doorway = Sim.Register.create ~name:(name ^ ".door") mem in
  let tas ctx ~port =
    if Sim.Ctx.read ctx doorway = 1 then 1
    else if Primitives.Le2.elect le ctx ~port then 0
    else begin
      Sim.Ctx.write ctx doorway 1;
      1
    end
  in
  from_tas ~name mem ~tas

let propose t ctx ~port v =
  if port <> 0 && port <> 1 then invalid_arg "Consensus2.propose: bad port";
  Sim.Ctx.write ctx t.proposals.(port) (v + 1);
  if t.tas ctx ~port = 0 then v
  else
    (* The winner published its proposal before entering the TAS, and we
       can only have lost after the winner took steps, so the read below
       returns a real value. *)
    Sim.Ctx.read ctx t.proposals.(1 - port) - 1

type tas = t

let tas_from_consensus t = t

let apply t ctx ~port =
  if propose t ctx ~port port = port then 0 else 1
