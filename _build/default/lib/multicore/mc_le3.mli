(** 3-process election on atomics (two chained duels), as used at each
    node of the multicore RatRace tree. Ports 0-2, one caller each. *)

type t

val create : unit -> t

val elect : t -> Random.State.t -> port:int -> bool
