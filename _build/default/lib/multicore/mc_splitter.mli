(** Moir–Anderson deterministic splitter on atomics. Same guarantees as
    {!Primitives.Splitter}: at most one [S]; a solo caller gets [S]; not
    all callers get [L], not all get [R]. *)

type t

type outcome = L | R | S

val create : unit -> t

val split : t -> id:int -> outcome
(** [id] must be distinct per caller and nonzero. *)
