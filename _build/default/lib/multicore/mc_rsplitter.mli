(** Randomized splitter on atomics: at most one [S]; a solo caller gets
    [S]; non-[S] callers go [L] or [R] with probability 1/2 each. *)

type t

val create : unit -> t

val split : t -> Random.State.t -> id:int -> Mc_splitter.outcome
(** [id] distinct per caller and nonzero. *)
