type t = { a : int Atomic.t; b : int Atomic.t }

let create () = { a = Atomic.make 0; b = Atomic.make 0 }

(* Same protocol and thresholds as [Primitives.Le2]; see its interface
   for the safety argument. *)
let elect t rng ~port =
  if port <> 0 && port <> 1 then invalid_arg "Mc_le2.elect: port must be 0 or 1";
  let mine, other = if port = 0 then (t.a, t.b) else (t.b, t.a) in
  let rec loop pos =
    let o = Atomic.get other in
    if o >= pos + 2 then false
    else if o <= pos - 3 then true
    else begin
      let pos' = pos + (if Random.State.bool rng then 1 else 0) in
      if pos' > pos then Atomic.set mine pos';
      loop pos'
    end
  in
  loop 0
