let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  max 1 (go 0 n)

(* One elimination-path layer: splitter + duel per node. *)
type path = {
  p_sps : Mc_splitter.t array;
  p_les : Mc_le2.t array;
}

let make_path length =
  {
    p_sps = Array.init length (fun _ -> Mc_splitter.create ());
    p_les = Array.init length (fun _ -> Mc_le2.create ());
  }

type path_outcome = P_lost | P_won | P_fell_off

let run_path path rng ~id =
  let len = Array.length path.p_sps in
  let rec backward stopped_at j =
    let port = if j = stopped_at then 0 else 1 in
    if Mc_le2.elect path.p_les.(j) rng ~port then
      if j = 0 then P_won else backward stopped_at (j - 1)
    else P_lost
  in
  let rec forward i =
    if i >= len then P_fell_off
    else
      match Mc_splitter.split path.p_sps.(i) ~id with
      | Mc_splitter.L -> P_lost
      | Mc_splitter.R -> forward (i + 1)
      | Mc_splitter.S -> backward i i
  in
  forward 0

type t = {
  rsps : Mc_rsplitter.t array;  (* heap layout *)
  les : Mc_le3.t array;
  height : int;
  paths : path array;
  backup : path;
  top : Mc_le2.t;
  leaves_per_path : int;
}

let create ~n =
  if n < 1 then invalid_arg "Mc_rr_lean.create: n must be >= 1";
  let h = ceil_log2 n in
  let nodes = (1 lsl (h + 1)) - 1 in
  let count = max 1 ((n + h - 1) / h) in
  {
    rsps = Array.init (nodes + 1) (fun _ -> Mc_rsplitter.create ());
    les = Array.init (nodes + 1) (fun _ -> Mc_le3.create ());
    height = h;
    paths = Array.init count (fun _ -> make_path (4 * h));
    backup = make_path n;
    top = Mc_le2.create ();
    leaves_per_path = h;
  }

let rec ascend t rng v ~port =
  if Mc_le3.elect t.les.(v) rng ~port then
    if v = 1 then true
    else ascend t rng (v / 2) ~port:(if v land 1 = 0 then 1 else 2)
  else false

type tree_outcome = T_lost | T_won | T_fell_off of int

let run_tree t rng ~id =
  let first_leaf = 1 lsl t.height in
  let rec descend v =
    match Mc_rsplitter.split t.rsps.(v) rng ~id with
    | Mc_splitter.S -> if ascend t rng v ~port:0 then T_won else T_lost
    | Mc_splitter.L ->
        if v >= first_leaf then T_fell_off (v - first_leaf) else descend (2 * v)
    | Mc_splitter.R ->
        if v >= first_leaf then T_fell_off (v - first_leaf)
        else descend ((2 * v) + 1)
  in
  descend 1

let elect t rng ~id =
  let win_tree () = Mc_le2.elect t.top rng ~port:0 in
  let backup () =
    match run_path t.backup rng ~id with
    | P_won -> Mc_le2.elect t.top rng ~port:1
    | P_lost -> false
    | P_fell_off -> failwith "Mc_rr_lean: fell off the length-n backup path"
  in
  match run_tree t rng ~id with
  | T_won -> win_tree ()
  | T_lost -> false
  | T_fell_off j -> (
      let i = min (j / t.leaves_per_path) (Array.length t.paths - 1) in
      match run_path t.paths.(i) rng ~id with
      | P_won ->
          if ascend t rng ((1 lsl t.height) + i) ~port:1 then win_tree ()
          else false
      | P_lost -> false
      | P_fell_off -> backup ())
