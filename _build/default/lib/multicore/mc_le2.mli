(** The 2-process random-walk duel of {!Primitives.Le2}, on real OCaml
    [Atomic.t] registers, runnable across domains.

    OCaml's [Atomic] operations are sequentially consistent, so they
    model the paper's atomic multi-reader multi-writer registers
    directly. At most one process may use each port. *)

type t

val create : unit -> t

val elect : t -> Random.State.t -> port:int -> bool
(** Wait-free; O(1) expected steps. [port] is 0 or 1. *)
