type t = Mc_splitter.t

let create () = Mc_splitter.create ()

let split t rng ~id =
  match Mc_splitter.split t ~id with
  | Mc_splitter.S -> Mc_splitter.S
  | Mc_splitter.L | Mc_splitter.R ->
      if Random.State.bool rng then Mc_splitter.R else Mc_splitter.L
