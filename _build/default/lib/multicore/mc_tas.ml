type t = {
  name : string;
  elect : Random.State.t -> slot:int -> bool;
  doorway : int Atomic.t;
  nativ : bool Atomic.t option;
}

let make name elect =
  { name; elect; doorway = Atomic.make 0; nativ = None }

let of_tournament ~n =
  let le = Mc_tournament.create ~n in
  make "tournament" (fun rng ~slot -> Mc_tournament.elect le rng ~slot)

let of_sift ~n =
  let le = Mc_sift.create ~n in
  make "sift" (fun rng ~slot -> Mc_sift.elect le rng ~slot)

let of_le2 () =
  let le = Mc_le2.create () in
  make "le2" (fun rng ~slot -> Mc_le2.elect le rng ~port:slot)

let of_elim ~n =
  let le = Mc_elim.create ~n in
  make "elim" (fun rng ~slot -> Mc_elim.elect le rng ~id:(slot + 1))

let of_rr_lean ~n =
  let le = Mc_rr_lean.create ~n in
  make "rr-lean" (fun rng ~slot -> Mc_rr_lean.elect le rng ~id:(slot + 1))

let native () =
  {
    name = "native";
    elect = (fun _ ~slot:_ -> false);
    doorway = Atomic.make 0;
    nativ = Some (Atomic.make false);
  }

let apply t rng ~slot =
  match t.nativ with
  | Some flag -> if Atomic.exchange flag true then 1 else 0
  | None ->
      if Atomic.get t.doorway = 1 then 1
      else if t.elect rng ~slot then 0
      else begin
        Atomic.set t.doorway 1;
        1
      end

let name t = t.name
