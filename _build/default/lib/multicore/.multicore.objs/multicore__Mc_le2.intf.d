lib/multicore/mc_le2.mli: Random
