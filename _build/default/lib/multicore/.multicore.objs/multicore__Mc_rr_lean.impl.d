lib/multicore/mc_rr_lean.ml: Array Mc_le2 Mc_le3 Mc_rsplitter Mc_splitter
