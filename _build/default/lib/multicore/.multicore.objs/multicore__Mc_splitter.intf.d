lib/multicore/mc_splitter.mli:
