lib/multicore/mc_elim.ml: Array Mc_le2 Mc_splitter
