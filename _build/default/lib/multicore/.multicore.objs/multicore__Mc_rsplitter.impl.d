lib/multicore/mc_rsplitter.ml: Mc_splitter Random
