lib/multicore/mc_tournament.ml: Array Mc_le2
