lib/multicore/mc_rsplitter.mli: Mc_splitter Random
