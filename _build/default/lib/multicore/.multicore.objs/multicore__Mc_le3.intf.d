lib/multicore/mc_le3.mli: Random
