lib/multicore/mc_rr_lean.mli: Random
