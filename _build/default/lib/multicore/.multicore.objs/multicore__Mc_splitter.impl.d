lib/multicore/mc_splitter.ml: Atomic
