lib/multicore/mc_tournament.mli: Random
