lib/multicore/mc_tas.ml: Atomic Mc_elim Mc_le2 Mc_rr_lean Mc_sift Mc_tournament Random
