lib/multicore/mc_elim.mli: Random
