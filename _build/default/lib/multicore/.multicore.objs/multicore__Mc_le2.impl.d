lib/multicore/mc_le2.ml: Atomic Random
