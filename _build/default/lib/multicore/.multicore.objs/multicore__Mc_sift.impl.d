lib/multicore/mc_sift.ml: Array Atomic Groupelect Mc_tournament Random
