lib/multicore/mc_le3.ml: Mc_le2
