lib/multicore/mc_sift.mli: Random
