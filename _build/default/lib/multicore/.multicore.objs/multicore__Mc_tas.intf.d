lib/multicore/mc_tas.mli: Random
