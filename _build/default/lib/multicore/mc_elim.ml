type t = {
  sps : Mc_splitter.t array;
  les : Mc_le2.t array;
}

let create ~n =
  if n < 1 then invalid_arg "Mc_elim.create: n must be >= 1";
  {
    sps = Array.init n (fun _ -> Mc_splitter.create ());
    les = Array.init n (fun _ -> Mc_le2.create ());
  }

let elect t rng ~id =
  let len = Array.length t.sps in
  let rec backward stopped_at j =
    let port = if j = stopped_at then 0 else 1 in
    if Mc_le2.elect t.les.(j) rng ~port then
      if j = 0 then true else backward stopped_at (j - 1)
    else false
  in
  let rec forward i =
    if i >= len then
      failwith "Mc_elim.elect: fell off the path (more than n entrants?)"
    else
      match Mc_splitter.split t.sps.(i) ~id with
      | Mc_splitter.L -> false
      | Mc_splitter.R -> forward (i + 1)
      | Mc_splitter.S -> backward i i
  in
  forward 0
