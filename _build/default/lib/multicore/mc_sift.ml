type t = {
  levels : int Atomic.t array;
  probs : float array;
  finisher : Mc_tournament.t;
}

let create ~n =
  if n < 1 then invalid_arg "Mc_sift.create: n must be >= 1";
  let probs = Groupelect.Ge_sift.probability_schedule ~n in
  {
    levels = Array.init (Array.length probs) (fun _ -> Atomic.make 0);
    probs;
    finisher = Mc_tournament.create ~n;
  }

let elect t rng ~slot =
  let rec sift i =
    if i >= Array.length t.probs then true
    else if Random.State.float rng 1.0 < t.probs.(i) then begin
      Atomic.set t.levels.(i) 1;
      sift (i + 1)
    end
    else if Atomic.get t.levels.(i) = 0 then sift (i + 1)
    else false
  in
  if sift 0 then Mc_tournament.elect t.finisher rng ~slot else false
