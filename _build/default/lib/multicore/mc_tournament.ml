type t = { les : Mc_le2.t array; leaves : int }

let create ~n =
  if n < 1 then invalid_arg "Mc_tournament.create: n must be >= 1";
  let rec pow2 p = if p >= n then p else pow2 (2 * p) in
  let leaves = pow2 1 in
  { les = Array.init leaves (fun _ -> Mc_le2.create ()); leaves }

let slots t = t.leaves

let elect t rng ~slot =
  if slot < 0 || slot >= t.leaves then
    invalid_arg "Mc_tournament.elect: slot out of range";
  let rec up v =
    if v = 1 then true
    else if Mc_le2.elect t.les.(v / 2) rng ~port:(v land 1) then up (v / 2)
    else false
  in
  up (t.leaves + slot)
