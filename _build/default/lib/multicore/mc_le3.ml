type t = { first : Mc_le2.t; final : Mc_le2.t }

let create () = { first = Mc_le2.create (); final = Mc_le2.create () }

let elect t rng ~port =
  match port with
  | 2 -> Mc_le2.elect t.final rng ~port:1
  | 0 | 1 ->
      if Mc_le2.elect t.first rng ~port then Mc_le2.elect t.final rng ~port:0
      else false
  | _ -> invalid_arg "Mc_le3.elect: port must be 0, 1 or 2"
