type t = { race : int Atomic.t; door : bool Atomic.t }

type outcome = L | R | S

let create () = { race = Atomic.make 0; door = Atomic.make false }

let split t ~id =
  if id = 0 then invalid_arg "Mc_splitter.split: id must be nonzero";
  Atomic.set t.race id;
  if Atomic.get t.door then L
  else begin
    Atomic.set t.door true;
    if Atomic.get t.race = id then S else R
  end
