(** The paper's Section 3 lean RatRace on real atomics: primary tree of
    height [ceil(log2 n)] (randomized splitters + 3-process elections),
    [ceil(n / log2 n)] elimination paths of length [4 ceil(log2 n)]
    absorbing leaf overflow, and a length-[n] backup elimination path.
    O(log k) expected steps, Theta(n) atomics, wait-free. *)

type t

val create : n:int -> t

val elect : t -> Random.State.t -> id:int -> bool
(** [id] distinct per caller, in [\[1, n\]]. At most [n] callers. *)
