type t = {
  ge_name : string;
  elect : Sim.Ctx.t -> bool;
}
