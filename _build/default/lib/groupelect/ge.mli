(** Group Election (Section 2.1 of the paper).

    A GroupElect object provides [elect], returning [true] (elected) or
    [false]. If some processes call [elect], at least one gets elected.
    Its quality is its {e performance parameter} [f]: the expected number
    of elected processes when [k] processes participate. *)

type t = {
  ge_name : string;
  elect : Sim.Ctx.t -> bool;  (** At most one call per process. *)
}
