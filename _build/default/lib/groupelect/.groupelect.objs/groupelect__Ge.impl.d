lib/groupelect/ge.ml: Sim
