lib/groupelect/ge_logstar.mli: Ge Sim
