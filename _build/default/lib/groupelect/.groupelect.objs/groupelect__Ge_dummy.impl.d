lib/groupelect/ge_dummy.ml: Ge
