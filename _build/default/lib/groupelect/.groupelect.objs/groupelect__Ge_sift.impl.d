lib/groupelect/ge_sift.ml: Array Ge List Sim
