lib/groupelect/ge_logstar.ml: Array Ge Printf Sim
