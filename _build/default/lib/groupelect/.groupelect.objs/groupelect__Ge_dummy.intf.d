lib/groupelect/ge_dummy.mli: Ge
