lib/groupelect/ge_sift.mli: Ge Sim
