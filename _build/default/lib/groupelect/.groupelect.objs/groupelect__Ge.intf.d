lib/groupelect/ge.mli: Sim
