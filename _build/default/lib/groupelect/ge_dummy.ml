let create ?(name = "dummy") () = { Ge.ge_name = name; elect = (fun _ -> true) }
