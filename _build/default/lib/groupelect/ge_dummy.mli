(** Trivial Group Election that elects every participant.

    Uses no registers and no shared-memory steps. The paper uses these
    past the first O(log n) levels of the log* construction: with
    probability 1 - 1/n the real levels are never exhausted, so the
    remaining ones can be free — which caps the space at O(n). *)

val create : ?name:string -> unit -> Ge.t
