(** Adaptive leader election with O(log log k) expected steps against the
    R/W-oblivious adversary (Theorem 2.4), from O(n) registers.

    A ladder of Section 2.1 chains ("rungs") of doubly-exponentially
    increasing capacities [n_i = 2^(2^(2^i))] (the last rung has capacity
    [n]). Rung [i] uses sifting GroupElects with write probabilities
    tuned for contention [n_i] and only [Theta(log log n_i) = Theta(2^i)]
    levels; a process that exhausts a rung without winning or losing a
    splitter escalates to the next rung. The last rung has [n] levels
    (sifting levels followed by dummies) and cannot be exhausted. Rung
    winners are reconciled by a chain of 2-process elections indexed by
    rung.

    A process with contention [k] settles in the first rung with
    [n_i >= k] after [sum of Theta(2^j) for n_j < k] = O(log log k)
    steps, where the sifting probabilities are small enough to thin the
    crowd; hence adaptivity. *)

type t

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val elect : t -> Sim.Ctx.t -> bool

val rung_capacities : n:int -> int array

val to_le : t -> Le.t

val make : Sim.Memory.t -> n:int -> Le.t
