(** Baseline: the Alistarh–Aspnes leader election (DISC 2011),
    non-adaptive O(log log n) expected steps against the R/W-oblivious
    adversary.

    Theta(log log n) sifting levels (within the Section 2.1 chain, so a
    level's sifting survivors still face that level's splitter) reduce
    the crowd to an expected constant; processes that exhaust the
    sifting levels fall through to a RatRace. In the original paper the
    fallback is the Theta(n^3) RatRace; we use it with the lean
    Theta(n) variant by default, with an option to use the original for
    faithful space accounting. *)

type t

val create :
  ?name:string -> ?original_fallback:bool -> Sim.Memory.t -> n:int -> t

val elect : t -> Sim.Ctx.t -> bool

val to_le : t -> Le.t

val make : Sim.Memory.t -> n:int -> Le.t
(** Lean fallback. *)

val make_original : Sim.Memory.t -> n:int -> Le.t
(** Theta(n^3) fallback, as in the 2011 paper. *)
