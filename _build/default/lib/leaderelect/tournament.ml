let pow2_at_least n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

type t = {
  les : Primitives.Le2.t array;  (* heap layout, internal nodes 1..leaves-1 *)
  leaves : int;
}

let create ?(name = "tournament") mem ~n =
  if n < 1 then invalid_arg "Tournament.create: n must be >= 1";
  let leaves = pow2_at_least n in
  {
    les =
      Array.init leaves (fun v ->
          Primitives.Le2.create ~name:(Printf.sprintf "%s.le[%d]" name v) mem);
    leaves;
  }

let elect t ctx =
  let p = Sim.Ctx.pid ctx in
  if p >= t.leaves then invalid_arg "Tournament.elect: pid out of range";
  let rec up v =
    if v = 1 then true
    else
      let port = v land 1 in
      if Primitives.Le2.elect t.les.(v / 2) ctx ~port then up (v / 2) else false
  in
  up (t.leaves + p)

let to_le t = { Le.le_name = "tournament"; elect = elect t }

let make mem ~n = to_le (create mem ~n)
