let ceil_log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  max 1 (go 0 n)

type t = { chain : Chain.t }

let create ?(name = "logstar") ?cutoff mem ~n =
  if n < 1 then invalid_arg "Le_logstar.create: n must be >= 1";
  let cutoff =
    match cutoff with Some c -> min c n | None -> min n (3 * ceil_log2 n)
  in
  let ges =
    Array.init n (fun i ->
        if i < cutoff then
          Groupelect.Ge_logstar.create
            ~name:(Printf.sprintf "%s.ge[%d]" name i)
            mem ~n
        else Groupelect.Ge_dummy.create ~name:(Printf.sprintf "%s.dummy[%d]" name i) ())
  in
  { chain = Chain.create mem ~name ges }

let elect t ctx = Chain.elect t.chain ctx

let to_le t = { Le.le_name = "log*"; elect = elect t }

let make mem ~n = to_le (create mem ~n)
