let make_original mem ~n =
  let rr = Ratrace.Rr_classic.create mem ~n in
  { Le.le_name = "ratrace"; elect = Ratrace.Rr_classic.elect rr }

let make_lean mem ~n =
  let rr = Ratrace.Ratrace_lean.create mem ~n in
  { Le.le_name = "ratrace-lean"; elect = Ratrace.Ratrace_lean.elect rr }
