lib/leaderelect/le_logstar.ml: Array Chain Groupelect Le Printf
