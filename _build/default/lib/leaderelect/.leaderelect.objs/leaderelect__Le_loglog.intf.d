lib/leaderelect/le_loglog.mli: Le Sim
