lib/leaderelect/le_logstar.mli: Le Sim
