lib/leaderelect/attacks.mli: Sim
