lib/leaderelect/aa.ml: Array Chain Groupelect Le Primitives Printf Ratrace
