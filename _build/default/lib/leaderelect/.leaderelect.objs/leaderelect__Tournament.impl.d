lib/leaderelect/tournament.ml: Array Le Primitives Printf Sim
