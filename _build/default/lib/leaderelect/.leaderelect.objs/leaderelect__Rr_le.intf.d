lib/leaderelect/rr_le.mli: Le Sim
