lib/leaderelect/aa.mli: Le Sim
