lib/leaderelect/le_obstruction.ml: Array Le Primitives Printf Sim
