lib/leaderelect/rr_le.ml: Le Ratrace
