lib/leaderelect/le_obstruction.mli: Le Sim
