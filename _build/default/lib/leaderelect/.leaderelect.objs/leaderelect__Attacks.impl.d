lib/leaderelect/attacks.ml: Array Hashtbl List Option Sim String
