lib/leaderelect/tournament.mli: Le Sim
