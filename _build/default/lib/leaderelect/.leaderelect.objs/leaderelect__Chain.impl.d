lib/leaderelect/chain.ml: Array Groupelect Primitives Printf
