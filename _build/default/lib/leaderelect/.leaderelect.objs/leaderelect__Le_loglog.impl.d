lib/leaderelect/le_loglog.ml: Array Chain Groupelect Le List Primitives Printf
