lib/leaderelect/le.ml: Array List Sim
