lib/leaderelect/le.mli: Sim
