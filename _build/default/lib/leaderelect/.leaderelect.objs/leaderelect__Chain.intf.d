lib/leaderelect/chain.mli: Groupelect Sim
