(** {!Le.t} wrappers for the two RatRace variants, so that all leader
    elections can be driven through one interface. *)

val make_original : Sim.Memory.t -> n:int -> Le.t
val make_lean : Sim.Memory.t -> n:int -> Le.t
