(** The paper's headline algorithm (Theorem 2.3): adaptive leader
    election with O(log* k) expected steps against the location-oblivious
    adversary, from O(n) registers.

    It is the Section 2.1 chain instantiated with the Figure 1
    GroupElect. Only the first [cutoff] levels (default
    [3 * ceil(log2 n)], following the paper's observation that with
    probability [1 - 1/n] only O(log n) levels are used) carry real
    GroupElect objects of O(log n) registers each; the rest are dummies
    that elect everyone, leaving the splitters to eliminate at least one
    process per level. Total space: O(log^2 n) + Theta(n) = Theta(n). *)

type t

val create : ?name:string -> ?cutoff:int -> Sim.Memory.t -> n:int -> t

val elect : t -> Sim.Ctx.t -> bool

val to_le : t -> Le.t

val make : Sim.Memory.t -> n:int -> Le.t
