type fallback =
  | Lean of Ratrace.Ratrace_lean.t
  | Original of Ratrace.Rr_classic.t

type t = {
  chain : Chain.t;
  fallback : fallback;
  top : Primitives.Le2.t;
}

let create ?(name = "aa") ?(original_fallback = false) mem ~n =
  if n < 1 then invalid_arg "Aa.create: n must be >= 1";
  let probs = Groupelect.Ge_sift.probability_schedule ~n in
  let ges =
    Array.init
      (max 1 (Array.length probs))
      (fun i ->
        if i < Array.length probs then
          Groupelect.Ge_sift.create
            ~name:(Printf.sprintf "%s.sift[%d]" name i)
            mem ~write_prob:probs.(i)
        else Groupelect.Ge_dummy.create ())
  in
  let fallback =
    if original_fallback then
      Original (Ratrace.Rr_classic.create ~name:(name ^ ".rr") mem ~n)
    else Lean (Ratrace.Ratrace_lean.create ~name:(name ^ ".rr") mem ~n)
  in
  {
    chain = Chain.create mem ~name ges;
    fallback;
    top = Primitives.Le2.create ~name:(name ^ ".top") mem;
  }

let elect t ctx =
  match Chain.forward t.chain ctx ~from_level:0 ~upto:(Chain.levels t.chain) with
  | Chain.F_lost -> false
  | Chain.F_stopped level ->
      if Chain.backward t.chain ctx ~stopped_at:level then
        Primitives.Le2.elect t.top ctx ~port:0
      else false
  | Chain.F_exhausted ->
      let won =
        match t.fallback with
        | Lean rr -> Ratrace.Ratrace_lean.elect rr ctx
        | Original rr -> Ratrace.Rr_classic.elect rr ctx
      in
      if won then Primitives.Le2.elect t.top ctx ~port:1 else false

let to_le t = { Le.le_name = "aa"; elect = elect t }

let make mem ~n = to_le (create mem ~n)

let make_original mem ~n =
  { Le.le_name = "aa-original"; elect = elect (create ~original_fallback:true mem ~n) }
