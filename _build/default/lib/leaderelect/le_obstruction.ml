type duel = { a : Sim.Register.t; b : Sim.Register.t }

let duel2 ?(name = "obduel") mem =
  {
    a = Sim.Register.create ~name:(name ^ ".pos0") mem;
    b = Sim.Register.create ~name:(name ^ ".pos1") mem;
  }

(* The Le2 protocol with the coin removed: always advance. Identical
   safety argument (thresholds -3/+2); liveness only when one side gets
   to run ahead of the other. *)
let duel_elect t ctx ~port =
  if port <> 0 && port <> 1 then
    invalid_arg "Le_obstruction.duel_elect: port must be 0 or 1";
  let mine, other = if port = 0 then (t.a, t.b) else (t.b, t.a) in
  let rec loop pos =
    let o = Sim.Ctx.read ctx other in
    if o >= pos + 2 then false
    else if o <= pos - 3 then true
    else begin
      let pos' = pos + 1 in
      Sim.Ctx.write ctx mine pos';
      loop pos'
    end
  in
  loop 0

type t = {
  sps : Primitives.Splitter.t array;
  duels : duel array;
}

let create ?(name = "obfree") mem ~n =
  if n < 1 then invalid_arg "Le_obstruction.create: n must be >= 1";
  {
    sps =
      Array.init n (fun i ->
          Primitives.Splitter.create ~name:(Printf.sprintf "%s.sp[%d]" name i) mem);
    duels =
      Array.init n (fun i -> duel2 ~name:(Printf.sprintf "%s.du[%d]" name i) mem);
  }

let elect t ctx =
  let len = Array.length t.sps in
  let rec backward stopped_at j =
    let port = if j = stopped_at then 0 else 1 in
    if duel_elect t.duels.(j) ctx ~port then
      if j = 0 then true else backward stopped_at (j - 1)
    else false
  in
  let rec forward i =
    if i >= len then
      failwith "Le_obstruction.elect: fell off the path (more than n entrants?)"
    else
      match Primitives.Splitter.split t.sps.(i) ctx with
      | Primitives.Splitter.L -> false
      | Primitives.Splitter.R -> forward (i + 1)
      | Primitives.Splitter.S -> backward i i
  in
  forward 0

let to_le t = { Le.le_name = "obstruction-free"; elect = elect t }

let make mem ~n = to_le (create mem ~n)
