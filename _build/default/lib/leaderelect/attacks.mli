(** Adversary strategies that defeat specific algorithms — used to
    demonstrate why Section 4's adversary-independent combination is
    needed.

    {!ascending_location} is the adaptive attack on the Figure 1 chain:
    the adaptive adversary sees each process's pending write register
    (hence the random index [x] it drew) and schedules pending writes to
    low cells of the GroupElect array first. Every process then reads
    its [R[x+1]] before the processes holding larger indices write, so
    {e everyone} is elected: the chain shrinks only by one per level
    (through the splitter), forcing Theta(k) steps. *)

val ascending_location : unit -> Sim.Sched.adversary

val ascending_location_rw : unit -> Sim.Sched.adversary
(** The same attack expressed against the {e R/W-oblivious} view: it
    only uses pending registers (never whether the operation is a read
    or a write; ties are broken by visible step counts, which favour the
    reader of [R[x+1]] over a writer poised at the same cell). Its
    effectiveness against the Figure 1 chain demonstrates the paper's
    remark that the log* algorithm "is not efficient against the
    R/W-oblivious adversary" — the pending {e location} alone leaks the
    random index. *)

val read_priority : unit -> Sim.Sched.adversary
(** A {e location-oblivious} strategy: always schedule a pending read if
    any exists. Against the sifting GroupElect this lets every reader
    read before any writer writes, so everyone is elected — showing why
    sifting needs the R/W-oblivious assumption (the location-oblivious
    adversary sees operation {e types}, which is exactly what sifting
    randomizes). *)

val register_index : string -> int option
(** Parse the trailing [\[i\]] index of a register name such as
    ["logstar.ge[3].R[5]"]. *)
