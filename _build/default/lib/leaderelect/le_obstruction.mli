(** Deterministic {e obstruction-free} leader election — the progress
    class the Section 5 lower bound actually targets.

    Theorem 5.1 applies to every algorithm with {e nondeterministic
    solo-termination}, a condition strictly weaker than wait-freedom:
    a process must finish only when it runs alone. Deterministically
    this is obstruction-freedom, and unlike wait-free leader election it
    {e is} achievable without randomness. This module implements it:

    - {!duel2}: the {!Primitives.Le2} random-walk duel with the coin
      replaced by a deterministic [+1] advance. Safety is untouched (the
      duel's safety argument never uses randomness); a solo process
      climbs to the winning gap and terminates, while two processes in
      adversarial lockstep advance together forever — the livelock that
      obstruction-freedom permits and wait-freedom forbids.
    - {!create}/{!elect}: an n-process election given by an elimination
      path (deterministic splitters + deterministic duels), entirely
      deterministic and obstruction-free.

    Under any schedule that eventually lets one contender run alone the
    election terminates with a unique winner; under exact lockstep it
    runs forever. The test suite demonstrates both behaviours, and that
    the implementation's register count respects the Omega(log n) bound. *)

type duel

val duel2 : ?name:string -> Sim.Memory.t -> duel

val duel_elect : duel -> Sim.Ctx.t -> port:int -> bool

type t

val create : ?name:string -> Sim.Memory.t -> n:int -> t

val elect : t -> Sim.Ctx.t -> bool

val to_le : t -> Le.t

val make : Sim.Memory.t -> n:int -> Le.t
