type t = {
  le_name : string;
  elect : Sim.Ctx.t -> bool;
}

let programs t ~k =
  Array.init k (fun _ ctx -> if t.elect ctx then 1 else 0)

let winners sched =
  let out = ref [] in
  Array.iteri
    (fun pid r -> if r = Some 1 then out := pid :: !out)
    (Sim.Sched.results sched);
  List.rev !out
