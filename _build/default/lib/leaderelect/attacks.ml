let register_index name =
  match (String.rindex_opt name '[', String.rindex_opt name ']') with
  | Some i, Some j when j > i + 1 ->
      int_of_string_opt (String.sub name (i + 1) (j - i - 1))
  | _ -> None

let contains_at name sub i =
  i >= 0
  && i + String.length sub <= String.length name
  && String.sub name i (String.length sub) = sub

let find_sub name sub =
  let n = String.length name and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if contains_at name sub i then Some i
    else go (i + 1)
  in
  go 0

(* Parse "<prefix>.ge[<level>].R[<x>]" / "<prefix>.ge[<level>].flag". *)
let parse_ge name =
  match find_sub name ".ge[" with
  | None -> None
  | Some i -> (
      let rest = String.sub name (i + 4) (String.length name - i - 4) in
      match String.index_opt rest ']' with
      | None -> None
      | Some j -> (
          match int_of_string_opt (String.sub rest 0 j) with
          | None -> None
          | Some level ->
              let suffix = String.sub rest j (String.length rest - j) in
              if find_sub suffix ".R[" <> None then
                match register_index suffix with
                | Some x -> Some (level, `Cell x)
                | None -> None
              else if find_sub suffix ".flag" <> None then Some (level, `Flag)
              else None))

let parse_level_of sub name =
  match find_sub name sub with
  | None -> None
  | Some i -> (
      let rest =
        String.sub name
          (i + String.length sub)
          (String.length name - i - String.length sub)
      in
      match String.index_opt rest ']' with
      | None -> None
      | Some j -> int_of_string_opt (String.sub rest 0 j))

(* The paper's attack on the Figure 1 chain (Section 4's motivation).

   Per level, in order: every process reads the flag (so nobody is
   filtered by the doorway), then the flag writes, then the array
   operations in ascending cell order with each cell's read scheduled
   before that cell's write — so no process ever observes R[x+1] set,
   and the whole group is elected. The splitter then eliminates only
   one process per level: Theta(k) levels.

   [see_kind] distinguishes the adaptive/location-aware variant (pending
   operation kinds visible) from the R/W-oblivious variant, which must
   infer read-vs-write from how many steps it has granted a process on
   the current register family (flag: first grant is the read; array
   cells: a process's first array operation is its write, the second its
   read). *)
let chain_attack ~name ~klass ~see_kind =
  (* Own bookkeeping, legal for any adversary class: how many steps we
     have granted each pid while it was pending on a ge flag / cell of a
     given level. *)
  let flag_grants : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let cell_grants : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let race_grants : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let door_grants : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let grants tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  let bump tbl key = Hashtbl.replace tbl key (1 + grants tbl key) in
  let has_suffix name suf = find_sub name suf <> None in
  let score (p : Sim.Sched.pending_view) =
    match p.Sim.Sched.view_reg_name with
    | None -> max_int
    | Some name -> (
        let pid = p.Sim.Sched.view_pid in
        let is_read family_tbl level ~first_is_read =
          if see_kind then p.Sim.Sched.view_kind = Some `Read
          else if first_is_read then grants family_tbl (pid, level) = 0
          else grants family_tbl (pid, level) = 1
        in
        match parse_ge name with
        | Some (level, `Flag) ->
            (level * 1_000_000)
            + if is_read flag_grants level ~first_is_read:true then 0 else 1
        | Some (level, `Cell x) ->
            (level * 1_000_000) + 10 + (4 * x)
            + if is_read cell_grants level ~first_is_read:false then 0 else 1
        | None -> (
            (* Splitter of the same level: all race writes, then all door
               reads (everyone passes the open door), then door writes,
               then race re-reads — so that k-1 processes get R and
               survive to the next level. *)
            match parse_level_of ".sp[" name with
            | Some level ->
                let base = (level * 1_000_000) + 900_000 in
                if has_suffix name ".race" then
                  if is_read race_grants level ~first_is_read:false then
                    base + 3
                  else base + 0
                else if has_suffix name ".door" then
                  if is_read door_grants level ~first_is_read:true then
                    base + 1
                  else base + 2
                else base + 4
            | None -> max_int - 1))
  in
  let decide (view : Sim.Sched.view) =
    match Array.length view.Sim.Sched.runnable with
    | 0 -> Sim.Sched.Halt
    | _ ->
        let best = ref None in
        Array.iter
          (fun pid ->
            let p = view.Sim.Sched.pending_of pid in
            let s = score p in
            match !best with
            | Some (s', _) when s' <= s -> ()
            | _ -> best := Some (s, pid))
          view.Sim.Sched.runnable;
        let pid =
          match !best with
          | Some (_, pid) -> pid
          | None -> view.Sim.Sched.runnable.(0)
        in
        (* Update grant bookkeeping for the chosen process. *)
        (match (view.Sim.Sched.pending_of pid).Sim.Sched.view_reg_name with
        | Some rname -> (
            match parse_ge rname with
            | Some (level, `Flag) -> bump flag_grants (pid, level)
            | Some (level, `Cell _) -> bump cell_grants (pid, level)
            | None -> (
                match parse_level_of ".sp[" rname with
                | Some level ->
                    if has_suffix rname ".race" then bump race_grants (pid, level)
                    else if has_suffix rname ".door" then bump door_grants (pid, level)
                | None -> ()))
        | None -> ());
        Sim.Sched.Schedule pid
  in
  { Sim.Sched.adv_name = name; adv_klass = klass; decide }

let ascending_location () =
  chain_attack ~name:"ascending-location" ~klass:Sim.Sched.Adaptive
    ~see_kind:true

let ascending_location_rw () =
  chain_attack ~name:"ascending-location-rw" ~klass:Sim.Sched.Rw_oblivious
    ~see_kind:false

let read_priority () =
  let rr = ref 0 in
  Sim.Adversary.location_oblivious "read-priority" (fun view ->
      match Array.length view.Sim.Sched.runnable with
      | 0 -> Sim.Sched.Halt
      | m ->
          let reads =
            Array.to_list view.Sim.Sched.runnable
            |> List.filter (fun pid ->
                   (view.Sim.Sched.pending_of pid).Sim.Sched.view_kind
                   = Some `Read)
          in
          incr rr;
          (match reads with
          | [] -> Sim.Sched.Schedule view.Sim.Sched.runnable.(!rr mod m)
          | _ ->
              let n = List.length reads in
              Sim.Sched.Schedule (List.nth reads (!rr mod n))))
