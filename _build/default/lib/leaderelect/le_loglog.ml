let rung_capacities ~n =
  (* n_i = 2^(2^(2^i)), capped at n; the last rung always has capacity
     n. Exponents b_i = 2^(2^i) satisfy b_(i+1) = b_i^2. *)
  let rec build acc b =
    if b >= 62 then List.rev (n :: acc)
    else
      let cap = 1 lsl b in
      if cap >= n then List.rev (n :: acc)
      else build (cap :: acc) (b * b)
  in
  Array.of_list (build [] 2)

type rung = {
  chain : Chain.t;
  sift_levels : int;  (** Levels carrying real sifting objects. *)
  last : bool;
}

type t = {
  rungs : rung array;
  finals : Primitives.Le2.t array;  (** One per rung; winner of rung [i]
      enters [finals.(i)] on port 0 and descends to [finals.(0)]. *)
}

let make_rung ?(name = "rung") mem ~capacity ~last =
  let probs = Groupelect.Ge_sift.probability_schedule ~n:capacity in
  let sift_levels = max 1 (Array.length probs) in
  let levels = if last then max capacity sift_levels else sift_levels in
  let ges =
    Array.init levels (fun i ->
        if i < Array.length probs then
          Groupelect.Ge_sift.create
            ~name:(Printf.sprintf "%s.sift[%d]" name i)
            mem ~write_prob:probs.(i)
        else
          Groupelect.Ge_dummy.create
            ~name:(Printf.sprintf "%s.dummy[%d]" name i)
            ())
  in
  { chain = Chain.create mem ~name ges; sift_levels; last }

let create ?(name = "loglog") mem ~n =
  if n < 1 then invalid_arg "Le_loglog.create: n must be >= 1";
  let caps = rung_capacities ~n in
  let rungs =
    Array.mapi
      (fun i capacity ->
        make_rung
          ~name:(Printf.sprintf "%s.rung[%d]" name i)
          mem ~capacity
          ~last:(i = Array.length caps - 1))
      caps
  in
  let finals =
    Array.init (Array.length caps) (fun i ->
        Primitives.Le2.create ~name:(Printf.sprintf "%s.final[%d]" name i) mem)
  in
  { rungs; finals }

(* The winner of rung [i] must beat the winner of every higher rung:
   it enters the final chain at [i] on port 0 (as a rung winner) and
   moves down; at [j < i] it plays port 1 (as the winner of
   [finals.(j+1)]). The winner of [finals.(0)] wins. *)
let rec final_descent t ctx j ~entered_at =
  let port = if j = entered_at then 0 else 1 in
  if Primitives.Le2.elect t.finals.(j) ctx ~port then
    if j = 0 then true else final_descent t ctx (j - 1) ~entered_at
  else false

let elect t ctx =
  let rec try_rung i =
    let r = t.rungs.(i) in
    match Chain.forward r.chain ctx ~from_level:0 ~upto:(Chain.levels r.chain) with
    | Chain.F_lost -> false
    | Chain.F_stopped level ->
        if Chain.backward r.chain ctx ~stopped_at:level then
          final_descent t ctx i ~entered_at:i
        else false
    | Chain.F_exhausted ->
        if r.last then
          failwith "Le_loglog.elect: last rung exhausted (contention > n?)"
        else try_rung (i + 1)
  in
  try_rung 0

let to_le t = { Le.le_name = "loglog"; elect = elect t }

let make mem ~n = to_le (create mem ~n)
