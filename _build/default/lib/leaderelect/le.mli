(** Common shape of an n-process leader-election object.

    [elect] may be called at most once per process; at most one call
    returns [true], and if no participant crashes exactly one does. *)

type t = {
  le_name : string;
  elect : Sim.Ctx.t -> bool;
}

val programs : t -> k:int -> (Sim.Ctx.t -> int) array
(** [programs le ~k] is [k] copies of a program that calls [elect] once
    and returns 1 if it won, 0 otherwise — ready for {!Sim.Sched.create}. *)

val winners : Sim.Sched.t -> int list
(** Pids whose program returned 1. *)
