type state =
  | Running
  | Finished of bool

type t = {
  mutable st : state;
  mutable resume : (unit -> unit) option;
}

let spawn (body : unit -> bool) =
  let t = { st = Running; resume = None } in
  let open Effect.Deep in
  let retc b =
    t.st <- Finished b;
    t.resume <- None
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    fun eff ->
    match eff with
    | Sim.Ctx.Read_eff _ ->
        Some
          (fun k ->
            t.resume <- Some (fun () -> continue k (Effect.perform eff)))
    | Sim.Ctx.Write_eff _ ->
        Some
          (fun k ->
            t.resume <- Some (fun () -> continue k (Effect.perform eff)))
    | Sim.Ctx.Flip_eff _ ->
        (* Local step: forward to the scheduler without suspending. *)
        Some (fun k -> continue k (Effect.perform eff))
    | Sim.Ctx.Flip_geom_eff _ ->
        Some (fun k -> continue k (Effect.perform eff))
    | _ -> None
  in
  match_with body () { retc; exnc = raise; effc };
  t

let state t = t.st

let step t =
  match (t.st, t.resume) with
  | Running, Some resume ->
      t.resume <- None;
      resume ()
  | Running, None -> ()
  | Finished _, _ -> ()

let abandon t =
  t.resume <- None;
  t.st <- Finished false
