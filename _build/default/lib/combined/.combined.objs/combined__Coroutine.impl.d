lib/combined/coroutine.ml: Effect Sim
