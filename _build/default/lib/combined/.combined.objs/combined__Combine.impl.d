lib/combined/combine.ml: Coroutine Leaderelect Primitives Ratrace
