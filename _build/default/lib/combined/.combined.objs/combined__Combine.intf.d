lib/combined/combine.mli: Leaderelect Sim
