lib/combined/coroutine.mli:
