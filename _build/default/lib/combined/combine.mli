(** Adversary independence (Section 4, Theorem 4.1).

    Runs the lean RatRace and a weak-adversary leader election [A] in
    parallel within each process, one step of each in alternation, and
    reconciles them with an auxiliary 2-process election [LEtop]:

    + a process that wins either execution stops the other and enters
      [LEtop] (RatRace winner on port 0, [A] winner on port 1); the
      [LEtop] winner wins;
    + a process that loses RatRace stops [A] and loses;
    + a process that loses [A] stops RatRace and loses — {e unless} it
      has already won a splitter inside RatRace, in which case it keeps
      running RatRace alone (this exception prevents executions in which
      everybody loses).

    The result has the step complexity of [A] against [A]'s weak
    adversary and O(log k) against the adaptive adversary, with
    Theta(n) registers plus the space of [A]. *)

type t

val create :
  ?name:string ->
  Sim.Memory.t ->
  n:int ->
  make_a:(Sim.Memory.t -> n:int -> Leaderelect.Le.t) ->
  t

val elect : t -> Sim.Ctx.t -> bool

val to_le : t -> Leaderelect.Le.t

val make_logstar : Sim.Memory.t -> n:int -> Leaderelect.Le.t
(** Corollary 4.2, location-oblivious part: log* + RatRace. *)

val make_loglog : Sim.Memory.t -> n:int -> Leaderelect.Le.t
(** Corollary 4.2, R/W-oblivious part: log log + RatRace. *)
