(** In-process cooperative interleaving of two shared-memory
    computations.

    The Section 4 combiner runs RatRace and a weak-adversary algorithm
    within one process, one shared-memory step of each in alternation. A
    {!t} wraps a computation with a local effect handler: every
    read/write suspends it, and {!step} forwards exactly one pending
    operation to the real scheduler (so it costs exactly one step of the
    enclosing simulated process). Coin flips are local and are forwarded
    immediately without suspending. *)

type t

type state =
  | Running
  | Finished of bool

val spawn : (unit -> bool) -> t
(** Runs the computation up to its first shared-memory operation. *)

val state : t -> state

val step : t -> unit
(** Perform the pending operation and run to the next one (or to
    completion). No-op if already finished. Must be called from within a
    simulated process (the operation is re-performed to the scheduler). *)

val abandon : t -> unit
(** Discard a running computation; subsequent {!step}s are no-ops. *)
