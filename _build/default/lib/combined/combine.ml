type t = {
  rr : Ratrace.Ratrace_lean.t;
  a : Leaderelect.Le.t;
  top : Primitives.Le2.t;
  name : string;
}

let create ?(name = "combined") mem ~n ~make_a =
  {
    rr = Ratrace.Ratrace_lean.create ~name:(name ^ ".rr") mem ~n;
    a = make_a mem ~n;
    top = Primitives.Le2.create ~name:(name ^ ".top") mem;
    name;
  }

let elect t ctx =
  let won_splitter = ref false in
  let rr_sub =
    Coroutine.spawn (fun () ->
        Ratrace.Ratrace_lean.elect
          ~notify_splitter_win:(fun () -> won_splitter := true)
          t.rr ctx)
  in
  let a_sub = Coroutine.spawn (fun () -> t.a.Leaderelect.Le.elect ctx) in
  let win_top port = Primitives.Le2.elect t.top ctx ~port in
  (* Rule 3 exception: [A] lost but we hold a splitter — finish RatRace
     alone. *)
  let rec rr_alone () =
    match Coroutine.state rr_sub with
    | Coroutine.Finished true -> win_top 0
    | Coroutine.Finished false -> false
    | Coroutine.Running ->
        Coroutine.step rr_sub;
        rr_alone ()
  in
  let rec loop () =
    (* Odd steps belong to RatRace. *)
    Coroutine.step rr_sub;
    match Coroutine.state rr_sub with
    | Coroutine.Finished true ->
        Coroutine.abandon a_sub;
        win_top 0
    | Coroutine.Finished false ->
        (* Rule 2. *)
        Coroutine.abandon a_sub;
        false
    | Coroutine.Running -> (
        Coroutine.step a_sub;
        match Coroutine.state a_sub with
        | Coroutine.Finished true ->
            (* Rule 1. *)
            Coroutine.abandon rr_sub;
            win_top 1
        | Coroutine.Finished false ->
            if !won_splitter then rr_alone ()
            else begin
              (* Rule 3. *)
              Coroutine.abandon rr_sub;
              false
            end
        | Coroutine.Running -> loop ())
  in
  loop ()

let to_le t = { Leaderelect.Le.le_name = t.name; elect = elect t }

let make_logstar mem ~n =
  to_le
    (create ~name:"combined-log*" mem ~n ~make_a:(fun mem ~n ->
         Leaderelect.Le_logstar.make mem ~n))

let make_loglog mem ~n =
  to_le
    (create ~name:"combined-loglog" mem ~n ~make_a:(fun mem ~n ->
         Leaderelect.Le_loglog.make mem ~n))
