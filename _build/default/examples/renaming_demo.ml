(* Renaming from test-and-set — the application that motivates TAS in
   the paper's introduction (Alistarh et al. 2010, Eberly et al. 1998).

   k processes with large identifiers acquire distinct small names from
   a line of TAS objects (a process's name is the index of the first
   TAS it wins), and, for contrast, from the deterministic
   Moir-Anderson splitter grid, whose namespace is quadratic — the
   price of renouncing randomization.

   dune exec examples/renaming_demo.exe *)

let n = 64
let k = 12

let () =
  Fmt.pr "== renaming %d processes ==@.@." k;

  (* Randomized: a line of TAS objects backed by log* elections gives a
     tight namespace of size k. *)
  let mem = Sim.Memory.create () in
  let line =
    Renaming.Tas_line.create mem ~names:k ~make_le:Leaderelect.Le_logstar.make
      ~n
  in
  let sched =
    Sim.Sched.create ~seed:99L
      (Array.init k (fun _ ctx -> Renaming.Tas_line.acquire line ctx))
  in
  Sim.Sched.run sched (Sim.Adversary.random_oblivious ~seed:3L);
  let names = Array.map Option.get (Sim.Sched.results sched) in
  Array.iteri
    (fun pid name ->
      Fmt.pr "  process %2d acquired name %2d  (%d shared-memory steps)@." pid
        name (Sim.Sched.steps sched pid))
    names;
  let distinct = List.sort_uniq compare (Array.to_list names) in
  Fmt.pr "@.TAS line: %d processes, %d distinct names in [0, %d), %d registers@."
    k (List.length distinct) k
    (Sim.Memory.allocated mem);
  assert (List.length distinct = k);

  (* Deterministic baseline: the splitter grid needs a k(k+1)/2
     namespace for the same k. *)
  let mem' = Sim.Memory.create () in
  let grid = Renaming.Splitter_grid.create mem' ~k in
  let sched' =
    Sim.Sched.create ~seed:42L
      (Array.init k (fun _ ctx -> Renaming.Splitter_grid.acquire grid ctx))
  in
  Sim.Sched.run sched' (Sim.Adversary.random_oblivious ~seed:5L);
  let names' = Array.map Option.get (Sim.Sched.results sched') in
  let distinct' = List.sort_uniq compare (Array.to_list names') in
  Fmt.pr
    "splitter grid: %d distinct names in [0, %d) — quadratic namespace,@.\
     but deterministic and splitter-cheap@."
    (List.length distinct')
    (Renaming.Splitter_grid.namespace grid);
  assert (List.length distinct' = k)
