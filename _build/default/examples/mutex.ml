(* One-shot initialization race on real multicore OCaml.

   The canonical TAS use: several domains race to initialize a shared
   resource; the TAS winner performs the initialization exactly once.
   We run the race with the paper-derived implementations (tournament,
   sifting) and with the hardware Atomic.exchange for reference.

   dune exec examples/mutex.exe *)

let race ~name (make : unit -> Multicore.Mc_tas.t) =
  (* More domains than cores is fine - preemption gives real interleaving. *)
  let domains = 4 in
  let trials = 200 in
  let ok = ref 0 in
  for trial = 1 to trials do
    let tas = make () in
    let initialized = Atomic.make 0 in
    let results =
      List.init domains (fun slot ->
          Domain.spawn (fun () ->
              let rng = Random.State.make [| trial; slot; 0xC0FFEE |] in
              let won = Multicore.Mc_tas.apply tas rng ~slot = 0 in
              if won then Atomic.incr initialized;
              won))
      |> List.map Domain.join
    in
    let winners = List.length (List.filter Fun.id results) in
    if winners = 1 && Atomic.get initialized = 1 then incr ok
  done;
  Fmt.pr "  %-12s %d domains, %d/%d races initialized exactly once@." name
    domains !ok trials;
  assert (!ok = trials)

let () =
  Fmt.pr "== one-shot initialization race on %d cores ==@.@."
    (Domain.recommended_domain_count ());
  race ~name:"tournament" (fun () -> Multicore.Mc_tas.of_tournament ~n:4);
  race ~name:"sift" (fun () -> Multicore.Mc_tas.of_sift ~n:4);
  race ~name:"native" (fun () -> Multicore.Mc_tas.native ());
  Fmt.pr "@.All implementations initialized the resource exactly once.@."
