examples/quickstart.mli:
