examples/quickstart.ml: Fmt List Rtas Sim
