examples/adversary_duel.ml: Fmt Int64 Leaderelect List Rtas Sim
