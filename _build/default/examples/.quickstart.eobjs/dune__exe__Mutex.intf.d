examples/mutex.mli:
