examples/mutex.ml: Atomic Domain Fmt Fun List Multicore Random
