examples/consensus_demo.ml: Array Consensus Fmt Int64 Option Sim
