examples/renaming_demo.ml: Array Fmt Leaderelect List Option Renaming Sim
