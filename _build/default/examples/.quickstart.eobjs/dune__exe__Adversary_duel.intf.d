examples/adversary_duel.mli:
