(* Adversary duel: why Section 4 exists.

   The log* algorithm is near-constant-time under weak adversaries but
   an adaptive adversary that watches pending write locations can force
   Theta(k) steps out of it. RatRace resists the adaptive adversary but
   costs Theta(log k) always. The Section 4 combination gets both.

   dune exec examples/adversary_duel.exe *)

let n = 64
let trials = 20

let avg_max_steps ~algorithm ~adv =
  let total = ref 0 in
  for seed = 1 to trials do
    let o =
      Rtas.Election.run ~seed:(Int64.of_int seed) ~algorithm ~n ~k:n
        ~adversary:(adv seed) ()
    in
    total := !total + o.Rtas.Election.max_steps
  done;
  float_of_int !total /. float_of_int trials

let oblivious seed = Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 31))
let attack _seed = Leaderelect.Attacks.ascending_location ()

let () =
  Fmt.pr "== expected max steps, k = %d ==@.@." n;
  Fmt.pr "  %-16s %18s %18s@." "algorithm" "random-oblivious" "adaptive-attack";
  List.iter
    (fun algorithm ->
      let a = avg_max_steps ~algorithm ~adv:oblivious in
      let b = avg_max_steps ~algorithm ~adv:attack in
      Fmt.pr "  %-16s %18.1f %18.1f@." algorithm a b)
    [ "log*"; "ratrace-lean"; "combined-log*" ];
  Fmt.pr
    "@.The attack blows up the plain log* algorithm; RatRace and the@.\
     combined algorithm stay logarithmic — and under the oblivious@.\
     schedule the combination stays within a constant factor of log*.@."
