(* Quickstart: run the paper's O(log* k) leader election and the TAS
   built from it, in the simulator.

   dune exec examples/quickstart.exe *)

let () =
  Fmt.pr "== rtas quickstart ==@.@.";
  (* 16 processes run a leader election dimensioned for up to 64, under
     a uniformly random (oblivious) schedule. *)
  let outcome =
    Rtas.Election.run ~algorithm:"log*" ~n:64 ~k:16
      ~adversary:(Sim.Adversary.random_oblivious ~seed:2024L)
      ()
  in
  Fmt.pr "leader election (log*, k=16): %a@." Rtas.Election.pp_outcome outcome;

  (* The same algorithm wrapped as a linearizable test-and-set: exactly
     one caller sees the old value 0. *)
  let tas =
    Rtas.Election.run_tas ~algorithm:"log*" ~n:64 ~k:16
      ~adversary:(Sim.Adversary.random_oblivious ~seed:7L)
      ()
  in
  Fmt.pr "test-and-set: winner=p%a, return values = %a@."
    Fmt.(option ~none:(any "?") int)
    tas.Rtas.Election.winner
    Fmt.(array ~sep:sp (option ~none:(any "-") int))
    tas.Rtas.Election.results;

  (* The full catalog. *)
  Fmt.pr "@.catalog:@.";
  List.iter
    (fun e ->
      Fmt.pr "  %-16s %-28s %-20s (%s)@." e.Rtas.Registry.name
        e.Rtas.Registry.steps e.Rtas.Registry.space e.Rtas.Registry.reference)
    Rtas.Registry.all
