(* The equivalence from the paper's introduction: "in systems with two
   processes, a consensus protocol can be implemented deterministically
   from a TAS object and vice versa."

   Two processes propose different values; the TAS decides who wins, the
   loser adopts the winner's proposal; then the derived consensus is
   wrapped back into a TAS, closing the loop.

   dune exec examples/consensus_demo.exe *)

let () =
  Fmt.pr "== 2-process consensus from TAS, and back ==@.@.";
  let agreements = ref 0 and zero_decided = ref 0 in
  let trials = 200 in
  for seed = 1 to trials do
    let mem = Sim.Memory.create () in
    let c = Consensus.Consensus2.from_le2 mem in
    let programs =
      [|
        (fun ctx -> Consensus.Consensus2.propose c ctx ~port:0 111);
        (fun ctx -> Consensus.Consensus2.propose c ctx ~port:1 222);
      |]
    in
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) programs in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 17)));
    let a = Option.get (Sim.Sched.result sched 0)
    and b = Option.get (Sim.Sched.result sched 1) in
    if a = b then incr agreements;
    if a = 111 then incr zero_decided
  done;
  Fmt.pr "consensus from TAS:    %d/%d runs agreed; p0's proposal won %d times@."
    !agreements trials !zero_decided;

  let tas_zeroes = ref 0 in
  for seed = 1 to trials do
    let mem = Sim.Memory.create () in
    let c = Consensus.Consensus2.from_le2 mem in
    let tas = Consensus.Consensus2.tas_from_consensus c in
    let programs =
      Array.init 2 (fun port ctx -> Consensus.Consensus2.apply tas ctx ~port)
    in
    let sched = Sim.Sched.create ~seed:(Int64.of_int seed) programs in
    Sim.Sched.run sched
      (Sim.Adversary.random_oblivious ~seed:(Int64.of_int (seed * 23)));
    let zeros =
      Array.fold_left
        (fun acc r -> if r = Some 0 then acc + 1 else acc)
        0 (Sim.Sched.results sched)
    in
    if zeros = 1 then incr tas_zeroes
  done;
  Fmt.pr "TAS from consensus:    %d/%d runs had exactly one winner@."
    !tas_zeroes trials;
  assert (!agreements = trials && !tas_zeroes = trials);
  Fmt.pr "@.Both directions of the equivalence hold on every run.@."
