bench/main.mli:
