bench/experiments.ml: Array Combined Consensus Domain Fmt Groupelect Int64 Leaderelect List Lowerbound Multicore Option Primitives Printf Random Ratrace Rtas Sim String Unix
