bench/main.ml: Analyze Array Bechamel Benchmark Experiments Fmt Groupelect Hashtbl Instance Int64 List Lowerbound Measure Multicore Primitives Random Ratrace Rtas Sim Staged Sys Test Time Toolkit
