(* Benchmark & experiment driver.

   dune exec bench/main.exe             -- run every experiment table
   dune exec bench/main.exe -- e5 e8    -- run selected experiments
   dune exec bench/main.exe -- bechamel -- run the Bechamel microbenches *)

open Bechamel
open Toolkit

(* {1 Bechamel microbenches: one per experiment table, measuring the
   core operation that the table sweeps} *)

let run_election ~algorithm ~n ~k seed =
  ignore
    (Rtas.Election.run ~seed ~algorithm ~n ~k
       ~adversary:(Sim.Adversary.random_oblivious ~seed:(Int64.mul seed 31L))
       ())

let bench_tests =
  let counter = ref 0L in
  let next () =
    counter := Int64.add !counter 1L;
    !counter
  in
  [
    (* E1: one Figure-1 GroupElect round, k = 32. *)
    Test.make ~name:"e1/ge-logstar-round-k32"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           let ge = Groupelect.Ge_logstar.create mem ~n:4096 in
           let sched =
             Sim.Sched.create ~seed:(next ())
               (Array.init 32 (fun _ ctx ->
                    if ge.Groupelect.Ge.elect ctx then 1 else 0))
           in
           Sim.Sched.run sched (Sim.Adversary.round_robin ())));
    (* E2: a full log* election, k = 256. *)
    Test.make ~name:"e2/logstar-election-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"log*" ~n:256 ~k:256 (next ())));
    (* E3: a full loglog election, k = 256. *)
    Test.make ~name:"e3/loglog-election-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"loglog" ~n:256 ~k:256 (next ())));
    (* E4: a lean RatRace election, k = 256. *)
    Test.make ~name:"e4/ratrace-lean-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"ratrace-lean" ~n:256 ~k:256 (next ())));
    (* E5: allocation cost of the lean structure (space experiment). *)
    Test.make ~name:"e5/allocate-ratrace-lean-n1024"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           ignore (Ratrace.Ratrace_lean.create mem ~n:1024)));
    (* E6: a combined election, k = 64. *)
    Test.make ~name:"e6/combined-logstar-k64"
      (Staged.stage (fun () ->
           run_election ~algorithm:"combined-log*" ~n:64 ~k:64 (next ())));
    (* E7: the covering recurrence f over all k for n = 2^16. *)
    Test.make ~name:"e7/covering-f-n65536"
      (Staged.stage (fun () ->
           ignore (Lowerbound.Covering.f ~n:65536 (65536 - 4))));
    (* E8: one 2-process TAS duel under a fixed alternating schedule. *)
    Test.make ~name:"e8/tas-duel"
      (Staged.stage (fun () ->
           let mem = Sim.Memory.create () in
           let le = Primitives.Le2.create mem in
           let tas =
             Primitives.Tas.create mem ~elect:(fun ctx ->
                 Primitives.Le2.elect le ctx ~port:(Sim.Ctx.pid ctx))
           in
           let sched =
             Sim.Sched.create ~seed:(next ())
               (Array.init 2 (fun _ ctx -> Primitives.Tas.apply tas ctx))
           in
           Sim.Sched.run sched (Sim.Adversary.round_robin ())));
    (* E9: tournament election, k = 256 (the O(log n) baseline). *)
    Test.make ~name:"e9/tournament-k256"
      (Staged.stage (fun () ->
           run_election ~algorithm:"tournament" ~n:256 ~k:256 (next ())));
    (* E10: single-thread cost of a multicore TAS op (no domain spawn). *)
    Test.make ~name:"e10/mc-native-tas"
      (Staged.stage
         (let rng = Random.State.make [| 42 |] in
          fun () ->
            let tas = Multicore.Mc_tas.native () in
            ignore (Multicore.Mc_tas.apply tas rng ~slot:0)));
    Test.make ~name:"e10/mc-tournament-tas-solo"
      (Staged.stage
         (let rng = Random.State.make [| 43 |] in
          fun () ->
            let tas = Multicore.Mc_tas.of_tournament ~n:4 in
            ignore (Multicore.Mc_tas.apply tas rng ~slot:0)));
  ]

let run_bechamel () =
  Fmt.pr "@.== Bechamel microbenches (ns per run, OLS on monotonic clock) ==@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let grouped = Test.make_grouped ~name:"rtas" ~fmt:"%s/%s" bench_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then begin
        let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
        List.iter
          (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Fmt.pr "  %-42s %14.1f ns@." name est
            | _ -> Fmt.pr "  %-42s %14s@." name "n/a")
          (List.sort compare rows)
      end)
    merged

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      List.iter (fun (_, _, run) -> run ()) Experiments.all;
      run_bechamel ()
  | [ "bechamel" ] -> run_bechamel ()
  | [ "list" ] ->
      List.iter (fun (id, doc, _) -> Fmt.pr "%-5s %s@." id doc) Experiments.all;
      Fmt.pr "%-5s %s@." "bechamel" "Bechamel microbenches"
  | ids ->
      List.iter
        (fun id ->
          if id = "bechamel" then run_bechamel ()
          else
            match List.find_opt (fun (i, _, _) -> i = id) Experiments.all with
            | Some (_, _, run) -> run ()
            | None ->
                Fmt.epr "unknown experiment %S; try `list`@." id;
                exit 1)
        ids
